package types

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTaskIDZero(t *testing.T) {
	var z TaskID
	if !z.Zero() {
		t.Error("zero TaskID not Zero()")
	}
	if (TaskID{Worker: 1}).Zero() || (TaskID{Seq: 1}).Zero() {
		t.Error("nonzero TaskID reported Zero()")
	}
	// The clearinghouse's pseudo-id is not the zero task.
	if (TaskID{Worker: ClearinghouseID, Seq: 1}).Zero() {
		t.Error("clearinghouse root task id must not be Zero()")
	}
}

func TestContinuationNone(t *testing.T) {
	if !NilContinuation.None() {
		t.Error("NilContinuation is not None()")
	}
	c := Continuation{Task: TaskID{Worker: 1, Seq: 2}, Slot: 3}
	if c.None() {
		t.Error("real continuation reported None()")
	}
	// Slot alone distinguishes from nil (defensive).
	if !(Continuation{Slot: 0}).None() {
		t.Error("zero continuation must be None()")
	}
}

func TestStringsAreInformative(t *testing.T) {
	id := TaskID{Worker: 7, Seq: 42}
	if s := id.String(); !strings.Contains(s, "7") || !strings.Contains(s, "42") {
		t.Errorf("TaskID.String() = %q", s)
	}
	c := Continuation{Task: id, Slot: 3}
	if s := c.String(); !strings.Contains(s, "7") || !strings.Contains(s, "3") {
		t.Errorf("Continuation.String() = %q", s)
	}
	if s := NilContinuation.String(); !strings.Contains(s, "nil") {
		t.Errorf("NilContinuation.String() = %q", s)
	}
	if s := WorkstationID(9).String(); !strings.Contains(s, "9") {
		t.Errorf("WorkstationID.String() = %q", s)
	}
}

func TestTaskIDsAreMapKeys(t *testing.T) {
	f := func(w1 int32, s1 uint64, w2 int32, s2 uint64) bool {
		a := TaskID{Worker: WorkerID(w1), Seq: s1}
		b := TaskID{Worker: WorkerID(w2), Seq: s2}
		m := map[TaskID]int{a: 1}
		m[b] = 2
		if a == b {
			return len(m) == 1
		}
		return len(m) == 2 && m[a] == 1 && m[b] == 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSentinelsAreDistinct(t *testing.T) {
	if ClearinghouseID == NoWorker {
		t.Error("sentinel collision")
	}
	if ClearinghouseID >= 0 || NoWorker >= 0 {
		t.Error("sentinels must be negative to stay clear of real worker ids")
	}
}
