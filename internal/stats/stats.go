// Package stats collects the per-worker scheduling and message counters
// that the paper reports in Table 2: tasks executed, maximum tasks in use
// (the working-set high-water mark), tasks stolen, synchronizations,
// non-local synchronizations, and messages sent.
//
// Counters are updated with atomics: the hot-path updates come from the
// worker's scheduler goroutine, but transports and the clearinghouse update
// a few counters from their own goroutines.
package stats

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Counters is one worker's statistics. The zero value is ready for use.
type Counters struct {
	// TasksSpawned counts closures created by this worker.
	TasksSpawned atomic.Int64
	// TasksExecuted counts closures whose function body this worker ran.
	TasksExecuted atomic.Int64
	// TasksInUse is the current number of live closures on this worker:
	// ready, waiting for arguments, or executing.
	TasksInUse atomic.Int64
	// MaxTasksInUse is the high-water mark of TasksInUse — the paper's
	// measure of the working-set size that LIFO execution keeps small.
	MaxTasksInUse atomic.Int64
	// TasksStolen counts successful steals performed by this worker as
	// the thief.
	TasksStolen atomic.Int64
	// RemoteSteals counts steals whose victim was at a different site
	// (across a slow network cut; see the site-aware policy).
	RemoteSteals atomic.Int64
	// StealAttempts counts steal requests sent (successful or not).
	StealAttempts atomic.Int64
	// FailedSteals counts steal requests that found an empty victim.
	FailedSteals atomic.Int64
	// Synchronizations counts argument/result deliveries into join slots.
	Synchronizations atomic.Int64
	// NonLocalSynchs counts synchronizations whose producer and consumer
	// were on different workers and therefore required a message.
	NonLocalSynchs atomic.Int64
	// MessagesSent counts application-level messages this worker sent on
	// the network (steal traffic, non-local synchs, migrations,
	// clearinghouse traffic).
	MessagesSent atomic.Int64
	// MessagesReceived counts messages delivered to this worker.
	MessagesReceived atomic.Int64
	// TasksMigrated counts closures shipped away when the worker's
	// workstation was reclaimed by its owner.
	TasksMigrated atomic.Int64
	// TasksRedone counts closures re-executed by the fault-tolerance
	// machinery after a crash.
	TasksRedone atomic.Int64
	// Retransmits counts frames re-sent by the transport after an ack
	// deadline expired.
	Retransmits atomic.Int64
	// PeerGoneReports counts peers this participant declared unreachable
	// after exhausting retransmits.
	PeerGoneReports atomic.Int64
	// ReRegistrations counts registration retries sent after losing the
	// clearinghouse (the re-register loop, not the initial register).
	ReRegistrations atomic.Int64
	// JournalRecords counts control-plane records appended to the
	// clearinghouse journal.
	JournalRecords atomic.Int64
	// RedoBatches counts crash/departure events that produced at least one
	// redone task (TasksRedone counts the tasks themselves).
	RedoBatches atomic.Int64
	// TasksPreempted counts executing tasks that yielded a checkpoint and
	// requeued because the worker was draining or being reclaimed.
	TasksPreempted atomic.Int64
	// CkptSaves counts checkpoint blobs accepted from yielding tasks.
	CkptSaves atomic.Int64
	// CkptResumes counts task executions that started from a checkpoint
	// blob instead of from scratch.
	CkptResumes atomic.Int64
	// SpeculativeRedos counts steal-record tasks re-dispatched while their
	// thief was merely suspect (not declared dead): the task was overdue
	// past K× its function's p99 exec time, so a second copy was started
	// from the last published checkpoint. Seq/dedup keeps results
	// exactly-once; this counts the extra dispatches.
	SpeculativeRedos atomic.Int64
	// FalseEvictions counts workers the failure detector declared dead
	// that later proved alive (a heartbeat arrived after eviction) — the
	// detector's false-positive count, maintained by the clearinghouse.
	FalseEvictions atomic.Int64
}

// TaskCreated records a new live closure and maintains the high-water mark.
func (c *Counters) TaskCreated() {
	c.TasksSpawned.Add(1)
	n := c.TasksInUse.Add(1)
	for {
		max := c.MaxTasksInUse.Load()
		if n <= max || c.MaxTasksInUse.CompareAndSwap(max, n) {
			return
		}
	}
}

// TaskAdopted records a live closure that arrived from elsewhere (steal or
// migration) rather than being spawned here.
func (c *Counters) TaskAdopted() {
	n := c.TasksInUse.Add(1)
	for {
		max := c.MaxTasksInUse.Load()
		if n <= max || c.MaxTasksInUse.CompareAndSwap(max, n) {
			return
		}
	}
}

// TaskRetired records that a live closure finished or left this worker.
func (c *Counters) TaskRetired() { c.TasksInUse.Add(-1) }

// Snapshot is an immutable copy of a Counters, plus the execution time.
type Snapshot struct {
	Worker           int
	TasksSpawned     int64
	TasksExecuted    int64
	MaxTasksInUse    int64
	TasksStolen      int64
	RemoteSteals     int64
	StealAttempts    int64
	FailedSteals     int64
	Synchronizations int64
	NonLocalSynchs   int64
	MessagesSent     int64
	MessagesReceived int64
	TasksMigrated    int64
	TasksRedone      int64
	Retransmits      int64
	PeerGoneReports  int64
	ReRegistrations  int64
	JournalRecords   int64
	RedoBatches      int64
	TasksPreempted   int64
	CkptSaves        int64
	CkptResumes      int64
	SpeculativeRedos int64
	FalseEvictions   int64
	// Orphans counts results dropped because their consumer task no
	// longer exists (expected after crash recovery, zero otherwise).
	Orphans int64
	// ExecTime is the participant's execution time in the paper's sense:
	// how long its (possibly simulated) workstation was busy with the
	// job. On Linux it is the worker thread's CPU time, so participants
	// time-sharing one host core are still accounted as if each had its
	// own processor; elsewhere it falls back to WallTime.
	ExecTime time.Duration
	// WallTime is the participant's wall-clock lifetime in the job.
	WallTime time.Duration
}

// Snapshot captures the current counter values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		TasksSpawned:     c.TasksSpawned.Load(),
		TasksExecuted:    c.TasksExecuted.Load(),
		MaxTasksInUse:    c.MaxTasksInUse.Load(),
		TasksStolen:      c.TasksStolen.Load(),
		RemoteSteals:     c.RemoteSteals.Load(),
		StealAttempts:    c.StealAttempts.Load(),
		FailedSteals:     c.FailedSteals.Load(),
		Synchronizations: c.Synchronizations.Load(),
		NonLocalSynchs:   c.NonLocalSynchs.Load(),
		MessagesSent:     c.MessagesSent.Load(),
		MessagesReceived: c.MessagesReceived.Load(),
		TasksMigrated:    c.TasksMigrated.Load(),
		TasksRedone:      c.TasksRedone.Load(),
		Retransmits:      c.Retransmits.Load(),
		PeerGoneReports:  c.PeerGoneReports.Load(),
		ReRegistrations:  c.ReRegistrations.Load(),
		JournalRecords:   c.JournalRecords.Load(),
		RedoBatches:      c.RedoBatches.Load(),
		TasksPreempted:   c.TasksPreempted.Load(),
		CkptSaves:        c.CkptSaves.Load(),
		CkptResumes:      c.CkptResumes.Load(),
		SpeculativeRedos: c.SpeculativeRedos.Load(),
		FalseEvictions:   c.FalseEvictions.Load(),
	}
}

// JobTotals aggregates worker snapshots the way the paper's Table 2 does:
// counts are summed, except MaxTasksInUse, which is the maximum over
// workers ("the size of the largest working set of any participant"), and
// ExecTime, which is the maximum (the job runs as long as its slowest
// participant).
func JobTotals(workers []Snapshot) Snapshot {
	var t Snapshot
	t.Worker = len(workers)
	for _, w := range workers {
		t.TasksSpawned += w.TasksSpawned
		t.TasksExecuted += w.TasksExecuted
		t.TasksStolen += w.TasksStolen
		t.RemoteSteals += w.RemoteSteals
		t.StealAttempts += w.StealAttempts
		t.FailedSteals += w.FailedSteals
		t.Synchronizations += w.Synchronizations
		t.NonLocalSynchs += w.NonLocalSynchs
		t.MessagesSent += w.MessagesSent
		t.MessagesReceived += w.MessagesReceived
		t.TasksMigrated += w.TasksMigrated
		t.TasksRedone += w.TasksRedone
		t.Retransmits += w.Retransmits
		t.PeerGoneReports += w.PeerGoneReports
		t.ReRegistrations += w.ReRegistrations
		t.JournalRecords += w.JournalRecords
		t.RedoBatches += w.RedoBatches
		t.TasksPreempted += w.TasksPreempted
		t.CkptSaves += w.CkptSaves
		t.CkptResumes += w.CkptResumes
		t.SpeculativeRedos += w.SpeculativeRedos
		t.FalseEvictions += w.FalseEvictions
		t.Orphans += w.Orphans
		if w.MaxTasksInUse > t.MaxTasksInUse {
			t.MaxTasksInUse = w.MaxTasksInUse
		}
		if w.ExecTime > t.ExecTime {
			t.ExecTime = w.ExecTime
		}
		if w.WallTime > t.WallTime {
			t.WallTime = w.WallTime
		}
	}
	return t
}

// String renders the snapshot in the layout of the paper's Table 2, with a
// fault-path suffix appended only when any fault counter fired (fault-free
// runs keep the paper's exact layout).
func (s Snapshot) String() string {
	out := fmt.Sprintf(
		"tasks executed %d | max tasks in use %d | tasks stolen %d | synchronizations %d | non-local synchs %d | messages sent %d | time %v",
		s.TasksExecuted, s.MaxTasksInUse, s.TasksStolen,
		s.Synchronizations, s.NonLocalSynchs, s.MessagesSent, s.ExecTime.Round(time.Millisecond))
	if s.Retransmits != 0 || s.PeerGoneReports != 0 || s.ReRegistrations != 0 ||
		s.JournalRecords != 0 || s.RedoBatches != 0 {
		out += fmt.Sprintf(
			" | retransmits %d | peer-gone %d | re-registrations %d | journal records %d | redo batches %d",
			s.Retransmits, s.PeerGoneReports, s.ReRegistrations, s.JournalRecords, s.RedoBatches)
	}
	return out
}

// OrderedNames lists every Snapshot counter in wire order. The order is
// append-only: telemetry reports carry counters as a positional []int64, so
// renumbering would silently misattribute values between versions. Names
// double as Prometheus metric names (a "_total" suffix marks a counter;
// everything else is a gauge).
var OrderedNames = []string{
	"tasks_spawned_total",
	"tasks_executed_total",
	"max_tasks_in_use",
	"tasks_stolen_total",
	"remote_steals_total",
	"steal_attempts_total",
	"steal_failures_total",
	"synchronizations_total",
	"nonlocal_synchs_total",
	"messages_sent_total",
	"messages_received_total",
	"tasks_migrated_total",
	"tasks_redone_total",
	"retransmits_total",
	"peer_gone_total",
	"reregistrations_total",
	"journal_records_total",
	"redo_batches_total",
	"orphan_results_total",
	"exec_time_ns",
	"wall_time_ns",
	"tasks_preempted_total",
	"ckpt_saves_total",
	"ckpt_resumes_total",
	"speculative_redo_total",
	"false_evictions_total",
}

// Ordered flattens the snapshot into the positional form of OrderedNames.
func (s Snapshot) Ordered() []int64 {
	return []int64{
		s.TasksSpawned,
		s.TasksExecuted,
		s.MaxTasksInUse,
		s.TasksStolen,
		s.RemoteSteals,
		s.StealAttempts,
		s.FailedSteals,
		s.Synchronizations,
		s.NonLocalSynchs,
		s.MessagesSent,
		s.MessagesReceived,
		s.TasksMigrated,
		s.TasksRedone,
		s.Retransmits,
		s.PeerGoneReports,
		s.ReRegistrations,
		s.JournalRecords,
		s.RedoBatches,
		s.Orphans,
		int64(s.ExecTime),
		int64(s.WallTime),
		s.TasksPreempted,
		s.CkptSaves,
		s.CkptResumes,
		s.SpeculativeRedos,
		s.FalseEvictions,
	}
}

// FromOrdered rebuilds a Snapshot from the positional form. Short slices
// (an older sender) leave the tail zero; extra entries (a newer sender) are
// ignored — both directions stay decodable across versions.
func FromOrdered(vals []int64) Snapshot {
	at := func(i int) int64 {
		if i < len(vals) {
			return vals[i]
		}
		return 0
	}
	return Snapshot{
		TasksSpawned:     at(0),
		TasksExecuted:    at(1),
		MaxTasksInUse:    at(2),
		TasksStolen:      at(3),
		RemoteSteals:     at(4),
		StealAttempts:    at(5),
		FailedSteals:     at(6),
		Synchronizations: at(7),
		NonLocalSynchs:   at(8),
		MessagesSent:     at(9),
		MessagesReceived: at(10),
		TasksMigrated:    at(11),
		TasksRedone:      at(12),
		Retransmits:      at(13),
		PeerGoneReports:  at(14),
		ReRegistrations:  at(15),
		JournalRecords:   at(16),
		RedoBatches:      at(17),
		Orphans:          at(18),
		ExecTime:         time.Duration(at(19)),
		WallTime:         time.Duration(at(20)),
		TasksPreempted:   at(21),
		CkptSaves:        at(22),
		CkptResumes:      at(23),
		SpeculativeRedos: at(24),
		FalseEvictions:   at(25),
	}
}
