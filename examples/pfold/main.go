// Protein folding on a simulated network of workstations — the paper's
// flagship workload (Figures 4 and 5, Table 2).
//
//	go run ./examples/pfold [-n 16] [-p 8] [-threshold 6]
//
// Enumerates every folding of an n-monomer polymer into the 2-D lattice,
// histograms the contact energies, and prints the same statistics the
// paper reports: near-linear speedup with only a handful of steals and
// messages against millions of tasks.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"phish"
	"phish/internal/apps/pfold"
)

func main() {
	n := flag.Int("n", 16, "polymer length (monomers)")
	p := flag.Int("p", 8, "participating workers")
	threshold := flag.Int("threshold", 0, "serial threshold (0 = default)")
	flag.Parse()

	fmt.Printf("pfold: folding a %d-monomer polymer on %d workers\n", *n, *p)

	start := time.Now()
	res, err := phish.RunLocal(pfold.Program(), pfold.Root, pfold.RootArgs(*n, *threshold),
		phish.LocalOptions{Workers: *p})
	if err != nil {
		log.Fatal(err)
	}
	hist := res.Value.([]int64)

	fmt.Printf("\n%d foldings in %v\n", pfold.Foldings(hist), time.Since(start).Round(time.Millisecond))
	fmt.Println("energy histogram (contacts -> count):")
	for e, c := range hist {
		if c != 0 {
			fmt.Printf("  %2d  %12d  %s\n", e, c, bar(c, hist))
		}
	}

	fmt.Println("\nscheduling statistics (cf. the paper's Table 2):")
	t := res.Totals
	fmt.Printf("  tasks executed    %12d\n", t.TasksExecuted)
	fmt.Printf("  max tasks in use  %12d\n", t.MaxTasksInUse)
	fmt.Printf("  tasks stolen      %12d\n", t.TasksStolen)
	fmt.Printf("  synchronizations  %12d\n", t.Synchronizations)
	fmt.Printf("  non-local synchs  %12d\n", t.NonLocalSynchs)
	fmt.Printf("  messages sent     %12d\n", t.MessagesSent)
	var sum time.Duration
	for _, w := range res.Workers {
		sum += w.ExecTime
	}
	fmt.Printf("  avg exec time     %12v\n", (sum / time.Duration(len(res.Workers))).Round(time.Millisecond))
}

// bar renders a proportional histogram bar.
func bar(c int64, hist []int64) string {
	var max int64
	for _, h := range hist {
		if h > max {
			max = h
		}
	}
	n := int(40 * c / max)
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}
