package clock

import (
	"testing"
	"time"
)

func TestRealClockBasics(t *testing.T) {
	var c Clock = Real{}
	a := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(a) <= 0 {
		t.Error("time did not advance")
	}
	select {
	case <-c.After(0):
	case <-time.After(time.Second):
		t.Error("After(0) never fired")
	}
}

func TestFakeAdvanceFiresInOrder(t *testing.T) {
	f := NewFake()
	a := f.After(10 * time.Second)
	b := f.After(5 * time.Second)
	f.Advance(7 * time.Second)
	select {
	case <-b:
	default:
		t.Fatal("5s timer did not fire after 7s advance")
	}
	select {
	case <-a:
		t.Fatal("10s timer fired after only 7s")
	default:
	}
	f.Advance(4 * time.Second)
	select {
	case <-a:
	default:
		t.Fatal("10s timer did not fire after 11s total")
	}
}

func TestFakeNowAndSince(t *testing.T) {
	f := NewFake()
	start := f.Now()
	f.Advance(90 * time.Second)
	if got := f.Since(start); got != 90*time.Second {
		t.Errorf("Since = %v, want 90s", got)
	}
}

func TestFakeNonPositiveAfterFiresImmediately(t *testing.T) {
	f := NewFake()
	select {
	case <-f.After(0):
	default:
		t.Error("After(0) should fire immediately")
	}
	select {
	case <-f.After(-time.Second):
	default:
		t.Error("After(<0) should fire immediately")
	}
}

func TestFakeSleepUnblocksOnAdvance(t *testing.T) {
	f := NewFake()
	done := make(chan struct{})
	go func() {
		f.Sleep(time.Minute)
		close(done)
	}()
	if !f.BlockUntilWaiters(1, time.Second) {
		t.Fatal("sleeper never registered")
	}
	f.Advance(time.Minute)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep never returned")
	}
}

func TestFakeWaiters(t *testing.T) {
	f := NewFake()
	if f.Waiters() != 0 {
		t.Fatal("fresh clock has waiters")
	}
	_ = f.After(time.Hour)
	_ = f.After(time.Hour)
	if got := f.Waiters(); got != 2 {
		t.Fatalf("waiters = %d, want 2", got)
	}
	f.Advance(2 * time.Hour)
	if got := f.Waiters(); got != 0 {
		t.Fatalf("waiters after fire = %d, want 0", got)
	}
}

func TestFakeAbandonedTimerDoesNotBlockAdvance(t *testing.T) {
	f := NewFake()
	_ = f.After(time.Second) // never read
	done := make(chan struct{})
	go func() {
		f.Advance(time.Minute)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Advance blocked on an abandoned timer")
	}
}
