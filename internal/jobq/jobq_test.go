package jobq

import (
	"testing"

	"phish/internal/types"
	"phish/internal/wire"
)

func TestPoolRoundRobin(t *testing.T) {
	p := NewPool()
	idA := p.Submit(wire.JobSpec{Name: "a"})
	idB := p.Submit(wire.JobSpec{Name: "b"})
	idC := p.Submit(wire.JobSpec{Name: "c"})
	var got []types.JobID
	for i := 0; i < 6; i++ {
		spec, ok := p.Request()
		if !ok {
			t.Fatal("pool unexpectedly empty")
		}
		got = append(got, spec.ID)
	}
	want := []types.JobID{idA, idB, idC, idA, idB, idC}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round robin order %v, want %v", got, want)
		}
	}
}

func TestPoolAssignmentKeepsJob(t *testing.T) {
	// The paper: "when it assigns a job to a workstation, the scheduler
	// keeps that job in its pool so that the job can also be assigned to
	// other idle workstations."
	p := NewPool()
	p.Submit(wire.JobSpec{Name: "only"})
	for i := 0; i < 5; i++ {
		if _, ok := p.Request(); !ok {
			t.Fatal("job vanished from the pool after assignment")
		}
	}
	if p.Len() != 1 {
		t.Fatalf("pool len = %d, want 1", p.Len())
	}
}

func TestPoolDone(t *testing.T) {
	p := NewPool()
	a := p.Submit(wire.JobSpec{Name: "a"})
	b := p.Submit(wire.JobSpec{Name: "b"})
	p.Done(a)
	spec, ok := p.Request()
	if !ok || spec.ID != b {
		t.Fatalf("got %v,%v want job b", spec.ID, ok)
	}
	p.Done(b)
	if _, ok := p.Request(); ok {
		t.Fatal("empty pool handed out a job")
	}
	p.Done(b) // double-done is a no-op
}

func TestPoolDoneMidRotation(t *testing.T) {
	p := NewPool()
	a := p.Submit(wire.JobSpec{Name: "a"})
	b := p.Submit(wire.JobSpec{Name: "b"})
	c := p.Submit(wire.JobSpec{Name: "c"})
	p.Request() // a
	p.Request() // b; next=2 → c
	p.Done(a)
	spec, _ := p.Request()
	if spec.ID != c {
		t.Fatalf("after removing a, expected c next, got %d", spec.ID)
	}
	spec, _ = p.Request()
	if spec.ID != b {
		t.Fatalf("rotation broken after Done: got %d want %d", spec.ID, b)
	}
}

func TestServerClient(t *testing.T) {
	pool := NewPool()
	srv, err := NewServer(pool, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli := NewClient(srv.Addr())
	defer cli.Close()

	if _, ok, err := cli.Request(1); err != nil || ok {
		t.Fatalf("empty pool: ok=%v err=%v", ok, err)
	}
	id, err := cli.Submit(wire.JobSpec{Name: "ray", Program: "ray", RootFn: "ray"})
	if err != nil {
		t.Fatal(err)
	}
	spec, ok, err := cli.Request(1)
	if err != nil || !ok || spec.ID != id || spec.Name != "ray" {
		t.Fatalf("request: spec=%+v ok=%v err=%v", spec, ok, err)
	}
	jobs, err := cli.List()
	if err != nil || len(jobs) != 1 {
		t.Fatalf("list: %v %v", jobs, err)
	}
	if err := cli.Done(id); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := cli.Request(1); ok {
		t.Fatal("job still assigned after Done")
	}
}

func TestClientReconnects(t *testing.T) {
	pool := NewPool()
	srv, err := NewServer(pool, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cli := NewClient(addr)
	defer cli.Close()
	if _, err := cli.Submit(wire.JobSpec{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	// Kill the server; the next call must fail, not hang.
	srv.Close()
	if _, _, err := cli.Request(1); err == nil {
		t.Fatal("request to dead server succeeded")
	}
	// Bring a new server up on the same pool at a new address; a fresh
	// client works (managers would be re-pointed by configuration).
	srv2, err := NewServer(pool, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cli2 := NewClient(srv2.Addr())
	defer cli2.Close()
	if _, ok, err := cli2.Request(1); err != nil || !ok {
		t.Fatalf("request after restart: ok=%v err=%v", ok, err)
	}
}

func TestPolicyFCFS(t *testing.T) {
	p := NewPoolWithPolicy(FirstComeFirstServed)
	a := p.Submit(wire.JobSpec{Name: "a"})
	b := p.Submit(wire.JobSpec{Name: "b"})
	for i := 0; i < 4; i++ {
		spec, _ := p.Request()
		if spec.ID != a {
			t.Fatalf("FCFS handed out %d before job a finished", spec.ID)
		}
	}
	p.Done(a)
	spec, _ := p.Request()
	if spec.ID != b {
		t.Fatalf("after a is done, FCFS should hand out b, got %d", spec.ID)
	}
}

func TestPolicyPriority(t *testing.T) {
	p := NewPoolWithPolicy(PriorityFirst)
	p.Submit(wire.JobSpec{Name: "low", Priority: 1})
	hi := p.Submit(wire.JobSpec{Name: "high", Priority: 9})
	p.Submit(wire.JobSpec{Name: "mid", Priority: 5})
	for i := 0; i < 3; i++ {
		spec, _ := p.Request()
		if spec.ID != hi {
			t.Fatalf("priority pool handed out %q", spec.Name)
		}
	}
}

func TestPolicyLeastServed(t *testing.T) {
	p := NewPoolWithPolicy(LeastServed)
	a := p.Submit(wire.JobSpec{Name: "a"})
	b := p.Submit(wire.JobSpec{Name: "b"})
	counts := map[types.JobID]int{}
	for i := 0; i < 10; i++ {
		spec, _ := p.Request()
		counts[spec.ID]++
	}
	if counts[a] != 5 || counts[b] != 5 {
		t.Fatalf("least-served is unfair: %v", counts)
	}
	if p.Grants(a) != 5 {
		t.Fatalf("grants(a) = %d", p.Grants(a))
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, pol := range []Policy{RoundRobin, FirstComeFirstServed, PriorityFirst, LeastServed} {
		if pol.String() == "" || pol.String()[0] == 'P' {
			t.Errorf("policy %d has no name", pol)
		}
	}
}
