module phish

go 1.22
