// Command phishworker runs one worker process of a parallel job over UDP:
// it registers with the job's clearinghouse and participates under the
// micro-level scheduler until the job ends, the owner returns (SIGTERM →
// graceful drain), or its steal attempts keep failing (retirement).
//
// On SIGTERM/SIGINT the worker runs the planned-drain sequence: the
// in-flight task is preempted at its next Yield (keeping its checkpoint),
// the deque is handed to a clearinghouse-chosen victim, a final StatReport
// is flushed, and the worker unregisters — nothing is dropped on the
// floor. -drain=false restores the legacy reclaim (migrate without
// checkpoint preemption: the running task finishes first). A second signal
// always escalates to the immediate reclaim path.
//
// It is normally started by phishjobmanager; run it by hand to add one
// machine to a job:
//
//	phishworker -ch host:7071 -job 1 -program pfold -worker 42
//
// A clearinghouse outage is survivable: the worker keeps computing on
// its own deque, re-registers with jittered exponential backoff, and
// resyncs (re-delivering a held root result if it owns one) when a
// recovered clearinghouse comes back on the same address.
//
// The exit code reports why the worker left: 0 job done, 3 reclaimed,
// 4 retired for lack of work, 5 crashed/error.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"phish/internal/apps"
	"phish/internal/clock"
	"phish/internal/core"
	"phish/internal/phishnet"
	"phish/internal/telemetry"
	"phish/internal/trace"
	"phish/internal/types"
	"phish/internal/wire"
)

// Exit codes understood by phishjobmanager.
const (
	exitJobDone   = 0
	exitReclaimed = 3
	exitNoWork    = 4
	exitCrash     = 5
)

func main() {
	chAddr := flag.String("ch", "", "clearinghouse UDP address (required)")
	job := flag.Int64("job", 1, "job id")
	program := flag.String("program", "", "program name (must match the job)")
	workerID := flag.Int("worker", os.Getpid(), "job-unique worker id")
	addr := flag.String("addr", ":0", "local UDP address")
	maxFail := flag.Int("maxfail", 60, "consecutive failed steals before retiring (0 = never)")
	hb := flag.Duration("hb", 5*time.Second, "heartbeat interval (0 disables)")
	seed := flag.Int64("seed", 1, "victim-selection seed")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /healthz, /debug/trace on this HTTP address (off when empty)")
	drain := flag.Bool("drain", true, "on SIGTERM/SIGINT run the graceful drain (checkpointed handoff); false = legacy reclaim")
	flag.Parse()

	if *chAddr == "" || *program == "" {
		flag.Usage()
		os.Exit(exitCrash)
	}
	apps.RegisterAll()
	prog, err := core.LookupProgram(*program)
	if err != nil {
		log.Fatalf("phishworker: %v", err)
	}

	conn, err := phishnet.ListenUDP(types.JobID(*job), types.WorkerID(*workerID), *addr)
	if err != nil {
		log.Fatalf("phishworker: %v", err)
	}
	conn.SetPeer(types.ClearinghouseID, *chAddr)

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.MaxStealFailures = *maxFail
	cfg.HeartbeatEvery = *hb
	// A real LAN needs more patience than the in-process fabric.
	cfg.StealTimeout = time.Second
	cfg.StealBackoff = 5 * time.Millisecond

	if *metricsAddr != "" {
		cfg.Metrics = telemetry.NewMetrics()
		cfg.Trace = trace.NewBuffer(4096)
	}

	w := core.NewWorker(types.JobID(*job), types.WorkerID(*workerID), prog, conn, cfg, clock.System)

	if *metricsAddr != "" {
		// The transport shares the worker's fault counters, backoff
		// histogram, and trace ring.
		conn.Instrument(w.Counters(), cfg.Metrics, cfg.Trace)
		reg := cfg.Metrics.Reg
		telemetry.RegisterStats(reg, w.Stats, telemetry.Label{Name: "worker", Value: strconv.Itoa(*workerID)})
		telemetry.RegisterRuntime(reg)
		srv, err := telemetry.Serve(*metricsAddr, reg, cfg.Trace)
		if err != nil {
			log.Fatalf("phishworker: %v", err)
		}
		defer srv.Close()
		fmt.Printf("phishworker: telemetry on http://%s/metrics\n", srv.Addr())
	}

	// SIGTERM / SIGINT = the owner returned: drain (or reclaim) and leave.
	// A second signal escalates a stuck drain to the immediate reclaim.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		if *drain {
			w.Drain()
			<-sig
		}
		w.Reclaim()
	}()

	fmt.Printf("phishworker: worker %d joining job %d (%s) via %s\n",
		*workerID, *job, *program, *chAddr)
	if err := w.Run(); err != nil {
		log.Printf("phishworker: %v", err)
		os.Exit(exitCrash)
	}
	s := w.Stats()
	fmt.Printf("phishworker: left (%v) after %v — %v\n", w.LeaveReason(), s.ExecTime.Round(time.Millisecond), s)

	switch w.LeaveReason() {
	case wire.LeaveJobDone:
		os.Exit(exitJobDone)
	case wire.LeaveReclaimed:
		os.Exit(exitReclaimed)
	case wire.LeaveNoWork:
		os.Exit(exitNoWork)
	default:
		os.Exit(exitCrash)
	}
}
