// Package apps catalogs the bundled Phish applications — the paper's two
// toy programs (fib, nqueens), its two real ones (pfold, ray), and the
// "new applications" its future work calls for (knary, matmul) — so the
// command-line binaries can start any of them by name, the way the
// paper's users typed "ray my-scene".
package apps

import (
	"fmt"
	"sort"
	"strconv"

	"phish"
	"phish/internal/apps/fib"
	"phish/internal/apps/knary"
	"phish/internal/apps/matmul"
	"phish/internal/apps/nqueens"
	"phish/internal/apps/pfold"
	"phish/internal/apps/ray"
)

// App describes one runnable application.
type App struct {
	// Name is the program name used in job specs.
	Name string
	// Usage documents the command-line arguments.
	Usage string
	// Program returns the registered parallel program.
	Program func() *phish.Program
	// Root is the root task function name.
	Root string
	// ParseArgs converts command-line arguments to root task arguments.
	ParseArgs func(args []string) ([]phish.Value, error)
	// Render formats the job result for a terminal (images summarize
	// themselves; write them with cmd/phish's -out flag).
	Render func(v phish.Value) string
}

var catalog = map[string]App{
	"fib": {
		Name:    "fib",
		Usage:   "fib <n>                 — naive doubly-recursive Fibonacci",
		Program: fib.Program,
		Root:    fib.Root,
		ParseArgs: func(args []string) ([]phish.Value, error) {
			n, err := one(args, "fib", 30)
			if err != nil {
				return nil, err
			}
			return fib.RootArgs(n), nil
		},
		Render: func(v phish.Value) string { return fmt.Sprintf("fib = %d", v) },
	},
	"matmul": {
		Name:    "matmul",
		Usage:   "matmul <n> [seed]       — multiply two random n×n matrices (n = 32·2^k)",
		Program: matmul.Program,
		Root:    matmul.Root,
		ParseArgs: func(args []string) ([]phish.Value, error) {
			n, err := one(args, "matmul", 256)
			if err != nil {
				return nil, err
			}
			if n < 1 {
				return nil, fmt.Errorf("matmul: n must be positive, got %d", n)
			}
			for m := n; m > int64(matmul.LeafSize); m /= 2 {
				if m%2 != 0 {
					return nil, fmt.Errorf("matmul: n must halve evenly down to %d, got %d", matmul.LeafSize, n)
				}
			}
			seed := int64(1)
			if len(args) > 1 {
				s, err := strconv.ParseInt(args[1], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("matmul: bad seed %q", args[1])
				}
				seed = s
			}
			a := matmul.Random(int(n), seed)
			b := matmul.Random(int(n), seed+1)
			return matmul.RootArgs(a, b, int(n)), nil
		},
		Render: func(v phish.Value) string {
			c := v.([]float64)
			var sum float64
			for _, x := range c {
				sum += x
			}
			return fmt.Sprintf("product computed: %d entries, checksum %.0f", len(c), sum)
		},
	},
	"nqueens": {
		Name:    "nqueens",
		Usage:   "nqueens <n>             — count n-queens placements by backtrack search",
		Program: nqueens.Program,
		Root:    nqueens.Root,
		ParseArgs: func(args []string) ([]phish.Value, error) {
			n, err := one(args, "nqueens", 12)
			if err != nil {
				return nil, err
			}
			return nqueens.RootArgs(int(n)), nil
		},
		Render: func(v phish.Value) string { return fmt.Sprintf("solutions = %d", v) },
	},
	"pfold": {
		Name:    "pfold",
		Usage:   "pfold <n> [threshold]   — fold an n-monomer polymer, histogram energies",
		Program: pfold.Program,
		Root:    pfold.Root,
		ParseArgs: func(args []string) ([]phish.Value, error) {
			n, err := one(args[:min(len(args), 1)], "pfold", 16)
			if err != nil {
				return nil, err
			}
			threshold := 0
			if len(args) > 1 {
				t, err := strconv.Atoi(args[1])
				if err != nil {
					return nil, fmt.Errorf("pfold: bad threshold %q", args[1])
				}
				threshold = t
			}
			return pfold.RootArgs(int(n), threshold), nil
		},
		Render: func(v phish.Value) string {
			hist := v.([]int64)
			out := fmt.Sprintf("foldings = %d\nenergy histogram:", pfold.Foldings(hist))
			for e, c := range hist {
				if c != 0 {
					out += fmt.Sprintf("\n  E=%-3d %d", e, c)
				}
			}
			return out
		},
	},
	"knary": {
		Name:    "knary",
		Usage:   "knary <depth> <fan> <work> — synthetic k-ary tree with tunable grain",
		Program: knary.Program,
		Root:    knary.Root,
		ParseArgs: func(args []string) ([]phish.Value, error) {
			depth, fan, work := int64(9), int64(3), int64(256)
			parse := func(i int, dst *int64, name string) error {
				if len(args) > i {
					v, err := strconv.ParseInt(args[i], 10, 64)
					if err != nil {
						return fmt.Errorf("knary: bad %s %q", name, args[i])
					}
					*dst = v
				}
				return nil
			}
			for i, spec := range []struct {
				dst  *int64
				name string
			}{{&depth, "depth"}, {&fan, "fan"}, {&work, "work"}} {
				if err := parse(i, spec.dst, spec.name); err != nil {
					return nil, err
				}
			}
			return knary.RootArgs(depth, fan, work), nil
		},
		Render: func(v phish.Value) string { return fmt.Sprintf("nodes = %d", v) },
	},
	"ray": {
		Name:    "ray",
		Usage:   "ray <scene> [w h band]  — trace a registered scene (default, ring)",
		Program: ray.Program,
		Root:    ray.Root,
		ParseArgs: func(args []string) ([]phish.Value, error) {
			scene := "default"
			w, h, band := 320, 240, 0
			if len(args) > 0 {
				scene = args[0]
			}
			if _, err := ray.SceneByName(scene); err != nil {
				return nil, err
			}
			var err error
			if len(args) > 2 {
				if w, err = strconv.Atoi(args[1]); err != nil {
					return nil, fmt.Errorf("ray: bad width %q", args[1])
				}
				if h, err = strconv.Atoi(args[2]); err != nil {
					return nil, fmt.Errorf("ray: bad height %q", args[2])
				}
			}
			if len(args) > 3 {
				if band, err = strconv.Atoi(args[3]); err != nil {
					return nil, fmt.Errorf("ray: bad band %q", args[3])
				}
			}
			return ray.RootArgs(scene, w, h, band), nil
		},
		Render: func(v phish.Value) string {
			img := v.([]byte)
			return fmt.Sprintf("rendered image: %d bytes (use -out file.ppm to save)", len(img))
		},
	},
}

func one(args []string, app string, def int64) (int64, error) {
	if len(args) == 0 {
		return def, nil
	}
	n, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: bad argument %q", app, args[0])
	}
	return n, nil
}

// Lookup finds an application by name.
func Lookup(name string) (App, error) {
	app, ok := catalog[name]
	if !ok {
		return App{}, fmt.Errorf("apps: unknown program %q (have %v)", name, Names())
	}
	return app, nil
}

// Names lists the bundled applications.
func Names() []string {
	names := make([]string, 0, len(catalog))
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Usage returns the catalog's usage lines.
func Usage() string {
	var out string
	for _, n := range Names() {
		out += "  " + catalog[n].Usage + "\n"
	}
	return out
}

// RegisterAll registers every bundled program in the process-global
// program registry (worker binaries call this at startup so any job can
// be joined).
func RegisterAll() {
	for _, n := range Names() {
		phish.RegisterProgram(catalog[n].Program())
	}
}
