package phish_test

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// Integration tests that build and drive the real binaries — PhishJobQ,
// PhishJobManager, worker, launcher — over localhost sockets, the way an
// operator would deploy them across machines. Skipped under -short.

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// buildBinaries compiles the cmd/ tree once per test process.
func buildBinaries(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "phish-bin-*")
		if buildErr != nil {
			return
		}
		for _, cmd := range []string{"phish", "phishjobq", "phishjobmanager", "phishworker", "clearinghouse", "phishbench"} {
			out, err := exec.Command("go", "build", "-o", filepath.Join(binDir, cmd), "./cmd/"+cmd).CombinedOutput()
			if err != nil {
				buildErr = fmt.Errorf("build %s: %v\n%s", cmd, err, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binDir
}

// freePort reserves a localhost TCP port.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func TestBinariesLauncherLocalJob(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds binaries; skipped with -short")
	}
	bin := buildBinaries(t)
	// The paper's UX: one command runs the job (clearinghouse + first
	// worker start locally).
	out, err := exec.Command(filepath.Join(bin, "phish"),
		"-workers", "2", "-timeout", "60s", "fib", "25").CombinedOutput()
	if err != nil {
		t.Fatalf("phish fib 25: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "fib = 75025") {
		t.Errorf("output missing result:\n%s", out)
	}
}

func TestBinariesFullMacroStack(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds binaries; skipped with -short")
	}
	bin := buildBinaries(t)

	// 1. PhishJobQ.
	jobqAddr := freePort(t)
	jobq := exec.Command(filepath.Join(bin, "phishjobq"), "-addr", jobqAddr)
	var jobqOut bytes.Buffer
	jobq.Stdout, jobq.Stderr = &jobqOut, &jobqOut
	if err := jobq.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = jobq.Process.Kill()
		_, _ = jobq.Process.Wait()
	}()
	waitListening(t, jobqAddr)

	// 2. Two always-idle workstations run PhishJobManagers that start
	// phishworker processes for whatever lands in the pool.
	var managers []*exec.Cmd
	mgrOuts := make([]*bytes.Buffer, 0, 2) // one buffer per process: exec's
	// copier goroutines must not share one
	for ws := 1; ws <= 2; ws++ {
		mgr := exec.Command(filepath.Join(bin, "phishjobmanager"),
			"-jobq", jobqAddr,
			"-ws", fmt.Sprint(ws),
			"-policy", "always",
			"-worker-bin", filepath.Join(bin, "phishworker"),
			"-busy-poll", "200ms", "-idle-retry", "150ms", "-work-poll", "100ms")
		buf := &bytes.Buffer{}
		mgrOuts = append(mgrOuts, buf)
		mgr.Stdout, mgr.Stderr = buf, buf
		if err := mgr.Start(); err != nil {
			t.Fatal(err)
		}
		managers = append(managers, mgr)
	}
	defer func() {
		for _, m := range managers {
			_ = m.Process.Kill()
			_, _ = m.Process.Wait()
		}
	}()

	// 3. A user launches nqueens(10); idle workstations pile on.
	out, err := exec.Command(filepath.Join(bin, "phish"),
		"-jobq", jobqAddr, "-workers", "1", "-timeout", "120s",
		"nqueens", "10").CombinedOutput()
	if err != nil {
		var mgrLogs string
		for i, b := range mgrOuts {
			mgrLogs += fmt.Sprintf("-- manager %d --\n%s", i+1, b.String())
		}
		t.Fatalf("phish nqueens: %v\n%s\n%s", err, out, mgrLogs)
	}
	if !strings.Contains(string(out), "solutions = 724") {
		t.Errorf("wrong or missing result:\n%s", out)
	}
}

func TestBinariesBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds binaries; skipped with -short")
	}
	bin := buildBinaries(t)
	out, err := exec.Command(filepath.Join(bin, "phishbench"),
		"-exp", "fig5", "-pfold-n", "12", "-ps", "1,2").CombinedOutput()
	if err != nil {
		t.Fatalf("phishbench: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Figure 5") || !strings.Contains(string(out), "speedup") {
		t.Errorf("bench output malformed:\n%s", out)
	}
}

// waitListening polls until a TCP endpoint accepts connections.
func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("nothing listening on %s", addr)
}

func TestBinariesCheckpointRestore(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds binaries; skipped with -short")
	}
	bin := buildBinaries(t)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "job.ckpt")

	// A job long enough to checkpoint mid-flight.
	first := exec.Command(filepath.Join(bin, "phish"),
		"-workers", "2",
		"-checkpoint", ckpt, "-checkpoint-every", "400ms",
		"-timeout", "120s",
		"pfold", "16", "3")
	var firstOut bytes.Buffer
	first.Stdout, first.Stderr = &firstOut, &firstOut
	if err := first.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for a checkpoint to land, then pull the plug.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if fi, err := os.Stat(ckpt); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			_ = first.Process.Kill()
			_, _ = first.Process.Wait()
			t.Fatalf("no checkpoint appeared; output:\n%s", firstOut.String())
		}
		// The job may simply have finished before the first checkpoint.
		if first.ProcessState != nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	_ = first.Process.Kill() // power cut: no graceful anything
	_, _ = first.Process.Wait()
	if _, err := os.Stat(ckpt); err != nil {
		t.Skipf("job finished before the first checkpoint (%v); nothing to restore", err)
	}

	// Resurrect from the file on "new hardware".
	out, err := exec.Command(filepath.Join(bin, "phish"),
		"-workers", "2", "-timeout", "120s",
		"-restore", ckpt).CombinedOutput()
	if err != nil {
		t.Fatalf("restore: %v\n%s", err, out)
	}
	// pfold(16) has 6,416,596 foldings (self-avoiding walks of 15 steps).
	if !strings.Contains(string(out), "foldings = 6416596") {
		t.Errorf("restored job produced wrong output:\n%s", out)
	}
	if !strings.Contains(string(out), "resuming job") {
		t.Errorf("restore path not taken:\n%s", out)
	}
}
