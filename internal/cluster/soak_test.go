package cluster

import (
	"math/rand"
	"testing"
	"time"

	"phish/internal/apps/fib"
	"phish/internal/apps/nqueens"
	"phish/internal/apps/pfold"
	"phish/internal/idlesim"
	"phish/internal/phishnet"
	"phish/internal/types"
)

// TestChurnSoak floods a simulated NOW with jobs while owners wander on
// and off their machines and random workers are crashed outright. Every
// job must finish with the right answer, no matter the interleaving of
// joins, reclaims (migration), retirements, and crash redos. This is the
// whole paper in one test.
func TestChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; skipped with -short")
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	c := New(fastOpts())
	defer c.Close()

	// Half the machines have restless owners, half are dedicated.
	for i := 0; i < 8; i++ {
		if i%2 == 0 {
			c.AddWorkstation(idlesim.Always{})
		} else {
			c.AddWorkstation(idlesim.NewActivity(int64(i), time.Now(),
				30*time.Millisecond, 150*time.Millisecond, // busy
				50*time.Millisecond, 250*time.Millisecond, // idle
				true))
		}
	}

	type want struct {
		job   *Job
		check func(v types.Value) bool
		name  string
	}
	jobs := []want{
		{c.Submit(fib.Program(), fib.Root, fib.RootArgs(26)),
			func(v types.Value) bool { return v.(int64) == fib.Serial(26) }, "fib(26)"},
		{c.Submit(nqueens.Program(), nqueens.Root, nqueens.RootArgs(11)),
			func(v types.Value) bool { return v.(int64) == 2680 }, "nqueens(11)"},
		{c.Submit(pfold.Program(), pfold.Root, pfold.RootArgs(13, 5)),
			func(v types.Value) bool {
				return pfold.Foldings(v.([]int64)) == 324932 // SAW(12)
			}, "pfold(13)"},
		{c.Submit(fib.Program(), fib.Root, fib.RootArgs(25)),
			func(v types.Value) bool { return v.(int64) == fib.Serial(25) }, "fib(25)"},
	}

	// A gremlin crashes random live workers while the jobs run.
	stopGremlin := make(chan struct{})
	go func() {
		for {
			select {
			case <-stopGremlin:
				return
			case <-time.After(time.Duration(50+rng.Intn(150)) * time.Millisecond):
				j := jobs[rng.Intn(len(jobs))].job
				live := j.LiveWorkers()
				if len(live) > 1 {
					j.Crash(live[rng.Intn(len(live))])
				}
			}
		}
	}()

	for _, w := range jobs {
		v, err := w.job.Wait(120 * time.Second)
		if err != nil {
			close(stopGremlin)
			t.Fatalf("%s never finished: %v", w.name, err)
		}
		if !w.check(v) {
			t.Errorf("%s: wrong answer %v", w.name, v)
		}
	}
	close(stopGremlin)

	// Post-mortem sanity: nothing negative, no lost work (crashes can
	// only add redo duplicates).
	for _, w := range jobs {
		tot := w.job.Totals()
		if tot.TasksExecuted <= 0 {
			t.Errorf("%s: nonsense totals %+v", w.name, tot)
		}
	}
}

// TestCrashRestartSoak layers control-plane failures on top of the churn:
// the fault fabric (fixed seed) duplicates and delay-reorders messages,
// random workers are crashed outright, each job's clearinghouse gets
// killed and restarted from its journal mid-run, and the PhishJobQ goes
// through full stop/restart outages. Every job must still produce the
// exact answer, and conservation must hold — the executed-task total is at
// least the fault-free task count, because lost work is redone (crashes
// only add duplicates, never subtract).
func TestCrashRestartSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; skipped with -short")
	}
	rng := rand.New(rand.NewSource(20260806))
	opts := fastOpts()
	opts.StateDir = t.TempDir()
	opts.Faults = &phishnet.FaultPlan{
		Seed:        20260806,
		Duplicate:   0.05,
		Delay:       300 * time.Microsecond,
		DelayJitter: 300 * time.Microsecond,
	}
	c := New(opts)
	defer c.Close()

	for i := 0; i < 6; i++ {
		if i%2 == 0 {
			c.AddWorkstation(idlesim.Always{})
		} else {
			c.AddWorkstation(idlesim.NewActivity(int64(i), time.Now(),
				30*time.Millisecond, 150*time.Millisecond, // busy
				50*time.Millisecond, 250*time.Millisecond, // idle
				true))
		}
	}

	type want struct {
		job      *Job
		check    func(v types.Value) bool
		name     string
		minTasks int64
	}
	jobs := []want{
		{c.Submit(fib.Program(), fib.Root, fib.RootArgs(26)),
			func(v types.Value) bool { return v.(int64) == fib.Serial(26) }, "fib(26)", fib.TaskCount(26)},
		{c.Submit(pfold.Program(), pfold.Root, pfold.RootArgs(13, 5)),
			func(v types.Value) bool {
				return pfold.Foldings(v.([]int64)) == 324932 // SAW(12)
			}, "pfold(13)", 0},
		{c.Submit(fib.Program(), fib.Root, fib.RootArgs(25)),
			func(v types.Value) bool { return v.(int64) == fib.Serial(25) }, "fib(25)", fib.TaskCount(25)},
	}

	// The gremlin rotates through worker crashes, clearinghouse
	// crash/restart cycles, and PhishJobQ outages. Restart always follows
	// crash within the same iteration, so every disruption heals.
	stopGremlin := make(chan struct{})
	gremlinDone := make(chan struct{})
	go func() {
		defer close(gremlinDone)
		chCycles, jobqCycles := 0, 0
		for {
			select {
			case <-stopGremlin:
				return
			case <-time.After(time.Duration(40+rng.Intn(120)) * time.Millisecond):
			}
			switch rng.Intn(4) {
			case 0: // crash a random live worker
				j := jobs[rng.Intn(len(jobs))].job
				live := j.LiveWorkers()
				if len(live) > 1 {
					j.Crash(live[rng.Intn(len(live))])
				}
			case 1: // clearinghouse outage
				if chCycles >= 6 {
					continue
				}
				chCycles++
				j := jobs[rng.Intn(len(jobs))].job
				j.CrashClearinghouse()
				time.Sleep(time.Duration(20+rng.Intn(60)) * time.Millisecond)
				if err := j.RestartClearinghouse(); err != nil {
					t.Errorf("clearinghouse restart: %v", err)
					return
				}
			case 2: // PhishJobQ outage
				if jobqCycles >= 2 {
					continue
				}
				jobqCycles++
				c.StopJobQ()
				time.Sleep(time.Duration(30+rng.Intn(80)) * time.Millisecond)
				if err := c.RestartJobQ(); err != nil {
					t.Errorf("jobq restart: %v", err)
					return
				}
			default: // quiet tick
			}
		}
	}()

	for _, w := range jobs {
		v, err := w.job.Wait(180 * time.Second)
		if err != nil {
			close(stopGremlin)
			<-gremlinDone
			t.Fatalf("%s never finished: %v", w.name, err)
		}
		if !w.check(v) {
			t.Errorf("%s: wrong answer %v", w.name, v)
		}
	}
	close(stopGremlin)
	<-gremlinDone

	for _, w := range jobs {
		tot := w.job.Totals()
		if tot.TasksExecuted <= 0 {
			t.Errorf("%s: nonsense totals %+v", w.name, tot)
		}
		if w.minTasks > 0 && tot.TasksExecuted < w.minTasks {
			t.Errorf("%s: executed %d < fault-free %d tasks; work was lost",
				w.name, tot.TasksExecuted, w.minTasks)
		}
	}
}
