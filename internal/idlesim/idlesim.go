// Package idlesim generates synthetic workstation-owner activity. The
// paper's PhishJobManager decides idleness from Unix login sessions
// ("a workstation is deemed idle only when no users are logged in"); this
// repo has no owners logging in and out, so the simulated cluster drives
// the very same policy code with a deterministic, seeded alternation of
// busy and idle periods — the substitution recorded in DESIGN.md.
package idlesim

import (
	"math/rand"
	"sync"
	"time"
)

// Activity is a deterministic schedule of alternating busy/idle periods.
// Idle(t) answers whether the owner is away at time t; the schedule is
// generated lazily as queries advance, so it works with both real and
// virtual clocks. Safe for concurrent use.
type Activity struct {
	mu   sync.Mutex
	rng  *rand.Rand
	end  time.Time // schedule generated up to here
	segs []segment

	busyMin, busyMax time.Duration
	idleMin, idleMax time.Duration
	startIdle        bool
}

type segment struct {
	until time.Time
	idle  bool
}

// NewActivity builds a schedule starting at start. The owner alternates
// busy periods of [busyMin, busyMax] and idle periods of [idleMin,
// idleMax], starting busy (startIdle=false) or idle.
func NewActivity(seed int64, start time.Time, busyMin, busyMax, idleMin, idleMax time.Duration, startIdle bool) *Activity {
	if busyMax < busyMin || idleMax < idleMin {
		panic("idlesim: max duration below min")
	}
	return &Activity{
		rng:       rand.New(rand.NewSource(seed)),
		end:       start,
		busyMin:   busyMin,
		busyMax:   busyMax,
		idleMin:   idleMin,
		idleMax:   idleMax,
		startIdle: startIdle,
	}
}

func (a *Activity) randDur(min, max time.Duration) time.Duration {
	if max == min {
		return min
	}
	return min + time.Duration(a.rng.Int63n(int64(max-min)))
}

// Idle reports whether the owner is away at time t (t at or after the
// schedule start).
func (a *Activity) Idle(t time.Time) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for !a.end.After(t) {
		idle := a.startIdle
		if n := len(a.segs); n > 0 {
			idle = !a.segs[n-1].idle
		}
		var d time.Duration
		if idle {
			d = a.randDur(a.idleMin, a.idleMax)
		} else {
			d = a.randDur(a.busyMin, a.busyMax)
		}
		a.end = a.end.Add(d)
		a.segs = append(a.segs, segment{until: a.end, idle: idle})
	}
	for _, s := range a.segs {
		if t.Before(s.until) {
			return s.idle
		}
	}
	return a.startIdle // unreachable; the loop above extends past t
}

// Always is an owner who never comes back: the workstation is always idle.
type Always struct{}

// Idle implements the policy query.
func (Always) Idle(time.Time) bool { return true }

// Never is an owner who never leaves: the workstation is never idle.
type Never struct{}

// Idle implements the policy query.
func (Never) Idle(time.Time) bool { return false }

// LoadTrace is a synthetic CPU-load signal for the load-threshold idleness
// policy: a mean-reverting random walk in [0, 1], sampled on a fixed grid
// so queries are deterministic in t. Safe for concurrent use.
type LoadTrace struct {
	mu      sync.Mutex
	rng     *rand.Rand
	start   time.Time
	step    time.Duration
	samples []float64
}

// NewLoadTrace builds a load trace starting at start with the given
// sampling step.
func NewLoadTrace(seed int64, start time.Time, step time.Duration) *LoadTrace {
	if step <= 0 {
		panic("idlesim: non-positive load step")
	}
	return &LoadTrace{rng: rand.New(rand.NewSource(seed)), start: start, step: step}
}

// Load returns the simulated CPU load at time t in [0, 1].
func (l *LoadTrace) Load(t time.Time) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	idx := int(t.Sub(l.start) / l.step)
	if idx < 0 {
		idx = 0
	}
	for len(l.samples) <= idx {
		prev := 0.3
		if n := len(l.samples); n > 0 {
			prev = l.samples[n-1]
		}
		// Mean-revert toward 0.3 with noise.
		next := prev + 0.25*(0.3-prev) + 0.3*(l.rng.Float64()-0.5)
		if next < 0 {
			next = 0
		}
		if next > 1 {
			next = 1
		}
		l.samples = append(l.samples, next)
	}
	return l.samples[idx]
}
