package telemetry

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"phish/internal/wire"
)

// Property: a sample lands in exactly one bucket, and that bucket is the
// first whose bound is >= the sample (or the overflow bucket).
func TestBucketPlacementProperty(t *testing.T) {
	bounds := DefaultLatencyBounds()
	max := bounds[len(bounds)-1]
	f := func(raw uint64) bool {
		// Range over 2x the top bound so the overflow bucket is exercised.
		v := int64(raw % uint64(2*max))
		h := NewHistogram(bounds)
		h.Observe(v)
		s := h.Snapshot()
		idx := -1
		for i, c := range s.Counts {
			switch c {
			case 0:
			case 1:
				if idx != -1 {
					return false // sample counted twice
				}
				idx = i
			default:
				return false
			}
		}
		if idx == -1 {
			return false // sample lost
		}
		if idx < len(bounds) && v > bounds[idx] {
			return false // bucket bound below the sample
		}
		if idx > 0 && v <= bounds[idx-1] {
			return false // an earlier bucket should have caught it
		}
		if idx == len(bounds) && v <= max {
			return false // overflow holds only samples above every bound
		}
		return s.Count == 1 && s.Sum == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging two histograms' snapshots equals the histogram of the
// merged sample streams.
func TestMergeEquivalenceProperty(t *testing.T) {
	bounds := []int64{10, 100, 1000, 10000}
	f := func(a, b []uint16) bool {
		ha, hb, hall := NewHistogram(bounds), NewHistogram(bounds), NewHistogram(bounds)
		for _, v := range a {
			ha.Observe(int64(v))
			hall.Observe(int64(v))
		}
		for _, v := range b {
			hb.Observe(int64(v))
			hall.Observe(int64(v))
		}
		m := ha.Snapshot()
		m.Merge(hb.Snapshot())
		return reflect.DeepEqual(m, hall.Snapshot())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Merging into a zero-value snapshot adopts the other's bucket layout.
func TestMergeIntoEmpty(t *testing.T) {
	h := NewHistogram([]int64{5, 50})
	h.Observe(3)
	h.Observe(30)
	var m HistSnapshot
	m.Merge(h.Snapshot())
	if !reflect.DeepEqual(m, h.Snapshot()) {
		t.Fatalf("merge into empty: got %+v want %+v", m, h.Snapshot())
	}
}

func TestQuantile(t *testing.T) {
	var empty HistSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d, want 0", q)
	}
	h := NewHistogram([]int64{100, 200, 500})
	for i := 0; i < 100; i++ {
		h.Observe(150) // all in the (100,200] bucket
	}
	s := h.Snapshot()
	for _, q := range []float64{0.1, 0.5, 0.99} {
		v := s.Quantile(q)
		if v < 100 || v > 200 {
			t.Fatalf("q%.2f = %d, want within (100,200]", q, v)
		}
	}
	if s.Quantile(0.1) > s.Quantile(0.9) {
		t.Fatal("quantiles not monotonic in q")
	}
	// Overflow samples report the highest finite bound.
	h2 := NewHistogram([]int64{100})
	h2.Observe(1 << 40)
	if q := h2.Snapshot().Quantile(0.5); q != 100 {
		t.Fatalf("overflow quantile = %d, want 100", q)
	}
}

// Quantile estimates from the bucketed histogram stay within a bounded
// relative error of the true quantiles for known distributions. Samples
// are drawn deterministically through the inverse CDF so the test has no
// RNG noise: the only error sources are bucketing and the linear
// interpolation inside a bucket.
func TestQuantileAccuracy(t *testing.T) {
	const n = 10000
	ms := float64(time.Millisecond)
	cases := []struct {
		name     string
		inverse  func(u float64) float64 // inverse CDF: uniform u -> sample
		quantile func(q float64) float64 // true quantile
		tol      float64                 // allowed relative error
	}{
		{
			// Uniform is uniform within every bucket, so the in-bucket
			// interpolation is nearly exact.
			name:     "uniform 1ms..10ms",
			inverse:  func(u float64) float64 { return ms + u*9*ms },
			quantile: func(q float64) float64 { return ms + q*9*ms },
			tol:      0.10,
		},
		{
			// Exponential density decays within a bucket, so linear
			// interpolation overshoots slightly; still well bounded on
			// the 1-2-5 latency grid.
			name:     "exponential mean 1ms",
			inverse:  func(u float64) float64 { return -ms * math.Log(1-u) },
			quantile: func(q float64) float64 { return -ms * math.Log(1-q) },
			tol:      0.15,
		},
	}
	for _, tc := range cases {
		h := NewHistogram(DefaultLatencyBounds())
		for i := 0; i < n; i++ {
			u := (float64(i) + 0.5) / n
			h.Observe(int64(tc.inverse(u)))
		}
		s := h.Snapshot()
		for _, q := range []float64{0.5, 0.99} {
			got := float64(s.Quantile(q))
			want := tc.quantile(q)
			if relErr := math.Abs(got-want) / want; relErr > tc.tol {
				t.Errorf("%s: q%.2f = %.0fns, want %.0fns within %.0f%% (off by %.1f%%)",
					tc.name, q, got, want, tc.tol*100, relErr*100)
			}
		}
	}
}

// Every instrument tolerates a nil receiver — a disabled telemetry plane.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 {
		t.Fatal("nil histogram count")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot")
	}
	var m *Metrics
	m.StealRTT().Observe(1)
	m.TaskExec().ObserveSince(time.Now())
	m.WALAppend().Observe(1)
	m.RetxBackoff().Observe(1)
	m.Register().Observe(1)
	if got := m.Export(); got != nil {
		t.Fatalf("nil metrics export = %v, want nil", got)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "")
	if a != b {
		t.Fatal("re-registering a counter should return the same instance")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatal("shared counter did not share state")
	}
	l1 := r.Gauge("g", "", Label{"worker", "1"})
	l2 := r.Gauge("g", "", Label{"worker", "2"})
	if l1 == l2 {
		t.Fatal("distinct label sets must get distinct instruments")
	}
	h1 := r.Histogram("h", "", []int64{1, 2})
	h2 := r.Histogram("h", "", []int64{1, 2})
	if h1 != h2 {
		t.Fatal("re-registering a histogram should return the same instance")
	}
}

// Export/StateSnapshot round-trip: a worker's wire.HistState restores to
// the same snapshot the worker had, and MergeStates sums across workers.
func TestExportStateRoundTrip(t *testing.T) {
	m := NewMetrics()
	m.StealRTT().Observe(int64(3 * time.Microsecond))
	m.StealRTT().Observe(int64(30 * time.Microsecond))
	m.TaskExec().Observe(int64(time.Millisecond))

	states := m.Export()
	if len(states) != 2 {
		t.Fatalf("exported %d hist states, want 2 (empty ones skipped)", len(states))
	}
	for _, st := range states {
		got := StateSnapshot(st)
		want := m.Hist(HistKind(st.Kind)).Snapshot()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("kind %d: state round trip: got %+v want %+v", st.Kind, got, want)
		}
	}

	m2 := NewMetrics()
	m2.StealRTT().Observe(int64(3 * time.Microsecond))
	merged := MergeStates([][]wire.HistState{m.Export(), m2.Export()})
	if got := merged[HistStealRTT].Count; got != 3 {
		t.Fatalf("merged steal-rtt count = %d, want 3", got)
	}
	if got := merged[HistTaskExec].Count; got != 1 {
		t.Fatalf("merged task-exec count = %d, want 1", got)
	}
}
