package idlesim

import (
	"testing"
	"time"
)

func TestActivityAlternates(t *testing.T) {
	start := time.Date(1994, 8, 2, 9, 0, 0, 0, time.UTC)
	a := NewActivity(1, start, time.Hour, time.Hour, 30*time.Minute, 30*time.Minute, false)
	// Fixed durations: busy [0,1h), idle [1h,1h30), busy [1h30,2h30)...
	cases := []struct {
		at   time.Duration
		idle bool
	}{
		{0, false},
		{30 * time.Minute, false},
		{61 * time.Minute, true},
		{89 * time.Minute, true},
		{91 * time.Minute, false},
		{2*time.Hour + 31*time.Minute, true},
	}
	for _, c := range cases {
		if got := a.Idle(start.Add(c.at)); got != c.idle {
			t.Errorf("Idle(+%v) = %v, want %v", c.at, got, c.idle)
		}
	}
}

func TestActivityDeterministic(t *testing.T) {
	start := time.Date(1994, 8, 2, 0, 0, 0, 0, time.UTC)
	a := NewActivity(42, start, time.Minute, time.Hour, time.Minute, time.Hour, true)
	b := NewActivity(42, start, time.Minute, time.Hour, time.Minute, time.Hour, true)
	for i := 0; i < 500; i++ {
		at := start.Add(time.Duration(i) * 7 * time.Minute)
		if a.Idle(at) != b.Idle(at) {
			t.Fatalf("same seed diverged at %v", at)
		}
	}
}

func TestActivityStartIdle(t *testing.T) {
	start := time.Now()
	a := NewActivity(7, start, time.Hour, time.Hour, time.Hour, time.Hour, true)
	if !a.Idle(start) {
		t.Error("startIdle activity not idle at start")
	}
}

func TestActivityQueriesOutOfOrder(t *testing.T) {
	start := time.Now()
	a := NewActivity(3, start, time.Minute, 10*time.Minute, time.Minute, 10*time.Minute, false)
	// Query far future first, then earlier times; answers must be
	// consistent with a single fixed schedule.
	far := a.Idle(start.Add(48 * time.Hour))
	again := a.Idle(start.Add(48 * time.Hour))
	if far != again {
		t.Error("repeated query disagreed")
	}
	if a.Idle(start) != false {
		t.Error("first segment must be busy (startIdle=false)")
	}
}

func TestAlwaysNever(t *testing.T) {
	if !(Always{}).Idle(time.Now()) {
		t.Error("Always should be idle")
	}
	if (Never{}).Idle(time.Now()) {
		t.Error("Never should be busy")
	}
}

func TestLoadTraceBoundsAndDeterminism(t *testing.T) {
	start := time.Now()
	a := NewLoadTrace(5, start, time.Second)
	b := NewLoadTrace(5, start, time.Second)
	for i := 0; i < 1000; i++ {
		at := start.Add(time.Duration(i) * time.Second)
		la, lb := a.Load(at), b.Load(at)
		if la != lb {
			t.Fatalf("same seed diverged at %d", i)
		}
		if la < 0 || la > 1 {
			t.Fatalf("load %f out of [0,1]", la)
		}
	}
	// Same grid cell, same answer.
	if a.Load(start.Add(time.Second)) != a.Load(start.Add(1500*time.Millisecond)) {
		t.Error("same sample cell returned different loads")
	}
}
