package clearinghouse

import (
	"strings"
	"testing"
	"time"

	"phish/internal/clock"
	"phish/internal/phishnet"
	"phish/internal/types"
	"phish/internal/wire"
)

// chHarness wires a clearinghouse to a fabric with a manually driven
// "worker" port for protocol-level tests.
type chHarness struct {
	t   *testing.T
	fab *phishnet.Fabric
	ch  *Clearinghouse
}

func newHarness(t *testing.T, cfg Config) *chHarness {
	t.Helper()
	fab := phishnet.NewFabric()
	spec := wire.JobSpec{ID: 1, Name: "test", RootFn: "root", RootArgs: []types.Value{int64(1)}}
	ch := New(spec, fab.Attach(types.ClearinghouseID), cfg)
	go ch.Run()
	t.Cleanup(func() { ch.Stop(); fab.Close() })
	return &chHarness{t: t, fab: fab, ch: ch}
}

// attach registers a fake worker and returns its port.
func (h *chHarness) attach(id types.WorkerID) *phishnet.Port {
	h.t.Helper()
	port := h.fab.Attach(id)
	h.send(port, id, wire.Register{Worker: id})
	return port
}

func (h *chHarness) send(port *phishnet.Port, from types.WorkerID, payload any) {
	h.t.Helper()
	env := &wire.Envelope{Job: 1, From: from, To: types.ClearinghouseID, Payload: payload}
	if err := port.Send(env); err != nil {
		h.t.Fatalf("send %T: %v", payload, err)
	}
}

// expect reads messages from port until one of type matching check arrives
// (check returns true) or the timeout passes.
func expect[T any](t *testing.T, port *phishnet.Port, timeout time.Duration) T {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case env, ok := <-port.Recv():
			if !ok {
				t.Fatal("port closed")
			}
			if p, ok := env.Payload.(T); ok {
				return p
			}
		case <-deadline:
			var zero T
			t.Fatalf("timed out waiting for %T", zero)
			return zero
		}
	}
}

func TestRegisterGetsViewAndRoot(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	w := h.attach(10)
	rep := expect[wire.RegisterReply](t, w, time.Second)
	if len(rep.View.Members) != 1 || rep.View.Members[0].Worker != 10 {
		t.Errorf("bad view: %+v", rep.View)
	}
	root := expect[wire.SpawnRoot](t, w, time.Second)
	if root.Fn != "root" {
		t.Errorf("root fn = %q", root.Fn)
	}
}

func TestSecondRegistrantGetsNoRoot(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	w1 := h.attach(10)
	expect[wire.SpawnRoot](t, w1, time.Second)
	w2 := h.attach(11)
	expect[wire.RegisterReply](t, w2, time.Second)
	// w2 must not receive SpawnRoot; give it a moment and check nothing
	// of that type shows up.
	select {
	case env := <-w2.Recv():
		if _, bad := env.Payload.(wire.SpawnRoot); bad {
			t.Fatal("second registrant was told to spawn the root")
		}
	case <-time.After(50 * time.Millisecond):
	}
}

func TestMembershipPushedOnJoin(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	w1 := h.attach(10)
	expect[wire.RegisterReply](t, w1, time.Second)
	_ = h.attach(11)
	// w1 may first see the update from its own join; the join of w2 must
	// push a 2-member view promptly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		up := expect[wire.Update](t, w1, time.Second)
		if len(up.View.Members) == 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw a 2-member update (last had %d)", len(up.View.Members))
		}
	}
}

func TestRootResultCompletesJob(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	w := h.attach(10)
	expect[wire.SpawnRoot](t, w, time.Second)
	h.send(w, 10, wire.Arg{
		Cont: types.Continuation{Task: types.TaskID{Worker: types.ClearinghouseID, Seq: 1}},
		Val:  int64(55),
	})
	v, err := h.ch.WaitResult(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.(int64) != 55 {
		t.Errorf("result = %v", v)
	}
	expect[wire.Shutdown](t, w, time.Second)
	// Duplicate result (redo race) is dropped.
	h.send(w, 10, wire.Arg{
		Cont: types.Continuation{Task: types.TaskID{Worker: types.ClearinghouseID, Seq: 1}},
		Val:  int64(99),
	})
	v, _ = h.ch.WaitResult(time.Second)
	if v.(int64) != 55 {
		t.Errorf("duplicate result overwrote the first: %v", v)
	}
}

func TestMigrationTombstoneRouting(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	w1 := h.attach(10)
	expect[wire.RegisterReply](t, w1, time.Second)
	w2 := h.attach(11)
	expect[wire.RegisterReply](t, w2, time.Second)
	h.send(w1, 10, wire.Unregister{Worker: 10, Reason: wire.LeaveReclaimed, MigratedTo: 11})
	// w2's next update must carry the tombstone 10->11.
	deadline := time.Now().Add(2 * time.Second)
	for {
		up := expect[wire.Update](t, w2, time.Second)
		var found bool
		for _, m := range up.View.Members {
			if m.Worker == 10 && m.HostedBy == 11 {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("tombstone never appeared in updates")
		}
	}
	live := h.ch.LiveWorkers()
	if len(live) != 1 || live[0] != 11 {
		t.Errorf("live workers = %v, want [11]", live)
	}
}

func TestCrashBroadcastsWorkerDownAndRespawnsRoot(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	w1 := h.attach(10)
	expect[wire.SpawnRoot](t, w1, time.Second)
	w2 := h.attach(11)
	expect[wire.RegisterReply](t, w2, time.Second)
	// Worker 10 (the root host) dies with state.
	h.send(w2, 10, wire.Unregister{Worker: 10, Reason: wire.LeaveCrash})
	expect[wire.WorkerDown](t, w2, time.Second)
	root := expect[wire.SpawnRoot](t, w2, time.Second)
	if root.Fn != "root" {
		t.Errorf("respawned root fn = %q", root.Fn)
	}
}

func TestRootRespawnArmedWhenNobodyLeft(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	w1 := h.attach(10)
	expect[wire.SpawnRoot](t, w1, time.Second)
	h.send(w1, 10, wire.Unregister{Worker: 10, Reason: wire.LeaveCrash})
	// Next registrant restarts the job.
	w2 := h.attach(11)
	expect[wire.RegisterReply](t, w2, time.Second)
	expect[wire.SpawnRoot](t, w2, time.Second)
}

func TestHeartbeatTimeoutDeclaresCrash(t *testing.T) {
	clk := clock.NewFake()
	cfg := Config{UpdateEvery: time.Hour, HeartbeatTimeout: 10 * time.Second, Clock: clk}
	h := newHarness(t, cfg)
	w1 := h.attach(10)
	expect[wire.RegisterReply](t, w1, time.Second)
	w2 := h.attach(11)
	expect[wire.RegisterReply](t, w2, time.Second)

	// w1 heartbeats once — only workers that have ever heartbeated are
	// subject to the timeout — then goes silent; w2 keeps heartbeating.
	h.send(w1, 10, wire.Heartbeat{Worker: 10})
	time.Sleep(2 * time.Millisecond)
	for i := 0; i < 6; i++ {
		if !clk.BlockUntilWaiters(1, time.Second) {
			t.Fatal("clearinghouse never armed its heartbeat check")
		}
		clk.Advance(5 * time.Second)
		h.send(w2, 11, wire.Heartbeat{Worker: 11})
		time.Sleep(2 * time.Millisecond)
	}
	expect[wire.WorkerDown](t, w2, 2*time.Second)
	live := h.ch.LiveWorkers()
	if len(live) != 1 || live[0] != 11 {
		t.Errorf("live = %v, want [11]", live)
	}
}

func TestRegistrationGraceEvictsNeverHeartbeated(t *testing.T) {
	clk := clock.NewFake()
	cfg := Config{UpdateEvery: time.Hour, HeartbeatTimeout: 10 * time.Second,
		PhiThreshold: 8, RegistrationGrace: 40 * time.Second, Clock: clk}
	h := newHarness(t, cfg)
	w1 := h.attach(10) // heartbeats throughout and watches the broadcast
	expect[wire.RegisterReply](t, w1, time.Second)
	w2 := h.attach(11) // registers, then never heartbeats
	expect[wire.RegisterReply](t, w2, time.Second)

	step := func() {
		h.t.Helper()
		if !clk.BlockUntilWaiters(1, time.Second) {
			t.Fatal("clearinghouse never armed its heartbeat check")
		}
		clk.Advance(5 * time.Second)
		h.send(w1, 10, wire.Heartbeat{Worker: 10})
		time.Sleep(2 * time.Millisecond)
	}
	// Three full heartbeat timeouts pass. A worker that has never
	// heartbeated is exempt from the fixed timeout (its runtime may have
	// heartbeats off entirely)...
	for i := 0; i < 6; i++ {
		step()
	}
	if live := h.ch.LiveWorkers(); len(live) != 2 {
		t.Fatalf("never-heartbeated worker evicted inside its grace: %v", live)
	}
	// ...but no longer forever: the registration grace bounds the
	// exemption, reclaiming the leaked closures of a worker that died
	// between registering and its first heartbeat.
	for i := 0; i < 4; i++ {
		step()
	}
	expect[wire.WorkerDown](t, w1, 2*time.Second)
	if live := h.ch.LiveWorkers(); len(live) != 1 || live[0] != 10 {
		t.Errorf("live = %v, want [10] (grace expired for 11)", live)
	}
}

func TestStayRequestArbitration(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	w1 := h.attach(10) // root host
	expect[wire.SpawnRoot](t, w1, time.Second)
	w2 := h.attach(11)
	expect[wire.RegisterReply](t, w2, time.Second)

	// The root host must be told to stay.
	h.send(w1, 10, wire.StayRequest{Worker: 10})
	if rep := expect[wire.StayReply](t, w1, time.Second); !rep.Stay {
		t.Error("root host allowed to retire")
	}
	// A secondary worker may retire while others remain.
	h.send(w2, 11, wire.StayRequest{Worker: 11})
	if rep := expect[wire.StayReply](t, w2, time.Second); rep.Stay {
		t.Error("secondary worker forced to stay")
	}
	// After w2 leaves, w1... is last AND root host: still refused.
	h.send(w2, 11, wire.Unregister{Worker: 11, Reason: wire.LeaveNoWork})
	h.send(w1, 10, wire.StayRequest{Worker: 10})
	if rep := expect[wire.StayReply](t, w1, time.Second); !rep.Stay {
		t.Error("last worker of an unfinished job allowed to retire")
	}
}

func TestIOBuffering(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	w := h.attach(10)
	expect[wire.RegisterReply](t, w, time.Second)
	h.send(w, 10, wire.IO{Worker: 10, Text: "hello"})
	h.send(w, 10, wire.IO{Worker: 10, Text: "world\n"})
	deadline := time.Now().Add(2 * time.Second)
	for h.ch.Output() == "" && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	out := h.ch.Output()
	if !strings.Contains(out, "hello\n") || !strings.Contains(out, "world\n") {
		t.Errorf("output = %q", out)
	}
}
