package telemetry

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// memStatsTTL bounds how often a scrape may trigger runtime.ReadMemStats,
// which stops the world briefly; concurrent gauge reads within the window
// share one snapshot.
const memStatsTTL = time.Second

// runtimeCollector caches MemStats for the process gauges and feeds the
// GC pause ring into a histogram, diffing NumGC between refreshes so each
// pause is observed exactly once.
type runtimeCollector struct {
	mu     sync.Mutex
	ms     runtime.MemStats
	at     time.Time
	lastGC uint32
	pauses *Histogram
}

func (rc *runtimeCollector) refresh() *runtime.MemStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if !rc.at.IsZero() && time.Since(rc.at) < memStatsTTL {
		return &rc.ms
	}
	runtime.ReadMemStats(&rc.ms)
	rc.at = time.Now()
	// New GC cycles since the last refresh land in the PauseNs ring at
	// index (NumGC+255)%256; the ring holds 256 entries, so a refresh gap
	// longer than 256 cycles loses the oldest pauses (never double-counts).
	from := rc.lastGC
	if rc.ms.NumGC-from > uint32(len(rc.ms.PauseNs)) {
		from = rc.ms.NumGC - uint32(len(rc.ms.PauseNs))
	}
	for i := from; i < rc.ms.NumGC; i++ {
		rc.pauses.Observe(int64(rc.ms.PauseNs[(i+255)%256]))
	}
	rc.lastGC = rc.ms.NumGC
	return &rc.ms
}

// buildRevision extracts the VCS revision baked into the binary ("unknown"
// outside a module build).
func buildRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			if len(s.Value) > 12 {
				return s.Value[:12]
			}
			return s.Value
		}
	}
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "unknown"
}

// RegisterRuntime exposes the process-level health metrics every daemon
// serves next to its subsystem metrics: a phish_build_info identity gauge
// (constant 1, identity in the labels, the Prometheus convention) and the
// Go runtime's goroutine count, heap size, and GC pause distribution.
func RegisterRuntime(reg *Registry) {
	reg.GaugeFunc("phish_build_info",
		"Build identity of this daemon; constant 1 with the identity in labels.",
		func() int64 { return 1 },
		Label{Name: "goversion", Value: runtime.Version()},
		Label{Name: "revision", Value: buildRevision()})
	rc := &runtimeCollector{
		pauses: reg.Histogram("phish_go_gc_pause_ns",
			"Stop-the-world GC pause durations.", DefaultLatencyBounds()),
	}
	reg.GaugeFunc("phish_go_goroutines", "Live goroutines.",
		func() int64 { return int64(runtime.NumGoroutine()) })
	reg.GaugeFunc("phish_go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() int64 { return int64(rc.refresh().HeapAlloc) })
	reg.GaugeFunc("phish_go_heap_sys_bytes", "Heap memory obtained from the OS.",
		func() int64 { return int64(rc.refresh().HeapSys) })
	reg.CounterFunc("phish_go_gc_cycles_total", "Completed GC cycles.",
		func() int64 { return int64(rc.refresh().NumGC) })
}
