// Package core implements Phish's micro-level, idle-initiated scheduler:
// the per-worker ready deque with LIFO execution and FIFO stealing, the
// continuation-passing task model with join counters, randomized work
// stealing between the participants of a job, thief retirement when a
// job's parallelism shrinks, task migration when a workstation's owner
// returns, and the steal-record machinery that lets lost work be redone
// after a crash.
//
// This is the paper's primary contribution (Section 2, micro level, and
// the worker side of Section 3).
package core

import (
	"time"

	"phish/internal/telemetry"
	"phish/internal/trace"
)

// Order selects the execution order of a worker's own ready tasks.
type Order int

const (
	// LIFO executes the most recently spawned ready task first (the
	// paper's choice: it keeps the working set small).
	LIFO Order = iota
	// FIFO executes the oldest ready task first (ablation only).
	FIFO
)

func (o Order) String() string {
	if o == LIFO {
		return "LIFO"
	}
	return "FIFO"
}

// StealEnd selects which end of the victim's deque a thief takes from.
type StealEnd int

const (
	// StealTail takes the oldest ready task (the paper's choice: for
	// tree-shaped computations it is a task near the base of the tree
	// that will spawn many descendants).
	StealTail StealEnd = iota
	// StealHead takes the newest ready task (ablation only).
	StealHead
)

func (e StealEnd) String() string {
	if e == StealTail {
		return "tail"
	}
	return "head"
}

// VictimPolicy selects how a thief chooses its victim.
type VictimPolicy int

const (
	// RandomVictim picks uniformly at random among the other live
	// participants (the paper's choice, backed by the Blumofe–Leiserson
	// analysis).
	RandomVictim VictimPolicy = iota
	// RoundRobinVictim cycles deterministically (ablation only).
	RoundRobinVictim
	// SiteAwareVictim prefers victims at the worker's own Site and only
	// crosses a network cut after repeated local failures — the paper's
	// planned heterogeneous-network extension ("preserve locality with
	// respect to those network cuts that have the least bandwidth").
	SiteAwareVictim
)

func (v VictimPolicy) String() string {
	switch v {
	case RandomVictim:
		return "random"
	case RoundRobinVictim:
		return "round-robin"
	default:
		return "site-aware"
	}
}

// Config tunes one worker. The zero value is not useful; start from
// DefaultConfig.
type Config struct {
	// Seed seeds the worker's private random number generator (victim
	// selection). Workers of one job should use distinct seeds; the
	// runtime adds the worker ID.
	Seed int64

	// MaxStealFailures is the number of consecutive failed steal attempts
	// after which a worker concludes the job's parallelism has shrunk and
	// asks the clearinghouse for permission to retire. Zero means never
	// retire (used when measuring fixed-P speedup, where the paper also
	// pins the participant set).
	MaxStealFailures int

	// StealTimeout bounds how long a thief waits for a steal reply before
	// treating the attempt as failed (the victim may have departed).
	StealTimeout time.Duration

	// StealBackoff paces consecutive failed steal attempts: a thief whose
	// last attempt failed waits this long (scaled by the failure streak,
	// capped at 8x) before choosing the next victim. On the paper's
	// network the round-trip time provided this pacing for free; an
	// in-process fabric needs it to be explicit.
	StealBackoff time.Duration

	// RetryUnsent is how often the worker retries messages whose
	// destination was temporarily unknown (e.g., mid-migration).
	RetryUnsent time.Duration

	// HeartbeatEvery is the interval between heartbeats to the
	// clearinghouse. Zero disables heartbeats (explicit opt-out of crash
	// detection); the default sends one every 2 s — the paper's
	// clearinghouse-update interval — so the default clearinghouse
	// HeartbeatTimeout (3×) can declare crashes out of the box.
	HeartbeatEvery time.Duration

	// LocalOrder, StealFrom, and Victim select the scheduling discipline.
	// The defaults are the paper's; the alternatives exist for the
	// ablation benchmarks and the heterogeneous-network extension.
	LocalOrder Order
	StealFrom  StealEnd
	Victim     VictimPolicy

	// Trace, when non-nil and enabled, records the worker's scheduling
	// events (steals, migrations, redos — not per-task hot-path events)
	// for post-mortem timelines.
	Trace *trace.Buffer

	// Metrics, when non-nil, records the worker's latency histograms
	// (steal round trip, task execution, registration) and enables the
	// deque-depth gauge in piggybacked stat reports. Nil disables the
	// telemetry plane; hot paths then pay at most one pointer check.
	Metrics *telemetry.Metrics

	// SpanTrace enables the distributed span recorder: the worker records
	// task-execution, steal-leg, checkpoint, drain, and redo spans for
	// sampled DAGs and ships them to the clearinghouse collector inside
	// its StatReports. Off (the default), no recorder is allocated and
	// every recording site is one nil pointer check.
	SpanTrace bool
	// SpanSample is the probability that a job root spawned on this
	// worker is sampled; the decision propagates to the whole DAG through
	// trace contexts. Zero (or anything >= 1) samples every root.
	SpanSample float64
	// SpanBuf caps spans buffered between StatReports (default 8192);
	// beyond it spans are dropped and counted.
	SpanBuf int

	// Site is the worker's network neighborhood, used by SiteAwareVictim.
	Site int32
	// LocalStealTries is how many consecutive same-site failures a
	// site-aware thief tolerates before it tries the whole network
	// (default 4 when zero).
	LocalStealTries int

	// CkptLog, when non-nil, durably appends every checkpoint blob a task
	// yields on this worker, so a restarted worker process can republish
	// the last known blobs (see OpenCkptLog).
	CkptLog *CkptLog
	// CkptEvery rate-limits unsolicited checkpoint publication to the
	// clearinghouse between heartbeats: at most one extra StatReport per
	// interval, sent only when a task yields a fresh blob. Zero means the
	// 50 ms default; negative disables unsolicited publishes (blobs then
	// ride only on the heartbeat cadence).
	CkptEvery time.Duration
	// NoCkpt disables the checkpoint surface: Yield saves nothing and
	// never preempts, so checkpointable tasks degrade to the redo-from-
	// scratch behavior (the benchmark baseline).
	NoCkpt bool

	// SuspectTTL is how long a worker keeps a peer on its suspect
	// blacklist after the last evidence against it — a clearinghouse
	// SuspectSet naming it, or a locally observed steal timeout. Suspect
	// victims are deprioritized (stolen from only when no healthy victim
	// exists) and suspect thieves are candidates for speculative redo.
	// Zero means max(3× HeartbeatEvery, 4× StealTimeout); negative
	// disables local blacklisting and SuspectSet tracking entirely.
	SuspectTTL time.Duration
	// SpeculateAfter is the K in the speculation rule: a task lent to a
	// suspect thief and outstanding for more than K× the p99 of its Fn's
	// local execution time is re-dispatched locally from its last
	// published checkpoint (the steal record's seq/dedup machinery keeps
	// results exactly-once; the loser's work is wasted, not wrong). Zero
	// means 4; negative disables speculation.
	SpeculateAfter float64
}

// suspectTTL resolves Config.SuspectTTL (see its comment).
func (c *Config) suspectTTL() time.Duration {
	switch {
	case c.SuspectTTL > 0:
		return c.SuspectTTL
	case c.SuspectTTL < 0:
		return 0
	}
	ttl := 3 * c.HeartbeatEvery
	if m := 4 * c.StealTimeout; m > ttl {
		ttl = m
	}
	return ttl
}

// speculateAfter resolves the speculation multiplier; 0 means disabled.
func (c *Config) speculateAfter() float64 {
	switch {
	case c.SpeculateAfter > 0:
		return c.SpeculateAfter
	case c.SpeculateAfter < 0:
		return 0
	}
	return 4
}

// defaultCkptEvery is the unsolicited checkpoint publication interval used
// when Config.CkptEvery is zero.
const defaultCkptEvery = 50 * time.Millisecond

// DefaultConfig is the paper's discipline with timeouts suitable for a LAN
// or an in-process fabric.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		MaxStealFailures: 0,
		StealTimeout:     200 * time.Millisecond,
		StealBackoff:     250 * time.Microsecond,
		RetryUnsent:      20 * time.Millisecond,
		HeartbeatEvery:   2 * time.Second,
		LocalOrder:       LIFO,
		StealFrom:        StealTail,
		Victim:           RandomVictim,
	}
}
