package wal

import (
	"bytes"
	"testing"
)

type rec struct {
	Kind int
	Name string
	Vals []int64
}

func TestAppendReplayRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := []rec{
		{Kind: 1, Name: "alpha", Vals: []int64{1, 2, 3}},
		{Kind: 2, Name: "beta"},
		{Kind: 3, Name: "gamma", Vals: []int64{-7}},
	}
	for i := range want {
		if err := Append(&buf, &want[i]); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	var got []rec
	if err := Replay(bytes.NewReader(buf.Bytes()), func(r *rec) error {
		got = append(got, *r)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || got[i].Name != want[i].Name || len(got[i].Vals) != len(want[i].Vals) {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// Two incarnations, one file: appends from separate calls (fresh encoders)
// must replay as one log. This is the reason records are framed rather
// than streamed through a single gob encoder.
func TestAppendAcrossIncarnations(t *testing.T) {
	var file bytes.Buffer
	if err := Append(&file, &rec{Kind: 1, Name: "first"}); err != nil {
		t.Fatal(err)
	}
	// Simulate a restart: a brand-new encoder appends to the same bytes.
	if err := Append(&file, &rec{Kind: 2, Name: "second"}); err != nil {
		t.Fatal(err)
	}
	var names []string
	if err := Replay(bytes.NewReader(file.Bytes()), func(r *rec) error {
		names = append(names, r.Name)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "first" || names[1] != "second" {
		t.Fatalf("got %v", names)
	}
}

func TestReplayToleratesTornTail(t *testing.T) {
	var buf bytes.Buffer
	if err := Append(&buf, &rec{Kind: 1, Name: "whole"}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Len()
	if err := Append(&buf, &rec{Kind: 2, Name: "torn"}); err != nil {
		t.Fatal(err)
	}
	// Cut the second record mid-body at every possible length; replay must
	// always surface exactly the first record and no error.
	for cut := whole + 1; cut < buf.Len(); cut++ {
		var got []rec
		err := Replay(bytes.NewReader(buf.Bytes()[:cut]), func(r *rec) error {
			got = append(got, *r)
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) != 1 || got[0].Name != "whole" {
			t.Fatalf("cut %d: got %+v", cut, got)
		}
	}
}

func TestReplayEmpty(t *testing.T) {
	calls := 0
	if err := Replay(bytes.NewReader(nil), func(r *rec) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("fn called %d times on empty log", calls)
	}
}
