package core

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"phish/internal/clock"
	"phish/internal/cputime"
	"phish/internal/deque"
	"phish/internal/phishnet"
	"phish/internal/stats"
	"phish/internal/trace"
	"phish/internal/types"
	"phish/internal/wire"
)

// Worker is one participating process of a parallel job: the paper's
// "worker", an instance of the application program run under the
// micro-level scheduler. Its Run loop executes ready tasks in LIFO order,
// steals from random victims when idle, answers other thieves' steal
// requests from the tail of its deque, migrates its state when the
// workstation's owner returns, and keeps steal records so work lost to a
// crashed thief can be redone.
//
// All scheduler state is owned by the Run goroutine; external control
// (Reclaim, Crash) is delivered through atomics plus a wake channel.
type Worker struct {
	id   types.WorkerID
	job  types.JobID
	prog *Program
	conn phishnet.Conn
	cfg  Config
	clk  clock.Clock

	// Counters is exported via Stats(); the stats package uses atomics.
	counters stats.Counters

	dq      deque.Deque[*Closure]
	waiting map[types.TaskID]*Closure
	records map[types.TaskID]*stealRecord
	seq     uint64
	rng     *rand.Rand
	// fnCache memoizes registry lookups (lock-free: only the scheduler
	// goroutine touches it), and ctx is the one TaskCtx reused across
	// executions — valid because task bodies run to completion and must
	// not retain their context.
	fnCache map[string]TaskFunc
	ctx     TaskCtx

	view          wire.MembershipView
	hostOf        map[types.WorkerID]types.WorkerID
	victims       []types.WorkerID
	localVictims  []types.WorkerID // same-site subset (site-aware policy)
	siteOf        map[types.WorkerID]int32
	dead          map[types.WorkerID]bool
	rrNext        int
	localFailures int // consecutive same-site failures (site-aware policy)

	stealPending  bool
	stealDeadline time.Time
	stealSentAt   time.Time
	stealVictim   types.WorkerID // target of the pending steal (for timeout blacklisting)
	// stealSpanID names the in-flight steal attempt's span (zero when no
	// attempt is traced); the id is minted from the worker's own sequence
	// so it can never collide with a task id.
	stealSpanID types.TaskID
	consecFails int
	stayAsked   bool
	stayAskedAt time.Time
	retired     bool

	unsent    []wire.Arg
	lastRetry time.Time

	// Graded health (see speculate.go): the expiry-stamped suspect
	// blacklist, the per-Fn execution-time tracks behind the speculation
	// deadline, the speculation-scan pacer, and scratch for suspect-aware
	// victim picks. Scheduler goroutine only.
	suspect      map[types.WorkerID]suspectMark
	fnExec       map[string]*execStats
	lastSpecScan time.Time
	victimsScr   []types.WorkerID
	localsScr    []types.WorkerID

	registered  bool
	shutdownMsg bool
	paused      bool

	// Clearinghouse-loss recovery: when the clearinghouse is unreachable
	// the worker keeps computing and re-registers with jittered exponential
	// backoff until a (possibly restarted) clearinghouse answers. The last
	// root result is retained so it can be re-sent after a reconnect — the
	// clearinghouse deduplicates, so a crash between receiving the result
	// and persisting it loses nothing.
	chDown      bool
	chWait      time.Duration
	chNextTry   time.Time
	rootResult  *wire.Arg
	msgSentTo   map[types.WorkerID]int64
	msgRecvFr   map[types.WorkerID]int64
	migrateAck  bool
	migrating   bool
	forwardTo   types.WorkerID
	leaveReason wire.LeaveReason

	// Drain coordination: the clearinghouse's answer to our DrainRequest
	// (scheduler goroutine only).
	drainAcked  bool
	drainVictim types.WorkerID

	// stash holds envelopes a Yield pulled off the wire mid-task: the body
	// is preempted so the scheduler loop can handle them, and drainAll
	// consumes the stash before the connection (scheduler goroutine only).
	stash []*wire.Envelope

	// Checkpoint publication. ckptPub holds the latest blob per in-flight
	// task, mirrored to StatReports; the mutex is needed because the
	// heartbeat goroutine reads it while the scheduler goroutine updates
	// it. ckptLastPub paces unsolicited reports (scheduler only).
	ckptMu      sync.Mutex
	ckptPub     map[types.TaskID]wire.TaskCkpt
	ckptLastPub time.Time

	stopReq  atomic.Bool
	crashReq atomic.Bool
	drainReq atomic.Bool
	// drainOrdered distinguishes a clearinghouse degradation drain from an
	// owner-return reclaim: the manager quarantines the machine after the
	// former. Loop goroutine only.
	drainOrdered bool
	wakeCh       chan struct{}

	hbStop chan struct{}

	startT atomic.Int64 // unix nanoseconds at Run entry (0 = not started); Stats races with Run
	execT  atomic.Int64 // wall nanoseconds, set at exit
	cpuT   atomic.Int64 // thread CPU nanoseconds, set at exit (0 if unknown)

	orphanDrops atomic.Int64
	heartbeats  atomic.Int64

	// readyDepth mirrors dq.Len() for the heartbeat goroutine's stat
	// reports; the deque itself is owned by the scheduler goroutine.
	readyDepth atomic.Int32

	// spans is the distributed-tracing recorder, nil unless
	// Config.SpanTrace or a sampled trace context arrives from another
	// process (ensureSpans): every recording site guards with one
	// atomic pointer load, so the hot paths pay (and allocate) nothing
	// when tracing is off. Atomic because the scheduler goroutine may
	// enable it mid-run while the heartbeat goroutine builds reports.
	// regSentNS remembers when the last Register left, so the
	// RegisterReply round trip yields the clock-offset estimate.
	spans     atomic.Pointer[spanRecorder]
	regSentNS int64

	// debug counters for the steal protocol (DebugDump only)
	dbgGrants, dbgRepliesOK, dbgRepliesFail, dbgAdopts atomic.Int64
}

// NewWorker builds a worker for job job with the caller-allocated unique
// id, speaking over conn. The caller retains responsibility for id
// uniqueness across the job's lifetime (the PhishJobManager derives it
// from its workstation id and a per-job incarnation counter).
func NewWorker(job types.JobID, id types.WorkerID, prog *Program, conn phishnet.Conn, cfg Config, clk clock.Clock) *Worker {
	if clk == nil {
		clk = clock.System
	}
	w := &Worker{
		id:          id,
		job:         job,
		prog:        prog,
		conn:        conn,
		cfg:         cfg,
		clk:         clk,
		waiting:     make(map[types.TaskID]*Closure),
		records:     make(map[types.TaskID]*stealRecord),
		fnCache:     make(map[string]TaskFunc),
		rng:         rand.New(rand.NewSource(cfg.Seed + int64(id)*0x9e3779b9)),
		hostOf:      make(map[types.WorkerID]types.WorkerID),
		siteOf:      make(map[types.WorkerID]int32),
		msgSentTo:   make(map[types.WorkerID]int64),
		msgRecvFr:   make(map[types.WorkerID]int64),
		dead:        make(map[types.WorkerID]bool),
		suspect:     make(map[types.WorkerID]suspectMark),
		fnExec:      make(map[string]*execStats),
		forwardTo:   types.NoWorker,
		stealVictim: types.NoWorker,
		ckptPub:     make(map[types.TaskID]wire.TaskCkpt),
		wakeCh:      make(chan struct{}, 1),
		hbStop:      make(chan struct{}),
	}
	if cfg.SpanTrace {
		w.spans.Store(newSpanRecorder(cfg.SpanBuf))
	}
	return w
}

// ensureSpans lazily enables the span recorder when a sampled trace
// context reaches this worker from another process. The submitter's
// workers get Config.SpanTrace up front; a worker spawned later by a
// jobmanager learns that the job is traced from the first sampled task
// that arrives, so a sampled subtree is recorded wherever it executes.
// A late recorder has no registration clock estimate (offset 0); the
// collector's heartbeat one-way-delay clamp still bounds its alignment.
func (w *Worker) ensureSpans(tc wire.TraceCtx) {
	if tc.Sampled() && w.spans.Load() == nil {
		w.spans.Store(newSpanRecorder(w.cfg.SpanBuf))
	}
}

// ID returns the worker's identity within its job.
func (w *Worker) ID() types.WorkerID { return w.id }

// LeaveReason reports why the worker left (valid after Run returns).
func (w *Worker) LeaveReason() wire.LeaveReason { return w.leaveReason }

// SpanDrops reports spans lost to this worker's recorder buffer cap
// (always zero when span tracing is off).
func (w *Worker) SpanDrops() uint64 {
	if w.spans.Load() == nil {
		return 0
	}
	return w.spans.Load().droppedCount()
}

// Stats snapshots the worker's counters, including its execution time
// (time in Run so far, frozen at exit).
func (w *Worker) Stats() stats.Snapshot {
	s := w.counters.Snapshot()
	s.Worker = int(w.id)
	s.Orphans = w.orphanDrops.Load()
	if ns := w.execT.Load(); ns > 0 {
		s.WallTime = time.Duration(ns)
	} else if t0 := w.startT.Load(); t0 > 0 {
		s.WallTime = time.Since(time.Unix(0, t0))
	}
	// Execution time in the paper's sense: CPU time of the worker's
	// thread when available (see internal/cputime), wall time otherwise.
	if ns := w.cpuT.Load(); ns > 0 {
		s.ExecTime = time.Duration(ns)
	} else {
		s.ExecTime = s.WallTime
	}
	return s
}

// Counters exposes the worker's live counter block so transports can
// account retransmits and peer-gone reports against this participant.
func (w *Worker) Counters() *stats.Counters { return &w.counters }

// OrphanDrops reports results that arrived for tasks no longer present
// (expected after crash recovery; always zero in fault-free runs).
func (w *Worker) OrphanDrops() int64 { return w.orphanDrops.Load() }

// Heartbeats reports heartbeat messages sent (tracked apart from
// MessagesSent so Table 2 comparisons are not polluted by a mechanism the
// paper's measurements predate).
func (w *Worker) Heartbeats() int64 { return w.heartbeats.Load() }

// Reclaim asks the worker to leave because the workstation's owner
// returned: it migrates its tasks to another participant and unregisters.
// Safe to call from any goroutine; returns immediately.
func (w *Worker) Reclaim() {
	w.stopReq.Store(true)
	w.wake()
}

// Crash makes the worker die abruptly without migrating or unregistering —
// fault injection for the recovery machinery. Safe from any goroutine.
func (w *Worker) Crash() {
	w.crashReq.Store(true)
	w.wake()
}

// Drain asks the worker to leave gracefully on a planned schedule: the
// in-flight task is offered preemption at its next Yield, the deque (with
// any checkpoints) is handed to a victim chosen by the clearinghouse, a
// final StatReport is flushed, and the worker unregisters. Work moves in
// milliseconds instead of being redone. Safe from any goroutine.
func (w *Worker) Drain() {
	w.drainReq.Store(true)
	w.wake()
}

// tr records a scheduling event when tracing is enabled.
func (w *Worker) tr(kind trace.Kind, task types.TaskID, peer types.WorkerID, note string) {
	if w.cfg.Trace.Enabled() {
		w.cfg.Trace.Add(trace.Event{Worker: w.id, Kind: kind, Task: task, Peer: peer, Note: note})
	}
}

func (w *Worker) wake() {
	select {
	case w.wakeCh <- struct{}{}:
	default:
	}
}

// Run registers with the clearinghouse, participates until the job ends
// (or the worker retires, is reclaimed, or crashes), and returns the
// reason for leaving. It blocks for the worker's whole life.
func (w *Worker) Run() error {
	// The worker owns an OS thread so its CPU time can be accounted as
	// the participant's execution time (internal/cputime).
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	cpu0, cpuOK := cputime.Thread()
	t0 := time.Now()
	w.startT.Store(t0.UnixNano())
	defer func() {
		w.execT.Store(int64(time.Since(t0)))
		if cpuOK {
			if cpu1, ok := cputime.Thread(); ok {
				w.cpuT.Store(int64(cpu1 - cpu0))
			}
		}
		_ = w.conn.Close()
	}()

	if err := w.register(); err != nil {
		w.leaveReason = wire.LeaveCrash
		return err
	}
	if w.cfg.HeartbeatEvery > 0 {
		go w.heartbeatLoop()
		defer close(w.hbStop)
	}
	w.loop()

	switch {
	case w.crashReq.Load():
		w.leaveReason = wire.LeaveCrash // die silently
	case w.shutdownMsg:
		w.leaveReason = wire.LeaveJobDone
		w.unregister(wire.LeaveJobDone, types.NoWorker)
	}
	return nil
}

// register announces the worker and waits for the clearinghouse's reply,
// retrying a few times (the clearinghouse may still be starting).
func (w *Worker) register() error {
	t0 := time.Now()
	for attempt := 0; attempt < 50; attempt++ {
		if w.crashReq.Load() || w.stopReq.Load() {
			return errors.New("core: worker stopped before registration")
		}
		reg := wire.Register{Worker: w.id, Addr: w.conn.LocalAddr(), Site: w.cfg.Site}
		if w.spans.Load() != nil {
			w.regSentNS = time.Now().UnixNano()
			reg.SendNS = w.regSentNS
		}
		w.sendTo(types.ClearinghouseID, reg)
		deadline := time.Now().Add(200 * time.Millisecond)
		for time.Now().Before(deadline) && !w.registered {
			w.drainOne(time.Until(deadline))
		}
		if w.registered {
			w.tr(trace.EvRegister, types.TaskID{}, types.ClearinghouseID, "")
			if m := w.cfg.Metrics; m != nil {
				m.Register().ObserveSince(t0)
			}
			return nil
		}
	}
	return fmt.Errorf("core: worker %d could not register with clearinghouse", w.id)
}

// Re-register backoff bounds: fast enough that a restarted clearinghouse
// is rediscovered promptly, slow enough (after a few doublings) that a
// long outage costs a trickle of tiny datagrams.
const (
	chReRegisterBase = 25 * time.Millisecond
	chReRegisterCap  = 2 * time.Second
)

// jitterBackoff scales d by a uniform factor in [0.75, 1.25) so a herd of
// workers that lost the same clearinghouse does not retry in lockstep.
func (w *Worker) jitterBackoff(d time.Duration) time.Duration {
	return time.Duration(float64(d) * (0.75 + 0.5*w.rng.Float64()))
}

// noteCHDown flags the clearinghouse as unreachable and arms the first
// re-register attempt. Idempotent while already down. The worker keeps
// computing and stealing throughout — only the control plane is gone.
func (w *Worker) noteCHDown() {
	if w.chDown || w.shutdownMsg {
		return
	}
	w.chDown = true
	w.chWait = chReRegisterBase
	w.chNextTry = time.Now().Add(w.jitterBackoff(w.chWait))
}

// maybeReRegister drives the re-register loop while the clearinghouse is
// unreachable: one Register per backoff interval, doubling with jitter up
// to the cap, until some clearinghouse — typically a restarted one that
// replayed its journal — answers with a RegisterReply.
func (w *Worker) maybeReRegister() {
	if !w.chDown {
		return
	}
	now := time.Now()
	if now.Before(w.chNextTry) {
		return
	}
	reg := wire.Register{Worker: w.id, Addr: w.conn.LocalAddr(), Site: w.cfg.Site}
	if w.spans.Load() != nil {
		w.regSentNS = now.UnixNano()
		reg.SendNS = w.regSentNS
	}
	_ = w.sendTo(types.ClearinghouseID, reg)
	w.counters.ReRegistrations.Add(1)
	w.chWait *= 2
	if w.chWait > chReRegisterCap {
		w.chWait = chReRegisterCap
	}
	w.chNextTry = now.Add(w.jitterBackoff(w.chWait))
}

// chRecovered clears the down state once the clearinghouse answers. The
// retained root result is re-sent: a restarted clearinghouse may have
// crashed before persisting it, and it deduplicates if not.
func (w *Worker) chRecovered() {
	w.tr(trace.EvRecover, types.TaskID{}, types.ClearinghouseID, "clearinghouse answered")
	w.chDown = false
	w.chWait = 0
	if w.rootResult != nil {
		a := *w.rootResult
		if err := w.sendTo(types.ClearinghouseID, a); err != nil {
			w.unsent = append(w.unsent, a)
		}
	}
}

// onPeerGone handles a transport death notice (retransmits to the peer
// were exhausted). For the clearinghouse, enter the re-register loop; for
// any other peer, treat the victim as gone exactly as if the
// clearinghouse had announced the crash — its own announcement usually
// follows and both paths are idempotent.
func (w *Worker) onPeerGone(peer types.WorkerID) {
	w.counters.PeerGoneReports.Add(1)
	w.tr(trace.EvPeerGone, types.TaskID{}, peer, "retransmits exhausted")
	if peer == types.ClearinghouseID {
		if w.registered {
			w.noteCHDown()
		}
		return
	}
	w.onWorkerDown(peer, nil, wire.TraceCtx{})
}

func (w *Worker) heartbeatLoop() {
	for {
		select {
		case <-w.hbStop:
			return
		case <-w.clk.After(w.cfg.HeartbeatEvery):
			hb := wire.Heartbeat{Worker: w.id}
			if w.spans.Load() != nil {
				// Stamp the heartbeat so the collector can bound (and
				// refine) this worker's clock-offset estimate from the
				// one-way delay.
				hb.SendNS = time.Now().UnixNano()
			}
			env := &wire.Envelope{Job: w.job, From: w.id, To: types.ClearinghouseID,
				Payload: hb}
			if err := w.conn.Send(env); err == nil {
				w.heartbeats.Add(1)
			}
			// Piggyback the telemetry report on the same cadence: over UDP
			// the batching window coalesces it into the heartbeat's
			// datagram. Sent unreliably (and kept out of MessagesSent, like
			// heartbeats) — a pre-telemetry clearinghouse just drops it. A
			// snapshot too big for one datagram ships as several reports.
			for _, sr := range w.statReports() {
				rep := &wire.Envelope{Job: w.job, From: w.id, To: types.ClearinghouseID,
					Payload: sr}
				_ = w.conn.Send(rep)
			}
		}
	}
}

// statReports assembles the piggybacked telemetry record, split across as
// many reports as the datagram budget requires. Everything read here is
// atomic (counters, the deque-depth mirror, histogram buckets) or
// mutex-guarded (the checkpoint table), so the heartbeat goroutine can
// build it without touching scheduler state.
func (w *Worker) statReports() []wire.StatReport {
	rep := wire.StatReport{
		Ver:      wire.StatReportVersion,
		Worker:   w.id,
		Deque:    w.readyDepth.Load(),
		Counters: w.Stats().Ordered(),
		Hists:    w.cfg.Metrics.Export(),
		Ckpts:    w.ckptSnapshot(),
	}
	if w.spans.Load() != nil {
		rep.SpanSeq, rep.Spans = w.spans.Load().batch()
		rep.ClockOffNS = w.spans.Load().offset()
	}
	return planStatReports(rep, statReportBudget)
}

// ckptSnapshot copies the publication table for a StatReport. Blob slices
// are immutable once in the table (noteCkpt copies on insert), so sharing
// them across reports is safe.
func (w *Worker) ckptSnapshot() []wire.TaskCkpt {
	w.ckptMu.Lock()
	defer w.ckptMu.Unlock()
	if len(w.ckptPub) == 0 {
		return nil
	}
	out := make([]wire.TaskCkpt, 0, len(w.ckptPub))
	for _, ck := range w.ckptPub {
		out = append(out, ck)
	}
	return out
}

// noteCkpt records a task's fresh checkpoint blob: durably in the
// checkpoint WAL when configured, in the publication table the StatReports
// mirror, and — rate-limited — in an immediate unsolicited StatReport so
// the clearinghouse journal stays near the live frontier even between
// heartbeats. Called from the scheduler goroutine (inside Yield).
func (w *Worker) noteCkpt(c *Closure) {
	ck := wire.TaskCkpt{Task: c.ID, Seq: c.CkptSeq, Data: append([]byte(nil), c.Ckpt...)}
	if w.cfg.CkptLog != nil {
		_ = w.cfg.CkptLog.Append(w.id, ck)
	}
	w.ckptMu.Lock()
	w.ckptPub[c.ID] = ck
	w.ckptMu.Unlock()
	w.tr(trace.EvCkpt, c.ID, types.NoWorker, "")
	if w.spans.Load() != nil && c.TC.Sampled() {
		now := time.Now().UnixNano()
		w.spans.Load().add(wire.Span{Kind: wire.SpanCkpt, Flags: c.TC.Flags, Worker: w.id,
			Task: c.ID, Parent: c.TC.Parent, Start: now, End: now})
	}
	every := w.cfg.CkptEvery
	if every == 0 {
		every = defaultCkptEvery
	}
	if every < 0 || time.Since(w.ckptLastPub) < every {
		return
	}
	w.ckptLastPub = time.Now()
	// Unsolicited and unreliable, exactly like the heartbeat piggyback.
	for _, sr := range w.statReports() {
		rep := &wire.Envelope{Job: w.job, From: w.id, To: types.ClearinghouseID,
			Payload: sr}
		_ = w.conn.Send(rep)
	}
}

// dropCkptPub removes a completed task's entry so later StatReports stop
// advertising a blob nobody can ever resume.
func (w *Worker) dropCkptPub(id types.TaskID) {
	w.ckptMu.Lock()
	delete(w.ckptPub, id)
	w.ckptMu.Unlock()
}

// loop is the scheduler: drain messages, run ready work, thieve when idle.
func (w *Worker) loop() {
	for {
		if w.crashReq.Load() {
			return
		}
		w.readyDepth.Store(int32(w.dq.Len()))
		w.drainAll()
		w.retryUnsent(false)
		w.maybeReRegister()
		w.maybeSpeculate(time.Now())
		if w.shutdownMsg || w.crashReq.Load() {
			return
		}
		if w.stopReq.Load() || w.drainReq.Load() {
			reason := wire.LeaveReclaimed
			if w.drainOrdered {
				reason = wire.LeaveDrained
			}
			w.migrateAndLeave(reason)
			return
		}
		if w.paused {
			// Checkpoint in progress: keep draining messages, run and
			// steal nothing.
			w.drainOne(5 * time.Millisecond)
			continue
		}
		if cl, ok := w.popNext(); ok {
			w.execute(cl)
			continue
		}
		// No ready work: steal (the idle-initiated step).
		if w.thieveStep() {
			return // retired for lack of work
		}
	}
}

// popNext takes the next local task per the configured execution order.
func (w *Worker) popNext() (*Closure, bool) {
	if w.cfg.LocalOrder == LIFO {
		return w.dq.PopHead()
	}
	return w.dq.PopTail()
}

func (w *Worker) execute(cl *Closure) {
	if !cl.preempted && cl.execNS == 0 {
		// First local slice of this attempt: only a run that started from
		// scratch (no checkpoint blob) measures the Fn's full cost.
		cl.freshLocal = cl.CkptSeq == 0 && len(cl.Ckpt) == 0
	}
	if cl.preempted {
		// Resuming a locally preempted body: same attempt, already counted.
		cl.preempted = false
	} else {
		w.counters.TasksExecuted.Add(1)
		if len(cl.Ckpt) > 0 {
			w.counters.CkptResumes.Add(1)
		}
	}
	fn, ok := w.fnCache[cl.Fn]
	if !ok {
		fn = w.prog.Funcs.MustLookup(cl.Fn)
		w.fnCache[cl.Fn] = fn
	}
	m := w.cfg.Metrics // one pointer check when telemetry is off
	traced := w.spans.Load() != nil && cl.TC.Sampled()
	// Timed unconditionally: the per-Fn execution track feeds the
	// speculation deadline and must be warm before trouble starts.
	execT0 := time.Now()
	completed := false
	func() {
		// A panicking task is an application bug; contain it to this
		// worker (which then counts as crashed, so the job's other
		// participants redo the lost work) instead of killing the whole
		// process. A deterministic panic will of course recur on the
		// worker that redoes it — that is the application's bug to fix.
		defer func() {
			if r := recover(); r != nil {
				w.crashReq.Store(true)
				w.leaveReason = wire.LeaveCrash
				fmt.Printf("phish: worker %d: task %s panicked: %v\n", w.id, cl.Fn, r)
			}
		}()
		w.ctx.w = w
		w.ctx.c = cl
		w.ctx.yielded = false
		fn(&w.ctx)
		w.ctx.c = nil
		completed = true
	}()
	if m != nil {
		m.TaskExec().ObserveSince(execT0)
	}
	if traced {
		// Each execution slice is its own span — a preempted body
		// contributes several, and T1 sums them, so preemption does not
		// inflate the critical path. Link is the continuation the result
		// feeds: a join edge of the DAG.
		w.spans.Load().add(wire.Span{Kind: wire.SpanExec, Flags: cl.TC.Flags, Worker: w.id,
			Task: cl.ID, Parent: cl.TC.Parent, Link: cl.Cont.Task,
			Start: execT0.UnixNano(), End: time.Now().UnixNano()})
	}
	cl.execNS += int64(time.Since(execT0))
	if completed && w.ctx.yielded {
		// The body vacated at a Yield: the closure stays live with its
		// checkpoint attached, at the head so a drain packs it first (and
		// so a message-pending preemption resumes it right after the
		// mailbox is serviced).
		w.ctx.yielded = false
		w.counters.TasksPreempted.Add(1)
		w.tr(trace.EvPreempt, cl.ID, types.NoWorker, "")
		cl.preempted = true
		w.dq.PushHead(cl)
		return
	}
	w.ctx.yielded = false
	w.counters.TaskRetired()
	if completed {
		if cl.freshLocal {
			// A started-from-scratch attempt is the clean sample of what
			// this Fn costs; bodies resumed from a stolen or migrated
			// checkpoint would contribute partial runs that drag the p99
			// estimate down. Slices are summed across yields and local
			// preemptions, so a body that checkpoints mid-run still feeds
			// the track its full cost.
			w.noteExec(cl.Fn, time.Duration(cl.execNS))
		}
		if cl.CkptSeq > 0 {
			w.dropCkptPub(cl.ID)
		}
		cl.free() // the body ran to completion; nothing references cl now
	}
}

// thieveStep performs one increment of thieving: ensure a steal request is
// outstanding, then wait for traffic. It returns true if the worker
// retired (parallelism shrank).
func (w *Worker) thieveStep() bool {
	now := time.Now()
	if w.stealPending && now.After(w.stealDeadline) {
		// The victim never answered; count a failure and move on. The
		// silence is also local evidence of degradation: blacklist the
		// victim for one decay interval so the next picks go elsewhere.
		w.stealPending = false
		w.consecFails++
		w.counters.FailedSteals.Add(1)
		if w.stealVictim != types.NoWorker {
			w.markSuspect(w.stealVictim, now, false)
			w.stealVictim = types.NoWorker
		}
		if w.spans.Load() != nil && !w.stealSpanID.Zero() {
			// A timed-out attempt is still idle time worth attributing;
			// Link stays zero (nothing was won).
			w.spans.Load().add(wire.Span{Kind: wire.SpanStealReq, Flags: wire.FlagSampled, Worker: w.id,
				Task: w.stealSpanID, Peer: types.NoWorker,
				Start: w.stealSentAt.UnixNano(), End: now.UnixNano()})
			w.stealSpanID = types.TaskID{}
		}
	}
	if !w.stealPending {
		if w.shouldAskRetire() {
			if !w.stayAsked || time.Since(w.stayAskedAt) > 4*w.cfg.StealTimeout {
				w.sendTo(types.ClearinghouseID, wire.StayRequest{Worker: w.id})
				w.stayAsked = true
				w.stayAskedAt = time.Now()
			}
			// Wait for the verdict (or for work to show up).
			w.drainOne(w.cfg.StealTimeout)
			if w.retired && !w.shutdownMsg {
				// Approved: hand off any steal records and go.
				w.migrateAndLeave(wire.LeaveNoWork)
				return true
			}
			return false
		}
		victim, ok := w.pickVictim()
		if !ok {
			// Nobody to steal from; wait for membership or work.
			w.drainOne(10 * time.Millisecond)
			return false
		}
		if w.consecFails > 0 && w.cfg.StealBackoff > 0 {
			streak := w.consecFails
			if streak > 8 {
				streak = 8
			}
			w.drainOne(time.Duration(streak) * w.cfg.StealBackoff)
			if !w.dq.Empty() {
				return false // work arrived while pacing
			}
		}
		req := wire.StealRequest{Thief: w.id}
		if w.spans.Load() != nil {
			// The attempt span is thief-local; the request frame stays a
			// bare worker id so its decode boxing remains allocation-free.
			w.stealSpanID = w.nextTaskID()
		}
		if w.sendTo(victim, req) == nil {
			w.tr(trace.EvStealRequest, types.TaskID{}, victim, "")
			w.counters.StealAttempts.Add(1)
			w.stealPending = true
			w.stealVictim = victim
			w.stealSentAt = time.Now()
			w.stealDeadline = w.stealSentAt.Add(w.cfg.StealTimeout)
		} else {
			// Victim vanished between view updates.
			w.removeVictim(victim)
			return false
		}
	}
	w.drainOne(time.Until(w.stealDeadline))
	return false
}

// shouldAskRetire reports whether the worker has failed enough consecutive
// steals, holds no work of its own, and so should ask the clearinghouse to
// retire. Steal records do not pin the worker — they migrate on the way
// out.
func (w *Worker) shouldAskRetire() bool {
	return w.cfg.MaxStealFailures > 0 &&
		w.consecFails >= w.cfg.MaxStealFailures &&
		w.counters.TasksInUse.Load() == 0 &&
		w.dq.Empty() && len(w.waiting) == 0
}

// pickVictim chooses a steal victim among the live peers. Suspect victims
// are deprioritized: each candidate pool is filtered down to its healthy
// members first, falling back to the full pool only when everyone in it is
// suspect (see healthyOf).
func (w *Worker) pickVictim() (types.WorkerID, bool) {
	if len(w.victims) == 0 {
		return 0, false
	}
	victims := w.healthyOf(w.victims, &w.victimsScr)
	switch w.cfg.Victim {
	case RoundRobinVictim:
		v := victims[w.rrNext%len(victims)]
		w.rrNext++
		return v, true
	case SiteAwareVictim:
		// Steal near home first; only cross the slow network cut after
		// repeated local failures (then reset and come home again).
		tries := w.cfg.LocalStealTries
		if tries <= 0 {
			tries = 4
		}
		if locals := w.healthyOf(w.localVictims, &w.localsScr); len(locals) > 0 && w.localFailures < tries {
			return locals[w.rng.Intn(len(locals))], true
		}
		w.localFailures = 0
		return victims[w.rng.Intn(len(victims))], true
	default:
		return victims[w.rng.Intn(len(victims))], true
	}
}

func (w *Worker) removeVictim(v types.WorkerID) {
	for i, x := range w.victims {
		if x == v {
			w.victims = append(w.victims[:i], w.victims[i+1:]...)
			break
		}
	}
	for i, x := range w.localVictims {
		if x == v {
			w.localVictims = append(w.localVictims[:i], w.localVictims[i+1:]...)
			return
		}
	}
}

// drainAll handles every queued message without blocking, starting with
// envelopes a Yield pulled off the wire while a task body held the
// processor (see TaskCtx.Yield).
func (w *Worker) drainAll() {
	for len(w.stash) > 0 {
		env := w.stash[0]
		w.stash[0] = nil
		w.stash = w.stash[1:]
		w.handle(env)
	}
	for {
		select {
		case env, ok := <-w.conn.Recv():
			if !ok {
				w.shutdownMsg = true
				return
			}
			w.handle(env)
		case <-w.wakeCh:
			return
		default:
			return
		}
	}
}

// drainOne blocks up to d for one message (then drains the rest without
// blocking). A wake (Reclaim/Crash/retire verdict) also unblocks it.
func (w *Worker) drainOne(d time.Duration) {
	if d <= 0 || len(w.stash) > 0 {
		w.drainAll()
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case env, ok := <-w.conn.Recv():
		if !ok {
			w.shutdownMsg = true
			return
		}
		w.handle(env)
		w.drainAll()
	case <-w.wakeCh:
	case <-t.C:
	}
}

// handle dispatches one inbound message.
func (w *Worker) handle(env *wire.Envelope) {
	if p, ok := env.Payload.(wire.PeerGone); ok {
		// Transport-synthesized and local-only: keep it out of the message
		// accounting (the checkpoint quiesce balances sent/received
		// matrices, and nobody "sent" this).
		w.onPeerGone(p.Worker)
		return
	}
	w.counters.MessagesReceived.Add(1)
	if env.From != types.ClearinghouseID {
		w.msgRecvFr[env.From]++
	} else if w.chDown {
		w.chRecovered()
	}
	if v, ok := env.Payload.(*wire.View); ok {
		if w.handleView(env, v) {
			return
		}
		// Not a fast-path message: handleView materialized the payload in
		// place, so the struct dispatch below applies unchanged.
	}
	switch p := env.Payload.(type) {
	case wire.RegisterReply:
		w.registered = true
		if w.spans.Load() != nil && p.RecvNS != 0 && w.regSentNS != 0 {
			// NTP-style one-sample estimate: the clearinghouse stamped the
			// registration mid-round-trip, so the offset between its clock
			// and ours is its stamp minus our midpoint. The collector
			// further clamps this with heartbeat one-way delays.
			w.spans.Load().setOffset(p.RecvNS - (w.regSentNS+time.Now().UnixNano())/2)
		}
		w.applyView(p.View)
	case wire.Update:
		w.applyView(p.View)
	case wire.SpawnRoot:
		w.spawnRoot(p)
	case wire.StealRequest:
		w.grantSteal(p.Thief)
	case wire.StealReply:
		// Observe the round trip only for a still-pending request: a reply
		// straggling in after the timeout fired no longer pairs with
		// stealSentAt.
		if w.stealPending && !w.stealSentAt.IsZero() {
			if m := w.cfg.Metrics; m != nil {
				m.StealRTT().ObserveSince(w.stealSentAt)
			}
			if w.spans.Load() != nil && !w.stealSpanID.Zero() {
				sp := wire.Span{Kind: wire.SpanStealReq, Flags: wire.FlagSampled, Worker: w.id,
					Task: w.stealSpanID, Peer: env.From,
					Start: w.stealSentAt.UnixNano(), End: time.Now().UnixNano()}
				if p.OK {
					sp.Link = p.Task.ID // the task this attempt won
				}
				w.spans.Load().add(sp)
				w.stealSpanID = types.TaskID{}
			}
		}
		w.stealPending = false
		w.stealVictim = types.NoWorker
		if p.OK {
			w.dbgRepliesOK.Add(1)
		} else {
			w.dbgRepliesFail.Add(1)
		}
		if p.OK {
			w.localFailures = 0
		} else if w.siteOf[env.From] == w.cfg.Site {
			w.localFailures++
		}
		if w.forwardTo != types.NoWorker {
			// We already migrated away. Leave the task unconfirmed: the
			// victim's steal record redoes it when our tombstone lands.
			return
		}
		if p.OK {
			w.adoptStolen(p.Task)
		} else {
			w.consecFails++
			w.counters.FailedSteals.Add(1)
		}
	case wire.StealConfirm:
		if rec, ok := w.records[p.Record]; ok {
			rec.confirmed = true
		}
	case wire.Arg:
		w.deliver(p.Cont, p.Val, p.Crossed, p.TC)
	case wire.Migrate:
		w.adoptMigration(env.From, p)
	case wire.MigrateAck:
		w.migrateAck = true
	case wire.WorkerDown:
		w.onWorkerDown(p.Worker, p.Ckpts, p.TC)
	case wire.SuspectSet:
		w.onSuspectSet(p)
	case wire.DrainOrder:
		// The clearinghouse judged this worker persistently degraded: leave
		// on a planned schedule, shipping the deque and checkpoints to a
		// healthy adopter (the same path an owner-return reclaim takes).
		w.tr(trace.EvUnregister, types.TaskID{}, env.From, "drain order: "+p.Reason)
		w.drainOrdered = true
		w.drainReq.Store(true)
	case wire.DrainAck:
		w.drainAcked = true
		if p.OK {
			w.drainVictim = p.Victim
			// The chosen victim may postdate our last membership view;
			// install its address so the handoff routes (no-op for
			// in-memory fabrics or an empty address).
			w.conn.SetPeer(p.Victim, p.Addr)
			w.hostOf[p.Victim] = p.Victim
		} else {
			w.drainVictim = types.NoWorker
		}
	case wire.StayReply:
		w.stayAsked = false
		if p.Stay {
			w.consecFails = 0
		} else {
			w.retired = true
		}
	case wire.Pause:
		w.paused = true
		w.sendTo(types.ClearinghouseID, wire.PauseAck{
			Seq: p.Seq, Worker: w.id,
			SentTo: copyCounts(w.msgSentTo), RecvFr: copyCounts(w.msgRecvFr),
		})
	case wire.SnapshotRequest:
		w.sendTo(types.ClearinghouseID, w.snapshotReply(p.Seq))
	case wire.Resume:
		w.paused = false
	case wire.Shutdown:
		w.tr(trace.EvShutdown, types.TaskID{}, env.From, "")
		w.shutdownMsg = true
	default:
		// Macro-level traffic never reaches workers; ignore stray types.
	}
}

// handleView dispatches the hot-path messages straight off a zero-copy
// view — no intermediate structs, no per-message allocation beyond the
// pooled closure a successful steal adopts. Returns true when the message
// was fully consumed; false when the payload was materialized in place so
// the struct dispatch in handle applies.
func (w *Worker) handleView(env *wire.Envelope, v *wire.View) bool {
	if av, ok := v.AsArg(); ok {
		val, err := av.Val()
		if err != nil {
			env.Free() // corrupt value body; drop like a garbage frame
			return true
		}
		w.deliver(av.Cont(), val, av.Crossed(), av.TC())
		env.Free()
		return true
	}
	if sr, ok := v.AsStealRequest(); ok {
		w.grantSteal(sr.Thief())
		env.Free()
		return true
	}
	if rp, ok := v.AsStealReply(); ok {
		w.handleStealReplyView(env, rp)
		env.Free()
		return true
	}
	if sc, ok := v.AsStealConfirm(); ok {
		if rec, ok := w.records[sc.Record()]; ok {
			rec.confirmed = true
		}
		env.Free()
		return true
	}
	if err := env.Materialize(); err != nil {
		env.Free() // corrupt; drop (Materialize leaves the view intact on error)
		return true
	}
	return false
}

// handleStealReplyView is the view twin of handle's StealReply case; the
// stolen closure is adopted straight off the frame via closureFromView.
func (w *Worker) handleStealReplyView(env *wire.Envelope, p wire.StealReplyView) {
	ok := p.OK()
	if w.stealPending && !w.stealSentAt.IsZero() {
		if m := w.cfg.Metrics; m != nil {
			m.StealRTT().ObserveSince(w.stealSentAt)
		}
		if w.spans.Load() != nil && !w.stealSpanID.Zero() {
			sp := wire.Span{Kind: wire.SpanStealReq, Flags: wire.FlagSampled, Worker: w.id,
				Task: w.stealSpanID, Peer: env.From,
				Start: w.stealSentAt.UnixNano(), End: time.Now().UnixNano()}
			if ok {
				sp.Link = p.Task().ID()
			}
			w.spans.Load().add(sp)
			w.stealSpanID = types.TaskID{}
		}
	}
	w.stealPending = false
	w.stealVictim = types.NoWorker
	if ok {
		w.dbgRepliesOK.Add(1)
	} else {
		w.dbgRepliesFail.Add(1)
	}
	if ok {
		w.localFailures = 0
	} else if w.siteOf[env.From] == w.cfg.Site {
		w.localFailures++
	}
	if w.forwardTo != types.NoWorker {
		// We already migrated away. Leave the task unconfirmed: the
		// victim's steal record redoes it when our tombstone lands.
		return
	}
	if !ok {
		w.consecFails++
		w.counters.FailedSteals.Add(1)
		return
	}
	cl, err := closureFromView(p.Task())
	if err != nil {
		// Corrupt closure body: drop the reply; the victim's unconfirmed
		// steal record redoes the task when we are (wrongly) given up on,
		// exactly as if the reply had been lost in flight.
		return
	}
	w.adoptClosure(cl)
}

// applyView installs a fresh membership view: the host map for routing and
// the victim list for stealing.
func (w *Worker) applyView(v wire.MembershipView) {
	if v.Epoch < w.view.Epoch {
		return // stale
	}
	w.view = v
	w.hostOf = make(map[types.WorkerID]types.WorkerID, len(v.Members)+1)
	w.siteOf = make(map[types.WorkerID]int32, len(v.Members))
	w.victims = w.victims[:0]
	w.localVictims = w.localVictims[:0]
	for _, m := range v.Members {
		w.hostOf[m.Worker] = m.HostedBy
		w.siteOf[m.Worker] = m.Site
		if m.Worker == m.HostedBy && m.Worker != w.id && !w.dead[m.Worker] {
			w.victims = append(w.victims, m.Worker)
			if m.Site == w.cfg.Site {
				w.localVictims = append(w.localVictims, m.Worker)
			}
		}
		w.conn.SetPeer(m.Worker, m.Addr)
	}
	w.hostOf[w.id] = w.id
	// Redo any unconfirmed steal whose thief is positively known to have
	// departed (tombstoned in the view, or crashed): the reply carrying
	// the task was lost in flight, so the work exists nowhere else. A
	// thief merely absent from the view may simply not have been
	// announced yet — redoing then would duplicate live work.
	redone := 0
	for _, rec := range w.records {
		if rec.confirmed || rec.thief == w.id {
			continue
		}
		h, known := w.hostOf[rec.thief]
		departed := (known && h != rec.thief) || w.dead[rec.thief]
		if !departed {
			continue
		}
		w.redoRecord(rec)
		redone++
	}
	if redone > 0 {
		w.counters.RedoBatches.Add(1)
	}
	// A fresh view may make unsent args routable.
	w.retryUnsent(true)
}

// resolveHost maps the worker that minted a task id to the worker that
// currently hosts that task's state.
func (w *Worker) resolveHost(minter types.WorkerID) (types.WorkerID, bool) {
	if minter == types.ClearinghouseID {
		return types.ClearinghouseID, true
	}
	h, ok := w.hostOf[minter]
	if !ok {
		return types.NoWorker, false
	}
	// Flattened by the clearinghouse, but tolerate one level of lag.
	if h != minter {
		if h2, ok2 := w.hostOf[h]; ok2 && h2 != h {
			h = h2
		}
	}
	return h, true
}

// nextTaskID mints a task id unique across the job.
func (w *Worker) nextTaskID() types.TaskID {
	w.seq++
	return types.TaskID{Worker: w.id, Seq: w.seq}
}

// spawn creates a ready closure and enqueues it at the head of the deque.
func (w *Worker) spawn(fn string, cont types.Continuation, args []types.Value, noSteal bool, tc wire.TraceCtx) {
	for i, a := range args {
		if a == nil {
			panic(fmt.Sprintf("core: spawn %s: nil argument %d", fn, i))
		}
	}
	cl := newClosure()
	cl.ID = w.nextTaskID()
	cl.Fn = fn
	cl.setArgs(args)
	cl.Cont = cont
	cl.NoSteal = noSteal
	cl.TC = tc
	w.counters.TaskCreated()
	w.dq.PushHead(cl)
}

// addWaiting installs a freshly created successor in the waiting table.
func (w *Worker) addWaiting(cl *Closure) {
	w.counters.TaskCreated()
	w.waiting[cl.ID] = cl
}

func (w *Worker) spawnRoot(p wire.SpawnRoot) {
	cont := types.Continuation{Task: types.TaskID{Worker: types.ClearinghouseID, Seq: 1}}
	// The root is where the head-based sampling decision is made; the
	// whole DAG inherits it through propagated trace contexts.
	var tc wire.TraceCtx
	if w.spans.Load() != nil {
		if s := w.cfg.SpanSample; s <= 0 || s >= 1 || w.rng.Float64() < s {
			tc.Flags = wire.FlagSampled
		}
	}
	w.spawn(p.Fn, cont, p.Args, true, tc)
}

// deliver routes a result value to a continuation: locally into a waiting
// slot or steal record, or across the network as an Arg message. tc is the
// sender's trace context; it rides on every Arg the value takes so remote
// joins keep their DAG edge.
func (w *Worker) deliver(cont types.Continuation, v types.Value, crossed bool, tc wire.TraceCtx) {
	if cont.None() {
		return
	}
	w.ensureSpans(tc)
	// Local state first: after adopting migrated tasks we may host tasks
	// the view does not map to us yet.
	if rec, ok := w.records[cont.Task]; ok && cont.Slot == 0 {
		delete(w.records, cont.Task)
		w.deliver(rec.realCont, v, crossed, tc)
		return
	}
	if _, ok := w.waiting[cont.Task]; ok {
		w.fillSlot(cont, v, crossed, true)
		return
	}
	host, ok := w.resolveHost(cont.Task.Worker)
	switch {
	case !ok:
		// Unknown minter: view lag or death. Park for retry; the retry
		// path drops it once the minter is known dead.
		w.unsent = append(w.unsent, wire.Arg{Cont: cont, Val: v, Crossed: crossed, TC: tc})
	case host == w.id:
		// Hosted here but not in any table. While we are migrating the
		// task may be in the outbound payload; once we have migrated, it
		// lives with the adopter. Otherwise it is gone (orphaned by crash
		// recovery).
		switch {
		case w.migrating:
			w.unsent = append(w.unsent, wire.Arg{Cont: cont, Val: v, Crossed: crossed, TC: tc})
		case w.forwardTo != types.NoWorker:
			if err := w.sendTo(w.forwardTo, wire.Arg{Cont: cont, Val: v, Crossed: true, TC: tc}); err != nil {
				w.orphanDrops.Add(1)
			}
		default:
			w.orphanDrops.Add(1)
		}
	case host == types.NoWorker:
		w.orphanDrops.Add(1)
	default:
		if host == types.ClearinghouseID {
			// The root result. Retain a copy for re-send after a
			// clearinghouse restart; the clearinghouse deduplicates.
			w.rootResult = &wire.Arg{Cont: cont, Val: v, Crossed: true, TC: tc}
		}
		if err := w.sendTo(host, wire.Arg{Cont: cont, Val: v, Crossed: true, TC: tc}); err != nil {
			w.unsent = append(w.unsent, wire.Arg{Cont: cont, Val: v, Crossed: true, TC: tc})
		}
	}
}

// fillSlot writes v into a waiting task's argument slot, maintains the
// join counter, and enqueues the task when it becomes ready. countSynch
// distinguishes real result deliveries (synchronizations, per the paper's
// Table 2) from presets.
func (w *Worker) fillSlot(cont types.Continuation, v types.Value, crossed, countSynch bool) {
	cl, ok := w.waiting[cont.Task]
	if !ok {
		w.orphanDrops.Add(1)
		return
	}
	if int(cont.Slot) >= len(cl.Args) || cl.Args[cont.Slot] != nil {
		// Slot out of range (corrupt) or duplicate delivery (redo race):
		// drop rather than corrupt the join counter.
		w.orphanDrops.Add(1)
		return
	}
	cl.Args[cont.Slot] = v
	cl.Missing--
	if countSynch {
		w.counters.Synchronizations.Add(1)
		if crossed {
			w.counters.NonLocalSynchs.Add(1)
		}
	}
	if cl.Missing == 0 {
		delete(w.waiting, cl.ID)
		w.dq.PushHead(cl)
	}
}

// retryUnsent re-attempts parked args. force retries regardless of the
// pacing interval (called when a new view arrives).
func (w *Worker) retryUnsent(force bool) {
	if len(w.unsent) == 0 || w.migrating {
		return
	}
	if !force && time.Since(w.lastRetry) < w.cfg.RetryUnsent {
		return
	}
	w.lastRetry = time.Now()
	pending := w.unsent
	w.unsent = nil
	for _, a := range pending {
		if w.dead[a.Cont.Task.Worker] {
			w.orphanDrops.Add(1)
			continue
		}
		w.deliver(a.Cont, a.Val, a.Crossed, a.TC)
	}
}

// grantSteal answers a thief: hand over the task at the configured steal
// end of the deque, keeping a steal record for fault tolerance, or report
// failure if there is nothing stealable. The grant span is keyed by the
// task's own sampling decision, which travels inside the closure.
func (w *Worker) grantSteal(thief types.WorkerID) {
	var t0 time.Time
	if w.spans.Load() != nil {
		t0 = time.Now()
	}
	cl, ok := w.takeStealable()
	if !ok {
		w.sendTo(thief, wire.StealReply{OK: false})
		return
	}
	rec := &stealRecord{id: w.nextTaskID(), realCont: cl.Cont, thief: thief, grantedAt: time.Now()}
	stolen := *cl
	stolen.Cont = types.Continuation{Task: rec.id}
	rec.task = stolen.toWire()
	w.records[rec.id] = rec
	if err := w.sendTo(thief, wire.StealReply{OK: true, Task: rec.task}); err != nil {
		// Thief unreachable: revert as if the steal never happened.
		delete(w.records, rec.id)
		w.putBackStealable(cl)
		return
	}
	if w.spans.Load() != nil && rec.task.TC.Sampled() {
		// The grant span doubles as the DAG's steal-record alias: Task is
		// the record id the stolen closure's continuation now targets,
		// Parent the real continuation it stands in for, Link the stolen
		// task. The analysis resolves exec-span Link chains through it.
		w.spans.Load().add(wire.Span{Kind: wire.SpanStealGrant, Flags: rec.task.TC.Flags, Worker: w.id,
			Task: rec.id, Parent: rec.realCont.Task, Link: rec.task.ID, Peer: thief,
			Start: t0.UnixNano(), End: time.Now().UnixNano()})
	}
	w.counters.TaskRetired() // the task left this worker
	cl.free()                // rec.task holds its own copy of the args
	w.dbgGrants.Add(1)
	w.tr(trace.EvStealGrant, rec.task.ID, thief, "")
}

// takeStealable pops from the steal end, skipping (and replacing) a pinned
// closure.
func (w *Worker) takeStealable() (*Closure, bool) {
	pop := w.dq.PopTail
	unpop := w.dq.PushTail
	if w.cfg.StealFrom == StealHead {
		pop = w.dq.PopHead
		unpop = w.dq.PushHead
	}
	cl, ok := pop()
	if !ok {
		return nil, false
	}
	if cl.NoSteal {
		unpop(cl)
		return nil, false
	}
	return cl, true
}

func (w *Worker) putBackStealable(cl *Closure) {
	if w.cfg.StealFrom == StealHead {
		w.dq.PushHead(cl)
		return
	}
	w.dq.PushTail(cl)
}

// adoptStolen installs a task won from a victim and confirms receipt (the
// stolen task's continuation targets the victim's steal record, which is
// how we know where to confirm).
func (w *Worker) adoptStolen(wc wire.Closure) {
	w.adoptClosure(closureFromWire(wc))
}

// adoptClosure installs an already-converted stolen closure (from either
// the struct or the zero-copy ingest path).
func (w *Worker) adoptClosure(cl *Closure) {
	w.dbgAdopts.Add(1)
	w.ensureSpans(cl.TC)
	w.counters.TaskAdopted()
	w.counters.TasksStolen.Add(1)
	if victim := cl.Cont.Task.Worker; w.siteOf[victim] != w.cfg.Site {
		w.counters.RemoteSteals.Add(1)
	}
	w.tr(trace.EvStealAdopt, cl.ID, cl.Cont.Task.Worker, "")
	if w.spans.Load() != nil && cl.TC.Sampled() {
		now := time.Now().UnixNano()
		w.spans.Load().add(wire.Span{Kind: wire.SpanStealAdopt, Flags: cl.TC.Flags, Worker: w.id,
			Task: cl.ID, Parent: cl.Cont.Task, Peer: cl.Cont.Task.Worker,
			Start: now, End: now})
	}
	w.consecFails = 0
	if cl.ready() {
		w.dq.PushHead(cl)
	} else {
		// Only ready tasks are stealable; tolerate anyway.
		w.waiting[cl.ID] = cl
	}
	if host, ok := w.resolveHost(cl.Cont.Task.Worker); ok && host != w.id {
		w.sendTo(host, wire.StealConfirm{Record: cl.Cont.Task})
	}
}

// adoptMigration takes over a departing worker's closures and records.
func (w *Worker) adoptMigration(from types.WorkerID, m wire.Migrate) {
	if w.forwardTo != types.NoWorker {
		// We have already left; withholding the ack makes the sender try
		// another adopter.
		return
	}
	for _, wc := range m.Closures {
		cl := closureFromWire(wc)
		w.ensureSpans(cl.TC)
		w.counters.TaskAdopted()
		if cl.ready() {
			// Behind local work: migrated tasks are old, and the paper's
			// locality argument says fresh local work should run first.
			w.dq.PushTail(cl)
		} else {
			w.waiting[cl.ID] = cl
		}
	}
	if w.cfg.Trace.Enabled() {
		w.tr(trace.EvMigrateIn, types.TaskID{}, from, fmt.Sprintf("%d closures", len(m.Closures)))
	}
	for _, wr := range m.Records {
		rec := recordFromWire(wr)
		if w.dead[rec.thief] {
			// The thief crashed before the record reached us; the
			// migrating worker may have packed the record before hearing
			// about the crash. Redo immediately.
			w.redoRecord(rec)
		}
		w.records[rec.id] = rec
	}
	w.sendTo(from, wire.MigrateAck{Count: len(m.Closures) + len(m.Records)})
}

// redoRecord re-enqueues the local copy of a stolen task whose thief will
// never deliver; the record stays so the redone result still funnels
// through it (and duplicates are dropped).
func (w *Worker) redoRecord(rec *stealRecord) {
	w.tr(trace.EvRedo, rec.task.ID, rec.thief, "")
	if w.spans.Load() != nil && rec.task.TC.Sampled() {
		now := time.Now().UnixNano()
		w.spans.Load().add(wire.Span{Kind: wire.SpanRedo, Flags: rec.task.TC.Flags, Worker: w.id,
			Task: rec.task.ID, Parent: rec.id, Peer: rec.thief, Start: now, End: now})
	}
	rec.thief = w.id
	rec.confirmed = true
	cl := closureFromWire(rec.task)
	w.counters.TaskAdopted()
	w.counters.TasksRedone.Add(1)
	if cl.ready() {
		w.dq.PushTail(cl)
	} else {
		w.waiting[cl.ID] = cl
	}
}

// onWorkerDown redoes work recorded against a crashed thief and drops
// state whose consumers died with it. ckpts carries the dead worker's last
// published checkpoints (when the clearinghouse announced the crash): a
// steal-record copy older than a published blob is refreshed before the
// redo, so re-execution resumes from the blob instead of from zero. tc's
// sampling flags are merged into the redone closures — a clearinghouse
// with span collection on marks every crash announcement sampled, because
// redo work is exactly the overhead the trace analysis attributes.
func (w *Worker) onWorkerDown(dead types.WorkerID, ckpts []wire.TaskCkpt, tc wire.TraceCtx) {
	w.ensureSpans(tc)
	if dead == w.id {
		return // a false positive about ourselves; the clearinghouse
		// already dropped us, so we will fail to matter either way
	}
	w.dead[dead] = true
	w.removeVictim(dead)
	w.conn.DropPeer(dead)
	if len(ckpts) > 0 {
		byTask := make(map[types.TaskID]wire.TaskCkpt, len(ckpts))
		for _, ck := range ckpts {
			byTask[ck.Task] = ck
		}
		for _, rec := range w.records {
			if rec.thief != dead {
				continue
			}
			if ck, ok := byTask[rec.task.ID]; ok && ck.Seq > rec.task.CkptSeq {
				rec.task.Ckpt = append([]byte(nil), ck.Data...)
				rec.task.CkptSeq = ck.Seq
			}
		}
	}
	// Redo: re-enqueue the copy of every task we lent that thief. The
	// record stays; the redone task's result still funnels through it.
	redone := 0
	for _, rec := range w.records {
		if rec.thief == dead {
			rec.task.TC.Flags |= tc.Flags
			w.redoRecord(rec)
			redone++
		}
	}
	if redone > 0 {
		w.counters.RedoBatches.Add(1)
	}
	w.purgeOrphans()
}

// purgeOrphans drops local tasks and records whose results have nowhere to
// go because every route leads to a dead worker. Purely an optimization:
// orphaned results are also dropped at delivery time.
func (w *Worker) purgeOrphans() {
	deadCont := func(c types.Continuation) bool {
		if c.None() {
			return false
		}
		minter := c.Task.Worker
		if minter == types.ClearinghouseID || minter == w.id {
			return false
		}
		if w.dead[minter] {
			if h, ok := w.hostOf[minter]; !ok || h == minter || w.dead[h] {
				return true
			}
		}
		return false
	}
	for id, cl := range w.waiting {
		if deadCont(cl.Cont) {
			delete(w.waiting, id)
			w.counters.TaskRetired()
			cl.free()
		}
	}
	if w.dq.Len() > 0 {
		keep := w.dq.Drain()
		for _, cl := range keep {
			if deadCont(cl.Cont) {
				w.counters.TaskRetired()
				cl.free()
				continue
			}
			w.dq.PushTail(cl)
		}
	}
	for id, rec := range w.records {
		if deadCont(rec.realCont) {
			delete(w.records, id)
		}
	}
}

// migrateAndLeave ships every live closure and record to a peer, then
// unregisters. With no live peer the state cannot be saved; the worker
// reports itself crashed so the clearinghouse triggers the redo path.
//
// Results addressed to the departing tasks keep arriving throughout: they
// are parked while the payload is in flight, flushed to the adopter once
// it acknowledges, and forwarded directly during a short linger before the
// endpoint finally closes.
func (w *Worker) migrateAndLeave(reason wire.LeaveReason) {
	w.leaveReason = reason
	if w.counters.TasksInUse.Load() == 0 && len(w.waiting) == 0 && w.dq.Empty() && len(w.records) == 0 {
		w.unregister(reason, types.NoWorker)
		return
	}
	w.migrating = true
	// Ask the clearinghouse to pick the least-loaded adopter first (the
	// drain protocol). If the clearinghouse is down or slow, fall back to
	// the random local choice — the handoff still works, it just loses the
	// load-aware placement.
	preferred, havePref := w.requestDrainVictim()
	tried := make(map[types.WorkerID]bool)
	for attempt := 0; attempt < 8; attempt++ {
		var target types.WorkerID
		var ok bool
		if havePref && !tried[preferred] && !w.dead[preferred] {
			target, ok = preferred, true
			havePref = false
		} else {
			target, ok = w.pickUntried(tried)
		}
		if !ok {
			break
		}
		tried[target] = true
		switch w.shipStateTo(target) {
		case shipTargetGone:
			continue // positively not delivered; safe to try another
		case shipTimeout:
			// The target may yet adopt the payload; shipping elsewhere
			// would split the state across two adopters. Declare the
			// state lost instead — the crash-recovery path redoes it.
			w.unregister(wire.LeaveCrash, types.NoWorker)
			w.leaveReason = wire.LeaveCrash
			return
		}
		// Shipped. Stragglers can land between packing and the ack — a
		// stolen task whose reply was in flight, a SpawnRoot, another
		// worker's migration. Keep re-shipping to the SAME adopter until
		// the tables stay empty.
		settled := false
		for round := 0; round < 16; round++ {
			if w.shutdownMsg || (w.dq.Empty() && len(w.waiting) == 0 && len(w.records) == 0) {
				settled = true
				break
			}
			if w.shipStateTo(target) != shipOK {
				break
			}
		}
		if !settled {
			// The adopter stopped acking mid-stream; the remainder of the
			// state cannot be placed safely.
			w.unregister(wire.LeaveCrash, types.NoWorker)
			w.leaveReason = wire.LeaveCrash
			return
		}
		w.unregister(reason, target)
		w.lingerForward(target)
		return
	}
	// No adopter: our state dies with us. Tell the clearinghouse the
	// truth so recovery kicks in.
	w.unregister(wire.LeaveCrash, types.NoWorker)
	w.leaveReason = wire.LeaveCrash
}

// shipResult is the outcome of one migration shipment.
type shipResult int

const (
	// shipOK: the adopter acknowledged; the state now lives there.
	shipOK shipResult = iota
	// shipTargetGone: the payload positively did not reach the target
	// (send failed, or the target died/departed before acknowledging);
	// the state was restored locally and another target may be tried.
	shipTargetGone
	// shipTimeout: no acknowledgment and no evidence of death — the
	// payload may or may not be adopted later, so re-shipping elsewhere
	// is unsafe.
	shipTimeout
)

// migrateAckWait bounds how long a migrating worker waits for adoption; it
// is deliberately generous, because switching adopters on a tight timeout
// risks two workers adopting the same tasks.
func (w *Worker) migrateAckWait() time.Duration {
	d := 10 * w.cfg.StealTimeout
	if d < 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// targetDeparted reports whether the migration target is positively known
// dead or departed (so an unacknowledged payload died with it).
func (w *Worker) targetDeparted(target types.WorkerID) bool {
	if w.dead[target] {
		return true
	}
	h, known := w.hostOf[target]
	return known && h != target
}

// shipStateTo packs every live closure and record into one Migrate payload
// and sends it to target, waiting for the acknowledgment.
func (w *Worker) shipStateTo(target types.WorkerID) shipResult {
	var t0 time.Time
	if w.spans.Load() != nil {
		t0 = time.Now()
	}
	payload := wire.Migrate{From: w.id}
	var packed []*Closure
	for _, cl := range w.dq.Drain() {
		packed = append(packed, cl)
		payload.Closures = append(payload.Closures, cl.toWire())
	}
	for id, cl := range w.waiting {
		packed = append(packed, cl)
		payload.Closures = append(payload.Closures, cl.toWire())
		delete(w.waiting, id)
	}
	var packedRecs []*stealRecord
	for id, rec := range w.records {
		packedRecs = append(packedRecs, rec)
		payload.Records = append(payload.Records, rec.toWire())
		delete(w.records, id)
	}
	restore := func() {
		for _, cl := range packed {
			if cl.ready() {
				w.dq.PushTail(cl)
			} else {
				w.waiting[cl.ID] = cl
			}
		}
		for _, rec := range packedRecs {
			w.records[rec.id] = rec
		}
	}
	if len(payload.Closures) == 0 && len(payload.Records) == 0 {
		return shipOK
	}
	w.migrateAck = false
	if w.sendTo(target, payload) != nil {
		restore()
		return shipTargetGone
	}
	deadline := time.Now().Add(w.migrateAckWait())
	for time.Now().Before(deadline) && !w.migrateAck && !w.crashReq.Load() && !w.shutdownMsg {
		if w.targetDeparted(target) {
			restore()
			return shipTargetGone
		}
		w.drainOne(time.Until(deadline))
	}
	if w.shutdownMsg && !w.migrateAck {
		// The job completed while we were packing; the state no longer
		// matters. Report success so the caller unwinds normally.
		return shipOK
	}
	if !w.migrateAck {
		if w.targetDeparted(target) {
			restore()
			return shipTargetGone
		}
		return shipTimeout
	}
	if w.spans.Load() != nil {
		// One drain-handoff span per acknowledged shipment; its id comes
		// from the worker's own sequence, like a steal record's.
		w.spans.Load().add(wire.Span{Kind: wire.SpanDrain, Flags: wire.FlagSampled, Worker: w.id,
			Task: w.nextTaskID(), Peer: target,
			Start: t0.UnixNano(), End: time.Now().UnixNano()})
	}
	for _, cl := range packed {
		w.counters.TaskRetired()
		w.counters.TasksMigrated.Add(1)
		if cl.CkptSeq > 0 {
			// The adopter republishes the blob itself once the task yields
			// there; stop advertising it from a worker that no longer hosts
			// the task.
			w.dropCkptPub(cl.ID)
		}
		cl.free() // the adopter acknowledged its own copy
	}
	return shipOK
}

// drainAckWait bounds how long a departing worker waits for the
// clearinghouse's victim choice before falling back to picking its own:
// proportional to the steal timeout, clamped to keep drains snappy even
// under benchmark-scale timeouts.
func (w *Worker) drainAckWait() time.Duration {
	d := 2 * w.cfg.StealTimeout
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}

// requestDrainVictim asks the clearinghouse to choose the migration target
// (it sees every participant's deque depth, so it picks the least loaded).
// Returns false — and the caller falls back to a random local choice —
// when the clearinghouse is unreachable, answers with no victim, or does
// not answer inside drainAckWait. This bounded wait is what keeps a drain
// racing a clearinghouse crash safe: the handoff still completes, just
// without the load-aware placement.
func (w *Worker) requestDrainVictim() (types.WorkerID, bool) {
	if w.chDown {
		return types.NoWorker, false
	}
	w.drainAcked = false
	w.drainVictim = types.NoWorker
	if w.sendTo(types.ClearinghouseID, wire.DrainRequest{Worker: w.id}) != nil {
		return types.NoWorker, false
	}
	deadline := time.Now().Add(w.drainAckWait())
	for time.Now().Before(deadline) && !w.drainAcked && !w.crashReq.Load() && !w.shutdownMsg {
		w.drainOne(time.Until(deadline))
	}
	if !w.drainAcked || w.drainVictim == types.NoWorker {
		return types.NoWorker, false
	}
	return w.drainVictim, true
}

// lingerForward flushes parked results to the adopter and keeps relaying
// late arrivals for a grace period, so results sent to this worker before
// its departure propagated are not lost.
func (w *Worker) lingerForward(adopter types.WorkerID) {
	w.migrating = false
	w.forwardTo = adopter
	pending := w.unsent
	w.unsent = nil
	for _, a := range pending {
		w.sendTo(adopter, wire.Arg{Cont: a.Cont, Val: a.Val, Crossed: true, TC: a.TC})
	}
	deadline := time.Now().Add(2*w.cfg.StealTimeout + 4*w.cfg.RetryUnsent)
	for time.Now().Before(deadline) {
		if w.crashReq.Load() {
			return
		}
		w.drainOne(time.Until(deadline))
	}
}

func (w *Worker) pickUntried(tried map[types.WorkerID]bool) (types.WorkerID, bool) {
	cands := make([]types.WorkerID, 0, len(w.victims))
	for _, v := range w.victims {
		if !tried[v] && !w.dead[v] {
			cands = append(cands, v)
		}
	}
	if len(cands) == 0 {
		return 0, false
	}
	return cands[w.rng.Intn(len(cands))], true
}

func (w *Worker) unregister(reason wire.LeaveReason, migratedTo types.WorkerID) {
	if w.cfg.Trace.Enabled() {
		w.tr(trace.EvUnregister, types.TaskID{}, migratedTo, reason.String())
	}
	// Flush the final telemetry state first, so the job-end rollup is
	// complete even when the whole job fits inside one heartbeat
	// interval. Sent unreliably like the cadence reports (and kept out
	// of MessagesSent); over UDP it coalesces into the Unregister's
	// datagram. A traced worker may hold more spans than one datagram-
	// sized batch, so keep flushing until the recorder's backlog drains
	// (each report seals and ships the next batch).
	for {
		for _, sr := range w.statReports() {
			rep := &wire.Envelope{Job: w.job, From: w.id, To: types.ClearinghouseID,
				Payload: sr}
			_ = w.conn.Send(rep)
		}
		if w.spans.Load() == nil || w.spans.Load().backlog() == 0 {
			break
		}
	}
	w.sendTo(types.ClearinghouseID, wire.Unregister{
		Worker: w.id, Reason: reason, MigratedTo: migratedTo,
	})
}

// sendTo wraps payload in an envelope and transmits it, counting the
// message.
func (w *Worker) sendTo(to types.WorkerID, payload any) error {
	env := &wire.Envelope{Job: w.job, From: w.id, To: to, Payload: payload}
	if err := w.conn.Send(env); err != nil {
		if to == types.ClearinghouseID && w.registered {
			w.noteCHDown()
		}
		return err
	}
	w.counters.MessagesSent.Add(1)
	if to != types.ClearinghouseID {
		w.msgSentTo[to]++
	}
	return nil
}

func (w *Worker) print(s string) {
	w.sendTo(types.ClearinghouseID, wire.IO{Worker: w.id, Text: s})
}

// DebugDump renders the worker's scheduler state for post-mortem
// inspection in tests. It reads the internal maps without synchronization,
// so it must only be called after the worker has stopped.
func (w *Worker) DebugDump() string {
	var b []byte
	add := func(s string) { b = append(b, s...) }
	add(fmt.Sprintf("worker %d reason=%v consecFails=%d stealPending=%v migrating=%v forwardTo=%d grants=%d repOK=%d repFail=%d adopts=%d\n",
		w.id, w.leaveReason, w.consecFails, w.stealPending, w.migrating, w.forwardTo,
		w.dbgGrants.Load(), w.dbgRepliesOK.Load(), w.dbgRepliesFail.Load(), w.dbgAdopts.Load()))
	add(fmt.Sprintf("  deque(%d):", w.dq.Len()))
	for _, cl := range w.dq.Snapshot() {
		add(fmt.Sprintf(" %v:%s", cl.ID, cl.Fn))
	}
	add("\n")
	for id, cl := range w.waiting {
		add(fmt.Sprintf("  waiting %v fn=%s missing=%d cont=%v\n", id, cl.Fn, cl.Missing, cl.Cont))
	}
	for id, rec := range w.records {
		add(fmt.Sprintf("  record %v thief=%d confirmed=%v realCont=%v\n", id, rec.thief, rec.confirmed, rec.realCont))
	}
	for _, a := range w.unsent {
		add(fmt.Sprintf("  unsent cont=%v\n", a.Cont))
	}
	return string(b)
}

func copyCounts(m map[types.WorkerID]int64) map[types.WorkerID]int64 {
	out := make(map[types.WorkerID]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// snapshotReply dumps the worker's full scheduler state without disturbing
// it — the checkpoint counterpart of a migration payload.
func (w *Worker) snapshotReply(seq uint64) wire.SnapshotReply {
	rep := wire.SnapshotReply{Seq: seq, Worker: w.id}
	for _, cl := range w.dq.Snapshot() {
		rep.Closures = append(rep.Closures, cl.toWire())
	}
	for _, cl := range w.waiting {
		rep.Closures = append(rep.Closures, cl.toWire())
	}
	for _, rec := range w.records {
		rep.Records = append(rep.Records, rec.toWire())
	}
	return rep
}
