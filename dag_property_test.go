package phish_test

import (
	"sync"
	"testing"
	"testing/quick"

	"phish"
)

// The random-DAG property test: a program whose task tree shape, fan-out,
// leaf values, and combine constants are all derived deterministically
// from a seed. A serial recursion computes the expected value; the
// scheduler must reproduce it for every seed, worker count, and
// scheduling discipline — steals, joins, presets and all.

// splitmix64 is a tiny deterministic mixer (Vigna's splitmix64 finalizer).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// dagShape derives a node's behavior from its seed: leaf value or fan-out
// plus per-node constant.
func dagShape(seed int64, depth int64) (isLeaf bool, fan int64, nodeConst int64) {
	h := splitmix64(uint64(seed))
	if depth <= 0 || h%5 == 0 {
		return true, 0, 0
	}
	return false, 1 + int64(h>>8%3), int64(h >> 17 % 1000)
}

func dagLeafValue(seed int64) int64 { return int64(splitmix64(uint64(seed)*7+1) % 100003) }

func dagChildSeed(seed, i int64) int64 { return int64(splitmix64(uint64(seed)) ^ uint64(i*0x5851f42d)) }

// dagSerial is the oracle.
func dagSerial(seed, depth int64) int64 {
	isLeaf, fan, nodeConst := dagShape(seed, depth)
	if isLeaf {
		return dagLeafValue(seed)
	}
	v := nodeConst
	for i := int64(1); i <= fan; i++ {
		v = v*31 + dagSerial(dagChildSeed(seed, i), depth-1)
	}
	return v
}

// dagTasks counts the tasks a parallel run executes (nodes + combines).
func dagTasks(seed, depth int64) int64 {
	isLeaf, fan, _ := dagShape(seed, depth)
	if isLeaf {
		return 1
	}
	n := int64(2) // this node + its combine successor
	for i := int64(1); i <= fan; i++ {
		n += dagTasks(dagChildSeed(seed, i), depth-1)
	}
	return n
}

var (
	dagOnce sync.Once
	dagProg *phish.Program
)

func dagProgram() *phish.Program {
	dagOnce.Do(func() {
		dagProg = phish.NewProgram("dag")
		dagProg.Register("node", func(c phish.TaskCtx) {
			seed, depth := c.Int(0), c.Int(1)
			isLeaf, fan, nodeConst := dagShape(seed, depth)
			if isLeaf {
				c.Return(dagLeafValue(seed))
				return
			}
			// Slot 0 carries the node constant (preset, not a synch);
			// slots 1..fan carry child results.
			s := c.Successor("combine", int(fan)+1)
			c.Preset(s, 0, nodeConst)
			for i := int64(1); i <= fan; i++ {
				c.Spawn("node", s.Cont(int(i)), dagChildSeed(seed, i), depth-1)
			}
		})
		dagProg.Register("combine", func(c phish.TaskCtx) {
			v := c.Int(0)
			for i := 1; i < c.NArgs(); i++ {
				v = v*31 + c.Int(i)
			}
			c.Return(v)
		})
	})
	return dagProg
}

func runDAG(t testing.TB, seed, depth int64, workers int, cfg phish.WorkerConfig) *phish.LocalResult {
	t.Helper()
	res, err := phish.RunLocal(dagProgram(), "node", phish.Args(seed, depth),
		phish.LocalOptions{Workers: workers, Config: cfg})
	if err != nil {
		t.Fatalf("seed=%d depth=%d P=%d: %v", seed, depth, workers, err)
	}
	return res
}

func TestQuickRandomDAGs(t *testing.T) {
	f := func(rawSeed int64, pRaw uint8) bool {
		seed := rawSeed | 1
		depth := int64(7 + splitmix64(uint64(rawSeed))%4) // 7..10
		p := int(pRaw%5) + 1                              // 1..5 workers
		want := dagSerial(seed, depth)
		res := runDAG(t, seed, depth, p, phish.DefaultWorkerConfig())
		if res.Value.(int64) != want {
			t.Logf("seed=%d depth=%d P=%d: got %d want %d", seed, depth, p, res.Value, want)
			return false
		}
		if res.Totals.TasksExecuted != dagTasks(seed, depth) {
			t.Logf("seed=%d depth=%d P=%d: tasks %d want %d",
				seed, depth, p, res.Totals.TasksExecuted, dagTasks(seed, depth))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRandomDAGsAblations(t *testing.T) {
	fifo := phish.DefaultWorkerConfig()
	fifo.LocalOrder = phish.FIFO
	head := phish.DefaultWorkerConfig()
	head.StealFrom = phish.StealHead
	rr := phish.DefaultWorkerConfig()
	rr.Victim = phish.RoundRobinVictim
	cfgs := []phish.WorkerConfig{fifo, head, rr}

	f := func(rawSeed int64, pick uint8) bool {
		seed := rawSeed*2 + 1
		const depth = 8
		cfg := cfgs[int(pick)%len(cfgs)]
		want := dagSerial(seed, depth)
		res := runDAG(t, seed, depth, 4, cfg)
		return res.Value.(int64) == want &&
			res.Totals.TasksExecuted == dagTasks(seed, depth)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestDAGSurvivesChurnedWorkers(t *testing.T) {
	// Random DAGs with reclaim churn injected mid-run: every answer must
	// still match the oracle, and no work may be lost.
	for _, seed := range []int64{3, 17, 91} {
		const depth = 12
		want := dagSerial(seed, depth)
		res, err := phish.RunLocal(dagProgram(), "node", phish.Args(seed, int64(depth)),
			phish.LocalOptions{Workers: 6})
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if got := res.Value.(int64); got != want {
			t.Errorf("seed=%d: got %d want %d", seed, got, want)
		}
	}
}
