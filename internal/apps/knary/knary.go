// Package knary is a synthetic benchmark: a uniform k-ary task tree of
// configurable depth whose every node spins for a configurable amount of
// work before spawning its children. It is the controlled-grain-size
// instrument behind the Table 1 discussion — fib is knary with zero grain
// ("it does almost nothing but spawn parallel tasks"), ray is knary with a
// huge grain — and it drives the grain-size sweep in the benchmarks, which
// maps out how much per-task work is needed before Phish's scheduling
// overhead disappears, on this machine, the way the paper's applications
// map it out on a SparcStation.
package knary

import (
	"sync"

	"phish"
)

// Spin burns deterministic CPU: w rounds of a xorshift step. It returns a
// value derived from the state so the compiler cannot elide the loop.
func Spin(seed uint64, w int64) uint64 {
	x := seed | 1
	for i := int64(0); i < w; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

// Nodes returns the node count of the (depth, fan) tree.
func Nodes(depth, fan int64) int64 {
	if depth <= 0 {
		return 1
	}
	n := int64(1)
	f := int64(1)
	for d := int64(1); d <= depth; d++ {
		f *= fan
		n += f
	}
	return n
}

// TaskCount returns the tasks a parallel run executes: one per node plus
// one sum successor per internal node.
func TaskCount(depth, fan int64) int64 {
	if depth <= 0 {
		return 1
	}
	internal := Nodes(depth-1, fan)
	return Nodes(depth, fan) + internal
}

// Serial is the best serial implementation: recurse, spinning w per node,
// and count the nodes. The spin result guards a branch the compiler
// cannot fold away (a nonzero xorshift state never becomes zero, so the
// branch never fires, but only we know that).
func Serial(depth, fan, work int64) int64 {
	if Spin(uint64(depth)+11, work) == 0 {
		return -1 << 62 // unreachable; defeats dead-code elimination
	}
	if depth <= 0 {
		return 1
	}
	var sum int64 = 1
	for i := int64(0); i < fan; i++ {
		sum += Serial(depth-1, fan, work)
	}
	return sum
}

func knaryTask(c phish.TaskCtx) {
	depth, fan, work := c.Int(0), c.Int(1), c.Int(2)
	if Spin(uint64(depth)+11, work) == 0 {
		c.Return(int64(-1 << 62)) // unreachable; defeats dead-code elimination
		return
	}
	if depth <= 0 {
		c.Return(int64(1))
		return
	}
	s := c.Successor("knary.sum", int(fan))
	for i := int64(0); i < fan; i++ {
		c.Spawn("knary", s.Cont(int(i)), depth-1, fan, work)
	}
}

func sumTask(c phish.TaskCtx) {
	var sum int64 = 1 // this node
	for i := 0; i < c.NArgs(); i++ {
		sum += c.Int(i)
	}
	c.Return(sum)
}

var (
	once sync.Once
	prog *phish.Program
)

// Program returns the knary parallel program.
func Program() *phish.Program {
	once.Do(func() {
		prog = phish.NewProgram("knary")
		prog.Register("knary", knaryTask)
		prog.Register("knary.sum", sumTask)
	})
	return prog
}

// Root names the program's root task function.
const Root = "knary"

// RootArgs builds the root argument list for a (depth, fan) tree with
// `work` spin rounds per node.
func RootArgs(depth, fan, work int64) []phish.Value {
	return phish.Args(depth, fan, work)
}
