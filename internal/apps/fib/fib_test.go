package fib

import (
	"testing"

	"phish"
)

func TestSerial(t *testing.T) {
	want := []int64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55}
	for n, w := range want {
		if got := Serial(int64(n)); got != w {
			t.Errorf("Serial(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	for _, n := range []int64{0, 1, 2, 5, 10, 16} {
		res, err := phish.RunLocal(Program(), Root, RootArgs(n), phish.LocalOptions{Workers: 1})
		if err != nil {
			t.Fatalf("fib(%d): %v", n, err)
		}
		if got, want := res.Value.(int64), Serial(n); got != want {
			t.Errorf("fib(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestParallelMultiWorker(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		res, err := phish.RunLocal(Program(), Root, RootArgs(18), phish.LocalOptions{Workers: p})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if got, want := res.Value.(int64), Serial(18); got != want {
			t.Errorf("P=%d: fib(18) = %d, want %d", p, got, want)
		}
	}
}

func TestTaskConservation(t *testing.T) {
	const n = 15
	res, err := phish.RunLocal(Program(), Root, RootArgs(n), phish.LocalOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Totals.TasksExecuted, TaskCount(n); got != want {
		t.Errorf("tasks executed = %d, want %d", got, want)
	}
	// Leaves and sum tasks each deliver exactly one result; the topmost
	// sum's result is counted at the clearinghouse, not here.
	if got, want := res.Totals.Synchronizations, SynchCount(n); got != want {
		t.Errorf("synchronizations = %d, want %d", got, want)
	}
}
