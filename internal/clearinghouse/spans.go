package clearinghouse

import (
	"math"
	"sort"
	"sync"

	"phish/internal/types"
	"phish/internal/wire"
)

// defaultSpanCap bounds retained spans per worker when Config.SpanCap is
// zero. At 62 wire bytes a span, the default caps a worker's share of the
// collector at roughly 16 MB of span structs — generous for a benchmark
// run, bounded for a long-lived job.
const defaultSpanCap = 1 << 18

// workerSpans is the collector's per-worker state: the latest folded batch
// number (the idempotence cursor of the latest-batch framing), the
// worker's self-reported clock offset, the tightest heartbeat one-way
// delay observed (an upper bound on the true offset), and the retained
// spans, still on the worker's local clock.
type workerSpans struct {
	lastSeq    uint64
	offNS      int64
	minHbDelta int64
	spans      []wire.Span
}

// spanSink is the clearinghouse-side trace collector. Workers ship span
// batches piggybacked on StatReports; the sink folds a batch only when its
// sequence number advances past the last one folded for that worker, so
// retransmitted, duplicated, or reordered reports never double-count.
//
// Span timestamps arrive on each worker's local clock. The sink aligns
// them onto the clearinghouse clock using, per worker, the smaller of the
// worker's own NTP-style registration estimate and the tightest heartbeat
// one-way delay (clearinghouse receive time minus the heartbeat's send
// stamp): the delay is offset plus nonnegative network latency, so it
// bounds the true offset from above and clamps a registration estimate
// skewed by an asymmetric round trip.
type spanSink struct {
	mu      sync.Mutex
	max     int
	perW    map[types.WorkerID]*workerSpans
	total   uint64
	dropped uint64
}

func newSpanSink(max int) *spanSink {
	if max <= 0 {
		max = defaultSpanCap
	}
	return &spanSink{max: max, perW: make(map[types.WorkerID]*workerSpans)}
}

func (s *spanSink) of(w types.WorkerID) *workerSpans {
	ws, ok := s.perW[w]
	if !ok {
		ws = &workerSpans{minHbDelta: math.MaxInt64}
		s.perW[w] = ws
	}
	return ws
}

// fold absorbs one report's span batch and clock-offset estimate. Reports
// from workers without tracing enabled (no batch ever sealed, zero
// offset) are ignored without allocating per-worker state.
func (s *spanSink) fold(rep *wire.StatReport) {
	if rep.SpanSeq == 0 && rep.ClockOffNS == 0 && len(rep.Spans) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ws := s.of(rep.Worker)
	ws.offNS = rep.ClockOffNS
	if rep.SpanSeq <= ws.lastSeq {
		return // the same sealed batch riding a later report, or a stale one
	}
	ws.lastSeq = rep.SpanSeq
	for _, sp := range rep.Spans {
		if len(ws.spans) >= s.max {
			s.dropped++
			continue
		}
		ws.spans = append(ws.spans, sp)
		s.total++
	}
}

// resetWorker clears a worker id's idempotence cursor and clock-offset
// state. Called when an id registers without being live: a restarted (or
// checkpoint-restored) worker restarts its batch numbering from 1, and a
// cursor inherited from the previous incarnation would silently swallow
// every batch until the new numbering happened to pass the old high-water
// mark. Collected spans are kept — they are history, not cursor state.
func (s *spanSink) resetWorker(w types.WorkerID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ws, ok := s.perW[w]
	if !ok {
		return
	}
	ws.lastSeq = 0
	ws.offNS = 0
	ws.minHbDelta = math.MaxInt64
}

// noteHeartbeat refines a worker's offset bound from a stamped heartbeat.
// nowNS is the clearinghouse's wall clock at processing time.
func (s *spanSink) noteHeartbeat(w types.WorkerID, sendNS, nowNS int64) {
	if sendNS == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ws := s.of(w)
	if d := nowNS - sendNS; d < ws.minHbDelta {
		ws.minHbDelta = d
	}
}

// seen reports whether any span has been collected — the signal that this
// job is being traced, used to mark crash announcements sampled.
func (s *spanSink) seen() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total > 0
}

// aligned returns every collected span with its timestamps shifted onto
// the clearinghouse clock, sorted by start time: one cluster timeline.
func (s *spanSink) aligned() []wire.Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]wire.Span, 0, s.total)
	for _, ws := range s.perW {
		off := ws.offNS
		if ws.minHbDelta != math.MaxInt64 && ws.minHbDelta < off {
			off = ws.minHbDelta
		}
		for _, sp := range ws.spans {
			sp.Start += off
			sp.End += off
			out = append(out, sp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

func (s *spanSink) stats() (collected, dropped uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total, s.dropped
}
