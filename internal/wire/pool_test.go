package wire

import (
	"fmt"
	"reflect"
	"testing"

	"phish/internal/types"
)

// TestDecodePooledEnvelopeIsolation: freeing a decoded envelope and
// decoding again must not alias state between the two decodes — the pool
// recycles the envelope struct, never the payload it carried.
func TestDecodePooledEnvelopeIsolation(t *testing.T) {
	mk := func(seq uint64, fn string, arg int64) []byte {
		frame, err := Encode(&Envelope{
			Job: 1, From: 2, To: 3, Seq: seq,
			Payload: StealReply{OK: true, Task: Closure{
				ID:   types.TaskID{Worker: 2, Seq: seq},
				Fn:   fn,
				Args: []types.Value{arg, []int64{arg, arg + 1}},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return frame
	}
	fa, fb := mk(7, "fib", 10), mk(8, "pfold", 20)

	a, err := Decode(fa)
	if err != nil {
		t.Fatal(err)
	}
	keep := a.Payload.(StealReply) // payload survives the envelope's Free
	a.Free()
	b, err := Decode(fb)
	if err != nil {
		t.Fatal(err)
	}
	if b.Seq != 8 || b.Payload.(StealReply).Task.Fn != "pfold" {
		t.Fatalf("second decode corrupted by pool reuse: %+v", b)
	}
	if keep.Task.Fn != "fib" || keep.Task.Args[0].(int64) != 10 {
		t.Fatalf("retained payload mutated after Free: %+v", keep)
	}
	b.Free()

	// A decode error must not poison later pooled decodes.
	if _, err := Decode(fa[:len(fa)-2]); err == nil {
		t.Fatal("truncated frame decoded")
	}
	c, err := Decode(fa)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Payload.(StealReply).Task.Fn; got != "fib" {
		t.Fatalf("decode after error path: Fn = %q", got)
	}
	c.Free()
}

// TestInternedFnNames: repeated decodes of the same closure share one Fn
// string; the intern table is bounded so unbounded distinct names cannot
// grow memory forever.
func TestInternedFnNames(t *testing.T) {
	frame, err := Encode(&Envelope{Job: 1, From: 2, To: 3, Seq: 1,
		Payload: StealReply{OK: true, Task: Closure{ID: types.TaskID{Worker: 1, Seq: 1}, Fn: "intern-me"}}})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := Decode(frame)
	b, _ := Decode(frame)
	fa := a.Payload.(StealReply).Task.Fn
	fb := b.Payload.(StealReply).Task.Fn
	if fa != "intern-me" || fb != "intern-me" {
		t.Fatalf("Fn = %q / %q", fa, fb)
	}
	ha := (*reflect.StringHeader)(reflect.ValueOf(&fa).UnsafePointer())
	hb := (*reflect.StringHeader)(reflect.ValueOf(&fb).UnsafePointer())
	if ha.Data != hb.Data {
		t.Error("two decodes of the same Fn returned distinct backing arrays; intern table not used")
	}

	// Flood with distinct names: table must stay bounded, decodes must
	// still work beyond the cap.
	for i := 0; i < fnInternMax+64; i++ {
		fr, err := Encode(&Envelope{Job: 1, From: 2, To: 3, Seq: uint64(i),
			Payload: StealReply{OK: true, Task: Closure{ID: types.TaskID{Worker: 1, Seq: uint64(i)}, Fn: fmt.Sprintf("flood-%d", i)}}})
		if err != nil {
			t.Fatal(err)
		}
		env, err := Decode(fr)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("flood-%d", i); env.Payload.(StealReply).Task.Fn != want {
			t.Fatalf("flooded decode %d: Fn = %q", i, env.Payload.(StealReply).Task.Fn)
		}
		env.Free()
	}
	fnIntern.RLock()
	n := len(fnIntern.cur) + len(fnIntern.old)
	fnIntern.RUnlock()
	if n > fnInternMax {
		t.Fatalf("intern table grew to %d entries, cap is %d", n, fnInternMax)
	}

	// Eviction regression: after the flood, a name that keeps appearing
	// must intern again — the old append-only table stayed saturated
	// forever, making every decode of a live name allocate.
	c, _ := Decode(frame)
	d, _ := Decode(frame)
	fc := c.Payload.(StealReply).Task.Fn
	fd := d.Payload.(StealReply).Task.Fn
	hc := (*reflect.StringHeader)(reflect.ValueOf(&fc).UnsafePointer())
	hd := (*reflect.StringHeader)(reflect.ValueOf(&fd).UnsafePointer())
	if hc.Data != hd.Data {
		t.Error("post-flood decodes of a recurring Fn no longer share backing; eviction failed to make room")
	}
	c.Free()
	d.Free()
}
