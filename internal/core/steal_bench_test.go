package core

import (
	"testing"

	"phish/internal/clock"
	"phish/internal/model"
	"phish/internal/phishnet"
	"phish/internal/types"
	"phish/internal/wire"
)

// benchStealCycle measures one complete steal round trip — request, grant
// (with steal-record bookkeeping), adopt, confirm, execute, and result
// delivery back through the victim's record — by driving two workers'
// message handlers directly over a fabric with the given in-flight codec.
// CodecNone isolates scheduler cost, CodecBinary adds the production wire
// codec, and CodecGob is the pre-optimization reference.
func benchStealCycle(b *testing.B, codec phishnet.Codec) {
	prog := NewProgram("stealrig")
	prog.Register("work", func(c model.Ctx) { c.Return(c.Int(0)) })

	fab := phishnet.NewFabric()
	defer fab.Close()
	fab.SetCodec(codec)
	victimPort := fab.Attach(0)
	thiefPort := fab.Attach(1)
	victim := NewWorker(1, 0, prog, victimPort, DefaultConfig(), clock.System)
	thief := NewWorker(1, 1, prog, thiefPort, DefaultConfig(), clock.System)
	view := wire.MembershipView{Epoch: 1, Members: []wire.MemberInfo{
		{Worker: 0, HostedBy: 0},
		{Worker: 1, HostedBy: 1},
	}}
	victim.applyView(view)
	thief.applyView(view)

	// Argument shapes matching a data-carrying steal (cf. the wire
	// benchmarks' stolen closure).
	args := []types.Value{int64(42), "pfold", []int64{1, 2, 3, 4, 5, 6, 7, 8}}
	cont := types.Continuation{Task: types.TaskID{Worker: 0, Seq: 1 << 40}}

	recvV := victimPort.Recv()
	recvT := thiefPort.Recv()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim.spawn("work", cont, args, false, wire.TraceCtx{})
		if err := thief.sendTo(0, wire.StealRequest{Thief: 1}); err != nil {
			b.Fatal(err)
		}
		victim.handle(<-recvV) // StealRequest → grant + record
		thief.handle(<-recvT)  // StealReply → adopt + confirm
		victim.handle(<-recvV) // StealConfirm → record confirmed
		cl, ok := thief.popNext()
		if !ok {
			b.Fatal("thief adopted nothing")
		}
		thief.execute(cl)      // result → Arg back to the victim
		victim.handle(<-recvV) // Arg → consume the steal record
		if len(victim.records) != 0 {
			b.Fatalf("record leaked: %d", len(victim.records))
		}
	}
}

// BenchmarkStealRoundTrip measures one steal request/grant/adopt/confirm
// cycle, the latency a thief pays per successful steal. Sub-benchmarks
// select how envelopes are treated in flight.
func BenchmarkStealRoundTrip(b *testing.B) {
	b.Run("pointer", func(b *testing.B) { benchStealCycle(b, phishnet.CodecNone) })
	b.Run("binary", func(b *testing.B) { benchStealCycle(b, phishnet.CodecBinary) })
	b.Run("gob", func(b *testing.B) { benchStealCycle(b, phishnet.CodecGob) })
}
