// Command phishbench regenerates the paper's evaluation: Table 1 (serial
// slowdown), Figure 4 (pfold execution time vs participants), Figure 5
// (pfold speedup), and Table 2 (message and scheduling statistics),
// printing each next to the published numbers.
//
// Usage:
//
//	phishbench                 # everything, laptop-sized
//	phishbench -exp table1     # one experiment
//	phishbench -pfold-n 18 -ps 1,2,4,8,16,32 -exp fig5
//
// Absolute times are this machine's; the comparison is about shape (see
// EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"phish/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig4, fig5, table2, speedup-all, wirebench (alias: wire), schedbench, chbench, migrate, crit, chaos, all")
	wireOut := flag.String("wire-out", "BENCH_wire.json", "output path for the wirebench JSON baseline")
	schedOut := flag.String("sched-out", "BENCH_sched.json", "output path for the schedbench/chbench JSON baseline")
	migrateOut := flag.String("migrate-out", "BENCH_migrate.json", "output path for the migration soak JSON baseline")
	traceOut := flag.String("trace-out", "BENCH_trace.json", "output path for the crit (trace accounting) JSON baseline")
	chaosOut := flag.String("chaos-out", "BENCH_chaos.json", "output path for the failure-detector chaos JSON baseline")
	check := flag.Bool("check", false, "wirebench/migrate/crit/chaos: compare against the recorded baseline and exit nonzero on regression instead of rewriting it")
	chShards := flag.String("ch-shards", "", "chbench shard counts, e.g. 1,4,16,64")
	chWorkers := flag.String("ch-workers", "", "chbench simulated worker populations, e.g. 1000,10000,100000")
	chIters := flag.Int("ch-iters", 0, "chbench hot-path rounds per ingest goroutine")
	fibN := flag.Int64("fib-n", 0, "fib input (0 = default)")
	nqN := flag.Int("nqueens-n", 0, "nqueens input")
	pfoldN := flag.Int("pfold-n", 0, "pfold polymer length")
	pfoldTh := flag.Int("pfold-threshold", 0, "pfold serial threshold")
	rayW := flag.Int("ray-w", 0, "ray image width")
	rayH := flag.Int("ray-h", 0, "ray image height")
	repeats := flag.Int("repeats", 0, "timing repetitions (median reported)")
	psFlag := flag.String("ps", "", "participant counts, e.g. 1,2,4,8,16,32")
	flag.Parse()

	o := harness.DefaultOptions()
	if *fibN > 0 {
		o.FibN = *fibN
	}
	if *nqN > 0 {
		o.NQueensN = *nqN
	}
	if *pfoldN > 0 {
		o.PfoldN = *pfoldN
	}
	if *pfoldTh > 0 {
		o.PfoldThreshold = *pfoldTh
	}
	if *rayW > 0 {
		o.RayW = *rayW
	}
	if *rayH > 0 {
		o.RayH = *rayH
	}
	if *repeats > 0 {
		o.Repeats = *repeats
	}
	parseInts := func(name, val string) []int {
		if val == "" {
			return nil
		}
		var ns []int
		for _, s := range strings.Split(val, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				log.Fatalf("phishbench: bad %s entry %q", name, s)
			}
			ns = append(ns, n)
		}
		return ns
	}
	if ps := parseInts("-ps", *psFlag); ps != nil {
		o.Ps = ps
	}

	run := func(name string) bool { return *exp == "all" || *exp == name }
	did := false

	if run("table1") {
		did = true
		rows, err := o.Table1()
		if err != nil {
			log.Fatalf("phishbench: %v", err)
		}
		harness.PrintTable1(os.Stdout, rows)
		fmt.Println()
	}

	var pts []harness.ScalingPoint
	if run("fig4") || run("fig5") {
		var err error
		pts, err = o.PfoldScaling()
		if err != nil {
			log.Fatalf("phishbench: %v", err)
		}
	}
	if run("fig4") {
		did = true
		harness.PrintFig4(os.Stdout, pts)
		fmt.Println()
	}
	if run("fig5") {
		did = true
		harness.PrintFig5(os.Stdout, pts)
		fmt.Println()
	}
	if run("table2") {
		did = true
		t2, err := o.Table2()
		if err != nil {
			log.Fatalf("phishbench: %v", err)
		}
		harness.PrintTable2(os.Stdout, t2)
		fmt.Println()
	}
	if *exp == "speedup-all" {
		// The paper: "all 4 of our applications demonstrate similar
		// speedups, but for lack of space we only present the pfold data."
		did = true
		for _, name := range []string{"fib", "nqueens", "ray", "pfold"} {
			pts, err := o.AppScaling(name)
			if err != nil {
				log.Fatalf("phishbench: %v", err)
			}
			fmt.Printf("speedup — %s\n", name)
			harness.PrintFig5(os.Stdout, pts)
			fmt.Println()
		}
	}
	if run("wirebench") || *exp == "wire" {
		did = true
		rs := harness.WireBench()
		harness.PrintWireBench(os.Stdout, rs)
		if *check {
			base, err := harness.ReadWireBenchJSON(*wireOut)
			if err != nil {
				log.Fatalf("phishbench: read %s: %v", *wireOut, err)
			}
			if err := harness.CheckWire(base, rs); err != nil {
				log.Fatalf("phishbench: %v", err)
			}
			fmt.Printf("\nsteal sequence within alloc budget (%s)\n", *wireOut)
		} else {
			if err := harness.WriteWireBenchJSON(*wireOut, rs); err != nil {
				log.Fatalf("phishbench: write %s: %v", *wireOut, err)
			}
			fmt.Printf("\nwrote %s\n", *wireOut)
		}
	}
	if run("schedbench") {
		did = true
		rs, err := o.SchedBench()
		if err != nil {
			log.Fatalf("phishbench: %v", err)
		}
		harness.PrintSchedBench(os.Stdout, rs)
		if err := harness.WriteSchedBenchJSON(*schedOut, rs); err != nil {
			log.Fatalf("phishbench: write %s: %v", *schedOut, err)
		}
		fmt.Printf("\nwrote %s\n", *schedOut)
	}
	if run("chbench") {
		did = true
		cfg := harness.DefaultCHBenchConfig()
		if s := parseInts("-ch-shards", *chShards); s != nil {
			cfg.Shards = s
		}
		if w := parseInts("-ch-workers", *chWorkers); w != nil {
			cfg.Workers = w
		}
		if *chIters > 0 {
			cfg.Iters = *chIters
		}
		rs := harness.CHBench(cfg)
		harness.PrintCHBench(os.Stdout, rs)
		if err := harness.WriteCHBenchJSON(*schedOut, rs); err != nil {
			log.Fatalf("phishbench: write %s: %v", *schedOut, err)
		}
		fmt.Printf("\nwrote %s\n", *schedOut)
	}
	if run("migrate") {
		did = true
		f, err := harness.MigrateBench(harness.DefaultMigrateBenchConfig())
		if err != nil {
			log.Fatalf("phishbench: %v", err)
		}
		harness.PrintMigrateBench(os.Stdout, f)
		if *check {
			base, err := harness.ReadMigrateBenchJSON(*migrateOut)
			if err != nil {
				log.Fatalf("phishbench: read %s: %v", *migrateOut, err)
			}
			if err := harness.CheckMigrate(base, f); err != nil {
				log.Fatalf("phishbench: %v", err)
			}
			fmt.Printf("\nmigration soak within baseline (%s)\n", *migrateOut)
		} else {
			if err := harness.WriteMigrateBenchJSON(*migrateOut, f); err != nil {
				log.Fatalf("phishbench: write %s: %v", *migrateOut, err)
			}
			fmt.Printf("\nwrote %s\n", *migrateOut)
		}
	}
	if run("crit") {
		did = true
		cfg := harness.DefaultCritBenchConfig()
		if *fibN > 0 {
			cfg.FibN = *fibN
		}
		if *pfoldN > 0 {
			cfg.PfoldN = *pfoldN
		}
		if *pfoldTh > 0 {
			cfg.PfoldThreshold = *pfoldTh
		}
		f, err := harness.CritBench(cfg)
		if err != nil {
			log.Fatalf("phishbench: %v", err)
		}
		harness.PrintCritBench(os.Stdout, f)
		if *check {
			wb, err := harness.ReadWireBenchJSON(*wireOut)
			if err != nil {
				log.Fatalf("phishbench: read %s: %v", *wireOut, err)
			}
			if err := harness.CheckCrit(wb, f); err != nil {
				log.Fatalf("phishbench: %v", err)
			}
			fmt.Printf("\ntrace accounting coherent, steal path alloc-clean (%s)\n", *wireOut)
		} else {
			if err := harness.WriteCritBenchJSON(*traceOut, f); err != nil {
				log.Fatalf("phishbench: write %s: %v", *traceOut, err)
			}
			fmt.Printf("\nwrote %s\n", *traceOut)
		}
	}
	if run("chaos") {
		did = true
		f, err := harness.ChaosBench(harness.DefaultChaosBenchConfig())
		if err != nil {
			log.Fatalf("phishbench: %v", err)
		}
		harness.PrintChaosBench(os.Stdout, f)
		if *check {
			base, err := harness.ReadChaosBenchJSON(*chaosOut)
			if err != nil {
				log.Fatalf("phishbench: read %s: %v", *chaosOut, err)
			}
			if err := harness.CheckChaos(base, f); err != nil {
				log.Fatalf("phishbench: %v", err)
			}
			fmt.Printf("\nfailure-detector contract holds (%s)\n", *chaosOut)
		} else {
			if err := harness.WriteChaosBenchJSON(*chaosOut, f); err != nil {
				log.Fatalf("phishbench: write %s: %v", *chaosOut, err)
			}
			fmt.Printf("\nwrote %s\n", *chaosOut)
		}
	}
	if !did {
		log.Fatalf("phishbench: unknown experiment %q (table1, fig4, fig5, table2, speedup-all, wirebench, schedbench, chbench, migrate, crit, chaos, all)", *exp)
	}
}
