package strata

import (
	"reflect"
	"testing"

	"phish/internal/apps/fib"
	"phish/internal/apps/nqueens"
	"phish/internal/apps/pfold"
)

func TestFibOnStrata(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		res, err := Run(fib.Program(), fib.Root, fib.RootArgs(18), p, DefaultConfig())
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if got, want := res.Value.(int64), fib.Serial(18); got != want {
			t.Errorf("P=%d: fib(18) = %d, want %d", p, got, want)
		}
	}
}

func TestTaskConservation(t *testing.T) {
	const n = 16
	res, err := Run(fib.Program(), fib.Root, fib.RootArgs(n), 4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Totals.TasksExecuted, fib.TaskCount(n); got != want {
		t.Errorf("tasks executed = %d, want %d", got, want)
	}
	if got, want := res.Totals.Synchronizations, fib.SynchCount(n); got != want {
		t.Errorf("synchronizations = %d, want %d", got, want)
	}
	if res.Totals.MessagesSent != 0 {
		t.Errorf("strata sent %d messages; shared memory should send none", res.Totals.MessagesSent)
	}
}

func TestNQueensOnStrata(t *testing.T) {
	res, err := Run(nqueens.Program(), nqueens.Root, nqueens.RootArgs(8), 4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Value.(int64); got != 92 {
		t.Errorf("nqueens(8) = %d, want 92", got)
	}
}

func TestPfoldOnStrata(t *testing.T) {
	want := pfold.Serial(9)
	res, err := Run(pfold.Program(), pfold.Root, pfold.RootArgs(9, 3), 4, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Value.([]int64); !reflect.DeepEqual(got, want) {
		t.Errorf("pfold(9) histogram mismatch\n got %v\nwant %v", got, want)
	}
}

func TestSingleProcNoSteals(t *testing.T) {
	res, err := Run(fib.Program(), fib.Root, fib.RootArgs(12), 1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals.TasksStolen != 0 || res.Totals.NonLocalSynchs != 0 {
		t.Errorf("single processor stole %d tasks, %d non-local synchs; want 0/0",
			res.Totals.TasksStolen, res.Totals.NonLocalSynchs)
	}
}

func TestAblationDisciplinesStillCorrect(t *testing.T) {
	cfgs := map[string]Config{
		"fifo-local":  {Seed: 1, LocalOrder: 1 /* FIFO */},
		"steal-head":  {Seed: 1, StealFrom: 1 /* head */},
		"round-robin": {Seed: 1, Victim: 1 /* round robin */},
	}
	for name, cfg := range cfgs {
		res, err := Run(fib.Program(), fib.Root, fib.RootArgs(15), 4, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got, want := res.Value.(int64), fib.Serial(15); got != want {
			t.Errorf("%s: fib(15) = %d, want %d", name, got, want)
		}
	}
}
