// Command clearinghouse runs a standalone clearinghouse for one parallel
// job over UDP. Normally the phish launcher starts the clearinghouse
// itself; this binary exists for setups where the clearinghouse should
// live on a dedicated machine.
//
// Usage:
//
//	clearinghouse -program pfold -addr :7071 [-hb 10s] [args...]
//
// It prints the job's output and the root result, then exits.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"phish/internal/apps"
	"phish/internal/clearinghouse"
	"phish/internal/phishnet"
	"phish/internal/types"
	"phish/internal/wire"
)

func main() {
	addr := flag.String("addr", ":7071", "UDP address to listen on")
	program := flag.String("program", "", "program to run (fib, nqueens, pfold, ray)")
	job := flag.Int64("job", 1, "job id")
	hb := flag.Duration("hb", 15*time.Second, "heartbeat timeout for crash detection (0 disables)")
	update := flag.Duration("update", 2*time.Minute, "membership update push interval (the paper's 2 minutes)")
	timeout := flag.Duration("timeout", 0, "give up after this long (0 = wait forever)")
	flag.Usage = func() {
		fmt.Println("usage: clearinghouse -program <name> [flags] [program args...]\nprograms:")
		fmt.Print(apps.Usage())
		flag.PrintDefaults()
	}
	flag.Parse()

	app, err := apps.Lookup(*program)
	if err != nil {
		log.Fatalf("clearinghouse: %v", err)
	}
	rootArgs, err := app.ParseArgs(flag.Args())
	if err != nil {
		log.Fatalf("clearinghouse: %v", err)
	}

	conn, err := phishnet.ListenUDP(types.JobID(*job), types.ClearinghouseID, *addr)
	if err != nil {
		log.Fatalf("clearinghouse: %v", err)
	}
	spec := wire.JobSpec{
		ID:       types.JobID(*job),
		Name:     app.Name,
		Program:  app.Name,
		RootFn:   app.Root,
		RootArgs: rootArgs,
		CHAddr:   conn.LocalAddr(),
	}
	cfg := clearinghouse.DefaultConfig()
	cfg.UpdateEvery = *update
	cfg.HeartbeatTimeout = *hb
	ch := clearinghouse.New(spec, conn, cfg)
	go ch.Run()
	defer ch.Stop()

	fmt.Printf("clearinghouse: job %d (%s) on %s — waiting for workers\n",
		spec.ID, spec.Name, conn.LocalAddr())

	v, err := ch.WaitResult(*timeout)
	if err != nil {
		log.Fatalf("clearinghouse: %v", err)
	}
	if out := ch.Output(); out != "" {
		fmt.Print(out)
	}
	fmt.Println(app.Render(v))
}
