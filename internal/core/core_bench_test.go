package core_test

import (
	"testing"
	"time"

	"phish/internal/clearinghouse"
	"phish/internal/clock"
	"phish/internal/core"
	"phish/internal/model"
	"phish/internal/phishnet"
	"phish/internal/types"
	"phish/internal/wire"
)

// BenchmarkTaskThroughput measures the end-to-end cost of one task under
// the full Phish runtime — spawn, deque, join, synchronization — which is
// the per-task overhead behind Table 1's slowdown numbers. Reported as
// ns/task.
func BenchmarkTaskThroughput(b *testing.B) {
	// A chain program: each task spawns one successor until n runs out —
	// a pure spawn/execute/synch cycle with no fan-out noise.
	prog := core.NewProgram("chainbench")
	prog.Register("chain", func(c model.Ctx) {
		n := c.Int(0)
		if n == 0 {
			c.Return(int64(0))
			return
		}
		s := c.Successor("pass", 1)
		c.Spawn("chain", s.Cont(0), n-1)
	})
	prog.Register("pass", func(c model.Ctx) { c.Return(c.Int(0)) })

	const chain = 100000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fab := phishnet.NewFabric()
		spec := wire.JobSpec{ID: 1, Name: "chainbench", Program: "chainbench",
			RootFn: "chain", RootArgs: []types.Value{int64(chain)}}
		ch := clearinghouse.New(spec, fab.Attach(types.ClearinghouseID), clearinghouse.DefaultConfig())
		go ch.Run()
		w := core.NewWorker(1, 0, prog, fab.Attach(0), core.DefaultConfig(), clock.System)
		done := make(chan struct{})
		go func() { _ = w.Run(); close(done) }()
		start := time.Now()
		if _, err := ch.WaitResult(2 * time.Minute); err != nil {
			b.Fatal(err)
		}
		<-done
		elapsed := time.Since(start)
		tasks := w.Stats().TasksExecuted
		b.ReportMetric(float64(elapsed.Nanoseconds())/float64(tasks), "ns/task")
		ch.Stop()
		fab.Close()
	}
}

// The per-cycle steal benchmark lives in steal_bench_test.go (package
// core): BenchmarkStealRoundTrip drives one request/grant/adopt/confirm
// cycle per iteration, with sub-benchmarks selecting the in-flight codec.
