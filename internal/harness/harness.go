// Package harness drives the experiments that regenerate every table and
// figure in the paper's evaluation (Section 4):
//
//   - Table 1: serial slowdown of fib, nqueens, and ray under the Strata
//     baseline (static processor set, shared memory) and under Phish
//     (dynamic processor set, messages) — parallel code on one processor
//     versus the best serial implementation.
//   - Figure 4: average execution time of pfold versus the number of
//     participants.
//   - Figure 5: parallel speedup of pfold versus the number of
//     participants, S_P = P*T1 / sum_i T_P(i).
//   - Table 2: message and scheduling statistics for 4- and 8-participant
//     pfold executions.
//
// Absolute times belong to this machine, not to 1994 SparcStations; the
// quantities that must reproduce are the shapes: which system wins, how
// slowdowns order across applications, near-linear speedup, and steal,
// synch, and message counts that are microscopic next to task counts.
package harness

import (
	"fmt"
	"io"
	"sort"
	"time"

	"phish"
	"phish/internal/apps/fib"
	"phish/internal/apps/nqueens"
	"phish/internal/apps/pfold"
	"phish/internal/apps/ray"
	"phish/internal/stats"
	"phish/internal/strata"
)

// Options sizes the workloads. The defaults are chosen so every
// experiment finishes in seconds on a laptop while still executing
// hundreds of thousands to millions of tasks.
type Options struct {
	FibN           int64
	NQueensN       int
	RayScene       string
	RayW, RayH     int
	RayBand        int
	PfoldN         int
	PfoldThreshold int
	Ps             []int // participant counts for Figures 4/5
	Table2Ps       []int
	Repeats        int // repetitions per timing (median is reported)
	Workers        phish.WorkerConfig
	StrataCfg      strata.Config
	Timeout        time.Duration
}

// DefaultOptions returns laptop-scale workloads.
func DefaultOptions() Options {
	return Options{
		FibN:           27,
		NQueensN:       11,
		RayScene:       "default",
		RayW:           192,
		RayH:           144,
		RayBand:        4,
		PfoldN:         17,
		PfoldThreshold: 6,
		Ps:             []int{1, 2, 4, 8, 16, 32},
		Table2Ps:       []int{4, 8},
		Repeats:        3,
		Workers:        phish.DefaultWorkerConfig(),
		StrataCfg:      strata.DefaultConfig(),
		Timeout:        10 * time.Minute,
	}
}

// median runs f Repeats times and returns the median duration.
func median(repeats int, f func() time.Duration) time.Duration {
	if repeats < 1 {
		repeats = 1
	}
	times := make([]time.Duration, repeats)
	for i := range times {
		times[i] = f()
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2]
}

// Table1Row is one application's serial-slowdown measurements.
type Table1Row struct {
	App        string
	SerialTime time.Duration
	StrataT1   time.Duration
	PhishT1    time.Duration
	// Slowdowns are T1/SerialTime; the paper's reference numbers are in
	// PaperStrata/PaperPhish for the printed comparison.
	StrataSlowdown, PhishSlowdown float64
	PaperStrata, PaperPhish       float64
}

// appSpec bundles what Table 1 needs to run one application.
type appSpec struct {
	name        string
	prog        *phish.Program
	rootFn      string
	rootArgs    []phish.Value
	serial      func()
	paperStrata float64
	paperPhish  float64
}

func (o Options) apps() []appSpec {
	return []appSpec{
		{
			name: "fib", prog: fib.Program(), rootFn: fib.Root, rootArgs: fib.RootArgs(o.FibN),
			serial:      func() { _ = fib.Serial(o.FibN) },
			paperStrata: 4.44, paperPhish: 5.90,
		},
		{
			name: "nqueens", prog: nqueens.Program(), rootFn: nqueens.Root, rootArgs: nqueens.RootArgs(o.NQueensN),
			serial:      func() { _ = nqueens.Serial(o.NQueensN) },
			paperStrata: 1.09, paperPhish: 1.12,
		},
		{
			name: "ray", prog: ray.Program(), rootFn: ray.Root, rootArgs: ray.RootArgs(o.RayScene, o.RayW, o.RayH, o.RayBand),
			serial: func() {
				s, err := ray.SceneByName(o.RayScene)
				if err != nil {
					panic(err)
				}
				_ = ray.Serial(s, o.RayW, o.RayH)
			},
			paperStrata: 1.00, paperPhish: 1.04,
		},
	}
}

// Table1 measures the serial slowdown of the three Table 1 applications
// on both runtimes.
func (o Options) Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, app := range o.apps() {
		serialT := median(o.Repeats, func() time.Duration {
			t0 := time.Now()
			app.serial()
			return time.Since(t0)
		})
		var strataErr error
		strataT := median(o.Repeats, func() time.Duration {
			res, err := strata.Run(app.prog, app.rootFn, app.rootArgs, 1, o.StrataCfg)
			if err != nil {
				strataErr = err
				return 0
			}
			return res.Elapsed
		})
		if strataErr != nil {
			return nil, fmt.Errorf("harness: %s on strata: %w", app.name, strataErr)
		}
		var phishErr error
		phishT := median(o.Repeats, func() time.Duration {
			res, err := phish.RunLocal(app.prog, app.rootFn, app.rootArgs,
				phish.LocalOptions{Workers: 1, Config: o.Workers, Timeout: o.Timeout})
			if err != nil {
				phishErr = err
				return 0
			}
			return res.Elapsed
		})
		if phishErr != nil {
			return nil, fmt.Errorf("harness: %s on phish: %w", app.name, phishErr)
		}
		rows = append(rows, Table1Row{
			App:            app.name,
			SerialTime:     serialT,
			StrataT1:       strataT,
			PhishT1:        phishT,
			StrataSlowdown: float64(strataT) / float64(serialT),
			PhishSlowdown:  float64(phishT) / float64(serialT),
			PaperStrata:    app.paperStrata,
			PaperPhish:     app.paperPhish,
		})
	}
	return rows, nil
}

// ScalingPoint is one P in the pfold scaling experiments (Figures 4 and 5,
// and Table 2 at its chosen P values).
type ScalingPoint struct {
	P int
	// AvgTime is the average per-participant execution time (Figure 4's
	// y-axis).
	AvgTime time.Duration
	// Speedup is S_P = P*T1 / sum_i T_P(i) (Figure 5's y-axis).
	Speedup float64
	// Totals aggregates the Table 2 counters over participants.
	Totals stats.Snapshot
	// Workers holds the per-participant counters.
	Workers []stats.Snapshot
}

// PfoldScaling runs pfold at every P in o.Ps and computes the Figure 4/5
// series. T1 is taken from the P=1 run (which is added if absent).
func (o Options) PfoldScaling() ([]ScalingPoint, error) {
	return o.scale(pfold.Program(), pfold.Root, pfold.RootArgs(o.PfoldN, o.PfoldThreshold))
}

// AppScaling runs the named application's default-size workload at every
// P in o.Ps — the paper's remark that "all 4 of our applications
// demonstrate similar speedups", reproduced for each of them.
func (o Options) AppScaling(name string) ([]ScalingPoint, error) {
	for _, app := range o.apps() {
		if app.name == name {
			return o.scale(app.prog, app.rootFn, app.rootArgs)
		}
	}
	if name == "pfold" {
		return o.PfoldScaling()
	}
	return nil, fmt.Errorf("harness: unknown application %q", name)
}

// scale measures one workload at every participant count.
func (o Options) scale(prog *phish.Program, rootFn string, args []phish.Value) ([]ScalingPoint, error) {
	ps := append([]int(nil), o.Ps...)
	sort.Ints(ps)
	if len(ps) == 0 || ps[0] != 1 {
		ps = append([]int{1}, ps...)
	}

	var out []ScalingPoint
	var t1 time.Duration
	for _, p := range ps {
		res, err := phish.RunLocal(prog, rootFn, args,
			phish.LocalOptions{Workers: p, Config: o.Workers, Timeout: o.Timeout})
		if err != nil {
			return nil, fmt.Errorf("harness: %s P=%d: %w", prog.Name, p, err)
		}
		var sum time.Duration
		times := make([]time.Duration, 0, len(res.Workers))
		for _, w := range res.Workers {
			sum += w.ExecTime
			times = append(times, w.ExecTime)
		}
		avg := sum / time.Duration(len(res.Workers))
		if p == 1 {
			t1 = res.Workers[0].ExecTime
		}
		out = append(out, ScalingPoint{
			P:       p,
			AvgTime: avg,
			Speedup: phish.SpeedupFromTimes(t1, times),
			Totals:  res.Totals,
			Workers: res.Workers,
		})
	}
	return out, nil
}

// Table2 runs pfold at the Table 2 participant counts and returns the
// aggregate statistics per P.
func (o Options) Table2() ([]ScalingPoint, error) {
	saved := o.Ps
	o.Ps = o.Table2Ps
	pts, err := o.PfoldScaling()
	o.Ps = saved
	if err != nil {
		return nil, err
	}
	// Drop the implicit P=1 warm-up point unless it was requested.
	want := map[int]bool{}
	for _, p := range o.Table2Ps {
		want[p] = true
	}
	var out []ScalingPoint
	for _, pt := range pts {
		if want[pt.P] {
			out = append(out, pt)
		}
	}
	return out, nil
}

// PrintTable1 renders Table 1 next to the paper's numbers.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1 — serial slowdown (parallel code on 1 processor / best serial code)\n")
	fmt.Fprintf(w, "%-8s  %12s  %12s  |  %14s  %14s  |  %12s  %12s\n",
		"app", "strata(meas)", "phish(meas)", "strata(paper)", "phish(paper)", "T_serial", "T_phish(1)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s  %12.2f  %12.2f  |  %14.2f  %14.2f  |  %12v  %12v\n",
			r.App, r.StrataSlowdown, r.PhishSlowdown, r.PaperStrata, r.PaperPhish,
			r.SerialTime.Round(time.Millisecond), r.PhishT1.Round(time.Millisecond))
	}
}

// PrintFig4 renders the Figure 4 series (execution time vs P).
func PrintFig4(w io.Writer, pts []ScalingPoint) {
	fmt.Fprintf(w, "Figure 4 — pfold average execution time vs participants\n")
	fmt.Fprintf(w, "%4s  %14s  %14s\n", "P", "avg time", "ideal T1/P")
	var t1 time.Duration
	for _, pt := range pts {
		if pt.P == 1 {
			t1 = pt.AvgTime
		}
	}
	for _, pt := range pts {
		fmt.Fprintf(w, "%4d  %14v  %14v\n", pt.P,
			pt.AvgTime.Round(time.Millisecond), (t1 / time.Duration(pt.P)).Round(time.Millisecond))
	}
}

// PrintFig5 renders the Figure 5 series (speedup vs P).
func PrintFig5(w io.Writer, pts []ScalingPoint) {
	fmt.Fprintf(w, "Figure 5 — pfold speedup vs participants (dashed line in the paper = perfect linear)\n")
	fmt.Fprintf(w, "%4s  %10s  %10s  %10s\n", "P", "speedup", "perfect", "efficiency")
	for _, pt := range pts {
		fmt.Fprintf(w, "%4d  %10.2f  %10d  %9.0f%%\n", pt.P, pt.Speedup, pt.P, 100*pt.Speedup/float64(pt.P))
	}
}

// paperTable2 holds the published Table 2 for the printed comparison.
var paperTable2 = map[int]stats.Snapshot{
	4: {TasksExecuted: 10390216, MaxTasksInUse: 59, TasksStolen: 70, Synchronizations: 10390214,
		NonLocalSynchs: 55, MessagesSent: 1598, ExecTime: 182 * time.Second},
	8: {TasksExecuted: 10390216, MaxTasksInUse: 59, TasksStolen: 133, Synchronizations: 10390214,
		NonLocalSynchs: 122, MessagesSent: 1998, ExecTime: 94 * time.Second},
}

// PrintTable2 renders the Table 2 counters next to the paper's.
func PrintTable2(w io.Writer, pts []ScalingPoint) {
	fmt.Fprintf(w, "Table 2 — pfold message and scheduling statistics\n")
	fmt.Fprintf(w, "%-18s", "")
	for _, pt := range pts {
		fmt.Fprintf(w, "  %14s  %14s", fmt.Sprintf("%d meas.", pt.P), fmt.Sprintf("%d paper", pt.P))
	}
	fmt.Fprintln(w)
	row := func(name string, meas func(ScalingPoint) string, paper func(stats.Snapshot) string) {
		fmt.Fprintf(w, "%-18s", name)
		for _, pt := range pts {
			pp, ok := paperTable2[pt.P]
			ps := "-"
			if ok {
				ps = paper(pp)
			}
			fmt.Fprintf(w, "  %14s  %14s", meas(pt), ps)
		}
		fmt.Fprintln(w)
	}
	row("tasks executed",
		func(p ScalingPoint) string { return fmt.Sprint(p.Totals.TasksExecuted) },
		func(s stats.Snapshot) string { return fmt.Sprint(s.TasksExecuted) })
	row("max tasks in use",
		func(p ScalingPoint) string { return fmt.Sprint(p.Totals.MaxTasksInUse) },
		func(s stats.Snapshot) string { return fmt.Sprint(s.MaxTasksInUse) })
	row("tasks stolen",
		func(p ScalingPoint) string { return fmt.Sprint(p.Totals.TasksStolen) },
		func(s stats.Snapshot) string { return fmt.Sprint(s.TasksStolen) })
	row("synchronizations",
		func(p ScalingPoint) string { return fmt.Sprint(p.Totals.Synchronizations) },
		func(s stats.Snapshot) string { return fmt.Sprint(s.Synchronizations) })
	row("non-local synchs",
		func(p ScalingPoint) string { return fmt.Sprint(p.Totals.NonLocalSynchs) },
		func(s stats.Snapshot) string { return fmt.Sprint(s.NonLocalSynchs) })
	row("messages sent",
		func(p ScalingPoint) string { return fmt.Sprint(p.Totals.MessagesSent) },
		func(s stats.Snapshot) string { return fmt.Sprint(s.MessagesSent) })
	row("execution time",
		func(p ScalingPoint) string { return p.AvgTime.Round(time.Millisecond).String() },
		func(s stats.Snapshot) string { return s.ExecTime.String() })
}
