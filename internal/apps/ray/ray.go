// Package ray is the paper's second real application: a ray tracer that
// renders images by tracing light rays through a mathematical scene model
// (spheres, a checkerboard floor, point lights, Phong shading, shadows,
// and recursive reflections).
//
// Rendering parallelizes over horizontal bands: a task responsible for
// rows [y0, y1) either renders them inline when the band is thin enough
// (the coarse grain that gives ray its ~1.0 serial slowdown in Table 1)
// or splits the band in two and joins the halves with a concatenating
// successor. Because bands always split at a row boundary, the parallel
// image is byte-identical to the serial rendering.
package ray

import (
	"encoding/binary"
	"sync"

	"phish"
)

// DefaultBand is the band height below which a task renders inline.
const DefaultBand = 8

// Task args: scene name, w, h, y0, y1, band.
//
// Leaf bands checkpoint per rendered row: the blob is a row count followed
// by the pixels rendered so far, so a preempted (or crashed-and-redone)
// leaf resumes at the next row instead of re-rendering the band.
func rayTask(c phish.TaskCtx) {
	sceneName := c.String(0)
	w := int(c.Int(1))
	h := int(c.Int(2))
	y0 := int(c.Int(3))
	y1 := int(c.Int(4))
	band := int(c.Int(5))

	scene, err := SceneByName(sceneName)
	if err != nil {
		panic(err) // all workers run the same binary; this cannot differ
	}
	if y1-y0 <= band {
		out, done := resumeRows(c.Checkpoint(), w, y1-y0)
		for y := y0 + done; y < y1; y++ {
			out = append(out, scene.RenderRows(w, h, y, y+1)...)
			blob := make([]byte, 4+len(out))
			binary.BigEndian.PutUint32(blob, uint32(y+1-y0))
			copy(blob[4:], out)
			if c.Yield(blob) {
				return
			}
		}
		c.Return(out)
		return
	}
	mid := (y0 + y1) / 2
	s := c.Successor("ray.join", 2)
	c.Spawn("ray", s.Cont(0), sceneName, int64(w), int64(h), int64(y0), int64(mid), int64(band))
	c.Spawn("ray", s.Cont(1), sceneName, int64(w), int64(h), int64(mid), int64(y1), int64(band))
}

// resumeRows decodes a leaf checkpoint blob: the count of completed rows
// and their pixels. A malformed or out-of-range blob (never produced by
// this task, but checkpoints travel the network) restarts from row zero.
func resumeRows(ck []byte, w, rows int) (out []byte, done int) {
	if len(ck) < 4 {
		return nil, 0
	}
	n := int(binary.BigEndian.Uint32(ck))
	if n <= 0 || n > rows || len(ck) != 4+n*w*3 {
		return nil, 0
	}
	return append([]byte(nil), ck[4:]...), n
}

// joinTask concatenates a split band: slot 0 is the top half, slot 1 the
// bottom, so the result stays in row order.
func joinTask(c phish.TaskCtx) {
	top := c.Arg(0).([]byte)
	bottom := c.Arg(1).([]byte)
	img := make([]byte, 0, len(top)+len(bottom))
	img = append(img, top...)
	img = append(img, bottom...)
	c.Return(img)
}

var (
	once sync.Once
	prog *phish.Program
)

// Program returns the ray parallel program.
func Program() *phish.Program {
	once.Do(func() {
		prog = phish.NewProgram("ray")
		prog.Register("ray", rayTask)
		prog.Register("ray.join", joinTask)
	})
	return prog
}

// Root names the program's root task function.
const Root = "ray"

// RootArgs builds the root argument list: render scene at w×h with the
// given leaf band height (DefaultBand when band <= 0).
func RootArgs(scene string, w, h, band int) []phish.Value {
	if band <= 0 {
		band = DefaultBand
	}
	return phish.Args(scene, int64(w), int64(h), int64(0), int64(h), int64(band))
}
