package cluster

import (
	"testing"
	"time"

	"phish/internal/apps/fib"
	"phish/internal/clearinghouse"
	"phish/internal/clock"
	"phish/internal/core"
	"phish/internal/idlesim"
	"phish/internal/jobmanager"
)

// TestPaperIntervalsVirtualTime drives the macro-level scheduler with the
// paper's literal constants — check every 5 minutes while users are
// logged in, retry the job request every 30 seconds when the pool is
// empty, watch for the owner every 2 seconds while working, push
// clearinghouse updates every 2 minutes — compressed to wall-seconds by a
// virtual clock. Only the macro level runs on the fake clock; the workers
// do real work in real time.
func TestPaperIntervalsVirtualTime(t *testing.T) {
	fake := clock.NewFake()
	w := core.DefaultConfig()
	w.MaxStealFailures = 10
	w.StealTimeout = 20 * time.Millisecond
	opts := Options{
		Clock:  fake,
		Worker: w,
		CH: clearinghouse.Config{
			UpdateEvery: 2 * time.Minute, // the paper's update period
			Clock:       fake,
		},
		JM: jobmanager.Config{
			BusyPoll:  5 * time.Minute,  // the paper's login re-check
			IdleRetry: 30 * time.Second, // the paper's empty-pool retry
			WorkPoll:  2 * time.Second,  // the paper's owner watch
			Clock:     fake,
		},
	}
	c := New(opts)
	defer c.Close()

	// One always-idle workstation... but the pool is empty, so its
	// manager must be parked on the 30-second retry.
	ws := c.AddWorkstation(idlesim.Always{})
	if !fake.BlockUntilWaiters(1, 5*time.Second) {
		t.Fatal("manager never armed its first poll")
	}

	// Submit a job; nothing may happen until the 30-second retry fires.
	j := c.Submit(fib.Program(), fib.Root, fib.RootArgs(22))
	time.Sleep(20 * time.Millisecond)
	if n := ws.Stats().JobsStarted.Load(); n != 0 {
		t.Fatalf("worker started before the 30s retry fired (%d)", n)
	}
	fake.Advance(30 * time.Second)

	// Now the worker starts and the job completes in real time while the
	// virtual clock stands still (the micro level is clock-free).
	v, err := j.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := v.(int64), fib.Serial(22); got != want {
		t.Errorf("fib(22) = %d, want %d", got, want)
	}
	if n := ws.Stats().JobsStarted.Load(); n != 1 {
		t.Errorf("jobs started = %d, want 1", n)
	}

	// After completion the manager goes back to polling the (again empty)
	// pool every 30 virtual seconds; give the exit a moment to land, then
	// check the manager re-armed.
	deadline := time.Now().Add(5 * time.Second)
	for fake.Waiters() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if fake.Waiters() == 0 {
		t.Error("manager did not return to its polling loop after the job")
	}
}
