package clearinghouse

import (
	"math"
	"testing"
	"time"

	"phish/internal/types"
	"phish/internal/wire"
)

func spanReport(id types.WorkerID, seq uint64, n int) wire.StatReport {
	spans := make([]wire.Span, n)
	for i := range spans {
		spans[i] = wire.Span{Kind: wire.SpanExec, Worker: id,
			Task: types.TaskID{Worker: id, Seq: seq*100 + uint64(i)}}
	}
	return wire.StatReport{Worker: id, SpanSeq: seq, Spans: spans}
}

// TestSpanSinkResetWorker: the latest-batch cursor is per-incarnation
// state. A restarted worker numbers its batches from 1 again, so a reset
// must let low sequence numbers fold once more — while spans already
// collected from the previous incarnation stay.
func TestSpanSinkResetWorker(t *testing.T) {
	s := newSpanSink(0)
	rep := spanReport(1, 5, 3)
	s.fold(&rep)
	if got, _ := s.stats(); got != 3 {
		t.Fatalf("collected = %d, want 3", got)
	}
	stale := spanReport(1, 4, 2)
	s.fold(&stale)
	if got, _ := s.stats(); got != 3 {
		t.Fatalf("stale batch folded: collected = %d", got)
	}

	s.resetWorker(1)
	fresh := spanReport(1, 1, 2)
	s.fold(&fresh)
	if got, _ := s.stats(); got != 5 {
		t.Fatalf("post-restart batch 1 swallowed by stale cursor: collected = %d, want 5", got)
	}
	s.mu.Lock()
	ws := s.perW[1]
	if ws.minHbDelta != math.MaxInt64 {
		t.Error("reset kept the previous incarnation's heartbeat-delay bound")
	}
	s.mu.Unlock()

	// Unknown worker: reset must not allocate state.
	s.resetWorker(99)
	s.mu.Lock()
	if _, ok := s.perW[99]; ok {
		t.Error("resetWorker allocated state for an unseen worker")
	}
	s.mu.Unlock()
}

// TestSpanCursorResetsOnReRegister is the end-to-end restart regression:
// a worker folds span batches up to a high sequence, leaves, and a new
// incarnation re-registers under the same id with batch numbering
// restarted from 1. Before the re-registration reset, the collector's
// cursor from the first incarnation silently swallowed every batch of the
// second until its numbering passed the old high-water mark.
func TestSpanCursorResetsOnReRegister(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	w := h.attach(3)
	expect[wire.RegisterReply](t, w, time.Second)

	h.send(w, 3, spanReport(3, 40, 4))
	waitCollected(t, h, 4)

	// First incarnation departs; the id goes non-live.
	h.send(w, 3, wire.Unregister{Worker: 3, Reason: wire.LeaveReclaimed})

	// Second incarnation: re-register, then report batch 1.
	deadline := time.Now().Add(2 * time.Second)
	for h.ch.store.IsLive(3) {
		if time.Now().After(deadline) {
			t.Fatal("worker 3 still live after Unregister")
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.send(w, 3, wire.Register{Worker: 3})
	expect[wire.RegisterReply](t, w, time.Second)
	h.send(w, 3, spanReport(3, 1, 5))
	waitCollected(t, h, 9)
}

// TestSpanCursorSurvivesRegisterRetry: a duplicate Register from a worker
// that never left must NOT reset the cursor — its recorder never
// restarted, so a replayed already-folded batch has to stay suppressed.
func TestSpanCursorSurvivesRegisterRetry(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	w := h.attach(5)
	expect[wire.RegisterReply](t, w, time.Second)

	h.send(w, 5, spanReport(5, 2, 4))
	waitCollected(t, h, 4)

	h.send(w, 5, wire.Register{Worker: 5}) // liveness-refresh retry
	expect[wire.RegisterReply](t, w, time.Second)
	h.send(w, 5, spanReport(5, 2, 4)) // retransmitted duplicate batch
	time.Sleep(50 * time.Millisecond)
	if got, _ := h.ch.spans.stats(); got != 4 {
		t.Fatalf("live-worker Register retry reset the cursor: collected = %d, want 4", got)
	}
}

func waitCollected(t *testing.T, h *chHarness, want uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got, _ := h.ch.spans.stats(); got == want {
			return
		}
		if time.Now().After(deadline) {
			got, _ := h.ch.spans.stats()
			t.Fatalf("collected spans = %d, want %d", got, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
