package clearinghouse

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"phish/internal/clock"
	"phish/internal/phishnet"
	"phish/internal/types"
	"phish/internal/wire"
)

// newJournaledCH builds a clearinghouse journaling to path on a fresh
// fabric, mirroring newHarness but keeping the journal handle.
func newJournaledCH(t *testing.T, path string) (*phishnet.Fabric, *Clearinghouse, *Journal) {
	t.Helper()
	jnl, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Journal = jnl
	fab := phishnet.NewFabric()
	spec := wire.JobSpec{ID: 1, Name: "test", RootFn: "root", RootArgs: []types.Value{int64(1)}}
	ch := New(spec, fab.Attach(types.ClearinghouseID), cfg)
	go ch.Run()
	return fab, ch, jnl
}

func TestJournalRecoversMembershipAndRoot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job-1.jnl")
	fab, ch, jnl := newJournaledCH(t, path)

	w1 := fab.Attach(10)
	send := func(port *phishnet.Port, from types.WorkerID, payload any) {
		t.Helper()
		if err := port.Send(&wire.Envelope{Job: 1, From: from, To: types.ClearinghouseID, Payload: payload}); err != nil {
			t.Fatalf("send %T: %v", payload, err)
		}
	}
	send(w1, 10, wire.Register{Worker: 10})
	expect[wire.SpawnRoot](t, w1, time.Second)
	w2 := fab.Attach(11)
	send(w2, 11, wire.Register{Worker: 11})
	rep := expect[wire.RegisterReply](t, w2, time.Second)
	oldEpoch := rep.View.Epoch
	send(w1, 10, wire.IO{Worker: 10, Text: "partial output"})
	// The IO record is appended under the handler; wait for it to land.
	deadline := time.Now().Add(2 * time.Second)
	for ch.Output() == "" && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// Crash: no shutdowns, just stop and drop the journal handle.
	ch.Stop()
	_ = jnl.Close()
	fab.Close()

	rec, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Spec.ID != 1 || rec.Spec.RootFn != "root" {
		t.Errorf("recovered spec = %+v", rec.Spec)
	}
	if rec.RootHost != 10 {
		t.Errorf("recovered root host = %d, want 10", rec.RootHost)
	}
	if rec.Done {
		t.Error("job marked done without a result")
	}
	if len(rec.Members) != 2 {
		t.Fatalf("recovered %d members, want 2: %+v", len(rec.Members), rec.Members)
	}
	if !strings.Contains(rec.Output, "partial output\n") {
		t.Errorf("recovered output = %q", rec.Output)
	}

	// A recovered incarnation resumes: same members, bumped epoch, and the
	// buffered output intact.
	jnl2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Journal = jnl2
	fab2 := phishnet.NewFabric()
	ch2 := NewFromRecovery(rec, fab2.Attach(types.ClearinghouseID), cfg)
	go ch2.Run()
	defer func() { ch2.Stop(); jnl2.Close(); fab2.Close() }()

	live := ch2.LiveWorkers()
	if len(live) != 2 || live[0] != 10 || live[1] != 11 {
		t.Errorf("recovered live workers = %v, want [10 11]", live)
	}
	if !strings.Contains(ch2.Output(), "partial output\n") {
		t.Errorf("recovered incarnation lost the output: %q", ch2.Output())
	}
	// A surviving worker re-registers; the view it gets must be fresher
	// than anything the dead incarnation sent.
	w1b := fab2.Attach(10)
	if err := w1b.Send(&wire.Envelope{Job: 1, From: 10, To: types.ClearinghouseID, Payload: wire.Register{Worker: 10}}); err != nil {
		t.Fatal(err)
	}
	rep2 := expect[wire.RegisterReply](t, w1b, time.Second)
	if rep2.View.Epoch <= oldEpoch {
		t.Errorf("recovered epoch %d not past journaled %d; stale views would win", rep2.View.Epoch, oldEpoch)
	}
	// The root is already hosted: re-registering must not respawn it.
	select {
	case env := <-w1b.Recv():
		if _, bad := env.Payload.(wire.SpawnRoot); bad {
			t.Fatal("recovered clearinghouse respawned a root that is still alive")
		}
	case <-time.After(50 * time.Millisecond):
	}

	// Deliver the root result; it must complete the job and survive yet
	// another crash/recovery cycle.
	if err := w1b.Send(&wire.Envelope{Job: 1, From: 10, To: types.ClearinghouseID, Payload: wire.Arg{
		Cont: types.Continuation{Task: types.TaskID{Worker: types.ClearinghouseID, Seq: 1}},
		Val:  int64(55),
	}}); err != nil {
		t.Fatal(err)
	}
	if v, err := ch2.WaitResult(2 * time.Second); err != nil || v.(int64) != 55 {
		t.Fatalf("recovered clearinghouse result = %v, %v", v, err)
	}
	ch2.Stop()
	_ = jnl2.Close()

	rec2, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rec2.Done || rec2.Result.(int64) != 55 {
		t.Errorf("result did not survive in the journal: done=%v result=%v", rec2.Done, rec2.Result)
	}
	fab3 := phishnet.NewFabric()
	defer fab3.Close()
	ch3 := NewFromRecovery(rec2, fab3.Attach(types.ClearinghouseID), DefaultConfig())
	go ch3.Run()
	defer ch3.Stop()
	if v, err := ch3.WaitResult(time.Second); err != nil || v.(int64) != 55 {
		t.Fatalf("second recovery lost the result: %v, %v", v, err)
	}
}

func TestJournalRecoveryTimesOutDeadWorkers(t *testing.T) {
	// A worker that died during the clearinghouse outage never re-registers
	// or heartbeats; the recovered incarnation must declare it crashed via
	// the heartbeat timeout (recovered members count as heartbeat-known).
	path := filepath.Join(t.TempDir(), "job-1.jnl")
	fab, ch, jnl := newJournaledCH(t, path)
	w1 := fab.Attach(10)
	if err := w1.Send(&wire.Envelope{Job: 1, From: 10, To: types.ClearinghouseID, Payload: wire.Register{Worker: 10}}); err != nil {
		t.Fatal(err)
	}
	expect[wire.SpawnRoot](t, w1, time.Second)
	ch.Stop()
	_ = jnl.Close()
	fab.Close()

	rec, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{UpdateEvery: 10 * time.Millisecond, HeartbeatTimeout: 50 * time.Millisecond}
	fab2 := phishnet.NewFabric()
	defer fab2.Close()
	ch2 := NewFromRecovery(rec, fab2.Attach(types.ClearinghouseID), cfg)
	go ch2.Run()
	defer ch2.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for len(ch2.LiveWorkers()) > 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if live := ch2.LiveWorkers(); len(live) != 0 {
		t.Errorf("worker dead through the outage still live after recovery: %v", live)
	}
}

func TestJournalRecoveryAdaptiveDetector(t *testing.T) {
	// Recovery under the phi detector spans both regimes. A member that
	// died during the clearinghouse outage never heartbeats the new
	// incarnation, so its post-recovery history stays cold and the classic
	// fixed timeout evicts it. The survivor re-registers and warms a
	// steady cadence; when it later goes silent, phi declares it in a
	// fraction of the fixed timeout.
	path := filepath.Join(t.TempDir(), "job-1.jnl")
	fab, ch, jnl := newJournaledCH(t, path)
	w1 := fab.Attach(10)
	send := func(port *phishnet.Port, from types.WorkerID, payload any) {
		t.Helper()
		if err := port.Send(&wire.Envelope{Job: 1, From: from, To: types.ClearinghouseID, Payload: payload}); err != nil {
			t.Fatalf("send %T: %v", payload, err)
		}
	}
	send(w1, 10, wire.Register{Worker: 10})
	expect[wire.SpawnRoot](t, w1, time.Second)
	w2 := fab.Attach(11)
	send(w2, 11, wire.Register{Worker: 11})
	expect[wire.RegisterReply](t, w2, time.Second)
	ch.Stop()
	_ = jnl.Close()
	fab.Close()

	rec, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	clk := clock.NewFake()
	cfg := Config{UpdateEvery: time.Hour, HeartbeatTimeout: 10 * time.Second,
		PhiThreshold: 8, PhiSlack: -1, Clock: clk}
	fab2 := phishnet.NewFabric()
	defer fab2.Close()
	ch2 := NewFromRecovery(rec, fab2.Attach(types.ClearinghouseID), cfg)
	go ch2.Run()
	defer ch2.Stop()

	w1b := fab2.Attach(10)
	send(w1b, 10, wire.Register{Worker: 10})
	expect[wire.RegisterReply](t, w1b, time.Second)

	// 16 fake seconds at a 1 s heartbeat cadence: sweeps run every 5 s,
	// and by t=15s worker 11's silence exceeds the fixed timeout.
	for i := 0; i < 16; i++ {
		if !clk.BlockUntilWaiters(1, time.Second) {
			t.Fatal("clearinghouse never armed its heartbeat check")
		}
		clk.Advance(time.Second)
		send(w1b, 10, wire.Heartbeat{Worker: 10})
		time.Sleep(2 * time.Millisecond)
	}
	if live := ch2.LiveWorkers(); len(live) != 1 || live[0] != 10 {
		t.Fatalf("live = %v, want [10] (cold-history 11 past the fixed timeout)", live)
	}

	// The survivor goes silent. Its warm history (mean 1 s, floored
	// stddev 250 ms) pushes phi past 8 within ~2.5 s of silence, so the
	// next sweep catches it — 6 s in, well under the 10 s fixed timeout.
	for i := 0; i < 6; i++ {
		if !clk.BlockUntilWaiters(1, time.Second) {
			t.Fatal("clearinghouse never armed its heartbeat check")
		}
		clk.Advance(time.Second)
		time.Sleep(2 * time.Millisecond)
	}
	if live := ch2.LiveWorkers(); len(live) != 0 {
		t.Errorf("warm-history worker silent 6s (phi >> 8) still live: %v", live)
	}
}

func TestReplayJournalToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job-1.jnl")
	fab, ch, jnl := newJournaledCH(t, path)
	w1 := fab.Attach(10)
	if err := w1.Send(&wire.Envelope{Job: 1, From: 10, To: types.ClearinghouseID, Payload: wire.Register{Worker: 10}}); err != nil {
		t.Fatal(err)
	}
	expect[wire.SpawnRoot](t, w1, time.Second)
	ch.Stop()
	_ = jnl.Close()
	fab.Close()

	// Simulate a crash mid-append: a record prefix with most of its body
	// missing dangles off the end of the log.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	rec, err := ReplayJournal(path)
	if err != nil {
		t.Fatalf("torn tail broke replay: %v", err)
	}
	if rec.Spec.ID != 1 {
		t.Errorf("recovered spec = %+v", rec.Spec)
	}
}
