package phish_test

import (
	"testing"
	"time"

	"phish"
	"phish/internal/apps/fib"
)

// Tests for the heterogeneous-network extension (the paper's stated
// future work: "preserve locality with respect to those network cuts that
// have the least bandwidth"). Two sites of workers are separated by a
// high-latency cut; the site-aware steal policy must keep computing the
// right answers while crossing the cut less than blind random stealing
// does.

func TestTwoSitesCorrectness(t *testing.T) {
	cfg := phish.DefaultWorkerConfig()
	cfg.Victim = phish.SiteAwareVictim
	res, err := phish.RunLocal(fib.Program(), fib.Root, fib.RootArgs(22),
		phish.LocalOptions{
			Workers:          6,
			Config:           cfg,
			Sites:            2,
			InterSiteLatency: 500 * time.Microsecond,
		})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Value.(int64), fib.Serial(22); got != want {
		t.Errorf("fib(22) across 2 sites = %d, want %d", got, want)
	}
	if got, want := res.Totals.TasksExecuted, fib.TaskCount(22); got != want {
		t.Errorf("tasks = %d, want %d", got, want)
	}
}

func TestSiteAwareStealsPreferHome(t *testing.T) {
	// Average over a few runs: site-aware stealing should cross the cut
	// for a smaller share of its steals than blind random stealing.
	// (Random picks a remote victim with probability m/(n-1) every time;
	// site-aware only after LocalStealTries consecutive local failures.)
	measure := func(cfg phish.WorkerConfig) (remote, total int64) {
		for i := 0; i < 3; i++ {
			res, err := phish.RunLocal(fib.Program(), fib.Root, fib.RootArgs(24),
				phish.LocalOptions{
					Workers:          8,
					Config:           cfg,
					Sites:            2,
					InterSiteLatency: time.Millisecond,
				})
			if err != nil {
				t.Fatal(err)
			}
			remote += res.Totals.RemoteSteals
			total += res.Totals.TasksStolen
		}
		return remote, total
	}

	random := phish.DefaultWorkerConfig()
	aware := phish.DefaultWorkerConfig()
	aware.Victim = phish.SiteAwareVictim

	rRemote, rTotal := measure(random)
	aRemote, aTotal := measure(aware)
	t.Logf("random: %d/%d remote steals; site-aware: %d/%d", rRemote, rTotal, aRemote, aTotal)
	if rTotal == 0 || aTotal == 0 {
		t.Skip("too few steals to compare on this run")
	}
	randShare := float64(rRemote) / float64(rTotal)
	awareShare := float64(aRemote) / float64(aTotal)
	if awareShare > randShare+0.10 {
		t.Errorf("site-aware crossed the cut more than random: %.2f vs %.2f", awareShare, randShare)
	}
}

func TestSingleSiteDegeneratesToRandom(t *testing.T) {
	// Site-aware with everyone at one site must behave like random
	// stealing and stay correct.
	cfg := phish.DefaultWorkerConfig()
	cfg.Victim = phish.SiteAwareVictim
	res, err := phish.RunLocal(fib.Program(), fib.Root, fib.RootArgs(18),
		phish.LocalOptions{Workers: 4, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Value.(int64), fib.Serial(18); got != want {
		t.Errorf("fib(18) = %d, want %d", got, want)
	}
	if res.Totals.RemoteSteals != 0 {
		t.Errorf("one site, yet %d steals counted as remote", res.Totals.RemoteSteals)
	}
}
