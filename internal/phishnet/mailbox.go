package phishnet

import (
	"sync"

	"phish/internal/wire"
)

// mailbox is an unbounded FIFO of envelopes with a channel interface on
// both ends. Unbounded buffering matters: a worker deep in a long task does
// not drain its inbox, and a bounded channel would make senders block,
// coupling the progress of independent workers (the paper avoids exactly
// this with split-phase sends).
type mailbox struct {
	in   chan *wire.Envelope
	out  chan *wire.Envelope
	done chan struct{}

	mu     sync.RWMutex
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{
		in:   make(chan *wire.Envelope, 64),
		out:  make(chan *wire.Envelope),
		done: make(chan struct{}),
	}
	go m.pump()
	return m
}

func (m *mailbox) pump() {
	defer close(m.out)
	var q []*wire.Envelope
	for {
		if len(q) == 0 {
			env, ok := <-m.in
			if !ok {
				return
			}
			q = append(q, env)
			continue
		}
		select {
		case env, ok := <-m.in:
			if !ok {
				// Drain the backlog to receivers, then exit.
				for _, e := range q {
					select {
					case m.out <- e:
					case <-m.done:
						return
					}
				}
				return
			}
			q = append(q, env)
		case m.out <- q[0]:
			q[0] = nil
			q = q[1:]
		}
	}
}

// put enqueues env; it blocks only transiently (while the pump moves the
// element into its private queue). It reports false once the mailbox has
// closed. The read lock is held across the send so close cannot shut the
// channel out from under an in-flight put.
func (m *mailbox) put(env *wire.Envelope) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return false
	}
	select {
	case m.in <- env:
		return true
	case <-m.done:
		return false
	}
}

// close stops the mailbox (idempotent). Receivers see the out channel
// close after any backlog is drained or abandoned.
func (m *mailbox) close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	// No put can now be inside the send (they all check closed under the
	// read lock, and we held the write lock), so closing is safe.
	close(m.done)
	close(m.in)
}
