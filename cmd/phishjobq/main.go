// Command phishjobq runs the PhishJobQ: the macro-level scheduler's job
// pool. Exactly one instance serves a Phish network; PhishJobManagers on
// idle workstations request jobs from it, and the phish launcher submits
// jobs to it.
//
// Usage:
//
//	phishjobq [-addr :7070] [-state jobq.wal]
//
// With -state, the pool is journaled to the named file: submitted jobs
// survive a crash or restart of the queue, coming back under their
// original ids.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"phish/internal/jobq"
)

func main() {
	addr := flag.String("addr", ":7070", "TCP address to listen on")
	state := flag.String("state", "", "pool log file; submitted jobs survive restarts")
	flag.Parse()

	var pool *jobq.Pool
	if *state != "" {
		var err error
		pool, err = jobq.NewDurablePool(*state)
		if err != nil {
			log.Fatalf("phishjobq: %v", err)
		}
		defer pool.CloseStore()
		if n := pool.Len(); n > 0 {
			fmt.Printf("phishjobq: recovered %d pending job(s) from %s\n", n, *state)
		}
	} else {
		pool = jobq.NewPool()
	}
	srv, err := jobq.NewServer(pool, *addr)
	if err != nil {
		log.Fatalf("phishjobq: %v", err)
	}
	fmt.Printf("phishjobq: serving the job pool on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("phishjobq: shutting down")
	if err := srv.Close(); err != nil {
		log.Fatalf("phishjobq: close: %v", err)
	}
}
