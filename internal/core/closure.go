package core

import (
	"phish/internal/types"
	"phish/internal/wire"
)

// Closure is one task instance: a function name, argument slots, a join
// counter of still-missing arguments, and the continuation its result
// feeds. A closure is *ready* when Missing == 0; ready closures live in
// the worker's deque, waiting ones in its waiting table.
type Closure struct {
	ID      types.TaskID
	Fn      string
	Args    []types.Value
	Missing int32
	Cont    types.Continuation
	// NoSteal pins the closure to its worker (set on the root task).
	NoSteal bool
}

// ready reports whether all argument slots are filled.
func (c *Closure) ready() bool { return c.Missing == 0 }

// toWire converts for transmission (steal, migration, redo copies).
func (c *Closure) toWire() wire.Closure {
	args := make([]types.Value, len(c.Args))
	copy(args, c.Args)
	return wire.Closure{
		ID:      c.ID,
		Fn:      c.Fn,
		Args:    args,
		Missing: c.Missing,
		Cont:    c.Cont,
		NoSteal: c.NoSteal,
	}
}

// closureFromWire converts an inbound wire closure.
func closureFromWire(w wire.Closure) *Closure {
	args := make([]types.Value, len(w.Args))
	copy(args, w.Args)
	return &Closure{
		ID:      w.ID,
		Fn:      w.Fn,
		Args:    args,
		Missing: w.Missing,
		Cont:    w.Cont,
		NoSteal: w.NoSteal,
	}
}

// stealRecord is the redundant state a victim keeps when it hands a task
// to a thief: the task's real continuation and a copy of the task itself.
// The thief's eventual result is addressed to the record (the victim
// rewrote the stolen closure's continuation), so the victim can forward it
// to the real continuation and discard the record — or, if the thief
// crashes first, re-enqueue the copy locally and redo the work. Because
// the record is consumed by the first result that reaches it, a result
// that arrives twice (in-flight original plus redo) is delivered exactly
// once.
type stealRecord struct {
	id       types.TaskID
	realCont types.Continuation
	task     wire.Closure // stolen copy; its Cont already targets the record
	thief    types.WorkerID
	// confirmed is set when the thief acknowledges receipt; an
	// unconfirmed record whose thief departs means the reply was lost in
	// flight, so the task is redone locally.
	confirmed bool
}

func (r *stealRecord) toWire() wire.Record {
	return wire.Record{ID: r.id, RealCont: r.realCont, Task: r.task, Thief: r.thief, Confirmed: r.confirmed}
}

func recordFromWire(w wire.Record) *stealRecord {
	return &stealRecord{id: w.ID, realCont: w.RealCont, task: w.Task, thief: w.Thief, confirmed: w.Confirmed}
}
