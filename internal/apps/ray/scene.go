package ray

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Material describes how a surface responds to light.
type Material struct {
	Color      Vec     // diffuse color
	Specular   float64 // specular coefficient
	Shininess  float64 // Phong exponent
	Reflective float64 // 0..1 mirror contribution
}

// Sphere is a scene object.
type Sphere struct {
	Center Vec
	Radius float64
	Mat    Material
}

// intersect returns the smallest positive ray parameter t with origin o
// and direction d (unit), or false.
func (s Sphere) intersect(o, d Vec) (float64, bool) {
	oc := o.Sub(s.Center)
	b := oc.Dot(d)
	c := oc.Dot(oc) - s.Radius*s.Radius
	disc := b*b - c
	if disc < 0 {
		return 0, false
	}
	sq := math.Sqrt(disc)
	if t := -b - sq; t > 1e-6 {
		return t, true
	}
	if t := -b + sq; t > 1e-6 {
		return t, true
	}
	return 0, false
}

// Light is a point light.
type Light struct {
	Pos       Vec
	Intensity Vec // per-channel intensity
}

// Scene is a full description of what to render. Scenes are registered by
// name so every worker process of a job reconstructs the identical scene
// from the job's scene-name argument — the Phish analogue of typing
// "ray my-scene".
type Scene struct {
	Name       string
	Spheres    []Sphere
	Lights     []Light
	Ambient    Vec
	Background Vec
	// Floor enables the checkerboard ground plane at y = FloorY.
	Floor        bool
	FloorY       float64
	FloorA       Vec
	FloorB       Vec
	FloorReflect float64
	// Camera.
	Eye    Vec
	LookAt Vec
	FOV    float64 // vertical field of view, radians
	// MaxDepth bounds recursive reflections.
	MaxDepth int
}

var (
	scenesMu sync.RWMutex
	scenes   = make(map[string]*Scene)
)

// RegisterScene makes a scene loadable by name in this process.
func RegisterScene(s *Scene) {
	scenesMu.Lock()
	defer scenesMu.Unlock()
	if _, dup := scenes[s.Name]; dup {
		panic(fmt.Sprintf("ray: duplicate scene %q", s.Name))
	}
	scenes[s.Name] = s
}

// SceneByName loads a registered scene.
func SceneByName(name string) (*Scene, error) {
	scenesMu.RLock()
	defer scenesMu.RUnlock()
	s, ok := scenes[name]
	if !ok {
		names := make([]string, 0, len(scenes))
		for n := range scenes {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("ray: unknown scene %q (have %v)", name, names)
	}
	return s, nil
}

func init() {
	RegisterScene(defaultScene())
	RegisterScene(ringScene())
}

// defaultScene is a small deterministic scene: three spheres over a
// checkerboard with two lights.
func defaultScene() *Scene {
	return &Scene{
		Name: "default",
		Spheres: []Sphere{
			{Center: V(0, 1, 0), Radius: 1, Mat: Material{Color: V(0.9, 0.2, 0.2), Specular: 0.6, Shininess: 48, Reflective: 0.25}},
			{Center: V(-2.2, 0.7, 1.0), Radius: 0.7, Mat: Material{Color: V(0.2, 0.5, 0.9), Specular: 0.4, Shininess: 24, Reflective: 0.1}},
			{Center: V(1.9, 0.5, 1.4), Radius: 0.5, Mat: Material{Color: V(0.2, 0.8, 0.3), Specular: 0.8, Shininess: 96, Reflective: 0.4}},
		},
		Lights: []Light{
			{Pos: V(5, 8, -4), Intensity: V(0.9, 0.9, 0.9)},
			{Pos: V(-6, 4, -2), Intensity: V(0.3, 0.3, 0.4)},
		},
		Ambient:      V(0.08, 0.08, 0.10),
		Background:   V(0.15, 0.18, 0.26),
		Floor:        true,
		FloorY:       0,
		FloorA:       V(0.85, 0.85, 0.85),
		FloorB:       V(0.18, 0.18, 0.18),
		FloorReflect: 0.08,
		Eye:          V(0, 1.6, -6),
		LookAt:       V(0, 0.8, 0),
		FOV:          math.Pi / 3,
		MaxDepth:     3,
	}
}

// ringScene is a heavier scene: a ring of mirrored spheres.
func ringScene() *Scene {
	s := &Scene{
		Name: "ring",
		Lights: []Light{
			{Pos: V(0, 10, -6), Intensity: V(0.85, 0.85, 0.8)},
			{Pos: V(8, 5, 2), Intensity: V(0.25, 0.2, 0.2)},
		},
		Ambient:      V(0.06, 0.06, 0.08),
		Background:   V(0.10, 0.12, 0.18),
		Floor:        true,
		FloorY:       0,
		FloorA:       V(0.75, 0.72, 0.65),
		FloorB:       V(0.22, 0.2, 0.2),
		FloorReflect: 0.15,
		Eye:          V(0, 3.2, -8),
		LookAt:       V(0, 0.8, 0),
		FOV:          math.Pi / 3,
		MaxDepth:     4,
	}
	const n = 10
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / n
		hue := float64(i) / n
		s.Spheres = append(s.Spheres, Sphere{
			Center: V(3*math.Cos(a), 0.8, 3*math.Sin(a)),
			Radius: 0.8,
			Mat: Material{
				Color:      V(0.3+0.6*hue, 0.4, 1.0-0.7*hue),
				Specular:   0.7,
				Shininess:  64,
				Reflective: 0.35,
			},
		})
	}
	s.Spheres = append(s.Spheres, Sphere{
		Center: V(0, 1.6, 0), Radius: 1.6,
		Mat: Material{Color: V(0.9, 0.9, 0.9), Specular: 0.9, Shininess: 128, Reflective: 0.7},
	})
	return s
}
