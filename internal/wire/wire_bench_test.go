package wire

import (
	"testing"

	"phish/internal/types"
)

// Wire costs matter only on steals, migrations, and synchs — the rare
// events — but they bound how cheap those events can be.

func benchEnvelope() *Envelope {
	return &Envelope{
		Job: 1, From: 2, To: 3, Seq: 99,
		Payload: Arg{
			Cont: types.Continuation{Task: types.TaskID{Worker: 1, Seq: 12345}, Slot: 1},
			Val:  int64(42),
		},
	}
}

func BenchmarkEncodeArg(b *testing.B) {
	env := benchEnvelope()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeArg(b *testing.B) {
	frame, err := Encode(benchEnvelope())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeStolenClosure(b *testing.B) {
	env := &Envelope{
		Job: 1, From: 2, To: 3,
		Payload: StealReply{OK: true, Task: Closure{
			ID:   types.TaskID{Worker: 2, Seq: 7},
			Fn:   "pfold",
			Args: []types.Value{int64(17), int64(6), int64(0), []int64{1, 2, 3, 4, 5, 6, 7, 8}},
			Cont: types.Continuation{Task: types.TaskID{Worker: 2, Seq: 8}},
		}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeFrameArg is the pooled encode path on its own (the
// steady-state zero-alloc claim EncodeFrame makes).
func BenchmarkEncodeFrameArg(b *testing.B) {
	env := benchEnvelope()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := EncodeFrame(env)
		if err != nil {
			b.Fatal(err)
		}
		f.Free()
	}
}

// BenchmarkDecodeViewArg is the zero-copy counterpart of BenchmarkDecodeArg:
// parse in place, touch every field through accessors, free.
func BenchmarkDecodeViewArg(b *testing.B) {
	frame, err := Encode(benchEnvelope())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := DecodeView(frame, nil)
		if err != nil {
			b.Fatal(err)
		}
		a, _ := env.Payload.(*View).AsArg()
		if _, err := a.Val(); err != nil {
			b.Fatal(err)
		}
		_ = a.Cont()
		env.Free()
	}
}

// BenchmarkInternSaturated pins the fnIntern eviction fix: decoding a
// recurring function name must stay allocation-light even after a flood
// of unique names has cycled the table. Before two-generation rotation,
// saturation made every decode of a live name allocate forever.
func BenchmarkInternSaturated(b *testing.B) {
	var names [][]byte
	for i := 0; i < fnInternMax*2; i++ {
		names = append(names, []byte("saturate-"+string(rune('a'+i%26))+"-"+string(rune('0'+i%10))+"-"+string(rune('A'+(i/260)%26))))
	}
	hot := []byte("pfold-hot")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = internName(names[i%len(names)])
		if internName(hot) == "" {
			b.Fatal("intern failed")
		}
	}
}
