package ray

import (
	"fmt"
	"io"
	"math"
)

// hit describes the nearest intersection along a ray.
type hit struct {
	t       float64
	point   Vec
	normal  Vec
	mat     Material
	isFloor bool
}

// nearest finds the closest intersection of the ray (o, d) with the scene.
func (s *Scene) nearest(o, d Vec) (hit, bool) {
	best := hit{t: math.Inf(1)}
	found := false
	for i := range s.Spheres {
		sp := &s.Spheres[i]
		if t, ok := sp.intersect(o, d); ok && t < best.t {
			p := o.Add(d.Scale(t))
			best = hit{t: t, point: p, normal: p.Sub(sp.Center).Norm(), mat: sp.Mat}
			found = true
		}
	}
	if s.Floor && d.Y != 0 {
		t := (s.FloorY - o.Y) / d.Y
		if t > 1e-6 && t < best.t {
			p := o.Add(d.Scale(t))
			mat := Material{Specular: 0.1, Shininess: 16, Reflective: s.FloorReflect}
			// Checkerboard in x/z.
			cx := int(math.Floor(p.X))
			cz := int(math.Floor(p.Z))
			if (cx+cz)%2 == 0 {
				mat.Color = s.FloorA
			} else {
				mat.Color = s.FloorB
			}
			best = hit{t: t, point: p, normal: V(0, 1, 0), mat: mat, isFloor: true}
			found = true
		}
	}
	return best, found
}

// occluded reports whether anything blocks the segment from p toward the
// light at distance maxT.
func (s *Scene) occluded(p, toLight Vec, maxT float64) bool {
	for i := range s.Spheres {
		if t, ok := s.Spheres[i].intersect(p, toLight); ok && t < maxT {
			return true
		}
	}
	// The floor cannot shadow anything above it from lights above it;
	// skip it for speed (all registered scenes keep lights above the
	// floor).
	return false
}

// shade computes the color at a hit with Phong lighting, shadows, and
// recursive reflection.
func (s *Scene) shade(d Vec, h hit, depth int) Vec {
	col := s.Ambient.Mul(h.mat.Color)
	for _, l := range s.Lights {
		toL := l.Pos.Sub(h.point)
		dist := toL.Len()
		toL = toL.Norm()
		if s.occluded(h.point.Add(h.normal.Scale(1e-6)), toL, dist) {
			continue
		}
		diff := h.normal.Dot(toL)
		if diff > 0 {
			col = col.Add(l.Intensity.Mul(h.mat.Color).Scale(diff))
		}
		if h.mat.Specular > 0 {
			r := toL.Scale(-1).Reflect(h.normal)
			spec := r.Dot(d.Scale(-1))
			if spec > 0 {
				col = col.Add(l.Intensity.Scale(h.mat.Specular * math.Pow(spec, h.mat.Shininess)))
			}
		}
	}
	if h.mat.Reflective > 0 && depth > 0 {
		rd := d.Reflect(h.normal).Norm()
		rc := s.trace(h.point.Add(h.normal.Scale(1e-6)), rd, depth-1)
		col = col.Add(rc.Scale(h.mat.Reflective))
	}
	return col
}

// trace returns the color seen along the ray (o, d).
func (s *Scene) trace(o, d Vec, depth int) Vec {
	h, ok := s.nearest(o, d)
	if !ok {
		return s.Background
	}
	return s.shade(d, h, depth)
}

// camera precomputes the pixel-to-ray mapping.
type camera struct {
	eye           Vec
	right, up, fw Vec
	halfH, halfW  float64
	w, h          int
}

func (s *Scene) camera(w, h int) camera {
	fw := s.LookAt.Sub(s.Eye).Norm()
	right := fw.Cross(V(0, 1, 0)).Norm()
	up := right.Cross(fw)
	halfH := math.Tan(s.FOV / 2)
	halfW := halfH * float64(w) / float64(h)
	return camera{eye: s.Eye, right: right, up: up, fw: fw, halfH: halfH, halfW: halfW, w: w, h: h}
}

func (c camera) ray(x, y int) (Vec, Vec) {
	u := (2*(float64(x)+0.5)/float64(c.w) - 1) * c.halfW
	v := (1 - 2*(float64(y)+0.5)/float64(c.h)) * c.halfH
	d := c.fw.Add(c.right.Scale(u)).Add(c.up.Scale(v)).Norm()
	return c.eye, d
}

// RenderRows renders pixel rows [y0, y1) of a w×h image and returns them
// as packed RGB bytes (3 bytes per pixel, row-major). This is the unit of
// serial work shared by the serial renderer and the parallel leaf tasks,
// so the parallel image is byte-identical to the serial one.
func (s *Scene) RenderRows(w, h, y0, y1 int) []byte {
	cam := s.camera(w, h)
	out := make([]byte, 0, (y1-y0)*w*3)
	for y := y0; y < y1; y++ {
		for x := 0; x < w; x++ {
			o, d := cam.ray(x, y)
			col := s.trace(o, d, s.MaxDepth)
			out = append(out,
				byte(255*clamp01(col.X)),
				byte(255*clamp01(col.Y)),
				byte(255*clamp01(col.Z)))
		}
	}
	return out
}

// Serial is the best serial implementation: render the whole image with
// plain loops.
func Serial(s *Scene, w, h int) []byte {
	return s.RenderRows(w, h, 0, h)
}

// WritePPM writes a rendered RGB image as a binary PPM (P6).
func WritePPM(out io.Writer, img []byte, w, h int) error {
	if len(img) != w*h*3 {
		return fmt.Errorf("ray: image is %d bytes, want %d", len(img), w*h*3)
	}
	if _, err := fmt.Fprintf(out, "P6\n%d %d\n255\n", w, h); err != nil {
		return err
	}
	_, err := out.Write(img)
	return err
}
