// Command phish launches a parallel job the way the paper describes:
// "simply typing `ray my-scene` ... starts up the Clearinghouse and the
// first worker on the local workstation, so the computation begins right
// away. Also by default, it automatically submits the job to the
// PhishJobQ. Thus, as other workstations become idle, they automatically
// begin working on the ray-tracing job."
//
// Usage:
//
//	phish [-jobq host:7070] [-workers 4] [-out img.ppm] <program> [args...]
//
// Examples:
//
//	phish ray default 320 240        # trace the default scene locally
//	phish -jobq :7070 pfold 18       # fold and let the network pile on
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"phish/internal/apps"
	"phish/internal/apps/ray"
	"phish/internal/clearinghouse"
	"phish/internal/clock"
	"phish/internal/core"
	"phish/internal/jobq"
	"phish/internal/phishnet"
	"phish/internal/telemetry"
	"phish/internal/trace"
	"phish/internal/types"
	"phish/internal/wire"
)

func main() {
	jobqAddr := flag.String("jobq", "", "PhishJobQ address to submit the job to (empty = run purely locally)")
	chAddr := flag.String("ch-addr", ":0", "UDP address for the clearinghouse")
	workers := flag.Int("workers", 1, "local workers to start immediately")
	out := flag.String("out", "", "write a ray image result to this PPM file")
	timeout := flag.Duration("timeout", 0, "give up after this long (0 = wait forever)")
	stats := flag.Bool("stats", false, "print per-worker scheduling statistics at the end")
	ckptFile := flag.String("checkpoint", "", "periodically checkpoint the job to this file")
	ckptEvery := flag.Duration("checkpoint-every", 30*time.Second, "checkpoint interval")
	restore := flag.String("restore", "", "resume the job from this checkpoint file instead of starting fresh")
	metricsAddr := flag.String("metrics", "", "serve the job's telemetry rollup at /metrics and /cluster.json on this HTTP address (off when empty)")
	shards := flag.Int("shards", 8, "lock stripes for clearinghouse state (1 = single flat shard)")
	phi := flag.Float64("phi", 8, "phi-accrual crash threshold (8 ~= 1-1e-8 confidence; 0 falls back to the fixed heartbeat timeout for everyone)")
	drainAfter := flag.Duration("drain-after", 0, "order a planned drain for a worker graded suspect continuously this long (0 disables)")
	top := flag.String("top", "", "phishtop: poll a clearinghouse telemetry URL (e.g. http://host:9090) and render a live cluster table instead of running a job")
	topEvery := flag.Duration("top-interval", 2*time.Second, "phishtop poll interval")
	traceFlag := flag.Bool("trace", false, "record a distributed span trace and print the cluster timeline with T1/Tinf accounting at the end")
	traceOut := flag.String("trace-out", "", "also write the trace as Chrome trace-event JSON to this file (implies -trace; open in chrome://tracing or ui.perfetto.dev)")
	traceSample := flag.Float64("trace-sample", 1, "per-root span sampling probability (values outside (0,1) sample everything)")
	flag.Usage = func() {
		fmt.Println("usage: phish [flags] <program> [args...]\nprograms:")
		fmt.Print(apps.Usage())
		flag.PrintDefaults()
	}
	flag.Parse()
	apps.RegisterAll()
	if *traceOut != "" {
		*traceFlag = true
	}

	if *top != "" {
		runTop(*top, *topEvery)
		return
	}

	var cp *clearinghouse.JobCheckpoint
	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			log.Fatalf("phish: %v", err)
		}
		var rerr error
		cp, rerr = clearinghouse.ReadCheckpoint(f)
		f.Close()
		if rerr != nil {
			log.Fatalf("phish: %v", rerr)
		}
	} else if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	var app apps.App
	var rootArgs []types.Value
	var err error
	if cp != nil {
		app, err = apps.Lookup(cp.Spec.Program)
		if err != nil {
			log.Fatalf("phish: checkpointed program: %v", err)
		}
	} else {
		app, err = apps.Lookup(flag.Arg(0))
		if err != nil {
			log.Fatalf("phish: %v", err)
		}
		rootArgs, err = app.ParseArgs(flag.Args()[1:])
		if err != nil {
			log.Fatalf("phish: %v", err)
		}
	}

	// Start the clearinghouse on this workstation.
	jobID := types.JobID(time.Now().UnixNano()&0x7fffffff | 1)
	if cp != nil {
		jobID = cp.Spec.ID
	}
	chConn, err := phishnet.ListenUDP(jobID, types.ClearinghouseID, *chAddr)
	if err != nil {
		log.Fatalf("phish: %v", err)
	}
	spec := wire.JobSpec{
		ID:       jobID,
		Name:     app.Name,
		Program:  app.Name,
		RootFn:   app.Root,
		RootArgs: rootArgs,
		CHAddr:   chConn.LocalAddr(),
	}
	chCfg := clearinghouse.DefaultConfig()
	chCfg.Shards = *shards
	chCfg.UpdateEvery = 15 * time.Second
	chCfg.HeartbeatTimeout = 30 * time.Second
	chCfg.PhiThreshold = *phi
	chCfg.SuspectDrainAfter = *drainAfter
	if *metricsAddr != "" {
		chCfg.Metrics = telemetry.NewMetrics()
	}
	var ch *clearinghouse.Clearinghouse
	if cp != nil {
		cp.Spec.CHAddr = chConn.LocalAddr()
		spec = cp.Spec
		ch = clearinghouse.NewFromCheckpoint(cp, chConn, chCfg)
		fmt.Printf("phish: resuming job %d (%s) from %s (%d state bundles)\n",
			spec.ID, spec.Name, *restore, len(cp.States))
	} else {
		ch = clearinghouse.New(spec, chConn, chCfg)
	}
	go ch.Run()
	defer ch.Stop()

	if *metricsAddr != "" {
		srv, err := telemetry.NewServer(*metricsAddr)
		if err != nil {
			log.Fatalf("phish: %v", err)
		}
		defer srv.Close()
		preg := telemetry.NewRegistry()
		telemetry.RegisterRuntime(preg)
		srv.Handle("/metrics", telemetry.ClusterMetricsWithProcessHandler(ch.ClusterSnapshot, preg))
		srv.Handle("/cluster.json", telemetry.ClusterJSONHandler(ch.ClusterSnapshot))
		fmt.Printf("phish: telemetry on http://%s/metrics (watch live: phish -top http://%s)\n",
			srv.Addr(), srv.Addr())
	}

	// Periodic checkpointing.
	if *ckptFile != "" {
		go func() {
			for {
				time.Sleep(*ckptEvery)
				if ch.Done() {
					return
				}
				snap, err := ch.Checkpoint(time.Minute)
				if err != nil {
					log.Printf("phish: checkpoint skipped: %v", err)
					continue
				}
				tmp := *ckptFile + ".tmp"
				f, err := os.Create(tmp)
				if err != nil {
					log.Printf("phish: checkpoint: %v", err)
					continue
				}
				werr := clearinghouse.WriteCheckpoint(f, snap)
				cerr := f.Close()
				if werr != nil || cerr != nil {
					log.Printf("phish: checkpoint write failed: %v %v", werr, cerr)
					continue
				}
				if err := os.Rename(tmp, *ckptFile); err != nil {
					log.Printf("phish: checkpoint rename: %v", err)
					continue
				}
				fmt.Printf("phish: checkpointed %d participants to %s\n", len(snap.States), *ckptFile)
			}
		}()
	}

	// Submit to the PhishJobQ so idle workstations join.
	if *jobqAddr != "" {
		cli := jobq.NewClient(*jobqAddr)
		id, err := cli.Submit(spec)
		if err != nil {
			log.Fatalf("phish: submit: %v", err)
		}
		defer func() {
			_ = cli.Done(id)
			_ = cli.Close()
		}()
		fmt.Printf("phish: job %d submitted to %s\n", id, *jobqAddr)
	}

	// Start the first worker(s) locally — the computation begins right
	// away.
	prog, err := core.LookupProgram(app.Name)
	if err != nil {
		log.Fatalf("phish: %v", err)
	}
	cfg := core.DefaultConfig()
	cfg.HeartbeatEvery = 5 * time.Second
	cfg.StealTimeout = time.Second
	cfg.StealBackoff = 5 * time.Millisecond
	if *metricsAddr != "" {
		// Faster piggybacked reports so phishtop tracks the local workers
		// closely; each worker gets its own histogram set.
		cfg.HeartbeatEvery = 2 * time.Second
	}
	var wg sync.WaitGroup
	locals := make([]*core.Worker, 0, *workers)
	// Restored workers take ids clear of anything a previous incarnation
	// could have used, so checkpoint bundles never collide with them.
	idBase := 0
	if cp != nil {
		idBase = 1 << 30
	}
	for i := 0; i < *workers; i++ {
		conn, err := phishnet.ListenUDP(jobID, types.WorkerID(idBase+i), ":0")
		if err != nil {
			log.Fatalf("phish: %v", err)
		}
		conn.SetPeer(types.ClearinghouseID, chConn.LocalAddr())
		wcfg := cfg
		if *metricsAddr != "" {
			wcfg.Metrics = telemetry.NewMetrics()
		}
		if *traceFlag {
			wcfg.SpanTrace = true
			wcfg.SpanSample = *traceSample
		}
		w := core.NewWorker(jobID, types.WorkerID(idBase+i), prog, conn, wcfg, clock.System)
		locals = append(locals, w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run()
		}()
	}

	fmt.Printf("phish: running %s (clearinghouse %s, %d local workers)\n",
		app.Name, chConn.LocalAddr(), *workers)
	start := time.Now()
	v, err := ch.WaitResult(*timeout)
	if err != nil {
		log.Fatalf("phish: %v", err)
	}
	wg.Wait()
	fmt.Printf("phish: done in %v\n", time.Since(start).Round(time.Millisecond))
	if o := ch.Output(); o != "" {
		fmt.Print(o)
	}
	if *stats {
		for _, w := range locals {
			fmt.Printf("  worker %d: %v\n", w.ID(), w.Stats())
		}
	}
	if *traceFlag {
		printTrace(ch, *workers, *traceOut)
	}

	if img, ok := v.([]byte); ok && *out != "" {
		w, h := rayDims(rootArgs)
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("phish: %v", err)
		}
		defer f.Close()
		if err := ray.WritePPM(f, img, w, h); err != nil {
			log.Fatalf("phish: %v", err)
		}
		fmt.Printf("phish: wrote %s (%dx%d)\n", *out, w, h)
		return
	}
	fmt.Println(app.Render(v))
}

// printTrace drains the clearinghouse span collector, reconstructs the
// task DAG, and prints the cluster timeline with its T1/T∞ accounting;
// with outFile it also exports Chrome trace-event JSON.
func printTrace(ch *clearinghouse.Clearinghouse, workers int, outFile string) {
	// Final span batches ride each worker's unregister drain over
	// unreliable UDP; wait for the collector count to turn nonzero and go
	// quiet (bounded, in case every report datagram was lost).
	deadline := time.Now().Add(time.Second)
	last, _ := ch.SpanStats()
	for stable := 0; time.Now().Before(deadline) && stable < 3; {
		time.Sleep(5 * time.Millisecond)
		n, _ := ch.SpanStats()
		if n == last && n > 0 {
			stable++
		} else {
			stable, last = 0, n
		}
	}
	spans := ch.Spans()
	if len(spans) == 0 {
		fmt.Println("phish: trace: no spans collected")
		return
	}
	d := trace.BuildDAG(spans)
	collected, dropped := ch.SpanStats()
	fmt.Printf("phish: trace: %d spans collected, %d dropped\n", collected, dropped)
	fmt.Print(d.RenderTimeline())
	// P is the number of workers that actually recorded spans: remote
	// workers joining via jobmanagers aren't in the -workers count.
	p := len(d.Workers)
	if p < workers {
		p = workers
	}
	fmt.Printf("greedy bound for P=%d: T1/P + Tinf = %v (measured makespan %v)\n",
		p, d.Bound(p).Round(time.Microsecond), d.Makespan.Round(time.Microsecond))
	if outFile != "" {
		js, err := d.ChromeTrace()
		if err != nil {
			log.Printf("phish: trace export: %v", err)
			return
		}
		if err := os.WriteFile(outFile, js, 0o644); err != nil {
			log.Printf("phish: trace export: %v", err)
			return
		}
		fmt.Printf("phish: wrote %s (open in chrome://tracing or ui.perfetto.dev)\n", outFile)
	}
}

// runTop is phishtop: poll the clearinghouse's /cluster.json and redraw a
// live table of the whole job — workers, deque depths, steal and redo
// counts, and latency quantiles. Ctrl-C exits.
func runTop(url string, every time.Duration) {
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + "/cluster.json"
	// Rates are computed between distinct report generations, not raw
	// polls: totals only move when piggybacked reports arrive (heartbeat
	// cadence), so adjacent polls within one heartbeat window would
	// alias to 0/s. cur is the newest distinct snapshot, prev the one
	// before it.
	var prev, cur *telemetry.ClusterSnapshot
	var prevAt, curAt time.Time
	for {
		cs, err := fetchCluster(url)
		now := time.Now()
		fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		if err != nil {
			fmt.Printf("phishtop: %v (retrying every %v)\n", err, every)
		} else {
			if cur == nil || cs.Totals != cur.Totals {
				prev, prevAt = cur, curAt
				cur, curAt = cs, now
			}
			var dt time.Duration
			if prev != nil {
				dt = curAt.Sub(prevAt)
			}
			fmt.Print(telemetry.RenderTop(*cs, prev, dt))
		}
		time.Sleep(every)
	}
}

func fetchCluster(url string) (*telemetry.ClusterSnapshot, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var cs telemetry.ClusterSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		return nil, fmt.Errorf("decode %s: %v", url, err)
	}
	return &cs, nil
}

// rayDims extracts width/height from ray root args (scene, w, h, ...).
func rayDims(args []types.Value) (int, int) {
	if len(args) >= 3 {
		w, _ := args[1].(int64)
		h, _ := args[2].(int64)
		return int(w), int(h)
	}
	return 0, 0
}
