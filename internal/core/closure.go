package core

import (
	"sync"
	"time"

	"phish/internal/types"
	"phish/internal/wire"
)

// Closure is one task instance: a function name, argument slots, a join
// counter of still-missing arguments, and the continuation its result
// feeds. A closure is *ready* when Missing == 0; ready closures live in
// the worker's deque, waiting ones in its waiting table.
type Closure struct {
	ID      types.TaskID
	Fn      string
	Args    []types.Value
	Missing int32
	Cont    types.Continuation
	// NoSteal pins the closure to its worker (set on the root task).
	NoSteal bool
	// Ckpt is the task's latest checkpoint blob (nil unless the body
	// yielded one). It travels with the closure on steal, migration, and
	// redo; the body reads it back through Ctx.Checkpoint.
	Ckpt []byte
	// CkptSeq orders blobs for the same task: higher wins.
	CkptSeq uint64
	// TC is the task's trace context (parent span and sampling flags),
	// inherited from the spawning task and carried across steals,
	// migrations, and redos.
	TC wire.TraceCtx
	// preempted marks a closure vacated at a Yield on this worker and
	// requeued locally; its next execute is a continuation of the same
	// attempt, not a fresh execution, so the counters don't recount it.
	// Local-only: it does not travel the wire.
	preempted bool
	// execNS accumulates this worker's execution time across the attempt's
	// slices (a checkpointing body yields between slices), and freshLocal
	// records that the attempt started from scratch here — together they
	// let completion report the Fn's full local cost to the speculation
	// track even for bodies that checkpoint mid-run. Local-only.
	execNS     int64
	freshLocal bool
}

// ready reports whether all argument slots are filled.
func (c *Closure) ready() bool { return c.Missing == 0 }

// closurePool recycles Closure structs and their Args backing arrays. The
// spawn→synch→execute cycle allocates one closure per task — by far the
// scheduler's hottest allocation — so executed, stolen-and-shipped, and
// purged closures go back to the pool instead of the garbage collector.
var closurePool = sync.Pool{New: func() any { return new(Closure) }}

// newClosure returns a zeroed closure from the pool. Its Args slice keeps
// whatever capacity it had in its previous life.
func newClosure() *Closure {
	return closurePool.Get().(*Closure)
}

// setArgs fills the closure's argument slots with a copy of args, reusing
// the existing backing array when it is large enough.
func (c *Closure) setArgs(args []types.Value) {
	c.Args = append(c.Args[:0], args...)
}

// growArgs sizes the closure for n empty (nil) argument slots. The nil
// fill matters: fillSlot uses a non-nil slot to detect duplicate
// deliveries, so recycled capacity must come back clean.
func (c *Closure) growArgs(n int) {
	if cap(c.Args) < n {
		c.Args = make([]types.Value, n)
		return
	}
	c.Args = c.Args[:n]
	for i := range c.Args {
		c.Args[i] = nil
	}
}

// free returns the closure to the pool. The caller must be the closure's
// only remaining referent. Argument slots are nilled so pooled closures
// don't pin application data against the collector.
func (c *Closure) free() {
	args := c.Args[:cap(c.Args)]
	for i := range args {
		args[i] = nil
	}
	*c = Closure{Args: args[:0]}
	closurePool.Put(c)
}

// setCkpt installs a newer checkpoint blob, copying it so the closure
// never aliases application memory.
func (c *Closure) setCkpt(blob []byte, seq uint64) {
	c.Ckpt = append(c.Ckpt[:0], blob...)
	c.CkptSeq = seq
}

// toWire converts for transmission (steal, migration, redo copies).
func (c *Closure) toWire() wire.Closure {
	args := make([]types.Value, len(c.Args))
	copy(args, c.Args)
	wc := wire.Closure{
		ID:      c.ID,
		Fn:      c.Fn,
		Args:    args,
		Missing: c.Missing,
		Cont:    c.Cont,
		NoSteal: c.NoSteal,
		CkptSeq: c.CkptSeq,
		TC:      c.TC,
	}
	if c.Ckpt != nil {
		wc.Ckpt = append([]byte(nil), c.Ckpt...)
	}
	return wc
}

// closureFromView adopts a zero-copy closure view into a pooled closure,
// copying every field out of the arena-backed frame: after this the
// closure owns its data and the view can be freed. Args decode straight
// onto the pooled closure's recycled backing array.
func closureFromView(v wire.ClosureView) (*Closure, error) {
	c := newClosure()
	c.ID = v.ID()
	c.Fn = v.Fn()
	args, err := v.AppendArgs(c.Args[:0])
	c.Args = args
	if err != nil {
		c.free()
		return nil, err
	}
	c.Missing = v.Missing()
	c.Cont = v.Cont()
	c.NoSteal = v.NoSteal()
	c.TC = v.TC()
	if blob, ok := v.Ckpt(); ok {
		c.setCkpt(blob, v.CkptSeq())
	} else {
		c.CkptSeq = v.CkptSeq()
	}
	return c, nil
}

// closureFromWire converts an inbound wire closure into a pooled closure.
func closureFromWire(w wire.Closure) *Closure {
	c := newClosure()
	c.ID = w.ID
	c.Fn = w.Fn
	c.setArgs(w.Args)
	c.Missing = w.Missing
	c.Cont = w.Cont
	c.NoSteal = w.NoSteal
	c.TC = w.TC
	if w.Ckpt != nil {
		c.setCkpt(w.Ckpt, w.CkptSeq)
	} else {
		c.CkptSeq = w.CkptSeq
	}
	return c
}

// stealRecord is the redundant state a victim keeps when it hands a task
// to a thief: the task's real continuation and a copy of the task itself.
// The thief's eventual result is addressed to the record (the victim
// rewrote the stolen closure's continuation), so the victim can forward it
// to the real continuation and discard the record — or, if the thief
// crashes first, re-enqueue the copy locally and redo the work. Because
// the record is consumed by the first result that reaches it, a result
// that arrives twice (in-flight original plus redo) is delivered exactly
// once.
type stealRecord struct {
	id       types.TaskID
	realCont types.Continuation
	task     wire.Closure // stolen copy; its Cont already targets the record
	thief    types.WorkerID
	// confirmed is set when the thief acknowledges receipt; an
	// unconfirmed record whose thief departs means the reply was lost in
	// flight, so the task is redone locally.
	confirmed bool
	// grantedAt anchors the speculation rule: a confirmed record whose
	// thief is suspect and whose age exceeds K× the Fn's p99 local
	// execution time is redone without waiting for a crash declaration.
	// The age (not the wall time) rides the wire as Record.OutstandingNS,
	// so a migrated-in record keeps its clock running at adoption.
	grantedAt time.Time
}

func (r *stealRecord) toWire() wire.Record {
	var outstanding int64
	if !r.grantedAt.IsZero() {
		outstanding = int64(time.Since(r.grantedAt))
	}
	return wire.Record{ID: r.id, RealCont: r.realCont, Task: r.task, Thief: r.thief, Confirmed: r.confirmed,
		OutstandingNS: outstanding}
}

func recordFromWire(w wire.Record) *stealRecord {
	return &stealRecord{id: w.ID, realCont: w.RealCont, task: w.Task, thief: w.Thief, confirmed: w.Confirmed,
		grantedAt: time.Now().Add(-time.Duration(w.OutstandingNS))}
}
