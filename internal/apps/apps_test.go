package apps

import (
	"strings"
	"testing"

	"phish"
)

func TestCatalogComplete(t *testing.T) {
	want := []string{"fib", "knary", "matmul", "nqueens", "pfold", "ray"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("catalog = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("catalog = %v, want %v", got, want)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("seti"); err == nil {
		t.Error("unknown app did not error")
	}
}

func TestParseArgsDefaults(t *testing.T) {
	for _, name := range Names() {
		app, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		args, err := app.ParseArgs(nil)
		if err != nil {
			t.Errorf("%s: default args: %v", name, err)
		}
		if len(args) == 0 {
			t.Errorf("%s: empty root args", name)
		}
	}
}

func TestParseArgsRejectsGarbage(t *testing.T) {
	cases := map[string][]string{
		"fib":     {"abc"},
		"nqueens": {"x"},
		"pfold":   {"10", "zz"},
		"ray":     {"no-such-scene"},
		"knary":   {"3", "2", "NaN"},
		"matmul":  {"99"},
	}
	for name, args := range cases {
		app, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := app.ParseArgs(args); err == nil {
			t.Errorf("%s: accepted %v", name, args)
		}
	}
}

func TestEndToEndThroughCatalog(t *testing.T) {
	app, err := Lookup("fib")
	if err != nil {
		t.Fatal(err)
	}
	args, err := app.ParseArgs([]string{"14"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := phish.RunLocal(app.Program(), app.Root, args, phish.LocalOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out := app.Render(res.Value); !strings.Contains(out, "377") {
		t.Errorf("render = %q", out)
	}
}

func TestUsageMentionsEveryApp(t *testing.T) {
	u := Usage()
	for _, name := range Names() {
		if !strings.Contains(u, name) {
			t.Errorf("usage missing %s:\n%s", name, u)
		}
	}
}

func TestRegisterAllIdempotent(t *testing.T) {
	RegisterAll()
	RegisterAll() // programs are singletons; double registration must not panic
}
