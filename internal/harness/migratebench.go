package harness

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"phish/internal/clearinghouse"
	"phish/internal/cluster"
	"phish/internal/core"
	"phish/internal/idlesim"
	"phish/internal/jobmanager"
	"phish/internal/model"
	"phish/internal/types"
)

// MigrateBenchConfig sizes the migration chaos soak: a checkpointable
// workload run three times — clean, checkpointing under churn, and
// redo-from-scratch under the same seeded churn — to measure how much work
// checkpoints save.
type MigrateBenchConfig struct {
	// Chunks is the fan-out; Steps the number of ~1 ms work units per
	// chunk. Ideal work is Chunks*Steps steps.
	Chunks int64
	Steps  int64
	// Stations is the number of always-idle workstations.
	Stations int
	// Seed drives the churn gremlin (what to disrupt, and when).
	Seed int64
	// MaxCrashes caps outright worker crashes per churn run (crashes are
	// where redo-from-scratch hurts most; a cap keeps runtimes bounded).
	MaxCrashes int
	// Timeout bounds each run.
	Timeout time.Duration
}

// DefaultMigrateBenchConfig finishes in well under a minute on a laptop.
func DefaultMigrateBenchConfig() MigrateBenchConfig {
	return MigrateBenchConfig{
		Chunks:     8,
		Steps:      150,
		Stations:   4,
		Seed:       20260808,
		MaxCrashes: 4,
		Timeout:    3 * time.Minute,
	}
}

// MigrateRunResult is one run of the soak workload.
type MigrateRunResult struct {
	Name      string  `json:"name"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Steps is the number of work units actually executed; Ideal the
	// fault-free minimum. WastedRatio is (Steps-Ideal)/Ideal.
	Steps          int64   `json:"steps"`
	IdealSteps     int64   `json:"ideal_steps"`
	WastedRatio    float64 `json:"wasted_ratio"`
	TasksMigrated  int64   `json:"tasks_migrated"`
	TasksPreempted int64   `json:"tasks_preempted"`
	CkptSaves      int64   `json:"ckpt_saves"`
	CkptResumes    int64   `json:"ckpt_resumes"`
	Drains         int     `json:"drains"`
	Reclaims       int     `json:"reclaims"`
	Crashes        int     `json:"crashes"`
}

// MigrateSummary is the headline comparison: wasted work with and without
// checkpoints under identical seeded churn, and drain handoff latency.
type MigrateSummary struct {
	IdealSteps   int64   `json:"ideal_steps"`
	WastedCkpt   float64 `json:"wasted_ckpt"`
	WastedNoCkpt float64 `json:"wasted_nockpt"`
	// ReductionX is WastedNoCkpt/WastedCkpt (capped at 1000 when the
	// checkpointed run wasted essentially nothing).
	ReductionX float64 `json:"reduction_x"`
	// Drain handoff latency: DrainWorker call to worker Run-loop exit.
	DrainP50MS float64 `json:"drain_p50_ms"`
	DrainMaxMS float64 `json:"drain_max_ms"`
}

// MigrateBenchFile is the on-disk shape of BENCH_migrate.json.
type MigrateBenchFile struct {
	Runs    []MigrateRunResult `json:"runs"`
	Summary MigrateSummary     `json:"summary"`
}

// migrateBenchProg is the same fan/chunks/sum shape the cluster tests use:
// k chunk tasks of n slow steps each, checkpointing (i, partial sum) after
// every step, joined by one sum successor. steps counts executed work units
// so redone work is visible.
func migrateBenchProg(steps *atomic.Int64) *core.Program {
	p := core.NewProgram("migratebench")
	p.Register("chunks", func(c model.Ctx) {
		n := c.Int(0)
		var i, sum int64
		if ck := c.Checkpoint(); len(ck) == 16 {
			i = int64(binary.BigEndian.Uint64(ck))
			sum = int64(binary.BigEndian.Uint64(ck[8:]))
		}
		for ; i < n; i++ {
			sum += i
			steps.Add(1)
			time.Sleep(time.Millisecond)
			var blob [16]byte
			binary.BigEndian.PutUint64(blob[:8], uint64(i+1))
			binary.BigEndian.PutUint64(blob[8:], uint64(sum))
			if c.Yield(blob[:]) {
				return
			}
		}
		c.Return(sum)
	})
	p.Register("fan", func(c model.Ctx) {
		k, n := c.Int(0), c.Int(1)
		s := c.Successor("sum", int(k))
		for i := int64(0); i < k; i++ {
			c.Spawn("chunks", s.Cont(int(i)), n)
		}
	})
	p.Register("sum", func(c model.Ctx) {
		var total int64
		for i := 0; i < c.NArgs(); i++ {
			total += c.Int(i)
		}
		c.Return(total)
	})
	return p
}

// MigrateBench runs the three-way soak and computes the summary.
func MigrateBench(cfg MigrateBenchConfig) (*MigrateBenchFile, error) {
	if cfg.Chunks <= 0 || cfg.Steps <= 0 {
		d := DefaultMigrateBenchConfig()
		cfg.Chunks, cfg.Steps = d.Chunks, d.Steps
	}
	if cfg.Stations <= 0 {
		cfg.Stations = 4
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 3 * time.Minute
	}

	clean, _, err := migrateRunOne("clean", cfg, false, false)
	if err != nil {
		return nil, err
	}
	ck, drainLat, err := migrateRunOne("ckpt", cfg, true, true)
	if err != nil {
		return nil, err
	}
	nock, _, err := migrateRunOne("nockpt", cfg, true, false)
	if err != nil {
		return nil, err
	}

	sum := MigrateSummary{
		IdealSteps:   cfg.Chunks * cfg.Steps,
		WastedCkpt:   ck.WastedRatio,
		WastedNoCkpt: nock.WastedRatio,
	}
	switch {
	case sum.WastedCkpt > 0:
		sum.ReductionX = sum.WastedNoCkpt / sum.WastedCkpt
		if sum.ReductionX > 1000 {
			sum.ReductionX = 1000
		}
	case sum.WastedNoCkpt > 0:
		sum.ReductionX = 1000
	default:
		sum.ReductionX = 1
	}
	if len(drainLat) > 0 {
		sort.Slice(drainLat, func(i, j int) bool { return drainLat[i] < drainLat[j] })
		sum.DrainP50MS = float64(drainLat[len(drainLat)/2].Nanoseconds()) / 1e6
		sum.DrainMaxMS = float64(drainLat[len(drainLat)-1].Nanoseconds()) / 1e6
	}
	return &MigrateBenchFile{Runs: []MigrateRunResult{clean, ck, nock}, Summary: sum}, nil
}

// migrateRunOne runs the workload once. churn turns the seeded gremlin on;
// ckpt selects checkpointing (false = the redo-from-scratch baseline).
// The returned latencies time DrainWorker call → worker Run-loop exit.
func migrateRunOne(name string, cfg MigrateBenchConfig, churn, ckpt bool) (MigrateRunResult, []time.Duration, error) {
	var steps atomic.Int64
	prog := migrateBenchProg(&steps)

	w := core.DefaultConfig()
	w.MaxStealFailures = 25
	w.StealTimeout = 20 * time.Millisecond
	w.HeartbeatEvery = 10 * time.Millisecond
	w.CkptEvery = 10 * time.Millisecond
	w.NoCkpt = !ckpt
	c := cluster.New(cluster.Options{
		Worker: w,
		CH: clearinghouse.Config{
			UpdateEvery:      25 * time.Millisecond,
			HeartbeatTimeout: 250 * time.Millisecond,
		},
		JM: jobmanager.Config{
			BusyPoll:  20 * time.Millisecond,
			IdleRetry: 15 * time.Millisecond,
			WorkPoll:  10 * time.Millisecond,
		},
	})
	defer c.Close()
	for i := 0; i < cfg.Stations; i++ {
		c.AddWorkstation(idlesim.Always{})
	}

	t0 := time.Now()
	j := c.Submit(prog, "fan", []types.Value{cfg.Chunks, cfg.Steps})

	var (
		latMu   sync.Mutex
		lat     []time.Duration
		waiters sync.WaitGroup
	)
	drains, reclaims, crashes := 0, 0, 0
	stop := make(chan struct{})
	gremlinDone := make(chan struct{})
	if churn {
		rng := rand.New(rand.NewSource(cfg.Seed))
		go func() {
			defer close(gremlinDone)
			tick := 0
			for {
				select {
				case <-stop:
					return
				case <-time.After(time.Duration(60+rng.Intn(80)) * time.Millisecond):
				}
				tick++
				live := j.LiveWorkers()
				if len(live) < 2 {
					continue
				}
				id := live[rng.Intn(len(live))]
				switch {
				case tick%3 == 0 && crashes < cfg.MaxCrashes && id != j.RootHost():
					// Crashing the root-lineage host forces a full root
					// respawn in both modes — inherent join-state loss, not
					// what this soak measures. In the paper's setting that
					// worker is the submitting user's own workstation.
					crashes++
					j.Crash(id)
				case rng.Intn(2) == 0:
					drains++
					done := j.WorkerDone(id)
					dt0 := time.Now()
					j.DrainWorker(id)
					if done != nil {
						waiters.Add(1)
						go func() {
							defer waiters.Done()
							<-done
							latMu.Lock()
							lat = append(lat, time.Since(dt0))
							latMu.Unlock()
						}()
					}
				default:
					reclaims++
					j.ReclaimWorker(id)
				}
			}
		}()
	} else {
		close(gremlinDone)
	}

	v, err := j.Wait(cfg.Timeout)
	elapsed := time.Since(t0)
	close(stop)
	<-gremlinDone
	waiters.Wait()
	if err != nil {
		return MigrateRunResult{}, nil, fmt.Errorf("harness: migrate %s: %w", name, err)
	}
	want := cfg.Chunks * (cfg.Steps * (cfg.Steps - 1) / 2)
	if got := v.(int64); got != want {
		return MigrateRunResult{}, nil, fmt.Errorf("harness: migrate %s: result %d, want %d", name, got, want)
	}

	tot := j.Totals()
	ideal := cfg.Chunks * cfg.Steps
	r := MigrateRunResult{
		Name:           name,
		ElapsedMS:      float64(elapsed.Nanoseconds()) / 1e6,
		Steps:          steps.Load(),
		IdealSteps:     ideal,
		WastedRatio:    float64(steps.Load()-ideal) / float64(ideal),
		TasksMigrated:  tot.TasksMigrated,
		TasksPreempted: tot.TasksPreempted,
		CkptSaves:      tot.CkptSaves,
		CkptResumes:    tot.CkptResumes,
		Drains:         drains,
		Reclaims:       reclaims,
		Crashes:        crashes,
	}
	if r.WastedRatio < 0 {
		r.WastedRatio = 0
	}
	return r, lat, nil
}

// PrintMigrateBench renders the soak as a table plus the headline summary.
func PrintMigrateBench(w io.Writer, f *MigrateBenchFile) {
	fmt.Fprintf(w, "task migration — wasted work under seeded churn (ideal %d steps)\n", f.Summary.IdealSteps)
	fmt.Fprintf(w, "%-8s %10s %8s %8s %10s %10s %8s %8s %22s\n",
		"run", "elapsed", "steps", "wasted", "migrated", "preempted", "saves", "resumes", "drain/reclaim/crash")
	for _, r := range f.Runs {
		fmt.Fprintf(w, "%-8s %9.0fms %8d %7.1f%% %10d %10d %8d %8d %22s\n",
			r.Name, r.ElapsedMS, r.Steps, 100*r.WastedRatio,
			r.TasksMigrated, r.TasksPreempted, r.CkptSaves, r.CkptResumes,
			fmt.Sprintf("%d/%d/%d", r.Drains, r.Reclaims, r.Crashes))
	}
	fmt.Fprintf(w, "wasted work: %.1f%% with checkpoints vs %.1f%% redo-from-scratch (%.1fx reduction)\n",
		100*f.Summary.WastedCkpt, 100*f.Summary.WastedNoCkpt, f.Summary.ReductionX)
	if f.Summary.DrainMaxMS > 0 {
		fmt.Fprintf(w, "drain handoff: p50 %.1f ms, max %.1f ms\n",
			f.Summary.DrainP50MS, f.Summary.DrainMaxMS)
	}
}

// ReadMigrateBenchJSON loads a recorded baseline. A missing file returns
// (nil, nil) so callers can distinguish "no baseline yet".
func ReadMigrateBenchJSON(path string) (*MigrateBenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var f MigrateBenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("harness: %s: %w", path, err)
	}
	return &f, nil
}

// WriteMigrateBenchJSON records the soak as the new baseline.
func WriteMigrateBenchJSON(path string, f *MigrateBenchFile) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CheckMigrate gates CI: the fresh soak must migrate tasks, keep the ≥2x
// wasted-work reduction, and not regress the checkpointed wasted-work ratio
// above the recorded baseline (with absolute slack for timing noise; nil
// baseline skips that comparison).
func CheckMigrate(baseline, fresh *MigrateBenchFile) error {
	var ck MigrateRunResult
	for _, r := range fresh.Runs {
		if r.Name == "ckpt" {
			ck = r
		}
	}
	if ck.TasksMigrated == 0 {
		return fmt.Errorf("harness: migration soak moved zero tasks (phish_tasks_migrated_total stayed 0)")
	}
	if fresh.Summary.ReductionX < 2 {
		return fmt.Errorf("harness: wasted-work reduction %.2fx < 2x (ckpt %.1f%%, redo %.1f%%)",
			fresh.Summary.ReductionX, 100*fresh.Summary.WastedCkpt, 100*fresh.Summary.WastedNoCkpt)
	}
	if baseline != nil {
		const slack = 0.10 // absolute wasted-ratio slack for timing noise
		if fresh.Summary.WastedCkpt > baseline.Summary.WastedCkpt+slack {
			return fmt.Errorf("harness: checkpointed wasted work %.1f%% regressed above baseline %.1f%% (+%.0f%% slack)",
				100*fresh.Summary.WastedCkpt, 100*baseline.Summary.WastedCkpt, 100*slack)
		}
	}
	return nil
}
