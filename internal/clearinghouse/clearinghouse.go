// Package clearinghouse implements the per-job Clearinghouse of the paper
// (Section 3, Figure 3): an application-independent process that keeps
// track of the workers participating in one parallel job, pushes periodic
// membership updates, funnels application I/O so "a user need only watch
// the Clearinghouse to see job output", arbitrates worker retirement when
// parallelism shrinks, and holds the redundant state needed to restart a
// job whose root lineage is lost to a crash.
//
// Worker-keyed state (membership, heartbeat liveness, per-worker stat
// telemetry) lives in a sharded, lock-striped store (see shardstore) so
// the hot path — heartbeats and piggybacked StatReports from tens of
// thousands of workers — never contends on the job-level mutex, and a
// drained burst of datagrams folds into each shard with one lock
// acquisition per shard rather than one per message. Job-level state
// (result, output, root location, checkpoint bookkeeping) stays behind
// c.mu; membership mutations all happen on the Run goroutine, so the two
// layers compose without writer-writer races. Lock order is always
// c.mu → shard, never the reverse.
package clearinghouse

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"phish/internal/clearinghouse/shardstore"
	"phish/internal/clock"
	"phish/internal/phishnet"
	"phish/internal/stats"
	"phish/internal/telemetry"
	"phish/internal/trace"
	"phish/internal/types"
	"phish/internal/wire"
)

// Config tunes a clearinghouse.
type Config struct {
	// UpdateEvery is the interval between unsolicited membership pushes
	// (the paper's workers obtain an update "once every 2 minutes";
	// membership changes are pushed immediately regardless).
	UpdateEvery time.Duration
	// HeartbeatTimeout declares a worker crashed when nothing is heard
	// from it for this long. Zero disables heartbeat-based detection
	// (explicit crash notifications still work). A worker that has never
	// sent a single heartbeat is exempt from this timeout — a participant
	// configured with heartbeats off must not be declared dead by a
	// clearinghouse with them on — but see RegistrationGrace. With
	// PhiThreshold > 0 this fixed timeout only governs members whose
	// inter-arrival history is still cold.
	HeartbeatTimeout time.Duration
	// PhiThreshold enables the phi-accrual adaptive failure detector:
	// a heartbeat-known worker with a warm inter-arrival history is
	// declared crashed when its suspicion score crosses this value
	// (phi 1 ≈ 90% confidence, 2 ≈ 99%, 8 ≈ 1-1e-8). Zero or negative
	// disables phi and keeps the classic fixed HeartbeatTimeout for
	// everyone. DefaultConfig enables it at 8.
	PhiThreshold float64
	// PhiSuspect is the graded-health band: a worker whose phi sits in
	// [PhiSuspect, PhiThreshold) — silent for longer than its own history
	// predicts, but not yet provably gone — is marked suspect and
	// broadcast to thieves for deprioritization. Zero means
	// PhiThreshold/2. Suspicion grading as a whole is active only while
	// PhiThreshold > 0.
	PhiSuspect float64
	// PhiSlack is the acceptable-pause allowance subtracted from a
	// worker's elapsed silence before phi scoring, absorbing GC and
	// scheduler stalls that are much larger than network jitter. Zero
	// means HeartbeatTimeout (detection is then never more trigger-happy
	// than the classic fixed timeout); negative means no allowance.
	PhiSlack time.Duration
	// RegistrationGrace bounds how long a registered worker may go
	// without its first heartbeat before it is declared dead anyway (the
	// old behavior exempted it forever, leaking its closures). Zero means
	// 4× HeartbeatTimeout; negative restores the permanent exemption.
	RegistrationGrace time.Duration
	// SuspectDrainAfter orders a planned drain (the PR-5 migration path)
	// for a worker that has stayed suspect continuously for this long:
	// its deque and checkpoints move to a healthy peer in milliseconds
	// instead of being redone after an eventual crash declaration. Zero
	// disables drain orders.
	SuspectDrainAfter time.Duration
	// Shards is the lock-stripe count for the worker-keyed state store.
	// Purely a performance knob: any value produces identical behavior,
	// epochs, and rollups (shard count is not persisted and recovery may
	// use a different value than the journal's writer). Zero or one means
	// a single stripe — the pre-sharding flat layout.
	Shards int
	// ReportTTL evicts stat-telemetry rows of departed or never-registered
	// workers once their last report is older than this (swept alongside
	// heartbeat checking, so it needs HeartbeatTimeout > 0 to run). Live
	// members are never evicted. Zero keeps rows forever.
	ReportTTL time.Duration
	// Journal, when non-nil, receives every control-plane state change so
	// a restarted clearinghouse can resume the job (see journal.go).
	Journal *Journal
	// Clock drives the periodic behavior; nil means the system clock.
	Clock clock.Clock
	// Trace, when non-nil and enabled, records control-plane events
	// (journal replay on recovery).
	Trace *trace.Buffer
	// Metrics, when non-nil, records the journal append+fsync latency
	// histogram and is folded into the cluster rollup.
	Metrics *telemetry.Metrics
	// SpanCap bounds retained trace spans per worker in the span
	// collector (zero means the generous default); past it spans are
	// dropped and counted. Collection itself needs no knob — workers
	// that do not trace ship no spans.
	SpanCap int
}

// DefaultConfig mirrors the paper's coarse communication granularity,
// scaled from minutes to seconds so laptop runs exercise the same paths.
// Heartbeat crash detection is on by default at 3× the update interval
// (the paper's workers check in every update period; three missed periods
// means the machine, not the network, is gone).
func DefaultConfig() Config {
	return Config{
		UpdateEvery:      2 * time.Second,
		HeartbeatTimeout: 6 * time.Second,
		PhiThreshold:     8,
		Shards:           1,
		ReportTTL:        5 * time.Minute,
		Clock:            clock.System,
	}
}

// phiSlack resolves the acceptable-pause allowance (see Config.PhiSlack).
func (c *Config) phiSlack() time.Duration {
	switch {
	case c.PhiSlack > 0:
		return c.PhiSlack
	case c.PhiSlack < 0:
		return 0
	default:
		return c.HeartbeatTimeout
	}
}

// phiSuspect resolves the suspect band's lower bound.
func (c *Config) phiSuspect() float64 {
	if c.PhiSuspect > 0 {
		return c.PhiSuspect
	}
	return c.PhiThreshold / 2
}

// registrationGrace resolves the never-heartbeated deadline; 0 means the
// grace sweep is disabled.
func (c *Config) registrationGrace() time.Duration {
	switch {
	case c.RegistrationGrace > 0:
		return c.RegistrationGrace
	case c.RegistrationGrace < 0:
		return 0
	default:
		return 4 * c.HeartbeatTimeout
	}
}

// hotBatchMax bounds how many drained hot messages accumulate before a
// forced fold; it caps both batch memory and the staleness window of a
// heartbeat sitting unfolded in the batch.
const hotBatchMax = 256

// Clearinghouse tracks one job. Create with New, then Run (usually in a
// goroutine); WaitResult blocks until the job's root result arrives.
type Clearinghouse struct {
	job  types.JobID
	spec wire.JobSpec
	conn phishnet.Conn
	cfg  Config
	clk  clock.Clock

	// store holds all worker-keyed state: membership rows, heartbeat
	// liveness, membership epoch, and per-worker StatReport telemetry.
	// Hot-path folds bypass c.mu entirely; mutations happen only on the
	// Run goroutine (plus construction-time recovery).
	store *shardstore.Store
	// hot batches drained heartbeats/StatReports between folds; owned by
	// the Run goroutine.
	hot shardstore.HotBatch
	// spans collects piggybacked trace spans and aligns worker clocks
	// (see spans.go).
	spans *spanSink

	mu       sync.Mutex
	rootHost types.WorkerID
	armRoot  bool // spawn the root at the next registration
	done     bool
	result   types.Value
	output   strings.Builder
	ioLines  int64
	msgsSent atomic.Int64
	msgsRecv atomic.Int64
	synchs   atomic.Int64

	// Checkpoint coordination (see checkpoint.go).
	ckpt        *ckptState
	ckptSeq     uint64
	restore     []wire.SnapshotReply
	restoreRoot types.WorkerID

	// Crash-recovery journal (see journal.go); nil when not journaling.
	journal *Journal
	// lastCkptJournal paces per-worker checkpoint journaling (Run
	// goroutine only): blobs arrive on every StatReport but hit the disk
	// at most once per UpdateEvery per worker.
	lastCkptJournal map[types.WorkerID]time.Time

	// counters is the clearinghouse's own telemetry (journal records,
	// transport retransmits, false evictions).
	counters stats.Counters

	// health grades live workers (phi band, exec-rate and steal-RTT EWMA
	// tracks) into the suspect set; see health.go.
	health healthState
	// evicted remembers recently swept-dead workers (Run goroutine only):
	// a heartbeat arriving from one is a detector false positive, counted
	// once in counters.FalseEvictions. Entries expire on the sweep tick.
	evicted map[types.WorkerID]time.Time

	doneCh chan struct{}
	stopCh chan struct{}
	ranCh  chan struct{} // closed when Run exits
}

// New builds a clearinghouse for spec, speaking on conn (which must be
// attached as types.ClearinghouseID).
func New(spec wire.JobSpec, conn phishnet.Conn, cfg Config) *Clearinghouse {
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System
	}
	c := &Clearinghouse{
		job:             spec.ID,
		spec:            spec,
		conn:            conn,
		cfg:             cfg,
		clk:             clk,
		store:           shardstore.New(cfg.Shards),
		spans:           newSpanSink(cfg.SpanCap),
		rootHost:        types.NoWorker,
		armRoot:         true,
		journal:         cfg.Journal,
		lastCkptJournal: make(map[types.WorkerID]time.Time),
		evicted:         make(map[types.WorkerID]time.Time),
		doneCh:          make(chan struct{}),
		stopCh:          make(chan struct{}),
		ranCh:           make(chan struct{}),
	}
	c.store.SetPhiSlack(cfg.phiSlack())
	if c.journal != nil {
		c.journal.instrument(&c.counters, cfg.Metrics.WALAppend())
		c.journal.append(&journalRecord{Kind: jSpec, Spec: spec}, true)
	}
	return c
}

// Run services the job until Stop is called or the job completes and all
// workers have unregistered.
func (c *Clearinghouse) Run() {
	defer close(c.ranCh)
	var tick <-chan time.Time
	if c.cfg.UpdateEvery > 0 {
		tick = c.clk.After(c.cfg.UpdateEvery)
	}
	var hbTick <-chan time.Time
	if c.cfg.HeartbeatTimeout > 0 {
		hbTick = c.clk.After(c.cfg.HeartbeatTimeout / 2)
	}
	for {
		select {
		case <-c.stopCh:
			return
		case env, ok := <-c.conn.Recv():
			if !ok {
				return
			}
			c.ingest(env)
		case <-tick:
			c.broadcastUpdate()
			tick = c.clk.After(c.cfg.UpdateEvery)
		case <-hbTick:
			c.checkHeartbeats()
			hbTick = c.clk.After(c.cfg.HeartbeatTimeout / 2)
		}
	}
}

// ingest processes one received envelope, then opportunistically drains
// whatever else is already queued. Consecutive hot messages (heartbeats,
// piggybacked StatReports) accumulate into one batch and fold with a
// single lock acquisition per touched shard; any non-hot message flushes
// the pending batch first, so the store always reflects arrival order by
// the time a control message is handled. The drain is bounded: under
// sustained traffic an unbounded drain would never return to the Run
// select and the update/heartbeat ticks would starve — crash detection
// must keep running no matter how busy the inbox is.
func (c *Clearinghouse) ingest(env *wire.Envelope) {
	defer c.flushHot()
	for n := 0; ; n++ {
		if !c.foldHot(env) {
			c.flushHot()
			c.handle(env)
		}
		if n >= hotBatchMax {
			return
		}
		select {
		case next, ok := <-c.conn.Recv():
			if !ok {
				return
			}
			env = next
		default:
			return
		}
	}
}

// foldHot absorbs env into the pending hot batch if it is a self-reported
// heartbeat or stat report; anything else (including the vanishingly rare
// relayed report with From ≠ Worker) takes the ordinary handle path.
func (c *Clearinghouse) foldHot(env *wire.Envelope) bool {
	if v, ok := env.Payload.(*wire.View); ok {
		// Heartbeats — the dominant inbound message — fold straight off the
		// zero-copy view. Everything else (StatReports need their bulk
		// slices anyway, cold tags arrive as structs) materializes in place
		// and takes the switch below unchanged.
		if hb, ok := v.AsHeartbeat(); ok && hb.Worker() == env.From {
			c.msgsRecv.Add(1)
			c.noteBeatFrom(env.From)
			c.hot.Beats = append(c.hot.Beats, env.From)
			if ns := hb.SendNS(); ns != 0 {
				c.spans.noteHeartbeat(env.From, ns, time.Now().UnixNano())
			}
			env.Free()
			if c.hot.Len() >= hotBatchMax {
				c.flushHot()
			}
			return true
		}
		if err := env.Materialize(); err != nil {
			env.Free() // corrupt frame: consume and drop
			return true
		}
	}
	switch p := env.Payload.(type) {
	case wire.Heartbeat:
		if p.Worker != env.From {
			return false
		}
		c.msgsRecv.Add(1)
		c.noteBeatFrom(p.Worker)
		c.hot.Beats = append(c.hot.Beats, p.Worker)
		if p.SendNS != 0 {
			// Offset refinement uses wall clocks on both ends (span
			// timestamps are wall-clock), so this deliberately bypasses
			// the injectable c.clk.
			c.spans.noteHeartbeat(p.Worker, p.SendNS, time.Now().UnixNano())
		}
	case wire.StatReport:
		if p.Worker != env.From {
			return false
		}
		c.msgsRecv.Add(1)
		c.hot.Reports = append(c.hot.Reports, p)
		c.maybeJournalCkpts(&p)
		c.spans.fold(&p)
	default:
		return false
	}
	if c.hot.Len() >= hotBatchMax {
		c.flushHot()
	}
	return true
}

func (c *Clearinghouse) flushHot() {
	if c.hot.Len() == 0 {
		return
	}
	c.store.FoldHot(&c.hot, c.clk.Now())
	c.hot.Reset()
}

// Stop shuts the clearinghouse down.
func (c *Clearinghouse) Stop() {
	select {
	case <-c.stopCh:
	default:
		close(c.stopCh)
	}
	<-c.ranCh
}

// WaitResult blocks until the root result arrives or the timeout elapses.
func (c *Clearinghouse) WaitResult(timeout time.Duration) (types.Value, error) {
	var tc <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		tc = t.C
	}
	select {
	case <-c.doneCh:
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.result, nil
	case <-tc:
		return nil, fmt.Errorf("clearinghouse: job %d: no result after %v", c.job, timeout)
	}
}

// Done reports whether the root result has arrived.
func (c *Clearinghouse) Done() bool {
	select {
	case <-c.doneCh:
		return true
	default:
		return false
	}
}

// Output returns everything workers printed through the clearinghouse.
func (c *Clearinghouse) Output() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.output.String()
}

// LiveWorkers returns the ids of currently participating workers.
func (c *Clearinghouse) LiveWorkers() []types.WorkerID {
	return c.store.LiveIDs()
}

// RootHost returns the worker currently hosting the root task's lineage
// (types.NoWorker before the first registration or while a respawn is
// armed). Fault injectors use it to aim — or avoid — the one worker whose
// crash forces a full root redo.
func (c *Clearinghouse) RootHost() types.WorkerID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rootHost
}

// Messages returns (sent, received) message counts for Table 2 totals.
func (c *Clearinghouse) Messages() (sent, recv int64) {
	return c.msgsSent.Load(), c.msgsRecv.Load()
}

// handle processes one non-hot envelope. Job-level state is guarded by
// c.mu; store operations take shard locks underneath it (lock order
// c.mu → shard).
func (c *Clearinghouse) handle(env *wire.Envelope) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := env.Payload.(wire.PeerGone); ok {
		// Transport-synthesized, local-only: retransmits to that worker
		// were exhausted, so declare the crash now instead of waiting out
		// the heartbeat timeout.
		c.crashLocked(p.Worker)
		return
	}
	c.msgsRecv.Add(1)
	// Any traffic from a live member proves it is alive; heartbeats are
	// just the guaranteed minimum cadence.
	c.store.Touch(env.From, c.clk.Now())
	switch p := env.Payload.(type) {
	case wire.Register:
		c.onRegister(p)
	case wire.Unregister:
		c.onUnregister(p)
	case wire.Heartbeat:
		// Slow path (relayed, From ≠ Worker); the common case folds in
		// batches via foldHot without touching c.mu.
		c.noteBeatFrom(p.Worker)
		c.store.Heartbeat(p.Worker, c.clk.Now())
		if p.SendNS != 0 {
			c.spans.noteHeartbeat(p.Worker, p.SendNS, time.Now().UnixNano())
		}
	case wire.StatReport:
		// Latest-wins per worker by cumulative progress: reports carry
		// cumulative values, so duplicates and reordering (within one
		// incarnation) fold idempotently and stale arrivals lose.
		c.store.FoldReport(p, c.clk.Now())
		c.maybeJournalCkpts(&p)
		c.spans.fold(&p)
	case wire.Arg:
		c.onArg(p)
	case wire.IO:
		c.ioLines++
		c.output.WriteString(p.Text)
		if !strings.HasSuffix(p.Text, "\n") {
			c.output.WriteByte('\n')
		}
		if c.journal != nil {
			text := p.Text
			if !strings.HasSuffix(text, "\n") {
				text += "\n"
			}
			c.journal.append(&journalRecord{Kind: jIO, Text: text}, false)
		}
	case wire.StayRequest:
		c.onStayRequest(p)
	case wire.DrainRequest:
		c.onDrainRequest(p)
	case wire.PauseAck:
		if c.ckpt != nil && p.Seq == c.ckpt.seq && c.ckpt.workers[p.Worker] {
			c.ckpt.acks[p.Worker] = p
		}
	case wire.SnapshotReply:
		if c.ckpt != nil && p.Seq == c.ckpt.seq && c.ckpt.workers[p.Worker] {
			c.ckpt.snaps[p.Worker] = p
		}
	default:
		// Workers talk to each other directly; anything else is stray.
	}
}

func (c *Clearinghouse) onRegister(p wire.Register) {
	if c.ckpt != nil && !c.store.Contains(p.Worker) {
		c.ckpt.aborted = true // a joiner mid-checkpoint invalidates the matrix
	}
	// An id registering while not live is a new incarnation — a restarted
	// worker or a checkpoint restore — whose span-batch numbering restarts
	// from 1, so its collector cursor must not carry over. A live id
	// re-registering is just a Register retry and keeps its cursor (its
	// recorder never restarted).
	if !c.store.IsLive(p.Worker) {
		c.spans.resetWorker(p.Worker)
	}
	// Worker ids are incarnation-unique (the JobManager mints a fresh one
	// per start), so a departed id re-registering is a protocol violation;
	// the store keeps the tombstone and we just answer. A duplicate
	// Register retry refreshes liveness.
	c.store.Register(p.Worker, wire.MemberInfo{
		Worker: p.Worker, Addr: p.Addr, HostedBy: p.Worker, Site: p.Site,
	}, c.clk.Now())
	c.conn.SetPeer(p.Worker, p.Addr)
	// RecvNS lets a tracing worker estimate its clock offset from the
	// registration round trip; wall clock on purpose (see foldHot).
	c.send(p.Worker, wire.RegisterReply{Assigned: p.Worker, View: c.view(),
		RecvNS: time.Now().UnixNano()})
	if c.done {
		// The job finished while this worker was still joining (easy on a
		// fast job: the shutdown broadcast predates its membership). Tell
		// it directly or it will thieve forever.
		c.send(p.Worker, wire.Shutdown{Reason: "job complete"})
	}
	if c.armRoot && !c.done {
		c.armRoot = false
		c.rootHost = p.Worker
		c.send(p.Worker, wire.SpawnRoot{Fn: c.spec.RootFn, Args: c.spec.RootArgs})
	}
	// Restoring from a checkpoint: hand the new worker a departed
	// participant's bundle as an ordinary migration, and tombstone the
	// old id so everything routes to the adopter. Bundle ids must not
	// collide with live members (a registrant may reuse an old id, in
	// which case it adopts its own former state and needs no tombstone).
	if !c.done {
		if idx := c.pickBundleLocked(p.Worker); idx >= 0 {
			bundle := c.restore[idx]
			c.restore = append(c.restore[:idx], c.restore[idx+1:]...)
			if bundle.Worker != p.Worker {
				c.store.AddTombstone(bundle.Worker, wire.MemberInfo{Worker: bundle.Worker, HostedBy: p.Worker})
			} else {
				c.store.Bump(p.Worker)
			}
			if bundle.Worker == c.restoreRoot {
				c.rootHost = p.Worker
			}
			c.send(p.Worker, wire.Migrate{
				From:     bundle.Worker,
				Closures: bundle.Closures,
				Records:  bundle.Records,
			})
		}
	}
	c.journalStateLocked()
	c.broadcastUpdateLocked(types.NoWorker)
}

func (c *Clearinghouse) onUnregister(p wire.Unregister) {
	if !c.store.IsLive(p.Worker) {
		return
	}
	if c.ckpt != nil && c.ckpt.workers[p.Worker] {
		c.ckpt.aborted = true
	}
	switch {
	case p.Reason == wire.LeaveCrash:
		c.crashLocked(p.Worker)
		return
	case p.MigratedTo != types.NoWorker:
		// Tombstone: the adopter now hosts the departed worker's tasks.
		// Flatten chains: anything previously hosted by the leaver moves
		// to the adopter too.
		c.store.Depart(p.Worker, p.MigratedTo)
		c.store.Rehost(p.Worker, p.MigratedTo)
		if c.rootHost == p.Worker {
			c.rootHost = p.MigratedTo
		}
	default:
		// Clean exit with no state. Keep a tombstone (HostedBy=NoWorker)
		// rather than deleting: a worker that simply vanishes from the
		// view is indistinguishable from one not yet announced, and the
		// steal-record recovery sweep must be able to tell "departed"
		// from "not seen yet".
		c.store.Depart(p.Worker, types.NoWorker)
		if c.rootHost == p.Worker && !c.done {
			// It left holding nothing while the job is unfinished; if the
			// root's lineage really is gone (e.g., the root spawn was
			// still in flight), the next registrant restarts it. A root
			// result already in flight wins harmlessly: duplicate
			// completions are deduplicated here.
			c.rootHost = types.NoWorker
			c.armRoot = true
		}
	}
	c.journalStateLocked()
	c.broadcastUpdateLocked(types.NoWorker)
}

// crashLocked handles the definitive loss of a worker and its state.
func (c *Clearinghouse) crashLocked(dead types.WorkerID) {
	// Salvage the dead worker's last published checkpoints before its rows
	// go: the WorkerDown broadcast carries them so the victims' redos
	// resume from the blobs instead of from zero.
	var ckpts []wire.TaskCkpt
	if r, ok := c.store.ReportOf(dead); ok {
		ckpts = r.Rep.Ckpts
	}
	if !c.store.Remove(dead) {
		return
	}
	delete(c.lastCkptJournal, dead)
	// Anything hosted by the dead worker is gone with it.
	c.store.RemoveHostedBy(dead)
	c.conn.DropPeer(dead)
	live := c.store.LiveIDs()
	down := wire.WorkerDown{Worker: dead, Ckpts: ckpts}
	if c.spans.seen() {
		// A traced job always traces its crash redos: the announcement's
		// sampling flag is merged into the redone closures so the redo
		// overhead shows up in the DAG analysis even under sampling.
		down.TC.Flags = wire.FlagSampled
	}
	for _, id := range live {
		c.send(id, down)
	}
	c.broadcastUpdateLocked(types.NoWorker)
	if c.rootHost == dead && !c.done {
		// The root lineage died. Respawn on any live worker, or arm the
		// respawn for the next registrant.
		c.rootHost = types.NoWorker
		if len(live) > 0 {
			c.rootHost = live[0]
			c.send(c.rootHost, wire.SpawnRoot{Fn: c.spec.RootFn, Args: c.spec.RootArgs})
		} else {
			c.armRoot = true
		}
	}
	c.journalStateLocked()
}

func (c *Clearinghouse) onArg(p wire.Arg) {
	if p.Cont.Task.Worker != types.ClearinghouseID {
		return // misrouted
	}
	c.synchs.Add(1)
	if c.done {
		return // duplicate root result after a redo; first one won
	}
	c.done = true
	c.result = p.Val
	if c.journal != nil {
		// The one record that must reach stable storage: the answer.
		c.journal.append(&journalRecord{Kind: jResult, Result: p.Val}, true)
	}
	close(c.doneCh)
	for _, id := range c.store.LiveIDs() {
		c.send(id, wire.Shutdown{Reason: "job complete"})
	}
}

// onDrainRequest picks the migration target for a draining worker: the
// live participant (other than the requester) with the shallowest reported
// deque, so handed-off work lands where it runs soonest. A worker that has
// never reported counts as empty. With no other live participant the ack
// says so and the drainer falls back to the crash-recovery redo path.
func (c *Clearinghouse) onDrainRequest(p wire.DrainRequest) {
	depth := make(map[types.WorkerID]int32)
	for _, r := range c.store.Reports() {
		depth[r.Rep.Worker] = r.Rep.Deque
	}
	victim := types.NoWorker
	var best int32
	for _, id := range c.store.LiveIDs() {
		if id == p.Worker {
			continue
		}
		if d := depth[id]; victim == types.NoWorker || d < best {
			victim, best = id, d
		}
	}
	ack := wire.DrainAck{OK: victim != types.NoWorker, Victim: victim}
	if m, ok := c.store.Member(victim); ok {
		// The drainer's view may predate the victim's arrival; ship the
		// address so the handoff can route anyway.
		ack.Addr = m.Info.Addr
	}
	c.send(p.Worker, ack)
}

func (c *Clearinghouse) onStayRequest(p wire.StayRequest) {
	// Keep the last participant, and keep the root's host (its lineage
	// base may still be in flight to it).
	stay := !c.done && (c.store.LiveCount() <= 1 || p.Worker == c.rootHost)
	c.send(p.Worker, wire.StayReply{Stay: stay})
}

// pickBundleLocked selects which restore bundle to hand the registrant:
// its own former id if present, else any bundle whose old id does not
// collide with a live member; -1 when none is safe to hand out yet.
func (c *Clearinghouse) pickBundleLocked(registrant types.WorkerID) int {
	if len(c.restore) == 0 {
		return -1
	}
	fallback := -1
	for i, b := range c.restore {
		if b.Worker == registrant {
			return i
		}
		if fallback == -1 && !c.store.IsLive(b.Worker) {
			fallback = i
		}
	}
	return fallback
}

// view assembles the membership view by merging over shards. Mutations
// only happen on the Run goroutine, so the epoch and the member rows are
// mutually consistent whenever a view is built.
func (c *Clearinghouse) view() wire.MembershipView {
	v := wire.MembershipView{Epoch: c.store.Epoch()}
	for _, m := range c.store.Members() {
		v.Members = append(v.Members, m.Info)
	}
	return v
}

// broadcastUpdate pushes the current view to every live member.
func (c *Clearinghouse) broadcastUpdate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.broadcastUpdateLocked(types.NoWorker)
}

// broadcastUpdateLocked pushes the view to all live members except skip
// (a registrant that just got the same view in its RegisterReply).
func (c *Clearinghouse) broadcastUpdateLocked(skip types.WorkerID) {
	members := c.store.Members()
	view := wire.MembershipView{Epoch: c.store.Epoch()}
	for _, m := range members {
		view.Members = append(view.Members, m.Info)
	}
	for _, m := range members {
		if m.Departed || m.Info.Worker == skip {
			continue
		}
		c.send(m.Info.Worker, wire.Update{View: view})
	}
}

// maybeJournalCkpts journals a report's checkpoint blobs (latest set per
// worker, unsynced — losing the tail to a crash only costs a slightly
// older resume point). Rate-limited per worker so the journal grows with
// membership churn, not with Yield frequency. Run goroutine only.
func (c *Clearinghouse) maybeJournalCkpts(rep *wire.StatReport) {
	if c.journal == nil || len(rep.Ckpts) == 0 {
		return
	}
	every := c.cfg.UpdateEvery
	if every <= 0 {
		every = 2 * time.Second
	}
	now := c.clk.Now()
	if last, ok := c.lastCkptJournal[rep.Worker]; ok && now.Sub(last) < every {
		return
	}
	c.lastCkptJournal[rep.Worker] = now
	c.journal.append(&journalRecord{Kind: jCkpt, CkptWorker: rep.Worker, Ckpts: rep.Ckpts}, false)
}

func (c *Clearinghouse) checkHeartbeats() {
	now := c.clk.Now()
	// Workers with a warm phi history are judged by the adaptive detector
	// (when enabled); cold ones by the fixed timeout; workers that never
	// heartbeated only by the registration grace — silence from a worker
	// that never sent one usually means "not configured to heartbeat",
	// not "dead", but not forever.
	fallbackCutoff := now.Add(-c.cfg.HeartbeatTimeout)
	var graceCutoff time.Time
	if g := c.cfg.registrationGrace(); g > 0 {
		graceCutoff = now.Add(-g)
	}
	for _, id := range c.store.SweepDead(c.cfg.PhiThreshold, now, fallbackCutoff, graceCutoff) {
		// Remember the eviction: a heartbeat arriving from this id later
		// proves the detector wrong and is counted as a false eviction.
		c.evicted[id] = now
		c.mu.Lock()
		c.crashLocked(id)
		c.mu.Unlock()
	}
	// Expire eviction memory: a worker silent for ages after its eviction
	// really was dead, and the map must not grow with job churn.
	for id, at := range c.evicted {
		if now.Sub(at) > 10*c.cfg.HeartbeatTimeout {
			delete(c.evicted, id)
		}
	}
	c.sweepHealth(now)
	// Telemetry TTL rides the sweep: departed or never-registered workers'
	// stat rows age out shard by shard instead of accreting forever.
	if c.cfg.ReportTTL > 0 {
		c.store.EvictReports(now.Add(-c.cfg.ReportTTL))
	}
}

// noteBeatFrom records detector feedback for an inbound heartbeat: one
// arriving from a recently evicted id means the sweep declared a live
// worker dead. Run goroutine only; the len guard keeps the hot path to
// one map-length check.
func (c *Clearinghouse) noteBeatFrom(id types.WorkerID) {
	if len(c.evicted) == 0 {
		return
	}
	if _, ok := c.evicted[id]; ok {
		delete(c.evicted, id)
		c.counters.FalseEvictions.Add(1)
	}
}

func (c *Clearinghouse) send(to types.WorkerID, payload any) {
	env := &wire.Envelope{Job: c.job, From: types.ClearinghouseID, To: to, Payload: payload}
	if err := c.conn.Send(env); err == nil {
		c.msgsSent.Add(1)
	}
}

// Counters exposes the clearinghouse's own counters so a UDP transport
// can be instrumented with them (retransmits, peer-gone reports).
func (c *Clearinghouse) Counters() *stats.Counters { return &c.counters }

// Stats snapshots the clearinghouse's own counters (journal records).
func (c *Clearinghouse) Stats() stats.Snapshot {
	s := c.counters.Snapshot()
	s.Worker = int(types.ClearinghouseID)
	return s
}

// ClusterSnapshot assembles the whole-job telemetry rollup from the latest
// piggybacked worker reports: per-worker rows, Table 2-style totals (plus
// the clearinghouse's own journal counter), and merged latency histograms
// including the clearinghouse's WAL-append histogram. The assembly is a
// merge over shards — it never takes the job-level mutex and never stalls
// the hot path for more than one shard at a time.
func (c *Clearinghouse) ClusterSnapshot() telemetry.ClusterSnapshot {
	now := c.clk.Now()
	liveIDs := c.store.LiveIDs()
	liveSet := make(map[types.WorkerID]bool, len(liveIDs))
	for _, id := range liveIDs {
		liveSet[id] = true
	}
	phiOf := make(map[types.WorkerID]int32)
	for _, row := range c.store.Phis(now) {
		if row.Warm {
			phiOf[row.Worker] = int32(row.Phi * 1000)
		}
	}
	suspects := c.suspectSnapshot()
	reports := c.store.Reports()
	rows := make([]telemetry.WorkerRow, 0, len(reports))
	hists := make([][]wire.HistState, 0, len(reports)+1)
	for _, r := range reports {
		rows = append(rows, telemetry.WorkerRow{
			Worker:   int(r.Rep.Worker),
			Live:     liveSet[r.Rep.Worker],
			Deque:    r.Rep.Deque,
			AgeMS:    now.Sub(r.At).Milliseconds(),
			PhiMilli: phiOf[r.Rep.Worker],
			Suspect:  suspects[r.Rep.Worker],
			Stats:    stats.FromOrdered(r.Rep.Counters),
		})
		hists = append(hists, r.Rep.Hists)
	}
	chStats := c.counters.Snapshot()

	// The clearinghouse's own histograms (WAL append) join the merge.
	if states := c.cfg.Metrics.Export(); len(states) > 0 {
		hists = append(hists, states)
	}
	cs := telemetry.BuildClusterSnapshot(int64(c.job), c.spec.Program, c.store.Epoch(), len(liveIDs), rows, hists)
	cs.Totals.JournalRecords += chStats.JournalRecords
	// False evictions are detected clearinghouse-side (a heartbeat from a
	// swept-dead id), so they live in its own counters, not any report.
	cs.Totals.FalseEvictions += chStats.FalseEvictions
	return cs
}

// Spans returns every trace span collected from the job's workers, with
// timestamps aligned onto the clearinghouse clock and sorted by start
// time — the input to the DAG analysis (internal/trace.BuildDAG).
func (c *Clearinghouse) Spans() []wire.Span {
	return c.spans.aligned()
}

// SpanStats reports how many spans the collector retained and dropped.
func (c *Clearinghouse) SpanStats() (collected, dropped uint64) {
	return c.spans.stats()
}

// WriteMetrics renders the cluster rollup as Prometheus text exposition —
// what a clearinghouse's /metrics endpoint serves.
func (c *Clearinghouse) WriteMetrics(w io.Writer) error {
	return telemetry.WriteClusterProm(w, c.ClusterSnapshot())
}

// DebugMembers renders the membership table for post-mortem inspection.
func (c *Clearinghouse) DebugMembers() string {
	c.mu.Lock()
	done, rootHost, armRoot := c.done, c.rootHost, c.armRoot
	c.mu.Unlock()
	out := fmt.Sprintf("clearinghouse: done=%v rootHost=%d epoch=%d shards=%d armRoot=%v\n",
		done, rootHost, c.store.Epoch(), c.store.Shards(), armRoot)
	for _, m := range c.store.Members() {
		out += fmt.Sprintf("  member %d hostedBy=%d site=%d departed=%v\n",
			m.Info.Worker, m.Info.HostedBy, m.Info.Site, m.Departed)
	}
	return out
}
