package phishnet

import (
	"fmt"
	"net"
	"sync"
	"time"

	"phish/internal/types"
	"phish/internal/wire"
)

// UDP transport parameters. The retransmit interval is deliberately long
// relative to a LAN round trip: the runtime is split-phase and keeps
// working while messages are in flight, so aggressive retransmission buys
// nothing (the paper's protocols poll at 2 s and coarser).
const (
	udpRetransmitEvery = 50 * time.Millisecond
	udpMaxRetransmits  = 100 // give up after ~5 s: the peer is gone
	udpDedupWindow     = 8192
)

// UDP is a Conn over real UDP datagrams with per-peer acknowledgment,
// retransmission, and duplicate suppression — the reliability layer the
// paper builds above raw UDP/IP.
type UDP struct {
	local types.WorkerID
	job   types.JobID
	conn  *net.UDPConn
	mbox  *mailbox

	mu      sync.Mutex
	peers   map[types.WorkerID]*net.UDPAddr
	pending map[uint64]*pendingSend
	seen    map[string]*dedupWindow
	seq     uint64
	closed  bool

	stopRetx chan struct{}
	wg       sync.WaitGroup
}

type pendingSend struct {
	to    types.WorkerID
	frame []byte
	tries int
	next  time.Time
}

// dedupWindow remembers recently seen sequence numbers from one remote
// address.
type dedupWindow struct {
	seen map[uint64]struct{}
	ring []uint64
	pos  int
}

func newDedupWindow() *dedupWindow {
	return &dedupWindow{
		seen: make(map[uint64]struct{}, udpDedupWindow),
		ring: make([]uint64, udpDedupWindow),
	}
}

// add records seq; it reports true if seq was new.
func (d *dedupWindow) add(seq uint64) bool {
	if _, dup := d.seen[seq]; dup {
		return false
	}
	old := d.ring[d.pos]
	if _, ok := d.seen[old]; ok && len(d.seen) >= udpDedupWindow {
		delete(d.seen, old)
	}
	d.ring[d.pos] = seq
	d.pos = (d.pos + 1) % len(d.ring)
	d.seen[seq] = struct{}{}
	return true
}

// ListenUDP opens a UDP endpoint for worker local of job job on addr
// (":0" picks a free port).
func ListenUDP(job types.JobID, local types.WorkerID, addr string) (*UDP, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("phishnet: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("phishnet: listen %q: %w", addr, err)
	}
	u := &UDP{
		local:    local,
		job:      job,
		conn:     conn,
		mbox:     newMailbox(),
		peers:    make(map[types.WorkerID]*net.UDPAddr),
		pending:  make(map[uint64]*pendingSend),
		seen:     make(map[string]*dedupWindow),
		stopRetx: make(chan struct{}),
	}
	u.wg.Add(2)
	go u.readLoop()
	go u.retransmitLoop()
	return u, nil
}

// SetPeer implements Conn.
func (u *UDP) SetPeer(id types.WorkerID, addr string) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return // an unresolvable peer simply stays unknown
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	u.peers[id] = ua
}

// DropPeer implements Conn.
func (u *UDP) DropPeer(id types.WorkerID) {
	u.mu.Lock()
	defer u.mu.Unlock()
	delete(u.peers, id)
	for seq, p := range u.pending {
		if p.to == id {
			delete(u.pending, seq)
		}
	}
}

// LocalAddr implements Conn.
func (u *UDP) LocalAddr() string { return u.conn.LocalAddr().String() }

// Send implements Conn: assign a sequence number, transmit, and keep the
// frame for retransmission until acknowledged.
func (u *UDP) Send(env *wire.Envelope) error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return ErrClosed
	}
	dst, ok := u.peers[env.To]
	if !ok {
		u.mu.Unlock()
		return ErrUnknownPeer
	}
	u.seq++
	env.Seq = u.seq
	env.From = u.local
	env.Job = u.job
	frame, err := wire.Encode(env)
	if err != nil {
		u.mu.Unlock()
		return err
	}
	_, isAck := env.Payload.(wire.Ack)
	if !isAck {
		u.pending[env.Seq] = &pendingSend{
			to:    env.To,
			frame: frame,
			next:  time.Now().Add(udpRetransmitEvery),
		}
	}
	u.mu.Unlock()
	_, err = u.conn.WriteToUDP(frame, dst)
	return err
}

// Recv implements Conn.
func (u *UDP) Recv() <-chan *wire.Envelope { return u.mbox.out }

// Close implements Conn.
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	u.mu.Unlock()
	close(u.stopRetx)
	err := u.conn.Close()
	u.wg.Wait()
	u.mbox.close()
	return err
}

func (u *UDP) readLoop() {
	defer u.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, from, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		frame := make([]byte, n)
		copy(frame, buf[:n])
		env, err := wire.Decode(frame)
		if err != nil {
			continue // garbage datagram; a real network drops these too
		}
		if ack, ok := env.Payload.(wire.Ack); ok {
			u.mu.Lock()
			delete(u.pending, ack.Seq)
			u.mu.Unlock()
			continue
		}
		// Acknowledge, learn the sender's address, and dedup.
		u.mu.Lock()
		if _, known := u.peers[env.From]; !known {
			u.peers[env.From] = from
		}
		w := u.seen[from.String()]
		if w == nil {
			w = newDedupWindow()
			u.seen[from.String()] = w
		}
		fresh := w.add(env.Seq)
		u.mu.Unlock()
		u.sendAck(env.Seq, from)
		if fresh {
			u.mbox.put(env)
		}
	}
}

func (u *UDP) sendAck(seq uint64, to *net.UDPAddr) {
	ack := &wire.Envelope{Job: u.job, From: u.local, Payload: wire.Ack{Seq: seq}}
	frame, err := wire.Encode(ack)
	if err != nil {
		return
	}
	_, _ = u.conn.WriteToUDP(frame, to)
}

func (u *UDP) retransmitLoop() {
	defer u.wg.Done()
	tick := time.NewTicker(udpRetransmitEvery)
	defer tick.Stop()
	for {
		select {
		case <-u.stopRetx:
			return
		case now := <-tick.C:
			u.mu.Lock()
			type resend struct {
				frame []byte
				dst   *net.UDPAddr
			}
			var out []resend
			for seq, p := range u.pending {
				if now.Before(p.next) {
					continue
				}
				p.tries++
				if p.tries > udpMaxRetransmits {
					delete(u.pending, seq)
					continue
				}
				p.next = now.Add(udpRetransmitEvery)
				if dst, ok := u.peers[p.to]; ok {
					out = append(out, resend{p.frame, dst})
				}
			}
			u.mu.Unlock()
			for _, r := range out {
				_, _ = u.conn.WriteToUDP(r.frame, r.dst)
			}
		}
	}
}

var _ Conn = (*UDP)(nil)
