package core_test

import (
	"encoding/binary"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"phish/internal/clearinghouse"
	"phish/internal/clock"
	"phish/internal/core"
	"phish/internal/model"
	"phish/internal/phishnet"
	"phish/internal/types"
	"phish/internal/wire"
)

// chunkSteps counts every 1 ms unit of chunk work executed anywhere, so
// tests can tell "resumed from the blob" from "redone from scratch".
var chunkSteps atomic.Int64

// chunkProg sums 0..n-1 in n slow steps, checkpointing (i, partial sum)
// after each. The root fans two chunk children into a sum successor so one
// child is stealable.
func chunkProg() *core.Program {
	p := core.NewProgram("ckpttest")
	p.Register("chunks", func(c model.Ctx) {
		n := c.Int(0)
		var i, sum int64
		if ck := c.Checkpoint(); len(ck) == 16 {
			i = int64(binary.BigEndian.Uint64(ck))
			sum = int64(binary.BigEndian.Uint64(ck[8:]))
		}
		for ; i < n; i++ {
			sum += i
			chunkSteps.Add(1)
			time.Sleep(time.Millisecond)
			var blob [16]byte
			binary.BigEndian.PutUint64(blob[:8], uint64(i+1))
			binary.BigEndian.PutUint64(blob[8:], uint64(sum))
			if c.Yield(blob[:]) {
				return
			}
		}
		c.Return(sum)
	})
	p.Register("pair", func(c model.Ctx) {
		n := c.Int(0)
		s := c.Successor("sum2", 2)
		c.Spawn("chunks", s.Cont(0), n)
		c.Spawn("chunks", s.Cont(1), n)
	})
	p.Register("sum2", func(c model.Ctx) { c.Return(c.Int(0) + c.Int(1)) })
	return p
}

func chunkSum(n int64) int64 { return n * (n - 1) / 2 }

// ckptRig wires a fabric + clearinghouse around chunkProg with heartbeat
// crash detection fast enough for unit tests.
type ckptRig struct {
	t    *testing.T
	fab  *phishnet.Fabric
	ch   *clearinghouse.Clearinghouse
	prog *core.Program
	cfg  core.Config

	workers map[types.WorkerID]*core.Worker
	done    map[types.WorkerID]chan struct{}
}

func newCkptRig(t *testing.T, rootFn string, rootN int64) *ckptRig {
	t.Helper()
	fab := phishnet.NewFabric()
	spec := wire.JobSpec{ID: 1, Name: "ckpttest", Program: "ckpttest",
		RootFn: rootFn, RootArgs: []types.Value{rootN}}
	chCfg := clearinghouse.DefaultConfig()
	chCfg.UpdateEvery = 20 * time.Millisecond
	chCfg.HeartbeatTimeout = 250 * time.Millisecond
	ch := clearinghouse.New(spec, fab.Attach(types.ClearinghouseID), chCfg)
	go ch.Run()
	cfg := core.DefaultConfig()
	cfg.StealTimeout = 50 * time.Millisecond
	cfg.HeartbeatEvery = 10 * time.Millisecond
	cfg.CkptEvery = 10 * time.Millisecond
	r := &ckptRig{t: t, fab: fab, ch: ch, prog: chunkProg(), cfg: cfg,
		workers: make(map[types.WorkerID]*core.Worker),
		done:    make(map[types.WorkerID]chan struct{})}
	t.Cleanup(func() {
		for _, w := range r.workers {
			w.Crash()
		}
		for _, d := range r.done {
			<-d
		}
		ch.Stop()
		fab.Close()
	})
	return r
}

func (r *ckptRig) addWorker(id types.WorkerID) *core.Worker {
	r.t.Helper()
	w := core.NewWorker(1, id, r.prog, r.fab.Attach(id), r.cfg, clock.System)
	d := make(chan struct{})
	r.workers[id] = w
	r.done[id] = d
	go func() {
		defer close(d)
		_ = w.Run()
	}()
	return w
}

func (r *ckptRig) wait(d time.Duration) int64 {
	r.t.Helper()
	v, err := r.ch.WaitResult(d)
	if err != nil {
		r.t.Fatal(err)
	}
	return v.(int64)
}

// TestDrainHandsOffCheckpointedTask drains the worker executing a long
// checkpointable task: the task must be preempted at a Yield, migrate with
// its blob, and resume on the other worker — not restart from step zero.
func TestDrainHandsOffCheckpointedTask(t *testing.T) {
	const n = 300
	chunkSteps.Store(0)
	r := newCkptRig(t, "chunks", n)
	w1 := r.addWorker(1)

	// Let the task make some progress on w1 before the adopter joins.
	deadline := time.Now().Add(5 * time.Second)
	for w1.Stats().CkptSaves < 20 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if w1.Stats().CkptSaves < 20 {
		t.Fatalf("task made no checkpointed progress on w1: %+v", w1.Stats())
	}
	r.addWorker(2)
	for len(r.ch.LiveWorkers()) < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	t0 := time.Now()
	w1.Drain()
	<-r.done[1]
	handoff := time.Since(t0)

	if got := r.wait(30 * time.Second); got != chunkSum(n) {
		t.Fatalf("result = %d, want %d", got, chunkSum(n))
	}
	s1 := w1.Stats()
	if s1.TasksPreempted < 1 {
		t.Errorf("w1 never preempted the in-flight task: %+v", s1)
	}
	if s1.TasksMigrated < 1 {
		t.Errorf("w1 migrated nothing: %+v", s1)
	}
	if w1.LeaveReason() != wire.LeaveReclaimed {
		t.Errorf("w1 leave reason = %v, want reclaimed (clean handoff)", w1.LeaveReason())
	}
	s2 := r.workers[2].Stats()
	if s2.CkptResumes < 1 {
		t.Errorf("w2 never resumed from a checkpoint: %+v", s2)
	}
	// Resumption, not redo: total steps stay well under twice the work.
	if steps := chunkSteps.Load(); steps > n+n/2 {
		t.Errorf("%d steps executed for %d units of work; blob was not resumed", steps, n)
	}
	// The drain itself is quick — bounded by one Yield interval plus the
	// handoff round trips, far under the redo cost of the full task.
	if handoff > 5*time.Second {
		t.Errorf("drain handoff took %v", handoff)
	}
}

// TestCrashRedoResumesFromPublishedBlob crashes a thief mid-task: the
// victim's redo must pick up the thief's last published checkpoint (which
// rode StatReports to the clearinghouse and came back on WorkerDown)
// instead of redoing from scratch.
func TestCrashRedoResumesFromPublishedBlob(t *testing.T) {
	const n = 300
	chunkSteps.Store(0)
	r := newCkptRig(t, "pair", n)
	w1 := r.addWorker(1)

	// The root must land on w1: let it fan out before w2 joins.
	deadline := time.Now().Add(5 * time.Second)
	for w1.Stats().TasksExecuted < 1 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	w2 := r.addWorker(2)

	// Wait until w2 stole the second chunk task and checkpointed progress.
	for time.Now().Before(deadline) {
		s := w2.Stats()
		if s.TasksStolen >= 1 && s.CkptSaves >= 20 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s := w2.Stats(); s.TasksStolen < 1 || s.CkptSaves < 20 {
		t.Fatalf("w2 never stole and checkpointed a chunk task:\n  w2: %+v\n  w1: %+v", s, w1.Stats())
	}
	// Give the rate-limited publication a beat, then kill the thief.
	time.Sleep(30 * time.Millisecond)
	w2.Crash()

	if got := r.wait(30 * time.Second); got != 2*chunkSum(n) {
		t.Fatalf("result = %d, want %d", got, 2*chunkSum(n))
	}
	if s1 := w1.Stats(); s1.CkptResumes < 1 {
		t.Errorf("w1 redid the stolen task without its checkpoint: %+v", s1)
	}
}

// TestNoCkptKeepsLegacyBehavior runs the same checkpointable program with
// the checkpoint surface disabled: Yield must save nothing and never
// preempt, and the job must still complete exactly.
func TestNoCkptKeepsLegacyBehavior(t *testing.T) {
	const n = 50
	chunkSteps.Store(0)
	r := newCkptRig(t, "chunks", n)
	r.cfg.NoCkpt = true
	w1 := r.addWorker(1)
	if got := r.wait(30 * time.Second); got != chunkSum(n) {
		t.Fatalf("result = %d, want %d", got, chunkSum(n))
	}
	s := w1.Stats()
	if s.CkptSaves != 0 || s.TasksPreempted != 0 || s.CkptResumes != 0 {
		t.Errorf("NoCkpt worker touched the checkpoint surface: %+v", s)
	}
}

// TestCkptLogReplayLatestWins exercises the worker-local checkpoint WAL:
// replay returns the newest blob per task and tolerates a torn tail.
func TestCkptLogReplayLatestWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w1.ckpt")
	l, err := core.OpenCkptLog(path)
	if err != nil {
		t.Fatal(err)
	}
	tid := types.TaskID{Worker: 1, Seq: 7}
	other := types.TaskID{Worker: 1, Seq: 9}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := l.Append(1, wire.TaskCkpt{Task: tid, Seq: seq, Data: []byte{byte(seq)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Append(1, wire.TaskCkpt{Task: other, Seq: 5, Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := core.ReplayCkptLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("replayed %d tasks, want 2", len(got))
	}
	if ck := got[tid]; ck.Seq != 3 || len(ck.Data) != 1 || ck.Data[0] != 3 {
		t.Errorf("task %v: got seq %d data %v, want the latest (seq 3)", tid, ck.Seq, ck.Data)
	}

	// A missing file is an empty log, not an error.
	if m, err := core.ReplayCkptLog(filepath.Join(t.TempDir(), "absent")); err != nil || m != nil {
		t.Errorf("missing log: got %v, %v; want nil, nil", m, err)
	}
}
