package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"phish/internal/types"
	"phish/internal/wire"
)

func tid(w, seq int) types.TaskID {
	return types.TaskID{Worker: types.WorkerID(w), Seq: uint64(seq)}
}

func exec(w int, task, parent, link types.TaskID, start, end int64) wire.Span {
	return wire.Span{Kind: wire.SpanExec, Flags: wire.FlagSampled,
		Worker: types.WorkerID(w), Task: task, Parent: parent, Link: link,
		Start: start, End: end}
}

// A fork-join diamond: root spawns two children whose results join in a
// successor. T1 is the sum of all durations; T∞ is root + slowest child +
// successor.
func TestBuildDAGForkJoin(t *testing.T) {
	root, c1, c2, succ := tid(1, 1), tid(1, 2), tid(1, 3), tid(1, 4)
	chRoot := types.TaskID{Worker: types.ClearinghouseID, Seq: 1}
	spans := []wire.Span{
		exec(1, root, types.TaskID{}, chRoot, 1000, 1000+10e6),
		exec(1, c1, root, succ, 1000+10e6, 1000+30e6),
		exec(2, c2, root, succ, 1000+12e6, 1000+42e6),
		exec(1, succ, root, chRoot, 1000+42e6, 1000+47e6),
	}
	d := BuildDAG(spans)
	if d.Tasks != 4 {
		t.Fatalf("tasks = %d, want 4", d.Tasks)
	}
	if want := 65 * time.Millisecond; d.T1 != want {
		t.Errorf("T1 = %v, want %v", d.T1, want)
	}
	// Critical path root(10) → c2(30) → succ(5).
	if want := 45 * time.Millisecond; d.TInf != want {
		t.Errorf("Tinf = %v, want %v", d.TInf, want)
	}
	if want := 47 * time.Millisecond; d.Makespan != want {
		t.Errorf("makespan = %v, want %v", d.Makespan, want)
	}
	if len(d.CritPath) != 3 || d.CritPath[0] != root || d.CritPath[1] != c2 || d.CritPath[2] != succ {
		t.Errorf("critical path = %v, want [%v %v %v]", d.CritPath, root, c2, succ)
	}
	if got := d.Bound(2); got != 65*time.Millisecond/2+45*time.Millisecond {
		t.Errorf("Bound(2) = %v", got)
	}
}

// A stolen task's continuation targets the victim's steal record; the
// grant span's Task→Parent mapping must restore the real join edge so the
// critical path still threads through the join.
func TestBuildDAGStealAlias(t *testing.T) {
	root, child, succ, rec := tid(1, 1), tid(1, 2), tid(1, 3), tid(1, 9)
	spans := []wire.Span{
		exec(1, root, types.TaskID{}, types.TaskID{}, 0, 10e6),
		// The victim granted child away; its exec on the thief links to
		// the record, not to succ.
		{Kind: wire.SpanStealGrant, Worker: 1, Task: rec, Parent: succ, Link: child, Peer: 2,
			Start: 10e6, End: 11e6},
		exec(2, child, root, rec, 11e6, 31e6),
		exec(1, succ, root, types.TaskID{}, 31e6, 36e6),
	}
	d := BuildDAG(spans)
	// root(10) → child(20) → succ(5) = 35ms only if the alias resolved.
	if want := 35 * time.Millisecond; d.TInf != want {
		t.Errorf("Tinf = %v, want %v (steal-record alias not resolved)", d.TInf, want)
	}
}

func TestBuildDAGWorkerAttribution(t *testing.T) {
	spans := []wire.Span{
		exec(1, tid(1, 1), types.TaskID{}, types.TaskID{}, 0, 10e6),
		{Kind: wire.SpanStealReq, Worker: 2, Task: tid(2, 1), Peer: 1, Start: 0, End: 4e6},
		exec(2, tid(1, 2), tid(1, 1), types.TaskID{}, 4e6, 9e6),
		{Kind: wire.SpanRedo, Worker: 2, Task: tid(1, 3), Peer: 3, Start: 9e6, End: 9e6},
	}
	d := BuildDAG(spans)
	if len(d.Workers) != 2 {
		t.Fatalf("workers = %d, want 2", len(d.Workers))
	}
	w2 := d.Workers[1]
	if w2.Worker != 2 || w2.Busy != 5*time.Millisecond || w2.Steal != 4*time.Millisecond ||
		w2.Idle != 0 || w2.Redos != 1 || w2.Steals != 1 {
		t.Errorf("w2 attribution = %+v", w2)
	}
	w1 := d.Workers[0]
	if w1.Busy != 10*time.Millisecond || w1.Idle != 0 || w1.Window != 10*time.Millisecond {
		t.Errorf("w1 attribution = %+v", w1)
	}
}

func TestChromeTraceAndTimeline(t *testing.T) {
	spans := []wire.Span{
		exec(1, tid(1, 1), types.TaskID{}, types.TaskID{}, 5e6, 15e6),
		{Kind: wire.SpanCkpt, Worker: 1, Task: tid(1, 1), Start: 10e6, End: 10e6},
	}
	d := BuildDAG(spans)
	out, err := d.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(doc.TraceEvents))
	}
	if ph := doc.TraceEvents[0]["ph"]; ph != "X" {
		t.Errorf("durable span ph = %v, want X", ph)
	}
	if ph := doc.TraceEvents[1]["ph"]; ph != "i" {
		t.Errorf("point span ph = %v, want i", ph)
	}
	tl := d.RenderTimeline()
	if !strings.Contains(tl, "T1=10.000ms") || !strings.Contains(tl, "ckpt") {
		t.Errorf("timeline missing expected fields:\n%s", tl)
	}
}

func TestBuildDAGEmpty(t *testing.T) {
	d := BuildDAG(nil)
	if d.T1 != 0 || d.TInf != 0 || d.Makespan != 0 || d.Tasks != 0 || len(d.Workers) != 0 {
		t.Errorf("empty DAG not zero: %+v", d)
	}
}
