package cluster

import (
	"testing"
	"time"

	"phish/internal/apps/fib"
	"phish/internal/idlesim"
	"phish/internal/phishnet"
)

// recoveryOpts is fastOpts plus a StateDir (durable control plane) and a
// fixed-seed fault plan: duplicated and delay-jittered (hence reordered)
// messages on every job's fabric. Drops are exercised at the UDP layer,
// which retransmits; the in-memory fabric is a reliable transport, so the
// cluster tests inject the failure modes a reliable link can still show.
func recoveryOpts(t *testing.T, seed int64) Options {
	t.Helper()
	opts := fastOpts()
	opts.StateDir = t.TempDir()
	opts.Faults = &phishnet.FaultPlan{
		Seed:        seed,
		Duplicate:   0.05,
		Delay:       300 * time.Microsecond,
		DelayJitter: 300 * time.Microsecond,
	}
	return opts
}

// TestClearinghouseCrashRestart kills the clearinghouse mid-job and
// restarts it from its journal. The workers re-register against the
// recovered incarnation and the job must finish with the exact fault-free
// answer; conservation says no spawned task may be lost (redo races can
// only duplicate work).
func TestClearinghouseCrashRestart(t *testing.T) {
	const fibN = 27
	c := New(recoveryOpts(t, 12345))
	defer c.Close()
	for i := 0; i < 3; i++ {
		c.AddWorkstation(idlesim.Always{})
	}
	j := c.Submit(fib.Program(), fib.Root, fib.RootArgs(fibN))

	// Let the computation spread, then pull the rug out.
	deadline := time.Now().Add(10 * time.Second)
	for len(j.LiveWorkers()) < 2 && !j.Done() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	j.CrashClearinghouse()
	// An outage window: workers keep computing, their clearinghouse sends
	// fail, and the re-register loops arm with backed-off retries.
	time.Sleep(150 * time.Millisecond)
	if err := j.RestartClearinghouse(); err != nil {
		t.Fatal(err)
	}

	v, err := j.Wait(120 * time.Second)
	if err != nil {
		t.Fatalf("job never finished after clearinghouse restart: %v", err)
	}
	if got, want := v.(int64), fib.Serial(fibN); got != want {
		t.Errorf("fib(%d) = %d, want %d (recovery corrupted the answer)", fibN, got, want)
	}
	if got, want := j.Totals().TasksExecuted, fib.TaskCount(fibN); got < want {
		t.Errorf("tasks executed = %d < %d; the outage lost work", got, want)
	}
}

// TestClearinghouseCrashAfterResult loses the clearinghouse while the root
// result may be in flight; the worker retains its result and re-delivers
// on recovery, so the answer must come out regardless of where the crash
// landed relative to the journaled result record.
func TestClearinghouseCrashAfterResult(t *testing.T) {
	c := New(recoveryOpts(t, 777))
	defer c.Close()
	c.AddWorkstation(idlesim.Always{})
	j := c.Submit(fib.Program(), fib.Root, fib.RootArgs(18))
	if _, err := j.Wait(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	j.CrashClearinghouse()
	if err := j.RestartClearinghouse(); err != nil {
		t.Fatal(err)
	}
	v, err := j.Wait(10 * time.Second)
	if err != nil {
		t.Fatalf("finished job lost its result across a restart: %v", err)
	}
	if got, want := v.(int64), fib.Serial(18); got != want {
		t.Errorf("recovered result = %d, want %d", got, want)
	}
}

// TestJobQRestartMidRun takes the PhishJobQ down with a submitted job in
// the pool. JobManagers must treat the outage as "busy, poll later"
// (counted as SourceErrors), and the restarted pool — rebuilt from its
// on-disk log — must hand the job out so it runs to the right answer and
// is retired from the pool.
func TestJobQRestartMidRun(t *testing.T) {
	const fibN = 24
	c := New(recoveryOpts(t, 424242))
	defer c.Close()
	j := c.Submit(fib.Program(), fib.Root, fib.RootArgs(fibN))
	c.StopJobQ()

	stations := make([]*Workstation, 3)
	for i := range stations {
		stations[i] = c.AddWorkstation(idlesim.Always{})
	}
	// Every manager polls into the outage and counts it, without dying.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var errs int64
		for _, ws := range stations {
			errs += ws.Stats().SourceErrors.Load()
		}
		if errs >= int64(len(stations)) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, ws := range stations {
		if ws.Stats().SourceErrors.Load() == 0 {
			t.Fatal("a manager never saw the outage; is it polling?")
		}
		if ws.Stats().JobsStarted.Load() != 0 {
			t.Fatal("a manager started a job while the PhishJobQ was down")
		}
	}
	if j.Done() {
		t.Fatal("job ran with no workstation granted")
	}

	if err := c.RestartJobQ(); err != nil {
		t.Fatal(err)
	}
	// The recovered pool must still hold the job under its original id.
	if jobs := c.Pool().List(); len(jobs) != 1 || jobs[0].ID != j.ID {
		t.Fatalf("recovered pool = %+v, want job %d", jobs, j.ID)
	}
	v, err := j.Wait(120 * time.Second)
	if err != nil {
		t.Fatalf("job never ran after the PhishJobQ restart: %v", err)
	}
	if got, want := v.(int64), fib.Serial(fibN); got != want {
		t.Errorf("fib(%d) = %d, want %d", fibN, got, want)
	}
	// The retire loop polled through the outage; the pool must drain.
	deadline = time.Now().Add(10 * time.Second)
	for c.Pool().Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if n := c.Pool().Len(); n != 0 {
		t.Errorf("finished job never retired from the pool (%d left)", n)
	}
}
