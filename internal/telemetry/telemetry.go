// Package telemetry is the runtime's zero-dependency observability plane:
// counters, gauges, and fixed-bucket latency histograms behind a registry
// that renders Prometheus text exposition and JSON snapshots, an opt-in
// HTTP server for the daemons, and the cluster-wide rollup types that the
// clearinghouse aggregates from piggybacked worker stat reports.
//
// Every instrument is nil-receiver safe: a disabled plane is a nil
// *Metrics, and hot-path call sites guard with a single pointer check, so
// turning telemetry off costs no atomic operations at all.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64. Nil-safe.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be non-negative for exposition to make sense).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 value. Nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts int64 samples (nanoseconds, for the latency instruments)
// into fixed upper-bound buckets plus an implicit overflow bucket. Observe
// is lock-free; Snapshot is a consistent-enough copy for exposition (bucket
// loads are not atomic with respect to each other, which Prometheus
// semantics tolerate). Nil-safe.
type Histogram struct {
	bounds []int64        // strictly increasing inclusive upper bounds
	counts []atomic.Int64 // len(bounds)+1; last is overflow (+Inf)
	count  atomic.Int64
	sum    atomic.Int64
}

// NewHistogram returns a histogram over the given inclusive upper bounds,
// which must be strictly increasing and non-empty.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not increasing at %d", i))
		}
	}
	h := &Histogram{bounds: append([]int64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	return h
}

// DefaultLatencyBounds covers 1µs..10s in a 1-2-5 progression — wide
// enough for in-process steals (~µs) and LAN retransmit backoffs (~s).
func DefaultLatencyBounds() []int64 {
	us, ms, s := int64(time.Microsecond), int64(time.Millisecond), int64(time.Second)
	return []int64{
		1 * us, 2 * us, 5 * us, 10 * us, 20 * us, 50 * us,
		100 * us, 200 * us, 500 * us,
		1 * ms, 2 * ms, 5 * ms, 10 * ms, 20 * ms, 50 * ms,
		100 * ms, 200 * ms, 500 * ms,
		1 * s, 2 * s, 5 * s, 10 * s,
	}
}

// bucketIndex returns the index of the bucket v falls into: the first
// bound >= v, or the overflow bucket.
func bucketIndex(bounds []int64, v int64) int {
	return sort.Search(len(bounds), func(i int) bool { return bounds[i] >= v })
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.counts[bucketIndex(h.bounds, v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveSince records the elapsed nanoseconds since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.Observe(int64(time.Since(t0)))
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot copies the histogram state for exposition or aggregation.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistSnapshot is an immutable copy of a Histogram: per-bucket counts
// (Counts[len(Bounds)] is the overflow bucket), total count, and sum.
type HistSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// Merge adds other's samples into s. Both must share bucket bounds; Merge
// panics on a shape mismatch (it indicates mixed histogram versions).
func (s *HistSnapshot) Merge(other HistSnapshot) {
	if other.Count == 0 && other.Sum == 0 {
		return
	}
	if len(s.Bounds) == 0 && len(s.Counts) == 0 {
		// Adopt the other side's layout only when s is truly empty — a
		// bare len(Bounds) check would re-zero Counts on every merge of
		// layoutless snapshots, making the fold order-dependent.
		s.Bounds = append([]int64(nil), other.Bounds...)
		s.Counts = make([]int64, len(other.Counts))
	}
	if len(s.Counts) != len(other.Counts) {
		panic("telemetry: merging histograms with different bucket layouts")
	}
	for i, c := range other.Counts {
		s.Counts[i] += c
	}
	s.Count += other.Count
	s.Sum += other.Sum
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation within the containing bucket. Samples in the overflow
// bucket report the highest finite bound. Returns 0 for an empty
// histogram.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == len(s.Counts)-1 {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := int64(0)
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + int64(frac*float64(hi-lo))
		}
		cum = next
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the average sample, or 0 when empty.
func (s HistSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// metric types for exposition.
const (
	typeCounter = "counter"
	typeGauge   = "gauge"
	typeHist    = "histogram"
)

// Label is one name="value" exposition label.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

type entry struct {
	name   string
	help   string
	typ    string
	labels []Label
	read   func() int64 // counter/gauge value at scrape time
	hist   *Histogram
	inst   any // the owned *Counter/*Gauge, for idempotent registration
}

func (e *entry) key() string {
	k := e.name
	for _, l := range e.labels {
		k += "\x00" + l.Name + "\x00" + l.Value
	}
	return k
}

// Registry holds named instruments for one process (or one aggregation
// point) and renders them. Registration is idempotent per (name, labels):
// re-registering returns the existing instrument. Safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	byKey   map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*entry)}
}

func (r *Registry) register(e *entry) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byKey[e.key()]; ok {
		return old
	}
	r.entries = append(r.entries, e)
	r.byKey[e.key()] = e
	return e
}

// Counter registers (or returns) a counter. Counter names should end in
// "_total" by Prometheus convention.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	e := r.register(&entry{name: name, help: help, typ: typeCounter, labels: labels, read: c.Value, inst: c})
	if got, ok := e.inst.(*Counter); ok {
		return got
	}
	return c
}

// Gauge registers (or returns) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	e := r.register(&entry{name: name, help: help, typ: typeGauge, labels: labels, read: g.Value, inst: g})
	if got, ok := e.inst.(*Gauge); ok {
		return got
	}
	return g
}

// CounterFunc registers a counter whose value is computed at scrape time —
// the bridge for subsystems that already keep their own atomics.
func (r *Registry) CounterFunc(name, help string, f func() int64, labels ...Label) {
	r.register(&entry{name: name, help: help, typ: typeCounter, labels: labels, read: f})
}

// GaugeFunc registers a gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, f func() int64, labels ...Label) {
	r.register(&entry{name: name, help: help, typ: typeGauge, labels: labels, read: f})
}

// Histogram registers (or returns) a histogram with the given bounds.
func (r *Registry) Histogram(name, help string, bounds []int64, labels ...Label) *Histogram {
	h := NewHistogram(bounds)
	e := r.register(&entry{name: name, help: help, typ: typeHist, labels: labels, hist: h})
	if e.hist != nil {
		return e.hist
	}
	return h
}
