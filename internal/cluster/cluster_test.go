package cluster

import (
	"sync/atomic"
	"testing"
	"time"

	"phish/internal/apps/fib"
	"phish/internal/apps/nqueens"
	"phish/internal/clearinghouse"
	"phish/internal/core"
	"phish/internal/idlesim"
	"phish/internal/jobmanager"
)

// fastOpts compresses the paper's minutes-scale polling to milliseconds so
// the whole macro-level lifecycle runs inside a unit test.
func fastOpts() Options {
	w := core.DefaultConfig()
	w.MaxStealFailures = 8
	w.StealTimeout = 20 * time.Millisecond
	w.HeartbeatEvery = 10 * time.Millisecond
	return Options{
		Worker: w,
		CH: clearinghouse.Config{
			UpdateEvery:      25 * time.Millisecond,
			HeartbeatTimeout: 250 * time.Millisecond,
		},
		JM: jobmanager.Config{
			BusyPoll:  20 * time.Millisecond,
			IdleRetry: 15 * time.Millisecond,
			WorkPoll:  10 * time.Millisecond,
		},
	}
}

func TestJobRunsOnIdleWorkstations(t *testing.T) {
	c := New(fastOpts())
	defer c.Close()
	for i := 0; i < 4; i++ {
		c.AddWorkstation(idlesim.Always{})
	}
	j := c.Submit(fib.Program(), fib.Root, fib.RootArgs(20))
	v, err := j.Wait(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := v.(int64), fib.Serial(20); got != want {
		t.Errorf("fib(20) = %d, want %d", got, want)
	}
	if got, want := j.Totals().TasksExecuted, fib.TaskCount(20); got != want {
		t.Errorf("tasks executed = %d, want %d", got, want)
	}
	if len(j.WorkerStats()) < 2 {
		t.Errorf("only %d workstations ever joined; expected the idle ones to pile on", len(j.WorkerStats()))
	}
}

func TestBusyWorkstationsStayOut(t *testing.T) {
	c := New(fastOpts())
	defer c.Close()
	busy := c.AddWorkstation(idlesim.Never{})
	c.AddWorkstation(idlesim.Always{})
	j := c.Submit(fib.Program(), fib.Root, fib.RootArgs(15))
	if _, err := j.Wait(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n := busy.Stats().JobsStarted.Load(); n != 0 {
		t.Errorf("busy workstation started %d jobs; owner sovereignty violated", n)
	}
}

func TestOwnerReclaimMigratesWork(t *testing.T) {
	c := New(fastOpts())
	defer c.Close()

	var ownerBack atomic.Bool
	reclaimable := c.AddWorkstation(jobmanager.PolicyFunc(func(time.Time) bool {
		return !ownerBack.Load()
	}))
	c.AddWorkstation(idlesim.Always{})
	c.AddWorkstation(idlesim.Always{})

	const fibN = 29
	j := c.Submit(fib.Program(), fib.Root, fib.RootArgs(fibN))
	// Wait until workstation 1 actually has a live worker in the job,
	// then its owner returns.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && !j.Done() {
		found := false
		for _, id := range j.LiveWorkers() {
			if int32(id)>>20 == 1 {
				found = true
			}
		}
		if found {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ownerBack.Store(true)

	v, err := j.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := v.(int64), fib.Serial(fibN); got != want {
		t.Errorf("fib(%d) = %d, want %d", fibN, got, want)
	}
	if n := reclaimable.Stats().Reclaims.Load(); n == 0 {
		t.Error("owner returned but no worker was reclaimed")
	}
	// Work may be duplicated by recovery races (a crash-path fallback, or
	// a defensive root respawn while the real result was in flight) but
	// may never be lost.
	tot := j.Totals()
	if got, want := tot.TasksExecuted, fib.TaskCount(fibN); got < want {
		t.Errorf("tasks executed = %d < %d; work was lost", got, want)
	}
}

func TestCrashRecovery(t *testing.T) {
	c := New(fastOpts())
	defer c.Close()
	for i := 0; i < 3; i++ {
		c.AddWorkstation(idlesim.Always{})
	}
	// A job long enough that the crash lands mid-flight.
	j := c.Submit(fib.Program(), fib.Root, fib.RootArgs(27))

	// Wait until at least two workers are in, then kill one abruptly.
	deadline := time.Now().Add(10 * time.Second)
	for len(j.LiveWorkers()) < 2 && !j.Done() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	live := j.LiveWorkers()
	if len(live) >= 2 {
		if !j.Crash(live[len(live)-1]) {
			t.Fatalf("could not crash worker %v", live[len(live)-1])
		}
	} else if !j.Done() {
		t.Fatalf("never saw 2 live workers (have %v)", live)
	}

	v, err := j.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := v.(int64), fib.Serial(27); got != want {
		t.Errorf("fib(27) = %d, want %d (crash corrupted the result)", got, want)
	}
	// The work lost in the crash was redone, so the executed-task total is
	// at least the fault-free count (strictly more when the crash landed
	// mid-run).
	if got, want := j.Totals().TasksExecuted, fib.TaskCount(27); got < want {
		t.Errorf("tasks executed = %d < %d; lost work was never redone", got, want)
	}
}

func TestWorkersRetireWhenParallelismShrinks(t *testing.T) {
	c := New(fastOpts())
	defer c.Close()
	stations := make([]*Workstation, 6)
	for i := range stations {
		stations[i] = c.AddWorkstation(idlesim.Always{})
	}
	// A long tail: nqueens spends its last stretch in few tasks, so extra
	// workers should give up and retire (or the job ends first; either
	// way nothing may hang).
	j := c.Submit(fib.Program(), fib.Root, fib.RootArgs(24))
	if _, err := j.Wait(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	// After completion every workstation is free again; submitting a new
	// job must work (pool round-robin hands it out).
	j2 := c.Submit(fib.Program(), fib.Root, fib.RootArgs(12))
	v, err := j2.Wait(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := v.(int64), fib.Serial(12); got != want {
		t.Errorf("second job: fib(12) = %d, want %d", got, want)
	}
}

func TestTwoJobsSpaceShare(t *testing.T) {
	c := New(fastOpts())
	defer c.Close()
	for i := 0; i < 4; i++ {
		c.AddWorkstation(idlesim.Always{})
	}
	j1 := c.Submit(fib.Program(), fib.Root, fib.RootArgs(22))
	j2 := c.Submit(nqueens.Program(), nqueens.Root, nqueens.RootArgs(9))
	v2, err := j2.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := j1.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := v1.(int64), fib.Serial(22); got != want {
		t.Errorf("fib job = %d, want %d", got, want)
	}
	if got := v2.(int64); got != 352 {
		t.Errorf("nqueens job = %d, want 352", got)
	}
}
