package clearinghouse

import (
	"testing"
	"time"

	"phish/internal/phishnet"
	"phish/internal/stats"
	"phish/internal/types"
	"phish/internal/wire"
)

// report builds a StatReport whose every counter equals v — cumulative and
// strictly increasing across the sequence, like a real worker's.
func report(id types.WorkerID, v int64) wire.StatReport {
	counters := make([]int64, len(stats.OrderedNames))
	for i := range counters {
		counters[i] = v
	}
	return wire.StatReport{Worker: id, Deque: int32(v), Counters: counters}
}

// TestStatReportReorderCannotRegress replays the failure the monotonic
// guard exists for: the fault fabric duplicates StatReport datagrams and
// delays them with jitter, so a stale duplicate routinely arrives after a
// newer report. Latest-wins folding by arrival order would let the stale
// copy roll the worker's cumulative counters backwards; folding by
// cumulative progress must leave the final row at the newest values no
// matter how deliveries interleave.
func TestStatReportReorderCannotRegress(t *testing.T) {
	h := newHarness(t, DefaultConfig())
	// Heavy duplication and delivery jitter spanning many send intervals:
	// with this seed and 200 reports, reorderings are guaranteed in bulk.
	h.fab.SetFaults(phishnet.NewFaults(phishnet.FaultPlan{
		Seed:        7,
		Duplicate:   0.9,
		Delay:       2 * time.Millisecond,
		DelayJitter: 2 * time.Millisecond,
	}))
	w := h.attach(3)
	expect[wire.RegisterReply](t, w, time.Second)

	const final = 200
	for v := int64(1); v <= final; v++ {
		h.send(w, 3, report(3, v))
	}
	// Let every delayed duplicate land — injected delays top out at 4ms,
	// so after this every straggler has been folded and the row holds its
	// forever value. Folding by arrival order would leave it at whichever
	// stale duplicate the jitter happened to deliver last.
	time.Sleep(300 * time.Millisecond)
	cs := h.ch.ClusterSnapshot()
	var got int64 = -1
	for _, row := range cs.Workers {
		if row.Worker == 3 {
			got = row.Stats.TasksExecuted
		}
	}
	if got != final {
		t.Fatalf("worker row tasks_executed = %d, want %d: a delayed duplicate regressed the cumulative counters", got, final)
	}
}

// TestStatReportFoldsAcrossShards checks the same fold path with the
// worker population spread over many shards and reports arriving for
// workers that never registered (pre-Register reports must still fold).
func TestStatReportFoldsAcrossShards(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 16
	h := newHarness(t, cfg)
	w := h.attach(1)
	expect[wire.RegisterReply](t, w, time.Second)
	for id := types.WorkerID(1); id <= 24; id++ {
		h.send(w, id, report(id, int64(id)*10))
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		cs := h.ch.ClusterSnapshot()
		if len(cs.Workers) == 24 {
			for _, row := range cs.Workers {
				if want := int64(row.Worker) * 10; row.Stats.TasksExecuted != want {
					t.Fatalf("worker %d row = %d, want %d", row.Worker, row.Stats.TasksExecuted, want)
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("rollup rows = %d, want 24", len(cs.Workers))
		}
		time.Sleep(5 * time.Millisecond)
	}
}
