package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"phish"
	"phish/internal/apps/pfold"
	"phish/internal/telemetry"
	"phish/internal/types"
	"phish/internal/wire"
)

// WireBenchResult is one codec micro-benchmark measurement, written to
// BENCH_wire.json so successive PRs have a perf trajectory to compare
// against.
type WireBenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// wireBenchArg mirrors the Arg envelope of the wire benchmarks: the
// smallest hot-path message (one synchronization).
func wireBenchArg() *wire.Envelope {
	return &wire.Envelope{
		Job: 1, From: 2, To: 3, Seq: 99,
		Payload: wire.Arg{
			Cont: types.Continuation{Task: types.TaskID{Worker: 1, Seq: 12345}, Slot: 1},
			Val:  int64(42),
		},
	}
}

// wireBenchSteal mirrors the stolen-closure envelope: a data-carrying
// steal reply.
func wireBenchSteal() *wire.Envelope {
	return &wire.Envelope{
		Job: 1, From: 2, To: 3, Seq: 100,
		Payload: wire.StealReply{OK: true, Task: wire.Closure{
			ID:   types.TaskID{Worker: 2, Seq: 7},
			Fn:   "pfold",
			Args: []types.Value{int64(18), "hphpphhpph", []int64{1, 2, 3, 4, 5, 6, 7, 8}, float64(0.5)},
			Cont: types.Continuation{Task: types.TaskID{Worker: 3, Seq: 9}, Slot: 0},
		}},
	}
}

// stealSequence is the four messages of one steal round trip.
func stealSequence() []*wire.Envelope {
	return []*wire.Envelope{
		{Job: 1, From: 3, To: 2, Seq: 1, Payload: wire.StealRequest{Thief: 3}},
		wireBenchSteal(),
		{Job: 1, From: 3, To: 2, Seq: 2, Payload: wire.StealConfirm{Record: types.TaskID{Worker: 2, Seq: 7}}},
		{Job: 1, From: 3, To: 2, Seq: 3, Payload: wire.Arg{
			Cont: types.Continuation{Task: types.TaskID{Worker: 2, Seq: 7}}, Val: int64(8)}},
	}
}

// runStealSequenceView is one iteration of the production steal path:
// encode each of the four messages, parse it back as a zero-copy view, and
// touch every field a worker's ingest reads — the stolen closure's args
// landing in the caller's reused scratch slice, exactly like adoption onto
// a pooled closure. Shared by WireBench and the crit gate so both measure
// the same path.
func runStealSequenceView(b *testing.B, seq []*wire.Envelope, scratch *[]types.Value) {
	for _, env := range seq {
		f, err := wire.EncodeFrame(env)
		if err != nil {
			b.Fatal(err)
		}
		decoded, err := wire.DecodeView(f.Bytes(), nil)
		if err != nil {
			b.Fatal(err)
		}
		v, ok := decoded.Payload.(*wire.View)
		if !ok {
			b.Fatalf("hot payload decoded as %T, not a view", decoded.Payload)
		}
		if sr, ok := v.AsStealRequest(); ok {
			_ = sr.Thief()
		} else if rp, ok := v.AsStealReply(); ok {
			cl := rp.Task()
			_, _, _ = cl.ID(), cl.Fn(), cl.Cont()
			_, _, _ = cl.Missing(), cl.NoSteal(), cl.TC()
			*scratch, err = cl.AppendArgs((*scratch)[:0])
			if err != nil {
				b.Fatal(err)
			}
		} else if sc, ok := v.AsStealConfirm(); ok {
			_ = sc.Record()
		} else if av, ok := v.AsArg(); ok {
			if _, err := av.Val(); err != nil {
				b.Fatal(err)
			}
			_, _, _ = av.Cont(), av.Crossed(), av.TC()
		}
		decoded.Free()
		f.Free()
	}
}

// WireBench measures the wire codec and steal-path serialization costs:
// the binary codec (production path, pooled and unpooled) next to the gob
// reference codec it replaced.
func WireBench() []WireBenchResult {
	arg, steal, seq := wireBenchArg(), wireBenchSteal(), stealSequence()
	argFrame, _ := wire.Encode(arg)
	stealFrame, _ := wire.Encode(steal)

	cases := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"encode-arg", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f, err := wire.EncodeFrame(arg)
				if err != nil {
					b.Fatal(err)
				}
				f.Free()
			}
		}},
		{"decode-arg", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env, err := wire.Decode(argFrame)
				if err != nil {
					b.Fatal(err)
				}
				env.Free()
			}
		}},
		{"encode-stolen-closure", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f, err := wire.EncodeFrame(steal)
				if err != nil {
					b.Fatal(err)
				}
				f.Free()
			}
		}},
		{"decode-stolen-closure", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env, err := wire.Decode(stealFrame)
				if err != nil {
					b.Fatal(err)
				}
				env.Free()
			}
		}},
		{"steal-sequence", func(b *testing.B) {
			// The production path: zero-copy views read in place.
			var scratch []types.Value
			for i := 0; i < b.N; i++ {
				runStealSequenceView(b, seq, &scratch)
			}
		}},
		{"steal-sequence-materialize", func(b *testing.B) {
			// The pre-view path (decode into owned structs), kept for the
			// differential trajectory.
			for i := 0; i < b.N; i++ {
				for _, env := range seq {
					f, err := wire.EncodeFrame(env)
					if err != nil {
						b.Fatal(err)
					}
					decoded, err := wire.Decode(f.Bytes())
					if err != nil {
						b.Fatal(err)
					}
					decoded.Free()
					f.Free()
				}
			}
		}},
		{"encode-arg-gob", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wire.EncodeGob(arg); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"steal-sequence-gob", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, env := range seq {
					f, err := wire.EncodeGob(env)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := wire.DecodeGob(f); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
	}

	out := make([]WireBenchResult, 0, len(cases))
	for _, c := range cases {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			c.fn(b)
		})
		out = append(out, WireBenchResult{
			Name:        c.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return out
}

// StealSeqAllocBudget is the hard ceiling on steal-sequence allocs/op: the
// zero-copy steal path stays single-digit or the gate fails.
const StealSeqAllocBudget = 10

// CheckWire gates CI on the steal path's allocation profile: the fresh
// steal-sequence measurement must exist, stay under the hard single-digit
// budget, and not regress past the recorded BENCH_wire.json baseline
// (base nil skips the comparison — no baseline yet). ns/op is recorded
// for the trajectory but not gated; shared CI machines make timing gates
// flaky where alloc counts are exact.
func CheckWire(base, fresh []WireBenchResult) error {
	var got *WireBenchResult
	for i := range fresh {
		if fresh[i].Name == "steal-sequence" {
			got = &fresh[i]
		}
	}
	if got == nil {
		return fmt.Errorf("harness: wirebench produced no steal-sequence measurement")
	}
	if got.AllocsPerOp >= StealSeqAllocBudget {
		return fmt.Errorf("harness: steal-sequence allocs %d, budget < %d — the zero-copy steal path regressed",
			got.AllocsPerOp, StealSeqAllocBudget)
	}
	for _, wb := range base {
		if wb.Name == "steal-sequence" && got.AllocsPerOp > wb.AllocsPerOp {
			return fmt.Errorf("harness: steal-sequence allocs %d exceed the recorded %d baseline",
				got.AllocsPerOp, wb.AllocsPerOp)
		}
	}
	return nil
}

// PrintWireBench renders the measurements as a table.
func PrintWireBench(w io.Writer, rs []WireBenchResult) {
	fmt.Fprintf(w, "wire codec — binary vs gob reference\n")
	fmt.Fprintf(w, "%-24s %14s %12s %12s\n", "benchmark", "ns/op", "B/op", "allocs/op")
	for _, r := range rs {
		fmt.Fprintf(w, "%-24s %14.1f %12d %12d\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
}

// WriteWireBenchJSON writes the measurements to path as JSON.
func WriteWireBenchJSON(path string, rs []WireBenchResult) error {
	data, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// SchedBenchResult is one scheduler throughput measurement: a pfold run
// with the telemetry plane on, reporting task throughput and the steal
// round-trip / task-execution quantiles from the latency histograms.
// Written to BENCH_sched.json so successive PRs have a scheduling-path
// perf trajectory next to the codec one.
type SchedBenchResult struct {
	Name         string  `json:"name"`
	Workers      int     `json:"workers"`
	Tasks        int64   `json:"tasks"`
	Steals       int64   `json:"steals"`
	ElapsedMS    float64 `json:"elapsed_ms"`
	TasksPerSec  float64 `json:"tasks_per_sec"`
	StealRTTP50  int64   `json:"steal_rtt_p50_ns"`
	StealRTTP99  int64   `json:"steal_rtt_p99_ns"`
	TaskExecP50  int64   `json:"task_exec_p50_ns"`
	TaskExecP99  int64   `json:"task_exec_p99_ns"`
	StealSamples int64   `json:"steal_samples"`
}

// SchedBench runs o's pfold workload at each participant count with every
// worker instrumented (all sharing one histogram set, so the quantiles
// are cluster-wide).
func (o Options) SchedBench() ([]SchedBenchResult, error) {
	ps := append([]int(nil), o.Table2Ps...)
	if len(ps) == 0 {
		ps = []int{4, 8}
	}
	var out []SchedBenchResult
	for _, p := range ps {
		m := telemetry.NewMetrics()
		cfg := o.Workers
		if cfg == (phish.WorkerConfig{}) {
			cfg = phish.DefaultWorkerConfig()
		}
		cfg.Metrics = m
		res, err := phish.RunLocal(pfold.Program(), pfold.Root,
			pfold.RootArgs(o.PfoldN, o.PfoldThreshold),
			phish.LocalOptions{Workers: p, Config: cfg, Timeout: o.Timeout})
		if err != nil {
			return nil, fmt.Errorf("harness: schedbench P=%d: %w", p, err)
		}
		rtt := m.StealRTT().Snapshot()
		exec := m.TaskExec().Snapshot()
		out = append(out, SchedBenchResult{
			Name:         fmt.Sprintf("pfold-p%d", p),
			Workers:      p,
			Tasks:        res.Totals.TasksExecuted,
			Steals:       res.Totals.TasksStolen,
			ElapsedMS:    float64(res.Elapsed.Nanoseconds()) / 1e6,
			TasksPerSec:  float64(res.Totals.TasksExecuted) / res.Elapsed.Seconds(),
			StealRTTP50:  rtt.Quantile(0.5),
			StealRTTP99:  rtt.Quantile(0.99),
			TaskExecP50:  exec.Quantile(0.5),
			TaskExecP99:  exec.Quantile(0.99),
			StealSamples: rtt.Count,
		})
	}
	return out, nil
}

// PrintSchedBench renders the measurements as a table.
func PrintSchedBench(w io.Writer, rs []SchedBenchResult) {
	fmt.Fprintf(w, "scheduler — throughput and latency quantiles (telemetry on)\n")
	fmt.Fprintf(w, "%-12s %10s %10s %12s %14s %14s %14s\n",
		"benchmark", "tasks", "steals", "tasks/sec", "stealRTT p50", "stealRTT p99", "exec p99")
	for _, r := range rs {
		fmt.Fprintf(w, "%-12s %10d %10d %12.0f %14v %14v %14v\n",
			r.Name, r.Tasks, r.Steals, r.TasksPerSec,
			time.Duration(r.StealRTTP50), time.Duration(r.StealRTTP99), time.Duration(r.TaskExecP99))
	}
}
