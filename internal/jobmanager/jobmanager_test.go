package jobmanager

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"phish/internal/clock"
	"phish/internal/types"
	"phish/internal/wire"
)

// fakeSource hands out a fixed job while armed.
type fakeSource struct {
	mu    sync.Mutex
	armed bool
	spec  wire.JobSpec
	asks  int
}

func (s *fakeSource) Request(types.WorkstationID) (wire.JobSpec, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.asks++
	if !s.armed {
		return wire.JobSpec{}, false, nil
	}
	return s.spec, true, nil
}

func (s *fakeSource) requests() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.asks
}

// fakeProc is a controllable worker process.
type fakeProc struct {
	done      chan struct{}
	reclaimed atomic.Bool
	reason    wire.LeaveReason
}

func (p *fakeProc) Reclaim() {
	if p.reclaimed.CompareAndSwap(false, true) {
		p.reason = wire.LeaveReclaimed
		close(p.done)
	}
}
func (p *fakeProc) Done() <-chan struct{}         { return p.done }
func (p *fakeProc) LeaveReason() wire.LeaveReason { return p.reason }

func (p *fakeProc) finish(reason wire.LeaveReason) {
	if p.reclaimed.CompareAndSwap(false, true) {
		p.reason = reason
		close(p.done)
	}
}

// fakeRunner records started procs.
type fakeRunner struct {
	mu    sync.Mutex
	procs []*fakeProc
	ids   []types.WorkerID
}

func (r *fakeRunner) Start(spec wire.JobSpec, id types.WorkerID) (WorkerProc, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := &fakeProc{done: make(chan struct{})}
	r.procs = append(r.procs, p)
	r.ids = append(r.ids, id)
	return p, nil
}

func (r *fakeRunner) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.procs)
}

func (r *fakeRunner) last() *fakeProc {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.procs) == 0 {
		return nil
	}
	return r.procs[len(r.procs)-1]
}

func testConfig(clk clock.Clock) Config {
	return Config{
		BusyPoll:  5 * time.Minute,
		IdleRetry: 30 * time.Second,
		WorkPoll:  2 * time.Second,
		Clock:     clk,
	}
}

// idleSwitch is a concurrency-safe policy toggle.
type idleSwitch struct{ idle atomic.Bool }

func (s *idleSwitch) Idle(time.Time) bool { return s.idle.Load() }

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestBusyOwnerPollsEveryFiveMinutes(t *testing.T) {
	clk := clock.NewFake()
	src := &fakeSource{armed: true, spec: wire.JobSpec{ID: 1}}
	run := &fakeRunner{}
	sw := &idleSwitch{} // busy
	m := New(1, sw, src, run, testConfig(clk))
	go m.Run()
	defer m.Stop()

	// Busy: the manager must be sleeping on BusyPoll, not requesting jobs.
	waitFor(t, "busy sleep", func() bool { return clk.Waiters() >= 1 })
	if src.requests() != 0 {
		t.Fatal("requested a job while the owner was active")
	}
	// Owner logs out; the manager only notices at the next 5-minute poll.
	sw.idle.Store(true)
	clk.Advance(4 * time.Minute)
	time.Sleep(5 * time.Millisecond)
	if run.count() != 0 {
		t.Fatal("noticed idleness before the poll interval elapsed")
	}
	clk.Advance(2 * time.Minute)
	waitFor(t, "worker start", func() bool { return run.count() == 1 })
}

func TestEmptyPoolRetriesEveryThirtySeconds(t *testing.T) {
	clk := clock.NewFake()
	src := &fakeSource{} // pool empty
	run := &fakeRunner{}
	sw := &idleSwitch{}
	sw.idle.Store(true)
	m := New(1, sw, src, run, testConfig(clk))
	go m.Run()
	defer m.Stop()

	waitFor(t, "first request", func() bool { return src.requests() == 1 })
	for i := 2; i <= 4; i++ {
		waitFor(t, "retry sleep", func() bool { return clk.Waiters() >= 1 })
		clk.Advance(30 * time.Second)
		want := i
		waitFor(t, "another request", func() bool { return src.requests() >= want })
	}
	if run.count() != 0 {
		t.Fatal("started a worker with an empty pool")
	}
	// A job appears; next retry picks it up.
	src.mu.Lock()
	src.armed = true
	src.spec = wire.JobSpec{ID: 7}
	src.mu.Unlock()
	clk.Advance(30 * time.Second)
	waitFor(t, "worker start", func() bool { return run.count() == 1 })
	if st := m.Stats(); st.JobsStarted.Load() != 1 {
		t.Errorf("jobs started = %d", st.JobsStarted.Load())
	}
}

func TestOwnerReturnKillsWorkerWithinPoll(t *testing.T) {
	clk := clock.NewFake()
	src := &fakeSource{armed: true, spec: wire.JobSpec{ID: 1}}
	run := &fakeRunner{}
	sw := &idleSwitch{}
	sw.idle.Store(true)
	m := New(1, sw, src, run, testConfig(clk))
	go m.Run()
	defer m.Stop()

	waitFor(t, "worker start", func() bool { return run.count() == 1 })
	proc := run.last()
	// Owner returns; the 2-second work poll must catch it.
	sw.idle.Store(false)
	waitFor(t, "work poll sleep", func() bool { return clk.Waiters() >= 1 })
	clk.Advance(2 * time.Second)
	waitFor(t, "reclaim", func() bool { return proc.reclaimed.Load() })
	if got := m.Stats().Reclaims.Load(); got == 0 {
		t.Error("reclaim not counted")
	}
}

func TestWorkerExitRequestsNextJob(t *testing.T) {
	clk := clock.NewFake()
	src := &fakeSource{armed: true, spec: wire.JobSpec{ID: 1}}
	run := &fakeRunner{}
	sw := &idleSwitch{}
	sw.idle.Store(true)
	m := New(1, sw, src, run, testConfig(clk))
	go m.Run()
	defer m.Stop()

	waitFor(t, "worker 1", func() bool { return run.count() == 1 })
	run.last().finish(wire.LeaveJobDone)
	// The manager asks again immediately (still idle, pool non-empty).
	waitFor(t, "worker 2", func() bool { return run.count() == 2 })
	if got := m.Stats().Finished.Load(); got != 1 {
		t.Errorf("finished = %d, want 1", got)
	}
	run.last().finish(wire.LeaveNoWork)
	waitFor(t, "retired count", func() bool { return m.Stats().Retired.Load() == 1 })
}

func TestWorkerIDsNeverRepeat(t *testing.T) {
	clk := clock.NewFake()
	src := &fakeSource{armed: true, spec: wire.JobSpec{ID: 1}}
	run := &fakeRunner{}
	sw := &idleSwitch{}
	sw.idle.Store(true)
	m := New(3, sw, src, run, testConfig(clk))
	go m.Run()
	defer m.Stop()

	for i := 1; i <= 5; i++ {
		n := i
		waitFor(t, "worker start", func() bool { return run.count() == n })
		run.last().finish(wire.LeaveNoWork)
	}
	run.mu.Lock()
	defer run.mu.Unlock()
	seen := map[types.WorkerID]bool{}
	for _, id := range run.ids {
		if seen[id] {
			t.Fatalf("worker id %d reused", id)
		}
		seen[id] = true
		if int32(id)/workerIDStride != 3 {
			t.Fatalf("worker id %d does not embed workstation 3", id)
		}
	}
}

func TestStopReclaimsRunningWorker(t *testing.T) {
	clk := clock.NewFake()
	src := &fakeSource{armed: true, spec: wire.JobSpec{ID: 1}}
	run := &fakeRunner{}
	sw := &idleSwitch{}
	sw.idle.Store(true)
	m := New(1, sw, src, run, testConfig(clk))
	done := make(chan struct{})
	go func() { m.Run(); close(done) }()

	waitFor(t, "worker start", func() bool { return run.count() == 1 })
	m.Stop()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after Stop")
	}
	if !run.last().reclaimed.Load() {
		t.Error("Stop left the worker running")
	}
}

func TestLoadThresholdPolicy(t *testing.T) {
	load := 0.9
	p := LoadThreshold(func(time.Time) float64 { return load }, 0.5)
	if p.Idle(time.Now()) {
		t.Error("high load should not be idle")
	}
	load = 0.1
	if !p.Idle(time.Now()) {
		t.Error("low load should be idle")
	}
}
