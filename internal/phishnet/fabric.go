package phishnet

import (
	"container/heap"
	"sync"
	"time"

	"phish/internal/types"
	"phish/internal/wire"
)

// Fabric is an in-memory network connecting the participants of one job in
// a single process: the workers and the clearinghouse. It is the transport
// used by the simulated NOW, the tests, and the benchmarks.
//
// Delivery is reliable. With zero latency, Send hands the envelope to the
// destination's unbounded mailbox immediately; with a configured Latency,
// a delivery pump holds messages for that long, preserving per-fabric send
// order, so the simulation can mimic the high round-trip latency the
// paper's idle-initiated protocols are designed to tolerate.
type Fabric struct {
	mu         sync.Mutex
	ports      map[types.WorkerID]*Port
	latency    time.Duration
	latencyFor func(from, to types.WorkerID) time.Duration
	faults     *Faults
	codec      Codec
	pumpQ      *deliveryQueue
	pumpGo     bool
	closed     bool
	wake       chan struct{}
}

// Codec selects how an in-memory fabric treats envelopes in flight.
type Codec int

const (
	// CodecNone passes envelope pointers through untouched (default;
	// fastest — the simulated NOW's shared-memory shortcut).
	CodecNone Codec = iota
	// CodecBinary runs every envelope through the binary wire codec
	// (encode then decode), so in-process runs exercise exactly the bytes
	// a real UDP deployment would — and benchmarks over the fabric measure
	// serialization cost.
	CodecBinary
	// CodecGob runs every envelope through the reference gob codec — the
	// pre-optimization baseline, kept for comparison benchmarks.
	CodecGob
	// CodecView encodes every envelope and hands consumers zero-copy
	// *wire.View payloads backed by a pooled arena — exactly what a real
	// UDP deployment delivers for hot messages — so in-process tests and
	// benchmarks exercise the read-in-place ingest paths end to end.
	CodecView
	// CodecV1 pins the legacy v1 positional encoder while decoding with
	// the current decoder — the cross-version differential mode (an old
	// sender talking to a new receiver).
	CodecV1
)

// SetCodec selects in-flight envelope treatment. Call before traffic
// starts.
func (f *Fabric) SetCodec(c Codec) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.codec = c
}

// NewFabric returns an empty fabric with no injected latency.
func NewFabric() *Fabric {
	return &Fabric{
		ports: make(map[types.WorkerID]*Port),
		pumpQ: &deliveryQueue{},
		wake:  make(chan struct{}, 1),
	}
}

// SetLatency injects a fixed one-way delivery delay for all subsequent
// sends. Call before traffic starts.
func (f *Fabric) SetLatency(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency = d
}

// SetLatencyFunc injects a per-pair one-way delay — the heterogeneous
// network model: zero inside a machine room, milliseconds across the slow
// cut. Because the delay is a pure function of (from, to), per-pair FIFO
// order is preserved. Call before traffic starts.
func (f *Fabric) SetLatencyFunc(fn func(from, to types.WorkerID) time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latencyFor = fn
}

// SetFaults interposes deterministic fault injection on every delivery.
// The fabric is a reliable transport (no retransmit layer above it), so
// verdicts map onto failure modes its callers already survive: a dropped
// or partitioned message surfaces as an ErrUnknownPeer send error (the
// sender parks and retries, as when a port detaches), a duplicate is
// delivered twice (receivers drop already-filled argument slots), and a
// delay rides the latency pump, where unequal delays reorder messages.
func (f *Fabric) SetFaults(fl *Faults) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = fl
}

// Attach creates the endpoint for worker id. Attaching an id twice is an
// error in the caller; the fabric panics to surface it immediately.
func (f *Fabric) Attach(id types.WorkerID) *Port {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		panic("phishnet: attach on closed fabric")
	}
	if _, dup := f.ports[id]; dup {
		panic("phishnet: duplicate fabric attach")
	}
	p := &Port{id: id, fab: f, mbox: newMailbox()}
	f.ports[id] = p
	return p
}

// detach removes a port (called by Port.Close).
func (f *Fabric) detach(id types.WorkerID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.ports, id)
}

// Close tears down every port.
func (f *Fabric) Close() {
	f.mu.Lock()
	ports := make([]*Port, 0, len(f.ports))
	for _, p := range f.ports {
		ports = append(ports, p)
	}
	f.ports = make(map[types.WorkerID]*Port)
	f.closed = true
	f.mu.Unlock()
	for _, p := range ports {
		p.mbox.close()
	}
}

func (f *Fabric) deliver(env *wire.Envelope) error {
	f.mu.Lock()
	switch f.codec {
	case CodecBinary:
		f.mu.Unlock()
		frame, err := wire.EncodeFrame(env)
		if err != nil {
			return err
		}
		env, err = wire.Decode(frame.Bytes())
		frame.Free()
		if err != nil {
			return err
		}
		f.mu.Lock()
	case CodecGob:
		f.mu.Unlock()
		frame, err := wire.EncodeGob(env)
		if err != nil {
			return err
		}
		env, err = wire.DecodeGob(frame)
		if err != nil {
			return err
		}
		f.mu.Lock()
	case CodecView:
		f.mu.Unlock()
		frame, err := wire.EncodeFrame(env)
		if err != nil {
			return err
		}
		n := len(frame.Bytes())
		if a := wire.NewArena(); n <= len(a.Bytes()) {
			// Copy into an arena so the view outlives the pooled frame; the
			// view holds its own arena reference, mirroring the UDP read
			// loop's ownership hand-off.
			copy(a.Bytes(), frame.Bytes())
			frame.Free()
			env, err = wire.DecodeView(a.Bytes()[:n], a)
			a.Release()
			if err != nil {
				return err
			}
		} else {
			// Oversized frame (cold-path bulk): no arena, decode owned.
			a.Release()
			env, err = wire.Decode(frame.Bytes())
			frame.Free()
			if err != nil {
				return err
			}
		}
		f.mu.Lock()
	case CodecV1:
		f.mu.Unlock()
		buf, err := wire.AppendEncodeLegacy(nil, env)
		if err != nil {
			return err
		}
		env, err = wire.Decode(buf)
		if err != nil {
			return err
		}
		f.mu.Lock()
	}
	var verdict Verdict
	if f.faults != nil {
		verdict = f.faults.Judge(env.From, env.To)
	}
	if verdict.Drop {
		f.mu.Unlock()
		return ErrUnknownPeer
	}
	copies := 1
	if verdict.Duplicate {
		copies = 2
	}
	lat := f.latency
	if f.latencyFor != nil {
		lat = f.latencyFor(env.From, env.To)
	}
	lat += verdict.Delay
	if lat == 0 {
		dst, ok := f.ports[env.To]
		f.mu.Unlock()
		if !ok {
			return ErrUnknownPeer
		}
		for i := 0; i < copies; i++ {
			if !dst.mbox.put(env) {
				return ErrClosed
			}
		}
		return nil
	}
	// Delayed path: enqueue on the time-ordered pump.
	for i := 0; i < copies; i++ {
		heap.Push(f.pumpQ, &delayedMsg{at: time.Now().Add(lat), env: env, seq: f.pumpQ.nextSeq()})
	}
	if !f.pumpGo {
		f.pumpGo = true
		go f.pump()
	}
	f.mu.Unlock()
	select {
	case f.wake <- struct{}{}:
	default:
	}
	return nil
}

// pump delivers delayed messages in timestamp order.
func (f *Fabric) pump() {
	for {
		f.mu.Lock()
		if f.pumpQ.Len() == 0 {
			f.pumpGo = false
			f.mu.Unlock()
			return
		}
		next := f.pumpQ.items[0]
		wait := time.Until(next.at)
		if wait > 0 {
			f.mu.Unlock()
			select {
			case <-time.After(wait):
			case <-f.wake:
			}
			continue
		}
		heap.Pop(f.pumpQ)
		dst, ok := f.ports[next.env.To]
		f.mu.Unlock()
		if ok {
			dst.mbox.put(next.env) // drop on closed mailbox, like a real net
		}
	}
}

// Port is one endpoint on a Fabric. It implements Conn.
type Port struct {
	id     types.WorkerID
	fab    *Fabric
	mbox   *mailbox
	closed sync.Once
}

// Send implements Conn.
func (p *Port) Send(env *wire.Envelope) error { return p.fab.deliver(env) }

// Recv implements Conn.
func (p *Port) Recv() <-chan *wire.Envelope { return p.mbox.out }

// SetPeer implements Conn; the fabric routes by worker id, so addresses
// are unnecessary.
func (p *Port) SetPeer(types.WorkerID, string) {}

// DropPeer implements Conn.
func (p *Port) DropPeer(types.WorkerID) {}

// LocalAddr implements Conn.
func (p *Port) LocalAddr() string { return "" }

// Close implements Conn.
func (p *Port) Close() error {
	p.closed.Do(func() {
		p.fab.detach(p.id)
		p.mbox.close()
	})
	return nil
}

var _ Conn = (*Port)(nil)

// delayedMsg and deliveryQueue implement the latency pump's time-ordered
// heap; seq breaks timestamp ties so equal-latency messages keep send
// order.
type delayedMsg struct {
	at  time.Time
	seq uint64
	env *wire.Envelope
}

type deliveryQueue struct {
	items []*delayedMsg
	seq   uint64
}

func (q *deliveryQueue) nextSeq() uint64 { q.seq++; return q.seq }

func (q *deliveryQueue) Len() int { return len(q.items) }
func (q *deliveryQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.at.Equal(b.at) {
		return a.seq < b.seq
	}
	return a.at.Before(b.at)
}
func (q *deliveryQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *deliveryQueue) Push(x any)    { q.items = append(q.items, x.(*delayedMsg)) }
func (q *deliveryQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return it
}
