// Package fib is the paper's first toy application: the naive,
// doubly-recursive Fibonacci computation. It "does almost nothing but
// spawn parallel tasks", which makes it the stress test for scheduling
// overhead — the paper's Table 1 reports its serial slowdown as 4.44 under
// Strata on the CM-5 and 5.90 under Phish on a SparcStation 10.
package fib

import (
	"sync"

	"phish"
)

// TaskCount returns the number of tasks a parallel execution of fib(n)
// creates (fib nodes plus one sum successor per internal node) — the
// conservation invariant checked by the tests.
func TaskCount(n int64) int64 {
	if n < 2 {
		return 1
	}
	return TaskCount(n-1) + TaskCount(n-2) + 2
}

// SynchCount returns the number of worker-side synchronizations a
// parallel execution of fib(n) performs: every leaf and every sum task
// delivers exactly one result, except the topmost sum, whose result goes
// to the clearinghouse and is counted there.
func SynchCount(n int64) int64 {
	if n < 2 {
		return 0 // a lone leaf returns straight to the clearinghouse
	}
	leaves := Serial(n + 1) // fib-tree leaf count
	sums := Serial(n+1) - 1 // one sum per internal node
	return leaves + sums - 1
}

// Serial is the best serial implementation of the same algorithm (plain
// recursion, no task packaging), the denominator of the paper's serial
// slowdown metric.
func Serial(n int64) int64 {
	if n < 2 {
		return n
	}
	return Serial(n-1) + Serial(n-2)
}

func fibTask(c phish.TaskCtx) {
	n := c.Int(0)
	if n < 2 {
		c.Return(n)
		return
	}
	s := c.Successor("fib.sum", 2)
	c.Spawn("fib", s.Cont(0), n-1)
	c.Spawn("fib", s.Cont(1), n-2)
}

func sumTask(c phish.TaskCtx) {
	c.Return(c.Int(0) + c.Int(1))
}

var (
	once sync.Once
	prog *phish.Program
)

// Program returns the fib parallel program (a process-wide singleton).
func Program() *phish.Program {
	once.Do(func() {
		prog = phish.NewProgram("fib")
		prog.Register("fib", fibTask)
		prog.Register("fib.sum", sumTask)
	})
	return prog
}

// Root names the program's root task function.
const Root = "fib"

// RootArgs builds the root argument list for fib(n).
func RootArgs(n int64) []phish.Value { return phish.Args(n) }
