package core

import (
	"bytes"
	"reflect"
	"testing"

	"phish/internal/types"
	"phish/internal/wire"
)

// TestPlanStatReportsWorstCase feeds the planner the snapshot that used to
// silently truncate on the wire: a full 512-span batch (~31KiB) plus a
// checkpoint blob near the 64KiB MaxCkptBlob cap on the same heartbeat.
// Every planned report must encode under the ~60KiB datagram budget, and
// the union of the reports must carry exactly the original content.
func TestPlanStatReportsWorstCase(t *testing.T) {
	const datagramMax = 60 << 10

	spans := make([]wire.Span, 512)
	for i := range spans {
		spans[i] = wire.Span{Kind: wire.SpanExec, Worker: 3,
			Task:  types.TaskID{Worker: 3, Seq: uint64(i)},
			Start: int64(i), End: int64(i + 1)}
	}
	big := wire.TaskCkpt{Task: types.TaskID{Worker: 3, Seq: 9000}, Seq: 4,
		Data: bytes.Repeat([]byte{0xAB}, 52<<10)}
	small := []wire.TaskCkpt{
		{Task: types.TaskID{Worker: 3, Seq: 9001}, Seq: 1, Data: bytes.Repeat([]byte{1}, 4<<10)},
		{Task: types.TaskID{Worker: 3, Seq: 9002}, Seq: 2, Data: bytes.Repeat([]byte{2}, 8<<10)},
	}
	rep := wire.StatReport{
		Ver:        wire.StatReportVersion,
		Worker:     3,
		Deque:      5,
		Counters:   make([]int64, 48),
		Hists:      []wire.HistState{{Kind: 1, Count: 10, Sum: 100, Counts: make([]int64, 64)}},
		Ckpts:      append([]wire.TaskCkpt{big}, small...),
		SpanSeq:    7,
		ClockOffNS: -1234,
		Spans:      spans,
	}
	for i := range rep.Counters {
		rep.Counters[i] = int64(i * 11)
	}

	out := planStatReports(rep, statReportBudget)
	if len(out) < 2 {
		t.Fatalf("worst-case snapshot planned into %d report(s); must split", len(out))
	}

	var gotCkpts []wire.TaskCkpt
	spanReports := 0
	for i, sr := range out {
		frame, err := wire.Encode(&wire.Envelope{Job: 1, From: 3, To: types.ClearinghouseID, Payload: sr})
		if err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
		if len(frame) > datagramMax {
			t.Errorf("report %d encodes to %d bytes; exceeds the %d datagram budget", i, len(frame), datagramMax)
		}
		if sr.Ver != rep.Ver || sr.Worker != rep.Worker || sr.Deque != rep.Deque {
			t.Errorf("report %d lost identity header: %+v", i, sr)
		}
		if i == 0 {
			if !reflect.DeepEqual(sr.Counters, rep.Counters) || !reflect.DeepEqual(sr.Hists, rep.Hists) {
				t.Error("first report must carry the cumulative counters and histograms")
			}
		} else if sr.Counters != nil || sr.Hists != nil {
			// Follow-ups must stay counter-less: the store's latest-wins
			// rollup keys on the counter sum, and a duplicated counter set
			// would make a reordered follow-up clobber a fresher base.
			t.Errorf("follow-up report %d duplicates counters/hists", i)
		}
		if sr.SpanSeq != 0 || sr.ClockOffNS != 0 || len(sr.Spans) > 0 {
			spanReports++
			if sr.SpanSeq != rep.SpanSeq || sr.ClockOffNS != rep.ClockOffNS || !reflect.DeepEqual(sr.Spans, rep.Spans) {
				t.Error("span batch split or altered; SpanSeq/ClockOffNS/Spans must travel as one unit")
			}
		}
		gotCkpts = append(gotCkpts, sr.Ckpts...)
	}
	if spanReports != 1 {
		t.Errorf("span unit appeared in %d reports, want exactly 1", spanReports)
	}
	if len(gotCkpts) != len(rep.Ckpts) {
		t.Fatalf("checkpoints dropped: got %d, want %d", len(gotCkpts), len(rep.Ckpts))
	}
	want := map[types.TaskID]wire.TaskCkpt{}
	for _, ck := range rep.Ckpts {
		want[ck.Task] = ck
	}
	for _, ck := range gotCkpts {
		if !reflect.DeepEqual(want[ck.Task], ck) {
			t.Errorf("checkpoint %v altered in flight", ck.Task)
		}
	}
}

// TestPlanStatReportsSmall: the common case — modest telemetry — must stay
// a single report, bit-identical freight, no split overhead.
func TestPlanStatReportsSmall(t *testing.T) {
	rep := wire.StatReport{
		Ver: wire.StatReportVersion, Worker: 2, Deque: 1,
		Counters: []int64{1, 2, 3},
		Ckpts:    []wire.TaskCkpt{{Task: types.TaskID{Worker: 2, Seq: 1}, Seq: 1, Data: []byte("x")}},
		SpanSeq:  3, Spans: []wire.Span{{Kind: wire.SpanExec, Worker: 2}},
	}
	out := planStatReports(rep, statReportBudget)
	if len(out) != 1 {
		t.Fatalf("small snapshot split into %d reports", len(out))
	}
	if !reflect.DeepEqual(out[0].Counters, rep.Counters) ||
		!reflect.DeepEqual(out[0].Ckpts, rep.Ckpts) ||
		!reflect.DeepEqual(out[0].Spans, rep.Spans) ||
		out[0].SpanSeq != rep.SpanSeq {
		t.Fatalf("single-report plan altered freight: %+v", out[0])
	}
}

// TestPlanStatReportsOversizedBlob: a blob too large to share a report
// travels alone rather than being dropped.
func TestPlanStatReportsOversizedBlob(t *testing.T) {
	rep := wire.StatReport{
		Ver: wire.StatReportVersion, Worker: 4,
		Ckpts: []wire.TaskCkpt{
			{Task: types.TaskID{Worker: 4, Seq: 1}, Seq: 1, Data: bytes.Repeat([]byte{9}, 55<<10)},
			{Task: types.TaskID{Worker: 4, Seq: 2}, Seq: 1, Data: bytes.Repeat([]byte{8}, 55<<10)},
		},
	}
	out := planStatReports(rep, statReportBudget)
	total := 0
	for i, sr := range out {
		if len(sr.Ckpts) > 1 {
			t.Fatalf("report %d packs %d near-budget blobs together", i, len(sr.Ckpts))
		}
		total += len(sr.Ckpts)
		frame, err := wire.Encode(&wire.Envelope{Job: 1, From: 4, To: types.ClearinghouseID, Payload: sr})
		if err != nil {
			t.Fatal(err)
		}
		if len(frame) > 60<<10 {
			t.Errorf("report %d encodes to %d bytes", i, len(frame))
		}
	}
	if total != 2 {
		t.Fatalf("blobs dropped: delivered %d of 2", total)
	}
}
