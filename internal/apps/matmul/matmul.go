// Package matmul is a divide-and-conquer matrix multiplication — one of
// the "new applications" the paper's future work calls for, and a
// deliberately different stress on the scheduler than the tree searches:
// its tasks carry kilobytes of matrix data, so steals and result
// deliveries are heavyweight, probing how the locality-preserving
// discipline behaves when communication actually hurts.
//
// C = A·B is computed by quadrant decomposition: eight recursive
// sub-multiplies joined by a combine task that adds and assembles the
// quadrants. Leaves below the cutoff multiply directly. The serial
// implementation runs the same recursion (the paper's slowdown metric
// compares against "the best serial implementation of the same
// algorithm"), which also makes the parallel result bit-identical to the
// serial one despite floating-point non-associativity.
package matmul

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"phish"
)

// LeafSize is the dimension at which recursion bottoms out into a direct
// triple loop.
const LeafSize = 32

// Random returns a deterministic pseudo-random n×n matrix with small
// integer entries (so products are exact in float64 and comparisons can
// be bitwise).
func Random(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	m := make([]float64, n*n)
	for i := range m {
		m[i] = float64(rng.Intn(9) - 4)
	}
	return m
}

// mulLeaf computes C = A·B directly (row-major n×n).
func mulLeaf(a, b []float64, n int) []float64 {
	c := make([]float64, n*n)
	for i := 0; i < n; i++ {
		mulRow(c, a, b, n, i)
	}
	return c
}

// mulRow computes output row i of C = A·B into c (row-major n×n).
func mulRow(c, a, b []float64, n, i int) {
	for k := 0; k < n; k++ {
		aik := a[i*n+k]
		if aik == 0 {
			continue
		}
		row := b[k*n:]
		ci := c[i*n:]
		for j := 0; j < n; j++ {
			ci[j] += aik * row[j]
		}
	}
}

// quadrant extracts quadrant (qi, qj) of an n×n matrix (half = n/2).
func quadrant(m []float64, n, qi, qj int) []float64 {
	half := n / 2
	out := make([]float64, half*half)
	for i := 0; i < half; i++ {
		copy(out[i*half:(i+1)*half], m[(qi*half+i)*n+qj*half:])
	}
	return out
}

// assemble writes quadrant (qi, qj) into an n×n matrix.
func assemble(dst []float64, q []float64, n, qi, qj int) {
	half := n / 2
	for i := 0; i < half; i++ {
		copy(dst[(qi*half+i)*n+qj*half:(qi*half+i)*n+qj*half+half], q[i*half:(i+1)*half])
	}
}

// add returns x + y element-wise.
func add(x, y []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] + y[i]
	}
	return out
}

// Serial computes A·B with the same quadrant recursion the parallel
// version uses.
func Serial(a, b []float64, n int) []float64 {
	if n <= LeafSize {
		return mulLeaf(a, b, n)
	}
	if n%2 != 0 {
		panic("matmul: dimension must be divisible by 2 down to the leaf size")
	}
	c := make([]float64, n*n)
	for qi := 0; qi < 2; qi++ {
		for qj := 0; qj < 2; qj++ {
			x := Serial(quadrant(a, n, qi, 0), quadrant(b, n, 0, qj), n/2)
			y := Serial(quadrant(a, n, qi, 1), quadrant(b, n, 1, qj), n/2)
			assemble(c, add(x, y), n, qi, qj)
		}
	}
	return c
}

// TaskCount returns the tasks a parallel multiply of dimension n executes
// (one multiply task per recursion node plus one combine per internal
// node).
func TaskCount(n int) int64 {
	if n <= LeafSize {
		return 1
	}
	return 8*TaskCount(n/2) + 2
}

// Task args: n, A (row-major), B (row-major).
//
// Leaves checkpoint per output row: the blob holds the rows of C computed
// so far, so a preempted or redone leaf resumes at the next row.
func mulTask(c phish.TaskCtx) {
	n := int(c.Int(0))
	a := c.Arg(1).([]float64)
	b := c.Arg(2).([]float64)
	if n <= LeafSize {
		cm, row := resumeLeaf(c.Checkpoint(), n)
		for i := row; i < n; i++ {
			mulRow(cm, a, b, n, i)
			if c.Yield(packLeaf(cm, n, i+1)) {
				return
			}
		}
		c.Return(cm)
		return
	}
	// Eight sub-multiplies; slot order is (qi, qj, half) with half the
	// k-range index, so the combiner knows which pairs to add.
	s := c.Successor("matmul.combine", 9)
	c.Preset(s, 0, int64(n))
	slot := 1
	for qi := 0; qi < 2; qi++ {
		for qj := 0; qj < 2; qj++ {
			c.Spawn("matmul", s.Cont(slot),
				int64(n/2), quadrant(a, n, qi, 0), quadrant(b, n, 0, qj))
			c.Spawn("matmul", s.Cont(slot+1),
				int64(n/2), quadrant(a, n, qi, 1), quadrant(b, n, 1, qj))
			slot += 2
		}
	}
}

// packLeaf encodes a leaf checkpoint: the completed-row count, then those
// rows of C as raw float64 bits.
func packLeaf(cm []float64, n, rows int) []byte {
	blob := make([]byte, 4+8*rows*n)
	binary.BigEndian.PutUint32(blob, uint32(rows))
	for i, v := range cm[:rows*n] {
		binary.BigEndian.PutUint64(blob[4+8*i:], math.Float64bits(v))
	}
	return blob
}

// resumeLeaf decodes a leaf checkpoint, returning the output matrix and
// the number of rows already computed (zero, with a fresh matrix, for a
// missing or malformed blob).
func resumeLeaf(ck []byte, n int) ([]float64, int) {
	cm := make([]float64, n*n)
	if len(ck) < 4 {
		return cm, 0
	}
	rows := int(binary.BigEndian.Uint32(ck))
	if rows <= 0 || rows > n || len(ck) != 4+8*rows*n {
		return cm, 0
	}
	for i := 0; i < rows*n; i++ {
		cm[i] = math.Float64frombits(binary.BigEndian.Uint64(ck[4+8*i:]))
	}
	return cm, rows
}

func combineTask(c phish.TaskCtx) {
	n := int(c.Int(0))
	out := make([]float64, n*n)
	slot := 1
	for qi := 0; qi < 2; qi++ {
		for qj := 0; qj < 2; qj++ {
			x := c.Arg(slot).([]float64)
			y := c.Arg(slot + 1).([]float64)
			assemble(out, add(x, y), n, qi, qj)
			slot += 2
		}
	}
	c.Return(out)
}

var (
	once sync.Once
	prog *phish.Program
)

// Program returns the matmul parallel program.
func Program() *phish.Program {
	once.Do(func() {
		prog = phish.NewProgram("matmul")
		prog.Register("matmul", mulTask)
		prog.Register("matmul.combine", combineTask)
	})
	return prog
}

// Root names the program's root task function.
const Root = "matmul"

// RootArgs builds the root argument list for C = A·B of dimension n.
// n must be LeafSize·2^k for some k ≥ 0.
func RootArgs(a, b []float64, n int) []phish.Value {
	if len(a) != n*n || len(b) != n*n {
		panic(fmt.Sprintf("matmul: matrices must be %d×%d", n, n))
	}
	return phish.Args(int64(n), a, b)
}
