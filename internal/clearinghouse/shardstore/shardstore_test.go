package shardstore

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"phish/internal/types"
	"phish/internal/wire"
)

var t0 = time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)

func info(id types.WorkerID) wire.MemberInfo {
	return wire.MemberInfo{Worker: id, Addr: fmt.Sprintf("10.0.0.%d:7", id), HostedBy: id, Site: int32(id % 3)}
}

func TestRegisterDepartRemove(t *testing.T) {
	s := New(4)
	if created, departed := s.Register(1, info(1), t0); !created || departed {
		t.Fatalf("first register: created=%v departed=%v", created, departed)
	}
	if created, departed := s.Register(1, info(1), t0); created || departed {
		t.Fatalf("duplicate register: created=%v departed=%v", created, departed)
	}
	if e := s.Epoch(); e != 1 {
		t.Fatalf("epoch after one insert = %d, want 1", e)
	}
	s.Register(2, info(2), t0)
	if got := s.LiveCount(); got != 2 {
		t.Fatalf("LiveCount = %d, want 2", got)
	}
	if !s.Depart(1, 2) {
		t.Fatal("Depart(1) = false")
	}
	if s.Depart(1, 2) {
		t.Fatal("second Depart(1) = true")
	}
	if created, departed := s.Register(1, info(1), t0); created || !departed {
		t.Fatalf("re-register of tombstone: created=%v departed=%v", created, departed)
	}
	if s.IsLive(1) || !s.IsLive(2) {
		t.Fatalf("IsLive: 1=%v 2=%v", s.IsLive(1), s.IsLive(2))
	}
	m, ok := s.Member(1)
	if !ok || !m.Departed || m.Info.HostedBy != 2 {
		t.Fatalf("tombstone row = %+v ok=%v", m, ok)
	}
	if !s.Remove(2) {
		t.Fatal("Remove(2) = false")
	}
	if s.Remove(1) {
		t.Fatal("Remove of tombstone = true; crashes only apply to live members")
	}
	if got := s.LiveCount(); got != 0 {
		t.Fatalf("LiveCount after removals = %d, want 0", got)
	}
	// insert(1) + insert(2) + depart(1) + remove(2) = 4 bumps.
	if e := s.Epoch(); e != 4 {
		t.Fatalf("epoch = %d, want 4", e)
	}
}

func TestRehostAndCascade(t *testing.T) {
	s := New(8)
	for id := types.WorkerID(0); id < 10; id++ {
		s.Register(id, info(id), t0)
	}
	// 3 departs hosted by 7; 4 and 5 were already hosted by 3 (chain).
	s.Depart(3, 7)
	for _, id := range []types.WorkerID{4, 5} {
		s.Depart(id, 3)
	}
	s.Rehost(3, 7)
	for _, id := range []types.WorkerID{3, 4, 5} {
		m, _ := s.Member(id)
		if m.Info.HostedBy != 7 {
			t.Fatalf("member %d hostedBy = %d, want 7", id, m.Info.HostedBy)
		}
	}
	epochBefore := s.Epoch()
	if !s.Remove(7) {
		t.Fatal("Remove(7) = false")
	}
	removed := s.RemoveHostedBy(7)
	if len(removed) != 3 {
		t.Fatalf("cascade removed %v, want the 3 hosted tombstones", removed)
	}
	// A crash is one semantic event: Remove bumps once, the cascade not at all.
	if e := s.Epoch(); e != epochBefore+1 {
		t.Fatalf("epoch after crash = %d, want %d", e, epochBefore+1)
	}
	for _, id := range []types.WorkerID{3, 4, 5, 7} {
		if s.Contains(id) {
			t.Fatalf("member %d still present after cascade", id)
		}
	}
}

// opTrace applies a deterministic membership/fold workload to a store.
func opTrace(s *Store, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	now := t0
	for i := 0; i < 500; i++ {
		id := types.WorkerID(rng.Intn(64))
		now = now.Add(time.Millisecond)
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			s.Register(id, info(id), now)
		case 4:
			s.Depart(id, types.WorkerID(rng.Intn(64)))
		case 5:
			if s.Remove(id) {
				s.RemoveHostedBy(id)
			}
		case 6:
			s.Heartbeat(id, now)
		case 7:
			s.Touch(id, now)
		case 8:
			s.FoldReport(wire.StatReport{Worker: id, Deque: int32(i), Counters: []int64{int64(i)}}, now)
		case 9:
			s.Rehost(id, types.WorkerID(rng.Intn(64)))
		}
	}
}

// TestShardCountInvariance is the core contract: the same operation
// sequence produces identical members, epochs, live counts, and report
// rollups at every shard count.
func TestShardCountInvariance(t *testing.T) {
	ref := New(1)
	opTrace(ref, 42)
	for _, n := range []int{2, 3, 4, 16, 64, 257} {
		s := New(n)
		opTrace(s, 42)
		if got, want := s.Epoch(), ref.Epoch(); got != want {
			t.Errorf("shards=%d: epoch %d, want %d", n, got, want)
		}
		if got, want := s.LiveCount(), ref.LiveCount(); got != want {
			t.Errorf("shards=%d: live %d, want %d", n, got, want)
		}
		if got, want := s.Members(), ref.Members(); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: members diverge from flat store", n)
		}
		if got, want := s.LiveIDs(), ref.LiveIDs(); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: live ids %v, want %v", n, got, want)
		}
		if got, want := sortedReports(s), sortedReports(ref); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: reports diverge from flat store", n)
		}
	}
}

func sortedReports(s *Store) map[types.WorkerID]Report {
	m := make(map[types.WorkerID]Report)
	for _, r := range s.Reports() {
		m[r.Rep.Worker] = r
	}
	return m
}

func TestFoldReportMonotonic(t *testing.T) {
	s := New(4)
	s.Register(5, info(5), t0)
	newer := wire.StatReport{Worker: 5, Deque: 9, Counters: []int64{10, 20}}
	older := wire.StatReport{Worker: 5, Deque: 1, Counters: []int64{10, 5}}
	if !s.FoldReport(newer, t0) {
		t.Fatal("first fold rejected")
	}
	// The delayed duplicate from earlier in the incarnation must not win.
	if s.FoldReport(older, t0.Add(time.Second)) {
		t.Fatal("stale report (smaller cumulative sum) accepted")
	}
	got := sortedReports(s)[5]
	if got.Rep.Deque != 9 {
		t.Fatalf("report row regressed to %+v", got.Rep)
	}
	// Equal sums (an exact duplicate) may re-fold: idempotent either way.
	if !s.FoldReport(newer, t0.Add(2*time.Second)) {
		t.Fatal("exact duplicate rejected; latest-wins should accept equal progress")
	}
}

func TestFoldHotMatchesSingleFolds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 4, 16} {
		batched, single := New(n), New(n)
		for id := types.WorkerID(0); id < 40; id++ {
			batched.Register(id, info(id), t0)
			single.Register(id, info(id), t0)
		}
		var b HotBatch
		now := t0.Add(time.Minute)
		for i := 0; i < 200; i++ {
			id := types.WorkerID(rng.Intn(50)) // includes unknown workers
			if rng.Intn(2) == 0 {
				b.Beats = append(b.Beats, id)
				single.Heartbeat(id, now)
			} else {
				rep := wire.StatReport{Worker: id, Deque: int32(i), Counters: []int64{int64(rng.Intn(5))}}
				b.Reports = append(b.Reports, rep)
				single.FoldReport(rep, now)
			}
		}
		batched.FoldHot(&b, now)
		if !reflect.DeepEqual(batched.Members(), single.Members()) {
			t.Errorf("shards=%d: batched members diverge from single folds", n)
		}
		if !reflect.DeepEqual(sortedReports(batched), sortedReports(single)) {
			t.Errorf("shards=%d: batched reports diverge from single folds", n)
		}
		b.Reset()
		if b.Len() != 0 {
			t.Fatal("Reset left entries behind")
		}
	}
}

func TestSweepDeadAndHBSeenGate(t *testing.T) {
	s := New(4)
	for id := types.WorkerID(0); id < 4; id++ {
		s.Register(id, info(id), t0)
	}
	s.Heartbeat(0, t0)
	s.Heartbeat(1, t0.Add(10*time.Second))
	// 2 and 3 never heartbeated; with a zero grace cutoff they stay exempt
	// from the timeout (legacy behavior).
	now := t0.Add(10 * time.Second)
	dead := s.SweepDead(0, now, t0.Add(5*time.Second), time.Time{})
	if len(dead) != 1 || dead[0] != 0 {
		t.Fatalf("SweepDead = %v, want [0]", dead)
	}
}

func TestSweepDeadRegistrationGrace(t *testing.T) {
	s := New(4)
	s.Register(1, info(1), t0)
	s.Register(2, info(2), t0.Add(8*time.Second))
	// Neither ever heartbeated. A grace cutoff later than 1's registration
	// but earlier than 2's evicts only 1: the forever-exemption is gone, but
	// a freshly registered worker still gets its grace window.
	now := t0.Add(10 * time.Second)
	dead := s.SweepDead(0, now, now, t0.Add(5*time.Second))
	if len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("SweepDead = %v, want [1] (grace expired for 1 only)", dead)
	}
	s.Remove(1) // the clearinghouse removes swept members
	// A heartbeat moves 2 under the normal regimes; the grace no longer
	// applies once HBSeen is set.
	s.Heartbeat(2, now)
	dead = s.SweepDead(0, now.Add(time.Minute), now.Add(30*time.Second), now.Add(50*time.Second))
	if len(dead) != 1 || dead[0] != 2 {
		t.Fatalf("SweepDead after heartbeat = %v, want [2] (fixed fallback)", dead)
	}
}

// TestPhiWarmupAndAdaptivity: phi is unavailable until phiMinSamples gaps
// have been observed, then scores silence relative to the member's own
// cadence — a slow-cadence member tolerates a silence that convicts a
// fast-cadence one.
func TestPhiWarmupAndAdaptivity(t *testing.T) {
	s := New(4)
	s.Register(1, info(1), t0)
	s.Register(2, info(2), t0)
	now := t0
	s.Heartbeat(1, now)
	s.Heartbeat(2, now)
	for i := 0; i < 16; i++ {
		now = now.Add(100 * time.Millisecond) // worker 1: 100 ms cadence
		s.Heartbeat(1, now)
		if i%10 == 9 {
			s.Heartbeat(2, now) // worker 2: 1 s cadence
		}
	}
	if _, warm := s.Phi(1, now); !warm {
		t.Fatal("worker 1 not warm after 16 regular gaps")
	}
	// Shortly after a beat both score near zero.
	if phi, _ := s.Phi(1, now.Add(50*time.Millisecond)); phi > 1 {
		t.Fatalf("phi(1) right after a beat = %v, want ~0", phi)
	}
	// One second of silence convicts the 100 ms-cadence member but is
	// within the 1 s-cadence member's normal rhythm.
	probe := now.Add(time.Second)
	phi1, warm1 := s.Phi(1, probe)
	phi2, warm2 := s.Phi(2, probe)
	if !warm1 {
		t.Fatal("worker 1 went cold")
	}
	if phi1 < 8 {
		t.Fatalf("phi(1) after 10x-cadence silence = %v, want >= 8", phi1)
	}
	if warm2 && phi2 >= 8 {
		t.Fatalf("phi(2) after 1x-cadence silence = %v, want < 8", phi2)
	}
	// An unknown member is never warm.
	if _, warm := s.Phi(99, probe); warm {
		t.Fatal("unknown member reported warm phi")
	}
}

// TestPhiSlack: the store-level acceptable-pause allowance is subtracted
// from elapsed silence before scoring.
func TestPhiSlack(t *testing.T) {
	s := New(2)
	s.Register(1, info(1), t0)
	now := t0
	s.Heartbeat(1, now)
	for i := 0; i < 8; i++ {
		now = now.Add(10 * time.Millisecond)
		s.Heartbeat(1, now)
	}
	probe := now.Add(300 * time.Millisecond)
	if phi, _ := s.Phi(1, probe); phi < 8 {
		t.Fatalf("phi without slack after 30x silence = %v, want >= 8", phi)
	}
	s.SetPhiSlack(time.Second)
	if phi, _ := s.Phi(1, probe); phi > 1 {
		t.Fatalf("phi with 1s slack = %v, want ~0 (silence inside the allowance)", phi)
	}
}

// TestSweepDeadPhi: a warm member is judged by phi, not the fixed cutoff; a
// cold member falls back to the fixed cutoff.
func TestSweepDeadPhi(t *testing.T) {
	s := New(4)
	s.Register(1, info(1), t0) // will warm up
	s.Register(2, info(2), t0) // stays cold (one beat, no gaps)
	now := t0
	s.Heartbeat(1, now)
	s.Heartbeat(2, now)
	for i := 0; i < 12; i++ {
		now = now.Add(50 * time.Millisecond)
		s.Heartbeat(1, now)
	}
	// Probe 2 s after 1's last beat — 40x its cadence, far past phi=8 —
	// with a fixed cutoff so lax neither member trips it. Only the warm
	// member is evicted: phi detects faster than the conservative fallback.
	probe := now.Add(2 * time.Second)
	laxCutoff := t0.Add(-time.Hour)
	dead := s.SweepDead(8, probe, laxCutoff, time.Time{})
	if len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("phi sweep = %v, want [1] (warm member by phi, cold member exempt)", dead)
	}
	// The cold member is still governed by the fixed cutoff.
	s2 := New(4)
	s2.Register(2, info(2), t0)
	s2.Heartbeat(2, t0)
	dead = s2.SweepDead(8, t0.Add(time.Minute), t0.Add(30*time.Second), time.Time{})
	if len(dead) != 1 || dead[0] != 2 {
		t.Fatalf("cold-member sweep = %v, want [2] (fixed fallback)", dead)
	}
	// Phis reports the warm scores for telemetry.
	rows := s.Phis(probe)
	var found bool
	for _, r := range rows {
		if r.Worker == 1 && r.Warm && r.Phi >= 8 {
			found = true
		}
	}
	if !found {
		t.Fatalf("Phis(%v) = %+v, want warm worker 1 with phi >= 8", probe, rows)
	}
}

// TestRestoreMemberColdHistory: journal-recovered members carry no gap
// history, so they are governed by the fixed fallback (no instant
// suspicion from a stale pre-outage cadence) yet remain sweepable.
func TestRestoreMemberColdHistory(t *testing.T) {
	for _, shards := range []int{1, 4, 64} {
		s := New(shards)
		s.RestoreMember(info(1), false, t0)
		if _, warm := s.Phi(1, t0.Add(time.Second)); warm {
			t.Fatalf("shards=%d: restored member has warm phi; recovery must cold-start history", shards)
		}
		// Sweepable by the fixed fallback immediately (HBSeen is set).
		dead := s.SweepDead(8, t0.Add(time.Minute), t0.Add(30*time.Second), time.Time{})
		if len(dead) != 1 || dead[0] != 1 {
			t.Fatalf("shards=%d: restored-member sweep = %v, want [1]", shards, dead)
		}
	}
}

func TestEvictReports(t *testing.T) {
	s := New(4)
	s.Register(1, info(1), t0)
	s.FoldReport(wire.StatReport{Worker: 1, Counters: []int64{1}}, t0)
	s.FoldReport(wire.StatReport{Worker: 2, Counters: []int64{1}}, t0) // never a member
	s.Register(3, info(3), t0)
	s.FoldReport(wire.StatReport{Worker: 3, Counters: []int64{1}}, t0)
	s.Depart(3, types.NoWorker)
	cutoff := t0.Add(time.Minute)
	if n := s.EvictReports(cutoff); n != 2 {
		t.Fatalf("evicted %d rows, want 2 (the non-member and the tombstone)", n)
	}
	reps := s.Reports()
	if len(reps) != 1 || reps[0].Rep.Worker != 1 {
		t.Fatalf("surviving reports = %v, want live member 1 only", reps)
	}
	// Fresh rows survive even for non-members (report may precede Register).
	s.FoldReport(wire.StatReport{Worker: 9, Counters: []int64{1}}, cutoff.Add(time.Second))
	if n := s.EvictReports(cutoff); n != 0 {
		t.Fatalf("evicted %d fresh rows, want 0", n)
	}
}

func TestEpochBaseRecovery(t *testing.T) {
	s := New(4)
	s.SetEpochBase(100)
	s.RestoreMember(info(1), false, t0)
	s.RestoreMember(info(2), true, t0)
	if e := s.Epoch(); e != 100 {
		t.Fatalf("epoch after restore = %d, want base 100 (restores do not bump)", e)
	}
	if got := s.LiveCount(); got != 1 {
		t.Fatalf("live after restore = %d, want 1", got)
	}
	m, _ := s.Member(1)
	if !m.HBSeen {
		t.Fatal("restored member not heartbeat-known; outage survivors must be sweepable")
	}
	s.Register(3, info(3), t0)
	if e := s.Epoch(); e != 101 {
		t.Fatalf("epoch after post-recovery insert = %d, want 101", e)
	}
}

// TestConcurrentFolds exercises reader/fold concurrency under -race: folds
// from many goroutines against merge reads and externally-serialized
// mutations.
func TestConcurrentFolds(t *testing.T) {
	s := New(8)
	for id := types.WorkerID(0); id < 32; id++ {
		s.Register(id, info(id), t0)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var b HotBatch
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				b.Reset()
				for j := 0; j < 16; j++ {
					id := types.WorkerID((g*16 + i + j) % 32)
					b.Beats = append(b.Beats, id)
					b.Reports = append(b.Reports, wire.StatReport{Worker: id, Counters: []int64{int64(i)}})
				}
				s.FoldHot(&b, t0.Add(time.Duration(i)))
			}
		}(g)
	}
	wg.Add(1)
	go func() { // one externally-serialized writer, as in the clearinghouse
		defer wg.Done()
		for i := 0; i < 200; i++ {
			id := types.WorkerID(32 + i%8)
			s.Register(id, info(id), t0)
			s.Depart(id, types.NoWorker)
		}
	}()
	for i := 0; i < 50; i++ {
		s.Members()
		s.Reports()
		s.Epoch()
		s.LiveCount()
		s.SweepDead(8, t0, t0.Add(-time.Hour), time.Time{})
	}
	close(stop)
	wg.Wait()
}

// BenchmarkFoldHot measures the batched hot path at several shard counts:
// each parallel worker folds a 64-entry heartbeat+report batch. On a
// multi-core runner, throughput scales near-linearly in shards until the
// cores run out; at GOMAXPROCS=1 the counts merely confirm that striping
// adds no overhead.
func BenchmarkFoldHot(b *testing.B) {
	for _, shards := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := New(shards)
			const pop = 4096
			for id := types.WorkerID(0); id < pop; id++ {
				s.Register(id, info(id), t0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				var hb HotBatch
				rng := rand.New(rand.NewSource(1))
				counters := []int64{1, 2, 3}
				for pb.Next() {
					hb.Reset()
					for j := 0; j < 64; j++ {
						id := types.WorkerID(rng.Intn(pop))
						if j%2 == 0 {
							hb.Beats = append(hb.Beats, id)
						} else {
							hb.Reports = append(hb.Reports, wire.StatReport{Worker: id, Counters: counters})
						}
					}
					s.FoldHot(&hb, t0)
				}
			})
		})
	}
}
