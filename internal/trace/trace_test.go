package trace

import (
	"strings"
	"sync"
	"testing"
	"time"

	"phish/internal/types"
)

func TestDisabledByDefault(t *testing.T) {
	var b Buffer
	b.Add(Event{Kind: EvSpawn})
	if b.Total() != 0 {
		t.Error("disabled buffer recorded an event")
	}
	if b.Enabled() {
		t.Error("zero buffer claims enabled")
	}
	var nilBuf *Buffer
	if nilBuf.Enabled() || nilBuf.Total() != 0 || nilBuf.Events() != nil {
		t.Error("nil buffer must be inert")
	}
}

func TestRecordAndReplay(t *testing.T) {
	b := NewBuffer(16)
	base := time.Now()
	for i := 0; i < 5; i++ {
		b.Add(Event{At: base.Add(time.Duration(i)), Worker: 1, Kind: EvExecute,
			Task: types.TaskID{Worker: 1, Seq: uint64(i + 1)}})
	}
	evs := b.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events", len(evs))
	}
	for i, e := range evs {
		if e.Task.Seq != uint64(i+1) {
			t.Errorf("event %d out of order: %v", i, e)
		}
	}
}

func TestRingOverwrite(t *testing.T) {
	b := NewBuffer(4)
	for i := 1; i <= 10; i++ {
		b.Add(Event{Worker: types.WorkerID(i), Kind: EvSpawn})
	}
	evs := b.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(evs))
	}
	if evs[0].Worker != 7 || evs[3].Worker != 10 {
		t.Errorf("ring kept wrong window: %v..%v", evs[0].Worker, evs[3].Worker)
	}
	if b.Total() != 10 {
		t.Errorf("total = %d, want 10", b.Total())
	}
}

func TestMergeOrdersByTime(t *testing.T) {
	a, b := NewBuffer(8), NewBuffer(8)
	base := time.Now()
	a.Add(Event{At: base.Add(2), Worker: 1, Kind: EvSpawn})
	b.Add(Event{At: base.Add(1), Worker: 2, Kind: EvSpawn})
	a.Add(Event{At: base.Add(4), Worker: 1, Kind: EvExecute})
	b.Add(Event{At: base.Add(3), Worker: 2, Kind: EvExecute})
	merged := Merge(a, b)
	for i := 1; i < len(merged); i++ {
		if merged[i].At.Before(merged[i-1].At) {
			t.Fatalf("merge out of order at %d", i)
		}
	}
	if len(merged) != 4 {
		t.Fatalf("merged %d events", len(merged))
	}
}

func TestRenderAndCounts(t *testing.T) {
	b := NewBuffer(8)
	b.Add(Event{Worker: 3, Kind: EvStealAdopt, Peer: 5, Note: "from tail"})
	b.Add(Event{Worker: 3, Kind: EvStealAdopt, Peer: 5})
	out := Render(b.Events())
	if !strings.Contains(out, "steal-adopt") || !strings.Contains(out, "peer=w5") {
		t.Errorf("render missing fields: %q", out)
	}
	if got := Counts(b.Events())[EvStealAdopt]; got != 2 {
		t.Errorf("counts = %d, want 2", got)
	}
}

func TestConcurrentAdd(t *testing.T) {
	b := NewBuffer(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Add(Event{Worker: types.WorkerID(g), Kind: EvSynch})
			}
		}(g)
	}
	wg.Wait()
	if b.Total() != 800 {
		t.Errorf("total = %d, want 800", b.Total())
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if !strings.HasPrefix(Kind(200).String(), "Kind(") {
		t.Error("unknown kind should fall back to numeric form")
	}
}
