// Package strata is the baseline runtime for the paper's Table 1: an
// analogue of the Strata scheduling library on the CM-5. It runs the same
// continuation-passing programs as Phish (package internal/core) but on a
// static set of processors sharing one address space:
//
//   - no clearinghouse, no membership protocol, no registration;
//   - thieves take tasks directly out of victims' deques under a lock
//     instead of exchanging steal-request/steal-reply messages;
//   - synchronizations are direct memory writes, never messages;
//   - no steal records, migration, or fault tolerance — the processor set
//     cannot change.
//
// The scheduling discipline itself (LIFO execution, FIFO steal, random
// victims) is identical, so the difference between the two runtimes on one
// processor is exactly the overhead the paper attributes to Phish
// "operating with a dynamic processor set while Strata operates with a
// static processor set".
package strata

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"phish/internal/core"
	"phish/internal/cputime"
	"phish/internal/deque"
	"phish/internal/model"
	"phish/internal/stats"
	"phish/internal/types"
)

// rootWorker is the pseudo-processor id the root task's continuation
// points at; a delivery there completes the run.
const rootWorker types.WorkerID = -1

// Config tunes the runtime; the discipline knobs reuse core's types so
// ablations configure both runtimes identically.
type Config struct {
	Seed       int64
	LocalOrder core.Order
	StealFrom  core.StealEnd
	Victim     core.VictimPolicy
	// Timeout bounds the run (default 5 minutes).
	Timeout time.Duration
}

// DefaultConfig is the paper's discipline.
func DefaultConfig() Config {
	return Config{Seed: 1, LocalOrder: core.LIFO, StealFrom: core.StealTail, Victim: core.RandomVictim}
}

type closure struct {
	id      types.TaskID
	fn      string
	args    []types.Value
	missing int32
	cont    types.Continuation
}

type proc struct {
	id       types.WorkerID
	rt       *Runtime
	mu       sync.Mutex
	dq       deque.Deque[*closure]
	waiting  map[uint64]*closure
	seq      uint64
	rng      *rand.Rand
	counters stats.Counters
	execNS   int64
	wallNS   int64
	fnCache  map[string]core.TaskFunc
	ctx      ctx
}

// Runtime is one Strata execution: a static set of P processors working
// on one program until the root result arrives.
type Runtime struct {
	prog  *core.Program
	cfg   Config
	procs []*proc

	doneCh chan struct{}
	doneMu sync.Mutex
	done   bool
	result types.Value

	outMu  sync.Mutex
	output []string
}

// Result is the outcome of a Strata run.
type Result struct {
	Value   types.Value
	Workers []stats.Snapshot
	Totals  stats.Snapshot
	Output  []string
	Elapsed time.Duration
}

// Run executes prog's root task on p static processors and blocks until
// the result is in.
func Run(prog *core.Program, rootFn string, rootArgs []types.Value, p int, cfg Config) (*Result, error) {
	if p <= 0 {
		p = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Minute
	}
	rt := &Runtime{prog: prog, cfg: cfg, doneCh: make(chan struct{})}
	for i := 0; i < p; i++ {
		rt.procs = append(rt.procs, &proc{
			id:      types.WorkerID(i),
			rt:      rt,
			waiting: make(map[uint64]*closure),
			rng:     rand.New(rand.NewSource(cfg.Seed + int64(i)*0x9e3779b9)),
			fnCache: make(map[string]core.TaskFunc),
		})
	}
	// Seed the root on processor 0.
	p0 := rt.procs[0]
	p0.spawnLocked(rootFn, types.Continuation{Task: types.TaskID{Worker: rootWorker, Seq: 1}}, rootArgs)

	start := time.Now()
	var wg sync.WaitGroup
	for _, pr := range rt.procs {
		wg.Add(1)
		go func(pr *proc) {
			defer wg.Done()
			pr.loop()
		}(pr)
	}

	select {
	case <-rt.doneCh:
	case <-time.After(cfg.Timeout):
		rt.complete(nil) // unstick the processors
		wg.Wait()
		return nil, fmt.Errorf("strata: %s(%s): no result after %v", prog.Name, rootFn, cfg.Timeout)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &Result{Elapsed: elapsed, Output: rt.output}
	rt.doneMu.Lock()
	res.Value = rt.result
	rt.doneMu.Unlock()
	for _, pr := range rt.procs {
		s := pr.counters.Snapshot()
		s.Worker = int(pr.id)
		s.ExecTime = time.Duration(pr.execNS)
		s.WallTime = time.Duration(pr.wallNS)
		res.Workers = append(res.Workers, s)
	}
	res.Totals = stats.JobTotals(res.Workers)
	return res, nil
}

func (rt *Runtime) complete(v types.Value) {
	rt.doneMu.Lock()
	defer rt.doneMu.Unlock()
	if rt.done {
		return
	}
	rt.done = true
	rt.result = v
	close(rt.doneCh)
}

func (rt *Runtime) finished() bool {
	select {
	case <-rt.doneCh:
		return true
	default:
		return false
	}
}

func (p *proc) loop() {
	// Own an OS thread so execution time can be accounted as CPU time
	// (the participant's "own processor"); see internal/cputime.
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	cpu0, cpuOK := cputime.Thread()
	start := time.Now()
	defer func() {
		p.wallNS = int64(time.Since(start))
		p.execNS = p.wallNS
		if cpuOK {
			if cpu1, ok := cputime.Thread(); ok {
				p.execNS = int64(cpu1 - cpu0)
			}
		}
	}()
	idle := 0
	for !p.rt.finished() {
		cl := p.popLocal()
		if cl == nil {
			cl = p.stealOnce()
		}
		if cl == nil {
			// Nothing anywhere right now; yield briefly and retry. The
			// CM-5's processors would poll the network here.
			idle++
			if idle > 64 {
				time.Sleep(20 * time.Microsecond)
			} else {
				runtime.Gosched()
			}
			continue
		}
		idle = 0
		p.execute(cl)
	}
}

func (p *proc) popLocal() *closure {
	p.mu.Lock()
	defer p.mu.Unlock()
	var cl *closure
	var ok bool
	if p.rt.cfg.LocalOrder == core.LIFO {
		cl, ok = p.dq.PopHead()
	} else {
		cl, ok = p.dq.PopTail()
	}
	if !ok {
		return nil
	}
	return cl
}

func (p *proc) stealOnce() *closure {
	n := len(p.rt.procs)
	if n < 2 {
		return nil
	}
	var victim *proc
	switch p.rt.cfg.Victim {
	case core.RoundRobinVictim:
		victim = p.rt.procs[(int(p.id)+1+int(p.seq))%n]
		if victim == p {
			victim = p.rt.procs[(int(p.id)+2+int(p.seq))%n]
		}
	default:
		for {
			victim = p.rt.procs[p.rng.Intn(n)]
			if victim != p {
				break
			}
		}
	}
	p.counters.StealAttempts.Add(1)
	victim.mu.Lock()
	var cl *closure
	var ok bool
	if p.rt.cfg.StealFrom == core.StealTail {
		cl, ok = victim.dq.PopTail()
	} else {
		cl, ok = victim.dq.PopHead()
	}
	victim.mu.Unlock()
	if !ok {
		p.counters.FailedSteals.Add(1)
		return nil
	}
	victim.counters.TaskRetired()
	p.counters.TaskAdopted()
	p.counters.TasksStolen.Add(1)
	return cl
}

func (p *proc) execute(cl *closure) {
	p.counters.TasksExecuted.Add(1)
	fn, ok := p.fnCache[cl.fn]
	if !ok {
		fn = p.rt.prog.Funcs.MustLookup(cl.fn)
		p.fnCache[cl.fn] = fn
	}
	p.ctx.p = p
	p.ctx.c = cl
	fn(&p.ctx)
	p.ctx.c = nil
	p.counters.TaskRetired()
}

// spawnLocked creates a ready closure on p (callable before the loops
// start and from p's own executing task).
func (p *proc) spawnLocked(fn string, cont types.Continuation, args []types.Value) {
	p.seq++
	cl := &closure{id: types.TaskID{Worker: p.id, Seq: p.seq}, fn: fn, args: args, cont: cont}
	p.counters.TaskCreated()
	p.mu.Lock()
	p.dq.PushHead(cl)
	p.mu.Unlock()
}

// deliver routes a result: to the runtime's root slot or into a waiting
// closure on the owning processor (a direct memory write — the shared
// address space is the whole point of this baseline).
func (p *proc) deliver(cont types.Continuation, v types.Value, countSynch bool) {
	if cont.None() {
		return
	}
	if cont.Task.Worker == rootWorker {
		p.rt.complete(v)
		return
	}
	owner := p.rt.procs[cont.Task.Worker]
	owner.mu.Lock()
	cl, ok := owner.waiting[cont.Task.Seq]
	if !ok || int(cont.Slot) >= len(cl.args) || cl.args[cont.Slot] != nil {
		owner.mu.Unlock()
		return // dropped; cannot happen in fault-free strata
	}
	cl.args[cont.Slot] = v
	cl.missing--
	readied := cl.missing == 0
	if readied {
		delete(owner.waiting, cont.Task.Seq)
		owner.dq.PushHead(cl)
	}
	owner.mu.Unlock()
	if countSynch {
		owner.counters.Synchronizations.Add(1)
		if owner != p {
			owner.counters.NonLocalSynchs.Add(1)
		}
	}
}

// ctx implements model.Ctx on the Strata runtime.
type ctx struct {
	p *proc
	c *closure
}

var _ model.Ctx = (*ctx)(nil)

func (t *ctx) NArgs() int                               { return len(t.c.args) }
func (t *ctx) Arg(i int) types.Value                    { return t.c.args[i] }
func (t *ctx) Worker() types.WorkerID                   { return t.p.id }
func (t *ctx) Return(v types.Value)                     { t.p.deliver(t.c.cont, v, true) }
func (t *ctx) Send(c types.Continuation, v types.Value) { t.p.deliver(c, v, true) }

func (t *ctx) Int(i int) int64 {
	switch v := t.c.args[i].(type) {
	case int64:
		return v
	case int:
		return int64(v)
	case int32:
		return int64(v)
	default:
		panic(fmt.Sprintf("strata: task %s arg %d is %T, not an integer", t.c.fn, i, v))
	}
}

func (t *ctx) Float(i int) float64 {
	switch v := t.c.args[i].(type) {
	case float64:
		return v
	case int64:
		return float64(v)
	default:
		panic(fmt.Sprintf("strata: task %s arg %d is %T, not a float", t.c.fn, i, v))
	}
}

func (t *ctx) String(i int) string {
	s, ok := t.c.args[i].(string)
	if !ok {
		panic(fmt.Sprintf("strata: task %s arg %d is %T, not a string", t.c.fn, i, t.c.args[i]))
	}
	return s
}

type succ struct {
	id types.TaskID
}

func (s succ) Cont(slot int) types.Continuation {
	return types.Continuation{Task: s.id, Slot: int32(slot)}
}
func (s succ) Task() types.TaskID { return s.id }

func (t *ctx) Successor(fn string, nslots int) model.Succ {
	return t.SuccessorCont(fn, nslots, t.c.cont)
}

func (t *ctx) SuccessorCont(fn string, nslots int, cont types.Continuation) model.Succ {
	if nslots <= 0 {
		panic("strata: successor needs at least one slot")
	}
	p := t.p
	p.seq++
	cl := &closure{
		id:      types.TaskID{Worker: p.id, Seq: p.seq},
		fn:      fn,
		args:    make([]types.Value, nslots),
		missing: int32(nslots),
		cont:    cont,
	}
	p.counters.TaskCreated()
	p.mu.Lock()
	p.waiting[cl.id.Seq] = cl
	p.mu.Unlock()
	return succ{id: cl.id}
}

func (t *ctx) Preset(s model.Succ, slot int, v types.Value) {
	if v == nil {
		panic("strata: nil task argument")
	}
	t.p.deliver(types.Continuation{Task: s.Task(), Slot: int32(slot)}, v, false)
}

func (t *ctx) Spawn(fn string, cont types.Continuation, args ...types.Value) {
	for i, a := range args {
		if a == nil {
			panic(fmt.Sprintf("strata: spawn %s: nil argument %d", fn, i))
		}
	}
	t.p.spawnLocked(fn, cont, args)
}

func (t *ctx) Print(format string, args ...any) {
	t.p.rt.outMu.Lock()
	t.p.rt.output = append(t.p.rt.output, fmt.Sprintf(format, args...))
	t.p.rt.outMu.Unlock()
}

// Checkpoint and Yield are the no-preemption degenerate case of the
// checkpoint surface: Strata procs are never reclaimed, so there is never
// a prior blob and never a reason to vacate the processor.
func (t *ctx) Checkpoint() []byte     { return nil }
func (t *ctx) Yield(blob []byte) bool { return false }
