// Package nqueens is the paper's second toy application: counting, by
// backtrack search, the number of ways to place n queens on an n×n board
// so that no queen attacks another. Backtrack search is the prototypical
// dynamic-parallelism workload (the paper credits DIB, a distributed
// backtracking system, as the inspiration for idle-initiated scheduling).
//
// The parallel version spawns a task per feasible queen placement down to
// SpawnDepth rows and solves the remaining subboard serially inside the
// leaf task — the coarse grain that gives nqueens its near-1.0 serial
// slowdown in Table 1.
package nqueens

import (
	"sync"

	"phish"
)

// SpawnDepth is how many rows of the board are explored with parallel
// tasks before leaf tasks switch to the serial solver.
const SpawnDepth = 3

// Serial is the best serial implementation: bitmask backtracking with no
// task packaging.
func Serial(n int) int64 {
	if n <= 0 {
		return 1 // the empty placement
	}
	return serialFrom(n, 0, 0, 0, 0)
}

// serialFrom counts completions from a partial placement. cols, d1, d2 are
// the attacked-column and attacked-diagonal bitmasks at row row.
func serialFrom(n, row int, cols, d1, d2 uint64) int64 {
	if row == n {
		return 1
	}
	var count int64
	full := uint64(1)<<uint(n) - 1
	free := full &^ (cols | d1 | d2)
	for free != 0 {
		bit := free & (-free)
		free ^= bit
		count += serialFrom(n, row+1, cols|bit, (d1|bit)<<1, (d2|bit)>>1)
	}
	return count
}

func nqTask(c phish.TaskCtx) {
	n := int(c.Int(0))
	row := int(c.Int(1))
	cols := uint64(c.Int(2))
	d1 := uint64(c.Int(3))
	d2 := uint64(c.Int(4))

	if row == n {
		c.Return(int64(1))
		return
	}
	if row >= SpawnDepth {
		c.Return(serialFrom(n, row, cols, d1, d2))
		return
	}
	full := uint64(1)<<uint(n) - 1
	free := full &^ (cols | d1 | d2)
	if free == 0 {
		c.Return(int64(0))
		return
	}
	// One child per feasible placement; a sum successor joins them.
	nkids := 0
	for f := free; f != 0; f &= f - 1 {
		nkids++
	}
	s := c.Successor("nqueens.sum", nkids)
	slot := 0
	for free != 0 {
		bit := free & (-free)
		free ^= bit
		c.Spawn("nqueens", s.Cont(slot),
			int64(n), int64(row+1), int64(cols|bit), int64((d1|bit)<<1), int64((d2|bit)>>1))
		slot++
	}
}

func sumTask(c phish.TaskCtx) {
	var total int64
	for i := 0; i < c.NArgs(); i++ {
		total += c.Int(i)
	}
	c.Return(total)
}

var (
	once sync.Once
	prog *phish.Program
)

// Program returns the nqueens parallel program.
func Program() *phish.Program {
	once.Do(func() {
		prog = phish.NewProgram("nqueens")
		prog.Register("nqueens", nqTask)
		prog.Register("nqueens.sum", sumTask)
	})
	return prog
}

// Root names the program's root task function.
const Root = "nqueens"

// RootArgs builds the root argument list for an n×n board.
func RootArgs(n int) []phish.Value {
	return phish.Args(int64(n), int64(0), int64(0), int64(0), int64(0))
}
