// The seeded scenario DSL: a Spec describes a fleet of virtual
// workstations — a weighted mixture of profiles giving each station an
// owner-activity schedule (diurnal shifts, fractional availability,
// busy/idle alternation), a speed curve (stragglers, degradation ramps),
// and optional correlated-failure waves and gray-failure windows. Build
// expands the Spec deterministically: the same seed always yields the same
// fleet, so a chaos benchmark and its baseline run against identical
// weather. Everything is evaluated lazily against a caller-supplied time,
// so thousands of stations can be driven on a virtual clock without any
// per-station goroutines.
package idlesim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Owner is the idleness query (jobmanager.Policy's shape, restated here so
// the simulator does not depend on the scheduler).
type Owner interface {
	Idle(now time.Time) bool
}

// Curve is a time-varying scalar — speed multipliers, load levels,
// latency scale factors.
type Curve interface {
	At(t time.Time) float64
}

// Const is a flat curve.
type Const float64

// At implements Curve.
func (c Const) At(time.Time) float64 { return float64(c) }

// Ramp interpolates linearly from From to To over [Start, Start+Dur],
// holding flat on both sides. A gray failure's latency or slowdown ramp.
type Ramp struct {
	From, To float64
	Start    time.Time
	Dur      time.Duration
}

// At implements Curve.
func (r Ramp) At(t time.Time) float64 {
	if r.Dur <= 0 || !t.After(r.Start) {
		if r.Dur <= 0 && t.After(r.Start) {
			return r.To
		}
		return r.From
	}
	f := float64(t.Sub(r.Start)) / float64(r.Dur)
	if f >= 1 {
		return r.To
	}
	return r.From + f*(r.To-r.From)
}

// Diurnal is an owner on a repeating shift: active (workstation busy) for
// Busy out of every Period, starting each period at Phase offset. With
// Period = 24 h and Busy = 8 h it is the canonical office day; a fleet
// built with jittered phases models timezones and flexible hours.
type Diurnal struct {
	Start  time.Time
	Period time.Duration
	Busy   time.Duration
	Phase  time.Duration
}

// Idle implements Owner: the owner is away outside their busy window.
func (d Diurnal) Idle(t time.Time) bool {
	if d.Period <= 0 {
		return true
	}
	off := (t.Sub(d.Start) + d.Phase) % d.Period
	if off < 0 {
		off += d.Period
	}
	return off >= d.Busy
}

// Fractional is an owner tuned to a target availability: the workstation
// is idle Avail of the time in alternating seeded stretches of roughly
// Period. It reuses the Activity generator so the busy/idle boundaries are
// irregular, not a square wave.
func Fractional(seed int64, start time.Time, avail float64, period time.Duration) Owner {
	if avail <= 0 {
		return Never{}
	}
	if avail >= 1 {
		return Always{}
	}
	busy := time.Duration((1 - avail) * float64(period))
	idle := time.Duration(avail * float64(period))
	return NewActivity(seed, start, busy/2, busy+busy/2, idle/2, idle+idle/2, true)
}

// Profile is one kind of workstation in the mixture.
type Profile struct {
	// Name labels the profile in Station rows and reports.
	Name string
	// Weight is the profile's share of the fleet (relative to the sum of
	// all weights; zero-weight profiles get no stations).
	Weight float64

	// Owner activity: exactly one of the following shapes.
	// Avail > 0 selects fractional availability with AvailPeriod stretches.
	Avail       float64
	AvailPeriod time.Duration
	// DiurnalPeriod > 0 selects a diurnal owner (Busy of every Period,
	// phase jittered per station up to PhaseJitter).
	DiurnalPeriod time.Duration
	DiurnalBusy   time.Duration
	PhaseJitter   time.Duration
	// Neither set: the station is always idle (a dedicated machine).

	// Speed is the station's work-rate multiplier (1 = nominal; a
	// straggler profile sets, say, 0.3). SpeedJitter spreads stations
	// uniformly ±SpeedJitter around Speed. Zero Speed means 1.
	Speed       float64
	SpeedJitter float64
	// Degrade, when set, multiplies the speed curve by a ramp from 1 down
	// to DegradeTo starting at a seeded point in [0, DegradeBy) after the
	// fleet start — the compute half of a gray failure.
	DegradeTo float64
	DegradeBy time.Duration
	DegradeIn time.Duration

	// Gray, when true, marks the station for a network gray-failure window
	// (latency ramp and/or asymmetric loss); the driver wires the marked
	// stations into the transport's fault plan.
	Gray bool
}

// Wave is one correlated-failure event: at Start+At, a seeded Frac of the
// fleet (optionally restricted to one profile) fails together — a rack
// power loss, a switch dying, a bad deploy.
type Wave struct {
	At      time.Duration
	Frac    float64
	Profile string // empty: drawn from the whole fleet
	// Kind is interpreted by the driver ("crash", "partition", ...).
	Kind string
}

// Spec is the scenario: a fleet size, a profile mixture, and failure
// waves. The zero Spec is not useful; N and at least one profile are
// required.
type Spec struct {
	Seed     int64
	N        int
	Profiles []Profile
	Waves    []Wave
}

// Station is one expanded virtual workstation.
type Station struct {
	Index   int
	Profile string
	Owner   Owner
	Speed   Curve
	Gray    bool
}

// product multiplies two curves.
type product struct{ a, b Curve }

func (p product) At(t time.Time) float64 { return p.a.At(t) * p.b.At(t) }

// Build expands the Spec into its fleet, deterministically in Seed. Station
// i's owner schedule, speed, degradation onset, and profile assignment
// depend only on (Seed, i) and the profile list — not on map iteration or
// wall time.
func (s *Spec) Build(start time.Time) ([]Station, error) {
	if s.N <= 0 {
		return nil, fmt.Errorf("idlesim: scenario needs N > 0")
	}
	if len(s.Profiles) == 0 {
		return nil, fmt.Errorf("idlesim: scenario needs at least one profile")
	}
	var totalW float64
	for _, p := range s.Profiles {
		if p.Weight < 0 {
			return nil, fmt.Errorf("idlesim: profile %q has negative weight", p.Name)
		}
		totalW += p.Weight
	}
	if totalW <= 0 {
		return nil, fmt.Errorf("idlesim: profile weights sum to zero")
	}
	rng := rand.New(rand.NewSource(s.Seed))
	out := make([]Station, s.N)
	for i := range out {
		// Weighted profile draw.
		roll := rng.Float64() * totalW
		p := s.Profiles[len(s.Profiles)-1]
		for _, cand := range s.Profiles {
			if roll < cand.Weight {
				p = cand
				break
			}
			roll -= cand.Weight
		}
		st := Station{Index: i, Profile: p.Name, Gray: p.Gray}

		// Owner schedule. Each station gets a private seed so its schedule
		// is independent of its neighbors'.
		ownerSeed := s.Seed ^ int64(i)*-0x61C8864680B583EB
		switch {
		case p.Avail > 0:
			period := p.AvailPeriod
			if period <= 0 {
				period = time.Hour
			}
			st.Owner = Fractional(ownerSeed, start, p.Avail, period)
		case p.DiurnalPeriod > 0:
			var phase time.Duration
			if p.PhaseJitter > 0 {
				phase = time.Duration(rng.Int63n(int64(p.PhaseJitter)))
			}
			st.Owner = Diurnal{Start: start, Period: p.DiurnalPeriod, Busy: p.DiurnalBusy, Phase: phase}
		default:
			st.Owner = Always{}
		}

		// Speed curve.
		speed := p.Speed
		if speed <= 0 {
			speed = 1
		}
		if p.SpeedJitter > 0 {
			speed += (2*rng.Float64() - 1) * p.SpeedJitter
			if speed < 0.05 {
				speed = 0.05
			}
		}
		st.Speed = Const(speed)
		if p.DegradeTo > 0 && p.DegradeTo < 1 {
			onset := time.Duration(0)
			if p.DegradeIn > 0 {
				onset = time.Duration(rng.Int63n(int64(p.DegradeIn)))
			}
			by := p.DegradeBy
			if by <= 0 {
				by = time.Minute
			}
			st.Speed = product{st.Speed, Ramp{From: 1, To: p.DegradeTo, Start: start.Add(onset), Dur: by}}
		}
		out[i] = st
	}
	return out, nil
}

// WaveEvent is one expanded correlated failure.
type WaveEvent struct {
	At       time.Time
	Kind     string
	Stations []int
}

// ExpandWaves picks each wave's victims deterministically in Seed (a draw
// stream separate from Build's, so adding a wave never reshuffles the
// fleet).
func (s *Spec) ExpandWaves(start time.Time, stations []Station) []WaveEvent {
	rng := rand.New(rand.NewSource(s.Seed ^ 0x57A17))
	out := make([]WaveEvent, 0, len(s.Waves))
	for _, w := range s.Waves {
		var pool []int
		for _, st := range stations {
			if w.Profile == "" || st.Profile == w.Profile {
				pool = append(pool, st.Index)
			}
		}
		n := int(w.Frac*float64(len(pool)) + 0.5)
		if n > len(pool) {
			n = len(pool)
		}
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		victims := append([]int(nil), pool[:n]...)
		sort.Ints(victims)
		out = append(out, WaveEvent{At: start.Add(w.At), Kind: w.Kind, Stations: victims})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// CountIdle evaluates the fleet at one instant: how many stations are
// available (owner away). With a virtual clock this samples thousands of
// stations per call without a single goroutine.
func CountIdle(stations []Station, t time.Time) int {
	n := 0
	for i := range stations {
		if stations[i].Owner.Idle(t) {
			n++
		}
	}
	return n
}
