// Command phishjobq runs the PhishJobQ: the macro-level scheduler's job
// pool. Exactly one instance serves a Phish network; PhishJobManagers on
// idle workstations request jobs from it, and the phish launcher submits
// jobs to it.
//
// Usage:
//
//	phishjobq [-addr :7070]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"phish/internal/jobq"
)

func main() {
	addr := flag.String("addr", ":7070", "TCP address to listen on")
	flag.Parse()

	pool := jobq.NewPool()
	srv, err := jobq.NewServer(pool, *addr)
	if err != nil {
		log.Fatalf("phishjobq: %v", err)
	}
	fmt.Printf("phishjobq: serving the job pool on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("phishjobq: shutting down")
	if err := srv.Close(); err != nil {
		log.Fatalf("phishjobq: close: %v", err)
	}
}
