// Command phish launches a parallel job the way the paper describes:
// "simply typing `ray my-scene` ... starts up the Clearinghouse and the
// first worker on the local workstation, so the computation begins right
// away. Also by default, it automatically submits the job to the
// PhishJobQ. Thus, as other workstations become idle, they automatically
// begin working on the ray-tracing job."
//
// Usage:
//
//	phish [-jobq host:7070] [-workers 4] [-out img.ppm] <program> [args...]
//
// Examples:
//
//	phish ray default 320 240        # trace the default scene locally
//	phish -jobq :7070 pfold 18       # fold and let the network pile on
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"phish/internal/apps"
	"phish/internal/apps/ray"
	"phish/internal/clearinghouse"
	"phish/internal/clock"
	"phish/internal/core"
	"phish/internal/jobq"
	"phish/internal/phishnet"
	"phish/internal/types"
	"phish/internal/wire"
)

func main() {
	jobqAddr := flag.String("jobq", "", "PhishJobQ address to submit the job to (empty = run purely locally)")
	chAddr := flag.String("ch-addr", ":0", "UDP address for the clearinghouse")
	workers := flag.Int("workers", 1, "local workers to start immediately")
	out := flag.String("out", "", "write a ray image result to this PPM file")
	timeout := flag.Duration("timeout", 0, "give up after this long (0 = wait forever)")
	stats := flag.Bool("stats", false, "print per-worker scheduling statistics at the end")
	ckptFile := flag.String("checkpoint", "", "periodically checkpoint the job to this file")
	ckptEvery := flag.Duration("checkpoint-every", 30*time.Second, "checkpoint interval")
	restore := flag.String("restore", "", "resume the job from this checkpoint file instead of starting fresh")
	flag.Usage = func() {
		fmt.Println("usage: phish [flags] <program> [args...]\nprograms:")
		fmt.Print(apps.Usage())
		flag.PrintDefaults()
	}
	flag.Parse()
	apps.RegisterAll()

	var cp *clearinghouse.JobCheckpoint
	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			log.Fatalf("phish: %v", err)
		}
		var rerr error
		cp, rerr = clearinghouse.ReadCheckpoint(f)
		f.Close()
		if rerr != nil {
			log.Fatalf("phish: %v", rerr)
		}
	} else if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	var app apps.App
	var rootArgs []types.Value
	var err error
	if cp != nil {
		app, err = apps.Lookup(cp.Spec.Program)
		if err != nil {
			log.Fatalf("phish: checkpointed program: %v", err)
		}
	} else {
		app, err = apps.Lookup(flag.Arg(0))
		if err != nil {
			log.Fatalf("phish: %v", err)
		}
		rootArgs, err = app.ParseArgs(flag.Args()[1:])
		if err != nil {
			log.Fatalf("phish: %v", err)
		}
	}

	// Start the clearinghouse on this workstation.
	jobID := types.JobID(time.Now().UnixNano()&0x7fffffff | 1)
	if cp != nil {
		jobID = cp.Spec.ID
	}
	chConn, err := phishnet.ListenUDP(jobID, types.ClearinghouseID, *chAddr)
	if err != nil {
		log.Fatalf("phish: %v", err)
	}
	spec := wire.JobSpec{
		ID:       jobID,
		Name:     app.Name,
		Program:  app.Name,
		RootFn:   app.Root,
		RootArgs: rootArgs,
		CHAddr:   chConn.LocalAddr(),
	}
	chCfg := clearinghouse.DefaultConfig()
	chCfg.UpdateEvery = 15 * time.Second
	chCfg.HeartbeatTimeout = 30 * time.Second
	var ch *clearinghouse.Clearinghouse
	if cp != nil {
		cp.Spec.CHAddr = chConn.LocalAddr()
		spec = cp.Spec
		ch = clearinghouse.NewFromCheckpoint(cp, chConn, chCfg)
		fmt.Printf("phish: resuming job %d (%s) from %s (%d state bundles)\n",
			spec.ID, spec.Name, *restore, len(cp.States))
	} else {
		ch = clearinghouse.New(spec, chConn, chCfg)
	}
	go ch.Run()
	defer ch.Stop()

	// Periodic checkpointing.
	if *ckptFile != "" {
		go func() {
			for {
				time.Sleep(*ckptEvery)
				if ch.Done() {
					return
				}
				snap, err := ch.Checkpoint(time.Minute)
				if err != nil {
					log.Printf("phish: checkpoint skipped: %v", err)
					continue
				}
				tmp := *ckptFile + ".tmp"
				f, err := os.Create(tmp)
				if err != nil {
					log.Printf("phish: checkpoint: %v", err)
					continue
				}
				werr := clearinghouse.WriteCheckpoint(f, snap)
				cerr := f.Close()
				if werr != nil || cerr != nil {
					log.Printf("phish: checkpoint write failed: %v %v", werr, cerr)
					continue
				}
				if err := os.Rename(tmp, *ckptFile); err != nil {
					log.Printf("phish: checkpoint rename: %v", err)
					continue
				}
				fmt.Printf("phish: checkpointed %d participants to %s\n", len(snap.States), *ckptFile)
			}
		}()
	}

	// Submit to the PhishJobQ so idle workstations join.
	if *jobqAddr != "" {
		cli := jobq.NewClient(*jobqAddr)
		id, err := cli.Submit(spec)
		if err != nil {
			log.Fatalf("phish: submit: %v", err)
		}
		defer func() {
			_ = cli.Done(id)
			_ = cli.Close()
		}()
		fmt.Printf("phish: job %d submitted to %s\n", id, *jobqAddr)
	}

	// Start the first worker(s) locally — the computation begins right
	// away.
	prog, err := core.LookupProgram(app.Name)
	if err != nil {
		log.Fatalf("phish: %v", err)
	}
	cfg := core.DefaultConfig()
	cfg.HeartbeatEvery = 5 * time.Second
	cfg.StealTimeout = time.Second
	cfg.StealBackoff = 5 * time.Millisecond
	var wg sync.WaitGroup
	locals := make([]*core.Worker, 0, *workers)
	// Restored workers take ids clear of anything a previous incarnation
	// could have used, so checkpoint bundles never collide with them.
	idBase := 0
	if cp != nil {
		idBase = 1 << 30
	}
	for i := 0; i < *workers; i++ {
		conn, err := phishnet.ListenUDP(jobID, types.WorkerID(idBase+i), ":0")
		if err != nil {
			log.Fatalf("phish: %v", err)
		}
		conn.SetPeer(types.ClearinghouseID, chConn.LocalAddr())
		w := core.NewWorker(jobID, types.WorkerID(idBase+i), prog, conn, cfg, clock.System)
		locals = append(locals, w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run()
		}()
	}

	fmt.Printf("phish: running %s (clearinghouse %s, %d local workers)\n",
		app.Name, chConn.LocalAddr(), *workers)
	start := time.Now()
	v, err := ch.WaitResult(*timeout)
	if err != nil {
		log.Fatalf("phish: %v", err)
	}
	wg.Wait()
	fmt.Printf("phish: done in %v\n", time.Since(start).Round(time.Millisecond))
	if o := ch.Output(); o != "" {
		fmt.Print(o)
	}
	if *stats {
		for _, w := range locals {
			fmt.Printf("  worker %d: %v\n", w.ID(), w.Stats())
		}
	}

	if img, ok := v.([]byte); ok && *out != "" {
		w, h := rayDims(rootArgs)
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("phish: %v", err)
		}
		defer f.Close()
		if err := ray.WritePPM(f, img, w, h); err != nil {
			log.Fatalf("phish: %v", err)
		}
		fmt.Printf("phish: wrote %s (%dx%d)\n", *out, w, h)
		return
	}
	fmt.Println(app.Render(v))
}

// rayDims extracts width/height from ray root args (scene, w, h, ...).
func rayDims(args []types.Value) (int, int) {
	if len(args) >= 3 {
		w, _ := args[1].(int64)
		h, _ := args[2].(int64)
		return int(w), int(h)
	}
	return 0, 0
}
