package phish_test

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"phish/internal/apps/pfold"
	"phish/internal/clearinghouse"
	"phish/internal/clock"
	"phish/internal/core"
	"phish/internal/phishnet"
	"phish/internal/types"
	"phish/internal/wire"
)

// TestCheckpointRestoreOverUDP checkpoints a pfold run over real UDP
// sockets, kills everything, and resumes on fresh endpoints — the binary
// -checkpoint/-restore path, in-process so it can be dissected.
func TestCheckpointRestoreOverUDP(t *testing.T) {
	const jobID types.JobID = 3
	spec := wire.JobSpec{ID: jobID, Name: "pfold", Program: "pfold",
		RootFn: pfold.Root, RootArgs: pfold.RootArgs(14, 3)}
	want := pfold.Serial(14)

	chConn, err := phishnet.ListenUDP(jobID, types.ClearinghouseID, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	chCfg := clearinghouse.DefaultConfig()
	chCfg.UpdateEvery = 100 * time.Millisecond
	ch := clearinghouse.New(spec, chConn, chCfg)
	go ch.Run()

	cfg := core.DefaultConfig()
	cfg.StealTimeout = 200 * time.Millisecond
	cfg.StealBackoff = time.Millisecond

	var wg sync.WaitGroup
	workers := make([]*core.Worker, 2)
	for i := range workers {
		conn, err := phishnet.ListenUDP(jobID, types.WorkerID(i), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		conn.SetPeer(types.ClearinghouseID, chConn.LocalAddr())
		workers[i] = core.NewWorker(jobID, types.WorkerID(i), pfold.Program(), conn, cfg, clock.System)
		wg.Add(1)
		go func(w *core.Worker) { defer wg.Done(); _ = w.Run() }(workers[i])
	}

	// Mimic the binary's periodic loop: checkpoint, resume, keep
	// computing, checkpoint again; kill after the second one.
	time.Sleep(60 * time.Millisecond) // let it get going
	if _, err := ch.Checkpoint(30 * time.Second); err != nil {
		t.Fatalf("checkpoint 1: %v", err)
	}
	time.Sleep(60 * time.Millisecond)
	cp, err := ch.Checkpoint(30 * time.Second)
	if err != nil {
		t.Fatalf("checkpoint 2: %v", err)
	}
	time.Sleep(30 * time.Millisecond) // job progresses past the snapshot
	if ch.Done() {
		t.Skip("job finished before checkpoint")
	}
	var execA int64
	for _, w := range workers {
		execA += w.Stats().TasksExecuted
	}
	for _, w := range workers {
		w.Crash()
	}
	wg.Wait()
	ch.Stop()
	chConn.Close()

	// Serialize/deserialize like the file on disk.
	var buf bytes.Buffer
	if err := clearinghouse.WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	cp, err = clearinghouse.ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Resume on fresh UDP endpoints with fresh ids.
	chConn2, err := phishnet.ListenUDP(jobID, types.ClearinghouseID, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ch2 := clearinghouse.NewFromCheckpoint(cp, chConn2, chCfg)
	go ch2.Run()
	defer ch2.Stop()
	workers2 := make([]*core.Worker, 2)
	var wg2 sync.WaitGroup
	for i := range workers2 {
		conn, err := phishnet.ListenUDP(jobID, types.WorkerID(100+i), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		conn.SetPeer(types.ClearinghouseID, chConn2.LocalAddr())
		workers2[i] = core.NewWorker(jobID, types.WorkerID(100+i), pfold.Program(), conn, cfg, clock.System)
		wg2.Add(1)
		go func(w *core.Worker) { defer wg2.Done(); _ = w.Run() }(workers2[i])
	}
	v, err := ch2.WaitResult(60 * time.Second)
	if err != nil {
		for _, w := range workers2 {
			w.Crash()
		}
		wg2.Wait()
		fmt.Println(ch2.DebugMembers())
		for _, w := range workers2 {
			fmt.Println(w.DebugDump())
		}
		t.Fatalf("restored job hung: %v", err)
	}
	wg2.Wait()
	got := v.([]int64)
	if !reflect.DeepEqual(got, want) {
		var gotN, wantN int64
		for _, x := range got {
			gotN += x
		}
		for _, x := range want {
			wantN += x
		}
		var execB, orphB, redoB int64
		for _, w := range workers2 {
			s := w.Stats()
			execB += s.TasksExecuted
			orphB += s.Orphans
			redoB += s.TasksRedone
		}
		t.Fatalf("restored histogram wrong: got %d foldings want %d (execA=%d execB=%d orphans=%d redone=%d)",
			gotN, wantN, execA, execB, orphB, redoB)
	}
}
