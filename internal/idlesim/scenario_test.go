package idlesim

import (
	"testing"
	"time"

	"phish/internal/clock"
)

func chaosSpec(seed int64) *Spec {
	return &Spec{
		Seed: seed,
		N:    2000,
		Profiles: []Profile{
			{Name: "dedicated", Weight: 1, Speed: 1},
			{Name: "office", Weight: 4, DiurnalPeriod: 24 * time.Hour,
				DiurnalBusy: 8 * time.Hour, PhaseJitter: 4 * time.Hour, Speed: 1, SpeedJitter: 0.2},
			{Name: "flaky", Weight: 2, Avail: 0.5, AvailPeriod: time.Hour, Speed: 1},
			{Name: "straggler", Weight: 1, Speed: 0.3},
			{Name: "gray", Weight: 1, Gray: true, DegradeTo: 0.2,
				DegradeBy: 30 * time.Minute, DegradeIn: time.Hour},
		},
		Waves: []Wave{
			{At: 2 * time.Hour, Frac: 0.1, Kind: "crash"},
			{At: 6 * time.Hour, Frac: 0.5, Profile: "flaky", Kind: "partition"},
		},
	}
}

// TestScenarioDeterministic: same seed, same fleet; different seed,
// different fleet.
func TestScenarioDeterministic(t *testing.T) {
	start := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	a, err := chaosSpec(7).Build(start)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := chaosSpec(7).Build(start)
	c, _ := chaosSpec(8).Build(start)
	probe := start.Add(13*time.Hour + 17*time.Minute)
	same, diff := 0, 0
	for i := range a {
		if a[i].Profile != b[i].Profile || a[i].Owner.Idle(probe) != b[i].Owner.Idle(probe) ||
			a[i].Speed.At(probe) != b[i].Speed.At(probe) {
			t.Fatalf("station %d diverges under identical seeds", i)
		}
		if a[i].Profile == c[i].Profile {
			same++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical profile assignment")
	}
	wa := chaosSpec(7).ExpandWaves(start, a)
	wb := chaosSpec(7).ExpandWaves(start, b)
	if len(wa) != 2 || len(wa[0].Stations) == 0 {
		t.Fatalf("waves = %+v", wa)
	}
	for i := range wa {
		if len(wa[i].Stations) != len(wb[i].Stations) || wa[i].Stations[0] != wb[i].Stations[0] {
			t.Fatal("wave victims diverge under identical seeds")
		}
	}
	for _, id := range wa[1].Stations {
		if a[id].Profile != "flaky" {
			t.Fatalf("profile-restricted wave hit %q", a[id].Profile)
		}
	}
}

// TestScenarioOnVirtualClock drives the 2000-station fleet across a
// simulated week on a fake clock: availability must swing with the diurnal
// cycle and the fractional profiles must hit their target on average. No
// goroutines, no real time.
func TestScenarioOnVirtualClock(t *testing.T) {
	clk := clock.NewFake()
	start := clk.Now()
	spec := &Spec{
		Seed: 11,
		N:    2000,
		Profiles: []Profile{
			{Name: "office", Weight: 1, DiurnalPeriod: 24 * time.Hour, DiurnalBusy: 10 * time.Hour},
			{Name: "flaky", Weight: 1, Avail: 0.5, AvailPeriod: time.Hour},
		},
	}
	stations, err := spec.Build(start)
	if err != nil {
		t.Fatal(err)
	}
	var sumIdle, samples int
	minIdle, maxIdle := spec.N, 0
	for i := 0; i < 7*24; i++ {
		clk.Advance(time.Hour)
		n := CountIdle(stations, clk.Now())
		sumIdle += n
		samples++
		if n < minIdle {
			minIdle = n
		}
		if n > maxIdle {
			maxIdle = n
		}
	}
	// Expected mean availability: office 14/24, flaky 0.5 → ~0.54.
	mean := float64(sumIdle) / float64(samples) / float64(spec.N)
	if mean < 0.40 || mean > 0.70 {
		t.Fatalf("mean availability %.2f, want ~0.54", mean)
	}
	// The diurnal cycle must actually swing the fleet (office workers all
	// share phase 0 here, so day vs night moves ~half the fleet).
	if maxIdle-minIdle < spec.N/4 {
		t.Fatalf("availability swing %d..%d too flat for a diurnal fleet", minIdle, maxIdle)
	}
}

// TestRampCurve covers the gray-degradation shape.
func TestRampCurve(t *testing.T) {
	start := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	r := Ramp{From: 1, To: 0.2, Start: start, Dur: 10 * time.Minute}
	if v := r.At(start.Add(-time.Minute)); v != 1 {
		t.Fatalf("before start: %v", v)
	}
	mid := r.At(start.Add(5 * time.Minute))
	if mid < 0.55 || mid > 0.65 {
		t.Fatalf("midpoint: %v, want ~0.6", mid)
	}
	if v := r.At(start.Add(time.Hour)); v != 0.2 {
		t.Fatalf("after end: %v", v)
	}
}
