package phishnet

import (
	"sync"
	"testing"
	"time"

	"phish/internal/types"
	"phish/internal/wire"
)

// TestUDPFlushTimerStress hammers the batcher from many goroutines so
// flush-timer callbacks constantly overlap re-arming. Before the
// generation-counter guard, armLocked Reset a shared timer that could be
// mid-fire: the stale callback would flush a batch that a newer arming
// owned, or swallow the fire the Reset counted on. Run under -race this
// doubles as the data-race regression for that pattern.
func TestUDPFlushTimerStress(t *testing.T) {
	a, err := ListenUDP(1, 1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenUDP(1, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.SetPeer(2, b.LocalAddr())
	b.SetPeer(1, a.LocalAddr())

	const senders = 8
	const perSender = 200
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				env := &wire.Envelope{To: 2, Payload: wire.Heartbeat{
					Worker: types.WorkerID(s*perSender + i),
				}}
				if err := a.Send(env); err != nil {
					t.Error(err)
					return
				}
				if i%16 == 0 {
					// Let flush timers fire mid-stream so arming and
					// callbacks interleave instead of one giant batch.
					time.Sleep(udpFlushDelay)
				}
			}
		}(s)
	}
	wg.Wait()

	// Every message must arrive exactly once: a lost flush would stall a
	// tail of the stream until retransmit (or forever for untracked
	// sends), and a double flush would trip the dedup window accounting.
	seen := make(map[types.WorkerID]bool)
	deadline := time.After(10 * time.Second)
	for len(seen) < senders*perSender {
		select {
		case env := <-b.Recv():
			if err := env.Materialize(); err != nil {
				t.Fatal(err)
			}
			hb, ok := env.Payload.(wire.Heartbeat)
			if !ok {
				t.Fatalf("payload = %T", env.Payload)
			}
			if seen[hb.Worker] {
				t.Fatalf("worker %d delivered twice", hb.Worker)
			}
			seen[hb.Worker] = true
			env.Free()
		case <-deadline:
			t.Fatalf("received %d/%d messages", len(seen), senders*perSender)
		}
	}
}

// TestUDPViewArenaRecycling drives enough batched traffic through the
// zero-copy receive path that arenas and views must recycle through their
// pools many times over, with consumers freeing some views, materializing
// others, and holding a few across subsequent datagrams. Any refcount slip
// shows up as cross-talk: a held view's fields changing when its arena is
// wrongly recycled under later traffic.
func TestUDPViewArenaRecycling(t *testing.T) {
	a, err := ListenUDP(1, 1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenUDP(1, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.SetPeer(2, b.LocalAddr())
	b.SetPeer(1, a.LocalAddr())

	const n = 600
	go func() {
		for i := 0; i < n; i++ {
			_ = a.Send(&wire.Envelope{To: 2, Payload: wire.StealReply{
				OK: true,
				Task: wire.Closure{
					ID:   types.TaskID{Worker: 1, Seq: uint64(i)},
					Fn:   "pfold",
					Args: []types.Value{int64(i), "payload-string"},
				},
			}})
		}
	}()

	type held struct {
		env *wire.Envelope
		seq uint64
	}
	var holds []held
	got := 0
	deadline := time.After(10 * time.Second)
	for got < n {
		select {
		case env := <-b.Recv():
			v, ok := env.Payload.(*wire.View)
			if !ok {
				t.Fatalf("payload = %T", env.Payload)
			}
			sr, ok := v.AsStealReply()
			if !ok || !sr.OK() {
				t.Fatalf("bad steal reply view (ok=%v)", ok)
			}
			cl := sr.Task()
			seq := cl.ID().Seq
			if fn := cl.Fn(); fn != "pfold" {
				t.Fatalf("fn = %q", fn)
			}
			switch got % 3 {
			case 0:
				env.Free()
			case 1:
				if err := env.Materialize(); err != nil {
					t.Fatal(err)
				}
				task := env.Payload.(wire.StealReply).Task
				if task.ID.Seq != seq || task.Args[1].(types.Value) != types.Value("payload-string") {
					t.Fatalf("materialized closure corrupted: %+v", task)
				}
				env.Free()
			case 2:
				holds = append(holds, held{env, seq}) // outlive later datagrams
			}
			got++
		case <-deadline:
			t.Fatalf("received %d/%d", got, n)
		}
	}
	for _, h := range holds {
		sr, ok := h.env.Payload.(*wire.View).AsStealReply()
		if !ok {
			t.Fatal("held view lost its shape")
		}
		if cl := sr.Task(); cl.ID().Seq != h.seq || cl.Fn() != "pfold" {
			t.Fatalf("held view mutated: seq %d -> %d fn %q", h.seq, cl.ID().Seq, cl.Fn())
		}
		h.env.Free()
	}
}
