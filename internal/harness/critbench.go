package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"phish"
	"phish/internal/apps/fib"
	"phish/internal/apps/pfold"
	"phish/internal/types"
)

// This file is the empirical-critical-path benchmark: traced runs of two
// applications whose span DAGs yield measured T1 (work) and T∞ (critical
// path), reported next to the paper's T1/P + T∞ greedy-scheduling bound
// and the measured makespan. The -check gate also re-measures the wire
// steal sequence with tracing disabled and compares its allocation count
// against the BENCH_wire.json baseline: the tracing plane must cost the
// untraced hot path nothing.

// CritBenchConfig sizes the traced runs.
type CritBenchConfig struct {
	// Workers is the participant count for every run.
	Workers int
	// FibN is the fib input; it must be big enough that thieves win tasks
	// even on one core (fib(22) is the established floor).
	FibN int64
	// PfoldN and PfoldThreshold size the polymer-folding run.
	PfoldN         int
	PfoldThreshold int
	// Timeout bounds each run.
	Timeout time.Duration
}

// DefaultCritBenchConfig finishes in a few seconds on a laptop.
func DefaultCritBenchConfig() CritBenchConfig {
	return CritBenchConfig{
		Workers:        4,
		FibN:           22,
		PfoldN:         15,
		PfoldThreshold: 6,
		Timeout:        2 * time.Minute,
	}
}

// CritRow is one traced application run.
type CritRow struct {
	App     string `json:"app"`
	Workers int    `json:"workers"`
	// Tasks is the number of distinct executed tasks observed in the
	// trace; Spans the raw span count (exec + steal legs + point events).
	Tasks int `json:"tasks"`
	Spans int `json:"spans"`
	// The DAG accounting, all in milliseconds: T1 total work, TInf
	// critical path, Makespan first-exec-start to last-exec-end, Bound
	// the greedy-scheduling bound T1/P + TInf.
	T1MS       float64 `json:"t1_ms"`
	TInfMS     float64 `json:"tinf_ms"`
	MakespanMS float64 `json:"makespan_ms"`
	BoundMS    float64 `json:"bound_ms"`
	// BoundRatio is Makespan/Bound — near or below 1 when P cores really
	// run in parallel, above 1 when the workers timeshare fewer cores.
	BoundRatio float64 `json:"bound_ratio"`
	// Dropped counts spans lost to ring or collector caps (should be 0).
	Dropped uint64 `json:"dropped"`
}

// CritSummary is the headline plus the zero-overhead gate measurement.
type CritSummary struct {
	// StealSeqAllocs is allocs/op of the wire steal-sequence benchmark
	// measured in this run with tracing disabled; CheckCrit compares it
	// to the BENCH_wire.json baseline.
	StealSeqAllocs int64 `json:"steal_seq_allocs"`
	// WorstBoundRatio is the max Makespan/Bound across runs.
	WorstBoundRatio float64 `json:"worst_bound_ratio"`
}

// CritBenchFile is the on-disk shape of BENCH_trace.json.
type CritBenchFile struct {
	Runs    []CritRow   `json:"runs"`
	Summary CritSummary `json:"summary"`
}

// critRunOne executes one traced application and distills its DAG row.
func critRunOne(name string, prog *phish.Program, rootFn string,
	rootArgs []phish.Value, cfg CritBenchConfig) (CritRow, error) {
	wcfg := phish.DefaultWorkerConfig()
	// Keep every span: the accounting is only trustworthy lossless.
	wcfg.SpanBuf = 1 << 20
	res, err := phish.RunLocal(prog, rootFn, rootArgs, phish.LocalOptions{
		Workers:   cfg.Workers,
		Config:    wcfg,
		SpanTrace: true,
		Timeout:   cfg.Timeout,
	})
	if err != nil {
		return CritRow{}, fmt.Errorf("harness: crit %s: %w", name, err)
	}
	if len(res.Spans) == 0 {
		return CritRow{}, fmt.Errorf("harness: crit %s: traced run yielded no spans", name)
	}
	d := phish.BuildDAG(res.Spans)
	bound := d.Bound(cfg.Workers)
	row := CritRow{
		App:        name,
		Workers:    cfg.Workers,
		Tasks:      d.Tasks,
		Spans:      len(res.Spans),
		T1MS:       float64(d.T1.Nanoseconds()) / 1e6,
		TInfMS:     float64(d.TInf.Nanoseconds()) / 1e6,
		MakespanMS: float64(d.Makespan.Nanoseconds()) / 1e6,
		BoundMS:    float64(bound.Nanoseconds()) / 1e6,
		Dropped:    res.SpansDropped,
	}
	if bound > 0 {
		row.BoundRatio = float64(d.Makespan) / float64(bound)
	}
	return row, nil
}

// critStealSeqAllocs re-measures the untraced wire steal sequence (the
// same four-message zero-copy round trip WireBench times as
// "steal-sequence") and returns allocs/op.
func critStealSeqAllocs() int64 {
	seq := stealSequence()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var scratch []types.Value
		for i := 0; i < b.N; i++ {
			runStealSequenceView(b, seq, &scratch)
		}
	})
	return r.AllocsPerOp()
}

// CritBench runs the traced applications and the zero-overhead probe.
func CritBench(cfg CritBenchConfig) (*CritBenchFile, error) {
	d := DefaultCritBenchConfig()
	if cfg.Workers <= 0 {
		cfg.Workers = d.Workers
	}
	if cfg.FibN <= 0 {
		cfg.FibN = d.FibN
	}
	if cfg.PfoldN <= 0 || cfg.PfoldThreshold <= 0 {
		cfg.PfoldN, cfg.PfoldThreshold = d.PfoldN, d.PfoldThreshold
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = d.Timeout
	}

	var f CritBenchFile
	fibRow, err := critRunOne(fmt.Sprintf("fib-%d", cfg.FibN),
		fib.Program(), fib.Root, fib.RootArgs(cfg.FibN), cfg)
	if err != nil {
		return nil, err
	}
	f.Runs = append(f.Runs, fibRow)
	pfRow, err := critRunOne(fmt.Sprintf("pfold-%d", cfg.PfoldN),
		pfold.Program(), pfold.Root, pfold.RootArgs(cfg.PfoldN, cfg.PfoldThreshold), cfg)
	if err != nil {
		return nil, err
	}
	f.Runs = append(f.Runs, pfRow)

	for _, r := range f.Runs {
		if r.BoundRatio > f.Summary.WorstBoundRatio {
			f.Summary.WorstBoundRatio = r.BoundRatio
		}
	}
	f.Summary.StealSeqAllocs = critStealSeqAllocs()
	return &f, nil
}

// PrintCritBench renders the accounting as a table.
func PrintCritBench(w io.Writer, f *CritBenchFile) {
	fmt.Fprintf(w, "empirical critical path — measured makespan vs the T1/P + Tinf bound\n")
	fmt.Fprintf(w, "%-10s %3s %8s %8s %10s %10s %12s %10s %7s\n",
		"app", "P", "tasks", "spans", "T1", "Tinf", "makespan", "bound", "ratio")
	for _, r := range f.Runs {
		fmt.Fprintf(w, "%-10s %3d %8d %8d %9.1fms %9.1fms %11.1fms %9.1fms %7.2f\n",
			r.App, r.Workers, r.Tasks, r.Spans,
			r.T1MS, r.TInfMS, r.MakespanMS, r.BoundMS, r.BoundRatio)
	}
	fmt.Fprintf(w, "steal-sequence allocs/op with tracing disabled: %d\n", f.Summary.StealSeqAllocs)
}

// ReadCritBenchJSON loads a recorded baseline. A missing file returns
// (nil, nil) so callers can distinguish "no baseline yet".
func ReadCritBenchJSON(path string) (*CritBenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var f CritBenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("harness: %s: %w", path, err)
	}
	return &f, nil
}

// WriteCritBenchJSON records the accounting as the new baseline.
func WriteCritBenchJSON(path string, f *CritBenchFile) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadWireBenchJSON loads the recorded codec baseline (nil, nil when the
// file does not exist yet).
func ReadWireBenchJSON(path string) ([]WireBenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var rs []WireBenchResult
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("harness: %s: %w", path, err)
	}
	return rs, nil
}

// CheckCrit gates CI on the trace accounting being self-consistent and on
// the tracing plane costing the untraced steal path nothing:
//
//   - ≥ 2 applications traced, each with a non-degenerate DAG
//   - Tinf ≤ T1 ≤ P·makespan (work can't exceed P workers' wall time) and
//     makespan ≥ Tinf (the critical path is inherently sequential), with
//     small relative slack for rounding
//   - zero dropped spans
//   - steal-sequence allocs/op with tracing disabled no worse than the
//     BENCH_wire.json baseline (wireBase nil skips that comparison)
//
// The makespan-vs-bound ratio is reported, not gated: on a timeshared
// machine P workers share fewer cores and the ratio legitimately exceeds 1.
func CheckCrit(wireBase []WireBenchResult, fresh *CritBenchFile) error {
	if len(fresh.Runs) < 2 {
		return fmt.Errorf("harness: crit traced %d apps, want >= 2", len(fresh.Runs))
	}
	const slack = 1.05 // relative slack for span-timestamp rounding
	for _, r := range fresh.Runs {
		if r.Tasks == 0 || r.T1MS <= 0 || r.TInfMS <= 0 || r.MakespanMS <= 0 {
			return fmt.Errorf("harness: crit %s: degenerate DAG %+v", r.App, r)
		}
		if r.TInfMS > r.T1MS*slack {
			return fmt.Errorf("harness: crit %s: Tinf %.1fms > T1 %.1fms", r.App, r.TInfMS, r.T1MS)
		}
		if r.T1MS > float64(r.Workers)*r.MakespanMS*slack {
			return fmt.Errorf("harness: crit %s: T1 %.1fms exceeds P*makespan %.1fms — timeline incoherent",
				r.App, r.T1MS, float64(r.Workers)*r.MakespanMS)
		}
		if r.MakespanMS*slack < r.TInfMS {
			return fmt.Errorf("harness: crit %s: makespan %.1fms below critical path %.1fms",
				r.App, r.MakespanMS, r.TInfMS)
		}
		if r.Dropped != 0 {
			return fmt.Errorf("harness: crit %s: %d spans dropped", r.App, r.Dropped)
		}
	}
	for _, wb := range wireBase {
		if wb.Name == "steal-sequence" && fresh.Summary.StealSeqAllocs > wb.AllocsPerOp {
			return fmt.Errorf("harness: steal-sequence allocs %d with tracing disabled exceed the %d baseline — the trace plane leaked into the hot path",
				fresh.Summary.StealSeqAllocs, wb.AllocsPerOp)
		}
	}
	return nil
}
