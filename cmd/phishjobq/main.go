// Command phishjobq runs the PhishJobQ: the macro-level scheduler's job
// pool. Exactly one instance serves a Phish network; PhishJobManagers on
// idle workstations request jobs from it, and the phish launcher submits
// jobs to it.
//
// Usage:
//
//	phishjobq [-addr :7070] [-state jobq.wal]
//
// With -state, the pool is journaled to the named file: submitted jobs
// survive a crash or restart of the queue, coming back under their
// original ids.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"phish/internal/jobq"
	"phish/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":7070", "TCP address to listen on")
	state := flag.String("state", "", "pool log file; submitted jobs survive restarts")
	metricsAddr := flag.String("metrics", "", "serve /metrics and /healthz on this HTTP address (off when empty)")
	flag.Parse()

	var pool *jobq.Pool
	if *state != "" {
		var err error
		pool, err = jobq.NewDurablePool(*state)
		if err != nil {
			log.Fatalf("phishjobq: %v", err)
		}
		defer pool.CloseStore()
		if n := pool.Len(); n > 0 {
			fmt.Printf("phishjobq: recovered %d pending job(s) from %s\n", n, *state)
		}
	} else {
		pool = jobq.NewPool()
	}
	srv, err := jobq.NewServer(pool, *addr)
	if err != nil {
		log.Fatalf("phishjobq: %v", err)
	}
	fmt.Printf("phishjobq: serving the job pool on %s\n", srv.Addr())

	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		telemetry.RegisterRuntime(reg)
		st := srv.Stats()
		reg.CounterFunc("phish_jobq_requests_total", "Job requests dispatched.", st.Requests.Load)
		reg.CounterFunc("phish_jobq_grants_total", "Job requests answered with a job.", st.Grants.Load)
		reg.CounterFunc("phish_jobq_submits_total", "Jobs submitted.", st.Submits.Load)
		reg.CounterFunc("phish_jobq_dones_total", "Jobs retired as done.", st.Dones.Load)
		reg.CounterFunc("phish_jobq_lists_total", "Pool listings served.", st.Lists.Load)
		reg.GaugeFunc("phish_jobq_pending_jobs", "Jobs currently waiting in the pool.",
			func() int64 { return int64(pool.Len()) })
		msrv, err := telemetry.Serve(*metricsAddr, reg, nil)
		if err != nil {
			log.Fatalf("phishjobq: %v", err)
		}
		defer msrv.Close()
		fmt.Printf("phishjobq: telemetry on http://%s/metrics\n", msrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("phishjobq: shutting down")
	if err := srv.Close(); err != nil {
		log.Fatalf("phishjobq: close: %v", err)
	}
}
