package core

import (
	"fmt"
	"sync"

	"phish/internal/model"
	"phish/internal/registry"
)

// TaskFunc is the body of a task. It runs to completion without blocking:
// it reads its arguments from the context and either returns a value to
// its continuation (ctx.Return) or spawns children plus a successor task
// that will combine their results (the continuation-passing-threads style
// of the paper's programming model). It is an alias for model.Func so the
// same program runs on both the Phish and Strata runtimes.
type TaskFunc = model.Func

// Program is a named parallel application: its set of task functions. All
// worker processes of a job run the same program, so a task can be shipped
// between workers as a function name plus arguments.
type Program struct {
	// Name identifies the program in JobSpecs.
	Name string
	// Funcs maps task-function names to implementations.
	Funcs *registry.Registry[TaskFunc]
}

// NewProgram returns an empty program.
func NewProgram(name string) *Program {
	return &Program{Name: name, Funcs: registry.New[TaskFunc]()}
}

// Register binds a task function name within the program.
func (p *Program) Register(name string, fn TaskFunc) { p.Funcs.Register(name, fn) }

// programs is the process-global program registry; worker processes look
// up the program named in a JobSpec here.
var (
	programsMu sync.RWMutex
	programs   = make(map[string]*Program)
)

// RegisterProgram makes p joinable by name in this process. Registering
// the same name twice panics unless it is the identical *Program (apps
// register from init-like helpers that may run more than once in tests).
func RegisterProgram(p *Program) {
	programsMu.Lock()
	defer programsMu.Unlock()
	if prev, ok := programs[p.Name]; ok {
		if prev == p {
			return
		}
		panic(fmt.Sprintf("core: conflicting registration of program %q", p.Name))
	}
	programs[p.Name] = p
}

// LookupProgram finds a registered program.
func LookupProgram(name string) (*Program, error) {
	programsMu.RLock()
	defer programsMu.RUnlock()
	p, ok := programs[name]
	if !ok {
		return nil, fmt.Errorf("core: program %q not registered in this process", name)
	}
	return p, nil
}
