package knary

import (
	"testing"

	"phish"
	"phish/internal/strata"
)

func TestNodes(t *testing.T) {
	cases := []struct{ depth, fan, want int64 }{
		{0, 3, 1},
		{1, 3, 4},
		{2, 3, 13},
		{3, 2, 15},
		{1, 1, 2},
	}
	for _, c := range cases {
		if got := Nodes(c.depth, c.fan); got != c.want {
			t.Errorf("Nodes(%d,%d) = %d, want %d", c.depth, c.fan, got, c.want)
		}
	}
}

func TestSerialCountsNodes(t *testing.T) {
	for _, c := range []struct{ depth, fan int64 }{{0, 2}, {3, 2}, {4, 3}, {6, 2}} {
		if got, want := Serial(c.depth, c.fan, 10), Nodes(c.depth, c.fan); got != want {
			t.Errorf("Serial(%d,%d) = %d, want %d", c.depth, c.fan, got, want)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	for _, p := range []int{1, 3} {
		res, err := phish.RunLocal(Program(), Root, RootArgs(6, 3, 5), phish.LocalOptions{Workers: p})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if got, want := res.Value.(int64), Nodes(6, 3); got != want {
			t.Errorf("P=%d: got %d, want %d", p, got, want)
		}
	}
}

func TestTaskCountConservation(t *testing.T) {
	res, err := phish.RunLocal(Program(), Root, RootArgs(7, 2, 0), phish.LocalOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Totals.TasksExecuted, TaskCount(7, 2); got != want {
		t.Errorf("tasks executed = %d, want %d", got, want)
	}
}

func TestOnStrata(t *testing.T) {
	res, err := strata.Run(Program(), Root, RootArgs(6, 3, 5), 4, strata.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Value.(int64), Nodes(6, 3); got != want {
		t.Errorf("got %d, want %d", got, want)
	}
}

func TestSpinIsDeterministicAndProportional(t *testing.T) {
	if Spin(7, 100) != Spin(7, 100) {
		t.Error("spin not deterministic")
	}
	if Spin(7, 100) == Spin(7, 101) {
		t.Error("spin ignores work parameter")
	}
	if Spin(0, 10) == 0 {
		t.Error("zero seed must still mix (seeded with |1)")
	}
}
