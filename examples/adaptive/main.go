// Adaptive parallelism on a simulated network of workstations — the
// macro-level scheduler end to end.
//
//	go run ./examples/adaptive [-stations 6] [-minutes 3]
//
// Six workstations with synthetic owners run their PhishJobManagers. Two
// jobs are submitted to the PhishJobQ. As owners wander off, their idle
// workstations request jobs and join; when owners return, workers migrate
// their tasks and die ("owner sovereignty"); when a job's parallelism
// shrinks, surplus workers retire and are reassigned. The demo prints the
// timeline of these macro-level events.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"phish/internal/apps/fib"
	"phish/internal/apps/nqueens"
	"phish/internal/clearinghouse"
	"phish/internal/cluster"
	"phish/internal/core"
	"phish/internal/idlesim"
	"phish/internal/jobmanager"
)

func main() {
	stations := flag.Int("stations", 6, "simulated workstations")
	demoLen := flag.Duration("len", 20*time.Second, "how long to let the network churn")
	flag.Parse()

	// Compress the paper's minute-scale polling so the demo is watchable:
	// 5 min busy poll -> 300ms, 30 s retry -> 30ms, 2 s owner check -> 20ms.
	w := core.DefaultConfig()
	w.MaxStealFailures = 20
	w.StealTimeout = 25 * time.Millisecond
	w.HeartbeatEvery = 20 * time.Millisecond
	opts := cluster.Options{
		Worker: w,
		CH: clearinghouse.Config{
			UpdateEvery:      50 * time.Millisecond,
			HeartbeatTimeout: 500 * time.Millisecond,
		},
		JM: jobmanager.Config{
			BusyPoll:  300 * time.Millisecond,
			IdleRetry: 30 * time.Millisecond,
			WorkPoll:  20 * time.Millisecond,
		},
	}
	c := cluster.New(opts)
	defer c.Close()

	var ws []*cluster.Workstation
	for i := 0; i < *stations; i++ {
		// Owners alternate busy and idle periods of a few hundred ms.
		owner := idlesim.NewActivity(int64(i+1), time.Now(),
			300*time.Millisecond, 1200*time.Millisecond, // busy
			400*time.Millisecond, 2*time.Second, // idle
			i%2 == 0) // half start idle
		ws = append(ws, c.AddWorkstation(owner))
	}
	fmt.Printf("adaptive: %d workstations with wandering owners\n", *stations)

	j1 := c.Submit(fib.Program(), fib.Root, fib.RootArgs(30))
	j2 := c.Submit(nqueens.Program(), nqueens.Root, nqueens.RootArgs(12))
	fmt.Println("adaptive: submitted fib(30) and nqueens(12) to the PhishJobQ")

	// Narrate the churn until both jobs finish or the demo window closes.
	deadline := time.Now().Add(*demoLen)
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	lastLine := ""
	for time.Now().Before(deadline) && !(j1.Done() && j2.Done()) {
		<-tick.C
		line := fmt.Sprintf("  t=%4.1fs  fib workers=%d done=%v | nqueens workers=%d done=%v",
			time.Until(deadline).Seconds(), len(j1.LiveWorkers()), j1.Done(),
			len(j2.LiveWorkers()), j2.Done())
		if line != lastLine {
			fmt.Println(line)
			lastLine = line
		}
	}

	report := func(name string, j *cluster.Job, want int64) {
		v, err := j.Wait(2 * time.Minute)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		ok := "OK"
		if v.(int64) != want {
			ok = fmt.Sprintf("WRONG (want %d)", want)
		}
		t := j.Totals()
		fmt.Printf("\n%s = %v  [%s]\n", name, v, ok)
		fmt.Printf("  participants ever: %d; tasks %d; stolen %d; migrated %d; redone %d\n",
			t.Worker, t.TasksExecuted, t.TasksStolen, t.TasksMigrated, t.TasksRedone)
	}
	report("fib(30)", j1, fib.Serial(30))
	report("nqueens(12)", j2, 14200)

	fmt.Println("\nmacro-level events per workstation:")
	for _, s := range ws {
		st := s.Stats()
		fmt.Printf("  ws%-2d  started=%2d  finished=%2d  reclaimed=%2d  retired=%2d  empty-polls=%2d\n",
			s.ID, st.JobsStarted.Load(), st.Finished.Load(), st.Reclaims.Load(),
			st.Retired.Load(), st.EmptyPolls.Load())
	}
}
