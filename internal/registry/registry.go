// Package registry maps task-function names to implementations.
//
// Tasks cross address spaces when they are stolen or migrated, so a task on
// the wire carries the *name* of its function rather than a code pointer;
// every worker process of a job registers the same set of functions at
// startup (they all run the same application binary, as in the paper).
//
// The registry is generic over the function type so that both the Phish
// runtime (internal/core) and the Strata baseline (internal/strata) can use
// it with their respective task signatures.
package registry

import (
	"fmt"
	"sort"
	"sync"
)

// Registry maps names to task functions of type F. It is safe for
// concurrent use; registration typically happens at init time and lookups
// happen on every task execution, so lookups take a read lock only.
type Registry[F any] struct {
	mu  sync.RWMutex
	fns map[string]F
}

// New returns an empty registry.
func New[F any]() *Registry[F] {
	return &Registry[F]{fns: make(map[string]F)}
}

// Register binds name to fn. Registering the same name twice panics: it is
// a programming error that would make task routing ambiguous between
// workers, and it is always detectable at startup.
func (r *Registry[F]) Register(name string, fn F) {
	if name == "" {
		panic("registry: empty task function name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fns[name]; dup {
		panic(fmt.Sprintf("registry: duplicate task function %q", name))
	}
	r.fns[name] = fn
}

// Lookup returns the function bound to name.
func (r *Registry[F]) Lookup(name string) (F, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.fns[name]
	if !ok {
		var zero F
		return zero, fmt.Errorf("registry: unknown task function %q", name)
	}
	return fn, nil
}

// MustLookup is Lookup but panics on unknown names. The scheduler uses it
// on the hot path: an unknown name there means the job's workers are
// running different binaries, which is unrecoverable.
func (r *Registry[F]) MustLookup(name string) F {
	fn, err := r.Lookup(name)
	if err != nil {
		panic(err)
	}
	return fn
}

// Names returns the registered names in sorted order (for diagnostics and
// the clearinghouse's job-compatibility check).
func (r *Registry[F]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.fns))
	for n := range r.fns {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered functions.
func (r *Registry[F]) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.fns)
}
