// Graded worker health. The binary alive/dead sweep (shardstore.SweepDead)
// catches fail-stop crashes; this file catches the NOW reality in between —
// workstations that go slow without going down. Three signals grade a live
// worker into the suspect set:
//
//   - phi band: its phi-accrual score sits in [PhiSuspect, PhiThreshold) —
//     silent for longer than its own arrival history predicts, but not yet
//     provably gone (an owner typing, a latency ramp, asymmetric loss).
//   - exec-rate collapse: its reported task-execution rate fell below a
//     quarter of its own EWMA while it still holds work — a non-empty deque
//     or a live checkpoint stream — so the CPU is being taken by something
//     else (fractional owner usage, a straggler).
//   - steal-RTT growth: the round trips it reports grew far past its own
//     EWMA band — its link or its victims' links are degrading.
//   - exec-time growth: the per-task execution times it reports grew far
//     past its own EWMA band — a straggler or degrading CPU. This is the
//     signal that catches an idle-initiated thief (whose deque is empty by
//     construction, so the rate signal stays quiet) limping through the one
//     task it holds.
//   - fleet-relative straggler: its exec-time EWMA sits far above the
//     fleet median. Self-relative bands cannot see a worker that was slow
//     from its very first sample — a freshly joined worker on an
//     already-degraded machine baselines its own slowness as normal — so
//     this one compares across workers.
//
// The suspect set is broadcast to every live member (wire.SuspectSet) so
// thieves deprioritize suspect victims and victims speculatively redo work
// held by suspect thieves; a worker that stays suspect continuously past
// SuspectDrainAfter is ordered to drain (wire.DrainOrder), moving its deque
// and checkpoints to a healthy peer via the planned-migration path. All of
// it is advisory: a wrongly suspected worker loses steal traffic and may
// have a task redone in parallel — wasted work, never wrong answers.
package clearinghouse

import (
	"sort"
	"sync"
	"time"

	"phish/internal/stats"
	"phish/internal/telemetry"
	"phish/internal/types"
	"phish/internal/wire"
)

// healthTrack is the per-worker EWMA state behind the exec-rate and
// steal-RTT bands. Updated only when a fresh StatReport arrived since the
// last sweep.
type healthTrack struct {
	lastAt     time.Time
	execPrev   int64
	rttPrevSum int64
	rttPrevN   int64
	exTPrevSum int64
	exTPrevN   int64
	rateEW     float64 // tasks/sec
	rttEW      float64 // ns per steal round trip
	rttDevEW   float64
	exTEW      float64 // ns per task execution
	exTDevEW   float64
	samples    int
	// Consecutive-violation counters: one out-of-band sweep is a lumpy
	// task mix or an unlucky victim (a thief's steal RTT inflates when its
	// *victim* is slow), not degradation. A signal fires only after the
	// band is broken on consecutive sampled sweeps.
	rateBad int
	rttBad  int
	exTBad  int
}

// suspectEntry is one graded suspect.
type suspectEntry struct {
	Since     time.Time
	PhiMilli  int32
	Reason    string
	misses    int       // consecutive sweeps without a suspicion signal
	orderedAt time.Time // when the last DrainOrder was issued (zero: none)
}

// drainResend paces repeated DrainOrders to a suspect that stays both
// graded and live: the order is a single unacknowledged datagram to a
// machine whose network is, by hypothesis, degrading — sending it exactly
// once makes the whole drain path hostage to one packet.
const drainResend = 100 * time.Millisecond

// healthState holds the grading tables. The mutex exists for read-side
// consumers (ClusterSnapshot runs on any goroutine); all mutation happens
// on the Run goroutine via sweepHealth.
type healthState struct {
	mu       sync.Mutex
	tracks   map[types.WorkerID]*healthTrack
	suspects map[types.WorkerID]*suspectEntry
	// lastNonEmpty remembers whether the previous broadcast carried any
	// suspects, so one final empty SuspectSet is sent to clear the fleet.
	lastNonEmpty bool
}

// suspectMisses is how many consecutive signal-free sweeps clear an entry:
// one sweep of hysteresis so a score oscillating around the band does not
// flap the fleet's blacklists (the drain timer keys off Since, which a flap
// would reset).
const suspectMisses = 2

// suspicion is one sweep's observation about one worker.
type suspicion struct {
	phiMilli int32
	reason   string
}

// sweepHealth runs one grading pass: fold fresh reports into the EWMA
// tracks, merge the three signals into the suspect set, broadcast the set,
// and order drains for persistent suspects. Called from checkHeartbeats on
// the Run goroutine, without c.mu held.
func (c *Clearinghouse) sweepHealth(now time.Time) {
	if c.cfg.PhiThreshold <= 0 {
		return // grading rides the adaptive detector; fixed-timeout mode is binary
	}
	h := &c.health
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.tracks == nil {
		h.tracks = make(map[types.WorkerID]*healthTrack)
		h.suspects = make(map[types.WorkerID]*suspectEntry)
	}

	live := make(map[types.WorkerID]bool)
	for _, id := range c.store.LiveIDs() {
		live[id] = true
	}
	observed := make(map[types.WorkerID]suspicion)

	// Signal 1: the phi band.
	phiOf := make(map[types.WorkerID]int32)
	suspectAt := c.cfg.phiSuspect()
	for _, row := range c.store.Phis(now) {
		if !row.Warm {
			continue
		}
		phiOf[row.Worker] = int32(row.Phi * 1000)
		if row.Phi >= suspectAt {
			observed[row.Worker] = suspicion{phiMilli: int32(row.Phi * 1000), reason: "phi"}
		}
	}

	// Signals 2 and 3: per-worker EWMA bands over reported exec rate and
	// steal RTT.
	for _, r := range c.store.Reports() {
		id := r.Rep.Worker
		if !live[id] {
			continue
		}
		tk, ok := h.tracks[id]
		if !ok {
			tk = &healthTrack{}
			h.tracks[id] = tk
		}
		if !r.At.After(tk.lastAt) {
			continue // no fresh report since the last sweep
		}
		snap := stats.FromOrdered(r.Rep.Counters)
		var rttSum, rttN, exTSum, exTN int64
		for _, hs := range r.Rep.Hists {
			switch telemetry.HistKind(hs.Kind) {
			case telemetry.HistStealRTT:
				rttSum, rttN = hs.Sum, hs.Count
			case telemetry.HistTaskExec:
				exTSum, exTN = hs.Sum, hs.Count
			}
		}
		if tk.lastAt.IsZero() {
			tk.lastAt, tk.execPrev = r.At, snap.TasksExecuted
			tk.rttPrevSum, tk.rttPrevN = rttSum, rttN
			tk.exTPrevSum, tk.exTPrevN = exTSum, exTN
			continue
		}
		dt := r.At.Sub(tk.lastAt).Seconds()
		if dt <= 0 {
			continue
		}
		rate := float64(snap.TasksExecuted-tk.execPrev) / dt
		var rtt, exT float64
		if rttN > tk.rttPrevN {
			rtt = float64(rttSum-tk.rttPrevSum) / float64(rttN-tk.rttPrevN)
		}
		if exTN > tk.exTPrevN {
			exT = float64(exTSum-tk.exTPrevSum) / float64(exTN-tk.exTPrevN)
		}
		var rateViol, rttViol, exTViol bool
		if tk.samples >= 4 {
			// Held work but throughput collapsed: the workstation's cycles
			// went somewhere else. "Held" includes published checkpoints,
			// not just the deque — a worker grinding through its one stolen
			// task has an empty deque but a live checkpoint stream, and that
			// hostage task is the case this signal most needs to catch. With
			// task granularity near the sweep interval a single empty window
			// is routine, so this one needs three in a row.
			rateViol = (r.Rep.Deque > 0 || len(r.Rep.Ckpts) > 0) &&
				tk.rateEW > 0 && rate < tk.rateEW/4
			if rateViol {
				tk.rateBad++
			} else {
				tk.rateBad = 0
			}
			if rtt > 0 {
				rttViol = tk.rttEW > 0 && rtt > 2*tk.rttEW+3*tk.rttDevEW
				if rttViol {
					tk.rttBad++
				} else {
					tk.rttBad = 0
				}
			}
			if exT > 0 {
				exTViol = tk.exTEW > 0 && exT > 2*tk.exTEW+3*tk.exTDevEW
				if exTViol {
					tk.exTBad++
				} else {
					tk.exTBad = 0
				}
			}
			if _, sus := observed[id]; !sus {
				switch {
				case tk.rateBad >= 3:
					observed[id] = suspicion{phiMilli: phiOf[id], reason: "exec-rate"}
				case tk.rttBad >= 2:
					observed[id] = suspicion{phiMilli: phiOf[id], reason: "steal-rtt"}
				case tk.exTBad >= 2:
					observed[id] = suspicion{phiMilli: phiOf[id], reason: "exec-time"}
				}
			}
		}
		// A violating sample is evidence, not baseline: folding it into the
		// EWMA would teach the band to accept the degradation (the first slow
		// sample widens the band enough that the second no longer breaks it,
		// and the consecutive counter can never reach its threshold). Warm
		// tracks freeze the violated metric; cold tracks fold everything, so
		// a born-slow worker still builds the honest high EWMA the
		// fleet-relative straggler signal compares against.
		const alpha = 0.2
		if !rateViol {
			tk.rateEW += alpha * (rate - tk.rateEW)
		}
		if rtt > 0 && !rttViol {
			tk.rttDevEW += alpha * (absF(rtt-tk.rttEW) - tk.rttDevEW)
			tk.rttEW += alpha * (rtt - tk.rttEW)
		}
		if exT > 0 && !exTViol {
			tk.exTDevEW += alpha * (absF(exT-tk.exTEW) - tk.exTDevEW)
			tk.exTEW += alpha * (exT - tk.exTEW)
		}
		tk.samples++
		tk.lastAt, tk.execPrev = r.At, snap.TasksExecuted
		tk.rttPrevSum, tk.rttPrevN = rttSum, rttN
		tk.exTPrevSum, tk.exTPrevN = exTSum, exTN
	}

	// Signal 5: fleet-relative straggler. Needs enough of a fleet for a
	// median to mean anything; 4x is far outside same-hardware spread.
	var ews []float64
	for id, tk := range h.tracks {
		if live[id] && tk.exTEW > 0 {
			ews = append(ews, tk.exTEW)
		}
	}
	if len(ews) >= 3 {
		sort.Float64s(ews)
		if med := ews[len(ews)/2]; med > 0 {
			for id, tk := range h.tracks {
				if !live[id] || tk.exTEW <= 4*med {
					continue
				}
				if _, sus := observed[id]; !sus {
					observed[id] = suspicion{phiMilli: phiOf[id], reason: "straggler"}
				}
			}
		}
	}

	// Merge into the suspect set with hysteresis.
	for id, obs := range observed {
		if !live[id] {
			continue
		}
		if e, ok := h.suspects[id]; ok {
			e.PhiMilli, e.Reason, e.misses = obs.phiMilli, obs.reason, 0
		} else {
			h.suspects[id] = &suspectEntry{Since: now, PhiMilli: obs.phiMilli, Reason: obs.reason}
		}
	}
	for id, e := range h.suspects {
		if !live[id] {
			delete(h.suspects, id)
			continue
		}
		if _, ok := observed[id]; !ok {
			if e.misses++; e.misses >= suspectMisses {
				delete(h.suspects, id)
			}
		}
	}
	for id := range h.tracks {
		if !live[id] {
			delete(h.tracks, id)
		}
	}

	c.broadcastSuspectsLocked(now, live)
}

// broadcastSuspectsLocked ships the current suspect set to every live
// member (full replacement; workers decay it locally) and issues drain
// orders for persistent suspects. Caller holds health.mu.
func (c *Clearinghouse) broadcastSuspectsLocked(now time.Time, live map[types.WorkerID]bool) {
	h := &c.health
	if len(h.suspects) == 0 && !h.lastNonEmpty {
		return
	}
	set := wire.SuspectSet{}
	for id, e := range h.suspects {
		info := wire.SuspectInfo{Worker: id, PhiMilli: e.PhiMilli}
		if r, ok := c.store.ReportOf(id); ok {
			// The suspect's freshest published checkpoints ride along, so a
			// victim speculating on a task lent to it resumes from the blob.
			info.Ckpts = r.Rep.Ckpts
		}
		set.Suspects = append(set.Suspects, info)
	}
	sort.Slice(set.Suspects, func(i, j int) bool { return set.Suspects[i].Worker < set.Suspects[j].Worker })
	for id := range live {
		c.send(id, set)
	}
	h.lastNonEmpty = len(set.Suspects) > 0

	if c.cfg.SuspectDrainAfter <= 0 {
		return
	}
	rootHost := c.RootHost()
	for id, e := range h.suspects {
		if now.Sub(e.Since) < c.cfg.SuspectDrainAfter {
			continue
		}
		if !e.orderedAt.IsZero() && now.Sub(e.orderedAt) < drainResend {
			continue
		}
		if id == rootHost || len(live) <= 1 {
			// Never drain the root's host on suspicion alone, and a drain
			// with no adopter would just crash-report the state.
			continue
		}
		e.orderedAt = now
		c.send(id, wire.DrainOrder{Reason: "degraded: " + e.Reason})
	}
}

// suspectSnapshot returns the current suspect set for telemetry rollups.
func (c *Clearinghouse) suspectSnapshot() map[types.WorkerID]string {
	h := &c.health
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.suspects) == 0 {
		return nil
	}
	out := make(map[types.WorkerID]string, len(h.suspects))
	for id, e := range h.suspects {
		out[id] = e.Reason
	}
	return out
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
