// Package deque implements the ready-task deque at the heart of the
// micro-level scheduler (Figure 1 of the paper).
//
// The owning worker treats the head as a stack: newly spawned ready tasks
// are pushed at the head and the next task to execute is popped from the
// head (LIFO order, which keeps the working set small). Thieves take the
// task at the tail (FIFO order, which for tree-shaped computations hands
// out tasks near the base of the tree — tasks that will spawn many
// descendants, so one steal buys a lot of local work).
//
// The deque is an amortized O(1) growable ring buffer. It is NOT
// synchronized: in the Phish runtime all access — including steals — is
// performed by the owning worker's scheduler loop in response to messages,
// exactly as in the paper's message-based design. Runtimes that share
// memory (internal/strata) wrap it with their own lock.
package deque

// Deque is a double-ended queue of T.
// The zero value is an empty deque ready for use.
type Deque[T any] struct {
	buf  []T
	head int // index of the element at the head, when n > 0
	n    int
}

// minCap is the initial capacity allocated on first push.
const minCap = 16

// Len returns the number of elements in the deque.
func (d *Deque[T]) Len() int { return d.n }

// Empty reports whether the deque holds no elements.
func (d *Deque[T]) Empty() bool { return d.n == 0 }

// Cap returns the current capacity (for tests and instrumentation).
func (d *Deque[T]) Cap() int { return len(d.buf) }

func (d *Deque[T]) grow() {
	newCap := 2 * len(d.buf)
	if newCap == 0 {
		newCap = minCap
	}
	buf := make([]T, newCap)
	for i := 0; i < d.n; i++ {
		buf[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = buf
	d.head = 0
}

// PushHead inserts v at the head of the deque. Newly spawned ready tasks
// go here.
func (d *Deque[T]) PushHead(v T) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = v
	d.n++
}

// PushTail inserts v at the tail of the deque. The Phish scheduler does not
// use this in its default configuration; it exists for the FIFO-execution
// ablation and for re-injecting migrated tasks behind local work.
func (d *Deque[T]) PushTail(v T) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)%len(d.buf)] = v
	d.n++
}

// PopHead removes and returns the element at the head (the task executed
// next under the paper's LIFO discipline). ok is false if the deque is
// empty.
func (d *Deque[T]) PopHead() (v T, ok bool) {
	if d.n == 0 {
		return v, false
	}
	v = d.buf[d.head]
	var zero T
	d.buf[d.head] = zero // release reference for GC
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	return v, true
}

// PopTail removes and returns the element at the tail (the task handed to a
// thief under the paper's FIFO-steal discipline). ok is false if the deque
// is empty.
func (d *Deque[T]) PopTail() (v T, ok bool) {
	if d.n == 0 {
		return v, false
	}
	i := (d.head + d.n - 1) % len(d.buf)
	v = d.buf[i]
	var zero T
	d.buf[i] = zero
	d.n--
	return v, true
}

// PeekHead returns the head element without removing it.
func (d *Deque[T]) PeekHead() (v T, ok bool) {
	if d.n == 0 {
		return v, false
	}
	return d.buf[d.head], true
}

// PeekTail returns the tail element without removing it.
func (d *Deque[T]) PeekTail() (v T, ok bool) {
	if d.n == 0 {
		return v, false
	}
	return d.buf[(d.head+d.n-1)%len(d.buf)], true
}

// Drain removes and returns all elements in head-to-tail order, leaving the
// deque empty. Used when a worker migrates its work before termination.
func (d *Deque[T]) Drain() []T {
	out := make([]T, 0, d.n)
	for {
		v, ok := d.PopHead()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// Snapshot returns the elements in head-to-tail order without modifying the
// deque. Used by the fault-tolerance checkpointing path and by tests.
func (d *Deque[T]) Snapshot() []T {
	out := make([]T, d.n)
	for i := 0; i < d.n; i++ {
		out[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	return out
}
