package cluster

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"phish/internal/apps/fib"
	"phish/internal/idlesim"
	"phish/internal/phishnet"
	"phish/internal/telemetry"
	"phish/internal/types"
)

// scrape GETs the endpoint's /metrics and parses the exposition.
func scrape(t *testing.T, addr string) []telemetry.Sample {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: %s", resp.Status)
	}
	samples, err := telemetry.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("scrape parse: %v", err)
	}
	return samples
}

// TestMetricsScrapeUnderFaults is the chaos telemetry check: run a job
// with fault injection and worker crashes, scrape the clearinghouse's
// /metrics over HTTP, and require the whole-job rollup to show the redo
// machinery actually firing — nonzero steal and redo counters, steal-RTT
// histogram data, and per-worker gauges.
func TestMetricsScrapeUnderFaults(t *testing.T) {
	opts := fastOpts()
	opts.Telemetry = true
	opts.StateDir = t.TempDir()
	opts.Faults = &phishnet.FaultPlan{
		Seed:        20260806,
		Duplicate:   0.05,
		Delay:       200 * time.Microsecond,
		DelayJitter: 200 * time.Microsecond,
	}
	c := New(opts)
	defer c.Close()
	for i := 0; i < 4; i++ {
		c.AddWorkstation(idlesim.Always{})
	}
	j := c.Submit(fib.Program(), fib.Root, fib.RootArgs(27))

	srv, err := j.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Let the job get going, then crash workers; survivors redo the lost
	// work from their steal records.
	crashes := 0
	deadline := time.Now().Add(60 * time.Second)
	for crashes < 3 && time.Now().Before(deadline) && !j.Done() && j.Totals().TasksRedone == 0 {
		live := j.LiveWorkers()
		// Crash an active thief: a worker that stole work and is mid-subtree
		// is the one whose death leaves an outstanding steal record for a
		// survivor to redo. Crashing the root-lineage host (full respawn) or
		// an idle worker that never managed a steal proves nothing about the
		// redo sweep — and on a single-core runner most workers are exactly
		// that.
		if len(live) >= 3 && j.Totals().TasksExecuted > 5000 {
			target := types.NoWorker
			for _, s := range j.WorkerStats() {
				id := types.WorkerID(s.Worker)
				if id == j.RootHost() || s.TasksStolen == 0 || s.TasksExecuted == 0 {
					continue
				}
				for _, l := range live {
					if l == id {
						target = id
						break
					}
				}
				if target != types.NoWorker {
					break
				}
			}
			if target != types.NoWorker && j.Crash(target) {
				crashes++
				// Past the heartbeat timeout, so the crash is detected and
				// the redo sweep runs while the job is still computing.
				time.Sleep(350 * time.Millisecond)
				continue
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if crashes == 0 {
		t.Fatal("never got to crash a worker; job finished too fast for the chaos check")
	}

	v, err := j.Wait(120 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := v.(int64), fib.Serial(27); got != want {
		t.Fatalf("fib(27) = %d, want %d (crash recovery corrupted the result)", got, want)
	}

	// The teardown scrape: piggybacked reports have long since caught up
	// (heartbeats are 10ms apart), so the rollup must show the faults.
	mustPositive := func(samples []telemetry.Sample, name string) float64 {
		t.Helper()
		v, ok := telemetry.SampleValue(samples, name)
		if !ok {
			t.Fatalf("%s missing from /metrics", name)
		}
		if v <= 0 {
			t.Fatalf("%s = %v, want > 0 under crash injection", name, v)
		}
		return v
	}
	var samples []telemetry.Sample
	redoSeen := false
	for end := time.Now().Add(5 * time.Second); time.Now().Before(end); {
		samples = scrape(t, srv.Addr())
		if v, ok := telemetry.SampleValue(samples, "phish_tasks_redone_total"); ok && v > 0 {
			redoSeen = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !redoSeen {
		t.Logf("ground truth: totals=%+v", j.Totals())
		for _, s := range j.WorkerStats() {
			t.Logf("  worker: exec=%d stolen=%d redone=%d", s.TasksExecuted, s.TasksStolen, s.TasksRedone)
		}
		t.Fatalf("phish_tasks_redone_total stayed zero after %d worker crashes", crashes)
	}
	mustPositive(samples, "phish_tasks_executed_total")
	mustPositive(samples, "phish_tasks_stolen_total")
	mustPositive(samples, "phish_journal_records_total")
	mustPositive(samples, "phish_steal_rtt_ns_count")
	mustPositive(samples, "phish_workers_reporting")

	perWorker := 0
	for _, s := range samples {
		if s.Name == "phish_worker_tasks_executed_total" && s.Label("worker") != "" {
			perWorker++
		}
	}
	if perWorker < 2 {
		t.Fatalf("per-worker series = %d, want >= 2", perWorker)
	}

	// phishtop renders the same snapshot without panicking and shows the
	// crashed workers' redone work.
	top := telemetry.RenderTop(j.ClusterSnapshot(), nil, 0)
	for _, want := range []string{"phishtop", "WORKER", "redone"} {
		if !strings.Contains(top, want) {
			t.Fatalf("phishtop output missing %q:\n%s", want, top)
		}
	}
}

// TestTelemetryRollupJSON exercises the /cluster.json endpoint phishtop
// polls: a fault-free run still produces a well-formed rollup.
func TestTelemetryRollupJSON(t *testing.T) {
	opts := fastOpts()
	opts.Telemetry = true
	c := New(opts)
	defer c.Close()
	for i := 0; i < 2; i++ {
		c.AddWorkstation(idlesim.Always{})
	}
	j := c.Submit(fib.Program(), fib.Root, fib.RootArgs(21))
	if _, err := j.Wait(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	srv, err := j.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/cluster.json", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster.json: %s", resp.Status)
	}
	// Reports ride the heartbeat cadence plus a final flush at
	// unregister; Wait returns on the root result, which races those
	// last reports by a few milliseconds, so poll briefly.
	var cs telemetry.ClusterSnapshot
	deadline := time.Now().Add(5 * time.Second)
	for {
		cs = j.ClusterSnapshot()
		if cs.Totals.TasksExecuted > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if cs.Totals.TasksExecuted <= 0 || cs.Totals.TasksExecuted > fib.TaskCount(21) {
		t.Fatalf("rollup tasks executed = %d, want in (0, %d]", cs.Totals.TasksExecuted, fib.TaskCount(21))
	}
	if len(cs.Workers) == 0 {
		t.Fatal("rollup has no worker rows; piggybacked reports never arrived")
	}
}
