package jobq

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"phish/internal/wire"
)

func TestDurablePoolSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobq.wal")
	p, err := NewDurablePool(path)
	if err != nil {
		t.Fatal(err)
	}
	id1 := p.Submit(wire.JobSpec{Name: "one"})
	id2 := p.Submit(wire.JobSpec{Name: "two"})
	id3 := p.Submit(wire.JobSpec{Name: "three"})
	p.Done(id2)
	if err := p.CloseStore(); err != nil {
		t.Fatal(err)
	}

	// Restart: the reopened pool must hold exactly the unfinished jobs,
	// with their original ids, and keep minting fresh ids past them.
	p2, err := NewDurablePool(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.CloseStore()
	jobs := p2.List()
	if len(jobs) != 2 || jobs[0].ID != id1 || jobs[0].Name != "one" || jobs[1].ID != id3 {
		t.Fatalf("recovered pool = %+v", jobs)
	}
	if id4 := p2.Submit(wire.JobSpec{Name: "four"}); id4 <= id3 {
		t.Errorf("id continuity broken: new id %d after %d", id4, id3)
	}
	if err := p2.StoreErr(); err != nil {
		t.Errorf("sticky store error: %v", err)
	}
}

func TestDurablePoolCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobq.wal")
	p, err := NewDurablePool(path)
	if err != nil {
		t.Fatal(err)
	}
	// Churn well past the compaction threshold; the log must fold back to
	// a snapshot instead of growing without bound.
	for i := 0; i < compactEvery; i++ {
		id := p.Submit(wire.JobSpec{Name: "churn"})
		p.Done(id)
	}
	keep := p.Submit(wire.JobSpec{Name: "keep"})
	p.mu.Lock()
	recs := p.store.recs
	p.mu.Unlock()
	if recs >= compactEvery {
		t.Errorf("log never compacted: %d records pending", recs)
	}
	if err := p.CloseStore(); err != nil {
		t.Fatal(err)
	}
	p2, err := NewDurablePool(path)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.CloseStore()
	jobs := p2.List()
	if len(jobs) != 1 || jobs[0].ID != keep {
		t.Fatalf("post-compaction recovery = %+v", jobs)
	}
}

func TestClientRetryReportsLastError(t *testing.T) {
	// Nothing listens here; every attempt must fail, and the final error
	// must say how many attempts were made and wrap the underlying cause.
	c := NewClientWith("127.0.0.1:1", ClientConfig{
		Timeout:   200 * time.Millisecond,
		Retries:   2,
		RetryBase: time.Millisecond,
	})
	start := time.Now()
	_, _, err := c.Request(1)
	if err == nil {
		t.Fatal("request to a dead address succeeded")
	}
	if !strings.Contains(err.Error(), "after 2 attempts") {
		t.Errorf("error does not report the attempt count: %v", err)
	}
	if errors.Unwrap(err) == nil {
		t.Errorf("error does not wrap the underlying cause: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("2 attempts with 1ms base took %v", elapsed)
	}
}

func TestClientRetriesThroughServerRestart(t *testing.T) {
	pool := NewPool()
	srv, err := NewServer(pool, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	c := NewClientWith(addr, ClientConfig{Timeout: 2 * time.Second, Retries: 8, RetryBase: 20 * time.Millisecond})
	defer c.Close()
	if _, err := c.Submit(wire.JobSpec{Name: "before"}); err != nil {
		t.Fatal(err)
	}
	_ = srv.Close()

	// Bring a server back on the same address while the client is mid-call;
	// its backoff loop should land on the new incarnation.
	done := make(chan error, 1)
	go func() {
		_, err := c.List()
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	srv2, err := NewServer(pool, addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	if err := <-done; err != nil {
		t.Errorf("call did not survive the server restart: %v", err)
	}
}
