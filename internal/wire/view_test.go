package wire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"

	"phish/internal/types"
)

// hotPayloads filters everyPayload down to the messages with a v2
// field-keyed shape.
func hotPayloads() []any {
	var out []any
	for _, p := range everyPayload() {
		if v2Tag(payloadTag(p)) && !isView(p) {
			out = append(out, p)
		}
	}
	return out
}

func isView(p any) bool { _, ok := p.(*View); return ok }

func decodeView(t *testing.T, frame []byte) (*Envelope, *View) {
	t.Helper()
	env, err := DecodeView(frame, nil)
	if err != nil {
		t.Fatalf("DecodeView: %v", err)
	}
	v, ok := env.Payload.(*View)
	if !ok {
		t.Fatalf("DecodeView payload = %T, want *View", env.Payload)
	}
	return env, v
}

// TestViewDifferential is the property test of the zero-copy decoder:
// for every hot message, the view accessors and View.Materialize must
// agree exactly with what the materializing Decode produces for the same
// frame.
func TestViewDifferential(t *testing.T) {
	for _, p := range hotPayloads() {
		env := &Envelope{Job: 2, From: -1, To: 5, Seq: 77, Payload: p}
		frame, err := Encode(env)
		if err != nil {
			t.Fatalf("encode %T: %v", p, err)
		}
		want, err := Decode(frame)
		if err != nil {
			t.Fatalf("decode %T: %v", p, err)
		}
		venv, view := decodeView(t, frame)
		if venv.Job != want.Job || venv.From != want.From || venv.To != want.To || venv.Seq != want.Seq {
			t.Fatalf("%T: view envelope header mismatch", p)
		}
		got, err := view.Materialize()
		if err != nil {
			t.Fatalf("%T: materialize: %v", p, err)
		}
		if !reflect.DeepEqual(got, want.Payload) {
			t.Errorf("%T: materialized view != decoded struct\n view   %#v\n decode %#v", p, got, want.Payload)
		}
		checkAccessors(t, view, want.Payload)
		venv.Free()
	}
}

// checkAccessors compares every lazy accessor against the decoded struct.
func checkAccessors(t *testing.T, v *View, payload any) {
	t.Helper()
	switch m := payload.(type) {
	case StealRequest:
		sr, ok := v.AsStealRequest()
		if !ok || sr.Thief() != m.Thief {
			t.Errorf("StealRequest view: Thief = %v, want %v", sr.Thief(), m.Thief)
		}
	case StealReply:
		rp, ok := v.AsStealReply()
		if !ok || rp.OK() != m.OK {
			t.Errorf("StealReply view: OK mismatch")
		}
		checkClosureView(t, rp.Task(), m.Task)
	case StealConfirm:
		sc, ok := v.AsStealConfirm()
		if !ok || sc.Record() != m.Record {
			t.Errorf("StealConfirm view: Record mismatch")
		}
	case Arg:
		a, ok := v.AsArg()
		if !ok {
			t.Fatal("AsArg failed")
		}
		val, err := a.Val()
		if err != nil {
			t.Fatalf("Arg view Val: %v", err)
		}
		if a.Cont() != m.Cont || !reflect.DeepEqual(val, m.Val) ||
			a.Crossed() != m.Crossed || a.TC() != m.TC {
			t.Errorf("Arg view mismatch: %#v", m)
		}
	case Heartbeat:
		h, ok := v.AsHeartbeat()
		if !ok || h.Worker() != m.Worker || h.SendNS() != m.SendNS {
			t.Errorf("Heartbeat view mismatch: %#v", m)
		}
	case Ack:
		a, ok := v.AsAck()
		if !ok || a.Seq() != m.Seq {
			t.Errorf("Ack view mismatch: %#v", m)
		}
	case StatReport:
		s, ok := v.AsStatReport()
		if !ok || s.Ver() != m.Ver || s.Worker() != m.Worker || s.Deque() != m.Deque ||
			s.SpanSeq() != m.SpanSeq || s.ClockOffNS() != m.ClockOffNS {
			t.Errorf("StatReport view header mismatch: %#v", m)
		}
	default:
		t.Fatalf("unexpected hot payload %T", payload)
	}
}

func checkClosureView(t *testing.T, cv ClosureView, c Closure) {
	t.Helper()
	if cv.ID() != c.ID || cv.Fn() != c.Fn || cv.Missing() != c.Missing ||
		cv.Cont() != c.Cont || cv.NoSteal() != c.NoSteal ||
		cv.CkptSeq() != c.CkptSeq || cv.TC() != c.TC {
		t.Errorf("closure view scalar mismatch: %#v", c)
	}
	args, err := cv.AppendArgs(nil)
	if err != nil {
		t.Fatalf("AppendArgs: %v", err)
	}
	if len(args) != len(c.Args) {
		t.Fatalf("AppendArgs: %d args, want %d", len(args), len(c.Args))
	}
	for i := range args {
		if !reflect.DeepEqual(args[i], c.Args[i]) {
			t.Errorf("arg %d: %#v, want %#v", i, args[i], c.Args[i])
		}
	}
	blob, ok := cv.Ckpt()
	if ok != (c.Ckpt != nil) || !bytes.Equal(blob, c.Ckpt) {
		t.Errorf("Ckpt view: (%v, %v), want %v", blob, ok, c.Ckpt)
	}
}

// TestViewOfLegacyFrame: a v1 frame from an old sender must still decode
// through DecodeView (falling back to materialization) with an identical
// payload — new daemon, old peer.
func TestViewOfLegacyFrame(t *testing.T) {
	for _, p := range hotPayloads() {
		env := &Envelope{Job: 1, From: 2, To: 3, Seq: 9, Payload: p}
		legacy, err := AppendEncodeLegacy(nil, env)
		if err != nil {
			t.Fatalf("legacy encode %T: %v", p, err)
		}
		if legacy[4] != frameVersion {
			t.Fatalf("legacy frame version = %d", legacy[4])
		}
		got, err := DecodeView(legacy, nil)
		if err != nil {
			t.Fatalf("DecodeView(v1 %T): %v", p, err)
		}
		if !reflect.DeepEqual(got, env) {
			t.Errorf("%T: v1 frame through DecodeView mismatch", p)
		}
	}
}

// rawV2Frame assembles a v2 frame by hand — the "newer encoder" a
// cross-version test needs.
func rawV2Frame(tag byte, body []byte) []byte {
	frame := []byte{0, 0, 0, 0, frameVersionV2, tag}
	frame = appendI64(frame, 1)
	frame = appendI32(frame, 2)
	frame = appendI32(frame, 3)
	frame = appendU64(frame, 4)
	frame = append(frame, body...)
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	return frame
}

// TestV2UnknownFieldSkip proves the forward-compatibility contract: a
// frame from a hypothetical newer encoder, carrying field ids this build
// has never heard of (one per wiretype, interleaved with known fields,
// in the top-level body and inside the closure sub-body), decodes without
// error and yields exactly the known fields.
func TestV2UnknownFieldSkip(t *testing.T) {
	// StealRequest with unknown fields around the known Thief.
	body := []byte{4} // field count
	body = append(body, 30<<2|wt8, 0xDE, 0xAD, 0xBE, 0xEF, 0xDE, 0xAD, 0xBE, 0xEF)
	body = append(body, fSRqThief<<2|wt4, 0, 0, 0, 7)
	body = append(body, 20<<2|wtLen, 0, 0, 0, 3, 1, 2, 3)
	body = append(body, 9<<2|wt1, 1)
	frame := rawV2Frame(tStealRequest, body)

	env, err := Decode(frame)
	if err != nil {
		t.Fatalf("Decode with unknown fields: %v", err)
	}
	if got := env.Payload.(StealRequest).Thief; got != 7 {
		t.Fatalf("Thief = %v, want 7", got)
	}
	venv, view := decodeView(t, frame)
	sr, _ := view.AsStealRequest()
	if sr.Thief() != 7 {
		t.Fatalf("view Thief = %v, want 7", sr.Thief())
	}

	// Re-encoding the view must preserve the unknown fields verbatim — a
	// relay running this build does not strip a newer sender's data.
	reenc, err := Encode(venv)
	if err != nil {
		t.Fatalf("re-encode view: %v", err)
	}
	if !bytes.Equal(reenc, frame) {
		t.Error("re-encoded view dropped or reordered unknown fields")
	}
	venv.Free()

	// Unknown fields inside the nested closure sub-body.
	sub := []byte{3}
	sub = append(sub, 40<<2|wtLen, 0, 0, 0, 2, 8, 9)
	sub = append(sub, fClFn<<2|wtLen, 0, 0, 0, 3)
	sub = append(sub, "fib"...)
	sub = append(sub, 41<<2|wt4, 0, 0, 0, 5)
	body = []byte{2, fSRpOK<<2 | wt1, 1, fSRpTask<<2 | wtLen}
	body = appendU32(body, uint32(len(sub)))
	body = append(body, sub...)
	frame = rawV2Frame(tStealReply, body)

	env, err = Decode(frame)
	if err != nil {
		t.Fatalf("Decode nested unknown fields: %v", err)
	}
	rep := env.Payload.(StealReply)
	if !rep.OK || rep.Task.Fn != "fib" {
		t.Fatalf("nested skip: %#v", rep)
	}
	venv, view = decodeView(t, frame)
	rv, _ := view.AsStealReply()
	if !rv.OK() || rv.Task().Fn() != "fib" {
		t.Fatal("view nested skip failed")
	}
	venv.Free()

	// A known id with the wrong wiretype is an unknown field: both halves
	// of the key are the field's identity.
	body = []byte{1}
	body = append(body, fSRqThief<<2|wt8, 0, 0, 0, 0, 0, 0, 0, 7)
	frame = rawV2Frame(tStealRequest, body)
	env, err = Decode(frame)
	if err != nil {
		t.Fatalf("wrong-wiretype decode: %v", err)
	}
	if got := env.Payload.(StealRequest).Thief; got != 0 {
		t.Fatalf("wrong-wiretype field was read: Thief = %v", got)
	}
}

// TestViewTruncatedFrames mirrors TestDecodeTruncatedFrames for the view
// decoder: every strict prefix (length prefix patched) must error — the
// leading field count makes a prefix-cut field list detectable.
func TestViewTruncatedFrames(t *testing.T) {
	for _, p := range hotPayloads() {
		frame, err := Encode(&Envelope{Job: 1, From: 2, To: 3, Seq: 4, Payload: p})
		if err != nil {
			t.Fatalf("encode %T: %v", p, err)
		}
		step := 1
		if len(frame) > 512 {
			step = len(frame) / 256
		}
		for k := 0; k < len(frame); k += step {
			trunc := make([]byte, k)
			copy(trunc, frame[:k])
			if k >= 4 {
				binary.BigEndian.PutUint32(trunc[:4], uint32(k-4))
			}
			if env, err := DecodeView(trunc, nil); err == nil {
				env.Free()
				t.Fatalf("%T: truncated view frame of %d/%d bytes decoded successfully", p, k, len(frame))
			}
		}
	}
}

// TestViewCorruptFrames flips bytes in valid v2 frames: DecodeView may
// reject or may yield a different valid view, but neither it, the lazy
// accessors, nor materialization may panic.
func TestViewCorruptFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, p := range hotPayloads() {
		frame, err := Encode(&Envelope{Job: 1, From: 2, To: 3, Seq: 4, Payload: p})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 64; trial++ {
			corrupt := make([]byte, len(frame))
			copy(corrupt, frame)
			for flips := 0; flips < 1+rng.Intn(4); flips++ {
				corrupt[4+rng.Intn(len(corrupt)-4)] ^= byte(1 + rng.Intn(255))
			}
			env, err := DecodeView(corrupt, nil)
			if err != nil || env == nil {
				continue
			}
			if v, ok := env.Payload.(*View); ok {
				exerciseView(v)
			}
			env.Free()
		}
	}
}

// exerciseView drives every accessor of every view type; corrupt nested
// content must surface as errors or zero values, never panics.
func exerciseView(v *View) {
	if sr, ok := v.AsStealRequest(); ok {
		_ = sr.Thief()
	}
	if rp, ok := v.AsStealReply(); ok {
		_ = rp.OK()
		cv := rp.Task()
		_, _ = cv.ID(), cv.Fn()
		_, _ = cv.AppendArgs(nil)
		_, _ = cv.Missing(), cv.Cont()
		_, _ = cv.Ckpt()
		_, _, _ = cv.NoSteal(), cv.CkptSeq(), cv.TC()
	}
	if sc, ok := v.AsStealConfirm(); ok {
		_ = sc.Record()
	}
	if a, ok := v.AsArg(); ok {
		_, _ = a.Val()
		_, _, _ = a.Cont(), a.Crossed(), a.TC()
	}
	if h, ok := v.AsHeartbeat(); ok {
		_, _ = h.Worker(), h.SendNS()
	}
	if a, ok := v.AsAck(); ok {
		_ = a.Seq()
	}
	if s, ok := v.AsStatReport(); ok {
		_, _, _ = s.Ver(), s.Worker(), s.Deque()
		_, _ = s.SpanSeq(), s.ClockOffNS()
	}
	_, _ = v.Materialize()
}

// TestArenaLifecycle pins the refcount contract: one reference per view
// plus the reader's own, data valid until the last release, arena
// recycled only after every holder is done.
func TestArenaLifecycle(t *testing.T) {
	a := NewArena()
	if got := a.refs.Load(); got != 1 {
		t.Fatalf("fresh arena refs = %d", got)
	}
	// Two batched frames sharing the arena buffer, like the UDP read loop.
	buf := a.Bytes()[:0]
	var err error
	if buf, err = AppendEncode(buf, &Envelope{Job: 1, From: 2, To: 3, Seq: 10, Payload: StealRequest{Thief: 7}}); err != nil {
		t.Fatal(err)
	}
	n1 := len(buf)
	if buf, err = AppendEncode(buf, &Envelope{Job: 1, From: 2, To: 3, Seq: 11, Payload: Arg{Val: "shared-arena"}}); err != nil {
		t.Fatal(err)
	}
	e1, err := DecodeView(buf[:n1], a)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := DecodeView(buf[n1:], a)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.refs.Load(); got != 3 {
		t.Fatalf("refs after two views = %d, want 3", got)
	}
	a.Release() // reader's reference: views keep the arena alive
	if got := a.refs.Load(); got != 2 {
		t.Fatalf("refs after reader release = %d, want 2", got)
	}
	sr, _ := e1.Payload.(*View).AsStealRequest()
	if sr.Thief() != 7 {
		t.Fatal("view 1 unreadable after reader release")
	}
	e1.Free()
	if got := a.refs.Load(); got != 1 {
		t.Fatalf("refs after first free = %d, want 1", got)
	}
	// Materializing detaches the envelope from the arena and releases.
	if err := e2.Materialize(); err != nil {
		t.Fatal(err)
	}
	arg, ok := e2.Payload.(Arg)
	if !ok || arg.Val != types.Value("shared-arena") {
		t.Fatalf("materialized payload = %#v", e2.Payload)
	}
	if got := a.refs.Load(); got != 0 {
		t.Fatalf("refs after materialize = %d, want 0", got)
	}
	// Materialize on a struct payload is a no-op; Free must not double-
	// release the arena.
	if err := e2.Materialize(); err != nil {
		t.Fatal(err)
	}
	e2.Free()
}

// TestViewPayloadName: envelopes carrying views must report the real
// message name (trace and log call sites rely on it).
func TestViewPayloadName(t *testing.T) {
	frame, err := Encode(&Envelope{Payload: Heartbeat{Worker: 5}})
	if err != nil {
		t.Fatal(err)
	}
	env, _ := decodeView(t, frame)
	if got := env.PayloadName(); got != "Heartbeat" {
		t.Errorf("PayloadName = %q, want Heartbeat", got)
	}
	env.Free()
}

// FuzzDecodeView extends the fuzz corpus to the zero-copy decoder: any
// panic in DecodeView, an accessor, materialization, or re-encode fails
// the run.
func FuzzDecodeView(f *testing.F) {
	for _, p := range everyPayload() {
		frame, err := Encode(&Envelope{Job: 1, From: 2, To: 3, Seq: 4, Payload: p})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte{0, 0, 0, 2, 2, 1, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 2, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := DecodeView(data, nil)
		if err != nil || env == nil {
			return
		}
		if v, ok := env.Payload.(*View); ok {
			exerciseView(v)
			_, _ = Encode(env)
		}
		env.Free()
	})
}
