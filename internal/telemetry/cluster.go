package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"phish/internal/stats"
	"phish/internal/wire"
)

// WorkerRow is one worker's slice of the cluster rollup: its latest
// piggybacked StatReport, decoded.
type WorkerRow struct {
	Worker int   `json:"worker"`
	Live   bool  `json:"live"`
	Deque  int32 `json:"deque"`
	AgeMS  int64 `json:"age_ms"` // since the last report arrived
	// PhiMilli is the phi-accrual suspicion score ×1000 (0 when the
	// detector is off or the worker's inter-arrival history is cold).
	PhiMilli int32 `json:"phi_milli,omitempty"`
	// Suspect carries the graded-health verdict and its reason ("phi",
	// "exec-rate", "steal-rtt"); empty when healthy.
	Suspect string         `json:"suspect,omitempty"`
	Stats   stats.Snapshot `json:"stats"`
}

// ClusterSnapshot is the clearinghouse's whole-job rollup: per-worker rows,
// job totals (stats.JobTotals semantics), and per-kind merged histograms.
// It is what /cluster.json serves and what phishtop renders.
type ClusterSnapshot struct {
	Job     int64                   `json:"job"`
	Program string                  `json:"program"`
	Epoch   uint64                  `json:"epoch"`
	Live    int                     `json:"live"`
	Workers []WorkerRow             `json:"workers"`
	Totals  stats.Snapshot          `json:"totals"`
	Hists   map[string]HistSnapshot `json:"hists,omitempty"`
}

// BuildClusterSnapshot assembles the rollup from per-worker rows and their
// raw histogram states. Rows are sorted by worker id; totals aggregate the
// rows the way the paper's Table 2 does.
func BuildClusterSnapshot(job int64, program string, epoch uint64, live int,
	rows []WorkerRow, hists [][]wire.HistState) ClusterSnapshot {

	sort.Slice(rows, func(i, j int) bool { return rows[i].Worker < rows[j].Worker })
	snaps := make([]stats.Snapshot, len(rows))
	for i, r := range rows {
		snaps[i] = r.Stats
		snaps[i].Worker = r.Worker
	}
	cs := ClusterSnapshot{
		Job: job, Program: program, Epoch: epoch, Live: live,
		Workers: rows,
		Totals:  stats.JobTotals(snaps),
	}
	merged := MergeStates(hists)
	if len(merged) > 0 {
		cs.Hists = make(map[string]HistSnapshot, len(merged))
		for k, s := range merged {
			cs.Hists[k.Name()] = s
		}
	}
	return cs
}

// WriteClusterProm renders the rollup as Prometheus text exposition:
// whole-job totals under phish_*, per-worker gauges labeled worker="id",
// and the merged latency histograms with p50/p90/p99 summary gauges.
func WriteClusterProm(w io.Writer, cs ClusterSnapshot) error {
	bw := bufio.NewWriter(w)

	fmt.Fprintf(bw, "# TYPE phish_epoch gauge\n")
	writeSample(bw, "phish_epoch", nil, int64(cs.Epoch))
	fmt.Fprintf(bw, "# TYPE phish_live_workers gauge\n")
	writeSample(bw, "phish_live_workers", nil, int64(cs.Live))
	fmt.Fprintf(bw, "# TYPE phish_workers_reporting gauge\n")
	writeSample(bw, "phish_workers_reporting", nil, int64(len(cs.Workers)))

	// Whole-job totals, one family per stats counter.
	totals := cs.Totals.Ordered()
	for i, name := range stats.OrderedNames {
		typ := typeGauge
		if isCounterName(name) {
			typ = typeCounter
		}
		fmt.Fprintf(bw, "# TYPE %s%s %s\n", Prefix, name, typ)
		writeSample(bw, Prefix+name, nil, totals[i])
	}

	// Per-worker gauges for the live table.
	perWorker := []struct {
		name string
		typ  string
		get  func(WorkerRow) int64
	}{
		{"phish_worker_deque_depth", typeGauge, func(r WorkerRow) int64 { return int64(r.Deque) }},
		{"phish_worker_live", typeGauge, func(r WorkerRow) int64 {
			if r.Live {
				return 1
			}
			return 0
		}},
		{"phish_worker_report_age_ms", typeGauge, func(r WorkerRow) int64 { return r.AgeMS }},
		{"phish_worker_tasks_executed_total", typeCounter, func(r WorkerRow) int64 { return r.Stats.TasksExecuted }},
		{"phish_worker_tasks_stolen_total", typeCounter, func(r WorkerRow) int64 { return r.Stats.TasksStolen }},
		{"phish_worker_steal_failures_total", typeCounter, func(r WorkerRow) int64 { return r.Stats.FailedSteals }},
		{"phish_worker_tasks_redone_total", typeCounter, func(r WorkerRow) int64 { return r.Stats.TasksRedone }},
		{"phish_worker_phi_milli", typeGauge, func(r WorkerRow) int64 { return int64(r.PhiMilli) }},
		{"phish_worker_suspect", typeGauge, func(r WorkerRow) int64 {
			if r.Suspect != "" {
				return 1
			}
			return 0
		}},
	}
	for _, pw := range perWorker {
		fmt.Fprintf(bw, "# TYPE %s %s\n", pw.name, pw.typ)
		for _, row := range cs.Workers {
			writeSample(bw, pw.name, []Label{{"worker", strconv.Itoa(row.Worker)}}, pw.get(row))
		}
	}

	// Merged histograms, in kind order for deterministic output.
	names := make([]string, 0, len(cs.Hists))
	for name := range cs.Hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := cs.Hists[name]
		if len(s.Bounds) > 0 {
			fmt.Fprintf(bw, "# TYPE %s%s histogram\n", Prefix, name)
			writeHistProm(bw, Prefix+name, nil, s)
		}
		fmt.Fprintf(bw, "# TYPE %s%s_q gauge\n", Prefix, name)
		for _, q := range []struct {
			label string
			q     float64
		}{{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}} {
			writeSample(bw, Prefix+name+"_q", []Label{{"q", q.label}}, s.Quantile(q.q))
		}
	}
	return bw.Flush()
}

// RenderTop formats the rollup as the phishtop live table. prev, when
// non-nil, is the previous poll's snapshot and dt the interval between
// them; steal and execution rates are derived from the difference.
func RenderTop(cs ClusterSnapshot, prev *ClusterSnapshot, dt time.Duration) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "phishtop — job %d (%s)  epoch %d  %d live / %d reporting\n",
		cs.Job, cs.Program, cs.Epoch, cs.Live, len(cs.Workers))
	t := cs.Totals
	fmt.Fprintf(&sb, "totals: exec %d  stolen %d  attempts %d  fails %d  redone %d  migrated %d  synchs %d\n",
		t.TasksExecuted, t.TasksStolen, t.StealAttempts, t.FailedSteals,
		t.TasksRedone, t.TasksMigrated, t.Synchronizations)
	if t.Retransmits != 0 || t.PeerGoneReports != 0 || t.ReRegistrations != 0 || t.RedoBatches != 0 {
		fmt.Fprintf(&sb, "faults: retransmits %d  peer-gone %d  re-registrations %d  redo batches %d  journal recs %d\n",
			t.Retransmits, t.PeerGoneReports, t.ReRegistrations, t.RedoBatches, t.JournalRecords)
	}
	if prev != nil && dt > 0 {
		sec := dt.Seconds()
		p := prev.Totals
		fmt.Fprintf(&sb, "rates:  exec %.0f/s  steals %.0f/s  attempts %.0f/s  fails %.0f/s\n",
			float64(t.TasksExecuted-p.TasksExecuted)/sec,
			float64(t.TasksStolen-p.TasksStolen)/sec,
			float64(t.StealAttempts-p.StealAttempts)/sec,
			float64(t.FailedSteals-p.FailedSteals)/sec)
	}
	for _, name := range []string{HistStealRTT.Name(), HistTaskExec.Name()} {
		if h, ok := cs.Hists[name]; ok && h.Count > 0 {
			fmt.Fprintf(&sb, "%-22s p50 %-10v p90 %-10v p99 %-10v n=%d\n", name,
				time.Duration(h.Quantile(0.5)).Round(time.Microsecond),
				time.Duration(h.Quantile(0.9)).Round(time.Microsecond),
				time.Duration(h.Quantile(0.99)).Round(time.Microsecond),
				h.Count)
		}
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%6s %4s %5s %9s %8s %9s %7s %6s %7s %6s %6s %-9s\n",
		"WORKER", "LIVE", "DEQ", "EXEC", "STOLEN", "ATTEMPTS", "FAILS", "REDO", "MSGS", "AGE", "PHI", "SUSPECT")
	for _, r := range cs.Workers {
		live := "-"
		if r.Live {
			live = "y"
		}
		suspect := r.Suspect
		if suspect == "" {
			suspect = "-"
		}
		fmt.Fprintf(&sb, "%6d %4s %5d %9d %8d %9d %7d %6d %7d %5.1fs %6.2f %-9s\n",
			r.Worker, live, r.Deque,
			r.Stats.TasksExecuted, r.Stats.TasksStolen, r.Stats.StealAttempts,
			r.Stats.FailedSteals, r.Stats.TasksRedone, r.Stats.MessagesSent,
			float64(r.AgeMS)/1000, float64(r.PhiMilli)/1000, suspect)
	}
	return sb.String()
}
