package ray

import (
	"bytes"
	"math"
	"testing"

	"phish"
)

func TestSphereIntersect(t *testing.T) {
	s := Sphere{Center: V(0, 0, 5), Radius: 1}
	// Straight-on hit.
	if tt, ok := s.intersect(V(0, 0, 0), V(0, 0, 1)); !ok || math.Abs(tt-4) > 1e-9 {
		t.Errorf("head-on: t=%v ok=%v, want 4", tt, ok)
	}
	// Miss.
	if _, ok := s.intersect(V(0, 2, 0), V(0, 0, 1)); ok {
		t.Error("ray 2 units above sphere should miss")
	}
	// Tangent-ish graze from inside: origin inside the sphere hits the far wall.
	if tt, ok := s.intersect(V(0, 0, 5), V(0, 0, 1)); !ok || math.Abs(tt-1) > 1e-9 {
		t.Errorf("from center: t=%v ok=%v, want 1", tt, ok)
	}
	// Behind the origin: no hit.
	if _, ok := s.intersect(V(0, 0, 10), V(0, 0, 1)); ok {
		t.Error("sphere behind ray origin should not hit")
	}
}

func TestVecOps(t *testing.T) {
	a, b := V(1, 2, 3), V(4, 5, 6)
	if got := a.Dot(b); got != 32 {
		t.Errorf("dot = %v", got)
	}
	if got := a.Cross(b); got != V(-3, 6, -3) {
		t.Errorf("cross = %v", got)
	}
	if got := V(3, 4, 0).Norm().Len(); math.Abs(got-1) > 1e-12 {
		t.Errorf("norm len = %v", got)
	}
	// Reflecting a downward ray off a floor flips Y.
	if got := V(1, -1, 0).Reflect(V(0, 1, 0)); got != V(1, 1, 0) {
		t.Errorf("reflect = %v", got)
	}
}

func TestSerialDeterministic(t *testing.T) {
	s, err := SceneByName("default")
	if err != nil {
		t.Fatal(err)
	}
	a := Serial(s, 40, 30)
	b := Serial(s, 40, 30)
	if !bytes.Equal(a, b) {
		t.Error("serial render is not deterministic")
	}
	if len(a) != 40*30*3 {
		t.Errorf("image size %d, want %d", len(a), 40*30*3)
	}
}

func TestRenderRowsComposition(t *testing.T) {
	s, err := SceneByName("default")
	if err != nil {
		t.Fatal(err)
	}
	whole := s.RenderRows(32, 24, 0, 24)
	var parts []byte
	for y := 0; y < 24; y += 6 {
		parts = append(parts, s.RenderRows(32, 24, y, y+6)...)
	}
	if !bytes.Equal(whole, parts) {
		t.Error("stitched bands differ from whole-image render")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	s, err := SceneByName("default")
	if err != nil {
		t.Fatal(err)
	}
	want := Serial(s, 48, 36)
	for _, p := range []int{1, 2, 4} {
		res, err := phish.RunLocal(Program(), Root, RootArgs("default", 48, 36, 4), phish.LocalOptions{Workers: p})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if got := res.Value.([]byte); !bytes.Equal(got, want) {
			t.Errorf("P=%d: parallel image differs from serial", p)
		}
	}
}

func TestRingScene(t *testing.T) {
	s, err := SceneByName("ring")
	if err != nil {
		t.Fatal(err)
	}
	img := Serial(s, 32, 24)
	// The mirrored center sphere must appear: some pixel well above
	// background brightness.
	bright := false
	for i := 0; i < len(img); i += 3 {
		if img[i] > 200 || img[i+1] > 200 || img[i+2] > 200 {
			bright = true
			break
		}
	}
	if !bright {
		t.Error("ring scene renders with no bright pixels; lighting looks broken")
	}
}

func TestWritePPM(t *testing.T) {
	var buf bytes.Buffer
	img := make([]byte, 2*2*3)
	if err := WritePPM(&buf, img, 2, 2); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("P6\n2 2\n255\n")) {
		t.Errorf("bad PPM header: %q", buf.Bytes()[:12])
	}
	if err := WritePPM(&buf, img, 3, 3); err == nil {
		t.Error("size mismatch not detected")
	}
}

func TestUnknownScene(t *testing.T) {
	if _, err := SceneByName("no-such-scene"); err == nil {
		t.Error("expected error for unknown scene")
	}
}
