// Package pfold is the paper's flagship real application: protein folding
// on a lattice. It enumerates every folding of an n-monomer polymer into
// the two-dimensional square lattice — every self-avoiding walk of n−1
// steps — and computes a histogram of the energy values, where the energy
// of a folding is its number of topological contacts: pairs of monomers
// that are adjacent on the lattice but not adjacent along the chain.
//
// The original was developed by Chris Joerg (MIT LCS) and Vijay Pande
// (MIT CMSE); this reconstruction follows the published description. It is
// the workload behind the paper's Figure 4 (execution time), Figure 5
// (speedup), and Table 2 (scheduling statistics).
//
// The search tree is explored in parallel: a task extends a partial
// folding by one monomer per feasible lattice cell, spawning a child per
// extension and a merge successor that sums the children's histograms.
// When the number of remaining monomers drops to the serial threshold the
// task enumerates the rest of its subtree inline — the grain-size knob.
package pfold

import (
	"encoding/binary"
	"fmt"
	"sync"

	"phish"
)

// DefaultThreshold is the remaining-monomer count below which a task
// switches to serial enumeration.
const DefaultThreshold = 6

// pos packs a lattice coordinate; monomer chains are far shorter than the
// offset, so coordinates never collide.
type pos int32

func pack(x, y int32) pos          { return pos((x+512)<<10 | (y + 512)) }
func (p pos) unpack() (x, y int32) { return int32(p)>>10 - 512, int32(p)&1023 - 512 }

func neighbors(p pos) [4]pos {
	x, y := p.unpack()
	return [4]pos{pack(x+1, y), pack(x-1, y), pack(x, y+1), pack(x, y-1)}
}

// HistSize returns the histogram length used for an n-monomer polymer:
// energies range over [0, maxContacts] and a monomer on the square
// lattice has at most 4 neighbors, 2 of which are chain bonds in the
// interior, so n+1 slots are comfortably enough; we keep the loose bound
// 2n+1 to make the invariant obvious.
func HistSize(n int) int { return 2*n + 1 }

// walker enumerates completions of a partial folding.
type walker struct {
	n    int
	occ  map[pos]int32 // occupied cell -> monomer index
	path []pos
	hist []int64
}

// contactsAt counts the new contacts created by placing monomer idx at p:
// occupied neighbors other than the chain predecessor.
func (w *walker) contactsAt(p pos, idx int32) int {
	c := 0
	for _, q := range neighbors(p) {
		if j, ok := w.occ[q]; ok && j != idx-1 {
			c++
		}
	}
	return c
}

// extend recursively places monomers idx..n-1, accumulating energy.
func (w *walker) extend(idx int32, energy int) {
	if int(idx) == w.n {
		w.hist[energy]++
		return
	}
	last := w.path[idx-1]
	for _, q := range neighbors(last) {
		if _, taken := w.occ[q]; taken {
			continue
		}
		dc := w.contactsAt(q, idx)
		w.occ[q] = idx
		w.path = append(w.path, q)
		w.extend(idx+1, energy+dc)
		w.path = w.path[:idx]
		delete(w.occ, q)
	}
}

// Serial is the best serial implementation: enumerate all foldings of an
// n-monomer polymer and return the energy histogram.
func Serial(n int) []int64 {
	if n < 1 {
		panic("pfold: need at least one monomer")
	}
	w := &walker{
		n:    n,
		occ:  map[pos]int32{pack(0, 0): 0},
		path: []pos{pack(0, 0)},
		hist: make([]int64, HistSize(n)),
	}
	w.extend(1, 0)
	return w.hist
}

// Foldings returns the total number of foldings of an n-monomer polymer
// (the number of self-avoiding walks of n−1 steps, OEIS A001411).
func Foldings(hist []int64) int64 {
	var total int64
	for _, h := range hist {
		total += h
	}
	return total
}

// Task arguments: n, threshold, energy-so-far, path (packed positions).
func pfoldTask(c phish.TaskCtx) {
	n := int(c.Int(0))
	threshold := int(c.Int(1))
	energy := int(c.Int(2))
	packed := c.Arg(3).([]int64)

	w := &walker{n: n, occ: make(map[pos]int32, n), hist: make([]int64, HistSize(n))}
	for i, pp := range packed {
		p := pos(pp)
		w.occ[p] = int32(i)
		w.path = append(w.path, p)
	}
	idx := int32(len(packed))

	if int(idx) == n {
		w.hist[energy]++
		c.Return(w.hist)
		return
	}
	if n-int(idx) <= threshold {
		// Small remainder: enumerate serially inside this task, one
		// first-level branch subtree at a time, checkpointing the partial
		// histogram between branches so a preempted or redone leaf skips
		// the subtrees it already summed.
		done := resumeHist(c.Checkpoint(), w.hist)
		last := w.path[idx-1]
		branch := 0
		for _, q := range neighbors(last) {
			if _, taken := w.occ[q]; taken {
				continue
			}
			branch++
			if branch <= done {
				continue
			}
			dc := w.contactsAt(q, idx)
			w.occ[q] = idx
			w.path = append(w.path, q)
			w.extend(idx+1, energy+dc)
			w.path = w.path[:idx]
			delete(w.occ, q)
			if c.Yield(packHist(branch, w.hist)) {
				return
			}
		}
		c.Return(w.hist)
		return
	}

	// Fan out: one child per feasible placement of the next monomer.
	last := w.path[idx-1]
	type ext struct {
		p  pos
		dc int
	}
	var exts []ext
	for _, q := range neighbors(last) {
		if _, taken := w.occ[q]; !taken {
			exts = append(exts, ext{q, w.contactsAt(q, idx)})
		}
	}
	if len(exts) == 0 {
		c.Return(w.hist) // dead end: contributes nothing
		return
	}
	s := c.Successor("pfold.merge", len(exts))
	for slot, e := range exts {
		child := make([]int64, len(packed)+1)
		copy(child, packed)
		child[len(packed)] = int64(e.p)
		c.Spawn("pfold", s.Cont(slot),
			int64(n), int64(threshold), int64(energy+e.dc), child)
	}
}

// packHist encodes a serial leaf's checkpoint: the count of first-level
// branches already summed, then the partial histogram.
func packHist(done int, hist []int64) []byte {
	blob := make([]byte, 1+8*len(hist))
	blob[0] = byte(done)
	for i, v := range hist {
		binary.BigEndian.PutUint64(blob[1+8*i:], uint64(v))
	}
	return blob
}

// resumeHist decodes a leaf checkpoint into hist, returning the completed
// branch count. A lattice cell has at most 4 neighbors, so a count outside
// [1, 4] — like any size mismatch — means a foreign blob; restart clean.
func resumeHist(ck []byte, hist []int64) int {
	if len(ck) != 1+8*len(hist) || ck[0] == 0 || ck[0] > 4 {
		return 0
	}
	for i := range hist {
		hist[i] = int64(binary.BigEndian.Uint64(ck[1+8*i:]))
	}
	return int(ck[0])
}

func mergeTask(c phish.TaskCtx) {
	sum := append([]int64(nil), c.Arg(0).([]int64)...)
	for i := 1; i < c.NArgs(); i++ {
		h := c.Arg(i).([]int64)
		if len(h) != len(sum) {
			panic(fmt.Sprintf("pfold: histogram length mismatch %d vs %d", len(h), len(sum)))
		}
		for j, v := range h {
			sum[j] += v
		}
	}
	c.Return(sum)
}

var (
	once sync.Once
	prog *phish.Program
)

// Program returns the pfold parallel program.
func Program() *phish.Program {
	once.Do(func() {
		prog = phish.NewProgram("pfold")
		prog.Register("pfold", pfoldTask)
		prog.Register("pfold.merge", mergeTask)
	})
	return prog
}

// Root names the program's root task function.
const Root = "pfold"

// RootArgs builds the root argument list for an n-monomer polymer with
// the given serial threshold (DefaultThreshold when threshold <= 0).
func RootArgs(n, threshold int) []phish.Value {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	return phish.Args(int64(n), int64(threshold), int64(0), []int64{int64(pack(0, 0))})
}
