// Package phish is a reproduction of the Phish system from Blumofe and
// Park, "Scheduling Large-Scale Parallel Computations on Networks of
// Workstations" (HPDC 1994): idle-initiated scheduling for dynamic
// parallel applications on a network of workstations.
//
// Applications are written in the continuation-passing-threads style: a
// task either returns a value to its continuation or spawns child tasks
// plus a successor task whose join counter waits for the children's
// results. The micro-level scheduler executes local tasks in LIFO order
// and steals from random victims in FIFO order, which preserves memory and
// communication locality; the macro-level scheduler (PhishJobQ +
// PhishJobManager, packages internal/jobq and internal/jobmanager via the
// cmd/ binaries and internal/cluster) assigns idle workstations to jobs.
//
// The quickest way in:
//
//	prog := phish.NewProgram("fib")
//	prog.Register("fib", fibTask)
//	prog.Register("sum", sumTask)
//	res, err := phish.RunLocal(prog, "fib", phish.Args(30), phish.LocalOptions{Workers: 8})
//
// RunLocal runs the job on an in-process fabric; the cmd/ binaries run the
// same programs across real machines over UDP.
package phish

import (
	"fmt"
	"sync"
	"time"

	"phish/internal/clearinghouse"
	"phish/internal/clock"
	"phish/internal/core"
	"phish/internal/model"
	"phish/internal/phishnet"
	"phish/internal/stats"
	"phish/internal/trace"
	"phish/internal/types"
	"phish/internal/wire"
)

// Trace re-exports the event tracer so callers can pass
// LocalOptions.Trace and render timelines.
type (
	// TraceBuffer records scheduling events; see internal/trace.
	TraceBuffer = trace.Buffer
	// TraceEvent is one recorded scheduling event.
	TraceEvent = trace.Event
)

// NewTrace returns an enabled trace buffer holding the last n events.
func NewTrace(n int) *TraceBuffer { return trace.NewBuffer(n) }

// RenderTrace formats a recorded timeline for humans.
func RenderTrace(events []TraceEvent) string { return trace.Render(events) }

// Distributed-tracing re-exports (the span plane, distinct from the
// per-process event TraceBuffer above).
type (
	// Span is one recorded scheduler activity on the cluster timeline.
	Span = wire.Span
	// TraceDAG is the task DAG reconstructed from a traced run, with
	// empirical T1 (work), T∞ (critical path), and per-worker
	// attribution.
	TraceDAG = trace.DAG
)

// BuildDAG reconstructs the task DAG from a traced run's spans (see
// LocalResult.Spans).
func BuildDAG(spans []Span) *TraceDAG { return trace.BuildDAG(spans) }

// Re-exported fundamental types; see the internal packages for details.
type (
	// Value is the dynamically-typed datum passed between tasks.
	Value = types.Value
	// Continuation names the destination of a task's result.
	Continuation = types.Continuation
	// TaskCtx is a task body's window onto the runtime; tasks are written
	// against this interface and run unchanged on both the Phish runtime
	// and the Strata baseline.
	TaskCtx = model.Ctx
	// SuccRef names a successor task created by the running task.
	SuccRef = model.Succ
	// TaskFunc is the body of a task.
	TaskFunc = model.Func
	// Program is a named parallel application.
	Program = core.Program
	// WorkerConfig tunes the micro-level scheduler of each worker.
	WorkerConfig = core.Config
	// Snapshot is one worker's scheduling statistics (the paper's
	// Table 2 counters).
	Snapshot = stats.Snapshot
)

// Scheduling-discipline constants, re-exported for the ablation knobs.
const (
	LIFO             = core.LIFO
	FIFO             = core.FIFO
	StealTail        = core.StealTail
	StealHead        = core.StealHead
	RandomVictim     = core.RandomVictim
	RoundRobinVictim = core.RoundRobinVictim
	SiteAwareVictim  = core.SiteAwareVictim
)

// NewProgram returns an empty program to register task functions on.
func NewProgram(name string) *Program { return core.NewProgram(name) }

// RegisterProgram makes a program joinable by name in this process (used
// by the distributed binaries; RunLocal does not need it).
func RegisterProgram(p *Program) { core.RegisterProgram(p) }

// RegisterValue registers an application value type that crosses the wire
// (gob encoding); built-in scalars, strings, []byte, []int64 and
// []float64 are pre-registered.
func RegisterValue(v any) { wire.RegisterValue(v) }

// Args builds a task argument list.
func Args(vs ...Value) []Value { return vs }

// DefaultWorkerConfig is the paper's scheduling discipline.
func DefaultWorkerConfig() WorkerConfig { return core.DefaultConfig() }

// LocalOptions configures RunLocal.
type LocalOptions struct {
	// Workers is the number of participants (default 1).
	Workers int
	// Config tunes every worker; zero value means DefaultWorkerConfig.
	Config WorkerConfig
	// Latency injects a fixed one-way message latency on the in-process
	// fabric, mimicking a slow LAN.
	Latency time.Duration
	// Sites splits the workers into this many network neighborhoods
	// (contiguous blocks); messages between different sites incur
	// InterSiteLatency instead of Latency. Combine with a site-aware
	// WorkerConfig (Victim: SiteAwareVictim) to reproduce the paper's
	// heterogeneous-network extension. Zero or one means a flat network.
	Sites int
	// InterSiteLatency is the one-way delay across the slow cut between
	// sites.
	InterSiteLatency time.Duration
	// Trace, when non-nil, records every worker's scheduling events
	// (steals, migrations, redos) into one shared timeline buffer.
	Trace *trace.Buffer
	// SpanTrace enables the distributed span plane: workers record task
	// and steal spans and ship them to the clearinghouse collector; the
	// merged cluster timeline comes back in LocalResult.Spans.
	SpanTrace bool
	// SpanSample is the per-root sampling probability (zero or >= 1
	// samples everything); only meaningful with SpanTrace.
	SpanSample float64
	// UpdateEvery overrides the clearinghouse membership push interval.
	UpdateEvery time.Duration
	// Timeout bounds the whole run (default 5 minutes).
	Timeout time.Duration
}

// LocalResult is the outcome of an in-process run.
type LocalResult struct {
	// Value is the root task's result.
	Value Value
	// Workers holds each participant's counters (ExecTime included).
	Workers []Snapshot
	// Totals aggregates Workers the way the paper's Table 2 does.
	Totals Snapshot
	// Output is everything tasks printed through the clearinghouse.
	Output string
	// Elapsed is the wall-clock time from first spawn to root result.
	Elapsed time.Duration
	// Spans is the cluster-aligned span timeline (empty unless
	// LocalOptions.SpanTrace); feed it to BuildDAG.
	Spans []Span
	// SpansDropped counts spans lost to worker ring or collector caps; a
	// nonzero value means the timeline has holes.
	SpansDropped uint64
}

// RunLocal executes prog's root task on opt.Workers workers connected by
// an in-process fabric, blocking until the root result arrives, and
// returns it with the per-worker statistics. It is the backbone of the
// examples, the tests, and every benchmark that regenerates a table or
// figure of the paper.
func RunLocal(prog *Program, rootFn string, rootArgs []Value, opt LocalOptions) (*LocalResult, error) {
	if _, err := prog.Funcs.Lookup(rootFn); err != nil {
		return nil, fmt.Errorf("phish: %w", err)
	}
	nw := opt.Workers
	if nw <= 0 {
		nw = 1
	}
	cfg := opt.Config
	if cfg == (WorkerConfig{}) {
		cfg = core.DefaultConfig()
	}
	timeout := opt.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Minute
	}

	fab := phishnet.NewFabric()
	defer fab.Close()
	if opt.Latency > 0 {
		fab.SetLatency(opt.Latency)
	}
	siteOf := func(i int) int32 { return 0 }
	if opt.Sites > 1 {
		per := (nw + opt.Sites - 1) / opt.Sites
		siteOf = func(i int) int32 { return int32(i / per) }
		base, cut := opt.Latency, opt.InterSiteLatency
		fab.SetLatencyFunc(func(from, to types.WorkerID) time.Duration {
			// The clearinghouse sits at site 0's machine room.
			sf, st := int32(0), int32(0)
			if from >= 0 {
				sf = siteOf(int(from))
			}
			if to >= 0 {
				st = siteOf(int(to))
			}
			if sf != st {
				return cut
			}
			return base
		})
	}

	chCfg := clearinghouse.DefaultConfig()
	if opt.UpdateEvery > 0 {
		chCfg.UpdateEvery = opt.UpdateEvery
	}
	spec := wire.JobSpec{
		ID:       1,
		Name:     prog.Name,
		Program:  prog.Name,
		RootFn:   rootFn,
		RootArgs: rootArgs,
	}
	ch := clearinghouse.New(spec, fab.Attach(types.ClearinghouseID), chCfg)
	go ch.Run()
	defer ch.Stop()

	workers := make([]*core.Worker, nw)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < nw; i++ {
		port := fab.Attach(types.WorkerID(i))
		wcfg := cfg
		wcfg.Site = siteOf(i)
		if opt.Trace != nil {
			wcfg.Trace = opt.Trace
		}
		if opt.SpanTrace {
			wcfg.SpanTrace = true
			wcfg.SpanSample = opt.SpanSample
		}
		workers[i] = core.NewWorker(spec.ID, types.WorkerID(i), prog, port, wcfg, clock.System)
		wg.Add(1)
		go func(w *core.Worker) {
			defer wg.Done()
			_ = w.Run()
		}(workers[i])
	}

	val, err := ch.WaitResult(timeout)
	elapsed := time.Since(start)
	if err != nil {
		// Unstick the workers so we do not leak goroutines.
		for _, w := range workers {
			w.Crash()
		}
		wg.Wait()
		return nil, fmt.Errorf("phish: %s(%s): %w", prog.Name, rootFn, err)
	}
	wg.Wait()

	res := &LocalResult{Value: val, Elapsed: elapsed, Output: ch.Output()}
	for _, w := range workers {
		res.Workers = append(res.Workers, w.Stats())
	}
	res.Totals = stats.JobTotals(res.Workers)
	if opt.SpanTrace {
		// The final span batches ride each worker's unregister drain;
		// wait for the collector count to turn nonzero and go quiet (the
		// bound covers runs whose sampling produced no spans at all).
		last, _ := ch.SpanStats()
		for i, stable := 0, 0; i < 200 && stable < 2; i++ {
			time.Sleep(2 * time.Millisecond)
			n, _ := ch.SpanStats()
			if n == last && n > 0 {
				stable++
			} else {
				stable, last = 0, n
			}
		}
		res.Spans = ch.Spans()
		_, res.SpansDropped = ch.SpanStats()
		for _, w := range workers {
			res.SpansDropped += w.SpanDrops()
		}
	}
	return res, nil
}

// SpeedupFromTimes computes the paper's P-processor speedup
// S_P = P * T1 / sum_i T_P(i), where t1 is the one-participant execution
// time and times are the per-participant times of the P-participant run.
func SpeedupFromTimes(t1 time.Duration, times []time.Duration) float64 {
	var sum time.Duration
	for _, t := range times {
		sum += t
	}
	if sum == 0 {
		return 0
	}
	p := float64(len(times))
	return p * float64(t1) / float64(sum)
}
