// Deterministic fault injection. A Faults instance sits under a transport
// (the in-memory Fabric via SetFaults, the UDP transport via its
// SetFaults, or any Conn via WrapConn) and decides, per message, whether
// to drop, duplicate, or delay it, and whether the (from, to) pair is
// currently partitioned.
//
// Determinism is the point: every ordered peer pair owns a private PRNG
// seeded from (Plan.Seed, from, to), so the verdict sequence for a pair
// depends only on the seed and that pair's message count — not on
// cross-pair interleaving, goroutine scheduling, or wall time. Two runs
// with the same seed and the same per-pair traffic make identical
// drop/duplicate/delay decisions.
package phishnet

import (
	"math/rand"
	"sync"
	"time"

	"phish/internal/types"
	"phish/internal/wire"
)

// FaultPlan configures a Faults instance. The zero plan injects nothing.
type FaultPlan struct {
	// Seed drives every probabilistic decision. Same seed, same traffic,
	// same faults.
	Seed int64
	// Drop is the probability a message is silently lost.
	Drop float64
	// Duplicate is the probability a message is delivered twice.
	Duplicate float64
	// Delay, when non-zero, holds each message for Delay ± DelayJitter
	// before delivery. On the fabric the delayed message goes through the
	// latency pump, so unequal delays reorder messages naturally.
	Delay       time.Duration
	DelayJitter time.Duration
}

// Verdict is the per-message decision for one (from, to) send.
type Verdict struct {
	Drop      bool
	Duplicate bool
	Delay     time.Duration
}

// DropEvent records one injected or partition-induced loss (test
// diagnostics; recording is off unless enabled with RecordDrops).
type DropEvent struct {
	From, To types.WorkerID
	At       time.Time
}

// GrayFault is a gray-failure window for one worker: the peer is not dead,
// it is *worse* — its traffic sees latency that ramps up over time and
// probabilistic loss that may differ by direction (the classic failing-NIC
// shape: transmit path rotten, receive path fine). Loss injected here sits
// below the reliability layer, so the victim limps — retransmits,
// backed-off acks — rather than vanishing, which is exactly the case a
// fixed heartbeat timeout handles worst.
type GrayFault struct {
	// Start anchors the latency ramp; delay added to the worker's traffic
	// grows linearly from zero at Start to MaxDelay at Start+RampOver and
	// holds there. Zero MaxDelay means no added latency.
	Start    time.Time
	RampOver time.Duration
	MaxDelay time.Duration
	// LossOut and LossIn are the probabilities a datagram the worker sends
	// (respectively receives) is lost, on top of the plan's symmetric Drop.
	LossOut, LossIn float64
}

// delayAt returns the ramped extra latency at time t.
func (g *GrayFault) delayAt(t time.Time) time.Duration {
	if g.MaxDelay <= 0 || !t.After(g.Start) {
		return 0
	}
	if g.RampOver <= 0 || t.Sub(g.Start) >= g.RampOver {
		return g.MaxDelay
	}
	return time.Duration(float64(g.MaxDelay) * float64(t.Sub(g.Start)) / float64(g.RampOver))
}

// Faults makes deterministic per-message fault decisions and tracks
// dynamic partitions. Safe for concurrent use. Probabilistic verdicts are
// deterministic in (seed, per-pair traffic); gray-failure latency ramps
// are time-varying by definition and read the wall clock.
type Faults struct {
	plan FaultPlan

	mu     sync.Mutex
	pairs  map[pairKey]*rand.Rand
	cuts   map[pairKey]bool // symmetric: stored both ways
	gray   map[types.WorkerID]*GrayFault
	record bool
	drops  []DropEvent
}

type pairKey struct{ from, to types.WorkerID }

// NewFaults builds a Faults for plan.
func NewFaults(plan FaultPlan) *Faults {
	return &Faults{
		plan:  plan,
		pairs: make(map[pairKey]*rand.Rand),
		cuts:  make(map[pairKey]bool),
		gray:  make(map[types.WorkerID]*GrayFault),
	}
}

// SetGray opens (or replaces) a gray-failure window on id. Every message
// id sends or receives is judged against it until ClearGray.
func (f *Faults) SetGray(id types.WorkerID, g GrayFault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	cp := g
	f.gray[id] = &cp
}

// ClearGray heals id's gray failure.
func (f *Faults) ClearGray(id types.WorkerID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.gray, id)
}

// pairRand returns the deterministic PRNG for the ordered pair, creating
// it on first use. Callers hold f.mu.
func (f *Faults) pairRand(k pairKey) *rand.Rand {
	r, ok := f.pairs[k]
	if !ok {
		// Mix the pair identity into the seed with two odd constants so
		// (1→2) and (2→1) — and (seed, pair) collisions in general — land
		// on unrelated streams.
		seed := f.plan.Seed + int64(k.from)*-0x61C8864680B583EB + int64(k.to)*0x6C62272E07BB0143
		r = rand.New(rand.NewSource(seed))
		f.pairs[k] = r
	}
	return r
}

// Judge decides the fate of one message from → to. It always consumes the
// same number of random draws regardless of the outcome, so a partition
// healing mid-run does not shift the pair's subsequent decisions.
func (f *Faults) Judge(from, to types.WorkerID) Verdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := pairKey{from, to}
	r := f.pairRand(k)
	// Five draws, always, outcome-independent: a plan or gray window
	// changing mid-run must not shift the pair's subsequent decisions.
	dropRoll, dupRoll, jitRoll := r.Float64(), r.Float64(), r.Float64()
	grayOutRoll, grayInRoll := r.Float64(), r.Float64()
	var v Verdict
	if f.cutLocked(from, to) {
		v.Drop = true
	}
	if f.plan.Drop > 0 && dropRoll < f.plan.Drop {
		v.Drop = true
	}
	if f.plan.Duplicate > 0 && dupRoll < f.plan.Duplicate {
		v.Duplicate = true
	}
	if f.plan.Delay > 0 {
		v.Delay = f.plan.Delay
		if f.plan.DelayJitter > 0 {
			v.Delay += time.Duration((2*jitRoll - 1) * float64(f.plan.DelayJitter))
			if v.Delay < 0 {
				v.Delay = 0
			}
		}
	}
	// Gray windows: the sender's outbound shape and the receiver's inbound
	// shape both apply; latency ramps stack.
	if len(f.gray) > 0 {
		now := time.Now()
		if g := f.gray[from]; g != nil {
			if g.LossOut > 0 && grayOutRoll < g.LossOut {
				v.Drop = true
			}
			v.Delay += g.delayAt(now)
		}
		if g := f.gray[to]; g != nil {
			if g.LossIn > 0 && grayInRoll < g.LossIn {
				v.Drop = true
			}
			v.Delay += g.delayAt(now)
		}
	}
	if v.Drop && f.record {
		f.drops = append(f.drops, DropEvent{From: from, To: to, At: time.Now()})
	}
	return v
}

// Partitioned reports whether traffic from → to is currently cut.
func (f *Faults) Partitioned(from, to types.WorkerID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cutLocked(from, to)
}

// Partition cuts traffic between a and b in both directions.
func (f *Faults) Partition(a, b types.WorkerID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cuts[pairKey{a, b}] = true
	f.cuts[pairKey{b, a}] = true
}

// Heal restores traffic between a and b.
func (f *Faults) Heal(a, b types.WorkerID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.cuts, pairKey{a, b})
	delete(f.cuts, pairKey{b, a})
}

// Isolate cuts id off from everyone: any pair involving id is dropped.
// Implemented as a wildcard so it also covers peers that first appear
// after the call.
func (f *Faults) Isolate(id types.WorkerID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cuts[pairKey{id, wildcardPeer}] = true
	f.cuts[pairKey{wildcardPeer, id}] = true
}

// Rejoin undoes Isolate (pairwise Partition cuts, if any, remain).
func (f *Faults) Rejoin(id types.WorkerID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.cuts, pairKey{id, wildcardPeer})
	delete(f.cuts, pairKey{wildcardPeer, id})
}

// HealAll clears every partition, isolation, and gray window.
func (f *Faults) HealAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cuts = make(map[pairKey]bool)
	f.gray = make(map[types.WorkerID]*GrayFault)
}

// wildcardPeer marks an Isolate entry; no real worker uses this id.
const wildcardPeer types.WorkerID = -1 << 30

// cut reports whether the ordered pair is severed, honoring wildcards.
// Callers hold f.mu.
func (f *Faults) cutLocked(from, to types.WorkerID) bool {
	return f.cuts[pairKey{from, to}] ||
		f.cuts[pairKey{from, wildcardPeer}] || f.cuts[pairKey{wildcardPeer, from}] ||
		f.cuts[pairKey{to, wildcardPeer}] || f.cuts[pairKey{wildcardPeer, to}]
}

// RecordDrops toggles drop-event recording (for tests).
func (f *Faults) RecordDrops(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.record = on
	if !on {
		f.drops = nil
	}
}

// Drops returns a copy of the recorded drop events.
func (f *Faults) Drops() []DropEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]DropEvent, len(f.drops))
	copy(out, f.drops)
	return out
}

// FaultConn interposes a Faults between a Conn and its owner: outbound
// sends are judged and dropped, duplicated, or delayed accordingly.
// Partitioned sends return ErrUnknownPeer — the peer is unreachable and
// the caller's park-and-retry path should engage, exactly as when a
// fabric port has detached. Probabilistic drops return nil (the message
// vanished in the network; a reliable conversation will retransmit).
type FaultConn struct {
	Conn
	local  types.WorkerID
	faults *Faults
}

// WrapConn wraps inner with fault injection for traffic sent by local.
func WrapConn(inner Conn, local types.WorkerID, faults *Faults) *FaultConn {
	return &FaultConn{Conn: inner, local: local, faults: faults}
}

// Send implements Conn.
func (c *FaultConn) Send(env *wire.Envelope) error {
	v := c.faults.Judge(c.local, env.To)
	if v.Drop {
		if c.faults.Partitioned(c.local, env.To) {
			return ErrUnknownPeer
		}
		return nil
	}
	send := func() error { return c.Conn.Send(env) }
	if v.Delay > 0 {
		time.AfterFunc(v.Delay, func() { _ = send() })
		if v.Duplicate {
			time.AfterFunc(v.Delay, func() { _ = send() })
		}
		return nil
	}
	if v.Duplicate {
		_ = send()
	}
	return send()
}

var _ Conn = (*FaultConn)(nil)
