package jobq

import (
	"fmt"
	"os"
	"path/filepath"

	"phish/internal/types"
	"phish/internal/wal"
	"phish/internal/wire"
)

// Durable pool storage: a snapshot+WAL in one append-only file
// (internal/wal framing). The file starts with a snapshot of the whole
// pool; each Submit and Done appends a delta; when the deltas pile up the
// file is compacted back to a single snapshot (written to a temp file and
// renamed into place, so a crash mid-compaction leaves the old log
// intact). Replaying snapshot-then-deltas rebuilds the pool a restarted
// PhishJobQ serves — submitted jobs and their ids survive the restart, so
// JobManagers polling through the outage resume exactly where they were.
//
// Grant counts (fairness bookkeeping for the LeastServed policy) are
// deliberately not persisted: they influence only which job an idle
// workstation is handed next, and restarting the rotation is harmless.

// store record kinds.
const (
	sSnapshot = iota + 1
	sSubmit
	sDone
)

// storeRecord is the single wal record type; Kind selects the fields.
type storeRecord struct {
	Kind   int
	Jobs   []wire.JobSpec // sSnapshot
	NextID types.JobID    // sSnapshot, sSubmit (value after the submit)
	Policy int            // sSnapshot
	Spec   wire.JobSpec   // sSubmit, with its assigned ID
	ID     types.JobID    // sDone
}

// compactEvery bounds how many delta records accumulate before the log is
// rewritten as one snapshot.
const compactEvery = 256

// store is the pool's disk backing. All methods are called with the
// owning Pool's mutex held; errors are sticky and degrade the pool to
// in-memory operation rather than failing requests.
type store struct {
	f    *os.File
	path string
	recs int // records appended since the last snapshot
	err  error
}

// NewDurablePool opens (or creates) the pool log at path and replays it.
// The returned pool persists every Submit and Done.
func NewDurablePool(path string) (*Pool, error) {
	p := NewPool()
	if f, err := os.Open(path); err == nil {
		replayErr := wal.Replay(f, func(r *storeRecord) error {
			switch r.Kind {
			case sSnapshot:
				p.jobs = r.Jobs
				p.nextID = r.NextID
				p.policy = Policy(r.Policy)
				p.next = 0
			case sSubmit:
				p.jobs = append(p.jobs, r.Spec)
				p.nextID = r.NextID
			case sDone:
				for i, j := range p.jobs {
					if j.ID == r.ID {
						p.jobs = append(p.jobs[:i], p.jobs[i+1:]...)
						break
					}
				}
			}
			return nil
		})
		_ = f.Close()
		if replayErr != nil {
			return nil, fmt.Errorf("jobq: replay %s: %w", path, replayErr)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("jobq: open pool log: %w", err)
	}
	st := &store{path: path}
	p.store = st
	// Compact on open: collapses any delta tail into one fresh snapshot
	// and leaves the file open for appending.
	if err := p.compactLocked(); err != nil {
		return nil, err
	}
	return p, nil
}

// CloseStore flushes and closes the pool's disk backing (no-op for pools
// without one). The pool keeps working in memory afterwards; reopen with
// NewDurablePool to resume from disk.
func (p *Pool) CloseStore() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.store == nil || p.store.f == nil {
		return nil
	}
	err := p.store.f.Close()
	p.store.f = nil
	return err
}

// StoreErr reports the sticky store write error, if any.
func (p *Pool) StoreErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.store == nil {
		return nil
	}
	return p.store.err
}

// appendLocked writes one delta record and compacts when the log has
// grown enough. Callers hold p.mu.
func (p *Pool) appendLocked(rec *storeRecord) {
	st := p.store
	if st == nil || st.f == nil || st.err != nil {
		return
	}
	if err := wal.Append(st.f, rec); err != nil {
		st.err = err
		return
	}
	if err := st.f.Sync(); err != nil {
		st.err = err
		return
	}
	st.recs++
	if st.recs >= compactEvery {
		if err := p.compactLocked(); err != nil {
			st.err = err
		}
	}
}

// compactLocked rewrites the log as a single snapshot via temp+rename and
// reopens it for appending. Callers hold p.mu.
func (p *Pool) compactLocked() error {
	st := p.store
	if st == nil {
		return nil
	}
	dir := filepath.Dir(st.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(st.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("jobq: compact: %w", err)
	}
	snap := &storeRecord{
		Kind:   sSnapshot,
		Jobs:   append([]wire.JobSpec(nil), p.jobs...),
		NextID: p.nextID,
		Policy: int(p.policy),
	}
	if err := wal.Append(tmp, snap); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("jobq: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobq: compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), st.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobq: compact: %w", err)
	}
	if st.f != nil {
		_ = st.f.Close()
	}
	f, err := os.OpenFile(st.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		st.f = nil
		return fmt.Errorf("jobq: compact: reopen: %w", err)
	}
	st.f = f
	st.recs = 0
	return nil
}
