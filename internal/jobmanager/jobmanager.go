// Package jobmanager implements the PhishJobManager: the per-workstation
// daemon of the macro-level scheduler (Section 3). It watches the owner's
// idleness policy, requests a job from the PhishJobQ when the workstation
// goes idle, starts a worker process for the assigned job, and kills the
// worker as soon as the owner returns.
//
// The paper's polling intervals — check every five minutes whether the
// users logged out, retry the job request every thirty seconds when the
// pool is empty, and check every two seconds for the owner's return while
// a worker runs — are the defaults here, driven through a clock.Clock so
// tests and the simulated cluster can compress hours into milliseconds.
package jobmanager

import (
	"sync/atomic"
	"time"

	"phish/internal/clock"
	"phish/internal/types"
	"phish/internal/wire"
)

// Policy is the owner's idleness policy: the workstation may run parallel
// jobs exactly while Idle reports true. Owner sovereignty means this is
// entirely per-workstation.
type Policy interface {
	Idle(now time.Time) bool
}

// PolicyFunc adapts a function to a Policy.
type PolicyFunc func(now time.Time) bool

// Idle implements Policy.
func (f PolicyFunc) Idle(now time.Time) bool { return f(now) }

// LoadThreshold builds a policy that calls the workstation idle while the
// load signal is below threshold — the paper's example of a more liberal
// owner policy than "nobody logged in".
func LoadThreshold(load func(time.Time) float64, threshold float64) Policy {
	return PolicyFunc(func(now time.Time) bool { return load(now) < threshold })
}

// JobSource is where the manager asks for work (the PhishJobQ: a
// jobq.Client over TCP, or the pool directly in the simulated cluster).
type JobSource interface {
	Request(ws types.WorkstationID) (wire.JobSpec, bool, error)
}

// WorkerProc is a handle on one running worker process.
type WorkerProc interface {
	// Reclaim asks the worker to leave (migrate its tasks and
	// unregister); the owner has returned.
	Reclaim()
	// Done is closed when the worker has terminated.
	Done() <-chan struct{}
	// LeaveReason reports why it terminated (valid after Done).
	LeaveReason() wire.LeaveReason
}

// Runner starts worker processes on this workstation. The worker id is
// minted by the manager and unique across the job's lifetime.
type Runner interface {
	Start(spec wire.JobSpec, worker types.WorkerID) (WorkerProc, error)
}

// Config holds the polling intervals; zero values take the paper's
// defaults.
type Config struct {
	// BusyPoll is how often to re-check idleness while the owner is
	// active (paper: 5 minutes).
	BusyPoll time.Duration
	// IdleRetry is how often to re-request a job when the pool was empty
	// (paper: 30 seconds).
	IdleRetry time.Duration
	// WorkPoll is how often to check for the owner's return while a
	// worker runs (paper: 2 seconds).
	WorkPoll time.Duration
	// DrainCooldown is how long the workstation sits out after its worker
	// was drained for degradation (wire.LeaveDrained) before requesting
	// work again. A sick machine that rejoins moments after its drain
	// defeats the drain. Zero takes 4×IdleRetry.
	DrainCooldown time.Duration
	// Clock drives the polling; nil means the system clock.
	Clock clock.Clock
}

// DefaultConfig returns the paper's intervals.
func DefaultConfig() Config {
	return Config{
		BusyPoll:  5 * time.Minute,
		IdleRetry: 30 * time.Second,
		WorkPoll:  2 * time.Second,
		Clock:     clock.System,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.BusyPoll <= 0 {
		c.BusyPoll = d.BusyPoll
	}
	if c.IdleRetry <= 0 {
		c.IdleRetry = d.IdleRetry
	}
	if c.WorkPoll <= 0 {
		c.WorkPoll = d.WorkPoll
	}
	if c.DrainCooldown <= 0 {
		c.DrainCooldown = 4 * c.IdleRetry
	}
	if c.Clock == nil {
		c.Clock = clock.System
	}
	return c
}

// Stats counts the manager's macro-level events.
type Stats struct {
	// JobsStarted counts workers launched.
	JobsStarted atomic.Int64
	// Reclaims counts workers killed because the owner returned.
	Reclaims atomic.Int64
	// Finished counts workers that ended with the job done.
	Finished atomic.Int64
	// Retired counts workers that left because parallelism shrank.
	Retired atomic.Int64
	// Drained counts workers the clearinghouse drained for degradation;
	// each one puts the workstation into its DrainCooldown.
	Drained atomic.Int64
	// EmptyPolls counts job requests that found the pool empty.
	EmptyPolls atomic.Int64
	// SourceErrors counts job requests that failed outright (PhishJobQ
	// unreachable). The manager treats these like an empty pool — the
	// PhishJobQ is "busy, poll later" — and retries on the same cadence,
	// so a restarted queue picks the workstation right back up.
	SourceErrors atomic.Int64
}

// workerIDStride spaces worker ids so that a workstation can start up to
// this many workers over a job's lifetime without id reuse.
const workerIDStride = 1 << 20

// Manager is one workstation's PhishJobManager.
type Manager struct {
	ws     types.WorkstationID
	policy Policy
	src    JobSource
	runner Runner
	cfg    Config
	clk    clock.Clock

	incarnation int32
	stats       Stats

	stopCh chan struct{}
	doneCh chan struct{}
}

// New builds a manager for workstation ws.
func New(ws types.WorkstationID, policy Policy, src JobSource, runner Runner, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	return &Manager{
		ws:     ws,
		policy: policy,
		src:    src,
		runner: runner,
		cfg:    cfg,
		clk:    cfg.Clock,
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
}

// Stats exposes the manager's counters.
func (m *Manager) Stats() *Stats { return &m.stats }

// Stop terminates the manager, reclaiming any running worker, and waits
// for Run to return.
func (m *Manager) Stop() {
	select {
	case <-m.stopCh:
	default:
		close(m.stopCh)
	}
	<-m.doneCh
}

// nextWorkerID mints a job-unique worker id: the workstation id spaced by
// a stride, plus the incarnation count, so no two workers this manager
// ever starts share an id.
func (m *Manager) nextWorkerID() types.WorkerID {
	m.incarnation++
	return types.WorkerID(int32(m.ws)*workerIDStride + m.incarnation)
}

// WorkerStation recovers the workstation that minted a worker id. Fault
// injectors and monitors use it to reason about the machine behind a
// sequence of worker incarnations.
func WorkerStation(id types.WorkerID) types.WorkstationID {
	return types.WorkstationID(int32(id) / workerIDStride)
}

// Run is the daemon loop; it blocks until Stop.
func (m *Manager) Run() {
	defer close(m.doneCh)
	for {
		if m.stopped() {
			return
		}
		if !m.policy.Idle(m.clk.Now()) {
			// Owner active: the paper's manager re-checks every 5 min.
			if !m.sleep(m.cfg.BusyPoll) {
				return
			}
			continue
		}
		spec, ok, err := m.src.Request(m.ws)
		if err != nil || !ok {
			// An unreachable PhishJobQ is not fatal — it is "busy, poll
			// later", same as an empty pool, just counted apart.
			if err != nil {
				m.stats.SourceErrors.Add(1)
			} else {
				m.stats.EmptyPolls.Add(1)
			}
			if !m.sleep(m.cfg.IdleRetry) {
				return
			}
			continue
		}
		proc, err := m.runner.Start(spec, m.nextWorkerID())
		if err != nil {
			if !m.sleep(m.cfg.IdleRetry) {
				return
			}
			continue
		}
		m.stats.JobsStarted.Add(1)
		m.supervise(proc)
		if proc.LeaveReason() == wire.LeaveDrained {
			// The clearinghouse judged this machine degraded: quarantine
			// it before offering its cycles again.
			if !m.sleep(m.cfg.DrainCooldown) {
				return
			}
		}
	}
}

// supervise watches a running worker: every WorkPoll it checks whether the
// owner returned, killing the worker if so; it returns when the worker is
// gone for any reason.
func (m *Manager) supervise(proc WorkerProc) {
	for {
		select {
		case <-proc.Done():
			m.recordExit(proc)
			return
		case <-m.stopCh:
			proc.Reclaim()
			<-proc.Done()
			m.recordExit(proc)
			return
		case <-m.clk.After(m.cfg.WorkPoll):
			if !m.policy.Idle(m.clk.Now()) {
				proc.Reclaim()
				<-proc.Done()
				m.stats.Reclaims.Add(1)
				return
			}
		}
	}
}

func (m *Manager) recordExit(proc WorkerProc) {
	switch proc.LeaveReason() {
	case wire.LeaveJobDone:
		m.stats.Finished.Add(1)
	case wire.LeaveNoWork:
		m.stats.Retired.Add(1)
	case wire.LeaveReclaimed:
		m.stats.Reclaims.Add(1)
	case wire.LeaveDrained:
		m.stats.Drained.Add(1)
	}
}

func (m *Manager) stopped() bool {
	select {
	case <-m.stopCh:
		return true
	default:
		return false
	}
}

// sleep waits for d on the manager's clock; false means Stop was called.
func (m *Manager) sleep(d time.Duration) bool {
	select {
	case <-m.clk.After(d):
		return true
	case <-m.stopCh:
		return false
	}
}
