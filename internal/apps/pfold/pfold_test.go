package pfold

import (
	"reflect"
	"testing"

	"phish"
)

// sawCounts[k] is the number of self-avoiding walks of k steps on the
// square lattice (OEIS A001411); foldings of n monomers = sawCounts[n-1].
var sawCounts = []int64{1, 4, 12, 36, 100, 284, 780, 2172, 5916, 16268, 44100, 120292, 324932}

func TestSerialFoldingCounts(t *testing.T) {
	for n := 1; n <= 10; n++ {
		hist := Serial(n)
		if got, want := Foldings(hist), sawCounts[n-1]; got != want {
			t.Errorf("n=%d: foldings = %d, want %d", n, got, want)
		}
	}
}

func TestSerialSmallHistograms(t *testing.T) {
	// n=1: one monomer, one folding, zero energy.
	if got := Serial(1); got[0] != 1 || Foldings(got) != 1 {
		t.Errorf("Serial(1) = %v", got)
	}
	// n=4: 36 foldings; the only contacts possible form the "U" shapes.
	// Exactly 8 foldings of 4 monomers have one contact (the U bends,
	// 2 orientations × 4 rotations), the rest have zero.
	hist := Serial(4)
	if hist[1] != 8 || hist[0] != 28 {
		t.Errorf("Serial(4) histogram = %v, want 28 zero-energy and 8 one-contact", hist[:3])
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		res, err := phish.RunLocal(Program(), Root, RootArgs(n, 3), phish.LocalOptions{Workers: 1})
		if err != nil {
			t.Fatalf("pfold(%d): %v", n, err)
		}
		got := res.Value.([]int64)
		if want := Serial(n); !reflect.DeepEqual(got, want) {
			t.Errorf("pfold(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestParallelMultiWorker(t *testing.T) {
	want := Serial(10)
	for _, p := range []int{2, 4, 8} {
		res, err := phish.RunLocal(Program(), Root, RootArgs(10, 4), phish.LocalOptions{Workers: p})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if got := res.Value.([]int64); !reflect.DeepEqual(got, want) {
			t.Errorf("P=%d: histogram mismatch\n got %v\nwant %v", p, got, want)
		}
	}
}

func TestThresholdInvariance(t *testing.T) {
	// The grain-size knob must not change the answer.
	want := Serial(9)
	for _, th := range []int{1, 2, 5, 9, 100} {
		res, err := phish.RunLocal(Program(), Root, RootArgs(9, th), phish.LocalOptions{Workers: 3})
		if err != nil {
			t.Fatalf("threshold=%d: %v", th, err)
		}
		if got := res.Value.([]int64); !reflect.DeepEqual(got, want) {
			t.Errorf("threshold=%d: histogram mismatch", th)
		}
	}
}

func TestPackUnpack(t *testing.T) {
	for _, xy := range [][2]int32{{0, 0}, {1, -1}, {-5, 7}, {100, -100}, {-511, 511}} {
		p := pack(xy[0], xy[1])
		x, y := p.unpack()
		if x != xy[0] || y != xy[1] {
			t.Errorf("pack/unpack(%v) = (%d,%d)", xy, x, y)
		}
	}
}
