package phishnet

import (
	"sync"
	"testing"
	"time"

	"phish/internal/types"
	"phish/internal/wire"
)

func recvOne(t *testing.T, c Conn, timeout time.Duration) *wire.Envelope {
	t.Helper()
	select {
	case env, ok := <-c.Recv():
		if !ok {
			t.Fatal("recv channel closed")
		}
		return env
	case <-time.After(timeout):
		t.Fatal("timed out waiting for a message")
		return nil
	}
}

func TestFabricDelivery(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	a := f.Attach(1)
	b := f.Attach(2)
	if err := a.Send(&wire.Envelope{From: 1, To: 2, Payload: wire.Heartbeat{Worker: 1}}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, b, time.Second)
	if env.From != 1 {
		t.Errorf("from = %d", env.From)
	}
}

func TestFabricUnknownPeer(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	a := f.Attach(1)
	if err := a.Send(&wire.Envelope{To: 9}); err != ErrUnknownPeer {
		t.Errorf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestFabricClosedPortSendFails(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	a := f.Attach(1)
	b := f.Attach(2)
	_ = b.Close()
	if err := a.Send(&wire.Envelope{To: 2}); err == nil {
		t.Error("send to closed port succeeded")
	}
}

func TestFabricOrderPreserved(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	a := f.Attach(1)
	b := f.Attach(2)
	const n = 1000
	for i := 0; i < n; i++ {
		if err := a.Send(&wire.Envelope{To: 2, Seq: uint64(i), Payload: wire.Ack{Seq: uint64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		env := recvOne(t, b, time.Second)
		if env.Seq != uint64(i) {
			t.Fatalf("message %d arrived out of order (seq %d)", i, env.Seq)
		}
	}
}

func TestFabricUnboundedBuffering(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	a := f.Attach(1)
	b := f.Attach(2)
	// Nobody reads b while we send far beyond any channel buffer; sends
	// must not block (split-phase requirement).
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100000; i++ {
			_ = a.Send(&wire.Envelope{To: 2, Seq: uint64(i)})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("sender blocked; mailbox is not unbounded")
	}
	for i := 0; i < 100000; i++ {
		recvOne(t, b, time.Second)
	}
}

func TestFabricLatency(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	f.SetLatency(30 * time.Millisecond)
	a := f.Attach(1)
	b := f.Attach(2)
	start := time.Now()
	_ = a.Send(&wire.Envelope{To: 2})
	recvOne(t, b, time.Second)
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("message arrived after %v; latency not applied", d)
	}
	// Order must survive latency.
	for i := 0; i < 50; i++ {
		_ = a.Send(&wire.Envelope{To: 2, Seq: uint64(i), Payload: wire.Ack{Seq: uint64(i)}})
	}
	for i := 0; i < 50; i++ {
		env := recvOne(t, b, time.Second)
		if env.Seq != uint64(i) {
			t.Fatalf("latency pump reordered: got seq %d at position %d", env.Seq, i)
		}
	}
}

func TestUDPBasicExchange(t *testing.T) {
	a, err := ListenUDP(1, 1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenUDP(1, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.SetPeer(2, b.LocalAddr())
	b.SetPeer(1, a.LocalAddr())

	if err := a.Send(&wire.Envelope{To: 2, Payload: wire.Heartbeat{Worker: 1}}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, b, 2*time.Second)
	if env.From != 1 {
		t.Errorf("from = %d", env.From)
	}
	// Hot messages arrive as zero-copy views over UDP; accessors read the
	// fields in place, and Materialize converts for struct consumers.
	v, ok := env.Payload.(*wire.View)
	if !ok {
		t.Fatalf("payload = %T, want *wire.View", env.Payload)
	}
	if hb, ok := v.AsHeartbeat(); !ok || hb.Worker() != 1 {
		t.Errorf("heartbeat view: ok=%v worker=%d", ok, hb.Worker())
	}
	if err := env.Materialize(); err != nil {
		t.Fatal(err)
	}
	if hb, ok := env.Payload.(wire.Heartbeat); !ok || hb.Worker != 1 {
		t.Errorf("materialized payload = %#v", env.Payload)
	}

	// Reply the other way.
	if err := b.Send(&wire.Envelope{To: 1, Payload: wire.StealRequest{Thief: 2}}); err != nil {
		t.Fatal(err)
	}
	env = recvOne(t, a, 2*time.Second)
	v, ok = env.Payload.(*wire.View)
	if !ok {
		t.Fatalf("payload = %T, want *wire.View", env.Payload)
	}
	if sr, ok := v.AsStealRequest(); !ok || sr.Thief() != 2 {
		t.Errorf("steal-request view: ok=%v thief=%d", ok, sr.Thief())
	}
	env.Free()
}

func TestUDPManyMessagesNoDuplicates(t *testing.T) {
	a, _ := ListenUDP(1, 1, "127.0.0.1:0")
	defer a.Close()
	b, _ := ListenUDP(1, 2, "127.0.0.1:0")
	defer b.Close()
	a.SetPeer(2, b.LocalAddr())
	b.SetPeer(1, a.LocalAddr())

	const n = 500
	for i := 0; i < n; i++ {
		if err := a.Send(&wire.Envelope{To: 2, Payload: wire.Ack{}}); err != nil {
			t.Fatal(err)
		}
	}
	// wire.Ack payloads are transport-level and filtered; use Heartbeats.
	seen := make(map[uint64]bool)
	for i := 0; i < n; i++ {
		if err := a.Send(&wire.Envelope{To: 2, Payload: wire.Heartbeat{Worker: types.WorkerID(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(10 * time.Second)
	for len(seen) < n {
		select {
		case env, ok := <-b.Recv():
			if !ok {
				t.Fatal("closed early")
			}
			if seen[env.Seq] {
				t.Fatalf("duplicate seq %d delivered", env.Seq)
			}
			seen[env.Seq] = true
		case <-deadline:
			t.Fatalf("only %d/%d distinct messages after 10s", len(seen), n)
		}
	}
}

func TestUDPUnknownPeer(t *testing.T) {
	a, _ := ListenUDP(1, 1, "127.0.0.1:0")
	defer a.Close()
	if err := a.Send(&wire.Envelope{To: 42}); err != ErrUnknownPeer {
		t.Errorf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestUDPLearnsPeerFromInbound(t *testing.T) {
	a, _ := ListenUDP(1, 1, "127.0.0.1:0")
	defer a.Close()
	b, _ := ListenUDP(1, 2, "127.0.0.1:0")
	defer b.Close()
	// Only b knows a; a should learn b's address from the first inbound
	// datagram (how the clearinghouse learns its workers).
	b.SetPeer(1, a.LocalAddr())
	if err := b.Send(&wire.Envelope{To: 1, Payload: wire.Register{Worker: 2}}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, a, 2*time.Second)
	if err := a.Send(&wire.Envelope{To: 2, Payload: wire.RegisterReply{Assigned: 2}}); err != nil {
		t.Fatalf("reply to learned peer: %v", err)
	}
	env := recvOne(t, b, 2*time.Second)
	if _, ok := env.Payload.(wire.RegisterReply); !ok {
		t.Errorf("payload = %T", env.Payload)
	}
}

func TestDedupWindow(t *testing.T) {
	d := newDedupWindow()
	if !d.add(1) || d.add(1) {
		t.Error("basic dedup broken")
	}
	// Fill far beyond the window; early entries may be forgotten but
	// recent ones must still deduplicate.
	for i := uint64(2); i < udpDedupWindow*2; i++ {
		if !d.add(i) {
			t.Fatalf("fresh seq %d rejected", i)
		}
	}
	recent := uint64(udpDedupWindow*2 - 5)
	if d.add(recent) {
		t.Errorf("recent seq %d not deduplicated", recent)
	}
	if len(d.seen) > udpDedupWindow+1 {
		t.Errorf("dedup memory grew to %d entries; window is %d", len(d.seen), udpDedupWindow)
	}
}

func TestFabricLatencyFuncNoLoss(t *testing.T) {
	// Regression: messages routed through the latency pump must never be
	// lost, including under concurrent senders, mixed zero/nonzero
	// latencies, and receivers that appear one message at a time.
	f := NewFabric()
	defer f.Close()
	f.SetLatencyFunc(func(from, to types.WorkerID) time.Duration {
		if from >= 0 && to >= 0 && (from%2) != (to%2) {
			return 300 * time.Microsecond
		}
		return 0
	})
	const n = 6
	ports := make([]*Port, n)
	for i := range ports {
		ports[i] = f.Attach(types.WorkerID(i))
	}
	const perPair = 400
	var wg sync.WaitGroup
	for src := 0; src < n; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for k := 0; k < perPair; k++ {
				for dst := 0; dst < n; dst++ {
					if dst == src {
						continue
					}
					if err := ports[src].Send(&wire.Envelope{From: types.WorkerID(src), To: types.WorkerID(dst)}); err != nil {
						t.Errorf("send %d->%d: %v", src, dst, err)
						return
					}
				}
			}
		}(src)
	}
	wg.Wait()
	want := perPair * (n - 1)
	for dst := 0; dst < n; dst++ {
		for got := 0; got < want; got++ {
			select {
			case _, ok := <-ports[dst].Recv():
				if !ok {
					t.Fatalf("port %d closed early", dst)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("port %d: lost messages: got %d of %d", dst, got, want)
			}
		}
	}
}

func TestFabricLatencySurvivesPortChurn(t *testing.T) {
	// Delayed messages to ports that close mid-flight must be dropped
	// without wedging the pump, and later messages to live ports must
	// still arrive.
	f := NewFabric()
	defer f.Close()
	f.SetLatency(200 * time.Microsecond)
	a := f.Attach(1)
	b := f.Attach(2)
	c := f.Attach(3)
	for i := 0; i < 200; i++ {
		_ = a.Send(&wire.Envelope{From: 1, To: 2})
		_ = a.Send(&wire.Envelope{From: 1, To: 3})
		if i == 50 {
			_ = b.Close() // b vanishes with messages in the pump
		}
	}
	got := 0
	deadline := time.After(5 * time.Second)
	for got < 200 {
		select {
		case _, ok := <-c.Recv():
			if !ok {
				t.Fatal("live port closed")
			}
			got++
		case <-deadline:
			t.Fatalf("live port received %d of 200 after churn", got)
		}
	}
}
