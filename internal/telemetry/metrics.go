package telemetry

import (
	"phish/internal/stats"
	"phish/internal/wire"
)

// HistKind identifies one of the runtime's latency histograms. Kinds are
// part of the StatReport wire format: append new kinds, never renumber.
type HistKind int32

const (
	// HistStealRTT is the thief-side steal round trip: StealRequest sent
	// to StealReply received.
	HistStealRTT HistKind = iota
	// HistTaskExec is the wall time of one task function body.
	HistTaskExec
	// HistWALAppend is one journal append including fsync.
	HistWALAppend
	// HistRetxBackoff is the backoff interval preceding each UDP
	// retransmit.
	HistRetxBackoff
	// HistRegister is the time from first Register send to RegisterReply.
	HistRegister
	histKindCount
)

var histNames = [histKindCount]string{
	"steal_rtt_ns", "task_exec_ns", "wal_append_ns",
	"retransmit_backoff_ns", "register_latency_ns",
}

var histHelp = [histKindCount]string{
	"Steal round-trip time, request sent to reply received (ns).",
	"Task function body execution time (ns).",
	"Clearinghouse journal append+fsync latency (ns).",
	"Backoff interval preceding each UDP retransmit (ns).",
	"Registration latency, first send to reply (ns).",
}

// Name returns the histogram's exposition name without the phish_ prefix.
func (k HistKind) Name() string {
	if k >= 0 && k < histKindCount {
		return histNames[k]
	}
	return "unknown_hist"
}

// Prefix is prepended to every Phish metric name in exposition.
const Prefix = "phish_"

// Metrics bundles one participant's latency histograms and the registry
// they live in. A nil *Metrics is the disabled plane: every Observe on a
// nil bundle's histograms is a no-op behind one pointer check, so hot
// paths pay nothing when telemetry is off.
type Metrics struct {
	Reg   *Registry
	hists [histKindCount]*Histogram
}

// NewMetrics builds an enabled bundle with its own registry.
func NewMetrics() *Metrics {
	return NewMetricsIn(NewRegistry())
}

// NewMetricsIn builds a bundle whose histograms register in r (so a
// process can expose scheduler histograms and daemon-specific instruments
// from one endpoint).
func NewMetricsIn(r *Registry) *Metrics {
	m := &Metrics{Reg: r}
	for k := HistKind(0); k < histKindCount; k++ {
		m.hists[k] = r.Histogram(Prefix+histNames[k], histHelp[k], DefaultLatencyBounds())
	}
	return m
}

// Hist returns the histogram for kind k; nil on a nil bundle or unknown
// kind, which Observe tolerates.
func (m *Metrics) Hist(k HistKind) *Histogram {
	if m == nil || k < 0 || k >= histKindCount {
		return nil
	}
	return m.hists[k]
}

// StealRTT, TaskExec, WALAppend, RetxBackoff and Register are nil-safe
// accessors for the five kinds.
func (m *Metrics) StealRTT() *Histogram    { return m.Hist(HistStealRTT) }
func (m *Metrics) TaskExec() *Histogram    { return m.Hist(HistTaskExec) }
func (m *Metrics) WALAppend() *Histogram   { return m.Hist(HistWALAppend) }
func (m *Metrics) RetxBackoff() *Histogram { return m.Hist(HistRetxBackoff) }
func (m *Metrics) Register() *Histogram    { return m.Hist(HistRegister) }

// Export snapshots every histogram with recorded samples into wire form
// for a StatReport. Nil-safe: a disabled plane exports nothing.
func (m *Metrics) Export() []wire.HistState {
	if m == nil {
		return nil
	}
	var out []wire.HistState
	for k := HistKind(0); k < histKindCount; k++ {
		s := m.hists[k].Snapshot()
		if s.Count == 0 {
			continue
		}
		out = append(out, wire.HistState{Kind: int32(k), Count: s.Count, Sum: s.Sum, Counts: s.Counts})
	}
	return out
}

// StateSnapshot converts one wire histogram state back into a snapshot,
// restoring the bounds both ends know for the kind. States whose bucket
// count does not match the known layout (a different version) come back
// with nil bounds; Quantile on them returns 0 rather than lying.
func StateSnapshot(h wire.HistState) HistSnapshot {
	s := HistSnapshot{Counts: h.Counts, Count: h.Count, Sum: h.Sum}
	bounds := DefaultLatencyBounds()
	if HistKind(h.Kind) < histKindCount && len(h.Counts) == len(bounds)+1 {
		s.Bounds = bounds
	}
	return s
}

// MergeStates folds wire histogram states from many workers into
// per-kind snapshots.
func MergeStates(reports [][]wire.HistState) map[HistKind]HistSnapshot {
	out := make(map[HistKind]HistSnapshot)
	for _, states := range reports {
		for _, h := range states {
			k := HistKind(h.Kind)
			s := out[k]
			in := StateSnapshot(h)
			if len(in.Bounds) == 0 {
				// Unknown layout: the bucket counts are uninterpretable, so
				// fold count/sum only — totals stay right, and the result
				// does not depend on report order.
				s.Count += in.Count
				s.Sum += in.Sum
				out[k] = s
				continue
			}
			s.Merge(in)
			out[k] = s
		}
	}
	return out
}

// RegisterStats bridges a stats snapshot source into r: every counter in
// stats.OrderedNames becomes a phish_-prefixed scrape-time metric. Names
// ending in "_total" expose as counters, the rest as gauges.
func RegisterStats(r *Registry, src func() stats.Snapshot, labels ...Label) {
	for i, name := range stats.OrderedNames {
		i := i
		read := func() int64 { return src().Ordered()[i] }
		if isCounterName(name) {
			r.CounterFunc(Prefix+name, "", read, labels...)
		} else {
			r.GaugeFunc(Prefix+name, "", read, labels...)
		}
	}
}

func isCounterName(name string) bool {
	return len(name) > 6 && name[len(name)-6:] == "_total"
}
