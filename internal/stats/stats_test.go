package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHighWaterMark(t *testing.T) {
	var c Counters
	for i := 0; i < 5; i++ {
		c.TaskCreated()
	}
	for i := 0; i < 3; i++ {
		c.TaskRetired()
	}
	for i := 0; i < 2; i++ {
		c.TaskAdopted()
	}
	s := c.Snapshot()
	if s.TasksSpawned != 5 {
		t.Errorf("spawned = %d, want 5", s.TasksSpawned)
	}
	if got := c.TasksInUse.Load(); got != 4 {
		t.Errorf("in use = %d, want 4", got)
	}
	if s.MaxTasksInUse != 5 {
		t.Errorf("max in use = %d, want 5", s.MaxTasksInUse)
	}
}

func TestHighWaterMarkConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	const g, per = 8, 1000
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.TaskCreated()
				c.TaskRetired()
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.TasksSpawned != g*per {
		t.Errorf("spawned = %d, want %d", s.TasksSpawned, g*per)
	}
	if c.TasksInUse.Load() != 0 {
		t.Errorf("in use = %d, want 0", c.TasksInUse.Load())
	}
	if s.MaxTasksInUse < 1 || s.MaxTasksInUse > g {
		t.Errorf("max in use = %d, want within [1,%d]", s.MaxTasksInUse, g)
	}
}

func TestJobTotals(t *testing.T) {
	a := Snapshot{TasksExecuted: 10, MaxTasksInUse: 3, TasksStolen: 1, Synchronizations: 9,
		NonLocalSynchs: 1, MessagesSent: 5, ExecTime: 2 * time.Second}
	b := Snapshot{TasksExecuted: 20, MaxTasksInUse: 7, TasksStolen: 2, Synchronizations: 19,
		NonLocalSynchs: 2, MessagesSent: 6, ExecTime: time.Second}
	tot := JobTotals([]Snapshot{a, b})
	if tot.TasksExecuted != 30 || tot.TasksStolen != 3 || tot.Synchronizations != 28 ||
		tot.NonLocalSynchs != 3 || tot.MessagesSent != 11 {
		t.Errorf("bad sums: %+v", tot)
	}
	if tot.MaxTasksInUse != 7 {
		t.Errorf("max in use should be the max over workers, got %d", tot.MaxTasksInUse)
	}
	if tot.ExecTime != 2*time.Second {
		t.Errorf("exec time should be the max over workers, got %v", tot.ExecTime)
	}
	if tot.Worker != 2 {
		t.Errorf("worker count = %d, want 2", tot.Worker)
	}
}

func TestJobTotalsEmpty(t *testing.T) {
	tot := JobTotals(nil)
	if tot.TasksExecuted != 0 || tot.MaxTasksInUse != 0 {
		t.Errorf("empty totals not zero: %+v", tot)
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{TasksExecuted: 42, MaxTasksInUse: 7}
	str := s.String()
	for _, want := range []string{"tasks executed 42", "max tasks in use 7", "non-local synchs"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}
