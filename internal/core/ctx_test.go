package core_test

import (
	"strings"
	"testing"
	"time"

	"phish/internal/clearinghouse"
	"phish/internal/clock"
	"phish/internal/core"
	"phish/internal/model"
	"phish/internal/phishnet"
	"phish/internal/types"
	"phish/internal/wire"
)

// ctxProg exercises every TaskCtx primitive: typed argument accessors,
// Preset (including presetting every slot so the successor is immediately
// ready), SuccessorCont with an explicit continuation, Send, and Print.
func ctxProg() *core.Program {
	p := core.NewProgram("ctxtest")
	p.Register("root", func(c model.Ctx) {
		// Typed accessors.
		f := c.Float(0)
		s := c.String(1)
		n := c.Int(2)
		if f != 2.5 || s != "hello" || n != 7 {
			panic("argument accessors broken")
		}
		c.Print("root on worker %d: %s", c.Worker(), s)

		// A fan of two joins: the final combiner inherits the root's
		// continuation, and a side join feeds it through an explicit
		// continuation.
		final := c.Successor("final", 2)
		side := c.SuccessorCont("side", 3, final.Cont(0))
		c.Preset(side, 0, int64(100))
		c.Spawn("leaf", side.Cont(1), int64(1))
		c.Spawn("leaf", side.Cont(2), int64(2))
		// Preset the final's other slot with a constant.
		c.Preset(final, 1, int64(1000))

		// A successor whose every slot is preset runs immediately and
		// Sends to a discard continuation, exercising Send + nil cont.
		all := c.SuccessorCont("allpreset", 2, types.NilContinuation)
		c.Preset(all, 0, int64(1))
		c.Preset(all, 1, int64(2))
	})
	p.Register("leaf", func(c model.Ctx) { c.Return(c.Int(0) * 10) })
	p.Register("side", func(c model.Ctx) {
		// 100 + 10 + 20
		c.Return(c.Int(0) + c.Int(1) + c.Int(2))
	})
	p.Register("final", func(c model.Ctx) {
		// 130 + 1000
		c.Return(c.Int(0) + c.Int(1))
	})
	p.Register("allpreset", func(c model.Ctx) {
		if c.NArgs() != 2 {
			panic("wrong arity")
		}
		c.Send(types.NilContinuation, c.Int(0)+c.Int(1)) // discarded
		c.Return(int64(0))                               // also discarded (nil cont)
	})
	return p
}

func TestTaskCtxSurface(t *testing.T) {
	fab := phishnet.NewFabric()
	defer fab.Close()
	spec := wire.JobSpec{ID: 1, Name: "ctxtest", Program: "ctxtest",
		RootFn: "root", RootArgs: []types.Value{2.5, "hello", int64(7)}}
	ch := clearinghouse.New(spec, fab.Attach(types.ClearinghouseID), clearinghouse.DefaultConfig())
	go ch.Run()
	defer ch.Stop()

	w := core.NewWorker(1, 0, ctxProg(), fab.Attach(0), core.DefaultConfig(), clock.System)
	go func() { _ = w.Run() }()

	v, err := ch.WaitResult(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.(int64); got != 1130 {
		t.Errorf("result = %d, want 1130", got)
	}
	// Print went through the clearinghouse.
	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(ch.Output(), "root on worker 0: hello") && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if out := ch.Output(); !strings.Contains(out, "root on worker 0: hello") {
		t.Errorf("clearinghouse output = %q", out)
	}
}

func TestIntAcceptsGobWidths(t *testing.T) {
	p := core.NewProgram("widths")
	p.Register("root", func(c model.Ctx) {
		// int, int32, int64, uint64 all flow through Int.
		total := c.Int(0) + c.Int(1) + c.Int(2) + c.Int(3)
		c.Return(total)
	})
	fab := phishnet.NewFabric()
	defer fab.Close()
	spec := wire.JobSpec{ID: 1, Name: "widths", Program: "widths",
		RootFn: "root", RootArgs: []types.Value{int(1), int32(2), int64(3), uint64(4)}}
	ch := clearinghouse.New(spec, fab.Attach(types.ClearinghouseID), clearinghouse.DefaultConfig())
	go ch.Run()
	defer ch.Stop()
	w := core.NewWorker(1, 0, p, fab.Attach(0), core.DefaultConfig(), clock.System)
	go func() { _ = w.Run() }()
	v, err := ch.WaitResult(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.(int64) != 10 {
		t.Errorf("sum = %v", v)
	}
}

func TestNilSpawnArgPanics(t *testing.T) {
	p := core.NewProgram("nilarg")
	p.Register("root", func(c model.Ctx) {
		defer func() {
			if recover() == nil {
				panic("spawn with nil arg must panic")
			}
			c.Return(int64(1)) // panic observed, job still completes
		}()
		c.Spawn("root", types.NilContinuation, nil)
	})
	fab := phishnet.NewFabric()
	defer fab.Close()
	spec := wire.JobSpec{ID: 1, Name: "nilarg", Program: "nilarg",
		RootFn: "root", RootArgs: []types.Value{}}
	ch := clearinghouse.New(spec, fab.Attach(types.ClearinghouseID), clearinghouse.DefaultConfig())
	go ch.Run()
	defer ch.Stop()
	w := core.NewWorker(1, 0, p, fab.Attach(0), core.DefaultConfig(), clock.System)
	go func() { _ = w.Run() }()
	if v, err := ch.WaitResult(10 * time.Second); err != nil || v.(int64) != 1 {
		t.Fatalf("v=%v err=%v", v, err)
	}
}
