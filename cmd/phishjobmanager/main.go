// Command phishjobmanager is the per-workstation daemon of the macro-level
// scheduler. It watches the owner's idleness policy; when the workstation
// goes idle it requests a job from the PhishJobQ and starts a phishworker
// process for it, and when the owner returns it kills the worker (SIGTERM,
// which the worker turns into a graceful migration).
//
// Usage:
//
//	phishjobmanager -jobq host:7070 -ws 3 [-policy always|load|sim]
//
// Policies:
//
//	always — the workstation is always available (dedicated machine)
//	load   — available while the 1-minute load average is below -load-max
//	sim    — synthetic owner activity (for demos; see -sim-* flags)
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"phish/internal/idlesim"
	"phish/internal/jobmanager"
	"phish/internal/jobq"
	"phish/internal/telemetry"
	"phish/internal/types"
	"phish/internal/wire"
)

func main() {
	jobqAddr := flag.String("jobq", "127.0.0.1:7070", "PhishJobQ address")
	ws := flag.Int("ws", 1, "workstation id (unique across the Phish network)")
	policyName := flag.String("policy", "always", "idleness policy: always, load, sim")
	loadMax := flag.Float64("load-max", 0.5, "load policy: idle while loadavg < this")
	simBusy := flag.Duration("sim-busy", time.Minute, "sim policy: mean busy period")
	simIdle := flag.Duration("sim-idle", 2*time.Minute, "sim policy: mean idle period")
	workerBin := flag.String("worker-bin", "", "path to the phishworker binary (default: next to this binary)")
	busyPoll := flag.Duration("busy-poll", 5*time.Minute, "idleness re-check while the owner is active (paper: 5m)")
	idleRetry := flag.Duration("idle-retry", 30*time.Second, "job-request retry while the pool is empty (paper: 30s)")
	workPoll := flag.Duration("work-poll", 2*time.Second, "owner-return check while a worker runs (paper: 2s)")
	metricsAddr := flag.String("metrics", "", "serve /metrics and /healthz on this HTTP address (off when empty)")
	flag.Parse()

	policy, err := buildPolicy(*policyName, *loadMax, *simBusy, *simIdle)
	if err != nil {
		log.Fatalf("phishjobmanager: %v", err)
	}
	bin := *workerBin
	if bin == "" {
		self, err := os.Executable()
		if err != nil {
			log.Fatalf("phishjobmanager: %v", err)
		}
		bin = filepath.Join(filepath.Dir(self), "phishworker")
	}
	if _, err := os.Stat(bin); err != nil {
		log.Fatalf("phishjobmanager: worker binary: %v (set -worker-bin)", err)
	}

	cli := jobq.NewClient(*jobqAddr)
	defer cli.Close()

	cfg := jobmanager.DefaultConfig()
	cfg.BusyPoll = *busyPoll
	cfg.IdleRetry = *idleRetry
	cfg.WorkPoll = *workPoll
	mgr := jobmanager.New(types.WorkstationID(*ws), policy, jobSource{cli},
		&execRunner{bin: bin}, cfg)

	fmt.Printf("phishjobmanager: workstation %d, policy %s, jobq %s\n", *ws, *policyName, *jobqAddr)
	go mgr.Run()

	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		telemetry.RegisterRuntime(reg)
		st := mgr.Stats()
		wsLabel := telemetry.Label{Name: "ws", Value: strconv.Itoa(*ws)}
		reg.CounterFunc("phish_jm_jobs_started_total", "Workers launched.", st.JobsStarted.Load, wsLabel)
		reg.CounterFunc("phish_jm_reclaims_total", "Workers killed because the owner returned.", st.Reclaims.Load, wsLabel)
		reg.CounterFunc("phish_jm_finished_total", "Workers that ended with the job done.", st.Finished.Load, wsLabel)
		reg.CounterFunc("phish_jm_retired_total", "Workers that left because parallelism shrank.", st.Retired.Load, wsLabel)
		reg.CounterFunc("phish_jm_empty_polls_total", "Job requests that found the pool empty.", st.EmptyPolls.Load, wsLabel)
		reg.CounterFunc("phish_jm_source_errors_total", "Job requests that failed outright.", st.SourceErrors.Load, wsLabel)
		msrv, err := telemetry.Serve(*metricsAddr, reg, nil)
		if err != nil {
			log.Fatalf("phishjobmanager: %v", err)
		}
		defer msrv.Close()
		fmt.Printf("phishjobmanager: telemetry on http://%s/metrics\n", msrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("phishjobmanager: shutting down")
	mgr.Stop()
}

func buildPolicy(name string, loadMax float64, busy, idle time.Duration) (jobmanager.Policy, error) {
	switch name {
	case "always":
		return idlesim.Always{}, nil
	case "load":
		return jobmanager.LoadThreshold(loadAvg, loadMax), nil
	case "sim":
		return idlesim.NewActivity(time.Now().UnixNano(), time.Now(),
			busy/2, busy*2, idle/2, idle*2, true), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

// loadAvg reads the 1-minute load average (Linux). On failure it reports
// a high load, which errs on the side of the owner.
func loadAvg(time.Time) float64 {
	b, err := os.ReadFile("/proc/loadavg")
	if err != nil {
		return 99
	}
	fields := strings.Fields(string(b))
	if len(fields) == 0 {
		return 99
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 99
	}
	return v
}

// jobSource adapts the jobq client.
type jobSource struct{ cli *jobq.Client }

func (s jobSource) Request(ws types.WorkstationID) (wire.JobSpec, bool, error) {
	return s.cli.Request(ws)
}

// execRunner starts phishworker processes.
type execRunner struct{ bin string }

// execProc supervises one phishworker process.
type execProc struct {
	cmd    *exec.Cmd
	done   chan struct{}
	reason wire.LeaveReason
}

func (p *execProc) Reclaim()                      { _ = p.cmd.Process.Signal(syscall.SIGTERM) }
func (p *execProc) Done() <-chan struct{}         { return p.done }
func (p *execProc) LeaveReason() wire.LeaveReason { return p.reason }

func (r *execRunner) Start(spec wire.JobSpec, id types.WorkerID) (jobmanager.WorkerProc, error) {
	cmd := exec.Command(r.bin,
		"-ch", spec.CHAddr,
		"-job", strconv.FormatInt(int64(spec.ID), 10),
		"-program", spec.Program,
		"-worker", strconv.Itoa(int(id)),
		"-seed", strconv.FormatInt(int64(id), 10),
	)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &execProc{cmd: cmd, done: make(chan struct{})}
	go func() {
		defer close(p.done)
		err := cmd.Wait()
		switch code := exitCode(err); code {
		case 0:
			p.reason = wire.LeaveJobDone
		case 3:
			p.reason = wire.LeaveReclaimed
		case 4:
			p.reason = wire.LeaveNoWork
		default:
			p.reason = wire.LeaveCrash
		}
	}()
	return p, nil
}

func exitCode(err error) int {
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	return -1
}
