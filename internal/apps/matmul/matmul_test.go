package matmul

import (
	"math"
	"reflect"
	"testing"

	"phish"
	"phish/internal/strata"
)

// naive is an independent oracle (ikj loops, no recursion).
func naive(a, b []float64, n int) []float64 {
	c := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				c[i*n+j] += a[i*n+k] * b[k*n+j]
			}
		}
	}
	return c
}

func TestLeafAgainstNaive(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16, 32} {
		a, b := Random(n, 1), Random(n, 2)
		if got, want := mulLeaf(a, b, n), naive(a, b, n); !reflect.DeepEqual(got, want) {
			t.Errorf("n=%d: leaf multiply diverges from naive", n)
		}
	}
}

func TestSerialAgainstNaive(t *testing.T) {
	// Integer-valued entries make every sum exact, so even the different
	// association order of the recursion must agree bitwise.
	for _, n := range []int{32, 64, 128} {
		a, b := Random(n, 3), Random(n, 4)
		if got, want := Serial(a, b, n), naive(a, b, n); !reflect.DeepEqual(got, want) {
			t.Errorf("n=%d: recursive multiply diverges from naive", n)
		}
	}
}

func TestIdentity(t *testing.T) {
	const n = 64
	a := Random(n, 5)
	id := make([]float64, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	if got := Serial(a, id, n); !reflect.DeepEqual(got, a) {
		t.Error("A·I != A")
	}
	if got := Serial(id, a, n); !reflect.DeepEqual(got, a) {
		t.Error("I·A != A")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	const n = 128
	a, b := Random(n, 6), Random(n, 7)
	want := Serial(a, b, n)
	for _, p := range []int{1, 4} {
		res, err := phish.RunLocal(Program(), Root, RootArgs(a, b, n), phish.LocalOptions{Workers: p})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if got := res.Value.([]float64); !reflect.DeepEqual(got, want) {
			t.Errorf("P=%d: parallel product differs from serial", p)
		}
		if got, want := res.Totals.TasksExecuted, TaskCount(n); got != want {
			t.Errorf("P=%d: tasks executed = %d, want %d", p, got, want)
		}
	}
}

func TestOnStrata(t *testing.T) {
	const n = 64
	a, b := Random(n, 8), Random(n, 9)
	res, err := strata.Run(Program(), Root, RootArgs(a, b, n), 4, strata.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Value.([]float64); !reflect.DeepEqual(got, Serial(a, b, n)) {
		t.Error("strata product differs from serial")
	}
}

func TestNonIntegerEntriesStayClose(t *testing.T) {
	// With real-valued entries the recursion's association order may
	// differ from naive by rounding only.
	const n = 64
	a, b := Random(n, 10), Random(n, 11)
	for i := range a {
		a[i] += 0.125
		b[i] -= 0.25
	}
	got := Serial(a, b, n)
	want := naive(a, b, n)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9*math.Max(1, math.Abs(want[i])) {
			t.Fatalf("entry %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestQuadrantAssembleRoundTrip(t *testing.T) {
	const n = 64
	m := Random(n, 12)
	out := make([]float64, n*n)
	for qi := 0; qi < 2; qi++ {
		for qj := 0; qj < 2; qj++ {
			assemble(out, quadrant(m, n, qi, qj), n, qi, qj)
		}
	}
	if !reflect.DeepEqual(out, m) {
		t.Error("quadrant/assemble is not the identity")
	}
}

func TestTaskCount(t *testing.T) {
	if got := TaskCount(32); got != 1 {
		t.Errorf("TaskCount(32) = %d, want 1", got)
	}
	if got := TaskCount(64); got != 10 {
		t.Errorf("TaskCount(64) = %d, want 10", got)
	}
	if got := TaskCount(128); got != 8*10+2 {
		t.Errorf("TaskCount(128) = %d, want 82", got)
	}
}
