// Heterogeneous networks — the paper's future-work extension, live: two
// machine rooms ("sites") of workers separated by a slow network cut, and
// the site-aware steal policy keeping traffic on the fast side of it.
//
//	go run ./examples/heterogeneous [-p 8] [-cut 1ms]
//
// The same job runs twice: once with the paper's flat random stealing
// (which crosses the cut proportionally often) and once with the
// site-aware policy ("preserve locality with respect to those network
// cuts that have the least bandwidth"). Compare the remote-steal counts.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"phish"
	"phish/internal/apps/fib"
)

func main() {
	p := flag.Int("p", 8, "workers, split across 2 sites")
	cut := flag.Duration("cut", time.Millisecond, "one-way latency across the inter-site cut")
	n := flag.Int64("n", 28, "fib input")
	flag.Parse()

	run := func(name string, cfg phish.WorkerConfig) {
		start := time.Now()
		res, err := phish.RunLocal(fib.Program(), fib.Root, fib.RootArgs(*n),
			phish.LocalOptions{
				Workers:          *p,
				Config:           cfg,
				Sites:            2,
				InterSiteLatency: *cut,
			})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if got, want := res.Value.(int64), fib.Serial(*n); got != want {
			log.Fatalf("%s: wrong answer %d (want %d)", name, got, want)
		}
		t := res.Totals
		share := 0.0
		if t.TasksStolen > 0 {
			share = 100 * float64(t.RemoteSteals) / float64(t.TasksStolen)
		}
		fmt.Printf("%-12s  %8v  steals %3d  across the cut %3d (%.0f%%)  msgs %4d\n",
			name, time.Since(start).Round(time.Millisecond),
			t.TasksStolen, t.RemoteSteals, share, t.MessagesSent)
	}

	fmt.Printf("fib(%d) on %d workers in 2 sites, %v across the cut\n\n", *n, *p, *cut)
	flat := phish.DefaultWorkerConfig()
	aware := phish.DefaultWorkerConfig()
	aware.Victim = phish.SiteAwareVictim

	run("flat-random", flat)
	run("site-aware", aware)
	fmt.Println("\nBoth answers are identical; the site-aware thief crosses the slow")
	fmt.Println("cut only after repeated local failures (paper §6, future work).")
}
