package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"phish/internal/types"
	"phish/internal/wire"
)

// This file is the analysis half of the distributed tracing plane: it
// reconstructs a job's task DAG from the spans workers shipped to the
// clearinghouse collector, computes the empirical work (T1) and critical
// path (T∞) of the paper's T1/P + T∞ greedy-scheduling bound, and
// attributes each worker's wall time to execution, stealing, redo, and
// idle — the observability counterpart of the paper's Table 2.

// aliasDepthCap bounds steal-record alias chains when resolving join
// edges. A task re-stolen k times funnels through k records; chains
// beyond the cap (a cycle can only come from corrupt input) resolve to
// wherever the walk stopped.
const aliasDepthCap = 64

// WorkerLoad is one worker's wall-time attribution over the job.
type WorkerLoad struct {
	Worker types.WorkerID
	// Window is the worker's observed activity window (first span start
	// to last span end); Busy, Steal, and Redo partition the traced
	// parts of it and Idle is the remainder, clamped at zero.
	Window time.Duration
	Busy   time.Duration
	Steal  time.Duration
	Redo   time.Duration
	Idle   time.Duration
	Execs  int
	Steals int
	Redos  int
}

// DAG is the empirical task graph of one traced job.
type DAG struct {
	// Spans is the cluster-aligned input, sorted by start time.
	Spans []wire.Span
	// Tasks is the number of distinct executed tasks observed.
	Tasks int
	// T1 is the total work: the sum of all execution-span durations
	// (each execution slice of a preempted task counts once; a crash
	// redo's re-execution is genuinely extra work and counts too).
	T1 time.Duration
	// TInf is the empirical critical path: the longest chain of
	// dependent task executions through spawn and join edges.
	TInf time.Duration
	// CritPath lists the tasks on one longest chain, in order.
	CritPath []types.TaskID
	// Makespan is the wall time from the first execution start to the
	// last execution end on the cluster timeline.
	Makespan time.Duration
	// Workers is the per-worker attribution, sorted by worker id.
	Workers []WorkerLoad

	start int64 // cluster-time origin (min span start), for rendering
}

// BuildDAG reconstructs the task DAG from cluster-aligned spans (see
// clearinghouse.Spans). Unsampled or foreign spans are tolerated: the
// graph is built from what is present.
func BuildDAG(spans []wire.Span) *DAG {
	d := &DAG{Spans: spans}
	// Steal-record aliases: a stolen closure's continuation targets the
	// victim's steal record, so exec-span join edges point at record ids.
	// The victim's grant span carries the mapping record → real cont.
	alias := make(map[types.TaskID]types.TaskID)
	for _, sp := range spans {
		if sp.Kind == wire.SpanStealGrant && !sp.Task.Zero() && !sp.Parent.Zero() {
			alias[sp.Task] = sp.Parent
		}
	}
	resolve := func(id types.TaskID) types.TaskID {
		for i := 0; i < aliasDepthCap; i++ {
			next, ok := alias[id]
			if !ok {
				return id
			}
			id = next
		}
		return id
	}

	dur := make(map[types.TaskID]time.Duration)
	succs := make(map[types.TaskID][]types.TaskID)
	var execMin, execMax int64
	for _, sp := range spans {
		if d.start == 0 || sp.Start < d.start {
			d.start = sp.Start
		}
		if sp.Kind != wire.SpanExec {
			continue
		}
		dur[sp.Task] += time.Duration(sp.End - sp.Start)
		if execMin == 0 || sp.Start < execMin {
			execMin = sp.Start
		}
		if sp.End > execMax {
			execMax = sp.End
		}
	}
	edge := func(from, to types.TaskID) {
		if from == to {
			return
		}
		if _, ok := dur[from]; !ok {
			return
		}
		if _, ok := dur[to]; !ok {
			return
		}
		succs[from] = append(succs[from], to)
	}
	for _, sp := range spans {
		if sp.Kind != wire.SpanExec {
			continue
		}
		if !sp.Parent.Zero() {
			edge(sp.Parent, sp.Task) // spawn edge
		}
		if !sp.Link.Zero() {
			edge(sp.Task, resolve(sp.Link)) // join edge
		}
	}

	// Longest downstream chain per task, memoized; the visiting guard
	// breaks cycles (impossible in a well-formed trace, cheap to refuse).
	const visiting = time.Duration(-1)
	finish := make(map[types.TaskID]time.Duration, len(dur))
	var longest func(t types.TaskID) time.Duration
	longest = func(t types.TaskID) time.Duration {
		if f, ok := finish[t]; ok {
			if f == visiting {
				return 0
			}
			return f
		}
		finish[t] = visiting
		var best time.Duration
		for _, s := range succs[t] {
			if f := longest(s); f > best {
				best = f
			}
		}
		f := dur[t] + best
		finish[t] = f
		return f
	}
	var critHead types.TaskID
	for t := range dur {
		if f := longest(t); f > d.TInf {
			d.TInf = f
			critHead = t
		}
		d.T1 += dur[t]
	}
	d.Tasks = len(dur)
	if d.TInf > 0 {
		for t := critHead; ; {
			d.CritPath = append(d.CritPath, t)
			var next types.TaskID
			var best time.Duration
			found := false
			for _, s := range succs[t] {
				if f := finish[s]; !found || f > best {
					next, best, found = s, f, true
				}
			}
			if !found || len(d.CritPath) > len(dur) {
				break
			}
			t = next
		}
	}
	if execMax > execMin {
		d.Makespan = time.Duration(execMax - execMin)
	}

	d.Workers = buildLoads(spans)
	return d
}

// buildLoads attributes each worker's activity window to exec, steal,
// redo, and idle time.
func buildLoads(spans []wire.Span) []WorkerLoad {
	type window struct {
		load       WorkerLoad
		start, end int64
	}
	byW := make(map[types.WorkerID]*window)
	for _, sp := range spans {
		w, ok := byW[sp.Worker]
		if !ok {
			w = &window{load: WorkerLoad{Worker: sp.Worker}, start: sp.Start, end: sp.End}
			byW[sp.Worker] = w
		}
		if sp.Start < w.start {
			w.start = sp.Start
		}
		if sp.End > w.end {
			w.end = sp.End
		}
		span := time.Duration(sp.End - sp.Start)
		switch sp.Kind {
		case wire.SpanExec:
			w.load.Busy += span
			w.load.Execs++
		case wire.SpanStealReq:
			w.load.Steal += span
			w.load.Steals++
		case wire.SpanRedo:
			w.load.Redos++
		}
	}
	out := make([]WorkerLoad, 0, len(byW))
	for _, w := range byW {
		w.load.Window = time.Duration(w.end - w.start)
		w.load.Idle = w.load.Window - w.load.Busy - w.load.Steal
		if w.load.Idle < 0 {
			w.load.Idle = 0
		}
		out = append(out, w.load)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

// Bound returns the greedy-scheduling bound T1/P + T∞ for p workers.
func (d *DAG) Bound(p int) time.Duration {
	if p <= 0 {
		p = 1
	}
	return d.T1/time.Duration(p) + d.TInf
}

// RenderTimeline formats the cluster timeline and the DAG summary for
// humans — the output of `phish -trace`.
func (d *DAG) RenderTimeline() string {
	var sb strings.Builder
	ms := func(x time.Duration) string { return fmt.Sprintf("%.3fms", float64(x)/1e6) }
	rel := func(ns int64) string { return ms(time.Duration(ns - d.start)) }
	fmt.Fprintf(&sb, "tasks=%d T1=%s Tinf=%s makespan=%s\n",
		d.Tasks, ms(d.T1), ms(d.TInf), ms(d.Makespan))
	for _, w := range d.Workers {
		fmt.Fprintf(&sb, "w%-3d window=%s busy=%s steal=%s idle=%s execs=%d steals=%d redos=%d\n",
			w.Worker, ms(w.Window), ms(w.Busy), ms(w.Steal), ms(w.Idle),
			w.Execs, w.Steals, w.Redos)
	}
	for _, sp := range d.Spans {
		fmt.Fprintf(&sb, "  [%s %s] w%d %s", rel(sp.Start), rel(sp.End), sp.Worker, wire.SpanKindName(sp.Kind))
		if !sp.Task.Zero() {
			fmt.Fprintf(&sb, " %s", sp.Task)
		}
		if !sp.Parent.Zero() {
			fmt.Fprintf(&sb, " parent=%s", sp.Parent)
		}
		if !sp.Link.Zero() {
			fmt.Fprintf(&sb, " link=%s", sp.Link)
		}
		if sp.Peer != 0 && sp.Peer != sp.Worker {
			fmt.Fprintf(&sb, " peer=w%d", sp.Peer)
		}
		sb.WriteByte('\n')
	}
	if len(d.CritPath) > 0 {
		sb.WriteString("critical path:")
		for _, t := range d.CritPath {
			fmt.Fprintf(&sb, " %s", t)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// chromeEvent is one record of the Chrome trace-event JSON format
// (load the file at chrome://tracing or https://ui.perfetto.dev).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	Scope string         `json:"s,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// ChromeTrace renders the timeline as Chrome trace-event JSON: one
// process for the job, one thread lane per worker, complete ("X") events
// for durable spans and instant ("i") events for point spans.
func (d *DAG) ChromeTrace() ([]byte, error) {
	events := make([]chromeEvent, 0, len(d.Spans))
	for _, sp := range d.Spans {
		name := wire.SpanKindName(sp.Kind)
		if !sp.Task.Zero() {
			name += " " + sp.Task.String()
		}
		args := map[string]any{}
		if !sp.Task.Zero() {
			args["task"] = sp.Task.String()
		}
		if !sp.Parent.Zero() {
			args["parent"] = sp.Parent.String()
		}
		if !sp.Link.Zero() {
			args["link"] = sp.Link.String()
		}
		if sp.Peer != 0 && sp.Peer != sp.Worker {
			args["peer"] = fmt.Sprintf("w%d", sp.Peer)
		}
		ev := chromeEvent{
			Name:  name,
			Cat:   wire.SpanKindName(sp.Kind),
			TS:    float64(sp.Start-d.start) / 1e3,
			PID:   1,
			TID:   int(sp.Worker),
			Args:  args,
			Phase: "X",
		}
		if sp.End > sp.Start {
			ev.Dur = float64(sp.End-sp.Start) / 1e3
		} else {
			ev.Phase = "i"
			ev.Scope = "t"
		}
		events = append(events, ev)
	}
	return json.MarshalIndent(map[string]any{"traceEvents": events}, "", " ")
}
