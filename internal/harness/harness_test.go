package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tinyOptions shrinks every workload so the whole harness runs in a unit
// test.
func tinyOptions() Options {
	o := DefaultOptions()
	o.FibN = 16
	o.NQueensN = 7
	o.RayW, o.RayH = 32, 24
	o.PfoldN = 10
	o.PfoldThreshold = 4
	o.Ps = []int{1, 2}
	o.Table2Ps = []int{2}
	o.Repeats = 1
	o.Timeout = 2 * time.Minute
	return o
}

func TestTable1Shape(t *testing.T) {
	rows, err := tinyOptions().Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	byApp := map[string]Table1Row{}
	for _, r := range rows {
		byApp[r.App] = r
		if r.SerialTime <= 0 || r.PhishT1 <= 0 || r.StrataT1 <= 0 {
			t.Errorf("%s: non-positive timing %+v", r.App, r)
		}
	}
	// The defining shape of Table 1: fib pays far more than ray.
	if byApp["fib"].PhishSlowdown < 2*byApp["ray"].PhishSlowdown {
		t.Errorf("fib slowdown (%.1f) should dwarf ray's (%.2f)",
			byApp["fib"].PhishSlowdown, byApp["ray"].PhishSlowdown)
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	for _, want := range []string{"fib", "nqueens", "ray", "4.44", "5.90"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table 1 rendering missing %q:\n%s", want, buf.String())
		}
	}
}

func TestPfoldScalingShape(t *testing.T) {
	pts, err := tinyOptions().PfoldScaling()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].P != 1 || pts[1].P != 2 {
		t.Fatalf("points = %+v", pts)
	}
	if pts[0].Speedup < 0.99 || pts[0].Speedup > 1.01 {
		t.Errorf("P=1 speedup = %f, want 1", pts[0].Speedup)
	}
	// Tasks are structural: identical at every P.
	if pts[0].Totals.TasksExecuted != pts[1].Totals.TasksExecuted {
		t.Errorf("task counts differ across P: %d vs %d",
			pts[0].Totals.TasksExecuted, pts[1].Totals.TasksExecuted)
	}
	var buf bytes.Buffer
	PrintFig4(&buf, pts)
	PrintFig5(&buf, pts)
	out := buf.String()
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "Figure 5") {
		t.Errorf("figure rendering broken:\n%s", out)
	}
}

func TestTable2Rendering(t *testing.T) {
	pts, err := tinyOptions().Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].P != 2 {
		t.Fatalf("points = %+v", pts)
	}
	var buf bytes.Buffer
	PrintTable2(&buf, pts)
	out := buf.String()
	for _, want := range []string{"tasks executed", "max tasks in use", "tasks stolen",
		"synchronizations", "non-local synchs", "messages sent"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 rendering missing %q", want)
		}
	}
}

func TestMedian(t *testing.T) {
	calls := 0
	d := median(5, func() time.Duration {
		calls++
		return time.Duration(calls) * time.Second
	})
	if calls != 5 {
		t.Errorf("median ran f %d times, want 5", calls)
	}
	if d != 3*time.Second {
		t.Errorf("median = %v, want 3s", d)
	}
	if got := median(0, func() time.Duration { return time.Second }); got != time.Second {
		t.Errorf("median with repeats<1 = %v", got)
	}
}
