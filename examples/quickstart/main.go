// Quickstart: define a parallel program in the continuation-passing style
// and run it on an in-process Phish cluster.
//
//	go run ./examples/quickstart
//
// The program computes fib(30) the naive way — every + becomes a join of
// two child tasks — on 4 workers connected by the in-memory fabric, and
// prints the scheduling statistics that the paper's Table 2 reports.
package main

import (
	"fmt"
	"log"

	"phish"
)

func main() {
	// A Program is a named bag of task functions; every worker of a job
	// runs the same program, so tasks can be shipped between workers as a
	// function name plus arguments.
	prog := phish.NewProgram("quickstart")

	// A task either returns a value to its continuation...
	prog.Register("fib", func(c phish.TaskCtx) {
		n := c.Int(0)
		if n < 2 {
			c.Return(n)
			return
		}
		// ...or spawns children plus a successor that joins their
		// results. The successor inherits this task's continuation.
		s := c.Successor("sum", 2)
		c.Spawn("fib", s.Cont(0), n-1)
		c.Spawn("fib", s.Cont(1), n-2)
	})
	prog.Register("sum", func(c phish.TaskCtx) {
		c.Return(c.Int(0) + c.Int(1))
	})

	res, err := phish.RunLocal(prog, "fib", phish.Args(int64(30)), phish.LocalOptions{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fib(30) = %d   (elapsed %v on %d workers)\n\n",
		res.Value, res.Elapsed.Round(1e6), len(res.Workers))
	fmt.Println("scheduling statistics (the paper's Table 2 counters):")
	fmt.Printf("  %v\n\n", res.Totals)
	fmt.Println("per worker:")
	for _, w := range res.Workers {
		fmt.Printf("  worker %d: executed %8d, stole %3d, max in use %3d\n",
			w.Worker, w.TasksExecuted, w.TasksStolen, w.MaxTasksInUse)
	}
	fmt.Println("\nNote how few tasks were stolen relative to the millions executed —")
	fmt.Println("LIFO execution plus FIFO stealing preserves locality (paper, §2).")
}
