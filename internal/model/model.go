// Package model defines the continuation-passing-threads programming
// interface shared by Phish's distributed runtime (internal/core) and the
// Strata baseline runtime (internal/strata). Applications are written once
// against Ctx and run unchanged on either — exactly the property the paper
// relies on ("We support this programming model on both the CM-5 with the
// Strata scheduling library and on a network of workstations with Phish"),
// and the property that makes the Table 1 comparison meaningful.
package model

import "phish/internal/types"

// Func is the body of a task: it runs to completion without blocking,
// reading arguments from the context and either returning a value to its
// continuation or spawning children plus a successor to combine them.
type Func func(Ctx)

// Succ names a successor task created by a running task, minting
// continuations into its argument slots.
type Succ interface {
	// Cont returns the continuation that fills the successor's slot i.
	Cont(slot int) types.Continuation
	// Task returns the successor's task id (diagnostics).
	Task() types.TaskID
}

// Ctx is a task's window onto its runtime during execution. It is valid
// only for the duration of the Func call it was passed to: runtimes reuse
// context objects between tasks, so a body must not retain its Ctx.
type Ctx interface {
	// NArgs returns the number of argument slots.
	NArgs() int
	// Arg returns argument i.
	Arg(i int) types.Value
	// Int returns argument i as an int64 (panics on type mismatch).
	Int(i int) int64
	// Float returns argument i as a float64.
	Float(i int) float64
	// String returns argument i as a string.
	String(i int) string
	// Worker identifies the executing participant.
	Worker() types.WorkerID

	// Return sends v to the task's continuation (its one result).
	Return(v types.Value)
	// Send delivers v to an explicit continuation.
	Send(cont types.Continuation, v types.Value)
	// Successor creates a waiting task of fn with nslots empty slots
	// inheriting this task's continuation.
	Successor(fn string, nslots int) Succ
	// SuccessorCont is Successor with an explicit continuation.
	SuccessorCont(fn string, nslots int, cont types.Continuation) Succ
	// Preset fills a successor slot with a spawn-time constant (not
	// counted as a synchronization).
	Preset(s Succ, slot int, v types.Value)
	// Spawn creates a ready child task whose result goes to cont.
	Spawn(fn string, cont types.Continuation, args ...types.Value)
	// Print emits output through the job's I/O channel.
	Print(format string, args ...any)

	// Checkpoint returns the task's last saved checkpoint blob, or nil if
	// the task is starting from scratch. A long-running leaf that wants to
	// survive preemption reads it at entry and resumes mid-computation.
	Checkpoint() []byte
	// Yield offers the runtime a checkpoint of the task's partial progress
	// (a compact binary blob the task itself knows how to decode; see
	// DESIGN.md for the size cap and crash-consistency rules). When Yield
	// returns true the runtime wants the task off the processor — the body
	// must return immediately without calling Return; it will be
	// re-executed later (possibly on another worker) with Checkpoint
	// returning the saved blob. When Yield returns false the task keeps
	// running. Runtimes without preemption always return false and may
	// discard the blob. Tasks that never call Yield behave exactly as
	// before this interface existed.
	Yield(blob []byte) bool
}
