package deque

import (
	"container/list"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLIFOHead(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 10; i++ {
		d.PushHead(i)
	}
	for i := 9; i >= 0; i-- {
		v, ok := d.PopHead()
		if !ok || v != i {
			t.Fatalf("PopHead = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := d.PopHead(); ok {
		t.Fatal("pop from empty deque succeeded")
	}
}

func TestFIFOTailSteal(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 10; i++ {
		d.PushHead(i) // i=0 pushed first, so it sits at the tail
	}
	for i := 0; i < 10; i++ {
		v, ok := d.PopTail()
		if !ok || v != i {
			t.Fatalf("PopTail = %d,%v want %d (oldest first)", v, ok, i)
		}
	}
}

func TestFigure1Scenario(t *testing.T) {
	// Figure 1 of the paper: queue [D C B A] (head=D, tail=A); the worker
	// executes D, which spawns E, F, G at the head; then a thief steals A
	// from the tail.
	var d Deque[string]
	for _, s := range []string{"A", "B", "C", "D"} {
		d.PushHead(s)
	}
	v, _ := d.PopHead()
	if v != "D" {
		t.Fatalf("executed %q, want D", v)
	}
	for _, s := range []string{"G", "F", "E"} {
		d.PushHead(s)
	}
	stolen, _ := d.PopTail()
	if stolen != "A" {
		t.Fatalf("thief stole %q, want A", stolen)
	}
	var rest []string
	for {
		v, ok := d.PopHead()
		if !ok {
			break
		}
		rest = append(rest, v)
	}
	want := []string{"E", "F", "G", "C", "B"}
	for i := range want {
		if rest[i] != want[i] {
			t.Fatalf("remaining order %v, want %v", rest, want)
		}
	}
}

func TestGrowthAndWraparound(t *testing.T) {
	var d Deque[int]
	// Exercise wraparound: interleave pushes/pops so head circles.
	for round := 0; round < 5; round++ {
		for i := 0; i < 100; i++ {
			d.PushHead(i)
			d.PushTail(-i)
		}
		for i := 0; i < 100; i++ {
			if _, ok := d.PopHead(); !ok {
				t.Fatal("unexpected empty")
			}
			if _, ok := d.PopTail(); !ok {
				t.Fatal("unexpected empty")
			}
		}
		if !d.Empty() {
			t.Fatalf("round %d: deque not empty: %d", round, d.Len())
		}
	}
}

func TestDrainAndSnapshot(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 5; i++ {
		d.PushTail(i)
	}
	snap := d.Snapshot()
	if len(snap) != 5 || d.Len() != 5 {
		t.Fatalf("snapshot %v altered deque (len %d)", snap, d.Len())
	}
	got := d.Drain()
	for i := range got {
		if got[i] != i || snap[i] != i {
			t.Fatalf("drain %v snapshot %v", got, snap)
		}
	}
	if !d.Empty() {
		t.Fatal("drain left elements")
	}
}

// TestQuickAgainstList drives the deque with random operation sequences
// and checks every observation against container/list as the oracle.
func TestQuickAgainstList(t *testing.T) {
	f := func(ops []uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var d Deque[int]
		oracle := list.New()
		next := 0
		for _, op := range ops {
			switch op % 4 {
			case 0:
				d.PushHead(next)
				oracle.PushFront(next)
				next++
			case 1:
				d.PushTail(next)
				oracle.PushBack(next)
				next++
			case 2:
				v, ok := d.PopHead()
				if oracle.Len() == 0 {
					if ok {
						return false
					}
					continue
				}
				e := oracle.Front()
				oracle.Remove(e)
				if !ok || v != e.Value.(int) {
					return false
				}
			case 3:
				v, ok := d.PopTail()
				if oracle.Len() == 0 {
					if ok {
						return false
					}
					continue
				}
				e := oracle.Back()
				oracle.Remove(e)
				if !ok || v != e.Value.(int) {
					return false
				}
			}
			if d.Len() != oracle.Len() {
				return false
			}
			// Occasionally verify the whole contents.
			if rng.Intn(8) == 0 {
				snap := d.Snapshot()
				e := oracle.Front()
				for _, v := range snap {
					if e == nil || v != e.Value.(int) {
						return false
					}
					e = e.Next()
				}
				if e != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPeek(t *testing.T) {
	var d Deque[int]
	if _, ok := d.PeekHead(); ok {
		t.Fatal("peek on empty succeeded")
	}
	if _, ok := d.PeekTail(); ok {
		t.Fatal("peek on empty succeeded")
	}
	d.PushHead(1)
	d.PushHead(2)
	if v, _ := d.PeekHead(); v != 2 {
		t.Fatalf("peek head %d want 2", v)
	}
	if v, _ := d.PeekTail(); v != 1 {
		t.Fatalf("peek tail %d want 1", v)
	}
	if d.Len() != 2 {
		t.Fatal("peek mutated the deque")
	}
}
