package core

import (
	"sync"
	"sync/atomic"

	"phish/internal/wire"
)

// defaultSpanBuf bounds spans buffered between StatReports when
// Config.SpanBuf is zero.
const defaultSpanBuf = 8192

// maxSpansPerBatch caps one sealed batch so the StatReport carrying it
// (spans at 62 wire bytes each, plus counters, histograms, and checkpoint
// state) stays well inside one 60 KiB UDP datagram. A backlog larger than
// this drains across successive reports; see (*Worker).unregister for the
// job-end drain loop.
const maxSpansPerBatch = 512

// spanRecorder buffers completed trace spans on a worker until the
// heartbeat goroutine ships them to the clearinghouse collector inside a
// StatReport. A nil *spanRecorder is the disabled plane: every recording
// site guards with one atomic pointer load (`w.spans.Load() != nil`), so the steal and
// execute hot paths pay nothing — and allocate nothing — when tracing is
// off.
//
// Batching uses "latest-batch" framing, the span analogue of the
// cumulative counters in the same report: pending spans are sealed into a
// numbered batch at report time, and that batch rides on every subsequent
// report until fresh spans seal the next one. The collector folds a batch
// only when its sequence number advances, so duplicated, reordered, or
// retransmitted reports never double-count, and a lost datagram is
// covered by the next report re-carrying the same batch. Only a batch
// superseded before any report carrying it got through is lost — tracing
// is an observability plane, not a transaction log.
type spanRecorder struct {
	mu      sync.Mutex
	pending []wire.Span // completed since the last seal
	batchNo uint64      // sequence number of `last`
	last    []wire.Span // sealed batch, re-sent until superseded
	max     int
	dropped uint64

	// offNS is the worker's estimate of (clearinghouse clock - local
	// clock), set once from the registration round trip. Atomic because
	// the scheduler goroutine writes it while the heartbeat goroutine
	// reads it into reports.
	offNS atomic.Int64
}

func newSpanRecorder(max int) *spanRecorder {
	if max <= 0 {
		max = defaultSpanBuf
	}
	return &spanRecorder{max: max}
}

// add records one completed span. Past the buffer cap spans are counted
// as dropped rather than growing memory without bound — a worker that
// outruns its heartbeat cadence loses tail spans, not the job.
func (r *spanRecorder) add(s wire.Span) {
	r.mu.Lock()
	if len(r.pending) >= r.max {
		r.dropped++
	} else {
		r.pending = append(r.pending, s)
	}
	r.mu.Unlock()
}

// batch seals up to maxSpansPerBatch pending spans into a new numbered
// batch (when any exist) and returns the current batch for a StatReport.
// The returned slice is immutable once sealed, so sharing it across
// reports is safe.
func (r *spanRecorder) batch() (uint64, []wire.Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.pending) > 0 {
		n := len(r.pending)
		if n > maxSpansPerBatch {
			n = maxSpansPerBatch
		}
		r.batchNo++
		r.last = r.pending[:n:n]
		r.pending = r.pending[n:]
	}
	return r.batchNo, r.last
}

// backlog reports how many completed spans await sealing (used by the
// unregister drain loop to flush everything before the worker exits).
func (r *spanRecorder) backlog() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pending)
}

// droppedCount reports spans lost to the buffer cap.
func (r *spanRecorder) droppedCount() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

func (r *spanRecorder) setOffset(ns int64) { r.offNS.Store(ns) }
func (r *spanRecorder) offset() int64      { return r.offNS.Load() }
