// Benchmarks that regenerate every table and figure of the paper's
// evaluation (Section 4), plus ablations of the design choices the paper
// argues for. Workload sizes here are trimmed so `go test -bench=.`
// finishes in minutes; cmd/phishbench runs the full-size versions and
// prints them next to the published numbers.
//
//	go test -bench=Table1 -benchmem .
//	go test -bench=Fig -benchmem .
//	go test -bench=Ablation -benchmem .
package phish_test

import (
	"fmt"
	"testing"
	"time"

	"phish"
	"phish/internal/apps/fib"
	"phish/internal/apps/knary"
	"phish/internal/apps/matmul"
	"phish/internal/apps/nqueens"
	"phish/internal/apps/pfold"
	"phish/internal/apps/ray"
	"phish/internal/strata"
)

// Benchmark workload sizes (small enough for -bench=., large enough to
// exhibit the shapes).
const (
	benchFibN    = 24
	benchNQN     = 10
	benchRayW    = 96
	benchRayH    = 72
	benchPfoldN  = 15
	benchPfoldTh = 6
)

// ---- Table 1: serial slowdown -------------------------------------------
//
// Slowdown = T(parallel code on 1 processor) / T(best serial code). The
// paper reports fib 4.44/5.90 (Strata/Phish), nqueens 1.09/1.12, ray
// 1.00/1.04. The SHAPE to verify: fib's tiny grain makes it by far the
// worst; nqueens and ray are near 1; Phish costs slightly more than the
// static-set Strata baseline.

func BenchmarkTable1SerialFib(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = fib.Serial(benchFibN)
	}
}

func BenchmarkTable1StrataFib(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := strata.Run(fib.Program(), fib.Root, fib.RootArgs(benchFibN), 1, strata.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1PhishFib(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := phish.RunLocal(fib.Program(), fib.Root, fib.RootArgs(benchFibN), phish.LocalOptions{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1SerialNQueens(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = nqueens.Serial(benchNQN)
	}
}

func BenchmarkTable1StrataNQueens(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := strata.Run(nqueens.Program(), nqueens.Root, nqueens.RootArgs(benchNQN), 1, strata.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1PhishNQueens(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := phish.RunLocal(nqueens.Program(), nqueens.Root, nqueens.RootArgs(benchNQN), phish.LocalOptions{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1SerialRay(b *testing.B) {
	s, err := ray.SceneByName("default")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = ray.Serial(s, benchRayW, benchRayH)
	}
}

func BenchmarkTable1StrataRay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := strata.Run(ray.Program(), ray.Root, ray.RootArgs("default", benchRayW, benchRayH, 4), 1, strata.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1PhishRay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := phish.RunLocal(ray.Program(), ray.Root, ray.RootArgs("default", benchRayW, benchRayH, 4), phish.LocalOptions{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figures 4 and 5: pfold scaling --------------------------------------
//
// Figure 4 plots average per-participant execution time against P (it
// should fall like 1/P); Figure 5 plots S_P = P*T1/ΣT_P(i) against P (it
// should hug the linear dashed line). Each sub-benchmark reports both as
// custom metrics: avg-ms and speedup.

func benchPfoldAt(b *testing.B, p int) {
	t1 := pfoldT1(b)
	for i := 0; i < b.N; i++ {
		res, err := phish.RunLocal(pfold.Program(), pfold.Root,
			pfold.RootArgs(benchPfoldN, benchPfoldTh), phish.LocalOptions{Workers: p})
		if err != nil {
			b.Fatal(err)
		}
		var sum time.Duration
		times := make([]time.Duration, 0, len(res.Workers))
		for _, w := range res.Workers {
			sum += w.ExecTime
			times = append(times, w.ExecTime)
		}
		avg := sum / time.Duration(len(res.Workers))
		b.ReportMetric(float64(avg.Microseconds())/1000, "avg-ms")
		b.ReportMetric(phish.SpeedupFromTimes(t1, times), "speedup")
	}
}

// pfoldT1 measures (once per process) the one-participant execution time
// used as the speedup numerator.
var cachedT1 time.Duration

func pfoldT1(b *testing.B) time.Duration {
	b.Helper()
	if cachedT1 != 0 {
		return cachedT1
	}
	res, err := phish.RunLocal(pfold.Program(), pfold.Root,
		pfold.RootArgs(benchPfoldN, benchPfoldTh), phish.LocalOptions{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	cachedT1 = res.Workers[0].ExecTime
	return cachedT1
}

func BenchmarkFig4And5Pfold(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) { benchPfoldAt(b, p) })
	}
}

// ---- Table 2: pfold message and scheduling statistics --------------------
//
// The paper's locality evidence: >10M tasks executed but ≤59 ever in use,
// only 70/133 stolen at P=4/8, almost all synchronizations local, and
// only ~1.6k/2k messages. Reported here as custom metrics per P.

func BenchmarkTable2PfoldStats(b *testing.B) {
	for _, p := range []int{4, 8} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := phish.RunLocal(pfold.Program(), pfold.Root,
					pfold.RootArgs(benchPfoldN, benchPfoldTh), phish.LocalOptions{Workers: p})
				if err != nil {
					b.Fatal(err)
				}
				t := res.Totals
				b.ReportMetric(float64(t.TasksExecuted), "tasks")
				b.ReportMetric(float64(t.MaxTasksInUse), "max-in-use")
				b.ReportMetric(float64(t.TasksStolen), "stolen")
				b.ReportMetric(float64(t.Synchronizations), "synchs")
				b.ReportMetric(float64(t.NonLocalSynchs), "nonlocal")
				b.ReportMetric(float64(t.MessagesSent), "msgs")
			}
		})
	}
}

// ---- Ablations ------------------------------------------------------------
//
// The design choices DESIGN.md calls out, each measured against its
// alternative. The paper argues LIFO execution keeps the working set
// small and FIFO (tail) stealing keeps steals rare; random victims are
// the analyzed policy.

func ablationRun(b *testing.B, cfg phish.WorkerConfig, p int) *phish.LocalResult {
	b.Helper()
	res, err := phish.RunLocal(fib.Program(), fib.Root, fib.RootArgs(benchFibN),
		phish.LocalOptions{Workers: p, Config: cfg})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func BenchmarkAblationLocalOrder(b *testing.B) {
	run := func(name string, cfg phish.WorkerConfig) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := ablationRun(b, cfg, 4)
				b.ReportMetric(float64(res.Totals.MaxTasksInUse), "max-in-use")
			}
		})
	}
	lifo := phish.DefaultWorkerConfig()
	fifo := phish.DefaultWorkerConfig()
	fifo.LocalOrder = phish.FIFO
	run("LIFO", lifo)
	run("FIFO", fifo)
}

func BenchmarkAblationStealEnd(b *testing.B) {
	run := func(name string, cfg phish.WorkerConfig) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := ablationRun(b, cfg, 4)
				b.ReportMetric(float64(res.Totals.TasksStolen), "stolen")
				b.ReportMetric(float64(res.Totals.MessagesSent), "msgs")
			}
		})
	}
	tail := phish.DefaultWorkerConfig()
	head := phish.DefaultWorkerConfig()
	head.StealFrom = phish.StealHead
	run("tail-FIFO", tail)
	run("head-LIFO", head)
}

func BenchmarkAblationVictim(b *testing.B) {
	run := func(name string, cfg phish.WorkerConfig) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := ablationRun(b, cfg, 4)
				b.ReportMetric(float64(res.Totals.StealAttempts), "attempts")
				b.ReportMetric(float64(res.Totals.TasksStolen), "stolen")
			}
		})
	}
	random := phish.DefaultWorkerConfig()
	rr := phish.DefaultWorkerConfig()
	rr.Victim = phish.RoundRobinVictim
	run("random", random)
	run("round-robin", rr)
}

// BenchmarkAblationLatency shows the claim of Section 1: a scheduler that
// rarely communicates tolerates a slow network. Injecting three orders of
// magnitude of one-way latency into the fabric barely moves fib's
// completion time because only a few dozen messages are ever sent.
func BenchmarkAblationLatency(b *testing.B) {
	for _, lat := range []time.Duration{0, 200 * time.Microsecond, 2 * time.Millisecond} {
		b.Run(fmt.Sprintf("latency=%v", lat), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := phish.RunLocal(fib.Program(), fib.Root, fib.RootArgs(benchFibN),
					phish.LocalOptions{Workers: 4, Latency: lat})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Totals.MessagesSent), "msgs")
			}
		})
	}
}

// ---- Grain-size sweep ------------------------------------------------------
//
// Table 1's spectrum, made continuous: fib is a zero-grain tree and ray a
// huge-grain one. knary exposes the grain as a knob, so this sweep maps
// the per-task work at which Phish's scheduling overhead fades into the
// noise (slowdown → 1), the way the paper's three applications sample it.
func BenchmarkGrainSizeSweep(b *testing.B) {
	const depth, fan = 9, 2
	for _, work := range []int64{0, 64, 512, 4096, 32768} {
		b.Run(fmt.Sprintf("work=%d", work), func(b *testing.B) {
			t0 := time.Now()
			_ = knary.Serial(depth, fan, work)
			serial := time.Since(t0)
			for i := 0; i < b.N; i++ {
				res, err := phish.RunLocal(knary.Program(), knary.Root,
					knary.RootArgs(depth, fan, work), phish.LocalOptions{Workers: 1})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Elapsed)/float64(serial), "slowdown")
			}
		})
	}
}

// BenchmarkDataHeavySteals probes the steal path when tasks carry real
// payloads (matmul quadrants are kilobytes, not a couple of ints): the
// locality discipline must keep such heavyweight transfers rare.
func BenchmarkDataHeavySteals(b *testing.B) {
	const n = 512
	a := matmul.Random(n, 1)
	bb := matmul.Random(n, 2)
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := phish.RunLocal(matmul.Program(), matmul.Root,
					matmul.RootArgs(a, bb, n), phish.LocalOptions{Workers: p})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Totals.TasksStolen), "stolen")
				b.ReportMetric(float64(res.Totals.TasksExecuted), "tasks")
			}
		})
	}
}
