package jobq

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"phish/internal/types"
	"phish/internal/wire"
)

// ServerStats counts the requests a Server has dispatched, by kind. All
// fields are atomic; read them live from a telemetry registry.
type ServerStats struct {
	// Requests counts JobRequest calls; Grants is the subset answered
	// with a job (the rest found the pool empty).
	Requests atomic.Int64
	Grants   atomic.Int64
	// Submits, Dones, and Lists count the remaining request kinds.
	Submits atomic.Int64
	Dones   atomic.Int64
	Lists   atomic.Int64
}

// Server exposes a Pool over TCP: one length-prefixed request envelope in,
// one reply envelope out, connection kept open for further requests. The
// traffic is deliberately sparse — in the paper a workstation talks to the
// PhishJobQ at most once every 30 seconds.
type Server struct {
	pool  *Pool
	ln    net.Listener
	wg    sync.WaitGroup
	stats ServerStats

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// Stats exposes the server's request counters.
func (s *Server) Stats() *ServerStats { return &s.stats }

// NewServer starts serving pool on addr (":0" picks a port).
func NewServer(pool *Pool, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("jobq: listen %q: %w", addr, err)
	}
	s := &Server{pool: pool, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and its connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	fr := wire.NewFrameReader(conn)
	for {
		env, err := fr.Next()
		if err != nil {
			return
		}
		reply := s.dispatch(env)
		if err := wire.WriteFrame(conn, reply); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(env *wire.Envelope) *wire.Envelope {
	var payload any
	switch p := env.Payload.(type) {
	case wire.JobRequest:
		s.stats.Requests.Add(1)
		spec, ok := s.pool.Request()
		if ok {
			s.stats.Grants.Add(1)
		}
		payload = wire.JobReply{OK: ok, Job: spec}
	case wire.JobSubmit:
		s.stats.Submits.Add(1)
		id := s.pool.Submit(p.Job)
		payload = wire.JobSubmitReply{ID: id}
	case wire.JobDone:
		s.stats.Dones.Add(1)
		s.pool.Done(p.ID)
		payload = wire.JobListReply{Jobs: nil} // bare ack
	case wire.JobList:
		s.stats.Lists.Add(1)
		payload = wire.JobListReply{Jobs: s.pool.List()}
	default:
		payload = wire.JobReply{OK: false}
	}
	return &wire.Envelope{Payload: payload}
}

// ClientConfig tunes a Client's patience. The zero value means defaults.
type ClientConfig struct {
	// Timeout bounds each dial and each request round trip (default 5 s).
	Timeout time.Duration
	// Retries is how many attempts one call makes before giving up
	// (default 4). Each attempt redials if the connection went stale.
	Retries int
	// RetryBase is the pause before the second attempt; it doubles per
	// attempt, jittered ±25%, capped at 16× (default 100 ms). The backoff
	// keeps a herd of JobManagers that all lost the PhishJobQ from
	// hammering it the instant it restarts.
	RetryBase time.Duration
}

func (cfg ClientConfig) withDefaults() ClientConfig {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 4
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 100 * time.Millisecond
	}
	return cfg
}

// Client talks to a jobq Server. Each call dials lazily and reuses the
// connection; on error the connection is dropped and the call retries on
// a fresh one with exponential backoff.
type Client struct {
	addr string
	cfg  ClientConfig
	mu   sync.Mutex
	conn net.Conn
	fr   *wire.FrameReader
}

// NewClient returns a client of the server at addr with default timeouts.
func NewClient(addr string) *Client { return NewClientWith(addr, ClientConfig{}) }

// NewClientWith returns a client with explicit timeout/retry tuning.
func NewClientWith(addr string, cfg ClientConfig) *Client {
	return &Client{addr: addr, cfg: cfg.withDefaults()}
}

// Close drops the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		err := c.conn.Close()
		c.conn, c.fr = nil, nil
		return err
	}
	return nil
}

func (c *Client) call(payload any) (*wire.Envelope, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	wait := c.cfg.RetryBase
	for attempt := 0; attempt < c.cfg.Retries; attempt++ {
		if attempt > 0 {
			// Jittered exponential backoff between attempts.
			time.Sleep(time.Duration(float64(wait) * (0.75 + 0.5*rand.Float64())))
			if wait < 16*c.cfg.RetryBase {
				wait *= 2
			}
		}
		if c.conn == nil {
			conn, err := net.DialTimeout("tcp", c.addr, c.cfg.Timeout)
			if err != nil {
				lastErr = err
				continue
			}
			c.conn = conn
			c.fr = wire.NewFrameReader(conn)
		}
		_ = c.conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
		err := wire.WriteFrame(c.conn, &wire.Envelope{Payload: payload})
		if err == nil {
			var reply *wire.Envelope
			reply, err = c.fr.Next()
			if err == nil {
				_ = c.conn.SetDeadline(time.Time{})
				return reply, nil
			}
		}
		// Stale connection; retry on a fresh one.
		lastErr = err
		_ = c.conn.Close()
		c.conn, c.fr = nil, nil
	}
	return nil, fmt.Errorf("jobq: request failed after %d attempts: %w", c.cfg.Retries, lastErr)
}

// Request asks for a job assignment.
func (c *Client) Request(ws types.WorkstationID) (wire.JobSpec, bool, error) {
	reply, err := c.call(wire.JobRequest{Workstation: ws})
	if err != nil {
		return wire.JobSpec{}, false, err
	}
	r, ok := reply.Payload.(wire.JobReply)
	if !ok {
		return wire.JobSpec{}, false, fmt.Errorf("jobq: unexpected reply %T", reply.Payload)
	}
	return r.Job, r.OK, nil
}

// Submit places a job in the pool and returns its id.
func (c *Client) Submit(spec wire.JobSpec) (types.JobID, error) {
	reply, err := c.call(wire.JobSubmit{Job: spec})
	if err != nil {
		return 0, err
	}
	r, ok := reply.Payload.(wire.JobSubmitReply)
	if !ok {
		return 0, fmt.Errorf("jobq: unexpected reply %T", reply.Payload)
	}
	return r.ID, nil
}

// Done removes a finished job.
func (c *Client) Done(id types.JobID) error {
	_, err := c.call(wire.JobDone{ID: id})
	return err
}

// List returns the pool contents.
func (c *Client) List() ([]wire.JobSpec, error) {
	reply, err := c.call(wire.JobList{})
	if err != nil {
		return nil, err
	}
	r, ok := reply.Payload.(wire.JobListReply)
	if !ok {
		return nil, fmt.Errorf("jobq: unexpected reply %T", reply.Payload)
	}
	return r.Jobs, nil
}
