package deque

import "testing"

// The deque is the hottest structure in the runtime: every spawn is a
// PushHead, every execution a PopHead, every steal a PopTail.

func BenchmarkPushPopHead(b *testing.B) {
	var d Deque[int]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.PushHead(i)
		d.PopHead()
	}
}

func BenchmarkSpawnRunPattern(b *testing.B) {
	// fib's pattern: push two children, pop one, repeat — the deque
	// breathes around a small working set.
	var d Deque[int]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.PushHead(i)
		d.PushHead(i + 1)
		d.PopHead()
		if d.Len() > 64 {
			d.PopTail() // a steal trims the tail
		}
	}
}

func BenchmarkStealTail(b *testing.B) {
	var d Deque[int]
	for i := 0; i < 1024; i++ {
		d.PushHead(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _ := d.PopTail()
		d.PushTail(v)
	}
}

func BenchmarkSnapshot(b *testing.B) {
	var d Deque[int]
	for i := 0; i < 128; i++ {
		d.PushHead(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Snapshot()
	}
}
