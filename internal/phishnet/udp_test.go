package phishnet

import (
	"sync"
	"testing"
	"time"

	"phish/internal/types"
	"phish/internal/wire"
)

// TestUDPFlushTimerStress hammers the batcher from many goroutines so
// flush-timer callbacks constantly overlap re-arming. Before the
// generation-counter guard, armLocked Reset a shared timer that could be
// mid-fire: the stale callback would flush a batch that a newer arming
// owned, or swallow the fire the Reset counted on. Run under -race this
// doubles as the data-race regression for that pattern.
func TestUDPFlushTimerStress(t *testing.T) {
	a, err := ListenUDP(1, 1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenUDP(1, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.SetPeer(2, b.LocalAddr())
	b.SetPeer(1, a.LocalAddr())

	const senders = 8
	const perSender = 200
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				env := &wire.Envelope{To: 2, Payload: wire.Heartbeat{
					Worker: types.WorkerID(s*perSender + i),
				}}
				if err := a.Send(env); err != nil {
					t.Error(err)
					return
				}
				if i%16 == 0 {
					// Let flush timers fire mid-stream so arming and
					// callbacks interleave instead of one giant batch.
					time.Sleep(udpFlushDelay)
				}
			}
		}(s)
	}
	wg.Wait()

	// Every message must arrive exactly once: a lost flush would stall a
	// tail of the stream until retransmit (or forever for untracked
	// sends), and a double flush would trip the dedup window accounting.
	seen := make(map[types.WorkerID]bool)
	deadline := time.After(10 * time.Second)
	for len(seen) < senders*perSender {
		select {
		case env := <-b.Recv():
			if err := env.Materialize(); err != nil {
				t.Fatal(err)
			}
			hb, ok := env.Payload.(wire.Heartbeat)
			if !ok {
				t.Fatalf("payload = %T", env.Payload)
			}
			if seen[hb.Worker] {
				t.Fatalf("worker %d delivered twice", hb.Worker)
			}
			seen[hb.Worker] = true
			env.Free()
		case <-deadline:
			t.Fatalf("received %d/%d messages", len(seen), senders*perSender)
		}
	}
}

// TestUDPViewArenaRecycling drives enough batched traffic through the
// zero-copy receive path that arenas and views must recycle through their
// pools many times over, with consumers freeing some views, materializing
// others, and holding a few across subsequent datagrams. Any refcount slip
// shows up as cross-talk: a held view's fields changing when its arena is
// wrongly recycled under later traffic.
func TestUDPViewArenaRecycling(t *testing.T) {
	a, err := ListenUDP(1, 1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenUDP(1, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.SetPeer(2, b.LocalAddr())
	b.SetPeer(1, a.LocalAddr())

	const n = 600
	go func() {
		for i := 0; i < n; i++ {
			_ = a.Send(&wire.Envelope{To: 2, Payload: wire.StealReply{
				OK: true,
				Task: wire.Closure{
					ID:   types.TaskID{Worker: 1, Seq: uint64(i)},
					Fn:   "pfold",
					Args: []types.Value{int64(i), "payload-string"},
				},
			}})
		}
	}()

	type held struct {
		env *wire.Envelope
		seq uint64
	}
	var holds []held
	got := 0
	deadline := time.After(10 * time.Second)
	for got < n {
		select {
		case env := <-b.Recv():
			v, ok := env.Payload.(*wire.View)
			if !ok {
				t.Fatalf("payload = %T", env.Payload)
			}
			sr, ok := v.AsStealReply()
			if !ok || !sr.OK() {
				t.Fatalf("bad steal reply view (ok=%v)", ok)
			}
			cl := sr.Task()
			seq := cl.ID().Seq
			if fn := cl.Fn(); fn != "pfold" {
				t.Fatalf("fn = %q", fn)
			}
			switch got % 3 {
			case 0:
				env.Free()
			case 1:
				if err := env.Materialize(); err != nil {
					t.Fatal(err)
				}
				task := env.Payload.(wire.StealReply).Task
				if task.ID.Seq != seq || task.Args[1].(types.Value) != types.Value("payload-string") {
					t.Fatalf("materialized closure corrupted: %+v", task)
				}
				env.Free()
			case 2:
				holds = append(holds, held{env, seq}) // outlive later datagrams
			}
			got++
		case <-deadline:
			t.Fatalf("received %d/%d", got, n)
		}
	}
	for _, h := range holds {
		sr, ok := h.env.Payload.(*wire.View).AsStealReply()
		if !ok {
			t.Fatal("held view lost its shape")
		}
		if cl := sr.Task(); cl.ID().Seq != h.seq || cl.Fn() != "pfold" {
			t.Fatalf("held view mutated: seq %d -> %d fn %q", h.seq, cl.ID().Seq, cl.Fn())
		}
		h.env.Free()
	}
}

// TestAdaptiveRetransmitRTO: the per-peer RTT track stretches the first
// retransmit interval for slow peers but never shrinks it below the
// configured base, stays silent until warm, and resets on DropPeer.
func TestAdaptiveRetransmitRTO(t *testing.T) {
	u, err := ListenUDP(1, 1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	const peer = types.WorkerID(2)

	rto := func() time.Duration {
		u.mu.Lock()
		defer u.mu.Unlock()
		return u.rtoLocked(peer)
	}
	feed := func(d time.Duration, n int) {
		u.mu.Lock()
		defer u.mu.Unlock()
		r := u.rtt[peer]
		if r == nil {
			r = &peerRTT{}
			u.rtt[peer] = r
		}
		for i := 0; i < n; i++ {
			r.observe(d)
		}
	}

	if got := rto(); got != u.retxBase {
		t.Fatalf("cold-peer RTO = %v, want base %v", got, u.retxBase)
	}
	// Below warmup the track is ignored even if samples exist.
	feed(300*time.Millisecond, rttMinSamples-1)
	if got := rto(); got != u.retxBase {
		t.Fatalf("under-warm RTO = %v, want base %v", got, u.retxBase)
	}
	// Warm and slow: RTO follows ew + 4*dev, above the base.
	feed(300*time.Millisecond, 8)
	if got := rto(); got <= u.retxBase {
		t.Fatalf("slow-peer RTO = %v, want > base %v", got, u.retxBase)
	} else if got > u.retxCap {
		t.Fatalf("slow-peer RTO = %v exceeds cap %v", got, u.retxCap)
	}
	// A fast peer is floored at the base: adaptivity never turns the
	// transport more aggressive than configured.
	u.DropPeer(peer)
	feed(200*time.Microsecond, 8)
	if got := rto(); got != u.retxBase {
		t.Fatalf("fast-peer RTO = %v, want base floor %v", got, u.retxBase)
	}
	// Huge RTTs are capped.
	u.DropPeer(peer)
	feed(time.Hour, 8)
	if got := rto(); got != u.retxCap {
		t.Fatalf("huge-RTT RTO = %v, want cap %v", got, u.retxCap)
	}
}

// TestRTTMeasuredAtAck: a real request/ack round trip on the loopback
// populates the sender's RTT track for the peer (Karn-filtered to
// unretransmitted frames).
func TestRTTMeasuredAtAck(t *testing.T) {
	a, err := ListenUDP(1, 1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenUDP(1, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.SetPeer(2, b.LocalAddr())
	b.SetPeer(1, a.LocalAddr())

	for i := 0; i < 6; i++ {
		if err := a.Send(&wire.Envelope{To: 2, Payload: wire.Heartbeat{Worker: 1}}); err != nil {
			t.Fatal(err)
		}
		select {
		case env := <-b.Recv():
			env.Free()
		case <-time.After(5 * time.Second):
			t.Fatal("datagram never arrived")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		a.mu.Lock()
		r := a.rtt[2]
		n := int64(0)
		if r != nil {
			n = r.n
		}
		a.mu.Unlock()
		if n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no RTT sample recorded after acked sends")
		}
		time.Sleep(time.Millisecond)
	}
}
