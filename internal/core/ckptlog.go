package core

import (
	"fmt"
	"os"
	"sync"

	"phish/internal/types"
	"phish/internal/wal"
	"phish/internal/wire"
)

// CkptLog is a worker-local write-ahead log of checkpoint blobs: every
// Yield that saves a blob appends one record. A worker process restarted
// on the same machine can ReplayCkptLog to recover the last blob per task
// and republish it, so even checkpoints that never reached the
// clearinghouse (rate-limited, or the network ate the datagram) survive a
// process crash.
//
// The log is append-only across process incarnations (the wal package
// frames each record independently) and is small in practice: blobs are
// capped at MaxCkptBlob and only in-flight tasks have live entries.
type CkptLog struct {
	mu sync.Mutex
	f  *os.File
}

// ckptRec is one journaled checkpoint (gob-encoded by the wal framing).
type ckptRec struct {
	Worker types.WorkerID
	Task   types.TaskID
	Seq    uint64
	Data   []byte
}

// OpenCkptLog opens (creating if necessary) the checkpoint log at path for
// appending.
func OpenCkptLog(path string) (*CkptLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("core: open ckpt log: %w", err)
	}
	return &CkptLog{f: f}, nil
}

// Append journals one checkpoint. Appends are buffered by the OS — the log
// trades an fsync per Yield for "good enough" durability: losing the last
// few blobs to a machine crash only costs a slightly older resume point,
// never correctness. Safe for concurrent use.
func (l *CkptLog) Append(worker types.WorkerID, ck wire.TaskCkpt) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	return wal.Append(l.f, &ckptRec{Worker: worker, Task: ck.Task, Seq: ck.Seq, Data: ck.Data})
}

// Close closes the underlying file. Appends after Close are no-ops.
func (l *CkptLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// ReplayCkptLog reads a checkpoint log and returns the newest blob per
// task (latest sequence wins). A missing file is an empty log; a torn tail
// from a crash mid-append is silently dropped, exactly like the
// clearinghouse journal.
func ReplayCkptLog(path string) (map[types.TaskID]wire.TaskCkpt, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("core: open ckpt log: %w", err)
	}
	defer f.Close()
	out := make(map[types.TaskID]wire.TaskCkpt)
	err = wal.Replay(f, func(r *ckptRec) error {
		if have, ok := out[r.Task]; !ok || r.Seq > have.Seq {
			out[r.Task] = wire.TaskCkpt{Task: r.Task, Seq: r.Seq, Data: r.Data}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
