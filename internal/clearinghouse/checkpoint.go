package clearinghouse

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"time"

	"phish/internal/phishnet"
	"phish/internal/types"
	"phish/internal/wire"
)

// Checkpointing — the paper's "support for checkpointing" future-work
// item. A checkpoint is taken in two phases coordinated by the
// clearinghouse:
//
//  1. Quiesce: every worker is paused (it keeps processing messages but
//     executes and steals nothing) and reports its per-peer message
//     counts. When the global send/receive matrix balances twice in a
//     row, no task state is in flight anywhere.
//  2. Snapshot: every worker dumps its closures and steal records — the
//     same representation migration uses — and the clearinghouse bundles
//     them with the job spec.
//
// Restoring hands each registering worker one departed worker's bundle
// (as an ordinary migration from a tombstoned id), so the routing
// invariant that argument-receiving state only moves with its minting
// worker is preserved, and the job continues where it left off.

// JobCheckpoint is a serializable snapshot of a running job.
type JobCheckpoint struct {
	Spec     wire.JobSpec
	RootHost types.WorkerID
	States   []wire.SnapshotReply
}

// ckptState tracks an in-progress checkpoint inside the clearinghouse.
type ckptState struct {
	seq     uint64
	workers map[types.WorkerID]bool
	acks    map[types.WorkerID]wire.PauseAck
	snaps   map[types.WorkerID]wire.SnapshotReply
	aborted bool
}

// ErrCheckpointAborted reports that membership changed mid-checkpoint.
var ErrCheckpointAborted = errors.New("clearinghouse: membership changed during checkpoint")

// Checkpoint quiesces the job, snapshots every participant, resumes them,
// and returns the bundle. It fails if the job is already done, if a
// worker joins or leaves mid-checkpoint, or if the quiesce does not
// converge within the timeout.
func (c *Clearinghouse) Checkpoint(timeout time.Duration) (*JobCheckpoint, error) {
	c.mu.Lock()
	if c.done {
		c.mu.Unlock()
		return nil, errors.New("clearinghouse: job already complete")
	}
	if c.ckpt != nil {
		c.mu.Unlock()
		return nil, errors.New("clearinghouse: checkpoint already in progress")
	}
	workers := make(map[types.WorkerID]bool)
	for _, id := range c.store.LiveIDs() {
		workers[id] = true
	}
	if len(workers) == 0 {
		c.mu.Unlock()
		return nil, errors.New("clearinghouse: no live workers to checkpoint")
	}
	c.ckptSeq++
	st := &ckptState{
		seq:     c.ckptSeq,
		workers: workers,
		acks:    make(map[types.WorkerID]wire.PauseAck),
		snaps:   make(map[types.WorkerID]wire.SnapshotReply),
	}
	c.ckpt = st
	c.mu.Unlock()

	defer func() {
		c.mu.Lock()
		c.ckpt = nil
		for id := range workers {
			c.send(id, wire.Resume{Seq: st.seq})
		}
		c.mu.Unlock()
	}()

	deadline := time.Now().Add(timeout)

	// Phase 1: pause and wait for the message matrix to balance twice.
	var prev map[types.WorkerID]wire.PauseAck
	for {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("clearinghouse: quiesce did not converge within %v", timeout)
		}
		c.mu.Lock()
		if st.aborted || c.done {
			c.mu.Unlock()
			return nil, ErrCheckpointAborted
		}
		c.ckptSeq++
		st.seq = c.ckptSeq
		st.acks = make(map[types.WorkerID]wire.PauseAck)
		for id := range workers {
			c.send(id, wire.Pause{Seq: st.seq})
		}
		c.mu.Unlock()

		if !c.waitCkpt(deadline, func() bool { return len(st.acks) == len(workers) }) {
			continue
		}
		c.mu.Lock()
		cur := st.acks
		balanced := matrixBalanced(workers, cur)
		same := prev != nil && sameMatrix(workers, prev, cur)
		prev = cur
		c.mu.Unlock()
		if balanced && same {
			break
		}
	}

	// Phase 2: collect snapshots.
	c.mu.Lock()
	c.ckptSeq++
	st.seq = c.ckptSeq
	for id := range workers {
		c.send(id, wire.SnapshotRequest{Seq: st.seq})
	}
	c.mu.Unlock()
	if !c.waitCkpt(deadline, func() bool { return len(st.snaps) == len(workers) }) {
		return nil, fmt.Errorf("clearinghouse: snapshot collection timed out")
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if st.aborted {
		return nil, ErrCheckpointAborted
	}
	cp := &JobCheckpoint{Spec: c.spec, RootHost: c.rootHost}
	for _, snap := range st.snaps {
		// Mark every record confirmed: the quiesce proved no replies are
		// in flight, so each stolen copy is in some bundle.
		for i := range snap.Records {
			snap.Records[i].Confirmed = true
		}
		cp.States = append(cp.States, snap)
	}
	return cp, nil
}

// waitCkpt polls (under the clearinghouse lock) until cond holds, the
// deadline passes, or the checkpoint aborts; it reports whether cond held.
func (c *Clearinghouse) waitCkpt(deadline time.Time, cond func() bool) bool {
	for time.Now().Before(deadline) {
		c.mu.Lock()
		ok := cond()
		aborted := c.ckpt == nil || c.ckpt.aborted || c.done
		c.mu.Unlock()
		if ok {
			return true
		}
		if aborted {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// matrixBalanced reports whether every pair's send count equals the
// peer's receive count (no messages in flight between live workers).
func matrixBalanced(workers map[types.WorkerID]bool, acks map[types.WorkerID]wire.PauseAck) bool {
	for i := range workers {
		ai, ok := acks[i]
		if !ok {
			return false
		}
		for j := range workers {
			if i == j {
				continue
			}
			aj, ok := acks[j]
			if !ok {
				return false
			}
			if ai.SentTo[j] != aj.RecvFr[i] {
				return false
			}
		}
	}
	return true
}

// sameMatrix reports whether two rounds of acks carry identical counts.
func sameMatrix(workers map[types.WorkerID]bool, a, b map[types.WorkerID]wire.PauseAck) bool {
	for i := range workers {
		ai, oka := a[i]
		bi, okb := b[i]
		if !oka || !okb {
			return false
		}
		for j := range workers {
			if ai.SentTo[j] != bi.SentTo[j] || ai.RecvFr[j] != bi.RecvFr[j] {
				return false
			}
		}
	}
	return true
}

// WriteCheckpoint serializes a checkpoint (gob).
func WriteCheckpoint(w io.Writer, cp *JobCheckpoint) error {
	return gob.NewEncoder(w).Encode(cp)
}

// ReadCheckpoint deserializes a checkpoint written by WriteCheckpoint.
func ReadCheckpoint(r io.Reader) (*JobCheckpoint, error) {
	var cp JobCheckpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("clearinghouse: read checkpoint: %w", err)
	}
	return &cp, nil
}

// NewFromCheckpoint builds a clearinghouse that resumes a checkpointed
// job: instead of spawning the root, it hands each registering worker one
// departed participant's state bundle (as an ordinary migration from a
// tombstoned id). Workers beyond the bundle count join empty and steal.
func NewFromCheckpoint(cp *JobCheckpoint, conn phishnet.Conn, cfg Config) *Clearinghouse {
	c := New(cp.Spec, conn, cfg)
	c.armRoot = false
	c.restore = append([]wire.SnapshotReply(nil), cp.States...)
	c.restoreRoot = cp.RootHost
	c.rootHost = types.NoWorker
	return c
}
