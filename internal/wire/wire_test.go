package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"phish/internal/types"
)

// roundTrip encodes and decodes env, failing the test on error.
func roundTrip(t *testing.T, env *Envelope) *Envelope {
	t.Helper()
	b, err := Encode(env)
	if err != nil {
		t.Fatalf("encode %T: %v", env.Payload, err)
	}
	out, err := Decode(b)
	if err != nil {
		t.Fatalf("decode %T: %v", env.Payload, err)
	}
	return out
}

func TestRoundTripEveryPayloadType(t *testing.T) {
	cl := Closure{
		ID:      types.TaskID{Worker: 3, Seq: 17},
		Fn:      "fib",
		Args:    []types.Value{int64(5), "x", []int64{1, 2}},
		Missing: 1,
		Cont:    types.Continuation{Task: types.TaskID{Worker: 1, Seq: 4}, Slot: 2},
		NoSteal: true,
	}
	payloads := []any{
		StealRequest{Thief: 7},
		StealReply{OK: true, Task: cl},
		StealReply{OK: false},
		StealConfirm{Record: types.TaskID{Worker: 2, Seq: 9}},
		Arg{Cont: cl.Cont, Val: int64(42), Crossed: true},
		Migrate{From: 3, Closures: []Closure{cl}, Records: []Record{{
			ID: types.TaskID{Worker: 3, Seq: 18}, RealCont: cl.Cont, Task: cl, Thief: 7, Confirmed: true,
		}}},
		MigrateAck{Count: 2},
		Register{Worker: 5, Addr: "127.0.0.1:9"},
		RegisterReply{Assigned: 5, View: MembershipView{Epoch: 3, Members: []MemberInfo{{Worker: 5, Addr: "a", HostedBy: 5}}}},
		Unregister{Worker: 5, Reason: LeaveReclaimed, MigratedTo: 6},
		Update{View: MembershipView{Epoch: 9}},
		Heartbeat{Worker: 5},
		WorkerDown{Worker: 4},
		IO{Worker: 5, Text: "hello\n"},
		Shutdown{Reason: "done"},
		SpawnRoot{Fn: "fib", Args: []types.Value{int64(30)}},
		StayRequest{Worker: 5},
		StayReply{Stay: true},
		JobRequest{Workstation: 11},
		JobReply{OK: true, Job: JobSpec{ID: 2, Name: "n", Program: "p", RootFn: "r", RootArgs: []types.Value{int64(1)}, CHAddr: "x"}},
		JobSubmit{Job: JobSpec{Name: "n"}},
		JobSubmitReply{ID: 8},
		JobDone{ID: 8},
		JobList{},
		JobListReply{Jobs: []JobSpec{{ID: 1}}},
		Ack{Seq: 99},
	}
	for _, p := range payloads {
		env := &Envelope{Job: 2, From: 1, To: 5, Seq: 77, Payload: p}
		got := roundTrip(t, env)
		if !reflect.DeepEqual(env, got) {
			t.Errorf("%T: round trip mismatch\n in  %#v\n out %#v", p, env, got)
		}
	}
}

func TestRoundTripValueKinds(t *testing.T) {
	vals := []types.Value{
		int64(-7), "str", true, 3.5,
		[]byte{1, 2, 3},
		[]int64{4, 5},
		[]float64{1.5, 2.5},
	}
	for _, v := range vals {
		env := &Envelope{Payload: Arg{Val: v}}
		got := roundTrip(t, env)
		if !reflect.DeepEqual(got.Payload.(Arg).Val, v) {
			t.Errorf("value %T %v: got %v", v, v, got.Payload.(Arg).Val)
		}
	}
}

func TestQuickArgRoundTrip(t *testing.T) {
	f := func(job int64, from, to int32, seq uint64, tw int32, tseq uint64, slot int32, val int64, crossed bool) bool {
		env := &Envelope{
			Job: types.JobID(job), From: types.WorkerID(from), To: types.WorkerID(to), Seq: seq,
			Payload: Arg{
				Cont:    types.Continuation{Task: types.TaskID{Worker: types.WorkerID(tw), Seq: tseq}, Slot: slot},
				Val:     val,
				Crossed: crossed,
			},
		}
		b, err := Encode(env)
		if err != nil {
			return false
		}
		out, err := Decode(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(env, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte{1, 2}); err == nil {
		t.Error("short frame accepted")
	}
	if _, err := Decode([]byte{0, 0, 0, 9, 1}); err == nil {
		t.Error("length mismatch accepted")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		n := rng.Intn(64) + 5
		buf := make([]byte, n)
		rng.Read(buf[4:])
		buf[0], buf[1], buf[2], buf[3] = 0, 0, 0, byte(n-4)
		if _, err := Decode(buf); err == nil {
			t.Fatalf("random garbage decoded successfully: %x", buf)
		}
	}
}

func TestFrameIO(t *testing.T) {
	var buf bytes.Buffer
	envs := []*Envelope{
		{Job: 1, Payload: Heartbeat{Worker: 2}},
		{Job: 1, Payload: IO{Worker: 2, Text: "a"}},
		{Job: 1, Payload: Shutdown{Reason: "x"}},
	}
	for _, e := range envs {
		if err := WriteFrame(&buf, e); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range envs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("frame mismatch: %v vs %v", got, want)
		}
	}
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("read from empty stream succeeded")
	}
}
