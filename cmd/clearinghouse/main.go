// Command clearinghouse runs a standalone clearinghouse for one parallel
// job over UDP. Normally the phish launcher starts the clearinghouse
// itself; this binary exists for setups where the clearinghouse should
// live on a dedicated machine.
//
// Usage:
//
//	clearinghouse -program pfold -addr :7071 [-hb 10s] [-journal job.jnl] [args...]
//
// It prints the job's output and the root result, then exits. With
// -journal, control-plane state is logged to the named file; restarting
// the binary with the same flag resumes an interrupted job — surviving
// workers re-register on their own and the computation carries on.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"phish/internal/apps"
	"phish/internal/clearinghouse"
	"phish/internal/phishnet"
	"phish/internal/telemetry"
	"phish/internal/trace"
	"phish/internal/types"
	"phish/internal/wire"
)

func main() {
	addr := flag.String("addr", ":7071", "UDP address to listen on")
	program := flag.String("program", "", "program to run (fib, nqueens, pfold, ray)")
	job := flag.Int64("job", 1, "job id")
	hb := flag.Duration("hb", -1, "heartbeat timeout for crash detection (default 3x -update; 0 disables)")
	update := flag.Duration("update", 2*time.Minute, "membership update push interval (the paper's 2 minutes)")
	timeout := flag.Duration("timeout", 0, "give up after this long (0 = wait forever)")
	journal := flag.String("journal", "", "journal file for crash recovery (an existing file resumes that job)")
	phi := flag.Float64("phi", 8, "phi-accrual crash threshold (8 ~= 1-1e-8 confidence; 0 falls back to the fixed -hb timeout for everyone)")
	phiSlack := flag.Duration("phi-slack", 0, "acceptable-pause allowance subtracted before phi scoring (0 = the -hb timeout; negative = none)")
	drainAfter := flag.Duration("drain-after", 0, "order a planned drain for a worker graded suspect continuously this long (0 disables)")
	shards := flag.Int("shards", 8, "lock stripes for clearinghouse state (1 = single flat shard)")
	metricsAddr := flag.String("metrics", "", "serve the whole-job rollup at /metrics and /cluster.json on this HTTP address (off when empty)")
	flag.Usage = func() {
		fmt.Println("usage: clearinghouse -program <name> [flags] [program args...]\nprograms:")
		fmt.Print(apps.Usage())
		flag.PrintDefaults()
	}
	flag.Parse()

	app, err := apps.Lookup(*program)
	if err != nil {
		log.Fatalf("clearinghouse: %v", err)
	}
	rootArgs, err := app.ParseArgs(flag.Args())
	if err != nil {
		log.Fatalf("clearinghouse: %v", err)
	}

	conn, err := phishnet.ListenUDP(types.JobID(*job), types.ClearinghouseID, *addr)
	if err != nil {
		log.Fatalf("clearinghouse: %v", err)
	}
	spec := wire.JobSpec{
		ID:       types.JobID(*job),
		Name:     app.Name,
		Program:  app.Name,
		RootFn:   app.Root,
		RootArgs: rootArgs,
		CHAddr:   conn.LocalAddr(),
	}
	cfg := clearinghouse.DefaultConfig()
	cfg.UpdateEvery = *update
	cfg.PhiThreshold = *phi
	cfg.PhiSlack = *phiSlack
	cfg.SuspectDrainAfter = *drainAfter
	cfg.Shards = *shards
	if *metricsAddr != "" {
		cfg.Metrics = telemetry.NewMetrics()
		cfg.Trace = trace.NewBuffer(4096)
	}
	if *hb < 0 {
		// Crash detection is on by default, scaled to the update cadence:
		// three missed intervals and the worker is declared dead.
		cfg.HeartbeatTimeout = 3 * *update
	} else {
		cfg.HeartbeatTimeout = *hb
	}

	var ch *clearinghouse.Clearinghouse
	recovered := false
	if *journal != "" {
		if _, statErr := os.Stat(*journal); statErr == nil {
			rec, err := clearinghouse.ReplayJournal(*journal)
			if err != nil {
				log.Fatalf("clearinghouse: replay %s: %v", *journal, err)
			}
			jnl, err := clearinghouse.OpenJournal(*journal)
			if err != nil {
				log.Fatalf("clearinghouse: %v", err)
			}
			defer jnl.Close()
			cfg.Journal = jnl
			ch = clearinghouse.NewFromRecovery(rec, conn, cfg)
			recovered = true
			fmt.Printf("clearinghouse: recovered job %d (%s) from %s — %d member(s) journaled\n",
				rec.Spec.ID, rec.Spec.Name, *journal, len(rec.Members))
		} else {
			jnl, err := clearinghouse.OpenJournal(*journal)
			if err != nil {
				log.Fatalf("clearinghouse: %v", err)
			}
			defer jnl.Close()
			cfg.Journal = jnl
		}
	}
	if ch == nil {
		ch = clearinghouse.New(spec, conn, cfg)
	}
	go ch.Run()
	defer ch.Stop()

	if *metricsAddr != "" {
		conn.Instrument(ch.Counters(), cfg.Metrics, cfg.Trace)
		// Process-level health rides next to the cluster rollup: build
		// identity, goroutines, heap, GC pauses, and trace-ring loss.
		reg := telemetry.NewRegistry()
		telemetry.RegisterRuntime(reg)
		if cfg.Trace != nil {
			telemetry.RegisterTraceRing(reg, cfg.Trace)
		}
		srv, err := telemetry.Serve(*metricsAddr, nil, cfg.Trace)
		if err != nil {
			log.Fatalf("clearinghouse: %v", err)
		}
		defer srv.Close()
		snap := ch.ClusterSnapshot
		srv.Handle("/metrics", telemetry.ClusterMetricsWithProcessHandler(snap, reg))
		srv.Handle("/cluster.json", telemetry.ClusterJSONHandler(snap))
		fmt.Printf("clearinghouse: telemetry on http://%s/metrics (phishtop: phish -top http://%s)\n",
			srv.Addr(), srv.Addr())
	}

	if !recovered {
		fmt.Printf("clearinghouse: job %d (%s) on %s — waiting for workers\n",
			spec.ID, spec.Name, conn.LocalAddr())
	}

	v, err := ch.WaitResult(*timeout)
	if err != nil {
		log.Fatalf("clearinghouse: %v", err)
	}
	if out := ch.Output(); out != "" {
		fmt.Print(out)
	}
	fmt.Println(app.Render(v))
}
