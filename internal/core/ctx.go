package core

import (
	"fmt"

	"phish/internal/model"
	"phish/internal/types"
	"phish/internal/wire"
)

// TaskCtx implements model.Ctx, the programming interface shared with the
// Strata baseline runtime.
var _ model.Ctx = (*TaskCtx)(nil)

// TaskCtx is a task's window onto the runtime while its body executes. It
// exposes the task's arguments and the three scheduling primitives of the
// continuation-passing model: Return a result, Spawn a ready child, and
// create a Successor whose join counter waits for results.
//
// A TaskCtx is only valid during the TaskFunc call it was passed to.
type TaskCtx struct {
	w *Worker
	c *Closure
	// yielded is set when Yield told the body to vacate: the scheduler
	// requeues the closure instead of retiring it.
	yielded bool
}

// NArgs returns the number of argument slots.
func (t *TaskCtx) NArgs() int { return len(t.c.Args) }

// Arg returns argument i.
func (t *TaskCtx) Arg(i int) types.Value { return t.c.Args[i] }

// Int returns argument i as an int64, accepting the int forms that survive
// gob round trips. It panics on other types: a task disagreeing with its
// spawner about argument types is a programming error.
func (t *TaskCtx) Int(i int) int64 {
	switch v := t.c.Args[i].(type) {
	case int64:
		return v
	case int:
		return int64(v)
	case int32:
		return int64(v)
	case uint64:
		return int64(v)
	default:
		panic(fmt.Sprintf("core: task %s arg %d is %T, not an integer", t.c.Fn, i, v))
	}
}

// Float returns argument i as a float64.
func (t *TaskCtx) Float(i int) float64 {
	switch v := t.c.Args[i].(type) {
	case float64:
		return v
	case int64:
		return float64(v)
	default:
		panic(fmt.Sprintf("core: task %s arg %d is %T, not a float", t.c.Fn, i, v))
	}
}

// String returns argument i as a string.
func (t *TaskCtx) String(i int) string {
	s, ok := t.c.Args[i].(string)
	if !ok {
		panic(fmt.Sprintf("core: task %s arg %d is %T, not a string", t.c.Fn, i, t.c.Args[i]))
	}
	return s
}

// Worker returns the executing worker's identity.
func (t *TaskCtx) Worker() types.WorkerID { return t.w.id }

// Return sends v to the task's continuation — the task's one result. A
// task body calls Return or builds a successor; doing both sends two
// values into the same slot and corrupts the consumer's join counter, so
// don't.
func (t *TaskCtx) Return(v types.Value) {
	t.w.deliver(t.c.Cont, v, false, t.childTC())
}

// Send delivers v to an explicit continuation (a successor slot obtained
// from SuccRef.Cont, or a continuation the application threaded through
// task arguments). Each slot must receive exactly one value.
func (t *TaskCtx) Send(cont types.Continuation, v types.Value) {
	t.w.deliver(cont, v, false, t.childTC())
}

// childTC is the trace context this task hands to everything it creates
// or sends: the task itself becomes the parent span, and the sampling
// decision made at the root is inherited unchanged.
func (t *TaskCtx) childTC() wire.TraceCtx {
	return wire.TraceCtx{Parent: t.c.ID, Flags: t.c.TC.Flags}
}

// SuccRef names a successor task created by this task body, so that the
// body can mint continuations into the successor's slots and preset
// constant slots. It implements model.Succ.
type SuccRef struct {
	id types.TaskID
	w  *Worker
}

var _ model.Succ = SuccRef{}

// Cont returns the continuation that fills the successor's slot i.
func (s SuccRef) Cont(slot int) types.Continuation {
	return types.Continuation{Task: s.id, Slot: int32(slot)}
}

// Task returns the successor's task id (diagnostics).
func (s SuccRef) Task() types.TaskID { return s.id }

// Successor creates a waiting task of fn with nslots empty argument slots
// that inherits the calling task's continuation: when all slots are
// filled, the successor runs, and whatever it Returns flows to wherever
// this task's result was headed. This is the join of the model — "spawn
// children, then have a successor combine them".
func (t *TaskCtx) Successor(fn string, nslots int) model.Succ {
	return t.SuccessorCont(fn, nslots, t.c.Cont)
}

// SuccessorCont is Successor with an explicit continuation (used when a
// task fans out several joins).
func (t *TaskCtx) SuccessorCont(fn string, nslots int, cont types.Continuation) model.Succ {
	if nslots <= 0 {
		panic("core: successor needs at least one slot")
	}
	cl := newClosure()
	cl.ID = t.w.nextTaskID()
	cl.Fn = fn
	cl.growArgs(nslots)
	cl.Missing = int32(nslots)
	cl.Cont = cont
	cl.TC = t.childTC()
	t.w.addWaiting(cl)
	return SuccRef{id: cl.ID, w: t.w}
}

// Preset fills slot i of a successor with a constant known at spawn time.
// Presets are plumbing, not results, so they are not counted as
// synchronizations. Presetting every slot makes the successor ready
// immediately.
func (t *TaskCtx) Preset(s model.Succ, slot int, v types.Value) {
	if v == nil {
		panic("core: nil task argument")
	}
	t.w.fillSlot(types.Continuation{Task: s.Task(), Slot: int32(slot)}, v, false, false)
}

// Spawn creates a ready child task of fn with the given arguments, whose
// result will be delivered to cont. The child goes to the head of the
// ready deque (the paper's LIFO discipline), so with the default
// configuration it runs next unless a thief takes older work first.
func (t *TaskCtx) Spawn(fn string, cont types.Continuation, args ...types.Value) {
	t.w.spawn(fn, cont, args, false, t.childTC())
}

// Print emits output through the job's clearinghouse ("a user need only
// watch the Clearinghouse to see job output"). Output is buffered and sent
// asynchronously.
func (t *TaskCtx) Print(format string, args ...any) {
	t.w.print(fmt.Sprintf(format, args...))
}

// MaxCkptBlob caps a single checkpoint blob. Blobs piggyback on StatReport
// datagrams and ride in the clearinghouse journal, so they must stay
// compact; Yield refuses (but does not fail) larger blobs.
const MaxCkptBlob = 64 << 10

// Checkpoint returns the task's last saved checkpoint blob, or nil when
// the task starts from scratch. The returned slice is owned by the runtime
// and valid only until the next Yield; treat it as read-only.
func (t *TaskCtx) Checkpoint() []byte { return t.c.Ckpt }

// Yield offers the runtime a checkpoint of the task's partial progress and
// asks whether the body must vacate the processor. The blob (copied, so
// the caller may reuse its buffer) replaces any previous checkpoint for
// this task, is appended to the worker's checkpoint WAL when one is
// configured, and is published to the clearinghouse on the piggybacked
// StatReport path (rate-limited, latest-wins). Yield returns true when the
// worker is draining, being reclaimed, or crashing — the body must then
// return immediately without calling Return; the closure is requeued with
// the blob attached and re-executed later, possibly on another worker.
//
// Yield is also the worker's cooperative scheduling point: a long
// checkpointable body would otherwise leave the worker deaf to steal
// requests and drain traffic until it completed. When a message is waiting,
// Yield preempts the body (returning true); the scheduler loop services the
// mailbox and then resumes the closure from the blob it just saved. Tasks
// that never Yield keep the old run-to-completion behavior.
//
// Blobs larger than MaxCkptBlob are not saved (the previous checkpoint
// stands), but the preemption answer is still accurate.
func (t *TaskCtx) Yield(blob []byte) bool {
	w := t.w
	if w.cfg.NoCkpt {
		return false
	}
	if len(blob) <= MaxCkptBlob {
		t.c.setCkpt(blob, t.c.CkptSeq+1)
		w.counters.CkptSaves.Add(1)
		w.noteCkpt(t.c)
	}
	if w.stopReq.Load() || w.drainReq.Load() || w.crashReq.Load() {
		t.yielded = true
		return true
	}
	// Pending traffic: pull one envelope off the wire (handling it here
	// would re-enter the scheduler mid-body, so it is stashed for the
	// loop) and vacate.
	select {
	case env, ok := <-w.conn.Recv():
		if !ok {
			w.shutdownMsg = true
		} else {
			w.stash = append(w.stash, env)
		}
		t.yielded = true
		return true
	default:
	}
	return false
}
