// Package types defines the identifiers and small value types shared by
// every layer of the Phish runtime: worker, job, and task identities, the
// continuation type that links a task to the consumer of its result, and
// the dynamically-typed Value carried between tasks.
//
// Everything here is deliberately tiny and wire-friendly: these types cross
// address spaces when tasks are stolen or migrated.
package types

import "fmt"

// WorkerID identifies one participating worker process within a job.
// Worker 0 is by convention the first worker, started on the same
// workstation as the clearinghouse. The clearinghouse itself uses
// ClearinghouseID.
type WorkerID int32

// ClearinghouseID is the pseudo-worker identity of a job's clearinghouse.
// It lets the clearinghouse act as the continuation target for a job's
// root task so that the final result is delivered like any other
// synchronization.
const ClearinghouseID WorkerID = -1

// NoWorker is the zero-ish sentinel for "no worker".
const NoWorker WorkerID = -2

// JobID identifies a parallel job registered with the PhishJobQ.
type JobID int64

// NoJob is the sentinel for "no job assigned".
const NoJob JobID = 0

// TaskID names one closure (task instance) uniquely within a job.
// The pair (spawning worker, per-worker sequence number) is unique without
// any global coordination, which matters because tasks are created millions
// of times per second on every worker.
type TaskID struct {
	Worker WorkerID
	Seq    uint64
}

// Zero reports whether t is the zero TaskID (no task).
func (t TaskID) Zero() bool { return t.Worker == 0 && t.Seq == 0 }

func (t TaskID) String() string { return fmt.Sprintf("t%d.%d", t.Worker, t.Seq) }

// Continuation names the destination of a task's result: argument slot
// Slot of task Task. A task "returns" by sending its result value to its
// continuation; the runtime routes it locally (a local synchronization) or
// over the network (a non-local synchronization).
type Continuation struct {
	Task TaskID
	Slot int32
}

// None reports whether the continuation is the null continuation
// (results sent to it are discarded).
func (c Continuation) None() bool { return c.Task.Zero() && c.Slot == 0 }

func (c Continuation) String() string {
	if c.None() {
		return "cont(nil)"
	}
	return fmt.Sprintf("cont(%v[%d])", c.Task, c.Slot)
}

// NilContinuation is the discard continuation.
var NilContinuation = Continuation{}

// Value is the dynamically-typed datum passed between tasks: task
// arguments and task results. Values that cross the wire must be
// gob-encodable; applications using custom types register them with
// wire.RegisterValue.
type Value any

// WorkstationID identifies a workstation (a machine) in the Phish network,
// as distinct from a WorkerID, which identifies a participant of one job.
// One workstation runs at most one worker at a time in this implementation
// (mirroring the paper's PhishJobManager).
type WorkstationID int32

func (w WorkstationID) String() string { return fmt.Sprintf("ws%d", w) }
