// Parallel ray tracing — the paper's "ray my-scene" example, rendered on
// an in-process Phish cluster and written out as a PPM image.
//
//	go run ./examples/raytrace [-scene ring] [-w 640 -h 480] [-p 8] [-out scene.ppm]
//
// The image parallelizes over horizontal bands; because the bands always
// split on row boundaries, the parallel image is verified byte-identical
// to a serial rendering before it is written.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"phish"
	"phish/internal/apps/ray"
)

func main() {
	scene := flag.String("scene", "default", "registered scene (default, ring)")
	w := flag.Int("w", 320, "image width")
	h := flag.Int("h", 240, "image height")
	p := flag.Int("p", 8, "participating workers")
	band := flag.Int("band", 0, "leaf band height (0 = default)")
	out := flag.String("out", "trace.ppm", "output PPM file")
	verify := flag.Bool("verify", true, "also render serially and compare")
	flag.Parse()

	s, err := ray.SceneByName(*scene)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("raytrace: %s at %dx%d on %d workers\n", *scene, *w, *h, *p)
	start := time.Now()
	res, err := phish.RunLocal(ray.Program(), ray.Root, ray.RootArgs(*scene, *w, *h, *band),
		phish.LocalOptions{Workers: *p})
	if err != nil {
		log.Fatal(err)
	}
	img := res.Value.([]byte)
	fmt.Printf("rendered in %v (%d tasks, %d stolen)\n",
		time.Since(start).Round(time.Millisecond), res.Totals.TasksExecuted, res.Totals.TasksStolen)

	if *verify {
		serial := ray.Serial(s, *w, *h)
		if !bytes.Equal(img, serial) {
			log.Fatal("parallel image differs from serial rendering")
		}
		fmt.Println("verified byte-identical to the serial rendering")
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := ray.WritePPM(f, img, *w, *h); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
