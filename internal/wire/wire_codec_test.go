package wire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"phish/internal/types"
)

// everyPayload returns one populated instance of every message type,
// exercising nil and non-nil slices/maps, empty strings, and nested
// values. Used by the round-trip, truncation, and fuzz-seed tests.
func everyPayload() []any {
	cl := Closure{
		ID:      types.TaskID{Worker: 3, Seq: 17},
		Fn:      "matmul",
		Args:    []types.Value{int64(5), "x", []int64{1, 2}, []float64{0.5}, []byte{9}, true, 3.25, int32(-4), uint64(1 << 60), int(-11)},
		Missing: 1,
		Cont:    types.Continuation{Task: types.TaskID{Worker: 1, Seq: 4}, Slot: 2},
		NoSteal: true,
	}
	emptyArgs := Closure{ID: types.TaskID{Worker: 1, Seq: 1}, Fn: "f", Args: []types.Value{}}
	nilArgs := Closure{ID: types.TaskID{Worker: 1, Seq: 2}, Fn: "g"}
	partial := Closure{ID: types.TaskID{Worker: 1, Seq: 3}, Fn: "join",
		Args: []types.Value{nil, int64(8), nil}, Missing: 2}
	ckpted := Closure{ID: types.TaskID{Worker: 2, Seq: 7}, Fn: "ray",
		Args: []types.Value{int64(1)}, Ckpt: []byte{1, 2, 3, 0, 255}, CkptSeq: 9}
	tc := TraceCtx{Parent: types.TaskID{Worker: 4, Seq: 21}, Flags: FlagSampled}
	traced := Closure{ID: types.TaskID{Worker: 4, Seq: 22}, Fn: "fib",
		Args: []types.Value{int64(12)}, TC: tc}
	rec := Record{ID: types.TaskID{Worker: 3, Seq: 18}, RealCont: cl.Cont, Task: cl, Thief: 7, Confirmed: true,
		OutstandingNS: 2_500_000_000}
	return []any{
		StealRequest{Thief: 7},
		StealRequest{Thief: types.NoWorker},
		StealReply{OK: true, Task: cl},
		StealReply{OK: true, Task: traced},
		StealReply{OK: true, Task: partial},
		StealReply{},
		StealConfirm{Record: types.TaskID{Worker: 2, Seq: 9}},
		Arg{Cont: cl.Cont, Val: int64(42), Crossed: true},
		Arg{Cont: cl.Cont, Val: int64(7), TC: tc},
		Arg{Cont: cl.Cont, Val: []types.Value{int64(1), []types.Value{"nested", nil}}},
		Arg{},
		Migrate{From: 3, Closures: []Closure{cl, emptyArgs, nilArgs, ckpted}, Records: []Record{rec}},
		Migrate{From: 4},
		Migrate{From: 5, Closures: []Closure{}, Records: []Record{}},
		MigrateAck{Count: 2},
		Register{Worker: 5, Addr: "127.0.0.1:9", Site: 3},
		Register{Worker: 6, SendNS: 123456789},
		Register{},
		RegisterReply{Assigned: 5, View: MembershipView{Epoch: 3,
			Members: []MemberInfo{{Worker: 5, Addr: "a", HostedBy: 5, Site: 1}, {Worker: 6, HostedBy: 5}}}},
		RegisterReply{Assigned: types.NoWorker},
		RegisterReply{Assigned: 7, RecvNS: -987654321},
		Unregister{Worker: 5, Reason: LeaveReclaimed, MigratedTo: 6},
		Unregister{Worker: 5, Reason: LeaveCrash, MigratedTo: types.NoWorker},
		Update{View: MembershipView{Epoch: 9}},
		Update{View: MembershipView{Epoch: 10, Members: []MemberInfo{}}},
		Heartbeat{Worker: 5},
		Heartbeat{Worker: 6, SendNS: 42},
		WorkerDown{Worker: 4},
		WorkerDown{Worker: 6, TC: tc},
		WorkerDown{Worker: 5, Ckpts: []TaskCkpt{
			{Task: types.TaskID{Worker: 5, Seq: 3}, Seq: 2, Data: []byte{7, 8}},
			{Task: types.TaskID{Worker: 5, Seq: 4}, Seq: 1, Data: []byte{}},
		}},
		IO{Worker: 5, Text: "hello\n"},
		IO{},
		Shutdown{Reason: "done"},
		Shutdown{},
		SpawnRoot{Fn: "fib", Args: []types.Value{int64(30)}},
		SpawnRoot{Fn: "main"},
		StayRequest{Worker: 5},
		StayReply{Stay: true},
		StayReply{},
		Pause{Seq: 12},
		PauseAck{Seq: 12, Worker: 3,
			SentTo: map[types.WorkerID]int64{1: 5, 2: 9},
			RecvFr: map[types.WorkerID]int64{}},
		PauseAck{Seq: 13, Worker: 4},
		SnapshotRequest{Seq: 14},
		SnapshotReply{Seq: 14, Worker: 3, Closures: []Closure{cl}, Records: []Record{rec}},
		SnapshotReply{Seq: 15, Worker: 4},
		Resume{Seq: 16},
		JobRequest{Workstation: 11},
		JobReply{OK: true, Job: JobSpec{ID: 2, Name: "n", Program: "p", RootFn: "r",
			RootArgs: []types.Value{int64(1)}, CHAddr: "x", Priority: 7}},
		JobReply{},
		JobSubmit{Job: JobSpec{Name: "n"}},
		JobSubmitReply{ID: 8},
		JobDone{ID: 8},
		JobList{},
		JobListReply{Jobs: []JobSpec{{ID: 1}, {ID: 2, RootArgs: []types.Value{"a", nil}}}},
		JobListReply{},
		Ack{Seq: 99},
		StatReport{Ver: StatReportVersion, Worker: 5, Deque: 3,
			Counters: []int64{10, 20, 0, -1, 1 << 40},
			Hists: []HistState{
				{Kind: 0, Count: 3, Sum: 4500, Counts: []int64{1, 2, 0}},
				{Kind: 4, Count: 0, Sum: 0, Counts: []int64{}},
				{Kind: 2},
			}},
		StatReport{Worker: 6, Counters: []int64{}, Hists: []HistState{}},
		StatReport{Worker: 7, Ckpts: []TaskCkpt{
			{Task: types.TaskID{Worker: 7, Seq: 1}, Seq: 4, Data: []byte{0, 1, 2}}}},
		StatReport{Worker: 8, SpanSeq: 3, ClockOffNS: -1500, Spans: []Span{
			{Kind: SpanExec, Flags: FlagSampled, Worker: 8,
				Task:   types.TaskID{Worker: 8, Seq: 2},
				Parent: types.TaskID{Worker: 4, Seq: 21},
				Link:   types.TaskID{Worker: 4, Seq: 20},
				Peer:   4, Start: 100, End: 900},
			{Kind: SpanStealReq, Worker: 3, Peer: types.NoWorker, Start: -5, End: 5},
		}},
		StatReport{Worker: 9, Spans: []Span{}},
		StatReport{},
		DrainRequest{Worker: 9},
		DrainAck{OK: true, Victim: 4, Addr: "127.0.0.1:9999"},
		DrainAck{Victim: types.NoWorker},
		SuspectSet{Suspects: []SuspectInfo{
			{Worker: 4, PhiMilli: 8750, Ckpts: []TaskCkpt{
				{Task: types.TaskID{Worker: 4, Seq: 2}, Seq: 3, Data: []byte{1, 2}}}},
			{Worker: 6, PhiMilli: -1},
		}},
		SuspectSet{},
		SuspectSet{Suspects: []SuspectInfo{}},
		DrainOrder{Reason: "degraded: exec-rate"},
		DrainOrder{},
		nil,
	}
}

// TestRoundTripEveryMessageType asserts encode∘decode = identity for every
// message in the protocol, including nil/empty slice and map distinctions.
func TestRoundTripEveryMessageType(t *testing.T) {
	for _, p := range everyPayload() {
		env := &Envelope{Job: 2, From: -1, To: 5, Seq: 77, Payload: p}
		got := roundTrip(t, env)
		if !reflect.DeepEqual(env, got) {
			t.Errorf("%T: round trip mismatch\n in  %#v\n out %#v", p, env, got)
		}
	}
}

// TestRoundTripMaxSizePayloads pushes matmul-scale data through the codec:
// a megabyte-class matrix block as []float64, a large []byte, and a wide
// []int64 — the data-heavy steal case.
func TestRoundTripMaxSizePayloads(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	block := make([]float64, 128*1024) // 1 MiB of matrix
	for i := range block {
		block[i] = rng.NormFloat64()
	}
	raw := make([]byte, 1<<20)
	rng.Read(raw)
	wide := make([]int64, 64*1024)
	for i := range wide {
		wide[i] = rng.Int63()
	}
	cl := Closure{
		ID:   types.TaskID{Worker: 1, Seq: 1},
		Fn:   "matmul",
		Args: []types.Value{block, raw, wide, int64(128)},
		Cont: types.Continuation{Task: types.TaskID{Worker: 2, Seq: 2}},
	}
	for _, p := range []any{
		Arg{Cont: cl.Cont, Val: block},
		Arg{Cont: cl.Cont, Val: raw},
		StealReply{OK: true, Task: cl},
		Migrate{From: 1, Closures: []Closure{cl, cl}},
	} {
		env := &Envelope{Job: 1, From: 1, To: 2, Seq: 3, Payload: p}
		got := roundTrip(t, env)
		if !reflect.DeepEqual(env, got) {
			t.Errorf("%T: max-size round trip mismatch", p)
		}
	}
	// Beyond maxFrame must refuse to encode, not truncate.
	huge := Arg{Val: make([]byte, maxFrame+1)}
	if _, err := Encode(&Envelope{Payload: huge}); err == nil {
		t.Error("oversized frame encoded without error")
	}
}

// TestDecodeTruncatedFrames feeds every strict prefix of every encoded
// message to Decode — with the length prefix patched to match, so the
// failure must come from the payload parser — and requires an error, never
// a panic, never silent success.
func TestDecodeTruncatedFrames(t *testing.T) {
	for _, p := range everyPayload() {
		env := &Envelope{Job: 1, From: 2, To: 3, Seq: 4, Payload: p}
		frame, err := Encode(env)
		if err != nil {
			t.Fatalf("encode %T: %v", p, err)
		}
		step := 1
		if len(frame) > 512 {
			step = len(frame) / 256 // large frames: sample prefixes
		}
		for k := 0; k < len(frame); k += step {
			trunc := make([]byte, k)
			copy(trunc, frame[:k])
			if k >= 4 {
				binary.BigEndian.PutUint32(trunc[:4], uint32(k-4))
			}
			if _, err := Decode(trunc); err == nil {
				t.Fatalf("%T: truncated frame of %d/%d bytes decoded successfully", p, k, len(frame))
			}
		}
	}
}

// TestDecodeCorruptFrames flips bytes in valid frames; Decode may reject
// or may produce a different valid message, but must never panic.
func TestDecodeCorruptFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, p := range everyPayload() {
		frame, err := Encode(&Envelope{Job: 1, From: 2, To: 3, Seq: 4, Payload: p})
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 64; trial++ {
			corrupt := make([]byte, len(frame))
			copy(corrupt, frame)
			for flips := 0; flips < 1+rng.Intn(4); flips++ {
				corrupt[4+rng.Intn(len(corrupt)-4)] ^= byte(1 + rng.Intn(255))
			}
			_, _ = Decode(corrupt) // must not panic
		}
	}
	// Hostile counts: a slice header claiming 2^32-1 elements must fail
	// fast instead of allocating.
	frame, _ := Encode(&Envelope{Payload: Migrate{From: 1, Closures: []Closure{{Fn: "f"}}}})
	idx := bytes.IndexByte(frame[30:], 1) + 30 // first presence flag
	binary.BigEndian.PutUint32(frame[idx+1:idx+5], 0xFFFFFFFF)
	if _, err := Decode(frame); err == nil {
		t.Error("hostile element count decoded successfully")
	}
}

// TestQuickClosurePayloads drives randomized closures and views through
// the codec via testing/quick.
func TestQuickClosurePayloads(t *testing.T) {
	f := func(w, cw int32, seq, cseq uint64, fn string, slot int32, missing int32,
		ints []int64, floats []float64, blob []byte, s string, nosteal bool) bool {
		args := []types.Value{ints, floats, blob, s}
		if len(blob)%2 == 0 {
			args = append(args, nil, int64(len(blob)))
		}
		cl := Closure{
			ID: types.TaskID{Worker: types.WorkerID(w), Seq: seq}, Fn: fn, Args: args,
			Missing: missing,
			Cont:    types.Continuation{Task: types.TaskID{Worker: types.WorkerID(cw), Seq: cseq}, Slot: slot},
			NoSteal: nosteal,
		}
		env := &Envelope{Job: 1, From: 1, To: 2, Seq: 1, Payload: StealReply{OK: true, Task: cl}}
		b, err := Encode(env)
		if err != nil {
			return false
		}
		out, err := Decode(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(env, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	g := func(epoch uint64, workers []int32, addr string, counts []int64) bool {
		view := MembershipView{Epoch: epoch}
		for i, w := range workers {
			view.Members = append(view.Members, MemberInfo{
				Worker: types.WorkerID(w), Addr: addr, HostedBy: types.WorkerID(w), Site: int32(i)})
		}
		sent := make(map[types.WorkerID]int64)
		for i, c := range counts {
			sent[types.WorkerID(i)] = c
		}
		for _, p := range []any{Update{View: view}, PauseAck{Seq: epoch, SentTo: sent}} {
			env := &Envelope{Payload: p}
			b, err := Encode(env)
			if err != nil {
				return false
			}
			out, err := Decode(b)
			if err != nil || !reflect.DeepEqual(env, out) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// appCustomValue is an application-defined argument type that exercises
// the gob-fallback boundary of the codec.
type appCustomValue struct {
	Name string
	Rows []float64
}

// appCustomPayload is an unknown message type carried via the whole-
// payload gob fallback (tGobEnvelope).
type appCustomPayload struct {
	Kind int64
	Note string
}

func TestGobFallbackBoundary(t *testing.T) {
	RegisterValue(appCustomValue{})
	RegisterValue(appCustomPayload{})
	env := &Envelope{Job: 1, From: 2, To: 3, Seq: 4,
		Payload: Arg{Val: appCustomValue{Name: "m", Rows: []float64{1, 2}}}}
	got := roundTrip(t, env)
	if !reflect.DeepEqual(env, got) {
		t.Errorf("custom value round trip mismatch: %#v vs %#v", env, got)
	}
	if env.PayloadName() != "Arg" {
		t.Errorf("PayloadName = %q", env.PayloadName())
	}
	// Whole-payload fallback: a message type the codec has no shape for.
	env2 := &Envelope{Job: 1, From: 2, To: 3, Seq: 5,
		Payload: appCustomPayload{Kind: 9, Note: "opaque"}}
	got2 := roundTrip(t, env2)
	if !reflect.DeepEqual(env2, got2) {
		t.Errorf("custom payload round trip mismatch: %#v vs %#v", env2, got2)
	}
	if env2.PayloadName() != "gob-fallback" {
		t.Errorf("PayloadName = %q", env2.PayloadName())
	}
}

func TestEnvelopeStringCheap(t *testing.T) {
	env := &Envelope{Job: 2, From: 1, To: 5, Seq: 77, Payload: StealRequest{Thief: 7}}
	if got, want := env.String(), "[job 2 1->5 #77 StealRequest]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestAppendEncodeBatched checks that frames appended back to back into
// one buffer (the UDP batcher's datagram layout) parse individually.
func TestAppendEncodeBatched(t *testing.T) {
	var buf []byte
	envs := []*Envelope{
		{Job: 1, From: 1, To: 2, Seq: 10, Payload: Heartbeat{Worker: 1}},
		{Job: 1, From: 1, To: 2, Seq: 11, Payload: Ack{Seq: 10}},
		{Job: 1, From: 1, To: 2, Seq: 12, Payload: Arg{Val: "batched"}},
	}
	for _, e := range envs {
		var err error
		if buf, err = AppendEncode(buf, e); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range envs {
		n := 4 + binary.BigEndian.Uint32(buf[:4])
		got, err := Decode(buf[:n])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("batched frame mismatch: %v vs %v", got, want)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Errorf("%d trailing bytes", len(buf))
	}
}

func TestFrameReaderStream(t *testing.T) {
	var stream bytes.Buffer
	envs := []*Envelope{
		{Job: 1, Payload: JobRequest{Workstation: 3}},
		{Job: 1, Payload: JobReply{OK: true, Job: JobSpec{ID: 1, Name: "j"}}},
		{Job: 1, Payload: JobListReply{Jobs: []JobSpec{{ID: 1}, {ID: 2}}}},
	}
	for _, e := range envs {
		if err := WriteFrame(&stream, e); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&stream)
	var got []*Envelope
	for range envs {
		e, err := fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, e)
	}
	// Envelopes must own their data: compare after all reads so buffer
	// reuse across Next calls would corrupt earlier results.
	for i, want := range envs {
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("frame %d mismatch: %v vs %v", i, got[i], want)
		}
	}
	if _, err := fr.Next(); err == nil {
		t.Error("read past end succeeded")
	}
}

// TestGobReferenceCodec keeps the old gob codec honest — it remains the
// fallback boundary and the benchmark baseline.
func TestGobReferenceCodec(t *testing.T) {
	env := &Envelope{Job: 2, From: 1, To: 5, Seq: 77,
		Payload: StealReply{OK: true, Task: Closure{ID: types.TaskID{Worker: 1, Seq: 2}, Fn: "f", Args: []types.Value{int64(1)}}}}
	b, err := EncodeGob(env)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeGob(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(env, out) {
		t.Errorf("gob round trip mismatch")
	}
}

// FuzzDecode hammers the binary decoder with mutated frames; any panic
// fails the fuzz run. Seeds cover every message type.
func FuzzDecode(f *testing.F) {
	for _, p := range everyPayload() {
		frame, err := Encode(&Envelope{Job: 1, From: 2, To: 3, Seq: 4, Payload: p})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Decode(data)
		if err == nil && env != nil {
			// A frame that decodes must re-encode (identity is checked
			// elsewhere; here we only require no panic on the round).
			_, _ = Encode(env)
		}
	})
}
