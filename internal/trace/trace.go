// Package trace is a lightweight, allocation-conscious event tracer for
// the Phish runtime: a fixed-size ring buffer per participant that records
// scheduling events (spawns, steals, migrations, crashes, redos) with
// nanosecond timestamps. It exists for debugging distributed-protocol
// races — the kind of bug where the only witness is the interleaving —
// and for the timeline renderings in the examples.
//
// Tracing is off by default and costs one atomic load per call site when
// disabled.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"phish/internal/types"
)

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	EvSpawn Kind = iota
	EvExecute
	EvStealRequest
	EvStealGrant
	EvStealFail
	EvStealAdopt
	EvSynch
	EvMigrateOut
	EvMigrateIn
	EvRedo
	EvRegister
	EvUnregister
	EvCrash
	EvShutdown
	EvPeerGone
	EvRetransmit
	EvRecover
	EvJournalReplay
	EvPreempt
	EvCkpt
	kindCount
)

var kindNames = [kindCount]string{
	"spawn", "execute", "steal-req", "steal-grant", "steal-fail",
	"steal-adopt", "synch", "migrate-out", "migrate-in", "redo",
	"register", "unregister", "crash", "shutdown",
	"peer-gone", "retransmit", "recover", "journal-replay",
	"preempt", "ckpt",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one trace record.
type Event struct {
	At     time.Time
	Worker types.WorkerID
	Kind   Kind
	Task   types.TaskID
	Peer   types.WorkerID
	Note   string
}

func (e Event) String() string {
	s := fmt.Sprintf("%s w%d %s", e.At.Format("15:04:05.000000"), e.Worker, e.Kind)
	if !e.Task.Zero() {
		s += " " + e.Task.String()
	}
	if e.Peer != 0 && e.Peer != e.Worker {
		s += fmt.Sprintf(" peer=w%d", e.Peer)
	}
	if e.Note != "" {
		s += " " + e.Note
	}
	return s
}

// Buffer is a per-participant ring of events. The zero value is disabled;
// call Enable (or NewBuffer) first. Safe for concurrent use.
type Buffer struct {
	enabled atomic.Bool
	mu      sync.Mutex
	ring    []Event
	next    int
	total   uint64
	dropped uint64
}

// NewBuffer returns an enabled buffer holding the last n events.
func NewBuffer(n int) *Buffer {
	b := &Buffer{}
	b.Enable(n)
	return b
}

// Enable turns tracing on with capacity n (subsequent Enable calls reset
// the ring).
func (b *Buffer) Enable(n int) {
	if n <= 0 {
		n = 4096
	}
	b.mu.Lock()
	b.ring = make([]Event, n)
	b.next = 0
	b.total = 0
	b.dropped = 0
	b.mu.Unlock()
	b.enabled.Store(true)
}

// Disable turns tracing off (events are kept).
func (b *Buffer) Disable() { b.enabled.Store(false) }

// Enabled reports whether Add records anything.
func (b *Buffer) Enabled() bool { return b != nil && b.enabled.Load() }

// Add records an event if tracing is enabled. Callers on hot paths should
// guard with Enabled() to skip argument construction.
func (b *Buffer) Add(ev Event) {
	if !b.Enabled() {
		return
	}
	if ev.At.IsZero() {
		ev.At = time.Now()
	}
	b.mu.Lock()
	if b.total >= uint64(len(b.ring)) {
		// The slot being overwritten held the oldest retained event: the
		// ring silently forgets it, so count the loss where a scrape can
		// see it instead of letting truncated timelines masquerade as
		// complete ones.
		b.dropped++
	}
	b.ring[b.next] = ev
	b.next = (b.next + 1) % len(b.ring)
	b.total++
	b.mu.Unlock()
}

// Events returns the recorded events, oldest first.
func (b *Buffer) Events() []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := int(b.total)
	if n > len(b.ring) {
		n = len(b.ring)
	}
	out := make([]Event, 0, n)
	start := b.next - n
	if start < 0 {
		start += len(b.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, b.ring[(start+i)%len(b.ring)])
	}
	return out
}

// Total returns how many events were ever added (including overwritten
// ones).
func (b *Buffer) Total() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// Dropped returns how many events were overwritten before anyone read
// them — the ring's loss counter. Nil-safe.
func (b *Buffer) Dropped() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Merge interleaves several buffers' events by timestamp — one timeline
// for a whole job.
func Merge(bufs ...*Buffer) []Event {
	var all []Event
	for _, b := range bufs {
		all = append(all, b.Events()...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].At.Before(all[j].At) })
	return all
}

// Render formats a timeline for humans.
func Render(events []Event) string {
	var sb strings.Builder
	for _, e := range events {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Counts tallies events by kind (for tests and summaries).
func Counts(events []Event) map[Kind]int {
	m := make(map[Kind]int)
	for _, e := range events {
		m[e.Kind]++
	}
	return m
}
