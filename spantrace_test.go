package phish_test

import (
	"testing"
	"time"

	"phish"
	"phish/internal/apps/fib"
	"phish/internal/wire"
)

// A traced multi-worker run must yield a coherent cluster timeline: every
// executed task has an exec span, the reconstructed DAG's T1 and T∞ obey
// T∞ ≤ T1 ≤ P·makespan (up to clock skew, which an in-process fabric does
// not have), and at least one steal leg was recorded on a job that must
// steal to spread work.
func TestSpanTraceEndToEnd(t *testing.T) {
	const workers = 4
	// fib(22) is long enough that thieves usually win tasks even on one
	// core (the same workload TestTraceRecordsStealProtocol uses); the
	// large span buffer keeps every span for the exact-count assertion.
	// Whether any steal succeeds is still timing-dependent, so retry a few
	// times for a run with real steals; the fast membership push widens
	// the window in which thieves know their victims.
	cfg := phish.DefaultWorkerConfig()
	cfg.SpanBuf = 1 << 20
	var res *phish.LocalResult
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		res, err = phish.RunLocal(fib.Program(), fib.Root, fib.RootArgs(22), phish.LocalOptions{
			Workers:     workers,
			Config:      cfg,
			SpanTrace:   true,
			UpdateEvery: 2 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Totals.TasksStolen > 0 {
			break
		}
	}
	if got, want := res.Value.(int64), fib.Serial(22); got != want {
		t.Fatalf("fib(22) = %d, want %d", got, want)
	}
	if len(res.Spans) == 0 {
		t.Fatal("traced run returned no spans")
	}
	d := phish.BuildDAG(res.Spans)
	if want := fib.TaskCount(22); int64(d.Tasks) != want {
		t.Errorf("DAG tasks = %d, want %d (one exec span per executed task)", d.Tasks, want)
	}
	if d.T1 <= 0 || d.TInf <= 0 || d.Makespan <= 0 {
		t.Fatalf("degenerate DAG: T1=%v Tinf=%v makespan=%v", d.T1, d.TInf, d.Makespan)
	}
	if d.TInf > d.T1 {
		t.Errorf("Tinf %v > T1 %v", d.TInf, d.T1)
	}
	if d.T1 > time.Duration(workers)*d.Makespan {
		t.Errorf("T1 %v exceeds P * makespan %v: timeline incoherent", d.T1, time.Duration(workers)*d.Makespan)
	}
	if len(d.CritPath) < 2 {
		t.Errorf("critical path too short: %v", d.CritPath)
	}
	kinds := map[uint8]int{}
	for _, sp := range res.Spans {
		kinds[sp.Kind]++
	}
	// The span plane must agree with the counters: a run that stole tasks
	// has all three steal legs in its trace.
	if res.Totals.TasksStolen > 0 {
		if kinds[wire.SpanStealReq] == 0 || kinds[wire.SpanStealGrant] == 0 || kinds[wire.SpanStealAdopt] == 0 {
			t.Errorf("counters say %d steals but legs missing from trace: %v", res.Totals.TasksStolen, kinds)
		}
	} else {
		t.Logf("no successful steals in any attempt; steal-leg check skipped (kinds %v)", kinds)
	}
	if _, err := d.ChromeTrace(); err != nil {
		t.Errorf("chrome export: %v", err)
	}
}

// Tracing off must stay off: no spans recorded, no spans returned.
func TestSpanTraceDisabled(t *testing.T) {
	res, err := phish.RunLocal(fib.Program(), fib.Root, fib.RootArgs(10), phish.LocalOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spans) != 0 {
		t.Errorf("untraced run returned %d spans", len(res.Spans))
	}
}

// SpanSample = tiny probability with a single root: the root either is or
// is not sampled, and an unsampled root must produce no exec spans (the
// steal plumbing may still record its own attempt spans).
func TestSpanSampling(t *testing.T) {
	res, err := phish.RunLocal(fib.Program(), fib.Root, fib.RootArgs(10), phish.LocalOptions{
		Workers:    1,
		SpanTrace:  true,
		SpanSample: 1e-12,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range res.Spans {
		if sp.Kind == wire.SpanExec {
			t.Fatalf("unsampled root produced exec span %+v", sp)
		}
	}
}
