// Zero-copy read-in-place views: wire format v2.
//
// The hot scheduler messages — StealRequest, StealReply (and the Closure
// it carries), StealConfirm, Arg, Heartbeat, Ack, StatReport — are encoded
// with an explicit field-keyed layout so receivers can read them in place
// from the receive buffer instead of materializing structs:
//
//	offset 0..29  the same frame header as v1 (codec.go), version byte = 2
//	offset 30     u8 field count
//	then per field:
//	              u8  key = fieldID<<2 | wiretype
//	              payload, sized by the wiretype:
//	                wt1:   1 byte
//	                wt4:   4 bytes
//	                wt8:   8 bytes
//	                wtLen: u32 length + that many bytes
//
// Zero-valued fields are omitted (a nil slice is an omitted field; an
// empty-but-present slice is encoded with an inner count of 0, so nil and
// empty round-trip distinctly). A decoder skips fields whose id or
// wiretype it does not recognize — the wiretype alone determines the skip
// distance — so old and new daemons interoperate: a newer sender's extra
// fields are ignored, and its readers treat an older sender's missing
// fields as zero. The leading field count keeps truncation detectable
// (a prefix-cut body fails the walk instead of silently decoding as
// "fields absent").
//
// Cold control-plane tags (Register, Migrate, job queue RPCs, ...) keep
// their v1 positional bodies; Decode accepts both versions.
//
// Arena + View manage buffer lifetime on the receive path: a UDP datagram
// is read into a pooled, reference-counted Arena, every frame in it
// becomes a pooled *View envelope payload aliasing those bytes, and the
// arena returns to the pool when the last view is freed. Accessors are
// lazy — a steal request costs one field scan, not a decoded struct — and
// everything an accessor returns without copying is documented as valid
// only while the view is alive.
package wire

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"phish/internal/types"
)

// frameVersionV2 marks a frame whose body is the field-keyed layout above.
const frameVersionV2 = 2

// v2 wiretypes: the low two bits of a field key.
const (
	wt1   byte = 0 // 1 fixed byte
	wt4   byte = 1 // 4 fixed bytes
	wt8   byte = 2 // 8 fixed bytes
	wtLen byte = 3 // u32 length + bytes
)

// Field ids. Like tags and span kinds these are wire format: append new
// ids (1..63), never renumber. Id 0 is reserved so an all-zero key never
// parses as a real field.
const (
	fSRqThief = 1 // StealRequest

	fSRpOK   = 1 // StealReply
	fSRpTask = 2

	fSCRecord = 1 // StealConfirm

	fArgCont    = 1 // Arg
	fArgVal     = 2
	fArgCrossed = 3
	fArgTC      = 4

	fHBWorker = 1 // Heartbeat
	fHBSendNS = 2

	fAckSeq = 1 // Ack

	fStVer     = 1 // StatReport
	fStWorker  = 2
	fStDeque   = 3
	fStCount   = 4
	fStHists   = 5
	fStCkpts   = 6
	fStSpanSeq = 7
	fStOffNS   = 8
	fStSpans   = 9

	fClID      = 1 // Closure (sub-body inside StealReply.Task)
	fClFn      = 2
	fClArgs    = 3
	fClMissing = 4
	fClCont    = 5
	fClNoSteal = 6
	fClCkpt    = 7
	fClCkptSeq = 8
	fClTC      = 9
)

// v2Tag reports whether tag has a v2 field-keyed body shape.
func v2Tag(tag byte) bool {
	switch tag {
	case tStealRequest, tStealReply, tStealConfirm, tArg, tHeartbeat, tAck, tStatReport:
		return true
	}
	return false
}

// ---- v2 encoder -----------------------------------------------------------

// v2enc appends one field-keyed body: a count byte patched at the end,
// then one appended field per emitted value. It lives on the caller's
// stack; the only heap traffic is growth of the target buffer itself.
type v2enc struct {
	b  []byte
	at int // index of the count byte
	n  byte
}

func beginV2(b []byte) v2enc {
	b = append(b, 0)
	return v2enc{b: b, at: len(b) - 1}
}

func (e *v2enc) done() []byte {
	e.b[e.at] = e.n
	return e.b
}

func (e *v2enc) f1(id byte, v byte) {
	e.b = append(e.b, id<<2|wt1, v)
	e.n++
}

func (e *v2enc) f4(id byte, v uint32) {
	e.b = appendU32(append(e.b, id<<2|wt4), v)
	e.n++
}

func (e *v2enc) f8(id byte, v uint64) {
	e.b = appendU64(append(e.b, id<<2|wt8), v)
	e.n++
}

// begin opens a length-delimited field; end patches its length once the
// content is in place.
func (e *v2enc) begin(id byte) int {
	e.b = append(e.b, id<<2|wtLen, 0, 0, 0, 0)
	e.n++
	return len(e.b) - 4
}

func (e *v2enc) end(at int) {
	binary.BigEndian.PutUint32(e.b[at:at+4], uint32(len(e.b)-at-4))
}

func (e *v2enc) fBytes(id byte, p []byte) {
	e.b = appendU32(append(e.b, id<<2|wtLen), uint32(len(p)))
	e.b = append(e.b, p...)
	e.n++
}

func (e *v2enc) fStr(id byte, s string) {
	e.b = appendU32(append(e.b, id<<2|wtLen), uint32(len(s)))
	e.b = append(e.b, s...)
	e.n++
}

func (e *v2enc) fTaskID(id byte, t types.TaskID) {
	e.b = append(e.b, id<<2|wtLen, 0, 0, 0, 12)
	e.b = appendTaskID(e.b, t)
	e.n++
}

func (e *v2enc) fCont(id byte, c types.Continuation) {
	e.b = append(e.b, id<<2|wtLen, 0, 0, 0, 16)
	e.b = appendCont(e.b, c)
	e.n++
}

func (e *v2enc) fTC(id byte, tc TraceCtx) {
	e.b = append(e.b, id<<2|wtLen, 0, 0, 0, 13)
	e.b = appendTC(e.b, tc)
	e.n++
}

func closureIsZero(c *Closure) bool {
	return c.ID == (types.TaskID{}) && c.Fn == "" && c.Args == nil &&
		c.Missing == 0 && c.Cont == (types.Continuation{}) && !c.NoSteal &&
		c.Ckpt == nil && c.CkptSeq == 0 && c.TC == (TraceCtx{})
}

// appendClosureV2 writes a closure as a nested field-keyed sub-body.
func appendClosureV2(b []byte, c *Closure) ([]byte, error) {
	e := beginV2(b)
	if c.ID != (types.TaskID{}) {
		e.fTaskID(fClID, c.ID)
	}
	if c.Fn != "" {
		e.fStr(fClFn, c.Fn)
	}
	if c.Args != nil {
		at := e.begin(fClArgs)
		e.b = appendU32(e.b, uint32(len(c.Args)))
		var err error
		for _, v := range c.Args {
			if e.b, err = appendValue(e.b, v); err != nil {
				return nil, err
			}
		}
		e.end(at)
	}
	if c.Missing != 0 {
		e.f4(fClMissing, uint32(c.Missing))
	}
	if c.Cont != (types.Continuation{}) {
		e.fCont(fClCont, c.Cont)
	}
	if c.NoSteal {
		e.f1(fClNoSteal, 1)
	}
	if c.Ckpt != nil {
		e.fBytes(fClCkpt, c.Ckpt)
	}
	if c.CkptSeq != 0 {
		e.f8(fClCkptSeq, c.CkptSeq)
	}
	if c.TC != (TraceCtx{}) {
		e.fTC(fClTC, c.TC)
	}
	return e.done(), nil
}

// appendPayloadV2 writes the v2 body for a hot payload. Callers dispatch
// here only for tags v2Tag accepts (plus *View splices, which preserve
// even fields this build does not know about).
func appendPayloadV2(b []byte, p any) ([]byte, error) {
	if v, ok := p.(*View); ok {
		return append(b, v.body...), nil
	}
	e := beginV2(b)
	switch x := p.(type) {
	case StealRequest:
		if x.Thief != 0 {
			e.f4(fSRqThief, uint32(int32(x.Thief)))
		}
	case StealReply:
		if x.OK {
			e.f1(fSRpOK, 1)
		}
		if !closureIsZero(&x.Task) {
			at := e.begin(fSRpTask)
			var err error
			if e.b, err = appendClosureV2(e.b, &x.Task); err != nil {
				return nil, err
			}
			e.end(at)
		}
	case StealConfirm:
		if x.Record != (types.TaskID{}) {
			e.fTaskID(fSCRecord, x.Record)
		}
	case Arg:
		if x.Cont != (types.Continuation{}) {
			e.fCont(fArgCont, x.Cont)
		}
		if x.Val != nil {
			at := e.begin(fArgVal)
			var err error
			if e.b, err = appendValue(e.b, x.Val); err != nil {
				return nil, err
			}
			e.end(at)
		}
		if x.Crossed {
			e.f1(fArgCrossed, 1)
		}
		if x.TC != (TraceCtx{}) {
			e.fTC(fArgTC, x.TC)
		}
	case Heartbeat:
		if x.Worker != 0 {
			e.f4(fHBWorker, uint32(int32(x.Worker)))
		}
		if x.SendNS != 0 {
			e.f8(fHBSendNS, uint64(x.SendNS))
		}
	case Ack:
		if x.Seq != 0 {
			e.f8(fAckSeq, x.Seq)
		}
	case StatReport:
		if x.Ver != 0 {
			e.f4(fStVer, uint32(x.Ver))
		}
		if x.Worker != 0 {
			e.f4(fStWorker, uint32(int32(x.Worker)))
		}
		if x.Deque != 0 {
			e.f4(fStDeque, uint32(x.Deque))
		}
		if x.Counters != nil {
			at := e.begin(fStCount)
			e.b = appendU32(e.b, uint32(len(x.Counters)))
			for _, v := range x.Counters {
				e.b = appendI64(e.b, v)
			}
			e.end(at)
		}
		if x.Hists != nil {
			at := e.begin(fStHists)
			e.b = appendU32(e.b, uint32(len(x.Hists)))
			for _, h := range x.Hists {
				e.b = appendI32(e.b, h.Kind)
				e.b = appendI64(e.b, h.Count)
				e.b = appendI64(e.b, h.Sum)
				e.b = appendI64s(e.b, h.Counts)
			}
			e.end(at)
		}
		if x.Ckpts != nil {
			at := e.begin(fStCkpts)
			e.b = appendU32(e.b, uint32(len(x.Ckpts)))
			for _, c := range x.Ckpts {
				e.b = appendTaskID(e.b, c.Task)
				e.b = appendU64(e.b, c.Seq)
				e.b = appendBlob(e.b, c.Data)
			}
			e.end(at)
		}
		if x.SpanSeq != 0 {
			e.f8(fStSpanSeq, x.SpanSeq)
		}
		if x.ClockOffNS != 0 {
			e.f8(fStOffNS, uint64(x.ClockOffNS))
		}
		if x.Spans != nil {
			at := e.begin(fStSpans)
			e.b = appendU32(e.b, uint32(len(x.Spans)))
			for _, s := range x.Spans {
				e.b = append(e.b, s.Kind, s.Flags)
				e.b = appendI32(e.b, int32(s.Worker))
				e.b = appendTaskID(e.b, s.Task)
				e.b = appendTaskID(e.b, s.Parent)
				e.b = appendTaskID(e.b, s.Link)
				e.b = appendI32(e.b, int32(s.Peer))
				e.b = appendI64(e.b, s.Start)
				e.b = appendI64(e.b, s.End)
			}
			e.end(at)
		}
	default:
		return nil, fmt.Errorf("no v2 shape for %T", p)
	}
	return e.done(), nil
}

// ---- v2 walker ------------------------------------------------------------

// v2walker iterates a field-keyed body with bounds checks and a sticky
// error, mirroring the reader in codec.go.
type v2walker struct {
	b    []byte
	off  int
	left int
	err  error
}

func newV2Walker(b []byte) v2walker {
	if len(b) == 0 {
		return v2walker{err: errShortFrame}
	}
	return v2walker{b: b, off: 1, left: int(b[0])}
}

// next returns the next field. ok=false means the walk is over — the
// caller checks finish (or w.err) to distinguish completion from damage.
func (w *v2walker) next() (id, wt byte, val []byte, ok bool) {
	if w.err != nil || w.left == 0 {
		return 0, 0, nil, false
	}
	w.left--
	if w.off >= len(w.b) {
		w.err = errShortFrame
		return 0, 0, nil, false
	}
	key := w.b[w.off]
	w.off++
	id, wt = key>>2, key&3
	n := 0
	switch wt {
	case wt1:
		n = 1
	case wt4:
		n = 4
	case wt8:
		n = 8
	case wtLen:
		if len(w.b)-w.off < 4 {
			w.err = errShortFrame
			return 0, 0, nil, false
		}
		n = int(binary.BigEndian.Uint32(w.b[w.off:]))
		w.off += 4
	}
	if n < 0 || len(w.b)-w.off < n {
		w.err = errShortFrame
		return 0, 0, nil, false
	}
	val = w.b[w.off : w.off+n]
	w.off += n
	return id, wt, val, true
}

// finish reports whether the walk consumed the body exactly: the declared
// number of fields, no trailing bytes.
func (w *v2walker) finish() error {
	if w.err != nil {
		return w.err
	}
	if w.left != 0 || w.off != len(w.b) {
		return errShortFrame
	}
	return nil
}

// validateV2 walks every field of a body once so views handed to
// consumers are known to be well-framed (nested content is still
// re-checked lazily by accessors).
func validateV2(tag byte, body []byte) error {
	if !v2Tag(tag) {
		return fmt.Errorf("wire: no v2 shape for %s", tagName(tag))
	}
	w := newV2Walker(body)
	for {
		if _, _, _, ok := w.next(); !ok {
			break
		}
	}
	return w.finish()
}

// v2field scans body for the first field with the given id and wiretype.
// A field whose id matches but whose wiretype does not is treated as
// unknown, the same forward-compatibility rule as skipping: both halves of
// the key are the field's identity.
func v2field(body []byte, id, wt byte) ([]byte, bool) {
	w := newV2Walker(body)
	for {
		fid, fwt, val, ok := w.next()
		if !ok {
			return nil, false
		}
		if fid == id && fwt == wt {
			return val, true
		}
	}
}

func v2u32(body []byte, id byte) uint32 {
	val, ok := v2field(body, id, wt4)
	if !ok {
		return 0
	}
	return binary.BigEndian.Uint32(val)
}

func v2u64(body []byte, id byte) uint64 {
	val, ok := v2field(body, id, wt8)
	if !ok {
		return 0
	}
	return binary.BigEndian.Uint64(val)
}

func v2bool(body []byte, id byte) bool {
	val, ok := v2field(body, id, wt1)
	return ok && val[0] != 0
}

func v2taskID(body []byte, id byte) types.TaskID {
	val, ok := v2field(body, id, wtLen)
	if !ok || len(val) != 12 {
		return types.TaskID{}
	}
	return types.TaskID{
		Worker: types.WorkerID(int32(binary.BigEndian.Uint32(val))),
		Seq:    binary.BigEndian.Uint64(val[4:]),
	}
}

func v2cont(body []byte, id byte) types.Continuation {
	val, ok := v2field(body, id, wtLen)
	if !ok || len(val) != 16 {
		return types.Continuation{}
	}
	return types.Continuation{
		Task: types.TaskID{
			Worker: types.WorkerID(int32(binary.BigEndian.Uint32(val))),
			Seq:    binary.BigEndian.Uint64(val[4:]),
		},
		Slot: int32(binary.BigEndian.Uint32(val[12:])),
	}
}

func v2tc(body []byte, id byte) TraceCtx {
	val, ok := v2field(body, id, wtLen)
	if !ok || len(val) != 13 {
		return TraceCtx{}
	}
	return TraceCtx{
		Parent: types.TaskID{
			Worker: types.WorkerID(int32(binary.BigEndian.Uint32(val))),
			Seq:    binary.BigEndian.Uint64(val[4:]),
		},
		Flags: val[12],
	}
}

// ---- v2 materialization ---------------------------------------------------

// Counted inner decoders: a wtLen field's content is an explicit u32
// element count plus elements, checked exactly (an extension never grows
// an existing field — it adds a new field id).

func readValuesCounted(b []byte) ([]types.Value, error) {
	r := reader{b: b}
	n := int(r.u32())
	if r.err == nil && n > r.rem() { // a value is at least one tag byte
		r.fail()
	}
	if r.err != nil {
		return nil, r.err
	}
	out := make([]types.Value, n)
	for i := range out {
		out[i] = r.value(0)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, errShortFrame
	}
	return out, nil
}

func readI64sCounted(b []byte) ([]int64, error) {
	r := reader{b: b}
	n := int(r.u32())
	if r.err == nil && n > r.rem()/8 {
		r.fail()
	}
	if r.err != nil {
		return nil, r.err
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.i64()
	}
	if r.off != len(r.b) || r.err != nil {
		return nil, errShortFrame
	}
	return out, nil
}

func readHistsCounted(b []byte) ([]HistState, error) {
	r := reader{b: b}
	n := int(r.u32())
	if r.err == nil && n > r.rem()/21 { // kind + count + sum + nil-flag
		r.fail()
	}
	if r.err != nil {
		return nil, r.err
	}
	out := make([]HistState, n)
	for i := range out {
		out[i] = HistState{Kind: r.i32(), Count: r.i64(), Sum: r.i64(), Counts: r.i64s()}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, errShortFrame
	}
	return out, nil
}

func readCkptsCounted(b []byte) ([]TaskCkpt, error) {
	r := reader{b: b}
	n := int(r.u32())
	if r.err == nil && n > r.rem()/21 { // taskID + seq + blob flag
		r.fail()
	}
	if r.err != nil {
		return nil, r.err
	}
	out := make([]TaskCkpt, n)
	for i := range out {
		out[i] = TaskCkpt{Task: r.taskID(), Seq: r.u64(), Data: r.blob()}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, errShortFrame
	}
	return out, nil
}

func readSpansCounted(b []byte) ([]Span, error) {
	r := reader{b: b}
	n := int(r.u32())
	if r.err == nil && n > r.rem()/spanWireLen {
		r.fail()
	}
	if r.err != nil {
		return nil, r.err
	}
	out := make([]Span, n)
	for i := range out {
		out[i] = Span{
			Kind:   r.u8(),
			Flags:  r.u8(),
			Worker: r.worker(),
			Task:   r.taskID(),
			Parent: r.taskID(),
			Link:   r.taskID(),
			Peer:   r.worker(),
			Start:  r.i64(),
			End:    r.i64(),
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, errShortFrame
	}
	return out, nil
}

func materializeClosureV2(body []byte) (Closure, error) {
	var c Closure
	w := newV2Walker(body)
	for {
		id, wt, val, ok := w.next()
		if !ok {
			break
		}
		var err error
		switch {
		case id == fClID && wt == wtLen && len(val) == 12:
			c.ID = types.TaskID{
				Worker: types.WorkerID(int32(binary.BigEndian.Uint32(val))),
				Seq:    binary.BigEndian.Uint64(val[4:]),
			}
		case id == fClFn && wt == wtLen:
			c.Fn = internName(val)
		case id == fClArgs && wt == wtLen:
			if c.Args, err = readValuesCounted(val); err != nil {
				return c, err
			}
		case id == fClMissing && wt == wt4:
			c.Missing = int32(binary.BigEndian.Uint32(val))
		case id == fClCont && wt == wtLen && len(val) == 16:
			c.Cont = types.Continuation{
				Task: types.TaskID{
					Worker: types.WorkerID(int32(binary.BigEndian.Uint32(val))),
					Seq:    binary.BigEndian.Uint64(val[4:]),
				},
				Slot: int32(binary.BigEndian.Uint32(val[12:])),
			}
		case id == fClNoSteal && wt == wt1:
			c.NoSteal = val[0] != 0
		case id == fClCkpt && wt == wtLen:
			c.Ckpt = make([]byte, len(val))
			copy(c.Ckpt, val)
		case id == fClCkptSeq && wt == wt8:
			c.CkptSeq = binary.BigEndian.Uint64(val)
		case id == fClTC && wt == wtLen && len(val) == 13:
			c.TC = TraceCtx{
				Parent: types.TaskID{
					Worker: types.WorkerID(int32(binary.BigEndian.Uint32(val))),
					Seq:    binary.BigEndian.Uint64(val[4:]),
				},
				Flags: val[12],
			}
		}
	}
	return c, w.finish()
}

// materializeV2 decodes a v2 body into the owned struct the v1 decoder
// would have produced: strings, blobs, and slices are copied out of the
// frame, so the result survives arena reuse.
func materializeV2(tag byte, body []byte) (any, error) {
	w := newV2Walker(body)
	var p any
	var err error
	switch tag {
	case tStealRequest:
		var m StealRequest
		for {
			id, wt, val, ok := w.next()
			if !ok {
				break
			}
			if id == fSRqThief && wt == wt4 {
				m.Thief = types.WorkerID(int32(binary.BigEndian.Uint32(val)))
			}
		}
		p = m
	case tStealReply:
		var m StealReply
		for {
			id, wt, val, ok := w.next()
			if !ok {
				break
			}
			switch {
			case id == fSRpOK && wt == wt1:
				m.OK = val[0] != 0
			case id == fSRpTask && wt == wtLen:
				if m.Task, err = materializeClosureV2(val); err != nil {
					return nil, err
				}
			}
		}
		p = m
	case tStealConfirm:
		var m StealConfirm
		for {
			id, wt, val, ok := w.next()
			if !ok {
				break
			}
			if id == fSCRecord && wt == wtLen && len(val) == 12 {
				m.Record = types.TaskID{
					Worker: types.WorkerID(int32(binary.BigEndian.Uint32(val))),
					Seq:    binary.BigEndian.Uint64(val[4:]),
				}
			}
		}
		p = m
	case tArg:
		var m Arg
		for {
			id, wt, val, ok := w.next()
			if !ok {
				break
			}
			switch {
			case id == fArgCont && wt == wtLen && len(val) == 16:
				m.Cont = types.Continuation{
					Task: types.TaskID{
						Worker: types.WorkerID(int32(binary.BigEndian.Uint32(val))),
						Seq:    binary.BigEndian.Uint64(val[4:]),
					},
					Slot: int32(binary.BigEndian.Uint32(val[12:])),
				}
			case id == fArgVal && wt == wtLen:
				r := reader{b: val}
				m.Val = r.value(0)
				if r.err != nil {
					return nil, r.err
				}
				if r.off != len(r.b) {
					return nil, errShortFrame
				}
			case id == fArgCrossed && wt == wt1:
				m.Crossed = val[0] != 0
			case id == fArgTC && wt == wtLen && len(val) == 13:
				m.TC = TraceCtx{
					Parent: types.TaskID{
						Worker: types.WorkerID(int32(binary.BigEndian.Uint32(val))),
						Seq:    binary.BigEndian.Uint64(val[4:]),
					},
					Flags: val[12],
				}
			}
		}
		p = m
	case tHeartbeat:
		var m Heartbeat
		for {
			id, wt, val, ok := w.next()
			if !ok {
				break
			}
			switch {
			case id == fHBWorker && wt == wt4:
				m.Worker = types.WorkerID(int32(binary.BigEndian.Uint32(val)))
			case id == fHBSendNS && wt == wt8:
				m.SendNS = int64(binary.BigEndian.Uint64(val))
			}
		}
		p = m
	case tAck:
		var m Ack
		for {
			id, wt, val, ok := w.next()
			if !ok {
				break
			}
			if id == fAckSeq && wt == wt8 {
				m.Seq = binary.BigEndian.Uint64(val)
			}
		}
		p = m
	case tStatReport:
		var m StatReport
		for {
			id, wt, val, ok := w.next()
			if !ok {
				break
			}
			switch {
			case id == fStVer && wt == wt4:
				m.Ver = int32(binary.BigEndian.Uint32(val))
			case id == fStWorker && wt == wt4:
				m.Worker = types.WorkerID(int32(binary.BigEndian.Uint32(val)))
			case id == fStDeque && wt == wt4:
				m.Deque = int32(binary.BigEndian.Uint32(val))
			case id == fStCount && wt == wtLen:
				if m.Counters, err = readI64sCounted(val); err != nil {
					return nil, err
				}
			case id == fStHists && wt == wtLen:
				if m.Hists, err = readHistsCounted(val); err != nil {
					return nil, err
				}
			case id == fStCkpts && wt == wtLen:
				if m.Ckpts, err = readCkptsCounted(val); err != nil {
					return nil, err
				}
			case id == fStSpanSeq && wt == wt8:
				m.SpanSeq = binary.BigEndian.Uint64(val)
			case id == fStOffNS && wt == wt8:
				m.ClockOffNS = int64(binary.BigEndian.Uint64(val))
			case id == fStSpans && wt == wtLen:
				if m.Spans, err = readSpansCounted(val); err != nil {
					return nil, err
				}
			}
		}
		p = m
	default:
		return nil, fmt.Errorf("wire: no v2 shape for %s", tagName(tag))
	}
	return p, w.finish()
}

// ---- Arena ----------------------------------------------------------------

// arenaSize fits a maximum UDP datagram with headroom.
const arenaSize = 64 << 10

// Arena is a pooled, reference-counted receive buffer. The UDP read loop
// reads one datagram into an arena, hands every frame in it out as a view
// (each view holding one reference), drops its own reference, and the
// buffer returns to the pool when the last view is freed — batched
// datagrams share one buffer with no copies.
type Arena struct {
	buf  []byte
	refs atomic.Int32
}

var arenaPool = sync.Pool{New: func() any { return &Arena{buf: make([]byte, arenaSize)} }}

// NewArena draws an arena from the pool with one reference (the
// caller's). Release it once the datagram's frames have been handed off.
func NewArena() *Arena {
	a := arenaPool.Get().(*Arena)
	a.refs.Store(1)
	return a
}

// Bytes is the arena's full backing buffer, for the transport to read a
// datagram into.
func (a *Arena) Bytes() []byte { return a.buf }

// Retain adds a reference.
func (a *Arena) Retain() { a.refs.Add(1) }

// Release drops a reference, returning the arena to the pool when the
// count reaches zero. The caller's data aliases die with the reference.
func (a *Arena) Release() {
	if a == nil {
		return
	}
	if a.refs.Add(-1) == 0 {
		arenaPool.Put(a)
	}
}

// ---- View -----------------------------------------------------------------

// View is a decoded-in-place v2 payload: a tag plus the raw field-keyed
// body, still sitting in the receive buffer. Typed accessors (AsArg and
// friends) read fields lazily without materializing a struct. A view
// envelope's final owner must call Envelope.Free (or View.Free) to drop
// the arena reference; Envelope.Materialize converts to an owned struct
// payload when the data must outlive the buffer.
type View struct {
	tag   byte
	body  []byte
	arena *Arena
}

var viewPool = sync.Pool{New: func() any { return new(View) }}

// Name returns the payload's message name (e.g. "StealRequest").
func (v *View) Name() string { return tagName(v.tag) }

// Materialize decodes the view into the owned struct Decode would have
// produced for the same frame.
func (v *View) Materialize() (any, error) { return materializeV2(v.tag, v.body) }

// Free releases the view's arena reference and recycles the view. The
// view, and anything its accessors returned without copying, must not be
// used afterwards.
func (v *View) Free() {
	if v == nil {
		return
	}
	v.arena.Release()
	*v = View{}
	viewPool.Put(v)
}

// Materialize swaps a view payload for its owned struct form, releasing
// the view; envelopes that already carry structs are untouched. After a
// successful return the envelope no longer references the receive buffer.
func (e *Envelope) Materialize() error {
	v, ok := e.Payload.(*View)
	if !ok {
		return nil
	}
	p, err := v.Materialize()
	if err != nil {
		return err
	}
	e.Payload = p
	v.Free()
	return nil
}

// DecodeView parses one frame like Decode, but leaves hot v2 payloads in
// place: the envelope's Payload is a pooled *View whose accessors read
// frame's bytes directly. When arena is non-nil the view takes one
// reference on it; either way the caller must keep frame's backing memory
// alive until the envelope's final owner frees or materializes it.
// Frames that are not v2 (old peers, cold control-plane tags) take the
// materializing Decode path, which copies everything it retains.
func DecodeView(frame []byte, arena *Arena) (env *Envelope, err error) {
	defer func() {
		if r := recover(); r != nil {
			env, err = nil, fmt.Errorf("wire: decode panic: %v", r)
		}
	}()
	if len(frame) < frameHeaderLen {
		return nil, fmt.Errorf("wire: short frame (%d bytes)", len(frame))
	}
	if frame[4] != frameVersionV2 {
		return Decode(frame)
	}
	n := binary.BigEndian.Uint32(frame[:4])
	if int64(n) != int64(len(frame)-4) {
		return nil, fmt.Errorf("wire: frame length mismatch: header %d, body %d", n, len(frame)-4)
	}
	tag := frame[5]
	body := frame[frameHeaderLen:]
	if err := validateV2(tag, body); err != nil {
		return nil, fmt.Errorf("wire: decode %s: %w", tagName(tag), err)
	}
	v := viewPool.Get().(*View)
	v.tag, v.body, v.arena = tag, body, arena
	if arena != nil {
		arena.Retain()
	}
	e := envelopePool.Get().(*Envelope)
	e.Job = types.JobID(int64(binary.BigEndian.Uint64(frame[6:14])))
	e.From = types.WorkerID(int32(binary.BigEndian.Uint32(frame[14:18])))
	e.To = types.WorkerID(int32(binary.BigEndian.Uint32(frame[18:22])))
	e.Seq = binary.BigEndian.Uint64(frame[22:30])
	e.Payload = v
	return e, nil
}

// ---- Typed accessors ------------------------------------------------------

// StealRequestView reads a StealRequest in place.
type StealRequestView struct{ b []byte }

// AsStealRequest returns a typed accessor when the view is a StealRequest.
func (v *View) AsStealRequest() (StealRequestView, bool) {
	if v == nil || v.tag != tStealRequest {
		return StealRequestView{}, false
	}
	return StealRequestView{v.body}, true
}

// Thief is the requesting worker.
func (s StealRequestView) Thief() types.WorkerID {
	return types.WorkerID(int32(v2u32(s.b, fSRqThief)))
}

// StealReplyView reads a StealReply in place.
type StealReplyView struct{ b []byte }

// AsStealReply returns a typed accessor when the view is a StealReply.
func (v *View) AsStealReply() (StealReplyView, bool) {
	if v == nil || v.tag != tStealReply {
		return StealReplyView{}, false
	}
	return StealReplyView{v.body}, true
}

// OK reports whether the steal succeeded.
func (s StealReplyView) OK() bool { return v2bool(s.b, fSRpOK) }

// Task is the stolen closure (a zero-field view when the steal failed).
func (s StealReplyView) Task() ClosureView {
	val, _ := v2field(s.b, fSRpTask, wtLen)
	return ClosureView{val}
}

// ClosureView reads a wire Closure in place.
type ClosureView struct{ b []byte }

// ID is the task id.
func (c ClosureView) ID() types.TaskID { return v2taskID(c.b, fClID) }

// Fn is the task function name, interned so repeated decodes of the same
// job's handful of functions allocate nothing.
func (c ClosureView) Fn() string {
	val, ok := v2field(c.b, fClFn, wtLen)
	if !ok {
		return ""
	}
	return internName(val)
}

// AppendArgs decodes the argument slots onto dst (typically a pooled
// closure's recycled backing array) and returns the extended slice.
// Argument values are owned copies; a missing args field appends nothing.
func (c ClosureView) AppendArgs(dst []types.Value) ([]types.Value, error) {
	val, ok := v2field(c.b, fClArgs, wtLen)
	if !ok {
		return dst, nil
	}
	r := reader{b: val}
	n := int(r.u32())
	if r.err == nil && n > r.rem() {
		r.fail()
	}
	for i := 0; i < n && r.err == nil; i++ {
		dst = append(dst, r.value(0))
	}
	if r.err != nil {
		return dst, r.err
	}
	if r.off != len(r.b) {
		return dst, errShortFrame
	}
	return dst, nil
}

// Missing is the count of unfilled argument slots.
func (c ClosureView) Missing() int32 { return int32(v2u32(c.b, fClMissing)) }

// Cont is the continuation the task's result feeds.
func (c ClosureView) Cont() types.Continuation { return v2cont(c.b, fClCont) }

// NoSteal reports whether the closure is pinned to its worker.
func (c ClosureView) NoSteal() bool { return v2bool(c.b, fClNoSteal) }

// Ckpt returns the checkpoint blob without copying — the bytes alias the
// receive buffer and are valid only while the view is alive. ok
// distinguishes an absent blob from an empty one.
func (c ClosureView) Ckpt() (blob []byte, ok bool) { return v2field(c.b, fClCkpt, wtLen) }

// CkptSeq orders checkpoint blobs for the task.
func (c ClosureView) CkptSeq() uint64 { return v2u64(c.b, fClCkptSeq) }

// TC is the closure's trace context.
func (c ClosureView) TC() TraceCtx { return v2tc(c.b, fClTC) }

// StealConfirmView reads a StealConfirm in place.
type StealConfirmView struct{ b []byte }

// AsStealConfirm returns a typed accessor when the view is a StealConfirm.
func (v *View) AsStealConfirm() (StealConfirmView, bool) {
	if v == nil || v.tag != tStealConfirm {
		return StealConfirmView{}, false
	}
	return StealConfirmView{v.body}, true
}

// Record is the confirmed steal record's id.
func (s StealConfirmView) Record() types.TaskID { return v2taskID(s.b, fSCRecord) }

// ArgView reads an Arg in place.
type ArgView struct{ b []byte }

// AsArg returns a typed accessor when the view is an Arg.
func (v *View) AsArg() (ArgView, bool) {
	if v == nil || v.tag != tArg {
		return ArgView{}, false
	}
	return ArgView{v.body}, true
}

// Cont is the destination argument slot.
func (a ArgView) Cont() types.Continuation { return v2cont(a.b, fArgCont) }

// Val decodes the delivered value. Scalar values box without copying
// frame bytes; strings, byte slices, and nested values are owned copies,
// so the result may outlive the view.
func (a ArgView) Val() (types.Value, error) {
	val, ok := v2field(a.b, fArgVal, wtLen)
	if !ok {
		return nil, nil
	}
	r := reader{b: val}
	v := r.value(0)
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, errShortFrame
	}
	return v, nil
}

// Crossed reports whether the value crossed a worker boundary en route.
func (a ArgView) Crossed() bool { return v2bool(a.b, fArgCrossed) }

// TC is the producing task's trace context.
func (a ArgView) TC() TraceCtx { return v2tc(a.b, fArgTC) }

// HeartbeatView reads a Heartbeat in place.
type HeartbeatView struct{ b []byte }

// AsHeartbeat returns a typed accessor when the view is a Heartbeat.
func (v *View) AsHeartbeat() (HeartbeatView, bool) {
	if v == nil || v.tag != tHeartbeat {
		return HeartbeatView{}, false
	}
	return HeartbeatView{v.body}, true
}

// Worker is the worker reporting liveness.
func (h HeartbeatView) Worker() types.WorkerID {
	return types.WorkerID(int32(v2u32(h.b, fHBWorker)))
}

// SendNS is the sender's clock at send time (zero when not tracing).
func (h HeartbeatView) SendNS() int64 { return int64(v2u64(h.b, fHBSendNS)) }

// AckView reads an Ack in place.
type AckView struct{ b []byte }

// AsAck returns a typed accessor when the view is an Ack.
func (v *View) AsAck() (AckView, bool) {
	if v == nil || v.tag != tAck {
		return AckView{}, false
	}
	return AckView{v.body}, true
}

// Seq is the acknowledged sequence number.
func (a AckView) Seq() uint64 { return v2u64(a.b, fAckSeq) }

// StatReportView reads a StatReport's header fields in place. The bulky
// slices (counters, histograms, checkpoints, spans) are reached through
// Materialize — consumers that fold them retain them anyway.
type StatReportView struct{ b []byte }

// AsStatReport returns a typed accessor when the view is a StatReport.
func (v *View) AsStatReport() (StatReportView, bool) {
	if v == nil || v.tag != tStatReport {
		return StatReportView{}, false
	}
	return StatReportView{v.body}, true
}

// Ver is the report layout version.
func (s StatReportView) Ver() int32 { return int32(v2u32(s.b, fStVer)) }

// Worker is the reporting worker.
func (s StatReportView) Worker() types.WorkerID {
	return types.WorkerID(int32(v2u32(s.b, fStWorker)))
}

// Deque is the ready-deque depth at report time.
func (s StatReportView) Deque() int32 { return int32(v2u32(s.b, fStDeque)) }

// SpanSeq is the span batch sequence number.
func (s StatReportView) SpanSeq() uint64 { return v2u64(s.b, fStSpanSeq) }

// ClockOffNS is the worker's clock-offset estimate.
func (s StatReportView) ClockOffNS() int64 { return int64(v2u64(s.b, fStOffNS)) }
