// Prometheus text exposition (version 0.0.4), hand-rolled: the repo takes
// no dependencies, and the subset we emit — counters, gauges, and
// cumulative histograms with le buckets — is small enough to write and
// parse by hand. ParseProm exists so tests (and the chaos CI job) can
// scrape what we expose and assert on it without a Prometheus binary.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

func writeLabels(w *bufio.Writer, labels []Label, extra ...Label) {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return
	}
	w.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			w.WriteByte(',')
		}
		fmt.Fprintf(w, "%s=%q", l.Name, l.Value)
	}
	w.WriteByte('}')
}

func writeSample(w *bufio.Writer, name string, labels []Label, v int64, extra ...Label) {
	w.WriteString(name)
	writeLabels(w, labels, extra...)
	w.WriteByte(' ')
	w.WriteString(strconv.FormatInt(v, 10))
	w.WriteByte('\n')
}

// WriteProm renders every registered instrument in Prometheus text
// exposition format. Families are sorted by name; series within a family
// keep registration order. Histograms emit cumulative _bucket{le=...}
// series plus _sum and _count.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	entries := append([]*entry(nil), r.entries...)
	r.mu.Unlock()
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, e := range entries {
		if e.name != lastFamily {
			if e.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", e.name, e.help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", e.name, e.typ)
			lastFamily = e.name
		}
		switch e.typ {
		case typeHist:
			writeHistProm(bw, e.name, e.labels, e.hist.Snapshot())
		default:
			writeSample(bw, e.name, e.labels, e.read())
		}
	}
	return bw.Flush()
}

func writeHistProm(w *bufio.Writer, name string, labels []Label, s HistSnapshot) {
	cum := int64(0)
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		writeSample(w, name+"_bucket", labels, cum, Label{"le", formatBound(b)})
	}
	if n := len(s.Bounds); n < len(s.Counts) {
		cum += s.Counts[n]
	}
	writeSample(w, name+"_bucket", labels, cum, Label{"le", "+Inf"})
	writeSample(w, name+"_sum", labels, s.Sum)
	writeSample(w, name+"_count", labels, s.Count)
}

func formatBound(b int64) string { return strconv.FormatInt(b, 10) }

// MetricSnapshot is one instrument's state in a JSON snapshot.
type MetricSnapshot struct {
	Name   string        `json:"name"`
	Type   string        `json:"type"`
	Labels []Label       `json:"labels,omitempty"`
	Value  int64         `json:"value,omitempty"`
	Hist   *HistSnapshot `json:"hist,omitempty"`
}

// Snapshot captures every registered instrument.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	entries := append([]*entry(nil), r.entries...)
	r.mu.Unlock()
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	out := make([]MetricSnapshot, 0, len(entries))
	for _, e := range entries {
		m := MetricSnapshot{Name: e.name, Type: e.typ, Labels: e.labels}
		if e.typ == typeHist {
			s := e.hist.Snapshot()
			m.Hist = &s
		} else {
			m.Value = e.read()
		}
		out = append(out, m)
	}
	return out
}

// WriteJSON renders the registry as a JSON array of MetricSnapshots.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Key renders the sample's identity as name{label="value",...}.
func (s Sample) Key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	parts := make([]string, len(s.Labels))
	for i, l := range s.Labels {
		parts[i] = fmt.Sprintf("%s=%q", l.Name, l.Value)
	}
	return s.Name + "{" + strings.Join(parts, ",") + "}"
}

// Label returns the value of the named label ("" when absent).
func (s Sample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// ParseProm parses Prometheus text exposition into samples, ignoring
// comment and blank lines. Label values may contain escaped quotes,
// backslashes, and commas; sample values may use exponent notation.
func ParseProm(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return s, fmt.Errorf("telemetry: unterminated label block: %q", line)
		}
		labels, err := parseLabels(rest[i+1 : end])
		if err != nil {
			return s, fmt.Errorf("telemetry: %v in %q", err, line)
		}
		s.Labels = labels
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return s, fmt.Errorf("telemetry: malformed sample line: %q", line)
		}
		s.Name, rest = fields[0], fields[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("telemetry: bad value in %q: %v", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels scans a label block ('name="value",...') left to right,
// honoring backslash escapes inside quoted values — a naive comma split
// would shred values that themselves contain commas or escaped quotes.
func parseLabels(block string) ([]Label, error) {
	block = strings.TrimSpace(block)
	var out []Label
	for block != "" {
		eq := strings.IndexByte(block, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '=': %q", block)
		}
		name := strings.TrimSpace(block[:eq])
		rest := strings.TrimSpace(block[eq+1:])
		if rest == "" || rest[0] != '"' {
			return nil, fmt.Errorf("unquoted label value after %q", name)
		}
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++ // skip the escaped byte
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated label value after %q", name)
		}
		val, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			return nil, fmt.Errorf("bad label value for %q: %v", name, err)
		}
		out = append(out, Label{Name: name, Value: val})
		block = strings.TrimSpace(rest[end+1:])
		if block == "" {
			break
		}
		if block[0] != ',' {
			return nil, fmt.Errorf("expected ',' between labels, got %q", block)
		}
		// A trailing comma before '}' is legal exposition syntax.
		block = strings.TrimSpace(block[1:])
	}
	return out, nil
}

// SampleValue finds the first sample with the given name (any labels) and
// returns its value; ok reports whether it was found.
func SampleValue(samples []Sample, name string) (float64, bool) {
	for _, s := range samples {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}
