package registry

import (
	"reflect"
	"sync"
	"testing"
)

func TestRegisterLookup(t *testing.T) {
	r := New[func() int]()
	r.Register("one", func() int { return 1 })
	r.Register("two", func() int { return 2 })
	fn, err := r.Lookup("two")
	if err != nil {
		t.Fatal(err)
	}
	if fn() != 2 {
		t.Error("wrong function returned")
	}
	if _, err := r.Lookup("three"); err == nil {
		t.Error("unknown name did not error")
	}
	if r.Len() != 2 {
		t.Errorf("len = %d, want 2", r.Len())
	}
}

func TestDuplicatePanics(t *testing.T) {
	r := New[int]()
	r.Register("x", 1)
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Register("x", 2)
}

func TestEmptyNamePanics(t *testing.T) {
	r := New[int]()
	defer func() {
		if recover() == nil {
			t.Error("empty name did not panic")
		}
	}()
	r.Register("", 1)
}

func TestMustLookupPanicsOnUnknown(t *testing.T) {
	r := New[int]()
	defer func() {
		if recover() == nil {
			t.Error("MustLookup on unknown name did not panic")
		}
	}()
	r.MustLookup("nope")
}

func TestNamesSorted(t *testing.T) {
	r := New[int]()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.Register(n, 0)
	}
	if got, want := r.Names(), []string{"alpha", "mid", "zeta"}; !reflect.DeepEqual(got, want) {
		t.Errorf("names = %v, want %v", got, want)
	}
}

func TestConcurrentLookups(t *testing.T) {
	r := New[int]()
	r.Register("k", 7)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				if r.MustLookup("k") != 7 {
					panic("bad value")
				}
			}
		}()
	}
	wg.Wait()
}
