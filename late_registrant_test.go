package phish_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"phish/internal/apps/fib"
	"phish/internal/clearinghouse"
	"phish/internal/clock"
	"phish/internal/core"
	"phish/internal/phishnet"
	"phish/internal/types"
	"phish/internal/wire"
)

// TestLateRegistrantGetsShutdown is the regression test for a protocol
// hole found during development: when a job completes before a slow
// joiner's registration lands (easy on fast jobs — the shutdown broadcast
// predates its membership), the clearinghouse must tell the late
// registrant directly that the job is over, or it thieves forever. The
// two-site latency wiring widens the race window enough to catch it.
func TestLateRegistrantGetsShutdown(t *testing.T) {
	for iter := 0; iter < 10; iter++ {
		fab := phishnet.NewFabric()
		fab.SetLatencyFunc(func(from, to types.WorkerID) time.Duration {
			sf, st := int32(0), int32(0)
			if from >= 0 {
				sf = int32(int(from) / 3)
			}
			if to >= 0 {
				st = int32(int(to) / 3)
			}
			if sf != st {
				return 500 * time.Microsecond
			}
			return 0
		})
		spec := wire.JobSpec{ID: 1, Name: "fib", Program: "fib", RootFn: fib.Root, RootArgs: fib.RootArgs(22)}
		chCfg := clearinghouse.DefaultConfig()
		ch := clearinghouse.New(spec, fab.Attach(types.ClearinghouseID), chCfg)
		go ch.Run()

		cfg := core.DefaultConfig()
		cfg.Victim = core.SiteAwareVictim
		var wg sync.WaitGroup
		workers := make([]*core.Worker, 6)
		for i := range workers {
			wcfg := cfg
			wcfg.Site = int32(i / 3)
			workers[i] = core.NewWorker(1, types.WorkerID(i), fib.Program(), fab.Attach(types.WorkerID(i)), wcfg, clock.System)
			wg.Add(1)
			go func(w *core.Worker) { defer wg.Done(); _ = w.Run() }(workers[i])
		}
		if _, err := ch.WaitResult(30 * time.Second); err != nil {
			t.Fatalf("iter %d: job never finished: %v", iter, err)
		}
		// Workers must all exit promptly after completion.
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			fmt.Println(ch.DebugMembers())
			for _, w := range workers {
				w.Crash()
			}
			time.Sleep(200 * time.Millisecond)
			for _, w := range workers {
				fmt.Println(w.DebugDump())
			}
			t.Fatalf("iter %d: workers did not exit after job completion", iter)
		}
		ch.Stop()
		fab.Close()
	}
}
