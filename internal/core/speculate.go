// Worker-side graded health: the decaying suspect blacklist and the
// speculative-redo rule. The clearinghouse grades the fleet (see
// clearinghouse/health.go) and broadcasts the suspect set; each worker
// merges that with its own evidence (steal timeouts) into an
// expiry-stamped blacklist. Suspect victims are stolen from only when no
// healthy victim exists, and a task lent to a suspect thief that stays
// outstanding past K× the Fn's p99 local execution time is redone from its
// last published checkpoint without waiting for a crash declaration. The
// steal record funnels both results through one dedup point, so a wrong
// suspicion wastes the loser's work but never duplicates an answer.
package core

import (
	"time"

	"phish/internal/types"
	"phish/internal/wire"
)

// execStats is one Fn's execution-time track: EWMA mean and mean absolute
// deviation, from which the speculation rule approximates p99 as
// mean + 3×dev (exact enough for a threshold that is then multiplied by
// K anyway). Scheduler goroutine only.
type execStats struct {
	mean float64 // ns
	dev  float64 // ns, EWMA of |sample - mean|
	n    int64
}

// execWarmup is how many completed executions an Fn needs before its p99
// estimate may trigger speculation.
const execWarmup = 8

func (e *execStats) observe(d time.Duration) {
	x := float64(d)
	if e.n == 0 {
		e.mean = x
	} else {
		const alpha = 0.2
		e.dev += alpha * (absNS(x-e.mean) - e.dev)
		e.mean += alpha * (x - e.mean)
	}
	e.n++
}

func (e *execStats) warm() bool { return e.n >= execWarmup }

func (e *execStats) p99() time.Duration { return time.Duration(e.mean + 3*e.dev) }

// noteExec folds one completed (unpreempted) execution of fn into its
// track.
func (w *Worker) noteExec(fn string, d time.Duration) {
	es, ok := w.fnExec[fn]
	if !ok {
		es = &execStats{}
		w.fnExec[fn] = es
	}
	es.observe(d)
}

// suspectMark is one blacklist entry. Suspicion has two tiers: local
// evidence (a steal timeout — one lost packet) only deprioritizes the peer
// as a victim, while the clearinghouse's graded verdict (EWMA bands plus
// hysteresis behind a SuspectSet broadcast) additionally arms speculative
// redo against the peer. The weak tier never erases the strong one.
type suspectMark struct {
	exp    time.Time
	graded bool
}

// isSuspect reports whether id is currently blacklisted, lazily expiring
// stale entries (the decay half of the blacklist).
func (w *Worker) isSuspect(id types.WorkerID, now time.Time) bool {
	m, ok := w.suspect[id]
	if !ok {
		return false
	}
	if now.After(m.exp) {
		delete(w.suspect, id)
		return false
	}
	return true
}

// isGradedSuspect reports whether id is blacklisted on the clearinghouse's
// graded verdict — the only tier that licenses speculative redo.
func (w *Worker) isGradedSuspect(id types.WorkerID, now time.Time) bool {
	return w.isSuspect(id, now) && w.suspect[id].graded
}

// markSuspect blacklists id for one TTL from now. No-op when blacklisting
// is disabled.
func (w *Worker) markSuspect(id types.WorkerID, now time.Time, graded bool) {
	ttl := w.cfg.suspectTTL()
	if ttl <= 0 || id == w.id {
		return
	}
	w.suspect[id] = suspectMark{exp: now.Add(ttl), graded: graded || w.suspect[id].graded}
}

// onSuspectSet merges a clearinghouse suspicion broadcast: every named
// suspect is (re)stamped for one TTL — entries the clearinghouse stopped
// naming decay on their own expiry, so local evidence is never erased by a
// calmer broadcast — and steal records lent to a suspect are refreshed
// from its freshest published checkpoints so a speculation resumes from
// the blob instead of from zero.
func (w *Worker) onSuspectSet(p wire.SuspectSet) {
	if w.cfg.suspectTTL() <= 0 {
		return
	}
	now := time.Now()
	for _, s := range p.Suspects {
		if s.Worker == w.id {
			continue // the fleet may doubt us; we know we are here
		}
		w.markSuspect(s.Worker, now, true)
		w.refreshRecordCkpts(s.Worker, s.Ckpts)
	}
	w.maybeSpeculate(now)
}

// refreshRecordCkpts updates the local copies of tasks lent to thief with
// any newer published checkpoint blobs (same freshening the WorkerDown
// path does, but ahead of any crash).
func (w *Worker) refreshRecordCkpts(thief types.WorkerID, ckpts []wire.TaskCkpt) {
	if len(ckpts) == 0 {
		return
	}
	byTask := make(map[types.TaskID]wire.TaskCkpt, len(ckpts))
	for _, ck := range ckpts {
		byTask[ck.Task] = ck
	}
	for _, rec := range w.records {
		if rec.thief != thief {
			continue
		}
		if ck, ok := byTask[rec.task.ID]; ok && ck.Seq > rec.task.CkptSeq {
			rec.task.Ckpt = append([]byte(nil), ck.Data...)
			rec.task.CkptSeq = ck.Seq
		}
	}
}

// healthyOf filters suspects out of a victim list, reusing scratch. When
// every candidate is suspect the full list is returned — a degraded victim
// beats starvation, the deprioritization is advisory.
func (w *Worker) healthyOf(in []types.WorkerID, scratch *[]types.WorkerID) []types.WorkerID {
	if len(w.suspect) == 0 || len(in) == 0 {
		return in
	}
	now := time.Now()
	out := (*scratch)[:0]
	for _, v := range in {
		if !w.isSuspect(v, now) {
			out = append(out, v)
		}
	}
	*scratch = out
	if len(out) == 0 {
		return in
	}
	return out
}

// maybeSpeculate scans the steal records for tasks held by suspect thieves
// past the speculation deadline and redoes them locally. Internally paced;
// cheap (three comparisons) when there is nothing to do. Scheduler
// goroutine only.
func (w *Worker) maybeSpeculate(now time.Time) {
	k := w.cfg.speculateAfter()
	if k <= 0 || len(w.suspect) == 0 || len(w.records) == 0 {
		return
	}
	every := w.cfg.StealTimeout / 2
	if every < 5*time.Millisecond {
		every = 5 * time.Millisecond
	}
	if now.Sub(w.lastSpecScan) < every {
		return
	}
	w.lastSpecScan = now
	redone := 0
	for _, rec := range w.records {
		// Confirmed steals only: an unconfirmed record has its own
		// lost-reply machinery (view tombstones, WorkerDown), and a thief
		// that never acked is not "holding" the task in any provable sense.
		if rec.thief == w.id || !rec.confirmed || rec.grantedAt.IsZero() {
			continue
		}
		if !w.isGradedSuspect(rec.thief, now) {
			continue
		}
		es := w.fnExec[rec.task.Fn]
		if es == nil || !es.warm() {
			continue // never ran this Fn locally: no deadline to hold it to
		}
		deadline := time.Duration(k * float64(es.p99()))
		// Floor at the steal timeout: however fast the Fn, the thief needed
		// at least a round trip plus queueing before "still outstanding"
		// means anything.
		if deadline < w.cfg.StealTimeout {
			deadline = w.cfg.StealTimeout
		}
		if now.Sub(rec.grantedAt) < deadline {
			continue
		}
		w.counters.SpeculativeRedos.Add(1)
		w.redoRecord(rec)
		redone++
	}
	if redone > 0 {
		w.counters.RedoBatches.Add(1)
	}
}

func absNS(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
