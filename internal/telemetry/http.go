package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"phish/internal/trace"
)

// Server is the opt-in telemetry HTTP endpoint a daemon runs when started
// with -metrics. It serves /metrics (Prometheus text), /metrics.json,
// /healthz, and /debug/trace, plus any extra handlers the daemon mounts
// (the clearinghouse adds /cluster.json for phishtop).
type Server struct {
	ln  net.Listener
	mux *http.ServeMux
	srv *http.Server
}

// NewServer listens on addr (e.g. ":9090") and starts serving; use
// Handle to mount endpoints. Addr() reports the bound address (useful
// with ":0" in tests).
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.srv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // closes with ErrServerClosed on shutdown
	return s, nil
}

// Handle mounts h at pattern.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

// MetricsHandler serves a registry as Prometheus text exposition.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteProm(w) //nolint:errcheck // client gone mid-write
	})
}

// JSONHandler serves a registry as a JSON snapshot.
func JSONHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w) //nolint:errcheck
	})
}

// TraceHandler renders a trace ring's current timeline as text, headed by
// the ring's loss accounting so a truncated timeline never masquerades as
// a complete one.
func TraceHandler(b *trace.Buffer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "# %d event(s) recorded, %d dropped (ring overwrote them unread)\n",
			b.Total(), b.Dropped())
		fmt.Fprint(w, trace.Render(b.Events()))
	})
}

// ClusterMetricsHandler serves a cluster rollup (re-assembled per scrape)
// as Prometheus text exposition. The clearinghouse mounts this at /metrics
// so one scrape covers the whole job.
func ClusterMetricsHandler(snap func() ClusterSnapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteClusterProm(w, snap()) //nolint:errcheck // client gone mid-write
	})
}

// ClusterMetricsWithProcessHandler serves the cluster rollup followed by
// a process-local registry (build info, Go runtime health) in one text
// exposition. The two must expose disjoint metric families.
func ClusterMetricsWithProcessHandler(snap func() ClusterSnapshot, reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteClusterProm(w, snap()) //nolint:errcheck // client gone mid-write
		reg.WriteProm(w)            //nolint:errcheck
	})
}

// ClusterJSONHandler serves a cluster rollup as JSON — what phishtop polls.
func ClusterJSONHandler(snap func() ClusterSnapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap()) //nolint:errcheck
	})
}

// Serve is the one-call setup used by the daemons: listen on addr and
// mount the standard endpoints for reg and tr (either may be nil, which
// skips its endpoints).
func Serve(addr string, reg *Registry, tr *trace.Buffer) (*Server, error) {
	s, err := NewServer(addr)
	if err != nil {
		return nil, err
	}
	if reg != nil {
		s.Handle("/metrics", MetricsHandler(reg))
		s.Handle("/metrics.json", JSONHandler(reg))
	}
	if tr != nil {
		s.Handle("/debug/trace", TraceHandler(tr))
		if reg != nil {
			RegisterTraceRing(reg, tr)
		}
	}
	return s, nil
}

// RegisterTraceRing exposes a trace ring's volume and loss counters on a
// registry, so scrapes notice when the ring outruns its readers.
func RegisterTraceRing(reg *Registry, tr *trace.Buffer) {
	reg.CounterFunc("phish_trace_events_total",
		"Scheduling events ever recorded into the trace ring.",
		func() int64 { return int64(tr.Total()) })
	reg.CounterFunc("phish_trace_events_dropped_total",
		"Trace ring events overwritten before being read.",
		func() int64 { return int64(tr.Dropped()) })
}
