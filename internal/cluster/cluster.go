// Package cluster simulates a network of workstations running the full
// Phish stack inside one process: a PhishJobQ pool, a PhishJobManager per
// workstation driven by a (usually synthetic) owner-idleness policy, and,
// per submitted job, a clearinghouse plus the workers that idle
// workstations start and reclaim. Workers exchange real protocol messages
// over an in-memory fabric; only the wire and the CPUs differ from the
// paper's SparcStation network (see DESIGN.md, substitutions).
//
// The cluster is the testbed for the macro-level scheduler: workstations
// joining an ongoing computation when their owner leaves, being reclaimed
// when the owner returns (with task migration), retiring when a job's
// parallelism shrinks, and crash/redo fault injection.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"phish/internal/clearinghouse"
	"phish/internal/clock"
	"phish/internal/core"
	"phish/internal/jobmanager"
	"phish/internal/jobq"
	"phish/internal/phishnet"
	"phish/internal/stats"
	"phish/internal/types"
	"phish/internal/wire"
)

// Options configures a simulated cluster.
type Options struct {
	// Clock drives the macro-level polling (JobManagers, clearinghouse
	// periodic updates). Workers always run in real time — they do real
	// work. Nil means the system clock.
	Clock clock.Clock
	// Worker tunes every worker's micro scheduler. The zero value takes
	// core.DefaultConfig with MaxStealFailures=25 so workers retire when
	// parallelism shrinks, as the paper's do.
	Worker core.Config
	// CH tunes every job's clearinghouse.
	CH clearinghouse.Config
	// JM tunes every workstation's job manager.
	JM jobmanager.Config
	// Latency injects one-way message latency on each job's fabric.
	Latency time.Duration
}

// Cluster is the simulated NOW.
type Cluster struct {
	opts Options
	clk  clock.Clock
	pool *jobq.Pool

	mu       sync.Mutex
	jobs     map[types.JobID]*Job
	stations []*Workstation
	closed   bool
}

// Job is one submitted parallel job and its per-job infrastructure.
type Job struct {
	ID   types.JobID
	Spec wire.JobSpec

	cluster *Cluster
	prog    *core.Program
	fabric  *phishnet.Fabric
	ch      *clearinghouse.Clearinghouse

	mu      sync.Mutex
	workers map[types.WorkerID]*core.Worker // every participant ever
	started time.Time
}

// Workstation is one simulated machine: a job manager plus its owner's
// policy.
type Workstation struct {
	ID  types.WorkstationID
	mgr *jobmanager.Manager
}

// New builds an empty cluster.
func New(opts Options) *Cluster {
	if opts.Clock == nil {
		opts.Clock = clock.System
	}
	if opts.Worker == (core.Config{}) {
		opts.Worker = core.DefaultConfig()
		opts.Worker.MaxStealFailures = 25
	}
	if opts.CH == (clearinghouse.Config{}) {
		opts.CH = clearinghouse.DefaultConfig()
	}
	if opts.CH.Clock == nil {
		opts.CH.Clock = opts.Clock
	}
	if opts.JM.Clock == nil {
		opts.JM.Clock = opts.Clock
	}
	return &Cluster{
		opts: opts,
		clk:  opts.Clock,
		pool: jobq.NewPool(),
		jobs: make(map[types.JobID]*Job),
	}
}

// Pool exposes the PhishJobQ pool (diagnostics and tests).
func (c *Cluster) Pool() *jobq.Pool { return c.pool }

// Submit places a job in the PhishJobQ. Idle workstations will pick it up;
// nothing runs until one does (start a workstation with an always-idle
// owner to mimic the paper's "the first worker starts on the submitting
// user's own workstation").
func (c *Cluster) Submit(prog *core.Program, rootFn string, rootArgs []types.Value) *Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	spec := wire.JobSpec{
		Name:     prog.Name,
		Program:  prog.Name,
		RootFn:   rootFn,
		RootArgs: rootArgs,
	}
	id := c.pool.Submit(spec)
	spec.ID = id

	fab := phishnet.NewFabric()
	if c.opts.Latency > 0 {
		fab.SetLatency(c.opts.Latency)
	}
	ch := clearinghouse.New(spec, fab.Attach(types.ClearinghouseID), c.opts.CH)
	go ch.Run()

	j := &Job{
		ID:      id,
		Spec:    spec,
		cluster: c,
		prog:    prog,
		fabric:  fab,
		ch:      ch,
		workers: make(map[types.WorkerID]*core.Worker),
		started: time.Now(),
	}
	c.jobs[id] = j
	// Retire the job from the pool the moment its result is in.
	go func() {
		if _, err := ch.WaitResult(0); err == nil {
			c.pool.Done(id)
		}
	}()
	return j
}

// AddWorkstation adds a machine whose owner follows policy and starts its
// PhishJobManager.
func (c *Cluster) AddWorkstation(policy jobmanager.Policy) *Workstation {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := types.WorkstationID(len(c.stations) + 1)
	mgr := jobmanager.New(id, policy, poolSource{c.pool}, &runner{c: c}, c.opts.JM)
	ws := &Workstation{ID: id, mgr: mgr}
	c.stations = append(c.stations, ws)
	go mgr.Run()
	return ws
}

// Stats exposes the workstation's macro-level counters.
func (w *Workstation) Stats() *jobmanager.Stats { return w.mgr.Stats() }

// Stop halts the workstation's job manager (reclaiming any worker).
func (w *Workstation) Stop() { w.mgr.Stop() }

// Close tears the whole cluster down.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	stations := append([]*Workstation(nil), c.stations...)
	jobs := make([]*Job, 0, len(c.jobs))
	for _, j := range c.jobs {
		jobs = append(jobs, j)
	}
	c.mu.Unlock()
	for _, ws := range stations {
		ws.Stop()
	}
	for _, j := range jobs {
		j.ch.Stop()
		j.fabric.Close()
	}
}

// Wait blocks until the job's result arrives.
func (j *Job) Wait(timeout time.Duration) (types.Value, error) {
	return j.ch.WaitResult(timeout)
}

// Done reports whether the job has completed.
func (j *Job) Done() bool { return j.ch.Done() }

// Output returns the job's clearinghouse-buffered output.
func (j *Job) Output() string { return j.ch.Output() }

// LiveWorkers lists currently participating worker ids.
func (j *Job) LiveWorkers() []types.WorkerID { return j.ch.LiveWorkers() }

// WorkerStats snapshots every participant the job ever had.
func (j *Job) WorkerStats() []stats.Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]stats.Snapshot, 0, len(j.workers))
	for _, w := range j.workers {
		out = append(out, w.Stats())
	}
	return out
}

// Totals aggregates WorkerStats the way the paper's Table 2 does.
func (j *Job) Totals() stats.Snapshot { return stats.JobTotals(j.WorkerStats()) }

// Crash abruptly kills one live worker (fault injection): no migration,
// no unregister. Returns false if the worker is not currently alive.
func (j *Job) Crash(id types.WorkerID) bool {
	j.mu.Lock()
	w, ok := j.workers[id]
	j.mu.Unlock()
	if !ok {
		return false
	}
	w.Crash()
	return true
}

// poolSource adapts the in-process pool to the manager's JobSource.
type poolSource struct{ pool *jobq.Pool }

func (s poolSource) Request(types.WorkstationID) (wire.JobSpec, bool, error) {
	spec, ok := s.pool.Request()
	return spec, ok, nil
}

// runner starts simulated worker processes.
type runner struct{ c *Cluster }

// workerProc adapts a core.Worker to the manager's WorkerProc.
type workerProc struct {
	w    *core.Worker
	done chan struct{}
}

func (p *workerProc) Reclaim()                      { p.w.Reclaim() }
func (p *workerProc) Done() <-chan struct{}         { return p.done }
func (p *workerProc) LeaveReason() wire.LeaveReason { return p.w.LeaveReason() }

func (r *runner) Start(spec wire.JobSpec, id types.WorkerID) (jobmanager.WorkerProc, error) {
	r.c.mu.Lock()
	j, ok := r.c.jobs[spec.ID]
	closed := r.c.closed
	r.c.mu.Unlock()
	if !ok || closed {
		return nil, fmt.Errorf("cluster: job %d is gone", spec.ID)
	}
	if j.Done() {
		return nil, fmt.Errorf("cluster: job %d already complete", spec.ID)
	}
	port := j.fabric.Attach(id)
	w := core.NewWorker(spec.ID, id, j.prog, port, r.c.opts.Worker, clock.System)
	j.mu.Lock()
	j.workers[id] = w
	j.mu.Unlock()
	proc := &workerProc{w: w, done: make(chan struct{})}
	go func() {
		defer close(proc.done)
		_ = w.Run()
	}()
	return proc, nil
}

// DebugDump renders every participant's scheduler state; for tests only,
// after the workers have been stopped.
func (j *Job) DebugDump() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out string
	for _, w := range j.workers {
		out += w.DebugDump()
	}
	return out
}

// CrashAll kills every worker the job ever had (post-mortem freezing).
func (j *Job) CrashAll() {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, w := range j.workers {
		w.Crash()
	}
}
