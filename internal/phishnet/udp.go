package phishnet

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"phish/internal/stats"
	"phish/internal/telemetry"
	"phish/internal/trace"
	"phish/internal/types"
	"phish/internal/wire"
)

// UDP transport parameters. The retransmit schedule starts deliberately
// long relative to a LAN round trip: the runtime is split-phase and keeps
// working while messages are in flight, so aggressive retransmission buys
// nothing (the paper's protocols poll at 2 s and coarser). Intervals then
// back off exponentially with jitter — a congested or flapping link sees
// geometrically less retry traffic, and jitter keeps a herd of workers
// that lost the same peer from retransmitting in lockstep.
const (
	udpRetxBase    = 50 * time.Millisecond
	udpRetxCap     = 1 * time.Second
	udpRetxTries   = 10 // ~6.5 s of backed-off retries, then the peer is gone
	udpDedupWindow = 8192

	// udpFlushDelay is how long a small outgoing frame may wait for
	// company before its batch is flushed as one datagram. It is far below
	// the retransmit interval and the scheduler's polling periods, so
	// batching is invisible to the protocol above.
	udpFlushDelay = 200 * time.Microsecond
	// udpMaxDatagram caps one batched datagram, comfortably under the
	// 64 KiB read buffer and typical socket limits.
	udpMaxDatagram = 60 << 10
)

// UDP is a Conn over real UDP datagrams with per-peer acknowledgment,
// retransmission, and duplicate suppression — the reliability layer the
// paper builds above raw UDP/IP.
//
// Outgoing frames to the same destination are coalesced: each Send appends
// its frame to a per-peer batch that is flushed as a single datagram when
// it fills or after udpFlushDelay, and acks are piggybacked into the same
// batches (encoded in place with wire.AppendEncode — no per-ack frame
// allocation). Consequently Send reports ErrUnknownPeer/ErrClosed
// synchronously but socket write errors surface only as lost datagrams,
// which the retransmit layer already absorbs.
type UDP struct {
	local types.WorkerID
	job   types.JobID
	conn  *net.UDPConn
	mbox  *mailbox

	mu       sync.Mutex
	peers    map[types.WorkerID]*net.UDPAddr
	pending  map[uint64]*pendingSend
	batches  map[types.WorkerID]*outBatch
	rtt      map[types.WorkerID]*peerRTT
	seen     map[string]*dedupWindow
	ackEnv   wire.Envelope // scratch envelope for piggybacked acks
	seq      uint64
	flushGen uint64 // monotonic flush-timer generation (see outBatch.gen)
	closed   bool

	// Retransmit schedule (SetRetransmit overrides; tests compress it).
	retxBase  time.Duration
	retxCap   time.Duration
	retxTries int
	rng       *rand.Rand // jitter; guarded by mu

	// Peer-death reporting: once a frame exhausts its retries the peer is
	// declared gone, exactly once, until it is heard from again.
	peerDown     func(types.WorkerID)
	downReported map[types.WorkerID]bool

	faults *Faults // optional datagram-level fault injection

	// Optional telemetry (Instrument): fault-path counters, the
	// retransmit-backoff histogram, and transport trace events. All nil by
	// default — the retransmit loop then records nothing.
	stats   *stats.Counters
	metrics *telemetry.Metrics
	trace   *trace.Buffer

	stopRetx chan struct{}
	wg       sync.WaitGroup
}

// pendingSend retains an unacknowledged frame for retransmission. The
// frame buffer is pooled; it is freed exactly when the entry leaves the
// pending map (ack, peer drop, give-up, or close).
type pendingSend struct {
	to     types.WorkerID
	frame  *wire.Frame
	tries  int
	wait   time.Duration // current backoff interval (pre-jitter)
	next   time.Time
	sentAt time.Time // first transmission; anchors the peer's RTT sample
}

// peerRTT is one peer's round-trip track (Jacobson-style smoothed RTT and
// mean deviation), measured from first transmission to ack receipt.
// Guarded by u.mu.
type peerRTT struct {
	ew  float64 // smoothed RTT, ns
	dev float64 // smoothed |sample - ew|, ns
	n   int64
}

// rttMinSamples is how many acks a peer needs before its RTT track may
// stretch the retransmit schedule.
const rttMinSamples = 4

func (r *peerRTT) observe(d time.Duration) {
	x := float64(d)
	if r.n == 0 {
		r.ew = x
		r.dev = x / 2
	} else {
		// Classic TCP gains: alpha 1/8 for the mean, beta 1/4 for the
		// deviation.
		diff := x - r.ew
		if diff < 0 {
			diff = -diff
		}
		r.dev += 0.25 * (diff - r.dev)
		r.ew += 0.125 * (x - r.ew)
	}
	r.n++
}

// outBatch accumulates frames bound for one peer until flushed. gen
// identifies the arming that scheduled the pending flush: a flush
// callback only acts if its generation is still current, so a callback
// that was already in flight when the batch was rebuilt (or re-armed)
// can never flush the wrong bytes or steal a newer arming's flush.
type outBatch struct {
	dst   *net.UDPAddr
	buf   []byte
	gen   uint64
	armed bool
}

// bufPool recycles batch datagram buffers.
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 2048)
	return &b
}}

func getBuf() []byte { return (*bufPool.Get().(*[]byte))[:0] }

func putBuf(b []byte) {
	b = b[:0]
	bufPool.Put(&b)
}

// dedupWindow remembers recently seen sequence numbers from one remote
// address.
type dedupWindow struct {
	seen map[uint64]struct{}
	ring []uint64
	pos  int
}

func newDedupWindow() *dedupWindow {
	return &dedupWindow{
		seen: make(map[uint64]struct{}, udpDedupWindow),
		ring: make([]uint64, udpDedupWindow),
	}
}

// add records seq; it reports true if seq was new.
func (d *dedupWindow) add(seq uint64) bool {
	if _, dup := d.seen[seq]; dup {
		return false
	}
	old := d.ring[d.pos]
	if _, ok := d.seen[old]; ok && len(d.seen) >= udpDedupWindow {
		delete(d.seen, old)
	}
	d.ring[d.pos] = seq
	d.pos = (d.pos + 1) % len(d.ring)
	d.seen[seq] = struct{}{}
	return true
}

// ListenUDP opens a UDP endpoint for worker local of job job on addr
// (":0" picks a free port).
func ListenUDP(job types.JobID, local types.WorkerID, addr string) (*UDP, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("phishnet: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("phishnet: listen %q: %w", addr, err)
	}
	u := &UDP{
		local:        local,
		job:          job,
		conn:         conn,
		mbox:         newMailbox(),
		peers:        make(map[types.WorkerID]*net.UDPAddr),
		pending:      make(map[uint64]*pendingSend),
		batches:      make(map[types.WorkerID]*outBatch),
		rtt:          make(map[types.WorkerID]*peerRTT),
		seen:         make(map[string]*dedupWindow),
		retxBase:     udpRetxBase,
		retxCap:      udpRetxCap,
		retxTries:    udpRetxTries,
		rng:          rand.New(rand.NewSource(int64(job)<<20 ^ int64(local))),
		downReported: make(map[types.WorkerID]bool),
		stopRetx:     make(chan struct{}),
	}
	u.wg.Add(2)
	go u.readLoop()
	go u.retransmitLoop()
	return u, nil
}

// SetRetransmit overrides the retransmit schedule: the first retry fires
// ~base after the send, each subsequent retry doubles the interval up to
// cap (each jittered ±25%), and after tries unacknowledged attempts the
// frame is abandoned and the peer declared gone. Call before traffic
// starts.
func (u *UDP) SetRetransmit(base, cap time.Duration, tries int) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if base > 0 {
		u.retxBase = base
	}
	if cap > 0 {
		u.retxCap = cap
	}
	if tries > 0 {
		u.retxTries = tries
	}
}

// SetPeerDown overrides what happens when retransmits to a peer are
// exhausted. By default the transport posts a wire.PeerGone envelope to
// its own mailbox, so the owner learns about the death in its normal
// receive loop; a non-nil fn replaces that with a direct callback. Either
// way the notification fires exactly once per peer until the peer is
// heard from (or re-registered via SetPeer) again.
func (u *UDP) SetPeerDown(fn func(types.WorkerID)) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.peerDown = fn
}

// Instrument attaches telemetry to the transport: retransmits and
// peer-gone declarations are counted in c, each retransmit's preceding
// backoff interval lands in m's histogram, and tb (when enabled) records
// EvRetransmit/EvPeerGone events. Any argument may be nil. Call before
// traffic starts.
func (u *UDP) Instrument(c *stats.Counters, m *telemetry.Metrics, tb *trace.Buffer) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.stats = c
	u.metrics = m
	u.trace = tb
}

// SetFaults interposes deterministic fault injection at the datagram
// level — below the ack/retransmit/dedup machinery, so injected drops are
// retransmitted, duplicates are suppressed by the dedup window, and a
// partition looks like a dead peer: backoff, give-up, PeerGone.
func (u *UDP) SetFaults(fl *Faults) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.faults = fl
}

// jitteredLocked returns d scaled by a uniform factor in [0.75, 1.25).
func (u *UDP) jitteredLocked(d time.Duration) time.Duration {
	return time.Duration(float64(d) * (0.75 + 0.5*u.rng.Float64()))
}

// rtoLocked seeds a frame's first retransmit interval from the peer's RTT
// track: smoothed RTT plus four deviations, the TCP retransmission-timeout
// shape. The track only ever *stretches* the schedule — the configured
// base remains the floor (the deliberately-long-for-a-LAN rationale in the
// package constants still applies; a sub-millisecond in-process RTT must
// not turn the transport aggressive) and the cap remains the ceiling. A
// peer without rttMinSamples acked round trips gets the plain base.
func (u *UDP) rtoLocked(to types.WorkerID) time.Duration {
	r := u.rtt[to]
	if r == nil || r.n < rttMinSamples {
		return u.retxBase
	}
	rto := time.Duration(r.ew + 4*r.dev)
	if rto < u.retxBase {
		return u.retxBase
	}
	if rto > u.retxCap {
		return u.retxCap
	}
	return rto
}

// SetPeer implements Conn.
func (u *UDP) SetPeer(id types.WorkerID, addr string) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return // an unresolvable peer simply stays unknown
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	u.peers[id] = ua
	delete(u.downReported, id) // a re-announced peer may be declared gone anew
	if b := u.batches[id]; b != nil {
		b.dst = ua
	}
}

// DropPeer implements Conn.
func (u *UDP) DropPeer(id types.WorkerID) {
	u.mu.Lock()
	defer u.mu.Unlock()
	delete(u.peers, id)
	for seq, p := range u.pending {
		if p.to == id {
			p.frame.Free()
			delete(u.pending, seq)
		}
	}
	if b := u.batches[id]; b != nil {
		putBuf(b.buf)
		b.buf = nil
		delete(u.batches, id)
	}
	delete(u.rtt, id) // a re-announced peer may be a new incarnation elsewhere
}

// LocalAddr implements Conn.
func (u *UDP) LocalAddr() string { return u.conn.LocalAddr().String() }

// Send implements Conn: assign a sequence number, append the frame to the
// destination's batch, and keep the frame for retransmission until
// acknowledged.
func (u *UDP) Send(env *wire.Envelope) error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return ErrClosed
	}
	if _, ok := u.peers[env.To]; !ok {
		u.mu.Unlock()
		return ErrUnknownPeer
	}
	u.seq++
	env.Seq = u.seq
	env.From = u.local
	env.Job = u.job
	frame, err := wire.EncodeFrame(env)
	if err != nil {
		u.mu.Unlock()
		return err
	}
	// Acks are fire-and-forget by nature. Stat reports are sent the same
	// way by design: they are soft state refreshed every heartbeat, and a
	// pre-telemetry clearinghouse that cannot decode one would never ack
	// it — tracking it would exhaust retransmits and falsely declare a
	// healthy peer gone.
	untracked := false
	switch env.Payload.(type) {
	case wire.Ack, wire.StatReport:
		untracked = true
	}
	if untracked {
		data, dst := u.enqueueLocked(env.To, frame.Bytes())
		frame.Free()
		u.mu.Unlock()
		u.writeOwned(data, dst, env.To)
		return nil
	}
	now := time.Now()
	wait := u.rtoLocked(env.To)
	u.pending[env.Seq] = &pendingSend{
		to:     env.To,
		frame:  frame,
		wait:   wait,
		next:   now.Add(u.jitteredLocked(wait)),
		sentAt: now,
	}
	data, dst := u.enqueueLocked(env.To, frame.Bytes())
	u.mu.Unlock()
	u.writeOwned(data, dst, env.To)
	return nil
}

// enqueueLocked appends frame bytes to the destination's batch and arms
// its flush timer. When the batch would overflow, the full buffer is
// swapped out and returned for the caller to write after releasing u.mu.
func (u *UDP) enqueueLocked(to types.WorkerID, frame []byte) (data []byte, dst *net.UDPAddr) {
	b := u.batches[to]
	if b == nil {
		b = &outBatch{dst: u.peers[to], buf: getBuf()}
		u.batches[to] = b
	}
	if len(b.buf) > 0 && len(b.buf)+len(frame) > udpMaxDatagram {
		data, dst = b.buf, b.dst
		b.buf = getBuf()
	}
	b.buf = append(b.buf, frame...)
	u.armLocked(to, b)
	return data, dst
}

// queueAckLocked piggybacks an acknowledgment of seq onto the batch bound
// for peer to, encoding it in place — no intermediate frame, no per-ack
// allocation beyond boxing the payload.
func (u *UDP) queueAckLocked(to types.WorkerID, seq uint64) (data []byte, dst *net.UDPAddr) {
	b := u.batches[to]
	if b == nil {
		b = &outBatch{dst: u.peers[to], buf: getBuf()}
		u.batches[to] = b
	}
	if len(b.buf) > udpMaxDatagram-64 {
		data, dst = b.buf, b.dst
		b.buf = getBuf()
	}
	u.ackEnv.Job = u.job
	u.ackEnv.From = u.local
	u.ackEnv.To = to
	u.ackEnv.Payload = wire.Ack{Seq: seq}
	if grown, err := wire.AppendEncode(b.buf, &u.ackEnv); err == nil {
		b.buf = grown
	}
	u.armLocked(to, b)
	return data, dst
}

// armLocked schedules a flush for the batch unless one is already armed.
// Each arming gets a fresh timer stamped with a new generation instead of
// Reset-ing a shared timer: Reset races with a concurrently firing
// AfterFunc — the stale callback could flush a batch already being
// rebuilt, or consume the fire that the Reset was counting on, losing a
// flush. A generation-checked callback acts at most once, and only for
// the arming that created it.
func (u *UDP) armLocked(to types.WorkerID, b *outBatch) {
	if b.armed {
		return
	}
	b.armed = true
	u.flushGen++
	gen := u.flushGen
	b.gen = gen
	time.AfterFunc(udpFlushDelay, func() { u.flushPeer(to, gen) })
}

// flushPeer writes out the accumulated batch for one peer (flush-timer
// callback). A callback whose generation no longer matches the batch's
// current arming is stale and must not touch the batch.
func (u *UDP) flushPeer(to types.WorkerID, gen uint64) {
	u.mu.Lock()
	b := u.batches[to]
	if b == nil || u.closed || !b.armed || b.gen != gen {
		u.mu.Unlock()
		return
	}
	b.armed = false
	if len(b.buf) == 0 {
		u.mu.Unlock()
		return
	}
	data, dst := b.buf, b.dst
	b.buf = getBuf()
	u.mu.Unlock()
	u.writeOwned(data, dst, to)
}

// writeOwned writes one datagram buffer the caller owns and recycles it.
// When a fault plan is installed, the datagram is judged here — below the
// reliability layer, so a dropped datagram is retransmitted and a
// duplicated one is absorbed by the receiver's dedup window.
func (u *UDP) writeOwned(data []byte, dst *net.UDPAddr, to types.WorkerID) {
	if data == nil {
		return
	}
	if dst == nil {
		putBuf(data)
		return
	}
	u.mu.Lock()
	fl := u.faults
	u.mu.Unlock()
	if fl != nil {
		v := fl.Judge(u.local, to)
		if v.Drop {
			putBuf(data)
			return
		}
		if v.Delay > 0 {
			dup := v.Duplicate
			time.AfterFunc(v.Delay, func() {
				_, _ = u.conn.WriteToUDP(data, dst)
				if dup {
					_, _ = u.conn.WriteToUDP(data, dst)
				}
				putBuf(data)
			})
			return
		}
		if v.Duplicate {
			_, _ = u.conn.WriteToUDP(data, dst)
		}
	}
	_, _ = u.conn.WriteToUDP(data, dst)
	putBuf(data)
}

// Recv implements Conn.
func (u *UDP) Recv() <-chan *wire.Envelope { return u.mbox.out }

// Close implements Conn.
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	// Final flush: drain every batch while the socket is still open.
	type flushOp struct {
		data []byte
		dst  *net.UDPAddr
	}
	var flushes []flushOp
	for _, b := range u.batches {
		if len(b.buf) > 0 {
			flushes = append(flushes, flushOp{b.buf, b.dst})
			b.buf = nil
		}
	}
	for seq, p := range u.pending {
		p.frame.Free()
		delete(u.pending, seq)
	}
	u.mu.Unlock()
	for _, f := range flushes {
		if f.dst != nil {
			_, _ = u.conn.WriteToUDP(f.data, f.dst)
		}
		putBuf(f.data)
	}
	close(u.stopRetx)
	err := u.conn.Close()
	u.wg.Wait()
	u.mbox.close()
	return err
}

func (u *UDP) readLoop() {
	defer u.wg.Done()
	for {
		// Each datagram lands in a pooled arena so hot-path frames can be
		// handed to consumers as zero-copy views that alias the receive
		// buffer. Every view decoded from the datagram retains the arena;
		// our release below only drops the read loop's own reference, and
		// the buffer recycles once the last view is freed or materialized.
		a := wire.NewArena()
		n, from, err := u.conn.ReadFromUDP(a.Bytes())
		if err != nil {
			a.Release()
			return // closed
		}
		// A datagram carries one or more length-prefixed frames back to
		// back (the sender batches). All frames share the one arena.
		data := a.Bytes()[:n]
		for len(data) >= 4 {
			flen := 4 + int(binary.BigEndian.Uint32(data[:4]))
			if flen > len(data) {
				break // truncated tail; drop like a real network would
			}
			env, err := wire.DecodeView(data[:flen], a)
			data = data[flen:]
			if err != nil {
				continue // garbage frame; framing is still intact
			}
			u.handleInbound(env, from)
		}
		a.Release()
	}
}

func (u *UDP) handleInbound(env *wire.Envelope, from *net.UDPAddr) {
	ackSeq, isAck := uint64(0), false
	switch p := env.Payload.(type) {
	case wire.Ack:
		ackSeq, isAck = p.Seq, true
	case *wire.View:
		if av, ok := p.AsAck(); ok {
			ackSeq, isAck = av.Seq(), true
		}
	}
	if isAck {
		u.mu.Lock()
		if p := u.pending[ackSeq]; p != nil {
			// Karn's rule: only a never-retransmitted frame yields an RTT
			// sample — after a retransmit the ack is ambiguous about which
			// transmission it answers.
			if p.tries == 0 && !p.sentAt.IsZero() {
				r := u.rtt[p.to]
				if r == nil {
					r = &peerRTT{}
					u.rtt[p.to] = r
				}
				r.observe(time.Since(p.sentAt))
			}
			p.frame.Free()
			delete(u.pending, ackSeq)
		}
		u.mu.Unlock()
		env.Free() // consumed in-transport; the envelope never leaves here
		return
	}
	// Acknowledge, learn the sender's address, and dedup.
	u.mu.Lock()
	if _, known := u.peers[env.From]; !known {
		u.peers[env.From] = from
	}
	delete(u.downReported, env.From) // it spoke: alive again
	key := from.String()
	w := u.seen[key]
	if w == nil {
		w = newDedupWindow()
		u.seen[key] = w
	}
	fresh := w.add(env.Seq)
	data, dst := u.queueAckLocked(env.From, env.Seq)
	u.mu.Unlock()
	u.writeOwned(data, dst, env.From)
	if fresh {
		u.mbox.put(env) // consumer-owned from here; never freed by us
	} else {
		env.Free() // dedup-suppressed duplicate: this was its final stop
	}
}

func (u *UDP) retransmitLoop() {
	defer u.wg.Done()
	for {
		// Poll at a fraction of the base interval so even compressed test
		// schedules get decent resolution without a per-frame timer.
		u.mu.Lock()
		tick := u.retxBase / 4
		u.mu.Unlock()
		if tick < time.Millisecond {
			tick = time.Millisecond
		} else if tick > 25*time.Millisecond {
			tick = 25 * time.Millisecond
		}
		select {
		case <-u.stopRetx:
			return
		case <-time.After(tick):
		}
		now := time.Now()
		type flushOp struct {
			data []byte
			dst  *net.UDPAddr
			to   types.WorkerID
		}
		var flushes []flushOp
		var gone []types.WorkerID
		var retxPeers []types.WorkerID
		u.mu.Lock()
		if u.closed {
			u.mu.Unlock()
			return
		}
		for _, p := range u.pending {
			if now.Before(p.next) {
				continue
			}
			p.tries++
			if p.tries > u.retxTries {
				// Out of retries: the peer is gone. Abandon every frame
				// bound for it — none will ever be delivered — and report
				// the death once.
				to := p.to
				for s2, q := range u.pending {
					if q.to == to {
						q.frame.Free()
						delete(u.pending, s2)
					}
				}
				if !u.downReported[to] {
					u.downReported[to] = true
					gone = append(gone, to)
				}
				continue
			}
			// Record the interval that just elapsed before this retransmit,
			// then double it for the next one.
			u.metrics.RetxBackoff().Observe(int64(p.wait))
			retxPeers = append(retxPeers, p.to)
			p.wait *= 2
			if p.wait > u.retxCap {
				p.wait = u.retxCap
			}
			p.next = now.Add(u.jitteredLocked(p.wait))
			if _, ok := u.peers[p.to]; ok {
				// Re-enqueue through the batcher: the bytes are copied
				// under the lock, so an ack freeing the pooled frame
				// concurrently can never corrupt an in-flight write.
				if data, dst := u.enqueueLocked(p.to, p.frame.Bytes()); data != nil {
					flushes = append(flushes, flushOp{data, dst, p.to})
				}
			}
		}
		report := u.peerDown
		st, tb := u.stats, u.trace
		u.mu.Unlock()
		if n := len(retxPeers); n > 0 {
			if st != nil {
				st.Retransmits.Add(int64(n))
			}
			if tb.Enabled() {
				for _, id := range retxPeers {
					tb.Add(trace.Event{Worker: u.local, Kind: trace.EvRetransmit, Peer: id})
				}
			}
		}
		if len(gone) > 0 && tb.Enabled() {
			for _, id := range gone {
				tb.Add(trace.Event{Worker: u.local, Kind: trace.EvPeerGone, Peer: id,
					Note: "retransmits exhausted"})
			}
		}
		for _, f := range flushes {
			u.writeOwned(f.data, f.dst, f.to)
		}
		for _, id := range gone {
			if report != nil {
				report(id)
				continue
			}
			// Default: surface the death in the owner's receive loop.
			u.mbox.put(&wire.Envelope{
				Job: u.job, From: u.local, To: u.local,
				Payload: wire.PeerGone{Worker: id},
			})
		}
	}
}

var _ Conn = (*UDP)(nil)
