package clearinghouse

import (
	"fmt"
	"os"
	"sync"
	"time"

	"phish/internal/phishnet"
	"phish/internal/stats"
	"phish/internal/telemetry"
	"phish/internal/trace"
	"phish/internal/types"
	"phish/internal/wal"
	"phish/internal/wire"
)

// The journal is the clearinghouse's crash-survivable memory: an
// append-only log (internal/wal framing, gob bodies — the same
// serialization as checkpoint.go) holding the job spec, a full
// control-plane snapshot after every membership change, the application
// output, and the root result. The control-plane state is tiny — member
// table, root location, epoch, any undistributed restore bundles — so
// snapshotting it whole on each (rare) change is cheaper and far less
// error-prone than replaying semantic events.
//
// Recovery (ReplayJournal + NewFromRecovery) rebuilds the clearinghouse
// from the last intact records; a torn tail from the crash is discarded by
// the wal layer. Workers are NOT assumed alive: each recovered member gets
// lastHeard = now and the heartbeat machinery re-establishes the truth —
// survivors re-register (their transport noticed the outage) and keep
// heartbeating, while a worker that died during the outage times out and
// is declared crashed, triggering the ordinary redo path.

// Journal record kinds.
const (
	jSpec = iota + 1
	jState
	jResult
	jIO
	jCkpt
)

// journalMember is one row of the persisted membership table.
type journalMember struct {
	Info     wire.MemberInfo
	Departed bool
}

// journalRecord is the single wal record type; Kind selects which fields
// are meaningful.
type journalRecord struct {
	Kind int

	// jSpec
	Spec wire.JobSpec

	// jState — the full control-plane snapshot after a membership change.
	Members     []journalMember
	RootHost    types.WorkerID
	ArmRoot     bool
	Epoch       uint64
	Restore     []wire.SnapshotReply
	RestoreRoot types.WorkerID

	// jResult
	Result types.Value

	// jIO
	Text string

	// jCkpt — one worker's latest published checkpoint set (replaces any
	// earlier jCkpt for the same worker on replay).
	CkptWorker types.WorkerID
	Ckpts      []wire.TaskCkpt
}

// Journal appends clearinghouse state changes to a file. Writes are
// best-effort with a sticky error: a failing disk degrades durability, not
// the running job.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	err  error

	// Telemetry, both nil until instrument is called: records appended
	// (stats.JournalRecords) and append+fsync latency (hist).
	stats *stats.Counters
	hist  *telemetry.Histogram
}

// instrument attaches the owning clearinghouse's counters and WAL-append
// latency histogram. Call before the journal sees traffic; either argument
// may be nil.
func (j *Journal) instrument(c *stats.Counters, h *telemetry.Histogram) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.stats = c
	j.hist = h
}

// OpenJournal opens (creating if needed) the journal at path for
// appending. The same path may be reopened after a crash; records from
// every incarnation replay as one log.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("clearinghouse: open journal: %w", err)
	}
	return &Journal{f: f, path: path}, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Err returns the sticky write error, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// append writes one record; sync additionally flushes it to stable
// storage (used for records that must survive — state and result).
func (j *Journal) append(rec *journalRecord, sync bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil || j.err != nil {
		return
	}
	var t0 time.Time
	if j.hist != nil {
		t0 = time.Now()
	}
	if err := wal.Append(j.f, rec); err != nil {
		j.err = err
		return
	}
	if sync {
		if err := j.f.Sync(); err != nil {
			j.err = err
			return
		}
	}
	if j.hist != nil {
		j.hist.ObserveSince(t0)
	}
	if j.stats != nil {
		j.stats.JournalRecords.Add(1)
	}
}

// RecoveredJob is the state rebuilt from a journal by ReplayJournal.
type RecoveredJob struct {
	Spec        wire.JobSpec
	Members     []journalMember
	RootHost    types.WorkerID
	ArmRoot     bool
	Epoch       uint64
	Restore     []wire.SnapshotReply
	RestoreRoot types.WorkerID
	Done        bool
	Result      types.Value
	Output      string
	IOLines     int64
	// Ckpts holds the latest journaled checkpoint set per worker,
	// restricted to workers live in the recovered membership: a jCkpt can
	// postdate its worker's Unregister (a final StatReport flushed racing
	// the departure), and resurrecting such a blob would advertise work
	// that already migrated or completed elsewhere.
	Ckpts map[types.WorkerID][]wire.TaskCkpt
}

// ReplayJournal reads the journal at path and folds its records into the
// latest recovered state. It fails only if the file cannot be read or
// holds no job spec (nothing to recover).
func ReplayJournal(path string) (*RecoveredJob, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("clearinghouse: replay journal: %w", err)
	}
	defer f.Close()
	rec := &RecoveredJob{RootHost: types.NoWorker, RestoreRoot: types.NoWorker, ArmRoot: true}
	haveSpec := false
	err = wal.Replay(f, func(r *journalRecord) error {
		switch r.Kind {
		case jSpec:
			rec.Spec = r.Spec
			haveSpec = true
		case jState:
			rec.Members = r.Members
			rec.RootHost = r.RootHost
			rec.ArmRoot = r.ArmRoot
			rec.Epoch = r.Epoch
			rec.Restore = r.Restore
			rec.RestoreRoot = r.RestoreRoot
		case jResult:
			rec.Done = true
			rec.Result = r.Result
		case jIO:
			rec.Output += r.Text
			rec.IOLines++
		case jCkpt:
			if rec.Ckpts == nil {
				rec.Ckpts = make(map[types.WorkerID][]wire.TaskCkpt)
			}
			rec.Ckpts[r.CkptWorker] = r.Ckpts
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if !haveSpec {
		return nil, fmt.Errorf("clearinghouse: journal %s holds no job spec", path)
	}
	// Discard checkpoints of workers absent from (or departed in) the
	// recovered membership: a worker that unregistered cleanly handed its
	// work off, so a checkpoint journaled after its departure is stale by
	// construction.
	if len(rec.Ckpts) > 0 {
		live := make(map[types.WorkerID]bool, len(rec.Members))
		for _, jm := range rec.Members {
			if !jm.Departed {
				live[jm.Info.Worker] = true
			}
		}
		for id := range rec.Ckpts {
			if !live[id] {
				delete(rec.Ckpts, id)
			}
		}
	}
	return rec, nil
}

// NewFromRecovery builds a clearinghouse that resumes the journaled job.
// The epoch is bumped past the journaled value so surviving workers (whose
// views carry the old epoch) accept the recovered views as fresh.
// Recovered live members are treated as heartbeat-known: whether each
// survived the outage is re-established by the heartbeat timeout, so a
// worker that died while the clearinghouse was down is declared crashed
// and its work redone. cfg.Journal should be a freshly opened journal on
// the same path so the recovered incarnation keeps appending.
func NewFromRecovery(rec *RecoveredJob, conn phishnet.Conn, cfg Config) *Clearinghouse {
	c := New(rec.Spec, conn, cfg)
	now := c.clk.Now()
	// The journal is shard-agnostic: records carry a flat member list and a
	// single epoch, so cfg.Shards may differ from whatever the writing
	// incarnation used. Recovered rows fold into the new store without
	// epoch bumps; the journaled epoch (plus one) seeds the base.
	for _, jm := range rec.Members {
		c.store.RestoreMember(jm.Info, jm.Departed, now)
		if !jm.Departed && jm.Info.Addr != "" {
			conn.SetPeer(jm.Info.Worker, jm.Info.Addr)
		}
	}
	c.store.SetEpochBase(rec.Epoch + 1)
	// Re-seed the recovered checkpoint blobs as synthetic reports: their
	// ordering key (all-zero counters) loses to any real report, so a
	// surviving worker's first live StatReport replaces the recovered row,
	// while a worker that died during the outage still has its blobs
	// attached to the WorkerDown when the heartbeat sweep declares it.
	for id, cks := range rec.Ckpts {
		c.store.FoldReport(wire.StatReport{Ver: wire.StatReportVersion, Worker: id, Ckpts: cks}, now)
	}
	c.rootHost = rec.RootHost
	c.armRoot = rec.ArmRoot
	c.restore = append([]wire.SnapshotReply(nil), rec.Restore...)
	c.restoreRoot = rec.RestoreRoot
	c.output.WriteString(rec.Output)
	c.ioLines = rec.IOLines
	if rec.Done {
		c.done = true
		c.result = rec.Result
		close(c.doneCh)
	}
	if tb := cfg.Trace; tb.Enabled() {
		tb.Add(trace.Event{
			At:     now,
			Worker: types.ClearinghouseID,
			Kind:   trace.EvJournalReplay,
			Note:   fmt.Sprintf("resumed job %d: %d member(s), epoch %d", rec.Spec.ID, len(rec.Members), c.store.Epoch()),
		})
	}
	return c
}

// journalStateLocked snapshots the control-plane state into the journal
// (no-op without one). Called with c.mu held after every mutation of the
// member table, root location, or restore bundles.
func (c *Clearinghouse) journalStateLocked() {
	if c.journal == nil {
		return
	}
	rec := &journalRecord{
		Kind:        jState,
		RootHost:    c.rootHost,
		ArmRoot:     c.armRoot,
		Epoch:       c.store.Epoch(),
		Restore:     c.restore,
		RestoreRoot: c.restoreRoot,
	}
	for _, m := range c.store.Members() {
		rec.Members = append(rec.Members, journalMember{Info: m.Info, Departed: m.Departed})
	}
	c.journal.append(rec, true)
}
