// Package phishnet provides the transports Phish processes talk over.
//
// Two implementations of Conn exist:
//
//   - Fabric/Port: an in-memory message fabric connecting the simulated
//     workstations of one process. It is what the simulated NOW
//     (internal/cluster), the tests, and the benchmarks use. Delivery is
//     reliable and ordered, with optional injected latency to mimic a
//     1994-era LAN.
//
//   - UDP: real datagrams with acknowledgment, retransmission, and
//     duplicate suppression, used by the cmd/ binaries to run a job across
//     real machines. The paper implements all communication on top of
//     UDP/IP with split-phase operations; Send here never blocks waiting
//     for the peer.
//
// Both carry wire.Envelope values and route by the envelope's To field.
package phishnet

import (
	"errors"

	"phish/internal/types"
	"phish/internal/wire"
)

// Conn is a worker's (or clearinghouse's) connection to its job's peers.
type Conn interface {
	// Send transmits env to env.To. It returns promptly (split-phase);
	// reliability is the transport's concern. An error means the
	// destination is not currently reachable (unknown or departed); the
	// caller may re-resolve the destination and retry.
	Send(env *wire.Envelope) error
	// Recv returns the channel of inbound envelopes. The channel is
	// closed when the Conn is closed.
	Recv() <-chan *wire.Envelope
	// SetPeer installs or updates the transport address for a peer.
	// In-memory fabrics ignore it.
	SetPeer(id types.WorkerID, addr string)
	// DropPeer forgets a peer (it unregistered or crashed).
	DropPeer(id types.WorkerID)
	// LocalAddr returns this endpoint's address, or "" for in-memory.
	LocalAddr() string
	// Close tears the endpoint down and closes the Recv channel.
	Close() error
}

// ErrUnknownPeer is returned by Send when the destination has no known
// address or port.
var ErrUnknownPeer = errors.New("phishnet: unknown peer")

// ErrClosed is returned by Send on a closed endpoint.
var ErrClosed = errors.New("phishnet: endpoint closed")
