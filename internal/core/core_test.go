package core_test

import (
	"sync"
	"testing"
	"time"

	"phish/internal/clearinghouse"
	"phish/internal/clock"
	"phish/internal/core"
	"phish/internal/model"
	"phish/internal/phishnet"
	"phish/internal/stats"
	"phish/internal/types"
	"phish/internal/wire"
)

// testProg is a fib-like program local to these tests (kept separate from
// internal/apps/fib to avoid an import cycle through the public package).
func testProg() *core.Program {
	p := core.NewProgram("coretest")
	p.Register("fib", func(c model.Ctx) {
		n := c.Int(0)
		if n < 2 {
			c.Return(n)
			return
		}
		s := c.Successor("sum", 2)
		c.Spawn("fib", s.Cont(0), n-1)
		c.Spawn("fib", s.Cont(1), n-2)
	})
	p.Register("sum", func(c model.Ctx) { c.Return(c.Int(0) + c.Int(1)) })
	return p
}

func fibVal(n int64) int64 {
	if n < 2 {
		return n
	}
	return fibVal(n-1) + fibVal(n-2)
}

func fibTasks(n int64) int64 {
	if n < 2 {
		return 1
	}
	return fibTasks(n-1) + fibTasks(n-2) + 2
}

// rig is a hand-wired job: fabric, clearinghouse, and a set of workers the
// test starts and stops itself (no jobmanagers).
type rig struct {
	t    *testing.T
	fab  *phishnet.Fabric
	ch   *clearinghouse.Clearinghouse
	prog *core.Program
	cfg  core.Config

	mu      sync.Mutex
	workers map[types.WorkerID]*core.Worker
	wg      sync.WaitGroup
}

func newRig(t *testing.T, rootN int64) *rig {
	t.Helper()
	fab := phishnet.NewFabric()
	spec := wire.JobSpec{ID: 1, Name: "coretest", Program: "coretest",
		RootFn: "fib", RootArgs: []types.Value{rootN}}
	chCfg := clearinghouse.DefaultConfig()
	chCfg.UpdateEvery = 20 * time.Millisecond
	ch := clearinghouse.New(spec, fab.Attach(types.ClearinghouseID), chCfg)
	go ch.Run()
	cfg := core.DefaultConfig()
	cfg.StealTimeout = 50 * time.Millisecond
	r := &rig{t: t, fab: fab, ch: ch, prog: testProg(), cfg: cfg,
		workers: make(map[types.WorkerID]*core.Worker)}
	t.Cleanup(func() {
		r.mu.Lock()
		for _, w := range r.workers {
			w.Crash()
		}
		r.mu.Unlock()
		r.wg.Wait()
		ch.Stop()
		fab.Close()
	})
	return r
}

func (r *rig) addWorker(id types.WorkerID) *core.Worker {
	r.t.Helper()
	w := core.NewWorker(1, id, r.prog, r.fab.Attach(id), r.cfg, clock.System)
	r.mu.Lock()
	r.workers[id] = w
	r.mu.Unlock()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		_ = w.Run()
	}()
	return w
}

func (r *rig) totals() stats.Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var snaps []stats.Snapshot
	for _, w := range r.workers {
		snaps = append(snaps, w.Stats())
	}
	return stats.JobTotals(snaps)
}

func (r *rig) wait(d time.Duration) int64 {
	r.t.Helper()
	v, err := r.ch.WaitResult(d)
	if err != nil {
		r.t.Fatal(err)
	}
	return v.(int64)
}

func TestSingleWorkerJob(t *testing.T) {
	r := newRig(t, 15)
	r.addWorker(0)
	if got, want := r.wait(20*time.Second), fibVal(15); got != want {
		t.Errorf("result = %d, want %d", got, want)
	}
	tot := r.totals()
	if got, want := tot.TasksExecuted, fibTasks(15); got != want {
		t.Errorf("tasks executed = %d, want %d", got, want)
	}
	if tot.TasksStolen != 0 || tot.NonLocalSynchs != 0 || tot.TasksRedone != 0 {
		t.Errorf("single worker had distributed activity: %+v", tot)
	}
}

func TestFourWorkersConserveTasks(t *testing.T) {
	r := newRig(t, 20)
	for i := 0; i < 4; i++ {
		r.addWorker(types.WorkerID(i))
	}
	if got, want := r.wait(30*time.Second), fibVal(20); got != want {
		t.Errorf("result = %d, want %d", got, want)
	}
	tot := r.totals()
	if got, want := tot.TasksExecuted, fibTasks(20); got != want {
		t.Errorf("tasks executed = %d, want %d", got, want)
	}
	if tot.Orphans != 0 {
		t.Errorf("fault-free run dropped %d results", tot.Orphans)
	}
}

func TestLateJoinerParticipates(t *testing.T) {
	// Join on observed progress, not a fixed sleep: a fast machine can
	// finish a small root before a sleeping joiner ever registers.
	r := newRig(t, 30)
	w0 := r.addWorker(0)
	for w0.Stats().TasksExecuted < 1000 {
		time.Sleep(time.Millisecond)
	}
	late := r.addWorker(7)
	if got, want := r.wait(60*time.Second), fibVal(30); got != want {
		t.Errorf("result = %d, want %d", got, want)
	}
	if late.Stats().TasksExecuted == 0 {
		t.Error("late joiner never executed a task (idle-initiated join failed)")
	}
	if got, want := r.totals().TasksExecuted, fibTasks(30); got != want {
		t.Errorf("tasks executed = %d, want %d", got, want)
	}
}

func TestReclaimMigratesExactly(t *testing.T) {
	r := newRig(t, 26)
	w0 := r.addWorker(0)
	r.addWorker(1)
	r.addWorker(2)
	// Give worker 0 time to accumulate state, then reclaim it.
	time.Sleep(40 * time.Millisecond)
	w0.Reclaim()
	if got, want := r.wait(60*time.Second), fibVal(26); got != want {
		t.Errorf("result = %d, want %d", got, want)
	}
	tot := r.totals()
	if tot.TasksRedone == 0 {
		if got, want := tot.TasksExecuted, fibTasks(26); got != want {
			t.Errorf("tasks executed = %d, want %d after clean migration", got, want)
		}
	} else if got, want := tot.TasksExecuted, fibTasks(26); got < want {
		t.Errorf("tasks executed = %d < %d (work lost)", got, want)
	}
	if w0.LeaveReason() != wire.LeaveReclaimed && w0.LeaveReason() != wire.LeaveCrash {
		t.Errorf("leave reason = %v", w0.LeaveReason())
	}
}

func TestCrashIsRedone(t *testing.T) {
	r := newRig(t, 26)
	r.cfg.HeartbeatEvery = 5 * time.Millisecond
	r.addWorker(0)
	time.Sleep(20 * time.Millisecond)
	victim := r.addWorker(1)
	time.Sleep(30 * time.Millisecond)
	victim.Crash()
	// Without heartbeats configured on the clearinghouse in this rig, the
	// crash is detected by... nothing. So tell the clearinghouse
	// explicitly, as the cluster's heartbeat path would.
	// (The cluster package tests the heartbeat-driven detection.)
	port := r.fab.Attach(99) // a bystander to report the death
	env := &wire.Envelope{Job: 1, From: 99, To: types.ClearinghouseID,
		Payload: wire.Unregister{Worker: 1, Reason: wire.LeaveCrash}}
	if err := port.Send(env); err != nil {
		t.Fatal(err)
	}
	if got, want := r.wait(60*time.Second), fibVal(26); got != want {
		t.Errorf("result after crash = %d, want %d", got, want)
	}
	if got, want := r.totals().TasksExecuted, fibTasks(26); got < want {
		t.Errorf("tasks executed = %d < %d (lost work not redone)", got, want)
	}
}

func TestEveryWorkerStealsUnderLoad(t *testing.T) {
	r := newRig(t, 24)
	for i := 0; i < 4; i++ {
		r.addWorker(types.WorkerID(i))
	}
	r.wait(60 * time.Second)
	tot := r.totals()
	if tot.TasksStolen == 0 {
		t.Error("no steals in a 4-worker run; work never spread")
	}
	// Locality: steals and messages are microscopic next to tasks.
	if tot.TasksStolen*100 > tot.TasksExecuted {
		t.Errorf("steals %d are not ≪ tasks %d", tot.TasksStolen, tot.TasksExecuted)
	}
	if tot.NonLocalSynchs*50 > tot.Synchronizations {
		t.Errorf("non-local synchs %d are not ≪ synchs %d", tot.NonLocalSynchs, tot.Synchronizations)
	}
}

func TestWorkingSetStaysSmall(t *testing.T) {
	// The paper's headline locality claim: millions of tasks, tens in
	// use. fib(22) executes ~80k tasks; LIFO keeps max-in-use ~depth.
	r := newRig(t, 22)
	for i := 0; i < 2; i++ {
		r.addWorker(types.WorkerID(i))
	}
	r.wait(60 * time.Second)
	tot := r.totals()
	if tot.MaxTasksInUse > 200 {
		t.Errorf("max tasks in use = %d; LIFO discipline should keep this near the spawn depth", tot.MaxTasksInUse)
	}
	if tot.TasksExecuted < 50000 {
		t.Errorf("suspiciously few tasks: %d", tot.TasksExecuted)
	}
}
