package nqueens

import (
	"testing"

	"phish"
)

// Known n-queens solution counts (OEIS A000170).
var known = map[int]int64{
	1: 1, 2: 0, 3: 0, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352, 10: 724, 11: 2680, 12: 14200,
}

func TestSerial(t *testing.T) {
	for n, want := range known {
		if got := Serial(n); got != want {
			t.Errorf("Serial(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 2, 4, 6, 8, 9} {
		res, err := phish.RunLocal(Program(), Root, RootArgs(n), phish.LocalOptions{Workers: 1})
		if err != nil {
			t.Fatalf("nqueens(%d): %v", n, err)
		}
		if got, want := res.Value.(int64), known[n]; got != want {
			t.Errorf("nqueens(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestParallelMultiWorker(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		res, err := phish.RunLocal(Program(), Root, RootArgs(9), phish.LocalOptions{Workers: p})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if got, want := res.Value.(int64), known[9]; got != want {
			t.Errorf("P=%d: nqueens(9) = %d, want %d", p, got, want)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	var prev int64 = -1
	for i := 0; i < 3; i++ {
		res, err := phish.RunLocal(Program(), Root, RootArgs(8), phish.LocalOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		got := res.Value.(int64)
		if prev != -1 && got != prev {
			t.Fatalf("run %d: result %d differs from previous %d", i, got, prev)
		}
		prev = got
	}
}
