package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"phish/internal/stats"
	"phish/internal/wire"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenRegistry is a deterministic registry covering every instrument
// kind the exposition writer handles.
func goldenRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("phish_tasks_executed_total", "Tasks executed by this worker.", Label{"worker", "1"})
	c.Add(42)
	r.Counter("phish_tasks_executed_total", "Tasks executed by this worker.", Label{"worker", "2"}).Add(17)
	r.Gauge("phish_deque_depth", "Ready-deque depth.").Set(7)
	h := r.Histogram("phish_steal_rtt_ns", "Steal round-trip latency.", []int64{1000, 2000, 5000})
	h.Observe(500)
	h.Observe(1500)
	h.Observe(10000)
	return r
}

func TestPromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// What WriteProm emits, ParseProm reads back with the same values.
func TestPromParseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseProm(&buf)
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]float64, len(samples))
	for _, s := range samples {
		byKey[s.Key()] = s.Value
	}
	want := map[string]float64{
		`phish_tasks_executed_total{worker="1"}`: 42,
		`phish_tasks_executed_total{worker="2"}`: 17,
		`phish_deque_depth`:                      7,
		`phish_steal_rtt_ns_bucket{le="1000"}`:   1,
		`phish_steal_rtt_ns_bucket{le="2000"}`:   2,
		`phish_steal_rtt_ns_bucket{le="5000"}`:   2,
		`phish_steal_rtt_ns_bucket{le="+Inf"}`:   3,
		`phish_steal_rtt_ns_sum`:                 12000,
		`phish_steal_rtt_ns_count`:               3,
	}
	for k, v := range want {
		got, ok := byKey[k]
		if !ok {
			t.Errorf("sample %s missing from parsed exposition", k)
		} else if got != v {
			t.Errorf("sample %s = %v, want %v", k, got, v)
		}
	}
}

// ParseProm handles the awkward corners of the exposition syntax: label
// values with embedded commas and escaped quotes, escaped backslashes,
// exponent-form floats, trailing whitespace, and a trailing comma inside
// the label block. A naive comma split of the label block would shred
// the first line.
func TestParsePromEdgeCases(t *testing.T) {
	in := strings.Join([]string{
		`phish_job_info{name="pfold, stage \"two\"",rev="abc"} 1`,
		`phish_heap_bytes 1.5e+06`,
		"phish_uptime_seconds 42.5   \t",
		`phish_flags{mode="debug",} 3`,
		`phish_path{dir="C:\\tmp"} 2`,
	}, "\n") + "\n"
	samples, err := ParseProm(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5 {
		t.Fatalf("parsed %d samples, want 5: %+v", len(samples), samples)
	}
	s := samples[0]
	if s.Name != "phish_job_info" || s.Value != 1 {
		t.Errorf("sample 0 = %+v, want phish_job_info 1", s)
	}
	if got := s.Label("name"); got != `pfold, stage "two"` {
		t.Errorf("comma-and-quote label = %q, want %q", got, `pfold, stage "two"`)
	}
	if got := s.Label("rev"); got != "abc" {
		t.Errorf("label after quoted comma = %q, want abc (comma split would eat it)", got)
	}
	if v := samples[1].Value; v != 1.5e6 {
		t.Errorf("exponent float = %v, want 1.5e+06", v)
	}
	if v := samples[2].Value; v != 42.5 {
		t.Errorf("trailing-whitespace value = %v, want 42.5", v)
	}
	if s := samples[3]; s.Label("mode") != "debug" || len(s.Labels) != 1 {
		t.Errorf("trailing-comma label block parsed as %+v", s.Labels)
	}
	if got := samples[4].Label("dir"); got != `C:\tmp` {
		t.Errorf("escaped backslash label = %q, want C:\\tmp", got)
	}
}

// Malformed exposition lines are rejected with an error, not silently
// mis-parsed.
func TestParsePromErrors(t *testing.T) {
	for _, line := range []string{
		`m{x=unquoted} 1`,  // value must be quoted
		`m{x="open} 1`,     // unterminated label value
		`m{x} 1`,           // label without '='
		`m{x="a" y="b"} 1`, // missing comma between labels
		`m 1 2`,            // too many fields
		`m{x="a"} notnum`,  // unparseable value
		`m{x="a"`,          // unterminated label block
	} {
		if _, err := ParseProm(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("ParseProm(%q) succeeded, want error", line)
		}
	}
}

// A label value full of exposition metacharacters survives the
// WriteProm -> ParseProm round trip byte for byte.
func TestPromLabelEscapeRoundTrip(t *testing.T) {
	const gnarly = `a,b="c",\d`
	r := NewRegistry()
	r.Counter("phish_quoted_total", "Counter with a hostile label.",
		Label{"arg", gnarly}).Add(9)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseProm(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, s := range samples {
		if s.Name == "phish_quoted_total" {
			found = true
			if got := s.Label("arg"); got != gnarly {
				t.Errorf("label round trip = %q, want %q", got, gnarly)
			}
			if s.Value != 9 {
				t.Errorf("value = %v, want 9", s.Value)
			}
		}
	}
	if !found {
		t.Fatal("phish_quoted_total missing from parsed exposition")
	}
}

// The cluster rollup exposition parses back with whole-job totals,
// per-worker series, and histogram quantile gauges present.
func TestClusterPromParseBack(t *testing.T) {
	m := NewMetrics()
	m.StealRTT().Observe(int64(5000))
	rows := []WorkerRow{
		{Worker: 2, Live: true, Deque: 3, Stats: stats.Snapshot{TasksExecuted: 10, TasksStolen: 2, TasksRedone: 1}},
		{Worker: 1, Live: false, Deque: 0, Stats: stats.Snapshot{TasksExecuted: 5, FailedSteals: 4}},
	}
	cs := BuildClusterSnapshot(7, "pfold", 3, 1, rows, [][]wire.HistState{m.Export()})
	if cs.Workers[0].Worker != 1 {
		t.Fatalf("rows not sorted by worker id: %+v", cs.Workers)
	}
	if cs.Totals.TasksExecuted != 15 {
		t.Fatalf("totals = %d, want 15", cs.Totals.TasksExecuted)
	}

	var buf bytes.Buffer
	if err := WriteClusterProm(&buf, cs); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseProm(&buf)
	if err != nil {
		t.Fatalf("%v\nexposition:\n%s", err, buf.String())
	}
	if v, ok := SampleValue(samples, "phish_tasks_executed_total"); !ok || v != 15 {
		t.Errorf("phish_tasks_executed_total = %v (found %v), want 15", v, ok)
	}
	if v, ok := SampleValue(samples, "phish_tasks_redone_total"); !ok || v != 1 {
		t.Errorf("phish_tasks_redone_total = %v (found %v), want 1", v, ok)
	}
	if v, ok := SampleValue(samples, "phish_live_workers"); !ok || v != 1 {
		t.Errorf("phish_live_workers = %v (found %v), want 1", v, ok)
	}
	perWorker := 0
	for _, s := range samples {
		if s.Name == "phish_worker_deque_depth" {
			perWorker++
			if s.Label("worker") == "" {
				t.Error("per-worker sample without worker label")
			}
		}
	}
	if perWorker != 2 {
		t.Errorf("per-worker deque series = %d, want 2", perWorker)
	}
	found := false
	for _, s := range samples {
		if s.Name == "phish_steal_rtt_ns_q" && s.Label("q") == "0.99" {
			found = true
			if s.Value <= 0 {
				t.Errorf("steal-rtt p99 = %v, want > 0", s.Value)
			}
		}
	}
	if !found {
		t.Error("steal-rtt quantile gauge missing from cluster exposition")
	}
}
