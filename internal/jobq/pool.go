// Package jobq implements the PhishJobQ: the macro-level scheduler's job
// pool (Section 3, Figure 2). Parallel jobs are submitted to the pool;
// idle workstations request work from it; assignment is non-preemptive
// round-robin over the pool, and — crucially — an assigned job STAYS in
// the pool, so other idle workstations keep joining it until it finishes.
// That is how the macro scheduler space-shares the network.
//
// Pool is the pure scheduling logic; Server/Client wrap it in a
// frame-per-request RPC over TCP for the distributed binaries. The
// simulated cluster calls Pool directly.
package jobq

import (
	"fmt"
	"sync"

	"phish/internal/types"
	"phish/internal/wire"
)

// Policy selects how the pool assigns jobs to requesting workstations.
// The paper's implementation is round-robin; the others are the "more
// sophisticated job assignment algorithms" its future work calls for.
type Policy int

const (
	// RoundRobin cycles through the pool (the paper's policy).
	RoundRobin Policy = iota
	// FirstComeFirstServed keeps assigning the oldest job until it
	// finishes — every idle workstation piles onto one job at a time.
	FirstComeFirstServed
	// PriorityFirst assigns the highest-priority job (ties: oldest);
	// all idle workstations serve the most important job.
	PriorityFirst
	// LeastServed assigns the job that has received the fewest
	// workstation grants so far — a fair-share policy.
	LeastServed
)

func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case FirstComeFirstServed:
		return "fcfs"
	case PriorityFirst:
		return "priority"
	case LeastServed:
		return "least-served"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Pool is the job pool. Safe for concurrent use.
type Pool struct {
	mu     sync.Mutex
	jobs   []wire.JobSpec
	grants map[types.JobID]int64
	policy Policy
	next   int
	nextID types.JobID
	store  *store // disk backing; nil for in-memory pools (see store.go)
}

// NewPool returns an empty round-robin pool.
func NewPool() *Pool {
	return &Pool{nextID: 1, grants: make(map[types.JobID]int64)}
}

// NewPoolWithPolicy returns an empty pool using the given policy.
func NewPoolWithPolicy(p Policy) *Pool {
	pool := NewPool()
	pool.policy = p
	return pool
}

// Policy returns the pool's assignment policy.
func (p *Pool) Policy() Policy {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.policy
}

// Grants reports how many times job id has been assigned.
func (p *Pool) Grants(id types.JobID) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.grants[id]
}

// Submit adds a job and returns its assigned id (any id already present in
// the spec is replaced).
func (p *Pool) Submit(spec wire.JobSpec) types.JobID {
	p.mu.Lock()
	defer p.mu.Unlock()
	spec.ID = p.nextID
	p.nextID++
	p.jobs = append(p.jobs, spec)
	p.appendLocked(&storeRecord{Kind: sSubmit, Spec: spec, NextID: p.nextID})
	return spec.ID
}

// Done removes a finished job from the pool. Unknown ids are ignored
// (the job may have been removed by an earlier Done).
func (p *Pool) Done(id types.JobID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, j := range p.jobs {
		if j.ID == id {
			p.jobs = append(p.jobs[:i], p.jobs[i+1:]...)
			delete(p.grants, id)
			if p.next > i {
				p.next--
			}
			p.appendLocked(&storeRecord{Kind: sDone, ID: id})
			return
		}
	}
}

// Request hands out the next job per the pool's policy. ok is false when
// the pool is empty (the workstation will retry, every 30 seconds in the
// paper).
func (p *Pool) Request() (spec wire.JobSpec, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.jobs) == 0 {
		return wire.JobSpec{}, false
	}
	idx := 0
	switch p.policy {
	case RoundRobin:
		if p.next >= len(p.jobs) {
			p.next = 0
		}
		idx = p.next
		p.next++
	case FirstComeFirstServed:
		idx = 0
	case PriorityFirst:
		for i, j := range p.jobs {
			if j.Priority > p.jobs[idx].Priority {
				idx = i
			}
		}
	case LeastServed:
		for i, j := range p.jobs {
			if p.grants[j.ID] < p.grants[p.jobs[idx].ID] {
				idx = i
			}
		}
	}
	spec = p.jobs[idx]
	p.grants[spec.ID]++
	return spec, true
}

// List returns a copy of the pool contents.
func (p *Pool) List() []wire.JobSpec {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]wire.JobSpec, len(p.jobs))
	copy(out, p.jobs)
	return out
}

// Len returns the number of jobs in the pool.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.jobs)
}
