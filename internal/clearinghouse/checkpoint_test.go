package clearinghouse

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"phish/internal/clock"
	"phish/internal/core"
	"phish/internal/model"
	"phish/internal/phishnet"
	"phish/internal/stats"
	"phish/internal/types"
	"phish/internal/wire"
)

// ckptProg is a slowed fib so checkpoints land mid-run: every leaf spins.
func ckptProg() *core.Program {
	p := core.NewProgram("ckpt-fib")
	p.Register("fib", func(c model.Ctx) {
		n := c.Int(0)
		if n < 2 {
			x := uint64(n) | 1
			for i := 0; i < 2000; i++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
			}
			if x == 0 {
				c.Return(int64(-1))
				return
			}
			c.Return(n)
			return
		}
		s := c.Successor("sum", 2)
		c.Spawn("fib", s.Cont(0), n-1)
		c.Spawn("fib", s.Cont(1), n-2)
	})
	p.Register("sum", func(c model.Ctx) { c.Return(c.Int(0) + c.Int(1)) })
	return p
}

func ckptFib(n int64) int64 {
	if n < 2 {
		return n
	}
	return ckptFib(n-1) + ckptFib(n-2)
}

// startWorkers wires count workers onto fab against prog.
func startWorkers(t *testing.T, fab *phishnet.Fabric, prog *core.Program, ids []types.WorkerID) ([]*core.Worker, *sync.WaitGroup) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.StealTimeout = 50 * time.Millisecond
	var wg sync.WaitGroup
	workers := make([]*core.Worker, 0, len(ids))
	for _, id := range ids {
		w := core.NewWorker(1, id, prog, fab.Attach(id), cfg, clock.System)
		workers = append(workers, w)
		wg.Add(1)
		go func(w *core.Worker) {
			defer wg.Done()
			_ = w.Run()
		}(w)
	}
	return workers, &wg
}

func TestCheckpointAndRestore(t *testing.T) {
	prog := ckptProg()
	spec := wire.JobSpec{ID: 1, Name: "ckpt-fib", Program: "ckpt-fib",
		RootFn: "fib", RootArgs: []types.Value{int64(22)}}

	// Phase A: start the job, checkpoint it mid-flight, kill everything.
	fabA := phishnet.NewFabric()
	cfgA := DefaultConfig()
	cfgA.UpdateEvery = 20 * time.Millisecond
	chA := New(spec, fabA.Attach(types.ClearinghouseID), cfgA)
	go chA.Run()
	workersA, wgA := startWorkers(t, fabA, prog, []types.WorkerID{1, 2, 3})

	time.Sleep(40 * time.Millisecond) // let it get going
	cp, err := chA.Checkpoint(10 * time.Second)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if chA.Done() {
		t.Skip("job finished before the checkpoint; nothing to restore")
	}
	var executedA int64
	for _, w := range workersA {
		executedA += w.Stats().TasksExecuted
	}
	if executedA == 0 {
		t.Fatal("checkpoint taken before any execution; timing is off")
	}
	// The whole site burns down.
	for _, w := range workersA {
		w.Crash()
	}
	wgA.Wait()
	chA.Stop()
	fabA.Close()

	// Serialize and reload, as a file would.
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	cp2, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp2.States) != 3 {
		t.Fatalf("checkpoint has %d states, want 3", len(cp2.States))
	}

	// Phase B: restore on a fresh fabric with fresh workers.
	fabB := phishnet.NewFabric()
	cfgB := DefaultConfig()
	cfgB.UpdateEvery = 20 * time.Millisecond
	chB := NewFromCheckpoint(cp2, fabB.Attach(types.ClearinghouseID), cfgB)
	go chB.Run()
	defer chB.Stop()
	defer fabB.Close()
	workersB, wgB := startWorkers(t, fabB, prog, []types.WorkerID{11, 12, 13})

	v, err := chB.WaitResult(60 * time.Second)
	if err != nil {
		t.Fatalf("restored job never finished: %v", err)
	}
	wgB.Wait()
	if got, want := v.(int64), ckptFib(22); got != want {
		t.Errorf("restored result = %d, want %d", got, want)
	}

	// Proof it RESUMED rather than restarted: the second phase executed
	// fewer tasks than the whole job.
	var snaps []stats.Snapshot
	for _, w := range workersB {
		snaps = append(snaps, w.Stats())
	}
	executedB := stats.JobTotals(snaps).TasksExecuted
	total := fibTaskCount(22)
	if executedB >= total {
		t.Errorf("restored phase executed %d >= %d tasks; it restarted instead of resuming", executedB, total)
	}
	if executedA+executedB < total {
		t.Errorf("phases executed %d+%d < %d tasks; work was lost", executedA, executedB, total)
	}
}

func fibTaskCount(n int64) int64 {
	if n < 2 {
		return 1
	}
	return fibTaskCount(n-1) + fibTaskCount(n-2) + 2
}

func TestCheckpointRefusesWhenDone(t *testing.T) {
	prog := ckptProg()
	spec := wire.JobSpec{ID: 1, Name: "ckpt-fib", Program: "ckpt-fib",
		RootFn: "fib", RootArgs: []types.Value{int64(5)}}
	fab := phishnet.NewFabric()
	defer fab.Close()
	ch := New(spec, fab.Attach(types.ClearinghouseID), DefaultConfig())
	go ch.Run()
	defer ch.Stop()
	_, wg := startWorkers(t, fab, prog, []types.WorkerID{1})
	if _, err := ch.WaitResult(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if _, err := ch.Checkpoint(time.Second); err == nil {
		t.Error("checkpointing a finished job should fail")
	}
}

func TestCheckpointRoundTripSerialization(t *testing.T) {
	cp := &JobCheckpoint{
		Spec:     wire.JobSpec{ID: 9, Name: "x", RootFn: "fib", RootArgs: []types.Value{int64(3)}},
		RootHost: 4,
		States: []wire.SnapshotReply{{
			Worker: 4,
			Closures: []wire.Closure{{
				ID: types.TaskID{Worker: 4, Seq: 2}, Fn: "sum",
				Args: []types.Value{int64(1), nil}, Missing: 1,
				Cont: types.Continuation{Task: types.TaskID{Worker: types.ClearinghouseID, Seq: 1}},
			}},
			Records: []wire.Record{{
				ID: types.TaskID{Worker: 4, Seq: 3}, Thief: 5, Confirmed: true,
			}},
		}},
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.RootHost != 4 || len(got.States) != 1 || len(got.States[0].Closures) != 1 {
		t.Errorf("round trip mangled the checkpoint: %+v", got)
	}
	if got.States[0].Closures[0].Args[0].(int64) != 1 {
		t.Error("argument value lost")
	}
}
