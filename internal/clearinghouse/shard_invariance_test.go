package clearinghouse

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"phish/internal/clock"
	"phish/internal/phishnet"
	"phish/internal/stats"
	"phish/internal/types"
	"phish/internal/wire"
)

// storeOp is one recorded mutation, replayable against any shard count.
type storeOp struct {
	kind int // 0 register, 1 heartbeat, 2 report, 3 depart, 4 remove
	id   types.WorkerID
	rep  wire.StatReport
	at   time.Duration // offset from the fake clock's origin
}

// genOps builds a random operation trace over a random population:
// registrations, heartbeats, piggybacked reports (with histogram state),
// departures, and crashes, in interleaved order.
func genOps(rng *rand.Rand, pop int) []storeOp {
	var ops []storeOp
	for i := 0; i < pop; i++ {
		id := types.WorkerID(rng.Intn(3 * pop)) // collisions exercise re-register
		ops = append(ops, storeOp{kind: 0, id: id, at: time.Duration(i) * time.Millisecond})
		n := rng.Intn(4)
		for j := 0; j < n; j++ {
			switch rng.Intn(5) {
			case 0:
				ops = append(ops, storeOp{kind: 1, id: id,
					at: time.Duration(rng.Intn(5000)) * time.Millisecond})
			case 1, 2:
				counters := make([]int64, len(stats.OrderedNames))
				for k := range counters {
					counters[k] = int64(rng.Intn(1000))
				}
				rep := wire.StatReport{
					Worker:   id,
					Deque:    int32(rng.Intn(64)),
					Counters: counters,
				}
				if rng.Intn(2) == 0 {
					rep.Hists = []wire.HistState{{
						Kind:   int32(rng.Intn(3)),
						Count:  int64(rng.Intn(100)),
						Sum:    int64(rng.Intn(100000)),
						Counts: []int64{int64(rng.Intn(10)), int64(rng.Intn(10))},
					}}
				}
				ops = append(ops, storeOp{kind: 2, id: id, rep: rep,
					at: time.Duration(rng.Intn(5000)) * time.Millisecond})
			case 3:
				ops = append(ops, storeOp{kind: 3, id: id})
			case 4:
				ops = append(ops, storeOp{kind: 4, id: id})
			}
		}
	}
	return ops
}

// applyOps replays the trace against ch's store, exactly as the ingest
// path would.
func applyOps(ch *Clearinghouse, ops []storeOp, origin time.Time) {
	for _, op := range ops {
		now := origin.Add(op.at)
		switch op.kind {
		case 0:
			ch.store.Register(op.id, wire.MemberInfo{Worker: op.id, HostedBy: op.id,
				Site: int32(op.id % 7)}, now)
		case 1:
			ch.store.Heartbeat(op.id, now)
		case 2:
			ch.store.FoldReport(op.rep, now)
		case 3:
			if ch.store.IsLive(op.id) {
				ch.store.Depart(op.id, op.id)
			}
		case 4:
			ch.store.Remove(op.id)
		}
	}
}

// TestSnapshotShardInvariance: for random populations, traces, and shard
// counts, the merge-over-shards ClusterSnapshot must be byte-identical to
// the flat single-shard rollup — sharding is a locking strategy, never an
// observable behavior change.
func TestSnapshotShardInvariance(t *testing.T) {
	f := func(seed int64, shardsRaw uint8, popRaw uint8) bool {
		shards := int(shardsRaw)%64 + 2 // 2..65, never the trivial 1
		pop := int(popRaw)%200 + 1
		rng := rand.New(rand.NewSource(seed))
		ops := genOps(rng, pop)

		build := func(n int) *Clearinghouse {
			cfg := DefaultConfig()
			cfg.Shards = n
			cfg.Clock = clock.NewFake()
			spec := wire.JobSpec{ID: 1, Name: "quick", RootFn: "root"}
			return New(spec, nil, cfg)
		}
		flat, sharded := build(1), build(shards)
		applyOps(flat, ops, flat.clk.Now())
		applyOps(sharded, ops, sharded.clk.Now())

		a, err := json.Marshal(flat.ClusterSnapshot())
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(sharded.ClusterSnapshot())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Logf("shards=%d pop=%d seed=%d\nflat:    %s\nsharded: %s",
				shards, pop, seed, a, b)
			return false
		}
		return flat.store.Epoch() == sharded.store.Epoch()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestJournalRecoveryAcrossShardCounts: a journal written under one shard
// count must recover identically under any other — the journal is
// shard-agnostic, so operators can retune -shards across restarts.
func TestJournalRecoveryAcrossShardCounts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reshard.jnl")
	jnl, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Shards = 4
	cfg.Journal = jnl
	fab := phishnet.NewFabric()
	spec := wire.JobSpec{ID: 1, Name: "test", RootFn: "root", RootArgs: []types.Value{int64(1)}}
	ch := New(spec, fab.Attach(types.ClearinghouseID), cfg)
	go ch.Run()

	send := func(port *phishnet.Port, from types.WorkerID, payload any) {
		t.Helper()
		if err := port.Send(&wire.Envelope{Job: 1, From: from, To: types.ClearinghouseID, Payload: payload}); err != nil {
			t.Fatalf("send %T: %v", payload, err)
		}
	}
	// Membership churn: 6 joins, one clean leave, one crash.
	ports := map[types.WorkerID]*phishnet.Port{}
	for id := types.WorkerID(10); id < 16; id++ {
		p := fab.Attach(id)
		ports[id] = p
		send(p, id, wire.Register{Worker: id})
		if id == 10 {
			expect[wire.SpawnRoot](t, p, time.Second)
		} else {
			expect[wire.RegisterReply](t, p, time.Second)
		}
	}
	send(ports[13], 13, wire.Unregister{Worker: 13, Reason: wire.LeaveReclaimed})
	send(ports[14], 14, wire.Unregister{Worker: 14, Reason: wire.LeaveCrash})
	expect[wire.WorkerDown](t, ports[10], 2*time.Second)

	waitLive := func(c *Clearinghouse, want int) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for len(c.LiveWorkers()) != want && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if got := c.LiveWorkers(); len(got) != want {
			t.Fatalf("live = %v, want %d workers", got, want)
		}
	}
	waitLive(ch, 4)

	ch.Stop()
	_ = jnl.Close()
	fab.Close()

	rec, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}

	// Recover the same journal under wildly different shard counts: the
	// visible state must not depend on the stripe layout.
	type visible struct {
		Live  []types.WorkerID
		Epoch uint64
		Snap  string
	}
	see := func(shards int) visible {
		cfg := DefaultConfig()
		cfg.Shards = shards
		cfg.Clock = clock.NewFake()
		c := NewFromRecovery(rec, nil, cfg)
		snap, err := json.Marshal(c.ClusterSnapshot())
		if err != nil {
			t.Fatal(err)
		}
		return visible{Live: c.LiveWorkers(), Epoch: c.store.Epoch(), Snap: string(snap)}
	}
	want := see(1)
	if len(want.Live) != 4 {
		t.Fatalf("recovered live = %v, want 4 workers", want.Live)
	}
	for _, shards := range []int{3, 16, 64} {
		got := see(shards)
		if fmt.Sprint(got.Live) != fmt.Sprint(want.Live) {
			t.Errorf("shards=%d: live = %v, want %v", shards, got.Live, want.Live)
		}
		if got.Epoch != want.Epoch {
			t.Errorf("shards=%d: epoch = %d, want %d", shards, got.Epoch, want.Epoch)
		}
		if got.Snap != want.Snap {
			t.Errorf("shards=%d: snapshot diverged\n got %s\nwant %s", shards, got.Snap, want.Snap)
		}
	}
}
