//go:build !linux

package cputime

import "time"

// Thread is unavailable on this platform; callers fall back to wall-clock
// accounting.
func Thread() (time.Duration, bool) { return 0, false }
