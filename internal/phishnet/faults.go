// Deterministic fault injection. A Faults instance sits under a transport
// (the in-memory Fabric via SetFaults, the UDP transport via its
// SetFaults, or any Conn via WrapConn) and decides, per message, whether
// to drop, duplicate, or delay it, and whether the (from, to) pair is
// currently partitioned.
//
// Determinism is the point: every ordered peer pair owns a private PRNG
// seeded from (Plan.Seed, from, to), so the verdict sequence for a pair
// depends only on the seed and that pair's message count — not on
// cross-pair interleaving, goroutine scheduling, or wall time. Two runs
// with the same seed and the same per-pair traffic make identical
// drop/duplicate/delay decisions.
package phishnet

import (
	"math/rand"
	"sync"
	"time"

	"phish/internal/types"
	"phish/internal/wire"
)

// FaultPlan configures a Faults instance. The zero plan injects nothing.
type FaultPlan struct {
	// Seed drives every probabilistic decision. Same seed, same traffic,
	// same faults.
	Seed int64
	// Drop is the probability a message is silently lost.
	Drop float64
	// Duplicate is the probability a message is delivered twice.
	Duplicate float64
	// Delay, when non-zero, holds each message for Delay ± DelayJitter
	// before delivery. On the fabric the delayed message goes through the
	// latency pump, so unequal delays reorder messages naturally.
	Delay       time.Duration
	DelayJitter time.Duration
}

// Verdict is the per-message decision for one (from, to) send.
type Verdict struct {
	Drop      bool
	Duplicate bool
	Delay     time.Duration
}

// DropEvent records one injected or partition-induced loss (test
// diagnostics; recording is off unless enabled with RecordDrops).
type DropEvent struct {
	From, To types.WorkerID
	At       time.Time
}

// Faults makes deterministic per-message fault decisions and tracks
// dynamic partitions. Safe for concurrent use.
type Faults struct {
	plan FaultPlan

	mu     sync.Mutex
	pairs  map[pairKey]*rand.Rand
	cuts   map[pairKey]bool // symmetric: stored both ways
	record bool
	drops  []DropEvent
}

type pairKey struct{ from, to types.WorkerID }

// NewFaults builds a Faults for plan.
func NewFaults(plan FaultPlan) *Faults {
	return &Faults{
		plan:  plan,
		pairs: make(map[pairKey]*rand.Rand),
		cuts:  make(map[pairKey]bool),
	}
}

// pairRand returns the deterministic PRNG for the ordered pair, creating
// it on first use. Callers hold f.mu.
func (f *Faults) pairRand(k pairKey) *rand.Rand {
	r, ok := f.pairs[k]
	if !ok {
		// Mix the pair identity into the seed with two odd constants so
		// (1→2) and (2→1) — and (seed, pair) collisions in general — land
		// on unrelated streams.
		seed := f.plan.Seed + int64(k.from)*-0x61C8864680B583EB + int64(k.to)*0x6C62272E07BB0143
		r = rand.New(rand.NewSource(seed))
		f.pairs[k] = r
	}
	return r
}

// Judge decides the fate of one message from → to. It always consumes the
// same number of random draws regardless of the outcome, so a partition
// healing mid-run does not shift the pair's subsequent decisions.
func (f *Faults) Judge(from, to types.WorkerID) Verdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := pairKey{from, to}
	r := f.pairRand(k)
	dropRoll, dupRoll, jitRoll := r.Float64(), r.Float64(), r.Float64()
	var v Verdict
	if f.cutLocked(from, to) {
		v.Drop = true
	}
	if f.plan.Drop > 0 && dropRoll < f.plan.Drop {
		v.Drop = true
	}
	if f.plan.Duplicate > 0 && dupRoll < f.plan.Duplicate {
		v.Duplicate = true
	}
	if f.plan.Delay > 0 {
		v.Delay = f.plan.Delay
		if f.plan.DelayJitter > 0 {
			v.Delay += time.Duration((2*jitRoll - 1) * float64(f.plan.DelayJitter))
			if v.Delay < 0 {
				v.Delay = 0
			}
		}
	}
	if v.Drop && f.record {
		f.drops = append(f.drops, DropEvent{From: from, To: to, At: time.Now()})
	}
	return v
}

// Partitioned reports whether traffic from → to is currently cut.
func (f *Faults) Partitioned(from, to types.WorkerID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cutLocked(from, to)
}

// Partition cuts traffic between a and b in both directions.
func (f *Faults) Partition(a, b types.WorkerID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cuts[pairKey{a, b}] = true
	f.cuts[pairKey{b, a}] = true
}

// Heal restores traffic between a and b.
func (f *Faults) Heal(a, b types.WorkerID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.cuts, pairKey{a, b})
	delete(f.cuts, pairKey{b, a})
}

// Isolate cuts id off from everyone: any pair involving id is dropped.
// Implemented as a wildcard so it also covers peers that first appear
// after the call.
func (f *Faults) Isolate(id types.WorkerID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cuts[pairKey{id, wildcardPeer}] = true
	f.cuts[pairKey{wildcardPeer, id}] = true
}

// Rejoin undoes Isolate (pairwise Partition cuts, if any, remain).
func (f *Faults) Rejoin(id types.WorkerID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.cuts, pairKey{id, wildcardPeer})
	delete(f.cuts, pairKey{wildcardPeer, id})
}

// HealAll clears every partition and isolation.
func (f *Faults) HealAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cuts = make(map[pairKey]bool)
}

// wildcardPeer marks an Isolate entry; no real worker uses this id.
const wildcardPeer types.WorkerID = -1 << 30

// cut reports whether the ordered pair is severed, honoring wildcards.
// Callers hold f.mu.
func (f *Faults) cutLocked(from, to types.WorkerID) bool {
	return f.cuts[pairKey{from, to}] ||
		f.cuts[pairKey{from, wildcardPeer}] || f.cuts[pairKey{wildcardPeer, from}] ||
		f.cuts[pairKey{to, wildcardPeer}] || f.cuts[pairKey{wildcardPeer, to}]
}

// RecordDrops toggles drop-event recording (for tests).
func (f *Faults) RecordDrops(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.record = on
	if !on {
		f.drops = nil
	}
}

// Drops returns a copy of the recorded drop events.
func (f *Faults) Drops() []DropEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]DropEvent, len(f.drops))
	copy(out, f.drops)
	return out
}

// FaultConn interposes a Faults between a Conn and its owner: outbound
// sends are judged and dropped, duplicated, or delayed accordingly.
// Partitioned sends return ErrUnknownPeer — the peer is unreachable and
// the caller's park-and-retry path should engage, exactly as when a
// fabric port has detached. Probabilistic drops return nil (the message
// vanished in the network; a reliable conversation will retransmit).
type FaultConn struct {
	Conn
	local  types.WorkerID
	faults *Faults
}

// WrapConn wraps inner with fault injection for traffic sent by local.
func WrapConn(inner Conn, local types.WorkerID, faults *Faults) *FaultConn {
	return &FaultConn{Conn: inner, local: local, faults: faults}
}

// Send implements Conn.
func (c *FaultConn) Send(env *wire.Envelope) error {
	v := c.faults.Judge(c.local, env.To)
	if v.Drop {
		if c.faults.Partitioned(c.local, env.To) {
			return ErrUnknownPeer
		}
		return nil
	}
	send := func() error { return c.Conn.Send(env) }
	if v.Delay > 0 {
		time.AfterFunc(v.Delay, func() { _ = send() })
		if v.Duplicate {
			time.AfterFunc(v.Delay, func() { _ = send() })
		}
		return nil
	}
	if v.Duplicate {
		_ = send()
	}
	return send()
}

var _ Conn = (*FaultConn)(nil)
