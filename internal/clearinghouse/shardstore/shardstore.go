// Package shardstore is the clearinghouse's sharded, lock-striped state
// store. Workers are hashed by id into N independently locked shards, each
// owning its slice of the membership table, heartbeat liveness, and the
// latest piggybacked StatReport telemetry. The point is macro-level scale:
// with one flat map behind one mutex, a job's control plane serializes
// every heartbeat and stat fold through a single lock and stops scaling at
// a few thousand workers; with N shards, registration and heartbeat
// traffic for disjoint workers never contend, so throughput scales close
// to linearly in shards (until the cores run out).
//
// Concurrency contract:
//
//   - Hot-path folds (Touch, Heartbeat, FoldReport, FoldHot) are safe from
//     any number of goroutines and take only the owning shard's lock —
//     FoldHot groups a whole datagram batch by shard so each shard's lock
//     is taken once per batch, not once per message.
//   - Membership mutations (Register, Depart, Remove, Rehost...) may run
//     concurrently with folds and reads, but writers must be externally
//     serialized with each other — in the clearinghouse they all happen on
//     the Run goroutine, exactly as they did under the flat map.
//   - Cross-shard reads (Members, LiveIDs, Rows, Epoch) are merge-over-
//     shards: they lock one shard at a time, so they are cheap and never
//     stall the whole store, at the cost of not being a point-in-time
//     snapshot across shards. The epoch is monotonic regardless, which is
//     all the membership protocol needs.
//
// Shard count is a runtime performance knob, never a semantic one: the
// same operations applied to a 1-shard and a 64-shard store produce
// identical membership, epochs, and rollups (a property test holds the
// two byte-identical), and nothing about the shard count is persisted.
package shardstore

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"phish/internal/types"
	"phish/internal/wire"
)

// Phi-accrual detector tuning. The window bounds how much history one
// member's inter-arrival ring holds; the minimum sample count keeps a cold
// member (fresh registration or journal recovery) on the fixed fallback
// timeout instead of letting one or two gaps produce a spiky estimate.
const (
	phiWindow     = 32
	phiMinSamples = 4
)

// Member is one (possibly departed) participant's record.
type Member struct {
	Info      wire.MemberInfo
	LastHeard time.Time
	Departed  bool
	// HBSeen gates timeout-based crash detection: only a worker that has
	// actually heartbeated may be declared dead by silence.
	HBSeen bool
	// RegisteredAt anchors the registration-grace deadline: a member that
	// registers but never heartbeats is not exempt from the sweep forever —
	// past the grace it is declared dead like any silent worker.
	RegisteredAt time.Time

	// Phi-accrual inter-arrival history: a ring of recent heartbeat gaps
	// with running sum and sum-of-squares, so Phi is O(1). The history is
	// cold (phi unavailable, fixed fallback applies) until phiMinSamples
	// gaps accrue — a recovered or freshly registered member can neither be
	// instantly suspected nor permanently exempted.
	hbLast   time.Time
	hbGaps   [phiWindow]int64
	hbGapN   int
	hbGapIdx int
	hbGapSum int64
	hbGapSq  float64
}

// beat folds one heartbeat arrival into the member's detector state. The
// first beat only anchors hbLast; gaps are measured between consecutive
// beats. Zero gaps (several beats folded from one inbox drain at the same
// instant) carry no arrival-process information and are skipped.
func (m *Member) beat(now time.Time) {
	if m.HBSeen && !m.hbLast.IsZero() {
		if gap := now.Sub(m.hbLast).Nanoseconds(); gap > 0 {
			if m.hbGapN == phiWindow {
				old := m.hbGaps[m.hbGapIdx]
				m.hbGapSum -= old
				m.hbGapSq -= float64(old) * float64(old)
			} else {
				m.hbGapN++
			}
			m.hbGaps[m.hbGapIdx] = gap
			m.hbGapIdx = (m.hbGapIdx + 1) % phiWindow
			m.hbGapSum += gap
			m.hbGapSq += float64(gap) * float64(gap)
		}
	}
	if now.After(m.hbLast) {
		m.hbLast = now
	}
	m.LastHeard = now
	m.HBSeen = true
}

// phi returns the suspicion score for the member at now, and whether the
// history is warm enough to score at all. Phi is the standard accrual
// scale: -log10 of the probability that a heartbeat later than the elapsed
// silence would still arrive, under a normal fit of the observed gaps.
// Phi 1 ≈ 90% confidence the member is gone, 2 ≈ 99%, 8 ≈ 1-1e-8.
//
// slack is an acceptable-pause allowance in nanoseconds, subtracted from
// the elapsed silence before scoring: on real clocks a GC or scheduler
// stall delays heartbeats by far more than the network jitter the gap
// history models, and without the allowance a tight history (fast
// heartbeats, low variance) crosses any threshold within a stall's worth
// of silence.
func (m *Member) phi(now time.Time, slack int64) (float64, bool) {
	if m.hbGapN < phiMinSamples {
		return 0, false
	}
	n := float64(m.hbGapN)
	mean := float64(m.hbGapSum) / n
	variance := m.hbGapSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	stddev := math.Sqrt(variance)
	// Floor the deviation: a metronomic heartbeat (fake clock, idle LAN)
	// would otherwise make any delay register as infinite suspicion.
	if min := mean / 4; stddev < min {
		stddev = min
	}
	elapsed := float64(now.Sub(m.hbLast).Nanoseconds() - slack)
	if elapsed < 0 {
		elapsed = 0
	}
	return phiScore(elapsed, mean, stddev), true
}

// phiScore evaluates -log10(1 - CDF(elapsed)) using the logistic
// approximation to the normal CDF (same shape Cassandra and Akka use):
// monotonic in elapsed, exact enough at the tails that matter.
func phiScore(elapsed, mean, stddev float64) float64 {
	y := (elapsed - mean) / stddev
	e := math.Exp(-y * (1.5976 + 0.070566*y*y))
	var p float64
	if elapsed > mean {
		p = e / (1 + e)
	} else {
		p = 1 - 1/(1+e)
	}
	if p < 1e-300 {
		p = 1e-300 // cap phi around 300 instead of returning +Inf
	}
	return -math.Log10(p)
}

// Report is the latest StatReport accepted from one worker, its arrival
// time (for staleness display), and the monotonic key that rejected stale
// reorderings (see FoldReport).
type Report struct {
	Rep wire.StatReport
	At  time.Time
	key int64
}

// shard owns one stripe of the store. Members and reports for a worker id
// always live in the same shard, so a heartbeat+report datagram touches
// one lock per distinct shard in the batch.
type shard struct {
	mu      sync.Mutex
	members map[types.WorkerID]*Member
	reports map[types.WorkerID]Report
	// epoch counts membership mutations applied to this shard; the store's
	// epoch is the sum over shards plus the recovery base.
	epoch uint64
	// live caches the non-departed member count for O(shards) live totals.
	live int
	_    [24]byte // keep neighboring shards off one cache line's locks
}

// Store is the sharded clearinghouse state.
type Store struct {
	shards []shard
	// epochBase carries the journaled epoch across recovery (the recovered
	// store starts with zeroed shard epochs but must resume past the
	// journaled value).
	epochBase atomic.Uint64
	// phiSlack is the acceptable-pause allowance (ns) subtracted from every
	// member's elapsed silence before phi scoring; see Member.phi.
	phiSlack atomic.Int64
}

// SetPhiSlack configures the acceptable-pause allowance applied to every
// phi evaluation (Phi, Phis, SweepDead). Zero means no allowance.
func (s *Store) SetPhiSlack(d time.Duration) { s.phiSlack.Store(d.Nanoseconds()) }

// New builds a store with n shards (n < 1 is treated as 1). Shard count
// does not affect semantics, only lock striping.
func New(n int) *Store {
	if n < 1 {
		n = 1
	}
	s := &Store{shards: make([]shard, n)}
	for i := range s.shards {
		s.shards[i].members = make(map[types.WorkerID]*Member)
		s.shards[i].reports = make(map[types.WorkerID]Report)
	}
	return s
}

// Shards returns the shard count.
func (s *Store) Shards() int { return len(s.shards) }

// shardOf hashes a worker id onto its shard. splitmix64-style finalizer:
// worker ids are often dense small integers, and we need them spread
// evenly across shards rather than striped by low bits.
func (s *Store) shardOf(id types.WorkerID) *shard {
	if len(s.shards) == 1 {
		return &s.shards[0]
	}
	h := uint64(uint32(id)) + 0x9E3779B97F4A7C15
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return &s.shards[h%uint64(len(s.shards))]
}

// ---- Epoch ----------------------------------------------------------------

// Epoch returns the membership epoch: the recovery base plus every
// mutation applied to any shard. It is monotonic; reading it concurrently
// with a mutation may or may not see that mutation, exactly like reading
// a flat epoch counter outside the mutating lock.
func (s *Store) Epoch() uint64 {
	e := s.epochBase.Load()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		e += sh.epoch
		sh.mu.Unlock()
	}
	return e
}

// SetEpochBase seeds the epoch after recovery; shard epochs must still be
// zero (call it on a fresh store before folding recovered members without
// bumps).
func (s *Store) SetEpochBase(e uint64) { s.epochBase.Store(e) }

// ---- Membership mutations (externally serialized writers) -----------------

// Register inserts id as a live member if it is absent. It returns the
// member's state after the call: created says a new row was added (and the
// epoch bumped), departed reports a tombstone (a departed id
// re-registering is a protocol violation; the tombstone is kept). An
// existing live member just has its liveness refreshed (a duplicate
// Register retry).
func (s *Store) Register(id types.WorkerID, info wire.MemberInfo, now time.Time) (created, departed bool) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m, ok := sh.members[id]
	switch {
	case !ok:
		sh.members[id] = &Member{Info: info, LastHeard: now, RegisteredAt: now}
		sh.epoch++
		sh.live++
		return true, false
	case m.Departed:
		return false, true
	default:
		m.LastHeard = now
		return false, false
	}
}

// AddTombstone inserts a departed member (a restore bundle's old id being
// adopted under a new one) and bumps the epoch.
func (s *Store) AddTombstone(id types.WorkerID, info wire.MemberInfo) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	sh.members[id] = &Member{Info: info, Departed: true}
	sh.epoch++
	sh.mu.Unlock()
}

// Contains reports whether id has a row (live or tombstoned).
func (s *Store) Contains(id types.WorkerID) bool {
	sh := s.shardOf(id)
	sh.mu.Lock()
	_, ok := sh.members[id]
	sh.mu.Unlock()
	return ok
}

// Member returns a copy of id's row.
func (s *Store) Member(id types.WorkerID) (Member, bool) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if m, ok := sh.members[id]; ok {
		return *m, true
	}
	return Member{}, false
}

// IsLive reports whether id is a non-departed member.
func (s *Store) IsLive(id types.WorkerID) bool {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m, ok := sh.members[id]
	return ok && !m.Departed
}

// Depart tombstones a live member: it stops counting as live, its tasks
// are served by hostedBy (NoWorker for a clean exit with no state), and
// the epoch bumps. It reports whether the member was live.
func (s *Store) Depart(id, hostedBy types.WorkerID) bool {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m, ok := sh.members[id]
	if !ok || m.Departed {
		return false
	}
	m.Departed = true
	m.Info.HostedBy = hostedBy
	sh.epoch++
	sh.live--
	return true
}

// Remove deletes a live member outright (a crash: its state is gone, not
// hosted anywhere) and bumps the epoch. It reports whether the member was
// present and live.
func (s *Store) Remove(id types.WorkerID) bool {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m, ok := sh.members[id]
	if !ok || m.Departed {
		return false
	}
	delete(sh.members, id)
	sh.epoch++
	sh.live--
	return true
}

// RemoveHostedBy deletes every member whose tasks were hosted by dead (the
// crash cascade: state hosted by a dead worker died with it) and returns
// the removed ids. Cross-shard: each shard's lock is taken once. No epoch
// bump — the cascade is part of one crash event, and the Remove of the
// dead worker itself already bumped (one bump per semantic event keeps the
// epoch sequence identical to the pre-sharding flat map, and identical
// across shard counts).
func (s *Store) RemoveHostedBy(dead types.WorkerID) []types.WorkerID {
	var removed []types.WorkerID
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for id, m := range sh.members {
			if id != dead && m.Info.HostedBy == dead {
				if !m.Departed {
					sh.live--
				}
				delete(sh.members, id)
				removed = append(removed, id)
			}
		}
		sh.mu.Unlock()
	}
	return removed
}

// Bump advances the epoch by one, attributed to id's shard, without any
// row mutation (a membership-visible event that rewired existing rows,
// e.g. a restore bundle adopted under its original id).
func (s *Store) Bump(id types.WorkerID) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	sh.epoch++
	sh.mu.Unlock()
}

// Rehost flattens hosting chains: every member hosted by from moves to to.
// No epoch bump — the flat-map code mutated rows in place and bumped once
// for the departure itself; callers do the same here.
func (s *Store) Rehost(from, to types.WorkerID) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, m := range sh.members {
			if m.Info.HostedBy == from {
				m.Info.HostedBy = to
			}
		}
		sh.mu.Unlock()
	}
}

// RestoreMember folds one recovered journal row into the store without an
// epoch bump (recovery seeds the epoch via SetEpochBase). Recovered
// members are heartbeat-known: the heartbeat machinery re-establishes who
// actually survived the outage. Their inter-arrival history is cold — the
// pre-outage arrival process says nothing about the post-outage one — so
// the fixed fallback timeout governs them until fresh gaps accrue: no
// instant suspicion, no permanent exemption.
func (s *Store) RestoreMember(info wire.MemberInfo, departed bool, now time.Time) {
	sh := s.shardOf(info.Worker)
	sh.mu.Lock()
	sh.members[info.Worker] = &Member{Info: info, LastHeard: now, Departed: departed, HBSeen: true, RegisteredAt: now, hbLast: now}
	if !departed {
		sh.live++
	}
	sh.mu.Unlock()
}

// ---- Hot-path folds (any goroutine) ---------------------------------------

// Touch refreshes id's liveness: any traffic from a live member proves it
// is alive.
func (s *Store) Touch(id types.WorkerID, now time.Time) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	if m, ok := sh.members[id]; ok && !m.Departed {
		m.LastHeard = now
	}
	sh.mu.Unlock()
}

// Heartbeat refreshes liveness, marks the member heartbeat-known, and
// folds the arrival into its phi inter-arrival history.
func (s *Store) Heartbeat(id types.WorkerID, now time.Time) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	if m, ok := sh.members[id]; ok && !m.Departed {
		m.beat(now)
	}
	sh.mu.Unlock()
}

// Phi returns id's suspicion score at now. warm reports whether the
// member has enough inter-arrival history to score; a cold member always
// scores 0 and must be judged by the fixed fallback timeout instead.
func (s *Store) Phi(id types.WorkerID, now time.Time) (score float64, warm bool) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m, ok := sh.members[id]
	if !ok || m.Departed || !m.HBSeen {
		return 0, false
	}
	return m.phi(now, s.phiSlack.Load())
}

// PhiRow is one live member's suspicion score for rollups.
type PhiRow struct {
	Worker types.WorkerID
	Phi    float64
	Warm   bool
}

// Phis returns the suspicion score of every live heartbeat-known member,
// sorted by worker id (merge-over-shards, like Members).
func (s *Store) Phis(now time.Time) []PhiRow {
	var out []PhiRow
	slack := s.phiSlack.Load()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for id, m := range sh.members {
			if m.Departed || !m.HBSeen {
				continue
			}
			score, warm := m.phi(now, slack)
			out = append(out, PhiRow{Worker: id, Phi: score, Warm: warm})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

// reportKey is the monotonic ordering key of a cumulative StatReport: the
// sum of its counters. Every counter in stats.OrderedNames is monotonic
// within one worker incarnation (and worker ids are incarnation-unique),
// so a later report never has a smaller sum. A delayed, reordered, or
// duplicated report from earlier in the same incarnation has a strictly
// smaller-or-equal sum and must not overwrite a newer row.
func reportKey(rep *wire.StatReport) int64 {
	var k int64
	for _, v := range rep.Counters {
		k += v
	}
	return k
}

// FoldReport folds one StatReport: latest-wins by cumulative progress, not
// by arrival order. It reports whether the row was updated.
func (s *Store) FoldReport(rep wire.StatReport, now time.Time) bool {
	sh := s.shardOf(rep.Worker)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.foldReportLocked(rep, now)
}

func (sh *shard) foldReportLocked(rep wire.StatReport, now time.Time) bool {
	// Any traffic from a live member proves it is alive (reports ride the
	// heartbeat cadence, so this is the same worker's shard by
	// construction).
	if m, ok := sh.members[rep.Worker]; ok && !m.Departed {
		m.LastHeard = now
	}
	key := reportKey(&rep)
	if old, ok := sh.reports[rep.Worker]; ok && key < old.key {
		return false // stale reordering: an older cumulative state arrived late
	}
	sh.reports[rep.Worker] = Report{Rep: rep, At: now, key: key}
	return true
}

// HotBatch is the decoded hot content of one inbox drain: heartbeats and
// stat reports to fold, in no particular order (they are commutative).
// Reuse one HotBatch and Reset it between drains to keep the ingest loop
// allocation-free.
type HotBatch struct {
	Beats   []types.WorkerID
	Reports []wire.StatReport
	// scratch: per-shard indexes, grown once and reused.
	order []int32
}

// Reset empties the batch, keeping capacity.
func (b *HotBatch) Reset() {
	b.Beats = b.Beats[:0]
	b.Reports = b.Reports[:0]
}

// Len returns the number of folds queued.
func (b *HotBatch) Len() int { return len(b.Beats) + len(b.Reports) }

// FoldHot applies a whole batch, taking each involved shard's lock exactly
// once — the reason a datagram carrying dozens of piggybacked heartbeats
// costs one lock word per shard instead of one per message. Order within
// the batch does not matter: heartbeats and reports are commutative folds
// (max of liveness, monotonic-latest report).
func (s *Store) FoldHot(b *HotBatch, now time.Time) {
	n := len(s.shards)
	if n == 1 {
		sh := &s.shards[0]
		sh.mu.Lock()
		for _, id := range b.Beats {
			if m, ok := sh.members[id]; ok && !m.Departed {
				m.beat(now)
			}
		}
		for _, rep := range b.Reports {
			sh.foldReportLocked(rep, now)
		}
		sh.mu.Unlock()
		return
	}
	// Tag every entry with its shard, then sweep shard by shard. The
	// order slice holds beats first, then reports, so one pass covers
	// both without interleaving bookkeeping.
	total := len(b.Beats) + len(b.Reports)
	if cap(b.order) < total {
		b.order = make([]int32, total)
	}
	order := b.order[:total]
	touched := make(map[int32]struct{}, n) // small; n shards max
	for i, id := range b.Beats {
		si := s.shardIndex(id)
		order[i] = si
		touched[si] = struct{}{}
	}
	for i := range b.Reports {
		si := s.shardIndex(b.Reports[i].Worker)
		order[len(b.Beats)+i] = si
		touched[si] = struct{}{}
	}
	for si := range touched {
		sh := &s.shards[si]
		sh.mu.Lock()
		for i, id := range b.Beats {
			if order[i] != si {
				continue
			}
			if m, ok := sh.members[id]; ok && !m.Departed {
				m.beat(now)
			}
		}
		for i := range b.Reports {
			if order[len(b.Beats)+i] != si {
				continue
			}
			sh.foldReportLocked(b.Reports[i], now)
		}
		sh.mu.Unlock()
	}
}

func (s *Store) shardIndex(id types.WorkerID) int32 {
	if len(s.shards) == 1 {
		return 0
	}
	h := uint64(uint32(id)) + 0x9E3779B97F4A7C15
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return int32(h % uint64(len(s.shards)))
}

// ---- Cross-shard reads ----------------------------------------------------

// LiveCount returns the number of non-departed members (sum of per-shard
// cached counts; no map iteration).
func (s *Store) LiveCount() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.live
		sh.mu.Unlock()
	}
	return n
}

// LiveIDs returns the sorted ids of non-departed members.
func (s *Store) LiveIDs() []types.WorkerID {
	var ids []types.WorkerID
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for id, m := range sh.members {
			if !m.Departed {
				ids = append(ids, id)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Members returns every row (live and tombstoned), sorted by worker id —
// the merge-over-shards view assembly. Each element is a copy.
func (s *Store) Members() []Member {
	var out []Member
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, m := range sh.members {
			out = append(out, *m)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Info.Worker < out[j].Info.Worker })
	return out
}

// SweepDead returns the live members the detector declares dead at now —
// the per-shard dead-worker sweep. The caller (the Run goroutine) turns
// each into a crash. Three regimes per member:
//
//   - Heartbeat-known with a warm inter-arrival history and phiThreshold
//     > 0: dead when the phi-accrual suspicion crosses the threshold. The
//     detector adapts — a worker with naturally jittery heartbeats earns
//     slack, a metronomic one is declared quickly.
//   - Heartbeat-known but cold (fresh registration, journal recovery) or
//     phi disabled (phiThreshold <= 0): dead when LastHeard predates
//     fallbackCutoff, the classic fixed timeout.
//   - Never heartbeated: dead when RegisteredAt predates graceCutoff. A
//     member that registers and goes silent before its first heartbeat is
//     not exempt forever — past the registration grace its closures are
//     redistributed like any crash. A zero graceCutoff disables the grace
//     sweep (members restored by older journals carry no RegisteredAt).
func (s *Store) SweepDead(phiThreshold float64, now, fallbackCutoff, graceCutoff time.Time) []types.WorkerID {
	var dead []types.WorkerID
	slack := s.phiSlack.Load()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for id, m := range sh.members {
			if m.Departed {
				continue
			}
			if !m.HBSeen {
				if !graceCutoff.IsZero() && !m.RegisteredAt.IsZero() && m.RegisteredAt.Before(graceCutoff) {
					dead = append(dead, id)
				}
				continue
			}
			if phiThreshold > 0 {
				if score, warm := m.phi(now, slack); warm {
					if score > phiThreshold {
						dead = append(dead, id)
					}
					continue
				}
			}
			if m.LastHeard.Before(fallbackCutoff) {
				dead = append(dead, id)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
	return dead
}

// ReportOf returns one worker's latest report row (a copy), if any. Used
// by the crash path to salvage a dead worker's last published checkpoints
// before its rows are removed.
func (s *Store) ReportOf(id types.WorkerID) (Report, bool) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r, ok := sh.reports[id]
	return r, ok
}

// Reports returns every worker's latest report row, unsorted (the rollup
// sorts after decorating). Each element is a copy.
func (s *Store) Reports() []Report {
	var out []Report
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, r := range sh.reports {
			out = append(out, r)
		}
		sh.mu.Unlock()
	}
	return out
}

// EvictReports drops telemetry rows whose worker is no longer a live
// member and whose last report predates cutoff — per-shard TTL eviction,
// so a 100k-worker job with churn does not accrete dead workers' rows
// forever. It returns the number evicted. Live members are never evicted
// (their rows only go stale if they stop reporting, which the heartbeat
// timeout turns into a crash first).
func (s *Store) EvictReports(cutoff time.Time) int {
	evicted := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for id, r := range sh.reports {
			if r.At.After(cutoff) {
				continue
			}
			if m, ok := sh.members[id]; ok && !m.Departed {
				continue
			}
			delete(sh.reports, id)
			evicted++
		}
		sh.mu.Unlock()
	}
	return evicted
}
