package ray

import "math"

// Vec is a 3-vector of float64, the workhorse of the tracer.
type Vec struct{ X, Y, Z float64 }

// V builds a vector.
func V(x, y, z float64) Vec { return Vec{x, y, z} }

// Add returns a + b.
func (a Vec) Add(b Vec) Vec { return Vec{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a Vec) Sub(b Vec) Vec { return Vec{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns a * s.
func (a Vec) Scale(s float64) Vec { return Vec{a.X * s, a.Y * s, a.Z * s} }

// Mul returns the component-wise product (color filtering).
func (a Vec) Mul(b Vec) Vec { return Vec{a.X * b.X, a.Y * b.Y, a.Z * b.Z} }

// Dot returns a · b.
func (a Vec) Dot(b Vec) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns a × b.
func (a Vec) Cross(b Vec) Vec {
	return Vec{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Len returns |a|.
func (a Vec) Len() float64 { return math.Sqrt(a.Dot(a)) }

// Norm returns a scaled to unit length (the zero vector is returned
// unchanged).
func (a Vec) Norm() Vec {
	l := a.Len()
	if l == 0 {
		return a
	}
	return a.Scale(1 / l)
}

// Reflect returns the reflection of direction d about unit normal n.
func (d Vec) Reflect(n Vec) Vec {
	return d.Sub(n.Scale(2 * d.Dot(n)))
}

// clamp01 clamps x into [0, 1].
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
