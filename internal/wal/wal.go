// Package wal implements the tiny append-only record log shared by the
// durable control-plane components (the clearinghouse journal and the
// PhishJobQ store).
//
// Each record is an independently gob-encoded blob framed by a varint
// length prefix. Independent encoding matters: a gob stream re-sends type
// definitions per *encoder*, so appending to an existing file with a fresh
// encoder after a restart would corrupt a single-decoder read of the
// concatenation. Framing each record lets any number of process
// incarnations append to the same file and still replay it.
//
// Replay tolerates a torn final record (a crash mid-append) by stopping at
// the first short or undecodable tail — everything before it is intact.
package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// maxRecord bounds a single record so a corrupt length prefix cannot make
// Replay attempt a multi-gigabyte allocation.
const maxRecord = 64 << 20

// Append frames and writes one gob-encoded record to w.
func Append(w io.Writer, rec any) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(rec); err != nil {
		return fmt.Errorf("wal: encode: %w", err)
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(body.Len()))
	if _, err := w.Write(hdr[:n]); err != nil {
		return fmt.Errorf("wal: write header: %w", err)
	}
	if _, err := w.Write(body.Bytes()); err != nil {
		return fmt.Errorf("wal: write body: %w", err)
	}
	return nil
}

// Replay reads records from r, decoding each into a fresh T and passing it
// to fn. A torn tail (truncated length prefix, short body, or a body that
// fails to decode at end-of-file) terminates replay silently: it is the
// expected residue of a crash mid-append. An error from fn aborts replay
// and is returned.
func Replay[T any](r io.Reader, fn func(*T) error) error {
	br := newByteReader(r)
	for {
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil // clean EOF or torn prefix — end of intact records
		}
		if size > maxRecord {
			return nil // corrupt tail
		}
		body := make([]byte, size)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil // torn body
		}
		rec := new(T)
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(rec); err != nil {
			return nil // torn or corrupt body
		}
		if err := fn(rec); err != nil {
			return fmt.Errorf("wal: replay: %w", err)
		}
	}
}

// byteReader adapts any io.Reader for binary.ReadUvarint without the
// buffering (and read-ahead) of bufio, so ReadFull below sees every byte.
type byteReader struct {
	r   io.Reader
	one [1]byte
}

func newByteReader(r io.Reader) *byteReader { return &byteReader{r: r} }

func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, io.EOF
		}
		return 0, err
	}
	return b.one[0], nil
}

func (b *byteReader) Read(p []byte) (int, error) { return b.r.Read(p) }
