package core_test

import (
	"testing"
	"time"

	"phish/internal/clearinghouse"
	"phish/internal/clock"
	"phish/internal/core"
	"phish/internal/model"
	"phish/internal/phishnet"
	"phish/internal/types"
	"phish/internal/wire"
)

// BenchmarkTaskThroughput measures the end-to-end cost of one task under
// the full Phish runtime — spawn, deque, join, synchronization — which is
// the per-task overhead behind Table 1's slowdown numbers. Reported as
// ns/task.
func BenchmarkTaskThroughput(b *testing.B) {
	// A chain program: each task spawns one successor until n runs out —
	// a pure spawn/execute/synch cycle with no fan-out noise.
	prog := core.NewProgram("chainbench")
	prog.Register("chain", func(c model.Ctx) {
		n := c.Int(0)
		if n == 0 {
			c.Return(int64(0))
			return
		}
		s := c.Successor("pass", 1)
		c.Spawn("chain", s.Cont(0), n-1)
	})
	prog.Register("pass", func(c model.Ctx) { c.Return(c.Int(0)) })

	const chain = 100000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fab := phishnet.NewFabric()
		spec := wire.JobSpec{ID: 1, Name: "chainbench", Program: "chainbench",
			RootFn: "chain", RootArgs: []types.Value{int64(chain)}}
		ch := clearinghouse.New(spec, fab.Attach(types.ClearinghouseID), clearinghouse.DefaultConfig())
		go ch.Run()
		w := core.NewWorker(1, 0, prog, fab.Attach(0), core.DefaultConfig(), clock.System)
		done := make(chan struct{})
		go func() { _ = w.Run(); close(done) }()
		start := time.Now()
		if _, err := ch.WaitResult(2 * time.Minute); err != nil {
			b.Fatal(err)
		}
		<-done
		elapsed := time.Since(start)
		tasks := w.Stats().TasksExecuted
		b.ReportMetric(float64(elapsed.Nanoseconds())/float64(tasks), "ns/task")
		ch.Stop()
		fab.Close()
	}
}

// BenchmarkStealRoundTrip measures one steal request/grant/adopt/confirm
// cycle over the in-memory fabric, the latency a thief pays per attempt.
func BenchmarkStealRoundTrip(b *testing.B) {
	// A two-worker rig where worker 0 has an endless supply of pinned...
	// rather: feed worker 0 a wide flat fan so worker 1 steals b.N times.
	prog := core.NewProgram("stealbench")
	prog.Register("fan", func(c model.Ctx) {
		n := c.Int(0)
		if n == 0 {
			c.Return(int64(1))
			return
		}
		s := c.Successor("sum", int(n))
		for i := int64(0); i < n; i++ {
			c.Spawn("spin", s.Cont(int(i)), int64(2000))
		}
	})
	prog.Register("spin", func(c model.Ctx) {
		x := uint64(3)
		for i := int64(0); i < c.Int(0); i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		if x == 0 {
			c.Return(int64(0))
			return
		}
		c.Return(int64(1))
	})
	prog.Register("sum", func(c model.Ctx) {
		var t int64
		for i := 0; i < c.NArgs(); i++ {
			t += c.Int(i)
		}
		c.Return(t)
	})

	fab := phishnet.NewFabric()
	defer fab.Close()
	spec := wire.JobSpec{ID: 1, Name: "stealbench", Program: "stealbench",
		RootFn: "fan", RootArgs: []types.Value{int64(4096)}}
	ch := clearinghouse.New(spec, fab.Attach(types.ClearinghouseID), clearinghouse.DefaultConfig())
	go ch.Run()
	defer ch.Stop()
	cfg := core.DefaultConfig()
	w0 := core.NewWorker(1, 0, prog, fab.Attach(0), cfg, clock.System)
	w1 := core.NewWorker(1, 1, prog, fab.Attach(1), cfg, clock.System)
	go func() { _ = w0.Run() }()
	go func() { _ = w1.Run() }()
	if _, err := ch.WaitResult(2 * time.Minute); err != nil {
		b.Fatal(err)
	}
	steals := w1.Stats().TasksStolen + w0.Stats().TasksStolen
	if steals == 0 {
		b.Skip("no steals this run")
	}
	b.ReportMetric(float64(steals), "steals-observed")
}
