// Package cluster simulates a network of workstations running the full
// Phish stack inside one process: a PhishJobQ pool, a PhishJobManager per
// workstation driven by a (usually synthetic) owner-idleness policy, and,
// per submitted job, a clearinghouse plus the workers that idle
// workstations start and reclaim. Workers exchange real protocol messages
// over an in-memory fabric; only the wire and the CPUs differ from the
// paper's SparcStation network (see DESIGN.md, substitutions).
//
// The cluster is the testbed for the macro-level scheduler: workstations
// joining an ongoing computation when their owner leaves, being reclaimed
// when the owner returns (with task migration), retiring when a job's
// parallelism shrinks, and crash/redo fault injection.
package cluster

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"phish/internal/clearinghouse"
	"phish/internal/clock"
	"phish/internal/core"
	"phish/internal/jobmanager"
	"phish/internal/jobq"
	"phish/internal/phishnet"
	"phish/internal/stats"
	"phish/internal/telemetry"
	"phish/internal/types"
	"phish/internal/wire"
)

// Options configures a simulated cluster.
type Options struct {
	// Clock drives the macro-level polling (JobManagers, clearinghouse
	// periodic updates). Workers always run in real time — they do real
	// work. Nil means the system clock.
	Clock clock.Clock
	// Worker tunes every worker's micro scheduler. The zero value takes
	// core.DefaultConfig with MaxStealFailures=25 so workers retire when
	// parallelism shrinks, as the paper's do.
	Worker core.Config
	// CH tunes every job's clearinghouse.
	CH clearinghouse.Config
	// JM tunes every workstation's job manager.
	JM jobmanager.Config
	// Latency injects one-way message latency on each job's fabric.
	Latency time.Duration
	// StateDir, when non-empty, makes the control plane durable: the
	// PhishJobQ pool is backed by StateDir/jobq.wal and each job's
	// clearinghouse journals to StateDir/job-<id>.jnl. Durability is what
	// enables the crash fault injectors — Job.CrashClearinghouse /
	// RestartClearinghouse and Cluster.StopJobQ / RestartJobQ.
	StateDir string
	// Faults, when non-nil, interposes deterministic fault injection
	// (drop/duplicate/delay/partition) on every job's fabric. Each job's
	// Faults instance is seeded Seed+jobID, so jobs get independent but
	// reproducible fault streams; reach it via Job.Faults for dynamic
	// partitions.
	Faults *phishnet.FaultPlan
	// Telemetry gives every worker and clearinghouse its own
	// telemetry.Metrics (latency histograms; workers piggyback theirs on
	// heartbeats either way). Off by default — workers then pay only the
	// nil checks. Scrape a job's rollup via Job.ServeMetrics or
	// Job.ClusterSnapshot.
	Telemetry bool
}

// Cluster is the simulated NOW.
type Cluster struct {
	opts Options
	clk  clock.Clock

	mu       sync.Mutex
	pool     *jobq.Pool
	poolPath string // non-empty when the pool is durable
	poolDown bool   // StopJobQ was called; requests fail until restart
	jobs     map[types.JobID]*Job
	stations []*Workstation
	closed   bool
}

// Job is one submitted parallel job and its per-job infrastructure.
type Job struct {
	ID   types.JobID
	Spec wire.JobSpec

	cluster *Cluster
	prog    *core.Program
	fabric  *phishnet.Fabric
	faults  *phishnet.Faults // nil without Options.Faults

	// The clearinghouse can be crashed and a recovered incarnation swapped
	// in (CrashClearinghouse/RestartClearinghouse); chMu guards the swap.
	chMu    sync.Mutex
	ch      *clearinghouse.Clearinghouse
	chPort  *phishnet.Port
	journal *clearinghouse.Journal // nil without Options.StateDir
	jnlPath string

	mu      sync.Mutex
	workers map[types.WorkerID]*core.Worker // every participant ever
	wdone   map[types.WorkerID]chan struct{}
	started time.Time
}

// Workstation is one simulated machine: a job manager plus its owner's
// policy.
type Workstation struct {
	ID  types.WorkstationID
	mgr *jobmanager.Manager
}

// New builds an empty cluster.
func New(opts Options) *Cluster {
	if opts.Clock == nil {
		opts.Clock = clock.System
	}
	if opts.Worker == (core.Config{}) {
		opts.Worker = core.DefaultConfig()
		opts.Worker.MaxStealFailures = 25
	}
	if opts.CH == (clearinghouse.Config{}) {
		opts.CH = clearinghouse.DefaultConfig()
	}
	if opts.CH.Clock == nil {
		opts.CH.Clock = opts.Clock
	}
	if opts.JM.Clock == nil {
		opts.JM.Clock = opts.Clock
	}
	c := &Cluster{
		opts: opts,
		clk:  opts.Clock,
		pool: jobq.NewPool(),
		jobs: make(map[types.JobID]*Job),
	}
	if opts.StateDir != "" {
		c.poolPath = filepath.Join(opts.StateDir, "jobq.wal")
		pool, err := jobq.NewDurablePool(c.poolPath)
		if err != nil {
			// The cluster is a test harness; an unusable StateDir is a
			// harness misconfiguration, surfaced like a duplicate Attach.
			panic(fmt.Sprintf("cluster: durable pool: %v", err))
		}
		c.pool = pool
	}
	return c
}

// Pool exposes the current PhishJobQ pool (diagnostics and tests). Note
// that RestartJobQ replaces the pool instance when it is durable.
func (c *Cluster) Pool() *jobq.Pool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pool
}

// StopJobQ simulates a PhishJobQ process crash: job requests start
// failing (JobManagers count them as SourceErrors and keep polling on
// their ordinary cadence) and the durable pool's log is closed, as a dead
// process's would be.
func (c *Cluster) StopJobQ() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.poolDown = true
	_ = c.pool.CloseStore()
}

// RestartJobQ brings the PhishJobQ back up. With a StateDir the pool is
// rebuilt from its on-disk log — exactly what a restarted phishjobq
// process does — so submitted jobs and their ids survive the outage;
// without one, the in-memory pool simply resumes.
func (c *Cluster) RestartJobQ() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.poolPath != "" {
		pool, err := jobq.NewDurablePool(c.poolPath)
		if err != nil {
			return err
		}
		c.pool = pool
	}
	c.poolDown = false
	return nil
}

// Submit places a job in the PhishJobQ. Idle workstations will pick it up;
// nothing runs until one does (start a workstation with an always-idle
// owner to mimic the paper's "the first worker starts on the submitting
// user's own workstation").
func (c *Cluster) Submit(prog *core.Program, rootFn string, rootArgs []types.Value) *Job {
	c.mu.Lock()
	defer c.mu.Unlock()
	spec := wire.JobSpec{
		Name:     prog.Name,
		Program:  prog.Name,
		RootFn:   rootFn,
		RootArgs: rootArgs,
	}
	id := c.pool.Submit(spec)
	spec.ID = id

	fab := phishnet.NewFabric()
	if c.opts.Latency > 0 {
		fab.SetLatency(c.opts.Latency)
	}
	var faults *phishnet.Faults
	if c.opts.Faults != nil {
		plan := *c.opts.Faults
		plan.Seed += int64(id)
		faults = phishnet.NewFaults(plan)
		fab.SetFaults(faults)
	}
	chCfg := c.opts.CH
	if c.opts.Telemetry {
		chCfg.Metrics = telemetry.NewMetrics()
	}
	var jnl *clearinghouse.Journal
	jnlPath := ""
	if c.opts.StateDir != "" {
		jnlPath = filepath.Join(c.opts.StateDir, fmt.Sprintf("job-%d.jnl", id))
		var err error
		jnl, err = clearinghouse.OpenJournal(jnlPath)
		if err != nil {
			panic(fmt.Sprintf("cluster: clearinghouse journal: %v", err))
		}
		chCfg.Journal = jnl
	}
	port := fab.Attach(types.ClearinghouseID)
	ch := clearinghouse.New(spec, port, chCfg)
	go ch.Run()

	j := &Job{
		ID:      id,
		Spec:    spec,
		cluster: c,
		prog:    prog,
		fabric:  fab,
		faults:  faults,
		ch:      ch,
		chPort:  port,
		journal: jnl,
		jnlPath: jnlPath,
		workers: make(map[types.WorkerID]*core.Worker),
		wdone:   make(map[types.WorkerID]chan struct{}),
		started: time.Now(),
	}
	c.jobs[id] = j
	// Retire the job from the pool the moment its result is in. The wait
	// polls so it survives clearinghouse restarts, and the Done retries
	// through PhishJobQ outages — a finished job must leave the (possibly
	// restarted) pool, or idle workstations would keep joining it.
	go func() {
		for {
			if _, err := j.Wait(100 * time.Millisecond); err == nil {
				break
			}
			if c.isClosed() {
				return
			}
		}
		for {
			c.mu.Lock()
			pool, down, closed := c.pool, c.poolDown, c.closed
			c.mu.Unlock()
			if closed {
				return
			}
			if !down {
				pool.Done(id)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	return j
}

func (c *Cluster) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// AddWorkstation adds a machine whose owner follows policy and starts its
// PhishJobManager.
func (c *Cluster) AddWorkstation(policy jobmanager.Policy) *Workstation {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := types.WorkstationID(len(c.stations) + 1)
	mgr := jobmanager.New(id, policy, poolSource{c}, &runner{c: c}, c.opts.JM)
	ws := &Workstation{ID: id, mgr: mgr}
	c.stations = append(c.stations, ws)
	go mgr.Run()
	return ws
}

// Stats exposes the workstation's macro-level counters.
func (w *Workstation) Stats() *jobmanager.Stats { return w.mgr.Stats() }

// Stop halts the workstation's job manager (reclaiming any worker).
func (w *Workstation) Stop() { w.mgr.Stop() }

// Close tears the whole cluster down.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	stations := append([]*Workstation(nil), c.stations...)
	jobs := make([]*Job, 0, len(c.jobs))
	for _, j := range c.jobs {
		jobs = append(jobs, j)
	}
	c.mu.Unlock()
	for _, ws := range stations {
		ws.Stop()
	}
	for _, j := range jobs {
		j.chMu.Lock()
		j.ch.Stop()
		if j.journal != nil {
			_ = j.journal.Close()
		}
		j.chMu.Unlock()
		j.fabric.Close()
	}
}

// clearinghouse returns the job's current clearinghouse incarnation.
func (j *Job) clearinghouse() *clearinghouse.Clearinghouse {
	j.chMu.Lock()
	defer j.chMu.Unlock()
	return j.ch
}

// Faults returns the job's fault injector (nil without Options.Faults).
func (j *Job) Faults() *phishnet.Faults { return j.faults }

// Wait blocks until the job's result arrives. It polls the current
// clearinghouse in short steps rather than parking on one incarnation, so
// a wait in flight survives CrashClearinghouse/RestartClearinghouse.
func (j *Job) Wait(timeout time.Duration) (types.Value, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		step := 50 * time.Millisecond
		if timeout > 0 {
			left := time.Until(deadline)
			if left <= 0 {
				return nil, fmt.Errorf("cluster: job %d: no result after %v", j.ID, timeout)
			}
			if left < step {
				step = left
			}
		}
		if v, err := j.clearinghouse().WaitResult(step); err == nil {
			return v, nil
		}
	}
}

// Done reports whether the job has completed.
func (j *Job) Done() bool { return j.clearinghouse().Done() }

// Output returns the job's clearinghouse-buffered output.
func (j *Job) Output() string { return j.clearinghouse().Output() }

// LiveWorkers lists currently participating worker ids.
func (j *Job) LiveWorkers() []types.WorkerID { return j.clearinghouse().LiveWorkers() }

// RootHost names the worker hosting the root task's lineage (NoWorker while
// a respawn is armed). Crashing it costs a full root redo; draining or
// reclaiming it merely migrates the lineage.
func (j *Job) RootHost() types.WorkerID { return j.clearinghouse().RootHost() }

// CrashClearinghouse kills the job's clearinghouse abruptly (fault
// injection): no shutdown messages, the fabric port detaches so worker
// traffic to it fails, and the journal file is closed the way a dead
// process's would be. Workers notice the send failures and enter their
// jittered re-register loop until RestartClearinghouse brings one back.
func (j *Job) CrashClearinghouse() {
	j.chMu.Lock()
	defer j.chMu.Unlock()
	j.ch.Stop()
	_ = j.chPort.Close()
	if j.journal != nil {
		_ = j.journal.Close()
	}
}

// RestartClearinghouse replays the journal and swaps in a recovered
// clearinghouse incarnation — the simulated equivalent of restarting the
// process on the same host. Re-registering workers resync against the
// recovered membership; a worker that died during the outage is declared
// crashed by the heartbeat timeout and its work redone. Requires
// Options.StateDir (the journal is what recovery reads).
func (j *Job) RestartClearinghouse() error {
	j.chMu.Lock()
	defer j.chMu.Unlock()
	if j.jnlPath == "" {
		return fmt.Errorf("cluster: job %d has no journal (set Options.StateDir)", j.ID)
	}
	rec, err := clearinghouse.ReplayJournal(j.jnlPath)
	if err != nil {
		return err
	}
	jnl, err := clearinghouse.OpenJournal(j.jnlPath)
	if err != nil {
		return err
	}
	cfg := j.cluster.opts.CH
	cfg.Journal = jnl
	if j.cluster.opts.Telemetry {
		cfg.Metrics = telemetry.NewMetrics()
	}
	port := j.fabric.Attach(types.ClearinghouseID)
	ch := clearinghouse.NewFromRecovery(rec, port, cfg)
	go ch.Run()
	j.ch, j.chPort, j.journal = ch, port, jnl
	return nil
}

// ClusterSnapshot returns the current clearinghouse incarnation's
// whole-job telemetry rollup (latest piggybacked worker reports).
func (j *Job) ClusterSnapshot() telemetry.ClusterSnapshot {
	return j.clearinghouse().ClusterSnapshot()
}

// ServeMetrics starts a telemetry HTTP endpoint for this job, serving the
// clearinghouse rollup at /metrics (Prometheus text) and /cluster.json
// (what phishtop polls). The snapshot goes through the current
// clearinghouse incarnation, so the endpoint survives
// CrashClearinghouse/RestartClearinghouse. Close the returned server when
// done.
func (j *Job) ServeMetrics(addr string) (*telemetry.Server, error) {
	s, err := telemetry.NewServer(addr)
	if err != nil {
		return nil, err
	}
	snap := func() telemetry.ClusterSnapshot { return j.ClusterSnapshot() }
	s.Handle("/metrics", telemetry.ClusterMetricsHandler(snap))
	s.Handle("/cluster.json", telemetry.ClusterJSONHandler(snap))
	return s, nil
}

// WorkerStats snapshots every participant the job ever had.
func (j *Job) WorkerStats() []stats.Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]stats.Snapshot, 0, len(j.workers))
	for _, w := range j.workers {
		out = append(out, w.Stats())
	}
	return out
}

// Totals aggregates WorkerStats the way the paper's Table 2 does.
func (j *Job) Totals() stats.Snapshot { return stats.JobTotals(j.WorkerStats()) }

// Crash abruptly kills one live worker (fault injection): no migration,
// no unregister. Returns false if the worker is not currently alive.
func (j *Job) Crash(id types.WorkerID) bool {
	j.mu.Lock()
	w, ok := j.workers[id]
	j.mu.Unlock()
	if !ok {
		return false
	}
	w.Crash()
	return true
}

// ReclaimWorker simulates the workstation owner's return for one live
// worker (fault/churn injection): the worker migrates its tasks to another
// participant and unregisters. Returns false if the worker was never part
// of the job.
func (j *Job) ReclaimWorker(id types.WorkerID) bool {
	j.mu.Lock()
	w, ok := j.workers[id]
	j.mu.Unlock()
	if !ok {
		return false
	}
	w.Reclaim()
	return true
}

// DrainWorker starts a planned drain of one worker: its in-flight task is
// offered preemption at its next Yield, the deque (with checkpoints) is
// handed to a clearinghouse-chosen victim, and the worker unregisters.
// Returns false if the worker was never part of the job.
func (j *Job) DrainWorker(id types.WorkerID) bool {
	j.mu.Lock()
	w, ok := j.workers[id]
	j.mu.Unlock()
	if !ok {
		return false
	}
	w.Drain()
	return true
}

// WorkerDone returns a channel closed when the worker's Run loop has
// exited (nil for ids the job never started) — how tests and benchmarks
// time a drain handoff end to end.
func (j *Job) WorkerDone(id types.WorkerID) <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.wdone[id]
}

// poolSource adapts the in-process pool to the manager's JobSource. It
// goes through the cluster on every request so it tracks pool swaps
// (RestartJobQ) and surfaces an error while the PhishJobQ is down — the
// managers treat that as "busy, poll later".
type poolSource struct{ c *Cluster }

func (s poolSource) Request(types.WorkstationID) (wire.JobSpec, bool, error) {
	s.c.mu.Lock()
	pool, down := s.c.pool, s.c.poolDown
	s.c.mu.Unlock()
	if down {
		return wire.JobSpec{}, false, fmt.Errorf("cluster: jobq is down")
	}
	spec, ok := pool.Request()
	return spec, ok, nil
}

// runner starts simulated worker processes.
type runner struct{ c *Cluster }

// workerProc adapts a core.Worker to the manager's WorkerProc.
type workerProc struct {
	w    *core.Worker
	done chan struct{}
}

func (p *workerProc) Reclaim()                      { p.w.Reclaim() }
func (p *workerProc) Done() <-chan struct{}         { return p.done }
func (p *workerProc) LeaveReason() wire.LeaveReason { return p.w.LeaveReason() }

func (r *runner) Start(spec wire.JobSpec, id types.WorkerID) (jobmanager.WorkerProc, error) {
	r.c.mu.Lock()
	j, ok := r.c.jobs[spec.ID]
	closed := r.c.closed
	r.c.mu.Unlock()
	if !ok || closed {
		return nil, fmt.Errorf("cluster: job %d is gone", spec.ID)
	}
	if j.Done() {
		return nil, fmt.Errorf("cluster: job %d already complete", spec.ID)
	}
	port := j.fabric.Attach(id)
	wcfg := r.c.opts.Worker
	if r.c.opts.Telemetry {
		wcfg.Metrics = telemetry.NewMetrics()
	}
	var ckl *core.CkptLog
	if dir := r.c.opts.StateDir; dir != "" {
		// Best-effort: a worker whose checkpoint WAL cannot be opened
		// still runs, it just cannot republish blobs after a process
		// restart.
		if l, err := core.OpenCkptLog(filepath.Join(dir, fmt.Sprintf("worker-%d.ckpt", id))); err == nil {
			ckl = l
			wcfg.CkptLog = l
		}
	}
	w := core.NewWorker(spec.ID, id, j.prog, port, wcfg, clock.System)
	proc := &workerProc{w: w, done: make(chan struct{})}
	j.mu.Lock()
	j.workers[id] = w
	j.wdone[id] = proc.done
	j.mu.Unlock()
	go func() {
		defer close(proc.done)
		_ = w.Run()
		if ckl != nil {
			_ = ckl.Close()
		}
	}()
	return proc, nil
}

// DebugDump renders every participant's scheduler state; for tests only,
// after the workers have been stopped.
func (j *Job) DebugDump() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out string
	for _, w := range j.workers {
		out += w.DebugDump()
	}
	return out
}

// CrashAll kills every worker the job ever had (post-mortem freezing).
func (j *Job) CrashAll() {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, w := range j.workers {
		w.Crash()
	}
}
