package cluster

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"time"

	"phish/internal/apps/pfold"
	"phish/internal/core"
	"phish/internal/idlesim"
	"phish/internal/model"
	"phish/internal/phishnet"
	"phish/internal/types"
)

// migrateProg is a checkpointable workload for migration tests: "fan"
// spreads k "chunks" tasks of n slow steps each into one sum successor.
// Each chunk checkpoints (i, partial sum) after every step, so a drain or
// crash mid-chunk can resume from the blob instead of redoing the steps.
func migrateProg() *core.Program {
	p := core.NewProgram("migratetest")
	p.Register("chunks", func(c model.Ctx) {
		n := c.Int(0)
		var i, sum int64
		if ck := c.Checkpoint(); len(ck) == 16 {
			i = int64(binary.BigEndian.Uint64(ck))
			sum = int64(binary.BigEndian.Uint64(ck[8:]))
		}
		for ; i < n; i++ {
			sum += i
			time.Sleep(time.Millisecond)
			var blob [16]byte
			binary.BigEndian.PutUint64(blob[:8], uint64(i+1))
			binary.BigEndian.PutUint64(blob[8:], uint64(sum))
			if c.Yield(blob[:]) {
				return
			}
		}
		c.Return(sum)
	})
	p.Register("fan", func(c model.Ctx) {
		k, n := c.Int(0), c.Int(1)
		s := c.Successor("sum", int(k))
		for i := int64(0); i < k; i++ {
			c.Spawn("chunks", s.Cont(int(i)), n)
		}
	})
	p.Register("sum", func(c model.Ctx) {
		var total int64
		for i := 0; i < c.NArgs(); i++ {
			total += c.Int(i)
		}
		c.Return(total)
	})
	return p
}

// fanSum is the exact fault-free answer of migrateProg's "fan" root.
func fanSum(k, n int64) int64 { return k * (n * (n - 1) / 2) }

// TestDrainRacesClearinghouseCrash races a planned drain against a
// clearinghouse outage, in both orders. When the clearinghouse is already
// dead the drainer cannot be assigned a victim and must fall back to a
// direct handoff or to checkpoint-recovery redo; when the crash lands
// mid-drain either side may win. Both ways, every task must complete
// exactly once — the summed result is exact, neither lost nor doubled.
func TestDrainRacesClearinghouseCrash(t *testing.T) {
	const k, n = 4, 200
	for _, tc := range []struct {
		name       string
		seed       int64
		crashFirst bool
	}{
		{"crash-then-drain", 20260807, true},
		{"drain-then-crash", 20260808, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := recoveryOpts(t, tc.seed)
			opts.Worker.CkptEvery = 10 * time.Millisecond
			c := New(opts)
			defer c.Close()
			for i := 0; i < 3; i++ {
				c.AddWorkstation(idlesim.Always{})
			}
			j := c.Submit(migrateProg(), "fan", []types.Value{int64(k), int64(n)})

			// Let the job spread and checkpoint before pulling the rug.
			deadline := time.Now().Add(15 * time.Second)
			for time.Now().Before(deadline) && !j.Done() {
				if len(j.LiveWorkers()) >= 2 && j.Totals().CkptSaves >= 10 {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			live := j.LiveWorkers()
			if len(live) < 2 {
				t.Fatalf("job never spread: live workers %v", live)
			}
			target := live[len(live)-1]
			if tc.crashFirst {
				j.CrashClearinghouse()
				j.DrainWorker(target)
			} else {
				j.DrainWorker(target)
				j.CrashClearinghouse()
			}
			time.Sleep(100 * time.Millisecond)
			if err := j.RestartClearinghouse(); err != nil {
				t.Fatal(err)
			}

			v, err := j.Wait(120 * time.Second)
			if err != nil {
				t.Fatalf("job never finished after the drain/crash race: %v", err)
			}
			if got, want := v.(int64), fanSum(k, n); got != want {
				t.Errorf("result = %d, want %d (a task was lost or double-counted)", got, want)
			}
			tot := j.Totals()
			if tot.CkptSaves < 1 {
				t.Errorf("no checkpoints were ever saved: %+v", tot)
			}
			t.Logf("%s: migrated=%d preempted=%d saves=%d resumes=%d",
				tc.name, tot.TasksMigrated, tot.TasksPreempted, tot.CkptSaves, tot.CkptResumes)
		})
	}
}

// TestMigrationChurnSoak hammers checkpointable jobs with seeded
// reclaim/drain churn (plus the occasional outright crash) while a fault
// fabric duplicates and delay-reorders messages. Work must keep flowing
// between workers — migrations actually happen, checkpoints actually save —
// and every job must still produce the exact answer.
func TestMigrationChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; skipped with -short")
	}
	rng := rand.New(rand.NewSource(20260809))
	opts := fastOpts()
	opts.StateDir = t.TempDir()
	opts.Worker.CkptEvery = 10 * time.Millisecond
	opts.Faults = &phishnet.FaultPlan{
		Seed:        20260809,
		Duplicate:   0.05,
		Delay:       300 * time.Microsecond,
		DelayJitter: 300 * time.Microsecond,
	}
	c := New(opts)
	defer c.Close()
	for i := 0; i < 6; i++ {
		c.AddWorkstation(idlesim.Always{})
	}

	const k, n = 8, 150
	jobA := c.Submit(migrateProg(), "fan", []types.Value{int64(k), int64(n)})
	jobB := c.Submit(pfold.Program(), pfold.Root, pfold.RootArgs(13, 5))
	jobs := []*Job{jobA, jobB}

	// The gremlin churns random live workers: mostly planned drains and
	// owner reclaims (migration paths), sometimes an outright crash (redo
	// path, which should pick up published checkpoints).
	stopGremlin := make(chan struct{})
	gremlinDone := make(chan struct{})
	go func() {
		defer close(gremlinDone)
		for {
			select {
			case <-stopGremlin:
				return
			case <-time.After(time.Duration(40+rng.Intn(120)) * time.Millisecond):
			}
			j := jobs[rng.Intn(len(jobs))]
			live := j.LiveWorkers()
			if len(live) < 2 {
				continue
			}
			id := live[rng.Intn(len(live))]
			switch rng.Intn(4) {
			case 0, 1:
				j.DrainWorker(id)
			case 2:
				j.ReclaimWorker(id)
			default:
				j.Crash(id)
			}
		}
	}()

	vA, errA := jobA.Wait(180 * time.Second)
	vB, errB := jobB.Wait(180 * time.Second)
	close(stopGremlin)
	<-gremlinDone
	if errA != nil {
		t.Fatalf("chunk job never finished under churn: %v", errA)
	}
	if errB != nil {
		t.Fatalf("pfold job never finished under churn: %v", errB)
	}
	if got, want := vA.(int64), fanSum(k, n); got != want {
		t.Errorf("chunk result = %d, want %d", got, want)
	}
	if got := pfold.Foldings(vB.([]int64)); got != 324932 {
		t.Errorf("pfold foldings = %d, want 324932", got)
	}

	tot := jobA.Totals()
	if tot.TasksMigrated < 1 {
		t.Errorf("churn never migrated a task: %+v", tot)
	}
	if tot.CkptSaves < 1 {
		t.Errorf("no checkpoints were ever saved: %+v", tot)
	}
	t.Logf("chunk job: migrated=%d preempted=%d saves=%d resumes=%d executed=%d",
		tot.TasksMigrated, tot.TasksPreempted, tot.CkptSaves, tot.CkptResumes, tot.TasksExecuted)
}
