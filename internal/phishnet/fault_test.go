package phishnet

import (
	"testing"
	"time"

	"phish/internal/types"
	"phish/internal/wire"
)

func TestFaultsJudgeDeterministic(t *testing.T) {
	plan := FaultPlan{Seed: 42, Drop: 0.3, Duplicate: 0.2, Delay: time.Millisecond, DelayJitter: time.Millisecond}
	a := NewFaults(plan)
	b := NewFaults(plan)
	for i := 0; i < 200; i++ {
		va, vb := a.Judge(1, 2), b.Judge(1, 2)
		if va != vb {
			t.Fatalf("call %d: verdicts diverge: %+v vs %+v", i, va, vb)
		}
	}
	// Distinct ordered pairs draw from unrelated streams: over 200 calls
	// with 30%% drop probability, (1,2) and (2,1) agreeing everywhere would
	// mean the streams are correlated.
	c, d := NewFaults(plan), NewFaults(plan)
	same := 0
	for i := 0; i < 200; i++ {
		if c.Judge(1, 2).Drop == d.Judge(2, 1).Drop {
			same++
		}
	}
	if same == 200 {
		t.Error("pair (1,2) and (2,1) made identical drop decisions; streams are not independent")
	}
}

func TestFaultsPartitionDoesNotShiftStream(t *testing.T) {
	// A partition healing mid-run must not change the pair's subsequent
	// probabilistic decisions: Judge consumes the same number of draws
	// whether or not the pair is cut.
	plan := FaultPlan{Seed: 7, Drop: 0.25, Duplicate: 0.25}
	ref := NewFaults(plan)
	cut := NewFaults(plan)
	var refV, cutV []Verdict
	for i := 0; i < 100; i++ {
		refV = append(refV, ref.Judge(3, 4))
	}
	for i := 0; i < 100; i++ {
		if i == 20 {
			cut.Partition(3, 4)
		}
		if i == 40 {
			cut.Heal(3, 4)
		}
		cutV = append(cutV, cut.Judge(3, 4))
	}
	for i := 0; i < 100; i++ {
		if i >= 20 && i < 40 {
			if !cutV[i].Drop {
				t.Fatalf("call %d: partitioned pair not dropped", i)
			}
			continue
		}
		if refV[i] != cutV[i] {
			t.Fatalf("call %d: healing the partition shifted the stream: %+v vs %+v", i, refV[i], cutV[i])
		}
	}
}

func TestFaultsIsolateCoversLatePeers(t *testing.T) {
	f := NewFaults(FaultPlan{Seed: 1})
	f.Isolate(5)
	if !f.Judge(5, 99).Drop || !f.Judge(99, 5).Drop {
		t.Error("isolated worker still exchanging messages")
	}
	if f.Judge(98, 99).Drop {
		t.Error("bystander pair dropped by an isolation")
	}
	f.Rejoin(5)
	if f.Judge(5, 99).Drop && f.Partitioned(5, 99) {
		t.Error("Rejoin left the wildcard cut in place")
	}
}

func TestFabricFaultPartitionSurfacesAsSendError(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	fl := NewFaults(FaultPlan{Seed: 3})
	f.SetFaults(fl)
	a := f.Attach(1)
	b := f.Attach(2)

	fl.Partition(1, 2)
	if err := a.Send(&wire.Envelope{From: 1, To: 2}); err != ErrUnknownPeer {
		t.Errorf("partitioned send: err = %v, want ErrUnknownPeer", err)
	}
	fl.Heal(1, 2)
	if err := a.Send(&wire.Envelope{From: 1, To: 2, Payload: wire.Heartbeat{Worker: 1}}); err != nil {
		t.Fatalf("healed send: %v", err)
	}
	recvOne(t, b, time.Second)
}

func TestFabricFaultDuplicateDeliversTwice(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	f.SetFaults(NewFaults(FaultPlan{Seed: 3, Duplicate: 1.0}))
	a := f.Attach(1)
	b := f.Attach(2)
	if err := a.Send(&wire.Envelope{From: 1, To: 2, Payload: wire.Heartbeat{Worker: 1}}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b, time.Second)
	recvOne(t, b, time.Second) // the duplicate
	select {
	case <-b.Recv():
		t.Error("more than two copies delivered")
	case <-time.After(20 * time.Millisecond):
	}
}

// TestUDPBackoffGiveUp blackholes a peer at the datagram level and checks
// the reliability layer's full failure arc: retransmit intervals back off
// (doubling, jittered ±25%), the frame is eventually abandoned, and the
// peer's death is reported exactly once.
func TestUDPBackoffGiveUp(t *testing.T) {
	a, err := ListenUDP(1, 1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenUDP(1, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.SetPeer(2, b.LocalAddr())

	const tries = 5
	a.SetRetransmit(20*time.Millisecond, 300*time.Millisecond, tries)
	fl := NewFaults(FaultPlan{Seed: 11})
	fl.RecordDrops(true)
	fl.Isolate(2) // every datagram a→2 vanishes
	a.SetFaults(fl)

	downCh := make(chan types.WorkerID, 4)
	a.SetPeerDown(func(id types.WorkerID) { downCh <- id })

	if err := a.Send(&wire.Envelope{To: 2, Payload: wire.Heartbeat{Worker: 1}}); err != nil {
		t.Fatal(err)
	}

	select {
	case id := <-downCh:
		if id != 2 {
			t.Fatalf("peer-down for %d, want 2", id)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("retransmits never gave up")
	}
	// Exactly once: no second report, even though the retransmit loop keeps
	// running.
	select {
	case id := <-downCh:
		t.Fatalf("duplicate peer-down report for %d", id)
	case <-time.After(200 * time.Millisecond):
	}

	// The drop log is the datagram trace: one original send plus `tries`
	// retransmits, with backed-off spacing. Jitter is ±25%, so the k+2-th
	// interval (4× the base) always exceeds the k-th even with polling
	// slop.
	drops := fl.Drops()
	if len(drops) != tries+1 {
		t.Fatalf("recorded %d drops, want %d (1 send + %d retransmits)", len(drops), tries+1, tries)
	}
	var intervals []time.Duration
	for i := 1; i < len(drops); i++ {
		intervals = append(intervals, drops[i].At.Sub(drops[i-1].At))
	}
	for i := 2; i < len(intervals); i++ {
		if intervals[i] <= intervals[i-2] {
			t.Errorf("retransmit intervals not backing off: %v", intervals)
			break
		}
	}

	// Hearing from the peer again rearms the report.
	b.SetPeer(1, a.LocalAddr())
	fl.Rejoin(2)
	if err := b.Send(&wire.Envelope{To: 1, Payload: wire.Heartbeat{Worker: 2}}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, a, 2*time.Second)
	fl.Isolate(2)
	if err := a.Send(&wire.Envelope{To: 2, Payload: wire.Heartbeat{Worker: 1}}); err != nil {
		t.Fatal(err)
	}
	select {
	case id := <-downCh:
		if id != 2 {
			t.Fatalf("second peer-down for %d, want 2", id)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("peer-down did not rearm after the peer spoke")
	}
}

// TestUDPFaultDropsAreRetransmitted injects heavy probabilistic loss and
// checks the reliability layer still delivers everything exactly once.
func TestUDPFaultDropsAreRetransmitted(t *testing.T) {
	a, _ := ListenUDP(1, 1, "127.0.0.1:0")
	defer a.Close()
	b, _ := ListenUDP(1, 2, "127.0.0.1:0")
	defer b.Close()
	a.SetPeer(2, b.LocalAddr())
	b.SetPeer(1, a.LocalAddr())
	a.SetRetransmit(5*time.Millisecond, 50*time.Millisecond, 50)
	b.SetRetransmit(5*time.Millisecond, 50*time.Millisecond, 50)
	fl := NewFaults(FaultPlan{Seed: 99, Drop: 0.4, Duplicate: 0.2})
	a.SetFaults(fl)
	b.SetFaults(fl)

	const n = 50
	for i := 0; i < n; i++ {
		if err := a.Send(&wire.Envelope{To: 2, Payload: wire.Heartbeat{Worker: types.WorkerID(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[uint64]bool)
	deadline := time.After(20 * time.Second)
	for len(seen) < n {
		select {
		case env, ok := <-b.Recv():
			if !ok {
				t.Fatal("closed early")
			}
			if seen[env.Seq] {
				t.Fatalf("duplicate seq %d delivered above the dedup window", env.Seq)
			}
			seen[env.Seq] = true
		case <-deadline:
			t.Fatalf("only %d/%d messages survived 40%% loss", len(seen), n)
		}
	}
}

// TestGrayFaultShapes: asymmetric loss applies per direction, the latency
// ramp grows from zero toward its cap, and ClearGray/HealAll heal.
func TestGrayFaultShapes(t *testing.T) {
	f := NewFaults(FaultPlan{Seed: 3})
	f.SetGray(1, GrayFault{LossOut: 1}) // everything 1 sends is lost
	if v := f.Judge(1, 2); !v.Drop {
		t.Fatal("LossOut=1 did not drop an outbound message")
	}
	if v := f.Judge(2, 1); v.Drop {
		t.Fatal("LossOut dropped an inbound message (asymmetry broken)")
	}
	f.SetGray(1, GrayFault{LossIn: 1})
	if v := f.Judge(2, 1); !v.Drop {
		t.Fatal("LossIn=1 did not drop an inbound message")
	}
	if v := f.Judge(1, 2); v.Drop {
		t.Fatal("LossIn dropped an outbound message (asymmetry broken)")
	}

	// Latency ramp: installed with Start in the past, the ramp is partway
	// up; far past, it is capped.
	f.HealAll()
	f.SetGray(1, GrayFault{Start: time.Now().Add(-5 * time.Second),
		RampOver: 10 * time.Second, MaxDelay: 100 * time.Millisecond})
	v := f.Judge(1, 2)
	if v.Delay < 30*time.Millisecond || v.Delay > 70*time.Millisecond {
		t.Fatalf("mid-ramp delay = %v, want ~50ms", v.Delay)
	}
	f.SetGray(1, GrayFault{Start: time.Now().Add(-time.Minute),
		RampOver: 10 * time.Second, MaxDelay: 100 * time.Millisecond})
	if v := f.Judge(1, 2); v.Delay != 100*time.Millisecond {
		t.Fatalf("post-ramp delay = %v, want the 100ms cap", v.Delay)
	}
	f.ClearGray(1)
	if v := f.Judge(1, 2); v.Delay != 0 || v.Drop {
		t.Fatalf("verdict after ClearGray = %+v, want clean", v)
	}
}
