// Package clock abstracts time so the macro-level scheduler's long polling
// intervals — the paper's 5-minute owner check, 30-second job-request
// retry, 2-second reclaim check, and 2-minute clearinghouse update — can be
// driven in microseconds by tests and by the simulated cluster.
package clock

import (
	"sort"
	"sync"
	"time"
)

// Clock is the subset of the time package the runtime depends on.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the then-current time once d
	// has elapsed.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks for d.
	Sleep(d time.Duration)
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
}

// Real is the system clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// System is a shared Real clock.
var System Clock = Real{}

// Fake is a manually advanced clock. Goroutines blocked in After/Sleep are
// released when Advance moves the clock past their deadlines. The zero
// value is not usable; call NewFake.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*waiter
}

type waiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewFake returns a Fake clock starting at a fixed, arbitrary epoch.
func NewFake() *Fake {
	return &Fake{now: time.Date(1994, time.August, 2, 0, 0, 0, 0, time.UTC)}
}

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Since implements Clock.
func (f *Fake) Since(t time.Time) time.Duration {
	return f.Now().Sub(t)
}

// After implements Clock. The returned channel has capacity 1, so Advance
// never blocks delivering to an abandoned timer.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	w := &waiter{deadline: f.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		w.ch <- f.now
		return w.ch
	}
	f.waiters = append(f.waiters, w)
	return w.ch
}

// Sleep implements Clock.
func (f *Fake) Sleep(d time.Duration) { <-f.After(d) }

// Advance moves the clock forward by d, firing every timer whose deadline
// is reached, in deadline order.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	target := f.now.Add(d)
	// Fire in deadline order so that cascaded timers behave sensibly.
	sort.Slice(f.waiters, func(i, j int) bool {
		return f.waiters[i].deadline.Before(f.waiters[j].deadline)
	})
	remaining := f.waiters[:0]
	fired := make([]*waiter, 0)
	for _, w := range f.waiters {
		if !w.deadline.After(target) {
			fired = append(fired, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	f.waiters = remaining
	f.now = target
	f.mu.Unlock()
	for _, w := range fired {
		w.ch <- w.deadline
	}
}

// Waiters returns the number of goroutines currently blocked on this clock.
// Tests use it to know when the system under test has reached its next
// poll before advancing time.
func (f *Fake) Waiters() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.waiters)
}

// BlockUntilWaiters spins until at least n timers are pending or the
// (real-time) timeout elapses; it reports whether the condition was met.
func (f *Fake) BlockUntilWaiters(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if f.Waiters() >= n {
			return true
		}
		time.Sleep(50 * time.Microsecond)
	}
	return f.Waiters() >= n
}

var _ Clock = (*Fake)(nil)
var _ Clock = Real{}
