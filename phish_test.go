package phish_test

import (
	"sync"
	"testing"
	"time"

	"phish"
	"phish/internal/apps/fib"
	"phish/internal/clearinghouse"
	"phish/internal/clock"
	"phish/internal/core"
	"phish/internal/phishnet"
	"phish/internal/trace"
	"phish/internal/types"
	"phish/internal/wire"
)

func TestRunLocalDefaults(t *testing.T) {
	res, err := phish.RunLocal(fib.Program(), fib.Root, fib.RootArgs(12), phish.LocalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Value.(int64), fib.Serial(12); got != want {
		t.Errorf("fib(12) = %d, want %d", got, want)
	}
	if len(res.Workers) != 1 {
		t.Errorf("default workers = %d, want 1", len(res.Workers))
	}
	if res.Totals.TasksExecuted != fib.TaskCount(12) {
		t.Errorf("tasks = %d, want %d", res.Totals.TasksExecuted, fib.TaskCount(12))
	}
}

func TestRunLocalUnknownRootFails(t *testing.T) {
	if _, err := phish.RunLocal(fib.Program(), "no-such-fn", nil, phish.LocalOptions{}); err == nil {
		t.Fatal("unknown root function accepted")
	}
}

func TestRunLocalWithLatency(t *testing.T) {
	// 1 ms of injected one-way latency must not change the answer — only
	// a handful of messages are sent (the paper's whole point).
	res, err := phish.RunLocal(fib.Program(), fib.Root, fib.RootArgs(16),
		phish.LocalOptions{Workers: 3, Latency: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Value.(int64), fib.Serial(16); got != want {
		t.Errorf("fib(16) = %d, want %d", got, want)
	}
}

func TestSpeedupFromTimes(t *testing.T) {
	t1 := 100 * time.Second
	perfect := []time.Duration{25 * time.Second, 25 * time.Second, 25 * time.Second, 25 * time.Second}
	if got := phish.SpeedupFromTimes(t1, perfect); got != 4 {
		t.Errorf("perfect 4-way speedup = %v, want 4", got)
	}
	half := []time.Duration{50 * time.Second, 50 * time.Second, 50 * time.Second, 50 * time.Second}
	if got := phish.SpeedupFromTimes(t1, half); got != 2 {
		t.Errorf("half-efficient speedup = %v, want 2", got)
	}
	if got := phish.SpeedupFromTimes(t1, nil); got != 0 {
		t.Errorf("empty speedup = %v, want 0", got)
	}
}

func TestTaskPanicDoesNotKillProcess(t *testing.T) {
	prog := phish.NewProgram("panicky")
	prog.Register("boom", func(c phish.TaskCtx) { panic("kaboom") })
	_, err := phish.RunLocal(prog, "boom", nil, phish.LocalOptions{Workers: 1, Timeout: 300 * time.Millisecond})
	if err == nil {
		t.Fatal("a job whose only task panics cannot succeed")
	}
}

// TestUDPJobEndToEnd runs a complete distributed job over real UDP
// sockets on localhost: a clearinghouse and three worker processes' worth
// of endpoints, exactly as the cmd/ binaries wire them. The steal
// assertion needs the job to outlive thief registration, so it retries
// with a bigger input if the first run finishes too fast to be stolen
// from.
func TestUDPJobEndToEnd(t *testing.T) {
	for _, n := range []int64{26, 29} {
		if udpJobOnce(t, n) {
			return
		}
	}
	t.Error("no steals in any run; over UDP the work never spread")
}

// udpJobOnce runs fib(n) over UDP, failing the test on correctness
// violations; it reports whether any steal happened.
func udpJobOnce(t *testing.T, n int64) bool {
	const jobID types.JobID = 7
	spec := wire.JobSpec{ID: jobID, Name: "fib", Program: "fib",
		RootFn: fib.Root, RootArgs: fib.RootArgs(n)}

	chConn, err := phishnet.ListenUDP(jobID, types.ClearinghouseID, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	chCfg := clearinghouse.DefaultConfig()
	chCfg.UpdateEvery = 100 * time.Millisecond
	ch := clearinghouse.New(spec, chConn, chCfg)
	go ch.Run()
	defer ch.Stop()

	cfg := core.DefaultConfig()
	cfg.StealTimeout = 300 * time.Millisecond
	cfg.StealBackoff = time.Millisecond

	var wg sync.WaitGroup
	workers := make([]*core.Worker, 3)
	for i := range workers {
		conn, err := phishnet.ListenUDP(jobID, types.WorkerID(i+1), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		conn.SetPeer(types.ClearinghouseID, chConn.LocalAddr())
		workers[i] = core.NewWorker(jobID, types.WorkerID(i+1), fib.Program(), conn, cfg, clock.System)
		wg.Add(1)
		go func(w *core.Worker) {
			defer wg.Done()
			_ = w.Run()
		}(workers[i])
	}

	v, err := ch.WaitResult(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	ch.Stop()
	if got, want := v.(int64), fib.Serial(n); got != want {
		t.Errorf("fib(%d) over UDP = %d, want %d", n, got, want)
	}
	var tasks, stolen int64
	for _, w := range workers {
		s := w.Stats()
		tasks += s.TasksExecuted
		stolen += s.TasksStolen
	}
	if tasks != fib.TaskCount(n) {
		t.Errorf("tasks executed over UDP = %d, want %d", tasks, fib.TaskCount(n))
	}
	return stolen > 0
}

func TestResultsIdenticalAcrossDisciplines(t *testing.T) {
	// Every ablation discipline must compute the same answer.
	configs := map[string]phish.WorkerConfig{}
	base := phish.DefaultWorkerConfig()
	configs["paper"] = base
	fifo := base
	fifo.LocalOrder = phish.FIFO
	configs["fifo-local"] = fifo
	head := base
	head.StealFrom = phish.StealHead
	configs["steal-head"] = head
	rr := base
	rr.Victim = phish.RoundRobinVictim
	configs["round-robin"] = rr

	want := fib.Serial(17)
	for name, cfg := range configs {
		res, err := phish.RunLocal(fib.Program(), fib.Root, fib.RootArgs(17),
			phish.LocalOptions{Workers: 4, Config: cfg})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := res.Value.(int64); got != want {
			t.Errorf("%s: fib(17) = %d, want %d", name, got, want)
		}
		if got := res.Totals.TasksExecuted; got != fib.TaskCount(17) {
			t.Errorf("%s: tasks = %d, want %d", name, got, fib.TaskCount(17))
		}
	}
}

func TestTraceRecordsStealProtocol(t *testing.T) {
	tr := phish.NewTrace(65536)
	res, err := phish.RunLocal(fib.Program(), fib.Root, fib.RootArgs(22),
		phish.LocalOptions{Workers: 4, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	var adopts, grants, registers int64
	for _, e := range evs {
		switch e.Kind {
		case trace.EvStealAdopt:
			adopts++
		case trace.EvStealGrant:
			grants++
		case trace.EvRegister:
			registers++
		}
	}
	if adopts != res.Totals.TasksStolen {
		t.Errorf("trace shows %d adoptions, counters say %d steals", adopts, res.Totals.TasksStolen)
	}
	if grants < adopts {
		t.Errorf("grants (%d) < adoptions (%d)", grants, adopts)
	}
	if registers != 4 {
		t.Errorf("trace shows %d registrations, want 4", registers)
	}
	if out := phish.RenderTrace(evs[:min(len(evs), 5)]); out == "" {
		t.Error("render produced nothing")
	}
}
