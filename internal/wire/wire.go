// Package wire defines every message that crosses between Phish processes —
// workers, clearinghouses, the PhishJobQ, and PhishJobManagers — together
// with a hand-rolled, length-prefixed binary codec (see codec.go) for
// sending them over byte streams and datagrams. Opaque application values
// fall back to gob; everything fixed-shape is encoded by hand.
//
// The paper implements all communication as split-phase operations on top
// of UDP/IP; the message vocabulary here mirrors the protocol the paper
// describes: steal requests and replies (micro scheduler), argument/result
// deliveries (synchronizations), worker register/unregister and periodic
// membership updates (clearinghouse), buffered I/O, job requests and
// assignments (macro scheduler), and migration/fault-recovery traffic.
package wire

import (
	"encoding/gob"
	"fmt"
	"strconv"
	"sync"

	"phish/internal/types"
)

// Envelope wraps one payload with routing and reliability metadata.
type Envelope struct {
	// Job is the parallel job this message belongs to.
	Job types.JobID
	// From and To are worker identities within the job. The
	// clearinghouse is types.ClearinghouseID.
	From, To types.WorkerID
	// Seq is a per-sender sequence number used by unreliable transports
	// for acknowledgment and duplicate suppression.
	Seq uint64
	// Payload is one of the message structs below.
	Payload any
}

// String renders the envelope header and payload type name without fmt —
// it appears in trace and log call sites whose arguments are evaluated
// even when the sink is disabled, so it must stay cheap.
func (e *Envelope) String() string {
	b := make([]byte, 0, 48)
	b = append(b, "[job "...)
	b = strconv.AppendInt(b, int64(e.Job), 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(e.From), 10)
	b = append(b, "->"...)
	b = strconv.AppendInt(b, int64(e.To), 10)
	b = append(b, " #"...)
	b = strconv.AppendUint(b, e.Seq, 10)
	b = append(b, ' ')
	b = append(b, e.PayloadName()...)
	b = append(b, ']')
	return string(b)
}

// PayloadName returns the payload's message name (e.g. "StealRequest")
// without reflection or formatting; unknown application payloads report
// as "gob-fallback".
func (e *Envelope) PayloadName() string { return tagName(payloadTag(e.Payload)) }

// TraceCtx is the compact trace context that crosses worker boundaries
// with scheduler messages: the parent span's id plus flag bits. A span's
// own id is the task id of the activity it describes (task ids are
// job-unique), and the job id rides in the frame header, so the context
// itself is a fixed 13 bytes — cheap enough to carry unconditionally.
// The zero TraceCtx means "not sampled".
type TraceCtx struct {
	Parent types.TaskID
	Flags  uint8
}

// FlagSampled marks a context as sampled: workers record spans for the
// activity and its descendants. The head of the DAG (the root task)
// makes the sampling decision once; everything downstream inherits it
// through propagated contexts.
const FlagSampled uint8 = 1 << 0

// Sampled reports whether spans should be recorded under this context.
func (tc TraceCtx) Sampled() bool { return tc.Flags&FlagSampled != 0 }

// Span kinds. Like payload tags these are part of the StatReport wire
// format: append new kinds, never renumber.
const (
	// SpanExec is one execution of a task function body.
	SpanExec uint8 = iota
	// SpanStealReq is the thief side of a steal: request sent → reply
	// received (success or failure).
	SpanStealReq
	// SpanStealGrant is the victim side: popping the tail task and
	// shipping it, plus creating the steal record.
	SpanStealGrant
	// SpanStealAdopt is the thief adopting a stolen task into its deque.
	SpanStealAdopt
	// SpanCkpt is one checkpoint publish (Yield accepting a blob).
	SpanCkpt
	// SpanDrain is a planned-drain handoff: drain decision → state
	// shipped to the adopter.
	SpanDrain
	// SpanRedo is a crash redo: re-enqueueing a recorded task after its
	// thief died.
	SpanRedo
	spanKindCount
)

var spanKindNames = [spanKindCount]string{
	"exec", "steal-req", "steal-grant", "steal-adopt", "ckpt", "drain", "redo",
}

// SpanKindName renders a span kind for timelines and exports.
func SpanKindName(k uint8) string {
	if k < spanKindCount {
		return spanKindNames[k]
	}
	return fmt.Sprintf("span(%d)", k)
}

// Span is one recorded scheduler activity, shipped from workers to the
// clearinghouse collector inside StatReports. Task identifies the span
// (for SpanExec it is the executed task's id; for steal legs the steal
// record's id); Parent is the spawning/requesting span from the
// propagated TraceCtx; Link is a related task — the continuation a
// SpanExec feeds (a join edge of the DAG), or zero. Start and End are
// nanosecond timestamps on the recording worker's local clock; the
// collector shifts them onto the cluster timeline using that worker's
// estimated clock offset.
type Span struct {
	Kind  uint8
	Flags uint8
	// Worker is the participant that recorded the span (timestamps are
	// on its clock until the collector aligns them).
	Worker types.WorkerID
	Task   types.TaskID
	Parent types.TaskID
	Link   types.TaskID
	Peer   types.WorkerID
	Start  int64
	End    int64
}

// Closure is the wire representation of a task: the name of its function,
// its (possibly partially filled) argument slots, the number of arguments
// still missing, and the continuation its result feeds. It crosses the
// wire when a task is stolen, migrated, or redone after a crash.
//
// A nil entry in Args is an unfilled slot; applications must not use nil
// as an argument value.
type Closure struct {
	ID      types.TaskID
	Fn      string
	Args    []types.Value
	Missing int32
	Cont    types.Continuation
	// NoSteal pins the closure to its current worker. The runtime sets it
	// on a job's root task so the fault-tolerance machinery always knows
	// where the root lives.
	NoSteal bool
	// Ckpt is the task's latest checkpoint blob (nil for tasks that never
	// yielded one). It travels with the closure on steal, migration, and
	// redo so execution resumes from the blob instead of from zero.
	Ckpt []byte
	// CkptSeq orders checkpoint blobs for the same task: higher wins.
	CkptSeq uint64
	// TC is the task's trace context; it travels with the closure on
	// steal, migration, and redo so the executing worker records spans
	// under the right parent and sampling decision.
	TC TraceCtx
}

// TaskCkpt is one task's latest checkpoint blob as published to the
// clearinghouse: latest-wins per (task, seq), size-capped at the source.
type TaskCkpt struct {
	Task types.TaskID
	Seq  uint64
	Data []byte
}

// Record is the wire form of a steal record — the redundant state a victim
// keeps about a task it handed to a thief so that the work can be redone
// if the thief crashes. Records migrate with their owner.
type Record struct {
	ID        types.TaskID
	RealCont  types.Continuation
	Task      Closure
	Thief     types.WorkerID
	Confirmed bool
	// OutstandingNS is how long the steal had been outstanding when the
	// record was serialized. Carried as a relative duration (clock-skew
	// free) so an adopter can keep the speculation deadline running across
	// migrations; restarting the clock on every hop would let a churning
	// fleet defer speculative redo indefinitely.
	OutstandingNS int64
}

// ---- Micro-level (intra-job) payloads ----

// StealRequest asks the destination worker (the victim) for the task at
// the tail of its ready deque.
// Deliberately a bare worker id: keeping the payload a single small
// scalar lets the decoder's interface boxing stay allocation-free, and
// the steal trace context travels in the reply's Closure.TC instead (the
// victim's grant span is keyed by the steal record, not by this frame).
type StealRequest struct {
	Thief types.WorkerID
}

// StealReply answers a StealRequest. OK is false when the victim's deque
// was empty (a failed steal attempt).
type StealReply struct {
	OK   bool
	Task Closure
}

// Arg delivers a value into argument slot Cont.Slot of task Cont.Task — a
// synchronization. When it crosses workers it is a non-local
// synchronization and costs a message. Crossed records that the value has
// crossed a worker boundary somewhere en route (possibly via a steal-record
// forward), so the final delivery is counted as non-local exactly once.
type Arg struct {
	Cont    types.Continuation
	Val     types.Value
	Crossed bool
	// TC names the producing task (Parent) so a sampled result delivery
	// extends the trace across the synchronization edge.
	TC TraceCtx
}

// Migrate carries a terminating worker's live closures and steal records
// to an adoptive worker (owner reclaimed the workstation, or the worker is
// retiring for lack of work while still holding records).
type Migrate struct {
	From     types.WorkerID
	Closures []Closure
	Records  []Record
}

// MigrateAck confirms adoption of migrated closures so the source may exit.
type MigrateAck struct {
	Count int
}

// ---- Clearinghouse payloads ----

// Register announces a new worker to the job's clearinghouse. Site names
// the network neighborhood the worker lives in (machine room, building,
// campus link...); the site-aware steal policy prefers victims on the same
// side of slow network cuts.
type Register struct {
	Worker types.WorkerID
	Addr   string // transport address, empty for in-memory fabrics
	Site   int32
	// SendNS is the worker's local clock when the Register was sent, used
	// with RegisterReply.RecvNS and the measured round trip for
	// clock-offset estimation (zero when the worker does not trace).
	SendNS int64
}

// RegisterReply assigns the worker its identity (when it asked with
// NoWorker) and carries the initial membership view.
type RegisterReply struct {
	Assigned types.WorkerID
	View     MembershipView
	// RecvNS is the clearinghouse's clock when it processed the Register;
	// with the register round trip this yields the NTP-style offset
	// estimate offset = RecvNS - (send+recv_local)/2.
	RecvNS int64
}

// Unregister announces that a worker is leaving the job. MigratedTo names
// the adopter of its tasks (NoWorker when it had none); the clearinghouse
// turns this into a tombstone so results still route to the adopter.
type Unregister struct {
	Worker     types.WorkerID
	Reason     LeaveReason
	MigratedTo types.WorkerID
}

// StealConfirm tells a victim that the thief received the stolen task, so
// the victim's steal record is backed by a live copy. A record whose thief
// departs before confirming is redone locally — the reply was lost in
// flight.
type StealConfirm struct {
	Record types.TaskID
}

// LeaveReason says why a worker left; the macro scheduler reacts
// differently to each.
type LeaveReason int32

const (
	// LeaveJobDone: the job terminated.
	LeaveJobDone LeaveReason = iota
	// LeaveReclaimed: the workstation's owner returned.
	LeaveReclaimed
	// LeaveNoWork: parallelism shrank; steal attempts kept failing.
	LeaveNoWork
	// LeaveCrash: synthesized by the clearinghouse when heartbeats stop.
	LeaveCrash
	// LeaveDrained: the clearinghouse ordered a drain because the worker
	// graded as degraded. The workstation's manager should sit out a
	// cooldown before offering the machine again — a sick machine that
	// rejoins moments after its drain defeats the drain.
	LeaveDrained
)

func (r LeaveReason) String() string {
	switch r {
	case LeaveJobDone:
		return "job-done"
	case LeaveReclaimed:
		return "reclaimed"
	case LeaveNoWork:
		return "no-work"
	case LeaveCrash:
		return "crash"
	case LeaveDrained:
		return "drained"
	default:
		return fmt.Sprintf("LeaveReason(%d)", int32(r))
	}
}

// MemberInfo describes one participant in membership updates.
type MemberInfo struct {
	Worker types.WorkerID
	Addr   string
	// HostedBy is the worker now hosting this worker's tasks; normally it
	// equals Worker, but after a migration the departed worker's task IDs
	// are served by the adopter.
	HostedBy types.WorkerID
	// Site is the worker's network neighborhood (see Register.Site).
	Site int32
}

// MembershipView is the clearinghouse's view of a job's participants,
// pushed periodically ("once every 2 minutes" in the paper) and on change.
type MembershipView struct {
	Epoch   uint64
	Members []MemberInfo
}

// Update carries a fresh MembershipView to a worker.
type Update struct {
	View MembershipView
}

// Heartbeat tells the clearinghouse a worker is alive; missing heartbeats
// trigger the fault-tolerance redo path.
type Heartbeat struct {
	Worker types.WorkerID
	// SendNS is the worker's clock at send time (zero when not tracing).
	// The clearinghouse uses successive heartbeats to refine the
	// registration-time clock-offset estimate.
	SendNS int64
}

// StatReportVersion is the current StatReport layout version. Receivers
// keep decoding older (or newer) reports: counters are positional and
// append-only (see stats.OrderedNames), and unknown histogram kinds are
// carried through untouched.
const StatReportVersion = 1

// HistState is the cumulative state of one latency histogram in a
// StatReport: per-bucket counts (the last entry is the overflow bucket),
// total count, and sum of samples in nanoseconds. Bucket bounds are not
// sent — Kind identifies a histogram whose bounds both ends know.
type HistState struct {
	Kind   int32
	Count  int64
	Sum    int64
	Counts []int64
}

// StatReport piggybacks one worker's telemetry on the periodic
// worker→clearinghouse update: cumulative counters in stats.OrderedNames
// order, the current ready-deque depth, and cumulative histogram states.
// Values are cumulative rather than deltas so the report is idempotent —
// duplication, loss, and worker restarts all resolve to "latest report
// wins" at the clearinghouse. It is sent unreliably (like Ack): a
// pre-telemetry clearinghouse drops the unknown frame without acking it,
// and no retransmit state may accumulate for a message that will never be
// acked.
type StatReport struct {
	Ver      int32
	Worker   types.WorkerID
	Deque    int32 // ready-deque depth at report time
	Counters []int64
	Hists    []HistState
	// Ckpts carries the worker's in-flight task checkpoints (latest-wins
	// per task, size-capped). The clearinghouse journals them so a crash
	// redo can resume from the blob.
	Ckpts []TaskCkpt
	// SpanSeq numbers the span batch below: the collector folds a batch
	// only when SpanSeq advances past the last one it saw from this
	// worker, so retransmitted or reordered reports never duplicate
	// spans ("latest-batch" framing, same idempotence contract as the
	// cumulative counters above).
	SpanSeq uint64
	// ClockOffNS is the worker's current estimate of (clearinghouse
	// clock - local clock); the collector adds it to span timestamps to
	// merge all workers onto one cluster timeline.
	ClockOffNS int64
	// Spans are the trace spans completed since the previous report.
	Spans []Span
}

// WorkerDown notifies workers that a participant crashed so they can redo
// work recorded in their steal logs and drop orphaned consumers. Ckpts
// carries the dead worker's last published checkpoints; a worker holding a
// steal record for one of these tasks redoes it from the blob.
type WorkerDown struct {
	Worker types.WorkerID
	Ckpts  []TaskCkpt
	// TC carries the sampling decision to crash-redo paths: a survivor
	// redoing a recorded task for the dead worker inherits it even when
	// its own record predates sampling.
	TC TraceCtx
}

// SuspectInfo is one graded-suspicion entry in a SuspectSet broadcast:
// a live worker whose phi score or health telemetry has degraded past the
// suspect band. PhiMilli is the phi-accrual suspicion score ×1000 (ints
// only on the wire). Ckpts carries the suspect's last published task
// checkpoints so a victim speculating on an overdue stolen task can resume
// from the freshest blob instead of the one that traveled with the steal.
type SuspectInfo struct {
	Worker   types.WorkerID
	PhiMilli int32
	Ckpts    []TaskCkpt
}

// SuspectSet tells workers which participants the clearinghouse currently
// grades as suspect (slow-not-dead). Thieves deprioritize suspects as
// steal victims, and victims holding steal records against a suspect arm
// speculative re-dispatch. The set is a full replacement: a worker absent
// from the latest set is no longer suspect (entries also decay locally, so
// a lost final broadcast cannot blacklist a worker forever).
type SuspectSet struct {
	Suspects []SuspectInfo
}

// DrainOrder is a clearinghouse-initiated planned drain: the receiving
// worker should hand off its state via the PR-5 migration path and leave,
// because the clearinghouse grades it persistently degraded. The worker
// obeys at its own pace — an order to a worker that just recovered is
// merely a wasted migration, never a correctness problem.
type DrainOrder struct {
	Reason string
}

// DrainRequest asks the clearinghouse to coordinate a planned drain: pick
// an adoption victim for the requester's deque. The requester keeps
// working until the DrainAck arrives (or a bounded wait expires, in which
// case it falls back to picking a victim from its own membership view).
type DrainRequest struct {
	Worker types.WorkerID
}

// DrainAck answers a DrainRequest with the clearinghouse's choice of
// adopter — the live worker with the shallowest reported deque. OK is
// false when the requester is the only live worker. Addr carries the
// victim's transport address so a drainer whose membership view predates
// the victim's arrival can still route the handoff (empty for in-memory
// fabrics).
type DrainAck struct {
	OK     bool
	Victim types.WorkerID
	Addr   string
}

// IO carries buffered application output to the clearinghouse ("a user
// need only watch the Clearinghouse to see job output").
type IO struct {
	Worker types.WorkerID
	Text   string
}

// Shutdown tells workers the job is complete (the root result arrived at
// the clearinghouse).
type Shutdown struct {
	Reason string
}

// SpawnRoot instructs a worker to spawn the job's root task. The
// clearinghouse sends it to the first registrant — and again to a later
// registrant if every worker hosting the root's lineage has crashed, which
// is how a fully lost job restarts.
type SpawnRoot struct {
	Fn   string
	Args []types.Value
}

// Pause asks a worker to stop executing and stealing (it keeps processing
// messages) as the first phase of a checkpoint. Workers answer every Pause
// with a PauseAck carrying their per-peer message counts; the checkpoint
// coordinator compares the global send/receive matrix to know when no
// messages are in flight.
type Pause struct {
	Seq uint64
}

// PauseAck reports a paused worker's per-peer message counts (worker-to-
// worker traffic only; clearinghouse traffic does not carry task state).
type PauseAck struct {
	Seq    uint64
	Worker types.WorkerID
	SentTo map[types.WorkerID]int64
	RecvFr map[types.WorkerID]int64
}

// SnapshotRequest asks a paused worker for a full, non-destructive dump of
// its scheduler state.
type SnapshotRequest struct {
	Seq uint64
}

// SnapshotReply carries the dump: the same representation a migration
// uses, but the worker keeps its state and stays paused.
type SnapshotReply struct {
	Seq      uint64
	Worker   types.WorkerID
	Closures []Closure
	Records  []Record
}

// Resume ends a pause.
type Resume struct {
	Seq uint64
}

// StayRequest asks the clearinghouse for permission to retire for lack of
// work; the clearinghouse refuses when the requester is the last worker of
// an unfinished job.
type StayRequest struct {
	Worker types.WorkerID
}

// StayReply answers StayRequest. Stay=true means keep participating.
type StayReply struct {
	Stay bool
}

// ---- Macro-level (PhishJobQ) payloads ----

// JobSpec describes a submitted parallel job.
type JobSpec struct {
	ID       types.JobID
	Name     string
	Program  string // registered program name all workers must know
	RootFn   string // task function of the root task
	RootArgs []types.Value
	CHAddr   string // clearinghouse address
	Priority int32
}

// JobRequest is an idle workstation's plea for work.
type JobRequest struct {
	Workstation types.WorkstationID
}

// JobReply answers JobRequest. OK is false when the job pool is empty.
type JobReply struct {
	OK  bool
	Job JobSpec
}

// JobSubmit places a job in the PhishJobQ's pool.
type JobSubmit struct {
	Job JobSpec
}

// JobSubmitReply returns the assigned job ID.
type JobSubmitReply struct {
	ID types.JobID
}

// JobDone removes a finished job from the pool.
type JobDone struct {
	ID types.JobID
}

// JobList asks for the pool contents (diagnostics).
type JobList struct{}

// JobListReply carries the pool contents.
type JobListReply struct {
	Jobs []JobSpec
}

// Ack acknowledges receipt of sequence Seq from the peer; used only by
// unreliable transports.
type Ack struct {
	Seq uint64
}

// PeerGone is synthesized locally by a transport when it exhausts
// retransmits to a peer: the peer is unreachable and every undelivered
// frame to it has been abandoned. It is delivered to the owner's own
// mailbox, never sent across the network. A worker receiving it treats the
// peer as crashed (or, for the clearinghouse, enters the re-register
// loop); the clearinghouse declares the worker crashed.
type PeerGone struct {
	Worker types.WorkerID
}

// registerPayloads registers every payload type and the common Value
// concrete types with gob exactly once.
var registerOnce sync.Once

func registerPayloads() {
	for _, v := range []any{
		StealRequest{}, StealReply{}, StealConfirm{}, Arg{}, Migrate{}, MigrateAck{},
		Register{}, RegisterReply{}, Unregister{}, Update{}, Heartbeat{},
		WorkerDown{}, IO{}, Shutdown{}, SpawnRoot{}, StayRequest{}, StayReply{},
		Pause{}, PauseAck{}, SnapshotRequest{}, SnapshotReply{}, Resume{},
		JobRequest{}, JobReply{}, JobSubmit{}, JobSubmitReply{}, JobDone{},
		JobList{}, JobListReply{}, Ack{}, PeerGone{}, StatReport{},
		DrainRequest{}, DrainAck{}, SuspectSet{}, DrainOrder{},
		// Common Value concrete types.
		int64(0), int(0), int32(0), uint64(0), float64(0), "", true,
		[]byte(nil), []int64(nil), []float64(nil), []types.Value(nil),
	} {
		gob.Register(v)
	}
}

func init() { registerOnce.Do(registerPayloads) }

// RegisterValue registers an application-defined concrete type that will
// be carried as a task argument or result across the wire. Such values are
// encoded through the gob fallback of the binary codec.
func RegisterValue(v any) { gob.Register(v) }
