package core

import "phish/internal/wire"

// statReportBudget caps one StatReport's encoded size so the report, the
// heartbeat it piggybacks on, and the per-frame framing all share one
// ~60KiB datagram. A full span batch (512 × ~62B ≈ 31KiB) plus a
// checkpoint blob near the 64KiB MaxCkptBlob cap used to land in a single
// report that blew the datagram budget and was silently truncated on the
// wire; the planner below splits such snapshots across successive reports
// instead.
const statReportBudget = 56 << 10

// Encoded-size estimates, slightly generous on purpose: only the sum
// staying under the datagram budget matters, not byte exactness.
func ckptWireLen(ck wire.TaskCkpt) int { return 12 + 8 + 4 + len(ck.Data) + 16 }
func spansWireLen(n int) int           { return 8 + 8 + 4 + n*64 + 16 }
func histWireLen(h wire.HistState) int { return 4 + 8 + 8 + 4 + len(h.Counts)*8 + 16 }

func baseReportLen(rep *wire.StatReport) int {
	n := 64 + len(rep.Counters)*8
	for _, h := range rep.Hists {
		n += histWireLen(h)
	}
	return n
}

// planStatReports splits one logical telemetry snapshot into reports that
// each fit the budget. The first report carries the cumulative state
// (counters, histograms); follow-ups carry only the worker identity
// header plus overflow freight. That division is what keeps split reports
// safe to fold in any arrival order: the store's latest-wins rollup keys
// on the counter sum, so a counter-less follow-up can never clobber a
// fresher base report, while checkpoint journaling and span folding
// (keyed independently by CkptSeq and SpanSeq) apply from whichever
// report carries them.
//
// The span batch travels as one indivisible unit — SpanSeq, ClockOffNS,
// and Spans together — because the collector's latest-batch framing folds
// a batch exactly once per SpanSeq advance; splitting a batch across
// reports would drop whichever half arrives second. Checkpoint blobs pack
// greedily; a blob too large to share a report goes alone.
func planStatReports(rep wire.StatReport, budget int) []wire.StatReport {
	ident := wire.StatReport{Ver: rep.Ver, Worker: rep.Worker, Deque: rep.Deque}
	const identLen = 64

	first := ident
	first.Counters, first.Hists = rep.Counters, rep.Hists
	out := []wire.StatReport{first}
	room := budget - baseReportLen(&rep)

	if rep.SpanSeq != 0 || rep.ClockOffNS != 0 || len(rep.Spans) > 0 {
		need := spansWireLen(len(rep.Spans))
		if need > room {
			out = append(out, ident)
			room = budget - identLen
		}
		last := &out[len(out)-1]
		last.SpanSeq, last.ClockOffNS, last.Spans = rep.SpanSeq, rep.ClockOffNS, rep.Spans
		room -= need
	}
	for _, ck := range rep.Ckpts {
		need := ckptWireLen(ck)
		if need > room {
			out = append(out, ident)
			room = budget - identLen
		}
		last := &out[len(out)-1]
		last.Ckpts = append(last.Ckpts, ck)
		room -= need
	}
	return out
}
