package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"phish/internal/clearinghouse/shardstore"
	"phish/internal/stats"
	"phish/internal/types"
	"phish/internal/wire"
)

// CHBenchConfig sizes the clearinghouse state-store scaling benchmark.
type CHBenchConfig struct {
	// Shards lists the lock-stripe counts to sweep.
	Shards []int
	// Workers lists the simulated population sizes.
	Workers []int
	// Iters is the number of hot-path rounds each ingest goroutine runs
	// (one round = one 128-message drained datagram burst).
	Iters int
	// Goroutines is the number of concurrent ingest goroutines; 0 means
	// GOMAXPROCS (the realistic ceiling: one per transport read loop).
	Goroutines int
}

// DefaultCHBenchConfig is the full sweep from the scaling study: shard
// counts 1→64 against populations 1k→100k.
func DefaultCHBenchConfig() CHBenchConfig {
	return CHBenchConfig{
		Shards:  []int{1, 4, 16, 64},
		Workers: []int{1_000, 10_000, 100_000},
		Iters:   2_000,
	}
}

// CHBenchResult is one (shards, workers) cell of the scaling study.
// GOMAXPROCS is recorded because the whole point of lock striping is
// parallel ingest: on a single-core runner every shard count collapses to
// the same serial throughput, and the numbers say so rather than lie.
type CHBenchResult struct {
	Name         string  `json:"name"`
	Shards       int     `json:"shards"`
	Workers      int     `json:"workers"`
	Goroutines   int     `json:"goroutines"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	RegPerSec    float64 `json:"registers_per_sec"`
	HotOpsPerSec float64 `json:"hot_ops_per_sec"`
	Rollups      int64   `json:"rollups"`
	SnapshotMS   float64 `json:"snapshot_ms"`
	ElapsedMS    float64 `json:"elapsed_ms"`
}

// chBenchBurst is one simulated drained datagram burst: half heartbeats,
// half piggybacked stat reports, matching the clearinghouse ingest batch.
const chBenchBurst = 128

// CHBench measures clearinghouse state-store throughput across shard
// counts and population sizes:
//
//   - Registration: the membership build-up, driven from one goroutine
//     exactly as the clearinghouse Run loop drives it.
//   - Hot path: Goroutines concurrent ingest loops folding heartbeat+
//     StatReport bursts (each burst locks every touched shard once), while
//     one reader continuously assembles merge-over-shards rollups — the
//     /metrics scrape that, under a single flat mutex, would stall every
//     fold for the duration of the scan.
//   - Snapshot: one timed full rollup at the end (members + reports).
func CHBench(cfg CHBenchConfig) []CHBenchResult {
	if len(cfg.Shards) == 0 {
		cfg.Shards = []int{1, 4, 16, 64}
	}
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1_000, 10_000, 100_000}
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 1
	}
	gor := cfg.Goroutines
	if gor <= 0 {
		gor = runtime.GOMAXPROCS(0)
	}

	var out []CHBenchResult
	for _, workers := range cfg.Workers {
		for _, shards := range cfg.Shards {
			out = append(out, chBenchOne(shards, workers, cfg.Iters, gor))
		}
	}
	return out
}

func chBenchOne(shards, workers, iters, gor int) CHBenchResult {
	s := shardstore.New(shards)
	now := time.Now()

	// Phase 1: registration storm (single writer, as in the Run loop).
	regStart := time.Now()
	for id := 0; id < workers; id++ {
		s.Register(types.WorkerID(id), wire.MemberInfo{
			Worker:   types.WorkerID(id),
			HostedBy: types.WorkerID(id),
			Site:     int32(id % 4),
		}, now)
	}
	regElapsed := time.Since(regStart)

	// Phase 2: concurrent hot-path folds against a continuous rollup
	// reader.
	var rollups atomic.Int64
	stopRead := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			_ = s.LiveCount()
			_ = s.Reports()
			_ = s.Epoch()
			rollups.Add(1)
			// A /metrics scrape has a cadence; an unpaced spin here would
			// measure reader starvation, not fold throughput.
			time.Sleep(200 * time.Microsecond)
		}
	}()

	hotStart := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < gor; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			var b shardstore.HotBatch
			for i := 0; i < iters; i++ {
				b.Reset()
				for j := 0; j < chBenchBurst; j++ {
					id := types.WorkerID(rng.Intn(workers))
					if j%2 == 0 {
						b.Beats = append(b.Beats, id)
					} else {
						// Each report owns its counters slice (as decoded
						// reports do), monotone so every fold is accepted.
						counters := make([]int64, len(stats.OrderedNames))
						for k := range counters {
							counters[k] = int64(i)
						}
						b.Reports = append(b.Reports, wire.StatReport{
							Worker:   id,
							Deque:    int32(j),
							Counters: counters,
						})
					}
				}
				s.FoldHot(&b, now)
			}
		}(g)
	}
	wg.Wait()
	hotElapsed := time.Since(hotStart)
	close(stopRead)
	readerWG.Wait()

	// Phase 3: one timed full rollup.
	snapStart := time.Now()
	_ = s.Members()
	_ = s.Reports()
	snapElapsed := time.Since(snapStart)

	hotOps := float64(gor) * float64(iters) * chBenchBurst
	return CHBenchResult{
		Name:         fmt.Sprintf("ch-w%d-s%d", workers, shards),
		Shards:       shards,
		Workers:      workers,
		Goroutines:   gor,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		RegPerSec:    float64(workers) / regElapsed.Seconds(),
		HotOpsPerSec: hotOps / hotElapsed.Seconds(),
		Rollups:      rollups.Load(),
		SnapshotMS:   float64(snapElapsed.Nanoseconds()) / 1e6,
		ElapsedMS:    float64(regElapsed.Nanoseconds()+hotElapsed.Nanoseconds()) / 1e6,
	}
}

// PrintCHBench renders the scaling study as a table, grouped by
// population with per-shard speedup relative to the 1-shard row.
func PrintCHBench(w io.Writer, rs []CHBenchResult) {
	fmt.Fprintf(w, "clearinghouse store — register/heartbeat/report scaling (GOMAXPROCS=%d)\n",
		runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "%-16s %8s %10s %14s %14s %10s %12s\n",
		"benchmark", "shards", "workers", "reg/sec", "hot ops/sec", "vs s=1", "snapshot ms")
	base := map[int]float64{}
	for _, r := range rs {
		if r.Shards == 1 {
			base[r.Workers] = r.HotOpsPerSec
		}
	}
	for _, r := range rs {
		rel := "-"
		if b := base[r.Workers]; b > 0 {
			rel = fmt.Sprintf("%.2fx", r.HotOpsPerSec/b)
		}
		fmt.Fprintf(w, "%-16s %8d %10d %14.0f %14.0f %10s %12.2f\n",
			r.Name, r.Shards, r.Workers, r.RegPerSec, r.HotOpsPerSec, rel, r.SnapshotMS)
	}
}

// ---- BENCH_sched.json combined file --------------------------------------

// SchedBenchFile is the on-disk shape of BENCH_sched.json: the scheduler
// throughput series and the clearinghouse scaling series side by side, so
// either benchmark can be rerun without clobbering the other's baseline.
type SchedBenchFile struct {
	Sched         []SchedBenchResult `json:"sched"`
	Clearinghouse []CHBenchResult    `json:"clearinghouse"`
}

// readSchedBenchFile loads path, tolerating the legacy layout (a bare
// array of scheduler results, from before the clearinghouse series
// existed). A missing file is an empty file, not an error.
func readSchedBenchFile(path string) (*SchedBenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return &SchedBenchFile{}, nil
		}
		return nil, err
	}
	var f SchedBenchFile
	if err := json.Unmarshal(data, &f); err == nil {
		return &f, nil
	}
	var legacy []SchedBenchResult
	if err := json.Unmarshal(data, &legacy); err == nil {
		return &SchedBenchFile{Sched: legacy}, nil
	}
	return nil, fmt.Errorf("harness: %s: unrecognized layout", path)
}

func writeSchedBenchFile(path string, f *SchedBenchFile) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteSchedBenchJSON updates the scheduler series in path, preserving
// any clearinghouse series already there.
func WriteSchedBenchJSON(path string, rs []SchedBenchResult) error {
	f, err := readSchedBenchFile(path)
	if err != nil {
		return err
	}
	f.Sched = rs
	return writeSchedBenchFile(path, f)
}

// WriteCHBenchJSON updates the clearinghouse series in path, preserving
// any scheduler series already there.
func WriteCHBenchJSON(path string, rs []CHBenchResult) error {
	f, err := readSchedBenchFile(path)
	if err != nil {
		return err
	}
	f.Clearinghouse = rs
	return writeSchedBenchFile(path, f)
}
