//go:build linux

// Package cputime measures the CPU time consumed by the calling OS
// thread. Phish uses it to account each worker's "execution time" the way
// the paper's dedicated SparcStations did: a worker goroutine locked to
// its own thread accrues CPU time exactly while it computes, so on a host
// with fewer cores than participants — where the simulated workstations
// time-share the real CPU — the per-participant times still mean "time
// this participant's processor was busy", and the paper's speedup formula
// S_P = P*T1/ΣT_P(i) measures scheduling efficiency rather than the
// host's core count. DESIGN.md records this substitution.
package cputime

import (
	"syscall"
	"time"
	"unsafe"
)

// clockThreadCPUTimeID is CLOCK_THREAD_CPUTIME_ID from <time.h>.
const clockThreadCPUTimeID = 3

// Thread returns the CPU time consumed by the calling OS thread. ok is
// false if the clock is unavailable. Callers who want per-goroutine
// accounting must have locked the goroutine to its thread.
func Thread() (d time.Duration, ok bool) {
	var ts syscall.Timespec
	_, _, errno := syscall.Syscall(syscall.SYS_CLOCK_GETTIME,
		clockThreadCPUTimeID, uintptr(unsafe.Pointer(&ts)), 0)
	if errno != 0 {
		return 0, false
	}
	return time.Duration(ts.Sec)*time.Second + time.Duration(ts.Nsec)*time.Nanosecond, true
}
