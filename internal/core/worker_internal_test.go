package core

import (
	"testing"

	"phish/internal/clock"
	"phish/internal/model"
	"phish/internal/phishnet"
	"phish/internal/types"
	"phish/internal/wire"
)

// newBenchWorker builds a worker with a live fabric port but without
// running its loop, so internal routing logic can be driven directly.
func newTestWorker(t testing.TB, id types.WorkerID) (*Worker, *phishnet.Fabric) {
	t.Helper()
	fab := phishnet.NewFabric()
	t.Cleanup(fab.Close)
	prog := NewProgram("internal")
	prog.Register("noop", func(c model.Ctx) { c.Return(int64(0)) })
	w := NewWorker(1, id, prog, fab.Attach(id), DefaultConfig(), clock.System)
	return w, fab
}

func view(members ...wire.MemberInfo) wire.MembershipView {
	return wire.MembershipView{Epoch: 1, Members: members}
}

func TestResolveHostIdentityAndTombstones(t *testing.T) {
	w, _ := newTestWorker(t, 5)
	w.applyView(view(
		wire.MemberInfo{Worker: 5, HostedBy: 5},
		wire.MemberInfo{Worker: 7, HostedBy: 7},
		wire.MemberInfo{Worker: 3, HostedBy: 7},              // migrated 3 -> 7
		wire.MemberInfo{Worker: 2, HostedBy: types.NoWorker}, // left with nothing
	))
	cases := []struct {
		minter types.WorkerID
		host   types.WorkerID
		ok     bool
	}{
		{5, 5, true},
		{7, 7, true},
		{3, 7, true},                // tombstone
		{2, types.NoWorker, true},   // departed empty
		{42, types.NoWorker, false}, // never seen
	}
	for _, c := range cases {
		h, ok := w.resolveHost(c.minter)
		if ok != c.ok || (ok && h != c.host) {
			t.Errorf("resolveHost(%d) = (%d,%v), want (%d,%v)", c.minter, h, ok, c.host, c.ok)
		}
	}
	// The clearinghouse is always routable.
	if h, ok := w.resolveHost(types.ClearinghouseID); !ok || h != types.ClearinghouseID {
		t.Errorf("resolveHost(CH) = (%d,%v)", h, ok)
	}
}

func TestResolveHostFlattensOneChainLevel(t *testing.T) {
	w, _ := newTestWorker(t, 5)
	// A stale view with an unflattened chain 3 -> 7 -> 9 (the
	// clearinghouse normally flattens; the worker tolerates one level).
	w.applyView(view(
		wire.MemberInfo{Worker: 5, HostedBy: 5},
		wire.MemberInfo{Worker: 9, HostedBy: 9},
		wire.MemberInfo{Worker: 7, HostedBy: 9},
		wire.MemberInfo{Worker: 3, HostedBy: 7},
	))
	if h, _ := w.resolveHost(3); h != 9 {
		t.Errorf("chain not flattened: resolveHost(3) = %d, want 9", h)
	}
}

func TestVictimListExcludesSelfAndDeparted(t *testing.T) {
	w, _ := newTestWorker(t, 5)
	w.dead[8] = true
	w.applyView(view(
		wire.MemberInfo{Worker: 5, HostedBy: 5},
		wire.MemberInfo{Worker: 6, HostedBy: 6},
		wire.MemberInfo{Worker: 7, HostedBy: 9}, // migrated away
		wire.MemberInfo{Worker: 8, HostedBy: 8}, // dead (stale view)
		wire.MemberInfo{Worker: 9, HostedBy: 9},
	))
	if len(w.victims) != 2 {
		t.Fatalf("victims = %v, want [6 9]", w.victims)
	}
	for _, v := range w.victims {
		if v != 6 && v != 9 {
			t.Errorf("bad victim %d", v)
		}
	}
}

func TestStaleViewIgnored(t *testing.T) {
	w, _ := newTestWorker(t, 5)
	w.applyView(wire.MembershipView{Epoch: 5, Members: []wire.MemberInfo{
		{Worker: 5, HostedBy: 5}, {Worker: 6, HostedBy: 6},
	}})
	// An older epoch must not clobber the newer view.
	w.applyView(wire.MembershipView{Epoch: 3, Members: []wire.MemberInfo{
		{Worker: 5, HostedBy: 5},
	}})
	if len(w.victims) != 1 || w.victims[0] != 6 {
		t.Errorf("stale view applied: victims = %v", w.victims)
	}
}

func TestFillSlotDeduplicatesAndBoundsChecks(t *testing.T) {
	w, _ := newTestWorker(t, 5)
	cl := &Closure{
		ID:      types.TaskID{Worker: 5, Seq: 1},
		Fn:      "noop",
		Args:    make([]types.Value, 2),
		Missing: 2,
	}
	w.waiting[cl.ID] = cl
	cont0 := types.Continuation{Task: cl.ID, Slot: 0}

	w.fillSlot(cont0, int64(1), false, true)
	if cl.Missing != 1 || cl.Args[0].(int64) != 1 {
		t.Fatalf("first fill broken: %+v", cl)
	}
	// Duplicate delivery into the same slot is dropped, not double-counted.
	w.fillSlot(cont0, int64(99), false, true)
	if cl.Missing != 1 || cl.Args[0].(int64) != 1 {
		t.Errorf("duplicate fill corrupted the closure: %+v", cl)
	}
	if w.orphanDrops.Load() != 1 {
		t.Errorf("duplicate fill not counted as a drop: %d", w.orphanDrops.Load())
	}
	// Out-of-range slot is dropped.
	w.fillSlot(types.Continuation{Task: cl.ID, Slot: 9}, int64(1), false, true)
	if cl.Missing != 1 {
		t.Errorf("out-of-range fill corrupted the join counter")
	}
	// The last fill readies the closure onto the deque.
	w.fillSlot(types.Continuation{Task: cl.ID, Slot: 1}, int64(2), true, true)
	if _, still := w.waiting[cl.ID]; still {
		t.Error("ready closure still in the waiting table")
	}
	if w.dq.Len() != 1 {
		t.Error("ready closure not enqueued")
	}
	if w.counters.Synchronizations.Load() != 2 {
		t.Errorf("synchs = %d, want 2", w.counters.Synchronizations.Load())
	}
	if w.counters.NonLocalSynchs.Load() != 1 {
		t.Errorf("non-local synchs = %d, want 1 (one crossed fill)", w.counters.NonLocalSynchs.Load())
	}
}

func TestTakeStealableSkipsPinnedRoot(t *testing.T) {
	w, _ := newTestWorker(t, 5)
	root := &Closure{ID: types.TaskID{Worker: 5, Seq: 1}, Fn: "noop", NoSteal: true}
	w.dq.PushHead(root)
	if _, ok := w.takeStealable(); ok {
		t.Fatal("pinned root was stealable")
	}
	if w.dq.Len() != 1 {
		t.Fatal("pinned root lost by the steal probe")
	}
	// With a normal task behind it, the tail (the normal task... order:
	// push root first then task -> tail is root). Push the other way.
	task := &Closure{ID: types.TaskID{Worker: 5, Seq: 2}, Fn: "noop"}
	w.dq.PushTail(task)
	got, ok := w.takeStealable()
	if !ok || got.ID != task.ID {
		t.Fatalf("stealable = %+v, %v", got, ok)
	}
}

func TestGrantStealCreatesRecordAndRetiresTask(t *testing.T) {
	w, fab := newTestWorker(t, 5)
	thiefPort := fab.Attach(6)
	w.applyView(view(
		wire.MemberInfo{Worker: 5, HostedBy: 5},
		wire.MemberInfo{Worker: 6, HostedBy: 6},
	))
	cl := &Closure{ID: types.TaskID{Worker: 5, Seq: 1}, Fn: "noop",
		Cont: types.Continuation{Task: types.TaskID{Worker: 5, Seq: 99}}}
	w.counters.TaskCreated()
	w.dq.PushHead(cl)

	w.grantSteal(6)
	if w.dq.Len() != 0 {
		t.Fatal("task not removed by grant")
	}
	if len(w.records) != 1 {
		t.Fatal("no steal record created")
	}
	var rec *stealRecord
	for _, r := range w.records {
		rec = r
	}
	if rec.thief != 6 || rec.confirmed {
		t.Errorf("record = %+v", rec)
	}
	if rec.realCont.Task.Seq != 99 {
		t.Errorf("record kept wrong continuation: %v", rec.realCont)
	}
	// The shipped closure's continuation targets the record.
	env := <-thiefPort.Recv()
	rep := env.Payload.(wire.StealReply)
	if !rep.OK || rep.Task.Cont.Task != rec.id {
		t.Errorf("stolen task cont = %v, want record %v", rep.Task.Cont, rec.id)
	}
	if got := w.counters.TasksInUse.Load(); got != 0 {
		t.Errorf("tasks in use after grant = %d, want 0", got)
	}
}

func TestGrantStealRevertsWhenThiefUnreachable(t *testing.T) {
	w, _ := newTestWorker(t, 5)
	cl := &Closure{ID: types.TaskID{Worker: 5, Seq: 1}, Fn: "noop"}
	w.counters.TaskCreated()
	w.dq.PushHead(cl)
	w.grantSteal(99) // no such port
	if w.dq.Len() != 1 {
		t.Error("task lost on failed grant")
	}
	if len(w.records) != 0 {
		t.Error("record leaked on failed grant")
	}
}

func TestRedoRecordRequeuesCopy(t *testing.T) {
	w, _ := newTestWorker(t, 5)
	rec := &stealRecord{
		id:       types.TaskID{Worker: 5, Seq: 10},
		realCont: types.Continuation{Task: types.TaskID{Worker: 5, Seq: 1}},
		thief:    7,
		task: wire.Closure{ID: types.TaskID{Worker: 5, Seq: 2}, Fn: "noop",
			Cont: types.Continuation{Task: types.TaskID{Worker: 5, Seq: 10}}},
	}
	w.records[rec.id] = rec
	w.redoRecord(rec)
	if rec.thief != 5 || !rec.confirmed {
		t.Errorf("record not localized: %+v", rec)
	}
	if w.dq.Len() != 1 {
		t.Fatal("copy not requeued")
	}
	if w.counters.TasksRedone.Load() != 1 {
		t.Error("redo not counted")
	}
}

func TestPurgeOrphansDropsDeadConsumers(t *testing.T) {
	w, _ := newTestWorker(t, 5)
	w.applyView(view(
		wire.MemberInfo{Worker: 5, HostedBy: 5},
		wire.MemberInfo{Worker: 6, HostedBy: 6},
	))
	w.dead[9] = true // crashed, no tombstone
	deadCont := types.Continuation{Task: types.TaskID{Worker: 9, Seq: 1}}
	liveCont := types.Continuation{Task: types.TaskID{Worker: 6, Seq: 1}}

	orphan := &Closure{ID: types.TaskID{Worker: 5, Seq: 1}, Fn: "noop", Args: make([]types.Value, 1), Missing: 1, Cont: deadCont}
	keeper := &Closure{ID: types.TaskID{Worker: 5, Seq: 2}, Fn: "noop", Args: make([]types.Value, 1), Missing: 1, Cont: liveCont}
	w.waiting[orphan.ID] = orphan
	w.waiting[keeper.ID] = keeper
	w.counters.TaskCreated()
	w.counters.TaskCreated()
	readyOrphan := &Closure{ID: types.TaskID{Worker: 5, Seq: 3}, Fn: "noop", Cont: deadCont}
	w.dq.PushHead(readyOrphan)
	w.counters.TaskCreated()

	w.purgeOrphans()
	if _, ok := w.waiting[orphan.ID]; ok {
		t.Error("waiting orphan survived the purge")
	}
	if _, ok := w.waiting[keeper.ID]; !ok {
		t.Error("live consumer was purged")
	}
	if w.dq.Len() != 0 {
		t.Error("ready orphan survived the purge")
	}
}
