package harness

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"phish/internal/clearinghouse"
	"phish/internal/cluster"
	"phish/internal/core"
	"phish/internal/idlesim"
	"phish/internal/jobmanager"
	"phish/internal/model"
	"phish/internal/phishnet"
	"phish/internal/types"
)

// ChaosBenchConfig sizes the failure-detector chaos benchmark: one
// checkpointable workload run under several arms — calm under the
// adaptive detector, a crash scenario under the fixed timeout and under
// the adaptive detector, and a gray-failure scenario run as three
// fixed-vs-adaptive pairs — so detection latency, false positives, wasted
// work, and makespan are directly comparable. The gray comparison uses
// median makespans across its rounds: a fixed-timeout fleet under gray
// failure is bimodal (sometimes work-stealing happens to rescue the
// hostage chunks, sometimes the fleet thrashes more or less forever), and
// a single draw from that distribution would gate CI on a coin flip.
type ChaosBenchConfig struct {
	// Chunks is the fan-out; Steps the number of ~1 ms work units per
	// chunk. Ideal work is Chunks*Steps steps.
	Chunks int64
	Steps  int64
	// Stations is the number of always-idle workstations.
	Stations int
	// Seed drives the transport fault plan and scenario draws.
	Seed int64
	// Crashes is how many sequential fail-stop crashes the crash scenario
	// injects (each one is a detection-latency sample).
	Crashes int
	// Timeout bounds each run.
	Timeout time.Duration
}

// Detector and scenario constants shared by every run, so the fixed and
// adaptive arms differ only in the failure detector itself.
const (
	chaosHBEvery   = 10 * time.Millisecond
	chaosHBTimeout = 400 * time.Millisecond
	chaosPhiSlack  = 60 * time.Millisecond
	chaosDrainAt   = 300 * time.Millisecond
	// Gray failure shape: onset after the EWMA tracks are warm, then a
	// machine goes gray every chaosGrayEvery — computing power collapsing
	// to 2% in a few steps, plus a network latency ramp. The machines limp,
	// they do not die. The gremlin times each collapse to land just after
	// its victim starts a chunk, so every event deterministically takes a
	// nearly-whole chunk hostage instead of a phase-of-the-moon fraction of
	// one; sequential events make the comparison an average over several
	// hostage rescues rather than one lucky or unlucky draw.
	chaosGrayOnset    = 1000 * time.Millisecond
	chaosGrayEvery    = 500 * time.Millisecond
	chaosGrayEvents   = 3
	chaosGrayCollapse = 50 * time.Millisecond
	chaosGrayRamp     = 500 * time.Millisecond
	chaosGraySpeed    = 0.02
	chaosGrayDelay    = 25 * time.Millisecond
	// chaosGrayRounds is how many fixed-vs-adaptive gray pairs feed the
	// median; chaosGrayFixedCap censors a thrashing gray-fixed run — the
	// fixed detector never declares a limping-but-heartbeating machine
	// dead, so its worst mode simply does not terminate.
	chaosGrayRounds   = 3
	chaosGrayFixedCap = 20 * time.Second
)

// DefaultChaosBenchConfig finishes in under a minute on a laptop when the
// gray-fixed rounds self-heal, and is bounded by their censoring cap when
// they thrash.
func DefaultChaosBenchConfig() ChaosBenchConfig {
	return ChaosBenchConfig{
		Chunks:   144,
		Steps:    100,
		Stations: 8,
		Seed:     20260808,
		Crashes:  3,
		Timeout:  3 * time.Minute,
	}
}

// ChaosRunResult is one run of the chaos workload.
type ChaosRunResult struct {
	Name     string `json:"name"`
	Adaptive bool   `json:"adaptive"`
	// Scenario is "calm", "crash", or "gray".
	Scenario  string  `json:"scenario"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Steps is the number of work units actually executed; Ideal the
	// fault-free minimum. WastedRatio is (Steps-Ideal)/Ideal.
	Steps       int64   `json:"steps"`
	IdealSteps  int64   `json:"ideal_steps"`
	WastedRatio float64 `json:"wasted_ratio"`
	// Crash-detection latency over the run's injected crashes (crash
	// scenario only; zero elsewhere).
	DetectP50MS float64 `json:"detect_p50_ms"`
	DetectP99MS float64 `json:"detect_p99_ms"`
	// FalseEvictions is the clearinghouse's count of workers it declared
	// dead that later heartbeated (phish_false_evictions_total).
	FalseEvictions int64 `json:"false_evictions"`
	// SpeculativeRedos counts tasks re-dispatched from checkpoint while a
	// suspect thief still held them (phish_speculative_redo_total).
	SpeculativeRedos int64 `json:"speculative_redos"`
	// TimedOut marks a censored run: the arm was still thrashing at the
	// cap, and ElapsedMS records the cap, a lower bound on the true
	// makespan.
	TimedOut bool `json:"timed_out,omitempty"`
}

// ChaosSummary is the headline comparison.
type ChaosSummary struct {
	IdealSteps int64 `json:"ideal_steps"`
	// OracleMS is the calm makespan: the same fleet with no injected
	// faults. Scenario runs report their makespan as a multiple of it.
	OracleMS           float64 `json:"oracle_ms"`
	CalmFalseEvictions int64   `json:"calm_false_evictions"`
	// Crash-detection latency, fixed timeout vs adaptive phi, and the
	// budget the adaptive arm must stay under (the fixed arm's timeout).
	CrashFixedP99MS    float64 `json:"crash_fixed_p99_ms"`
	CrashAdaptiveP99MS float64 `json:"crash_adaptive_p99_ms"`
	DetectBudgetMS     float64 `json:"detect_budget_ms"`
	// Gray-failure makespans — medians across the gray rounds, censored
	// fixed runs entering at the cap — and the adaptive win:
	// 100 * (fixed - adaptive) / fixed.
	GrayFixedMS    float64 `json:"gray_fixed_ms"`
	GrayAdaptiveMS float64 `json:"gray_adaptive_ms"`
	GrayWinPct     float64 `json:"gray_win_pct"`
	// Makespan over oracle, per scenario arm.
	GrayFixedXOracle    float64 `json:"gray_fixed_x_oracle"`
	GrayAdaptiveXOracle float64 `json:"gray_adaptive_x_oracle"`
}

// ChaosBenchFile is the on-disk shape of BENCH_chaos.json.
type ChaosBenchFile struct {
	Runs    []ChaosRunResult `json:"runs"`
	Summary ChaosSummary     `json:"summary"`
}

// grayCtl maps workers to their speed curves and tracks each worker's
// position inside its current chunk. The chaos workload consults it per
// work unit, so a gray machine's chunks slow down mid-flight — including
// chunks resumed from a checkpoint on a healthy adopter, which immediately
// run at full speed again. The per-worker step phase lets the gray gremlin
// time its collapse to the start of a chunk.
type grayCtl struct {
	mu     sync.Mutex
	curves map[types.WorkerID]idlesim.Curve
	phase  map[types.WorkerID]int64
}

func newGrayCtl() *grayCtl {
	return &grayCtl{
		curves: make(map[types.WorkerID]idlesim.Curve),
		phase:  make(map[types.WorkerID]int64),
	}
}

func (g *grayCtl) set(id types.WorkerID, c idlesim.Curve) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.curves[id] = c
}

// speedOf returns id's current speed and records step (the worker's index
// inside the chunk it is executing) as its phase.
func (g *grayCtl) speedOf(id types.WorkerID, step int64, now time.Time) float64 {
	g.mu.Lock()
	g.phase[id] = step
	c, ok := g.curves[id]
	g.mu.Unlock()
	if !ok {
		return 1
	}
	s := c.At(now)
	if s < 0.01 {
		s = 0.01
	}
	return s
}

// phaseOf reports the last step index id was seen executing.
func (g *grayCtl) phaseOf(id types.WorkerID) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.phase[id]
}

// chaosBenchProg is the fan/chunks/sum shape the other soaks use, with one
// twist: each ~1 ms work unit is stretched by the executing worker's
// current speed curve, so a gray workstation visibly drags every task it
// holds.
func chaosBenchProg(steps *atomic.Int64, ctl *grayCtl) *core.Program {
	p := core.NewProgram("chaosbench")
	p.Register("chunks", func(c model.Ctx) {
		n := c.Int(0)
		var i, sum int64
		if ck := c.Checkpoint(); len(ck) == 16 {
			i = int64(binary.BigEndian.Uint64(ck))
			sum = int64(binary.BigEndian.Uint64(ck[8:]))
		}
		for ; i < n; i++ {
			sum += i
			steps.Add(1)
			speed := ctl.speedOf(c.Worker(), i, time.Now())
			time.Sleep(time.Duration(float64(time.Millisecond) / speed))
			var blob [16]byte
			binary.BigEndian.PutUint64(blob[:8], uint64(i+1))
			binary.BigEndian.PutUint64(blob[8:], uint64(sum))
			if c.Yield(blob[:]) {
				return
			}
		}
		c.Return(sum)
	})
	p.Register("fan", func(c model.Ctx) {
		k, n := c.Int(0), c.Int(1)
		s := c.Successor("sum", int(k))
		for i := int64(0); i < k; i++ {
			c.Spawn("chunks", s.Cont(int(i)), n)
		}
	})
	p.Register("sum", func(c model.Ctx) {
		var total int64
		for i := 0; i < c.NArgs(); i++ {
			total += c.Int(i)
		}
		c.Return(total)
	})
	return p
}

// ChaosBench runs the five-way comparison and computes the summary.
func ChaosBench(cfg ChaosBenchConfig) (*ChaosBenchFile, error) {
	if cfg.Chunks <= 0 || cfg.Steps <= 0 {
		d := DefaultChaosBenchConfig()
		cfg.Chunks, cfg.Steps = d.Chunks, d.Steps
	}
	if cfg.Stations <= 0 {
		cfg.Stations = 8
	}
	if cfg.Crashes <= 0 {
		cfg.Crashes = 3
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 3 * time.Minute
	}

	runs := make([]ChaosRunResult, 0, 3+2*chaosGrayRounds)
	for _, arm := range []struct {
		name     string
		scenario string
		adaptive bool
	}{
		{"calm", "calm", true},
		{"crash-fixed", "crash", false},
		{"crash-adaptive", "crash", true},
	} {
		r, err := chaosRunOne(arm.name, arm.scenario, arm.adaptive, cfg, 0)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	for round := 1; round <= chaosGrayRounds; round++ {
		rf, err := chaosRunOne(fmt.Sprintf("gray-fixed-%d", round), "gray", false, cfg, chaosGrayFixedCap)
		if err != nil {
			return nil, err
		}
		ra, err := chaosRunOne(fmt.Sprintf("gray-adaptive-%d", round), "gray", true, cfg, 0)
		if err != nil {
			return nil, err
		}
		runs = append(runs, rf, ra)
	}

	byName := func(n string) ChaosRunResult {
		for _, r := range runs {
			if r.Name == n {
				return r
			}
		}
		return ChaosRunResult{}
	}
	grayMedian := func(adaptive bool) float64 {
		var ms []float64
		for _, r := range runs {
			if r.Scenario == "gray" && r.Adaptive == adaptive {
				ms = append(ms, r.ElapsedMS)
			}
		}
		if len(ms) == 0 {
			return 0
		}
		sort.Float64s(ms)
		return ms[len(ms)/2]
	}
	calm := byName("calm")
	sum := ChaosSummary{
		IdealSteps:         cfg.Chunks * cfg.Steps,
		OracleMS:           calm.ElapsedMS,
		CalmFalseEvictions: calm.FalseEvictions,
		CrashFixedP99MS:    byName("crash-fixed").DetectP99MS,
		CrashAdaptiveP99MS: byName("crash-adaptive").DetectP99MS,
		DetectBudgetMS:     float64(chaosHBTimeout.Nanoseconds()) / 1e6,
		GrayFixedMS:        grayMedian(false),
		GrayAdaptiveMS:     grayMedian(true),
	}
	if sum.GrayFixedMS > 0 {
		sum.GrayWinPct = 100 * (sum.GrayFixedMS - sum.GrayAdaptiveMS) / sum.GrayFixedMS
	}
	if calm.ElapsedMS > 0 {
		sum.GrayFixedXOracle = sum.GrayFixedMS / calm.ElapsedMS
		sum.GrayAdaptiveXOracle = sum.GrayAdaptiveMS / calm.ElapsedMS
	}
	return &ChaosBenchFile{Runs: runs, Summary: sum}, nil
}

// chaosRunOne runs the workload once under one (scenario, detector) arm.
// A non-zero censorAt caps the run: instead of failing, a run still going
// at the cap is recorded as a censored sample with ElapsedMS = the cap.
func chaosRunOne(name, scenario string, adaptive bool, cfg ChaosBenchConfig, censorAt time.Duration) (ChaosRunResult, error) {
	var steps atomic.Int64
	ctl := newGrayCtl()
	prog := chaosBenchProg(&steps, ctl)

	w := core.DefaultConfig()
	w.MaxStealFailures = 25
	w.StealTimeout = 25 * time.Millisecond
	w.HeartbeatEvery = chaosHBEvery
	w.CkptEvery = 10 * time.Millisecond
	ch := clearinghouse.Config{
		UpdateEvery:      25 * time.Millisecond,
		HeartbeatTimeout: chaosHBTimeout,
	}
	if adaptive {
		ch.PhiThreshold = 8
		ch.PhiSlack = chaosPhiSlack
		ch.SuspectDrainAfter = chaosDrainAt
		// Suspicion must outlive the broadcast cadence (HeartbeatTimeout/2)
		// or the blacklist decays between SuspectSet refreshes and the
		// speculation window flaps.
		w.SuspectTTL = chaosHBTimeout + chaosHBTimeout/4
		// Speculate aggressively: the workload's chunks are uniform, so 3×
		// p99 outstanding on a graded suspect is already damning.
		w.SpeculateAfter = 3
	} else {
		// Pure legacy arm: fixed timeout, no suspicion, no speculation.
		w.SuspectTTL = -1
		w.SpeculateAfter = -1
	}
	c := cluster.New(cluster.Options{
		Worker: w,
		CH:     ch,
		JM: jobmanager.Config{
			BusyPoll:      20 * time.Millisecond,
			IdleRetry:     15 * time.Millisecond,
			WorkPoll:      10 * time.Millisecond,
			DrainCooldown: 10 * time.Second,
		},
		Faults:    &phishnet.FaultPlan{Seed: cfg.Seed},
		Telemetry: true,
	})
	defer c.Close()
	for i := 0; i < cfg.Stations; i++ {
		c.AddWorkstation(idlesim.Always{})
	}

	t0 := time.Now()
	j := c.Submit(prog, "fan", []types.Value{cfg.Chunks, cfg.Steps})

	stop := make(chan struct{})
	gremlinDone := make(chan struct{})
	var detect []time.Duration
	switch scenario {
	case "crash":
		go func() {
			defer close(gremlinDone)
			detect = chaosCrashGremlin(j, cfg.Crashes, stop)
		}()
	case "gray":
		go func() {
			defer close(gremlinDone)
			chaosGrayGremlin(j, ctl, stop)
		}()
	default:
		close(gremlinDone)
	}

	runTO := cfg.Timeout
	if censorAt > 0 && censorAt < runTO {
		runTO = censorAt
	}
	v, err := j.Wait(runTO)
	elapsed := time.Since(t0)
	close(stop)
	<-gremlinDone
	timedOut := false
	if err != nil {
		if censorAt <= 0 {
			return ChaosRunResult{}, fmt.Errorf("harness: chaos %s: %w", name, err)
		}
		timedOut = true
		elapsed = censorAt
	} else {
		want := cfg.Chunks * (cfg.Steps * (cfg.Steps - 1) / 2)
		if got := v.(int64); got != want {
			return ChaosRunResult{}, fmt.Errorf("harness: chaos %s: result %d, want %d", name, got, want)
		}
	}

	ideal := cfg.Chunks * cfg.Steps
	r := ChaosRunResult{
		Name:             name,
		Adaptive:         adaptive,
		Scenario:         scenario,
		ElapsedMS:        float64(elapsed.Nanoseconds()) / 1e6,
		Steps:            steps.Load(),
		IdealSteps:       ideal,
		WastedRatio:      float64(steps.Load()-ideal) / float64(ideal),
		FalseEvictions:   j.ClusterSnapshot().Totals.FalseEvictions,
		SpeculativeRedos: j.Totals().SpeculativeRedos,
		TimedOut:         timedOut,
	}
	if r.WastedRatio < 0 {
		r.WastedRatio = 0
	}
	if len(detect) > 0 {
		sort.Slice(detect, func(i, k int) bool { return detect[i] < detect[k] })
		pct := func(p float64) float64 { // nearest-rank
			idx := int(math.Ceil(p*float64(len(detect)))) - 1
			if idx < 0 {
				idx = 0
			}
			return float64(detect[idx].Nanoseconds()) / 1e6
		}
		r.DetectP50MS = pct(0.50)
		r.DetectP99MS = pct(0.99)
	}
	return r, nil
}

// chaosCrashGremlin injects sequential fail-stop crashes, timing each one
// from Crash call to the worker leaving the clearinghouse's live set.
func chaosCrashGremlin(j *cluster.Job, crashes int, stop <-chan struct{}) []time.Duration {
	var out []time.Duration
	for n := 0; n < crashes; n++ {
		select {
		case <-stop:
			return out
		case <-time.After(400 * time.Millisecond):
		}
		victim := chaosPickVictim(j)
		if victim == 0 {
			continue
		}
		t0 := time.Now()
		if !j.Crash(victim) {
			continue
		}
		for {
			if !chaosIsLive(j, victim) {
				out = append(out, time.Since(t0))
				break
			}
			select {
			case <-stop:
				return out
			case <-time.After(2 * time.Millisecond):
			}
		}
	}
	return out
}

// chaosGrayGremlin turns chaosGrayEvents workstations gray, one every
// chaosGrayEvery after onset: each victim's compute collapses (grayCtl)
// and its network grows a latency ramp (phishnet.GrayFault). The gray
// condition follows the MACHINE, not the worker process: any later
// incarnation minted by a sick station — the original worker was drained
// or evicted and the station rejoined — inherits the gray shape.
func chaosGrayGremlin(j *cluster.Job, ctl *grayCtl, stop <-chan struct{}) {
	sickStations := make(map[types.WorkstationID]bool)
	sickened := make(map[types.WorkerID]bool)
	sicken := func(id types.WorkerID) {
		if sickened[id] {
			return
		}
		sickened[id] = true
		now := time.Now()
		ctl.set(id, idlesim.Ramp{From: 1, To: chaosGraySpeed, Start: now, Dur: chaosGrayCollapse})
		if f := j.Faults(); f != nil {
			f.SetGray(id, phishnet.GrayFault{Start: now, RampOver: chaosGrayRamp, MaxDelay: chaosGrayDelay})
		}
	}
	// sleep ticks d away in slices, re-infecting fresh incarnations on sick
	// stations as it goes. Returns false on stop.
	sleep := func(d time.Duration) bool {
		end := time.Now().Add(d)
		for time.Now().Before(end) {
			select {
			case <-stop:
				return false
			case <-time.After(25 * time.Millisecond):
			}
			for _, id := range j.LiveWorkers() {
				if sickStations[jobmanager.WorkerStation(id)] {
					sicken(id)
				}
			}
		}
		return true
	}
	for ev := 0; ev < chaosGrayEvents; ev++ {
		wait := chaosGrayEvery
		if ev == 0 {
			wait = chaosGrayOnset
		}
		if !sleep(wait) {
			return
		}
		victim := chaosPickGrayVictim(j, sickStations)
		if victim == 0 {
			continue
		}
		// Wait (bounded) for the victim to start a fresh chunk, so the
		// chunk it holds hostage is a nearly-whole one in every run rather
		// than whatever fraction the event timer happened to land on.
		deadline := time.Now().Add(time.Second)
		for ctl.phaseOf(victim) > 10 && time.Now().Before(deadline) {
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
		}
		sickStations[jobmanager.WorkerStation(victim)] = true
		sicken(victim)
	}
	for sleep(time.Second) {
	}
}

// chaosPickGrayVictim returns the highest-id live worker that neither
// hosts the root lineage nor sits on an already-sick station.
func chaosPickGrayVictim(j *cluster.Job, sickStations map[types.WorkstationID]bool) types.WorkerID {
	root := j.RootHost()
	var victim types.WorkerID
	for _, id := range j.LiveWorkers() {
		if id != root && id > victim && !sickStations[jobmanager.WorkerStation(id)] {
			victim = id
		}
	}
	return victim
}

// chaosPickVictim returns the highest-id live worker that is not hosting
// the root lineage (crashing or degrading the submitting user's own
// workstation measures join-state loss, not detection).
func chaosPickVictim(j *cluster.Job) types.WorkerID {
	root := j.RootHost()
	var victim types.WorkerID
	for _, id := range j.LiveWorkers() {
		if id != root && id > victim {
			victim = id
		}
	}
	return victim
}

func chaosIsLive(j *cluster.Job, id types.WorkerID) bool {
	for _, w := range j.LiveWorkers() {
		if w == id {
			return true
		}
	}
	return false
}

// PrintChaosBench renders the runs plus the headline summary. A "+" after
// an elapsed time marks a censored run (still thrashing at the cap).
func PrintChaosBench(w io.Writer, f *ChaosBenchFile) {
	fmt.Fprintf(w, "failure detection — fixed timeout vs phi-accrual + graded health (ideal %d steps)\n", f.Summary.IdealSteps)
	fmt.Fprintf(w, "%-16s %10s %8s %8s %11s %11s %8s %8s\n",
		"run", "elapsed", "steps", "wasted", "detect-p50", "detect-p99", "false-ev", "spec")
	for _, r := range f.Runs {
		mark := " "
		if r.TimedOut {
			mark = "+" // censored: still thrashing at the cap
		}
		fmt.Fprintf(w, "%-16s %9.0fms%s %8d %7.1f%% %9.1fms %9.1fms %8d %8d\n",
			r.Name, r.ElapsedMS, mark, r.Steps, 100*r.WastedRatio,
			r.DetectP50MS, r.DetectP99MS, r.FalseEvictions, r.SpeculativeRedos)
	}
	fmt.Fprintf(w, "crash detection p99: fixed %.0f ms, adaptive %.0f ms (budget %.0f ms)\n",
		f.Summary.CrashFixedP99MS, f.Summary.CrashAdaptiveP99MS, f.Summary.DetectBudgetMS)
	fmt.Fprintf(w, "gray failure median makespan: fixed %.0f ms (%.1fx oracle), adaptive %.0f ms (%.1fx oracle) — %.1f%% win\n",
		f.Summary.GrayFixedMS, f.Summary.GrayFixedXOracle,
		f.Summary.GrayAdaptiveMS, f.Summary.GrayAdaptiveXOracle, f.Summary.GrayWinPct)
}

// ReadChaosBenchJSON loads a recorded baseline. A missing file returns
// (nil, nil) so callers can distinguish "no baseline yet".
func ReadChaosBenchJSON(path string) (*ChaosBenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var f ChaosBenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("harness: %s: %w", path, err)
	}
	return &f, nil
}

// WriteChaosBenchJSON records the run as the new baseline.
func WriteChaosBenchJSON(path string, f *ChaosBenchFile) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CheckChaos gates CI on the detector's contract: no false-positive
// evictions on a calm fleet, crash detection under the adaptive detector
// bounded by the fixed arm's timeout, and suspicion + speculation beating
// the fixed timeout by ≥20% makespan under a gray failure. The gates are
// absolute; the baseline (nil-safe) only adds a wasted-work regression
// check on the calm run.
func CheckChaos(baseline, fresh *ChaosBenchFile) error {
	s := fresh.Summary
	if s.CalmFalseEvictions != 0 {
		return fmt.Errorf("harness: calm run evicted %d live workers (phish_false_evictions_total must stay 0)", s.CalmFalseEvictions)
	}
	if s.CrashAdaptiveP99MS <= 0 {
		return fmt.Errorf("harness: crash-adaptive run collected no detection samples")
	}
	if s.CrashAdaptiveP99MS > s.DetectBudgetMS {
		return fmt.Errorf("harness: adaptive crash detection p99 %.0f ms exceeds the %.0f ms budget",
			s.CrashAdaptiveP99MS, s.DetectBudgetMS)
	}
	if s.GrayWinPct < 20 {
		return fmt.Errorf("harness: gray-failure makespan win %.1f%% < 20%% (fixed %.0f ms, adaptive %.0f ms)",
			s.GrayWinPct, s.GrayFixedMS, s.GrayAdaptiveMS)
	}
	if baseline != nil {
		const slack = 0.10 // absolute wasted-ratio slack for timing noise
		var bCalm, fCalm ChaosRunResult
		for _, r := range baseline.Runs {
			if r.Name == "calm" {
				bCalm = r
			}
		}
		for _, r := range fresh.Runs {
			if r.Name == "calm" {
				fCalm = r
			}
		}
		if bCalm.Name != "" && fCalm.WastedRatio > bCalm.WastedRatio+slack {
			return fmt.Errorf("harness: calm wasted work %.1f%% regressed above baseline %.1f%% (+%.0f%% slack)",
				100*fCalm.WastedRatio, 100*bCalm.WastedRatio, 100*slack)
		}
	}
	return nil
}
